#include "core/sharded_plan_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/plan_cache.hpp"
#include "model/testbed.hpp"
#include "obs/metrics.hpp"

namespace lbs::core {
namespace {

// A small linear platform whose root slope varies with `seed`, so each
// seed produces a distinct PlanKey (distinct cost fingerprints).
model::Platform platform_for(int seed) {
  model::Platform platform;
  model::Processor worker;
  worker.label = "worker";
  worker.comm = model::Cost::linear(0.5);
  worker.comp = model::Cost::linear(0.1 + 0.001 * seed);
  platform.processors.push_back(worker);
  model::Processor root;
  root.label = "root";
  root.comm = model::Cost::zero();
  root.comp = model::Cost::linear(0.2);
  platform.processors.push_back(root);
  return platform;
}

TEST(ShardedPlanCache, HitAfterInsert) {
  ShardedPlanCache cache(4, 8);
  auto platform = platform_for(0);
  EXPECT_FALSE(cache.lookup(platform, 1000, Algorithm::Auto).has_value());

  auto plan = plan_scatter(platform, 1000);
  cache.insert(platform, 1000, Algorithm::Auto, plan);

  auto hit = cache.lookup(platform, 1000, Algorithm::Auto);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->distribution.counts, plan.distribution.counts);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

// The load-bearing equivalence: replaying one request log through the
// old single-mutex PlanCache and the sharded cache yields bit-identical
// plans at every step.
TEST(ShardedPlanCache, BitIdenticalToPlanCacheOnReplayedLog) {
  PlanCache flat(64);
  ShardedPlanCache sharded(8, 8);  // same total capacity

  // A log with repeats: 40 distinct keys, each requested three times,
  // interleaved so LRU state churns.
  std::vector<std::pair<int, long long>> log;
  for (int round = 0; round < 3; ++round) {
    for (int seed = 0; seed < 40; ++seed) {
      log.push_back({seed, 500 + 10 * seed});
    }
  }

  for (const auto& [seed, items] : log) {
    auto platform = platform_for(seed);
    auto from_flat = flat.plan(platform, items);
    auto from_sharded = sharded.plan(platform, items);
    EXPECT_EQ(from_flat.distribution.counts, from_sharded.distribution.counts);
    EXPECT_EQ(from_flat.algorithm_used, from_sharded.algorithm_used);
    EXPECT_DOUBLE_EQ(from_flat.predicted_makespan, from_sharded.predicted_makespan);
    // And both match a cache-free plan of the same request: caches never
    // change answers.
    auto fresh = plan_scatter(platform, items);
    EXPECT_EQ(from_sharded.distribution.counts, fresh.distribution.counts);
  }
}

TEST(ShardedPlanCache, ShardForIsStableAndInRange) {
  ShardedPlanCache cache(8, 4);
  for (int seed = 0; seed < 100; ++seed) {
    auto key = make_plan_key(platform_for(seed), 1000, Algorithm::Auto);
    int shard = cache.shard_for(key);
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, cache.shards());
    EXPECT_EQ(cache.shard_for(key), shard);  // pure function of the key
  }
}

TEST(ShardedPlanCache, PerShardLruEviction) {
  ShardedPlanCache cache(4, 2);  // 2 entries per shard

  // Craft 3 keys that land on the SAME shard: the third insert must evict
  // that shard's LRU entry while every other shard stays untouched.
  std::vector<std::pair<PlanKey, ScatterPlan>> same_shard;
  int target_shard = -1;
  for (int seed = 0; same_shard.size() < 3 && seed < 10000; ++seed) {
    auto platform = platform_for(seed);
    auto key = make_plan_key(platform, 1000, Algorithm::Auto);
    int shard = cache.shard_for(key);
    if (target_shard < 0) target_shard = shard;
    if (shard == target_shard) {
      same_shard.push_back({key, plan_scatter(platform, 1000)});
    }
  }
  ASSERT_EQ(same_shard.size(), 3u);

  cache.insert(same_shard[0].first, same_shard[0].second);
  cache.insert(same_shard[1].first, same_shard[1].second);
  EXPECT_EQ(cache.stats().evictions, 0u);

  cache.insert(same_shard[2].first, same_shard[2].second);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);

  // LRU within the shard: [0] was oldest, so [0] is gone, [1] and [2] live.
  EXPECT_FALSE(cache.lookup(same_shard[0].first).has_value());
  EXPECT_TRUE(cache.lookup(same_shard[1].first).has_value());
  EXPECT_TRUE(cache.lookup(same_shard[2].first).has_value());

  auto per_shard = cache.shard_stats();
  ASSERT_EQ(per_shard.size(), 4u);
  EXPECT_EQ(per_shard[static_cast<std::size_t>(target_shard)].evictions, 1u);
  for (int s = 0; s < 4; ++s) {
    if (s != target_shard) {
      EXPECT_EQ(per_shard[static_cast<std::size_t>(s)].evictions, 0u);
    }
  }
}

TEST(ShardedPlanCache, LookupRefreshesLruRecency) {
  ShardedPlanCache cache(1, 2);  // single shard: global LRU order
  auto a = platform_for(1);
  auto b = platform_for(2);
  auto c = platform_for(3);
  cache.insert(a, 100, Algorithm::Auto, plan_scatter(a, 100));
  cache.insert(b, 100, Algorithm::Auto, plan_scatter(b, 100));

  // Touch `a`, making `b` the LRU victim when `c` arrives.
  EXPECT_TRUE(cache.lookup(a, 100, Algorithm::Auto).has_value());
  cache.insert(c, 100, Algorithm::Auto, plan_scatter(c, 100));

  EXPECT_TRUE(cache.lookup(a, 100, Algorithm::Auto).has_value());
  EXPECT_FALSE(cache.lookup(b, 100, Algorithm::Auto).has_value());
  EXPECT_TRUE(cache.lookup(c, 100, Algorithm::Auto).has_value());
}

TEST(ShardedPlanCache, CrossShardMetrics) {
  obs::Metrics metrics;
  ShardedPlanCache cache(2, 8);
  cache.set_metrics(&metrics);

  auto platform = platform_for(0);
  auto key = make_plan_key(platform, 1000, Algorithm::Auto);
  int shard = cache.shard_for(key);

  EXPECT_FALSE(cache.lookup(key).has_value());
  cache.insert(key, plan_scatter(platform, 1000));
  EXPECT_TRUE(cache.lookup(key).has_value());

  auto hit_name = "plan_cache.shard" + std::to_string(shard) + ".hits";
  auto miss_name = "plan_cache.shard" + std::to_string(shard) + ".misses";
  EXPECT_EQ(metrics.counter(hit_name).value(), 1u);
  EXPECT_EQ(metrics.counter(miss_name).value(), 1u);
  EXPECT_EQ(metrics.counter("plan_cache.hits").value(), 1u);
  EXPECT_EQ(metrics.counter("plan_cache.misses").value(), 1u);
}

TEST(ShardedPlanCache, WorksAsPlannerCacheViaBasePointer) {
  ShardedPlanCache cache(4, 16);
  auto platform = platform_for(7);

  PlannerOptions options;
  options.cache = &cache;  // through PlanCacheBase*
  auto first = plan_scatter(platform, 5000, options);
  auto second = plan_scatter(platform, 5000, options);
  EXPECT_EQ(first.distribution.counts, second.distribution.counts);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

// 16 threads hammering a mix of hot keys (shared hits) and per-thread
// cold keys (inserts + evictions). Run under TSan via `ctest -L tsan`.
TEST(ShardedPlanCache, ConcurrentClientsAreRaceFree) {
  constexpr int kThreads = 16;
  constexpr int kIterations = 60;
  ShardedPlanCache cache(8, 4);  // small: forces concurrent eviction

  // Pre-plan everything serially so worker threads only exercise the
  // cache, not the planner.
  std::vector<std::pair<model::Platform, ScatterPlan>> hot;
  for (int seed = 0; seed < 4; ++seed) {
    auto platform = platform_for(seed);
    hot.push_back({platform, plan_scatter(platform, 1000)});
  }
  std::vector<std::vector<std::pair<model::Platform, ScatterPlan>>> cold(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < 8; ++i) {
      auto platform = platform_for(100 + t * 8 + i);
      cold[static_cast<std::size_t>(t)].push_back(
          {platform, plan_scatter(platform, 1000)});
    }
  }

  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        const auto& [hot_platform, hot_plan] = hot[static_cast<std::size_t>(i % 4)];
        if (i == 0) cache.insert(hot_platform, 1000, Algorithm::Auto, hot_plan);
        auto got = cache.lookup(hot_platform, 1000, Algorithm::Auto);
        if (got && got->distribution.counts != hot_plan.distribution.counts) {
          wrong.fetch_add(1);
        }
        const auto& [cold_platform, cold_plan] =
            cold[static_cast<std::size_t>(t)][static_cast<std::size_t>(i % 8)];
        cache.insert(cold_platform, 1000, Algorithm::Auto, cold_plan);
        auto mine = cache.lookup(cold_platform, 1000, Algorithm::Auto);
        if (mine && mine->distribution.counts != cold_plan.distribution.counts) {
          wrong.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(wrong.load(), 0);
  EXPECT_LE(cache.size(), cache.capacity());
  auto stats = cache.stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.evictions, 0u);  // capacity 32 vs 132 distinct keys
}

}  // namespace
}  // namespace lbs::core
