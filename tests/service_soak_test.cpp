// Service soak: mixed traffic (hot keys, cold keys, pings, stats, a
// backpressure-sized queue) hammered by concurrent clients, with every
// Ok response checked bit-exactly against the direct planner.
//
// Sized to seconds by default so it runs in every ctest sweep; the
// nightly CI job scales it up with LBS_SOAK_ITERS (a multiplier, like
// LBS_DIFFERENTIAL_ITERS for the differential suite).

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/planner.hpp"
#include "model/testbed.hpp"
#include "service/client.hpp"
#include "service/server.hpp"

namespace lbs::service {
namespace {

int soak_multiplier() {
  const char* raw = std::getenv("LBS_SOAK_ITERS");
  if (raw == nullptr) return 1;
  int value = std::atoi(raw);
  return value >= 1 ? value : 1;
}

model::Platform seeded_platform(int seed) {
  model::Platform platform;
  model::Processor worker;
  worker.label = "worker";
  worker.comm = model::Cost::linear(0.5);
  worker.comp = model::Cost::linear(0.1 + 0.001 * seed);
  platform.processors.push_back(worker);
  model::Processor second;
  second.label = "second";
  second.comm = model::Cost::affine(0.2, 0.01);
  second.comp = model::Cost::linear(0.15);
  platform.processors.push_back(second);
  model::Processor root;
  root.label = "root";
  root.comm = model::Cost::zero();
  root.comp = model::Cost::linear(0.2);
  platform.processors.push_back(root);
  return platform;
}

TEST(ServiceSoak, MixedTrafficUnderConcurrency) {
  const int multiplier = soak_multiplier();
  const int kClients = 8;
  const int kPerClient = 25 * multiplier;

  ServerOptions options;
  options.socket_path = "/tmp/lbs_service_soak_" + std::to_string(::getpid()) +
                        ".sock";
  options.cache_shards = 4;
  options.cache_capacity_per_shard = 16;  // smaller than the key space: evictions
  options.max_queue = 8;                  // small: exercises backpressure
  options.retry_after_ms = 5;
  Server server(options);
  server.start();

  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client(options.socket_path);
      for (int i = 0; i < kPerClient; ++i) {
        // Traffic mix: every 8th op is a control message, the rest plans.
        // Seeds cycle a window of 40 keys (some hot overlap across
        // clients, some cold) against a 64-entry cache.
        if (i % 8 == 7) {
          if (!client.ping()) failures.fetch_add(1);
          continue;
        }
        int seed = (c * 7 + i * 3) % 40;
        long long items = 1000 + 50 * seed;
        auto platform = seeded_platform(seed);
        PlanResponse response = client.plan_with_retry(platform, items,
                                                       core::Algorithm::Auto, 20);
        if (response.status != PlanStatus::Ok) {
          failures.fetch_add(1);
          continue;
        }
        auto direct = core::plan_scatter(platform, items);
        if (response.counts != direct.distribution.counts) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& thread : clients) thread.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(failures.load(), 0);

  auto counters = server.counters();
  EXPECT_GT(counters.requests, 0u);
  EXPECT_GT(counters.cache_hits, 0u);  // hot keys repeat across clients
  EXPECT_EQ(counters.errors, 0u);
  server.stop();
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace lbs::service
