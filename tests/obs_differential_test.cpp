// Differential property sweep (observability satellite): on random
// increasing-cost platforms (p <= 16, n <= 5000), every planner algorithm's
// distribution must evaluate to the same makespan on the analytic model
// (Eq. 2) and in the gridsim simulator, the LP heuristic must stay within
// the Eq. 4 guarantee of the DP optimum, and the simulator's trace must
// satisfy the single-port and finish-time invariants on every trial.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/distribution.hpp"
#include "core/dp.hpp"
#include "core/heuristic.hpp"
#include "core/planner.hpp"
#include "gridsim/gridsim.hpp"
#include "model/platform.hpp"
#include "support/rng.hpp"
#include "trace_check.hpp"

namespace lbs {
namespace {

// Random platform with linear (or affine) costs: comm slopes log-uniform-ish
// in [1e-5, 1e-3] s/item, compute slopes in [1e-3, 3e-2] s/item — the same
// ranges model::random_grid uses. Root last, zero comm.
model::Platform random_platform(support::Rng& rng, int p, bool affine) {
  model::Platform platform;
  for (int i = 0; i < p; ++i) {
    bool is_root = i + 1 == p;
    double beta = rng.uniform(1e-5, 1e-3);
    double alpha = rng.uniform(1e-3, 3e-2);
    model::Processor proc;
    proc.label = "P" + std::to_string(i);
    if (is_root) {
      proc.comm = model::Cost::zero();
    } else if (affine) {
      proc.comm = model::Cost::affine(rng.uniform(0.0, 20e-3), beta);
    } else {
      proc.comm = model::Cost::linear(beta);
    }
    proc.comp = affine ? model::Cost::affine(rng.uniform(0.0, 20e-3), alpha)
                       : model::Cost::linear(alpha);
    platform.processors.push_back(proc);
  }
  return platform;
}

// One distribution, three oracles: the plan's own prediction, the analytic
// Eq. 2 evaluation, and the simulated makespan must agree; the simulated
// trace must satisfy the structural invariants.
void check_plan_against_simulator(const model::Platform& platform,
                                  const core::ScatterPlan& plan,
                                  const std::string& context) {
  double analytic = core::makespan(platform, plan.distribution);
  EXPECT_NEAR(plan.predicted_makespan, analytic, 1e-9 + 1e-12 * analytic)
      << context;

  auto sim = gridsim::simulate_scatter(platform, plan.distribution);
  EXPECT_NEAR(sim.timeline.makespan(), analytic, 1e-9 + 1e-12 * analytic)
      << context;

  auto log = gridsim::to_trace_log(sim.timeline);
  int root = platform.size() - 1;
  // A degenerate optimum may keep every item on the root (hopeless links),
  // in which case the port never transfers and there is nothing to check.
  bool any_worker_items = false;
  for (int i = 0; i + 1 < platform.size(); ++i) {
    if (plan.distribution.counts[static_cast<std::size_t>(i)] > 0) {
      any_worker_items = true;
    }
  }
  if (any_worker_items) lbs::testing::expect_single_port_root(log, root, 1e-9);
  lbs::testing::expect_finish_times(
      log, core::finish_times(platform, plan.distribution),
      /*anchor=*/0.0, /*time_scale=*/1.0, /*rel_tol=*/1e-12, /*abs_tol=*/1e-9);
}

// Trial-count multiplier: the nightly CI job sets LBS_DIFFERENTIAL_ITERS
// (e.g. 10) to sweep 10x the trials per seed; the default 1 keeps the
// regular ctest run fast. Each trial draws fresh randomness from the
// seed's stream, so a deeper sweep strictly extends the shallow one.
int differential_iters() {
  const char* raw = std::getenv("LBS_DIFFERENTIAL_ITERS");
  if (raw == nullptr) return 1;
  int value = std::atoi(raw);
  return value >= 1 ? value : 1;
}

class DifferentialSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialSweep, LinearPlatformsAgreeAcrossAllAlgorithms) {
  support::Rng rng(GetParam());
  for (int trial = 0; trial < 4 * differential_iters(); ++trial) {
    int p = static_cast<int>(rng.uniform_int(2, 16));
    long long n = rng.uniform_int(50, 5000);
    auto platform = random_platform(rng, p, /*affine=*/false);
    std::string context = "seed " + std::to_string(GetParam()) + " trial " +
                          std::to_string(trial) + " p=" + std::to_string(p) +
                          " n=" + std::to_string(n);

    auto dp = core::plan_scatter(platform, n, core::Algorithm::OptimizedDp);
    auto closed =
        core::plan_scatter(platform, n, core::Algorithm::LinearClosedForm);
    auto lp = core::plan_scatter(platform, n, core::Algorithm::LpHeuristic);
    check_plan_against_simulator(platform, dp, context + " [dp]");
    check_plan_against_simulator(platform, closed, context + " [closed]");
    check_plan_against_simulator(platform, lp, context + " [lp]");

    // Eq. 4: rounded heuristics end within the additive slack of the
    // optimum (the DP optimum dominates the LP's rational optimum).
    double slack = core::lp_heuristic(platform, n).guarantee_slack;
    EXPECT_LE(closed.predicted_makespan,
              dp.predicted_makespan + slack + 1e-9)
        << context;
    EXPECT_LE(lp.predicted_makespan, dp.predicted_makespan + slack + 1e-9)
        << context;
    EXPECT_GE(closed.predicted_makespan, dp.predicted_makespan - 1e-9)
        << context;
  }
}

TEST_P(DifferentialSweep, AffinePlatformsKeepLpWithinTheGuarantee) {
  support::Rng rng(GetParam() + 1000);
  for (int trial = 0; trial < 3 * differential_iters(); ++trial) {
    int p = static_cast<int>(rng.uniform_int(2, 16));
    long long n = rng.uniform_int(50, 5000);
    auto platform = random_platform(rng, p, /*affine=*/true);
    ASSERT_TRUE(platform.all_costs_affine());
    std::string context = "seed " + std::to_string(GetParam()) + " trial " +
                          std::to_string(trial) + " p=" + std::to_string(p) +
                          " n=" + std::to_string(n);

    auto dp = core::plan_scatter(platform, n, core::Algorithm::OptimizedDp);
    auto lp = core::plan_scatter(platform, n, core::Algorithm::LpHeuristic);
    check_plan_against_simulator(platform, dp, context + " [dp]");
    check_plan_against_simulator(platform, lp, context + " [lp]");

    double slack = core::lp_heuristic(platform, n).guarantee_slack;
    EXPECT_LE(lp.predicted_makespan, dp.predicted_makespan + slack + 1e-9)
        << context;
  }
}

TEST_P(DifferentialSweep, ExactAndOptimizedDpAgreeOnSmallInstances) {
  support::Rng rng(GetParam() + 2000);
  for (int trial = 0; trial < 3 * differential_iters(); ++trial) {
    int p = static_cast<int>(rng.uniform_int(2, 6));
    long long n = rng.uniform_int(5, 120);
    auto platform = random_platform(rng, p, rng.bernoulli(0.5));
    std::string context = "seed " + std::to_string(GetParam()) + " trial " +
                          std::to_string(trial);

    auto exact = core::plan_scatter(platform, n, core::Algorithm::ExactDp);
    auto optimized =
        core::plan_scatter(platform, n, core::Algorithm::OptimizedDp);
    EXPECT_NEAR(exact.predicted_makespan, optimized.predicted_makespan,
                1e-12 + 1e-12 * exact.predicted_makespan)
        << context;
    check_plan_against_simulator(platform, exact, context + " [exact]");
    check_plan_against_simulator(platform, optimized, context + " [optimized]");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSweep,
                         ::testing::Values(401u, 402u, 403u, 404u, 405u));

}  // namespace
}  // namespace lbs
