#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace lbs::linalg {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.at(1, 2), 0.0);
  m.at(1, 2) = 5.0;
  EXPECT_EQ(m.at(1, 2), 5.0);
  EXPECT_EQ(m.data()[1 * 3 + 2], 5.0);  // row-major layout
}

TEST(Matrix, BoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), lbs::Error);
  EXPECT_THROW(m.at(0, 2), lbs::Error);
  EXPECT_THROW(Matrix(0, 3), lbs::Error);
}

TEST(Matrix, IdentityMultiplication) {
  support::Rng rng(1);
  auto a = Matrix::random(rng, 5, 5);
  auto product = multiply(a, Matrix::identity(5));
  EXPECT_TRUE(product.allclose(a));
  auto product_left = multiply(Matrix::identity(5), a);
  EXPECT_TRUE(product_left.allclose(a));
}

TEST(Matrix, KnownProduct) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  double av[] = {1, 2, 3, 4, 5, 6};
  double bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.data());
  std::copy(bv, bv + 6, b.data());
  auto c = multiply(a, b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 154.0);
}

TEST(Matrix, RowBlocksReassembleToFullProduct) {
  // The distribution property the matmul example relies on: computing C
  // in arbitrary row blocks gives exactly the serial product.
  support::Rng rng(2);
  auto a = Matrix::random(rng, 20, 16);
  auto b = Matrix::random(rng, 16, 12);
  auto reference = multiply(a, b);

  std::size_t splits[] = {3, 7, 5, 5};
  std::size_t first = 0;
  for (std::size_t count : splits) {
    auto block = multiply_rows(a, b, first, count);
    for (std::size_t i = 0; i < count; ++i) {
      for (std::size_t j = 0; j < b.cols(); ++j) {
        EXPECT_DOUBLE_EQ(block.at(i, j), reference.at(first + i, j));
      }
    }
    first += count;
  }
  EXPECT_EQ(first, a.rows());
}

TEST(Matrix, MultiplyDimensionChecks) {
  Matrix a(2, 3);
  Matrix b(4, 2);
  EXPECT_THROW(multiply(a, b), lbs::Error);
  Matrix ok(3, 2);
  EXPECT_THROW(multiply_rows(a, ok, 1, 2), lbs::Error);  // rows out of range
  EXPECT_THROW(multiply_rows(a, ok, 0, 0), lbs::Error);  // empty range
}

TEST(Matrix, DifferenceNorm) {
  Matrix a(2, 2);
  Matrix b(2, 2);
  b.at(0, 0) = 3.0;
  b.at(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(difference_norm(a, b), 5.0);
  EXPECT_DOUBLE_EQ(difference_norm(b, b), 0.0);
}

TEST(Matrix, AllcloseRespectsTolerance) {
  Matrix a(1, 1);
  Matrix b(1, 1);
  b.at(0, 0) = 1e-10;
  EXPECT_TRUE(a.allclose(b, 1e-9));
  EXPECT_FALSE(a.allclose(b, 1e-11));
  Matrix c(1, 2);
  EXPECT_FALSE(a.allclose(c));
}

TEST(Matrix, RandomIsDeterministicPerSeed) {
  support::Rng rng1(9), rng2(9);
  auto a = Matrix::random(rng1, 4, 4);
  auto b = Matrix::random(rng2, 4, 4);
  EXPECT_TRUE(a.allclose(b, 0.0));
}

}  // namespace
}  // namespace lbs::linalg
