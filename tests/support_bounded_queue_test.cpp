#include "support/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

namespace lbs::support {
namespace {

TEST(BoundedQueue, PushPopRoundTrip) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_EQ(queue.size(), 2u);

  int value = 0;
  EXPECT_TRUE(queue.pop(value));
  EXPECT_EQ(value, 1);
  EXPECT_TRUE(queue.pop(value));
  EXPECT_EQ(value, 2);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueue, RejectsWhenFull) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3));  // backpressure: at capacity

  int value = 0;
  ASSERT_TRUE(queue.pop(value));
  EXPECT_TRUE(queue.try_push(3));  // a pop frees a slot
}

TEST(BoundedQueue, CloseDrainsThenReportsEmpty) {
  BoundedQueue<int> queue(8);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  queue.close();
  EXPECT_FALSE(queue.try_push(3));  // closed: no new admissions

  // Accepted work still drains before pop reports closure.
  int value = 0;
  EXPECT_TRUE(queue.pop(value));
  EXPECT_EQ(value, 1);
  EXPECT_TRUE(queue.pop(value));
  EXPECT_EQ(value, 2);
  EXPECT_FALSE(queue.pop(value));
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> queue(2);
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    int value = 0;
    EXPECT_FALSE(queue.pop(value));
    returned.store(true);
  });
  queue.close();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

TEST(BoundedQueue, PopBatchClaimsUpToMax) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.try_push(i));

  std::vector<int> batch;
  EXPECT_EQ(queue.pop_batch(batch, 3), 3u);
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(queue.pop_batch(batch, 3), 2u);
  EXPECT_EQ(batch.size(), 5u);  // appended, not replaced
}

// MPMC under contention: every pushed item is popped exactly once, no
// losses, no duplicates. (This test carries the tsan label.)
TEST(BoundedQueue, ConcurrentProducersConsumers) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  BoundedQueue<int> queue(16);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int value = p * kPerProducer + i;
        while (!queue.try_push(value)) std::this_thread::yield();
      }
    });
  }

  std::mutex seen_mu;
  std::set<int> seen;
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      std::vector<int> batch;
      while (queue.pop_batch(batch, 8) > 0) {
        std::lock_guard lock(seen_mu);
        for (int value : batch) {
          EXPECT_TRUE(seen.insert(value).second) << "duplicate " << value;
        }
        batch.clear();
      }
    });
  }

  for (auto& t : producers) t.join();
  queue.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kProducers * kPerProducer));
}

}  // namespace
}  // namespace lbs::support
