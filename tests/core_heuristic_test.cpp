#include "core/heuristic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/closed_form.hpp"
#include "core/dp.hpp"
#include "core/rounding.hpp"
#include "model/testbed.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace lbs::core {
namespace {

model::Platform affine_platform(const std::vector<model::AffineCoeffs>& comm,
                                const std::vector<model::AffineCoeffs>& comp) {
  model::Platform platform;
  for (std::size_t i = 0; i < comm.size(); ++i) {
    model::Processor p;
    p.label = "P" + std::to_string(i + 1);
    p.comm = model::Cost::affine(comm[i].fixed, comm[i].per_item);
    p.comp = model::Cost::affine(comp[i].fixed, comp[i].per_item);
    platform.processors.push_back(p);
  }
  return platform;
}

TEST(Rounding, ExactIntegersPassThrough) {
  std::vector<double> shares{3.0, 0.0, 7.0};
  auto dist = round_distribution(shares, 10);
  EXPECT_EQ(dist.counts, (std::vector<long long>{3, 0, 7}));
}

TEST(Rounding, FractionsRoundWithinOne) {
  std::vector<double> shares{3.4, 2.8, 3.8};
  auto dist = round_distribution(shares, 10);
  EXPECT_EQ(dist.total(), 10);
  for (std::size_t i = 0; i < shares.size(); ++i) {
    EXPECT_LT(std::abs(static_cast<double>(dist.counts[i]) - shares[i]), 1.0)
        << "i=" << i;
  }
}

TEST(Rounding, SingleShare) {
  std::vector<double> shares{5.0};
  auto dist = round_distribution(shares, 5);
  EXPECT_EQ(dist.counts, (std::vector<long long>{5}));
}

TEST(Rounding, AbsorbsLpSolverNoise) {
  std::vector<double> shares{3.3333333333, 3.3333333333, 3.3333333334};
  auto dist = round_distribution(shares, 10);
  EXPECT_EQ(dist.total(), 10);
}

TEST(Rounding, RejectsBadSum) {
  std::vector<double> shares{1.0, 2.0};
  EXPECT_THROW(round_distribution(shares, 10), lbs::Error);
}

TEST(Rounding, RejectsNegativeShares) {
  std::vector<double> shares{-2.0, 12.0};
  EXPECT_THROW(round_distribution(shares, 10), lbs::Error);
}

TEST(Rounding, PropertySweep) {
  support::Rng rng(7777);
  for (int trial = 0; trial < 200; ++trial) {
    int p = static_cast<int>(rng.uniform_int(1, 12));
    long long n = rng.uniform_int(0, 1000);
    // Random nonnegative shares summing to n.
    std::vector<double> weights;
    double total = 0.0;
    for (int i = 0; i < p; ++i) {
      weights.push_back(rng.uniform(0.0, 1.0));
      total += weights.back();
    }
    std::vector<double> shares;
    for (int i = 0; i < p; ++i) {
      shares.push_back(total == 0.0 ? static_cast<double>(n) / p
                                    : weights[static_cast<std::size_t>(i)] / total *
                                          static_cast<double>(n));
    }
    auto dist = round_distribution(shares, n);
    EXPECT_EQ(dist.total(), n);
    for (int i = 0; i < p; ++i) {
      EXPECT_GE(dist.counts[static_cast<std::size_t>(i)], 0);
      EXPECT_LT(std::abs(static_cast<double>(dist.counts[static_cast<std::size_t>(i)]) -
                         shares[static_cast<std::size_t>(i)]),
                1.0 + 1e-6);
    }
  }
}

TEST(GuaranteeSlack, MatchesEquation4Definition) {
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  double slack = rounding_guarantee_slack(platform);
  // sum of Tcomm(j,1) over 15 non-root links + max Tcomp(i,1) (seven's α).
  double comm_sum = 1.12e-5 + 1.00e-5 + 1.70e-5 + 2 * 8.15e-5 + 2 * 2.10e-5 + 8 * 3.53e-5;
  EXPECT_NEAR(slack, comm_sum + 0.016156, 1e-9);
}

TEST(LpHeuristic, MatchesClosedFormOnLinearCosts) {
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  long long n = 10000;
  auto heuristic = lp_heuristic(platform, n);
  auto closed = solve_linear(platform, n);
  EXPECT_NEAR(heuristic.rational_makespan, closed.duration,
              closed.duration * 1e-9);
  for (std::size_t i = 0; i < closed.share.size(); ++i) {
    EXPECT_NEAR(heuristic.rational_shares[i], closed.share[i],
                std::max(1e-6, closed.share[i] * 1e-9));
  }
  EXPECT_EQ(heuristic.distribution.total(), n);
}

TEST(LpHeuristic, WithinGuaranteeOfDpOptimum) {
  // Eq. 4 on random affine platforms, verified against Algorithm 1.
  support::Rng rng(555);
  for (int trial = 0; trial < 6; ++trial) {
    int p = static_cast<int>(rng.uniform_int(2, 4));
    long long n = rng.uniform_int(20, 60);
    std::vector<model::AffineCoeffs> comm, comp;
    for (int i = 0; i < p; ++i) {
      comm.push_back({i + 1 == p ? 0.0 : rng.uniform(0.0, 0.1), rng.uniform(0.05, 0.5)});
      comp.push_back({rng.uniform(0.0, 0.1), rng.uniform(0.2, 3.0)});
    }
    auto platform = affine_platform(comm, comp);
    auto heuristic = lp_heuristic(platform, n);
    auto optimal = exact_dp(platform, n);
    EXPECT_GE(heuristic.makespan, optimal.cost - 1e-9);
    EXPECT_LE(heuristic.makespan, optimal.cost + heuristic.guarantee_slack + 1e-9)
        << "trial " << trial;
  }
}

TEST(LpHeuristic, RationalObjectiveLowerBoundsRealizedMakespan) {
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  auto result = lp_heuristic(platform, model::kPaperRayCount);
  // LP relaxation <= realized integer distribution cost.
  EXPECT_LE(result.rational_makespan, result.makespan + 1e-6);
  // And the gap is bounded by the Eq. 4 slack.
  EXPECT_LE(result.makespan - result.rational_makespan,
            result.guarantee_slack + 1e-6);
}

TEST(LpHeuristic, PaperScaleErrorIsTiny) {
  // The paper reports a relative error under 6e-6 vs the optimal solution
  // at n = 817,101. Our rounding makes different tie-breaking choices, so
  // assert the same *order of magnitude* via the guarantee: the gap to the
  // rational lower bound (which over-states the gap to the true optimum)
  // stays below the Eq. 4 slack, itself ~4e-5 relative at this scale.
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  auto result = lp_heuristic(platform, model::kPaperRayCount);
  double relative_gap =
      (result.makespan - result.rational_makespan) / result.rational_makespan;
  EXPECT_GE(relative_gap, -1e-12);
  EXPECT_LT(relative_gap, result.guarantee_slack / result.rational_makespan);
  EXPECT_LT(relative_gap, 1e-4);
}

TEST(LpHeuristic, RequiresAffineCosts) {
  model::Platform platform;
  model::Processor p;
  p.label = "tab";
  p.comm = model::Cost::zero();
  p.comp = model::Cost::tabulated({{10, 5.0}});
  platform.processors.push_back(p);
  EXPECT_THROW(lp_heuristic(platform, 10), lbs::Error);
}

TEST(LpHeuristic, ZeroItems) {
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  auto result = lp_heuristic(platform, 0);
  EXPECT_EQ(result.distribution.total(), 0);
  EXPECT_NEAR(result.makespan, 0.0, 1e-12);
}

TEST(AffineEqualFinish, MatchesLpOnAllActivePlatform) {
  // A platform where every processor deserves work: the equal-finish chain
  // and the LP rational optimum agree.
  std::vector<model::AffineCoeffs> comm{{0.01, 0.1}, {0.02, 0.2}, {0.0, 0.0}};
  std::vector<model::AffineCoeffs> comp{{0.1, 1.0}, {0.05, 1.5}, {0.2, 2.0}};
  auto platform = affine_platform(comm, comp);
  long long n = 300;
  auto chain = affine_equal_finish_shares(platform, n);
  ASSERT_TRUE(chain.has_value());
  auto heuristic = lp_heuristic(platform, n);
  for (std::size_t i = 0; i < chain->size(); ++i) {
    EXPECT_NEAR((*chain)[i], heuristic.rational_shares[i], 1e-6) << "i=" << i;
  }
  double sum = std::accumulate(chain->begin(), chain->end(), 0.0);
  EXPECT_NEAR(sum, static_cast<double>(n), 1e-6);
}

TEST(AffineEqualFinish, RefusesWhenSomeProcessorMustIdle) {
  // P1's fixed compute cost dwarfs the whole workload: equalizing finish
  // times would require a negative share, so the all-active assumption
  // fails and the chain refuses.
  std::vector<model::AffineCoeffs> comm{{0.0, 0.1}, {0.0, 0.0}};
  std::vector<model::AffineCoeffs> comp{{1000.0, 1.0}, {0.0, 1.0}};
  auto platform = affine_platform(comm, comp);
  auto chain = affine_equal_finish_shares(platform, 10);
  EXPECT_FALSE(chain.has_value());
}

}  // namespace
}  // namespace lbs::core
