#include <gtest/gtest.h>

#include <sstream>

#include "support/csv.hpp"
#include "support/error.hpp"
#include "support/gantt.hpp"
#include "support/table.hpp"

namespace lbs::support {
namespace {

TEST(Table, RendersHeaderRuleAndRows) {
  Table table({"machine", "alpha"});
  table.add_row({"dinadan", "0.009288"});
  table.add_row({"caseb", "0.004629"});
  std::string text = table.to_string();
  EXPECT_NE(text.find("machine"), std::string::npos);
  EXPECT_NE(text.find("dinadan"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, RowWidthMismatchThrows) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), Error);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table(std::vector<std::string>{}), Error);
}

TEST(Table, ColumnsAlign) {
  Table table({"n", "value"});
  table.add_row({"1", "10"});
  table.add_row({"100", "2"});
  std::string text = table.to_string();
  std::istringstream in(text);
  std::string header, rule, row1, row2;
  std::getline(in, header);
  std::getline(in, rule);
  std::getline(in, row1);
  std::getline(in, row2);
  EXPECT_EQ(row1.size(), row2.size());
}

TEST(FormatDouble, RespectsPrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 0), "1");
}

TEST(FormatSeconds, PicksSensibleUnits) {
  EXPECT_EQ(format_seconds(0.0000005), "0.5 us");
  EXPECT_EQ(format_seconds(0.012), "12.0 ms");
  EXPECT_EQ(format_seconds(42.0), "42.0 s");
  EXPECT_EQ(format_seconds(360.0), "6.0 min");
  EXPECT_EQ(format_seconds(7200.0), "2.0 h");
  // The paper: Algorithm 1 takes "more than two days".
  EXPECT_EQ(format_seconds(2.5 * 86400.0), "2.5 days");
}

TEST(FormatCount, GroupsThousands) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(817101), "817,101");
  EXPECT_EQ(format_count(-1234567), "-1,234,567");
}

TEST(FormatPercent, Formats) {
  EXPECT_EQ(format_percent(0.06), "6.0%");
  EXPECT_EQ(format_percent(0.105, 2), "10.50%");
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesRows) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"machine", "items"});
  writer.write_row({"leda", CsvWriter::cell(static_cast<long long>(51069))});
  EXPECT_EQ(out.str(), "machine,items\nleda,51069\n");
}

TEST(Csv, DoubleCellsRoundTrip) {
  std::string cell = CsvWriter::cell(0.009288);
  EXPECT_EQ(std::stod(cell), 0.009288);
}

TEST(Gantt, RendersPhasesAndLegend) {
  GanttChart chart(40);
  chart.add_row({"P1",
                 {{0.0, 1.0, PhaseKind::Receive}, {1.0, 4.0, PhaseKind::Compute}}});
  chart.add_row({"P2",
                 {{1.0, 2.0, PhaseKind::Receive}, {2.0, 4.0, PhaseKind::Compute}}});
  std::string text = chart.to_string();
  EXPECT_NE(text.find('r'), std::string::npos);
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_NE(text.find("legend"), std::string::npos);
  EXPECT_NE(text.find("P1"), std::string::npos);
}

TEST(Gantt, StairEffectVisible) {
  // Later processors start receiving later: the first receive cell of each
  // row must move right, as in the paper's Figure 1.
  GanttChart chart(60);
  for (int p = 0; p < 4; ++p) {
    double start = static_cast<double>(p);
    chart.add_row({"P" + std::to_string(p + 1),
                   {{start, start + 1.0, PhaseKind::Receive},
                    {start + 1.0, 8.0, PhaseKind::Compute}}});
  }
  std::string text = chart.to_string();
  std::istringstream in(text);
  std::string line;
  std::size_t previous = 0;
  for (int p = 0; p < 4; ++p) {
    std::getline(in, line);
    std::size_t first_r = line.find('r');
    ASSERT_NE(first_r, std::string::npos);
    EXPECT_GE(first_r, previous);
    previous = first_r;
  }
}

TEST(Gantt, RejectsNegativeDurationSpan) {
  GanttChart chart(40);
  EXPECT_THROW(chart.add_row({"bad", {{2.0, 1.0, PhaseKind::Idle}}}), Error);
}

TEST(Gantt, TooNarrowThrows) {
  EXPECT_THROW(GanttChart(3), Error);
}

TEST(PhaseChar, DistinctPerKind) {
  EXPECT_NE(phase_char(PhaseKind::Idle), phase_char(PhaseKind::Receive));
  EXPECT_NE(phase_char(PhaseKind::Receive), phase_char(PhaseKind::Compute));
  EXPECT_NE(phase_char(PhaseKind::Send), phase_char(PhaseKind::Compute));
}

}  // namespace
}  // namespace lbs::support
