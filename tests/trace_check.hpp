// Differential trace oracle: replays an obs::TraceLog of one scatter and
// asserts the paper's structural invariants on it. The same checks run
// against both substrates — the mq runtime's wall-clock trace (with a
// calibrated tolerance for sleep overshoot) and gridsim's virtual-time
// trace (where the invariants hold to floating-point precision):
//   - single-port root (Section 2.3): no two root-side comm.send spans
//     overlap;
//   - send ordering (Theorem 3): the root serves peers in the platform's
//     scatter order;
//   - finish times (Eq. 1): each rank's last compute span ends at its
//     predicted finish time, re-anchored at the scatter's origin.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <map>
#include <vector>

#include "obs/trace.hpp"

namespace lbs::testing {

// Root-side comm.send spans carrying data, sorted by start time. Empty
// transfers (arg0 == 0) are skipped: a zero-byte send occupies no
// half-open interval on either substrate.
inline std::vector<obs::TraceEvent> root_sends(const obs::TraceLog& log,
                                               int root) {
  std::vector<obs::TraceEvent> sends;
  for (const auto& event : log.events) {
    if (event.type == obs::EventType::CommSend && event.rank == root &&
        !event.instant && event.arg0 > 0) {
      sends.push_back(event);
    }
  }
  std::stable_sort(sends.begin(), sends.end(),
                   [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
                     return a.start < b.start;
                   });
  return sends;
}

// Section 2.3's single-port root: consecutive root-side sends must not
// overlap. The mq runtime records these spans while holding the sender's
// NIC lock, so overlap there is a genuine instrumentation bug, not jitter.
inline void expect_single_port_root(const obs::TraceLog& log, int root,
                                    double tolerance = 1e-9) {
  auto sends = root_sends(log, root);
  ASSERT_FALSE(sends.empty()) << "no root-side comm.send spans in the trace";
  for (std::size_t i = 1; i < sends.size(); ++i) {
    EXPECT_GE(sends[i].start, sends[i - 1].end() - tolerance)
        << "root port double-booked: send to peer " << sends[i - 1].peer
        << " [" << sends[i - 1].start << ", " << sends[i - 1].end()
        << ") overlaps send to peer " << sends[i].peer << " starting at "
        << sends[i].start;
  }
}

// Theorem 3 ordering: the first send to each peer happens in `expected`
// order (for a descending-bandwidth platform that is ascending rank order).
inline void expect_send_order(const obs::TraceLog& log, int root,
                              const std::vector<int>& expected_peers) {
  auto sends = root_sends(log, root);
  std::vector<int> first_sends;
  for (const auto& event : sends) {
    if (std::find(first_sends.begin(), first_sends.end(), event.peer) ==
        first_sends.end()) {
      first_sends.push_back(event.peer);
    }
  }
  EXPECT_EQ(first_sends, expected_peers);
}

// Latest compute-span end per rank, or an empty map when none were traced.
inline std::map<int, double> last_compute_end(const obs::TraceLog& log) {
  std::map<int, double> finish;
  for (const auto& event : log.events) {
    if (event.type != obs::EventType::Compute || event.instant) continue;
    auto [it, inserted] = finish.emplace(event.rank, event.end());
    if (!inserted) it->second = std::max(it->second, event.end());
  }
  return finish;
}

// Eq. 1: every traced rank's last compute span ends at its predicted
// finish time. Trace times are re-anchored at `anchor` (the first root
// send for wall-clock traces, 0 for virtual time) and divided by
// `time_scale` to recover nominal seconds. Tolerance per rank is
// abs_tol + rel_tol * predicted[rank].
inline void expect_finish_times(const obs::TraceLog& log,
                                const std::vector<double>& predicted,
                                double anchor, double time_scale,
                                double rel_tol, double abs_tol) {
  ASSERT_GT(time_scale, 0.0);
  auto finish = last_compute_end(log);
  ASSERT_FALSE(finish.empty()) << "no compute spans in the trace";
  for (const auto& [rank, end] : finish) {
    ASSERT_GE(rank, 0);
    ASSERT_LT(static_cast<std::size_t>(rank), predicted.size());
    double nominal = (end - anchor) / time_scale;
    double expected = predicted[static_cast<std::size_t>(rank)];
    EXPECT_NEAR(nominal, expected, abs_tol + rel_tol * expected)
        << "rank " << rank << " finished at nominal " << nominal
        << " but Eq. 1 predicts " << expected;
  }
}

// Cross-substrate equivalence: the mq runtime and gridsim traces of the
// same plan must serve the same peers in the same order with the same
// payloads. mq records bytes, gridsim records items (hence `item_size`);
// gridsim additionally routes the root's own chunk through the port as a
// rank==peer==root send, which has no mq counterpart and is filtered out.
inline void expect_equivalent_structure(const obs::TraceLog& mq_log,
                                        int mq_root,
                                        const obs::TraceLog& sim_log,
                                        int sim_root, std::size_t item_size) {
  auto mq = root_sends(mq_log, mq_root);
  auto sim = root_sends(sim_log, sim_root);
  std::erase_if(sim, [sim_root](const obs::TraceEvent& event) {
    return event.peer == sim_root;
  });
  ASSERT_EQ(mq.size(), sim.size());
  for (std::size_t i = 0; i < mq.size(); ++i) {
    EXPECT_EQ(mq[i].peer, sim[i].peer) << "send " << i << " targets differ";
    EXPECT_EQ(mq[i].arg0,
              sim[i].arg0 * static_cast<long long>(item_size))
        << "send " << i << " payload differs";
  }
}

}  // namespace lbs::testing
