// Golden-trace regression tests (observability satellite): the normalized
// TraceLog summary — event order and counts per rank, payload args, no
// timestamps — is pinned against embedded goldens for (a) the paper-testbed
// scatter, (b) the fault-tolerant recovery path, and (c) an mq runtime
// scatter. The comparator is TraceLog::normalized_summary(), which by
// construction ignores wall-clock jitter; on mismatch the actual summary is
// dumped to a file for inspection / golden regeneration.

#include <gtest/gtest.h>

#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "core/distribution.hpp"
#include "core/ordering.hpp"
#include "core/planner.hpp"
#include "gridsim/faultsim.hpp"
#include "gridsim/gridsim.hpp"
#include "model/testbed.hpp"
#include "mq/platform_link.hpp"
#include "mq/runtime.hpp"
#include "obs/trace.hpp"

namespace lbs {
namespace {

// EXPECT_EQ with a readable failure: writes the actual summary to a temp
// file so a genuine behaviour change can be diffed and the golden updated.
void expect_matches_golden(const std::string& actual, const std::string& golden,
                           const std::string& name) {
  if (actual == golden) {
    SUCCEED();
    return;
  }
  std::string path = ::testing::TempDir() + "/" + name + ".actual.txt";
  std::ofstream(path) << actual;
  ADD_FAILURE() << "normalized trace for '" << name
                << "' deviates from the golden; actual written to " << path
                << "\n--- actual ---\n"
                << actual;
}

// The fixed 4-rank linear platform used for the mq golden: small enough to
// run in milliseconds, heterogeneous enough that every rank's share is
// distinct (so a planner regression shows up in the args).
model::Platform golden_platform() {
  const std::vector<double> beta = {1e-4, 2e-4, 3e-4};
  const std::vector<double> alpha = {2e-3, 3e-3, 4e-3};
  model::Platform platform;
  for (std::size_t i = 0; i < beta.size(); ++i) {
    model::Processor proc;
    proc.label = "w" + std::to_string(i);
    proc.comm = model::Cost::linear(beta[i]);
    proc.comp = model::Cost::linear(alpha[i]);
    platform.processors.push_back(proc);
  }
  model::Processor root;
  root.label = "root";
  root.comm = model::Cost::zero();
  root.comp = model::Cost::linear(3e-3);
  platform.processors.push_back(root);
  return platform;
}

constexpr char kPaperTestbedGolden[] =
    R"(comm.recv rank=0 peer=15 arg0=87082 arg1=0
compute rank=0 peer=-1 arg0=87082 arg1=0
comm.recv rank=1 peer=15 arg0=42992 arg1=0
compute rank=1 peer=-1 arg0=42992 arg1=0
comm.recv rank=2 peer=15 arg0=82134 arg1=0
compute rank=2 peer=-1 arg0=82134 arg1=0
comm.recv rank=3 peer=15 arg0=24802 arg1=0
compute rank=3 peer=-1 arg0=24802 arg1=0
comm.recv rank=4 peer=15 arg0=24770 arg1=0
compute rank=4 peer=-1 arg0=24770 arg1=0
comm.recv rank=5 peer=15 arg0=41204 arg1=0
compute rank=5 peer=-1 arg0=41204 arg1=0
comm.recv rank=6 peer=15 arg0=41054 arg1=0
compute rank=6 peer=-1 arg0=41054 arg1=0
comm.recv rank=7 peer=15 arg0=40905 arg1=0
compute rank=7 peer=-1 arg0=40905 arg1=0
comm.recv rank=8 peer=15 arg0=40756 arg1=0
compute rank=8 peer=-1 arg0=40756 arg1=0
comm.recv rank=9 peer=15 arg0=40608 arg1=0
compute rank=9 peer=-1 arg0=40608 arg1=0
comm.recv rank=10 peer=15 arg0=40460 arg1=0
compute rank=10 peer=-1 arg0=40460 arg1=0
comm.recv rank=11 peer=15 arg0=40313 arg1=0
compute rank=11 peer=-1 arg0=40313 arg1=0
comm.recv rank=12 peer=15 arg0=40167 arg1=0
compute rank=12 peer=-1 arg0=40167 arg1=0
comm.recv rank=13 peer=15 arg0=95797 arg1=0
compute rank=13 peer=-1 arg0=95797 arg1=0
comm.recv rank=14 peer=15 arg0=93872 arg1=0
compute rank=14 peer=-1 arg0=93872 arg1=0
comm.send rank=15 peer=0 arg0=87082 arg1=0
comm.send rank=15 peer=1 arg0=42992 arg1=0
comm.send rank=15 peer=2 arg0=82134 arg1=0
comm.send rank=15 peer=3 arg0=24802 arg1=0
comm.send rank=15 peer=4 arg0=24770 arg1=0
comm.send rank=15 peer=5 arg0=41204 arg1=0
comm.send rank=15 peer=6 arg0=41054 arg1=0
comm.send rank=15 peer=7 arg0=40905 arg1=0
comm.send rank=15 peer=8 arg0=40756 arg1=0
comm.send rank=15 peer=9 arg0=40608 arg1=0
comm.send rank=15 peer=10 arg0=40460 arg1=0
comm.send rank=15 peer=11 arg0=40313 arg1=0
comm.send rank=15 peer=12 arg0=40167 arg1=0
comm.send rank=15 peer=13 arg0=95797 arg1=0
comm.send rank=15 peer=14 arg0=93872 arg1=0
compute rank=15 peer=-1 arg0=40185 arg1=0
)";

TEST(GoldenTrace, PaperTestbedScatterMatchesGolden) {
  auto grid = model::paper_testbed();
  auto platform = core::ordered_platform(
      grid, model::paper_root(grid), core::OrderingPolicy::DescendingBandwidth);
  auto plan = core::plan_scatter(platform, model::kPaperRayCount);
  auto sim = gridsim::simulate_scatter(platform, plan.distribution);
  auto log = gridsim::to_trace_log(sim.timeline);
  expect_matches_golden(log.normalized_summary(), kPaperTestbedGolden,
                        "paper_testbed_scatter");
}

// Deaths, drops, and retries are a pure function of the fault-plan seed:
// rank 1 dies after its chunk lands, the root->2 link drops the first
// attempt in round one (arg1 = 1) and two attempts in the replan round.
constexpr char kFtRecoveryGolden[] =
    R"(comm.recv rank=0 peer=4 arg0=25 arg1=0
compute rank=0 peer=-1 arg0=25 arg1=0
rank.death rank=1 peer=4 arg0=20 arg1=0
comm.recv rank=2 peer=4 arg0=25 arg1=0
compute rank=2 peer=-1 arg0=25 arg1=0
comm.recv rank=3 peer=4 arg0=25 arg1=0
compute rank=3 peer=-1 arg0=25 arg1=0
comm.send rank=4 peer=0 arg0=20 arg1=0
comm.send rank=4 peer=1 arg0=20 arg1=0
comm.send rank=4 peer=2 arg0=20 arg1=1
comm.send rank=4 peer=2 arg0=20 arg1=0
comm.send rank=4 peer=3 arg0=20 arg1=0
recovery.replan rank=4 peer=-1 arg0=20 arg1=1
comm.send rank=4 peer=0 arg0=5 arg1=0
comm.send rank=4 peer=2 arg0=5 arg1=1
comm.send rank=4 peer=2 arg0=5 arg1=1
comm.send rank=4 peer=2 arg0=5 arg1=0
comm.send rank=4 peer=3 arg0=5 arg1=0
compute rank=4 peer=-1 arg0=25 arg1=0
)";

TEST(GoldenTrace, FtRecoveryPathMatchesGolden) {
  auto platform = golden_platform();
  model::Processor extra;  // 5th position so the replan has 3 survivors
  extra.label = "w3";
  extra.comm = model::Cost::linear(4e-4);
  extra.comp = model::Cost::linear(5e-3);
  platform.processors.insert(platform.processors.end() - 1, extra);

  auto distribution = core::uniform_distribution(100, platform.size());
  mq::FaultPlan faults;
  faults.seed = 5;
  // Rank 1 dies shortly after its chunk is acknowledged (late-death sweep);
  // the link to rank 2 drops most attempts (retry path, arg1 = 1 events).
  faults.crashes.push_back({1, 0.01});
  mq::FaultPlan::LinkFault drops;
  drops.from = platform.size() - 1;
  drops.to = 2;
  drops.drop_probability = 0.8;
  faults.link_faults.push_back(drops);

  gridsim::FtSimOptions options;
  options.retry.max_attempts = 8;
  options.retry.backoff = 0.001;

  auto result = gridsim::simulate_scatter_ft(platform, distribution, faults,
                                             options);
  ASSERT_EQ(result.report.deaths.size(), 1u);
  EXPECT_EQ(result.report.deaths.front().rank, 1);
  EXPECT_GE(result.report.replan_rounds, 1);

  expect_matches_golden(result.trace.normalized_summary(), kFtRecoveryGolden,
                        "ft_recovery");

  // Bit-identical determinism: the virtual-time replay is a pure function
  // of (platform, distribution, plan) — the property goldens rely on.
  auto again = gridsim::simulate_scatter_ft(platform, distribution, faults,
                                            options);
  EXPECT_EQ(again.trace.normalized_summary(),
            result.trace.normalized_summary());
}

// Payloads are bytes (counts x sizeof(double)); mq compute spans carry no
// item count (arg0 = 0) because emulate_compute only knows a duration.
constexpr char kMqScatterGolden[] =
    R"(comm.recv rank=0 peer=3 arg0=1208 arg1=0
compute rank=0 peer=-1 arg0=0 arg1=0
comm.recv rank=1 peer=3 arg0=760 arg1=0
compute rank=1 peer=-1 arg0=0 arg1=0
comm.recv rank=2 peer=3 arg0=528 arg1=0
compute rank=2 peer=-1 arg0=0 arg1=0
comm.send rank=3 peer=0 arg0=1208 arg1=0
comm.send rank=3 peer=1 arg0=760 arg1=0
comm.send rank=3 peer=2 arg0=528 arg1=0
compute rank=3 peer=-1 arg0=0 arg1=0
)";

obs::TraceLog run_golden_mq_scatter() {
  auto platform = golden_platform();
  auto plan = core::plan_scatter(platform, 400);
  std::vector<double> data(400);
  std::iota(data.begin(), data.end(), 0.0);

  obs::Tracer tracer;
  mq::RuntimeOptions options;
  options.ranks = platform.size();
  options.time_scale = 0.005;
  options.link_cost = mq::make_link_cost(platform, sizeof(double));
  options.tracer = &tracer;
  mq::Runtime::run(options, [&](mq::Comm& comm) {
    int root = comm.size() - 1;
    auto mine = comm.scatterv<double>(root, data, plan.distribution.counts);
    mq::emulate_compute(comm, platform[comm.rank()].comp.per_item_slope() *
                                  static_cast<double>(mine.size()));
  });
  return tracer.collect();
}

TEST(GoldenTrace, MqScatterSummaryIsStableAcrossRunsAndMatchesGolden) {
  auto first = run_golden_mq_scatter().normalized_summary();
  auto second = run_golden_mq_scatter().normalized_summary();
  // The comparator ignores wall-clock jitter: two real-time runs of the
  // same plan normalize identically.
  EXPECT_EQ(first, second);
  expect_matches_golden(first, kMqScatterGolden, "mq_scatter");
}

}  // namespace
}  // namespace lbs
