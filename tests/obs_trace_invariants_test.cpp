// Acceptance test for the observability layer: trace the *same plan* on
// both substrates — the mq threaded runtime (wall clock, real sleeps) and
// gridsim (virtual time) — and replay both traces through the differential
// oracle in trace_check.hpp. The single-port invariant, Theorem 3's send
// ordering, and Eq. 1's finish times must hold on each, and the two traces
// must describe the same communication structure.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/distribution.hpp"
#include "core/ordering.hpp"
#include "core/planner.hpp"
#include "gridsim/gridsim.hpp"
#include "model/testbed.hpp"
#include "mq/platform_link.hpp"
#include "mq/runtime.hpp"
#include "obs/trace.hpp"
#include "trace_check.hpp"

namespace lbs {
namespace {

// A 6-processor linear platform in descending-bandwidth order (Theorem 3),
// root last with zero comm cost. Slopes are sized so every processor gets
// a non-empty share and an mq run at time_scale 0.05 takes ~0.2 s real.
model::Platform small_linear_platform() {
  const std::vector<double> beta = {1e-4, 2e-4, 3e-4, 5e-4, 8e-4};
  const std::vector<double> alpha = {2e-3, 2.5e-3, 3e-3, 3.5e-3, 4e-3};
  model::Platform platform;
  for (std::size_t i = 0; i < beta.size(); ++i) {
    model::Processor proc;
    proc.label = "w" + std::to_string(i);
    proc.comm = model::Cost::linear(beta[i]);
    proc.comp = model::Cost::linear(alpha[i]);
    platform.processors.push_back(proc);
  }
  model::Processor root;
  root.label = "root";
  root.comm = model::Cost::zero();
  root.comp = model::Cost::linear(3e-3);
  platform.processors.push_back(root);
  return platform;
}

// Runs the planned scatter + compute on the mq runtime and returns the
// wall-clock trace.
obs::TraceLog run_mq_scatter(const model::Platform& platform,
                             const core::ScatterPlan& plan,
                             double time_scale, obs::Tracer& tracer) {
  const int p = platform.size();
  std::vector<double> data(static_cast<std::size_t>(plan.distribution.total()));
  std::iota(data.begin(), data.end(), 0.0);

  mq::RuntimeOptions options;
  options.ranks = p;
  options.time_scale = time_scale;
  options.link_cost = mq::make_link_cost(platform, sizeof(double));
  options.tracer = &tracer;
  mq::Runtime::run(options, [&](mq::Comm& comm) {
    int root = comm.size() - 1;
    auto mine = comm.scatterv<double>(root, data, plan.distribution.counts);
    mq::emulate_compute(comm, platform[comm.rank()].comp.per_item_slope() *
                                  static_cast<double>(mine.size()));
  });
  return tracer.collect();
}

TEST(TraceInvariants, GridsimVirtualTimeTraceMatchesEq1Exactly) {
  auto platform = small_linear_platform();
  const int root = platform.size() - 1;
  auto plan = core::plan_scatter(platform, 6000);
  for (long long count : plan.distribution.counts) ASSERT_GT(count, 0);

  auto sim = gridsim::simulate_scatter(platform, plan.distribution);
  auto log = gridsim::to_trace_log(sim.timeline);

  lbs::testing::expect_single_port_root(log, root, 1e-9);
  // The simulator serves processors through the port in scatter order.
  // The root's own chunk would appear last as a rank==peer==root send,
  // but this platform's root has zero comm cost, so that span is empty
  // and — per the half-open [start, end) contract — never emitted.
  std::vector<int> expected(static_cast<std::size_t>(root));
  std::iota(expected.begin(), expected.end(), 0);
  lbs::testing::expect_send_order(log, root, expected);
  // Virtual time equals the analytic model to floating-point precision.
  lbs::testing::expect_finish_times(
      log, core::finish_times(platform, plan.distribution),
      /*anchor=*/0.0, /*time_scale=*/1.0, /*rel_tol=*/1e-12, /*abs_tol=*/1e-12);
  EXPECT_NEAR(sim.timeline.makespan(), plan.predicted_makespan,
              1e-12 * plan.predicted_makespan);
}

TEST(TraceInvariants, MqWallClockTraceHoldsSinglePortAndOrdering) {
  auto platform = small_linear_platform();
  const int root = platform.size() - 1;
  const double time_scale = 0.05;
  auto plan = core::plan_scatter(platform, 6000);
  for (long long count : plan.distribution.counts) ASSERT_GT(count, 0);

  obs::Tracer tracer;
  auto log = run_mq_scatter(platform, plan, time_scale, tracer);
  EXPECT_EQ(tracer.dropped(), 0u);

  // comm.send spans are recorded while the NIC lock is held, so root-side
  // non-overlap must hold essentially exactly even on the wall clock.
  lbs::testing::expect_single_port_root(log, root, 1e-6);
  std::vector<int> expected(static_cast<std::size_t>(root));
  std::iota(expected.begin(), expected.end(), 0);
  lbs::testing::expect_send_order(log, root, expected);

  // Eq. 1 finish times, re-anchored at the first root send and converted
  // back to nominal seconds. Real sleeps only ever overshoot, so the
  // calibrated tolerance is generous but still tight enough to catch a
  // wrong distribution or a serialization bug (which shift finish times
  // by whole send/compute durations).
  auto sends = lbs::testing::root_sends(log, root);
  ASSERT_FALSE(sends.empty());
  lbs::testing::expect_finish_times(
      log, core::finish_times(platform, plan.distribution),
      /*anchor=*/sends.front().start, time_scale,
      /*rel_tol=*/0.40, /*abs_tol=*/0.2);
}

TEST(TraceInvariants, MqAndGridsimTracesOfTheSamePlanAgreeStructurally) {
  auto platform = small_linear_platform();
  const int root = platform.size() - 1;
  auto plan = core::plan_scatter(platform, 6000);

  auto sim = gridsim::simulate_scatter(platform, plan.distribution);
  auto sim_log = gridsim::to_trace_log(sim.timeline);

  obs::Tracer tracer;
  auto mq_log = run_mq_scatter(platform, plan, 0.02, tracer);

  lbs::testing::expect_equivalent_structure(mq_log, root, sim_log, root,
                                            sizeof(double));
}

TEST(TraceInvariants, PaperTestbedVirtualTraceHoldsAllInvariants) {
  auto grid = model::paper_testbed();
  auto platform = core::ordered_platform(grid, model::paper_root(grid),
                                         core::OrderingPolicy::DescendingBandwidth);
  const int root = platform.size() - 1;
  auto plan = core::plan_scatter(platform, model::kPaperRayCount);

  auto sim = gridsim::simulate_scatter(platform, plan.distribution);
  auto log = gridsim::to_trace_log(sim.timeline);

  lbs::testing::expect_single_port_root(log, root, 1e-9);
  lbs::testing::expect_finish_times(
      log, core::finish_times(platform, plan.distribution),
      /*anchor=*/0.0, /*time_scale=*/1.0, /*rel_tol=*/1e-12, /*abs_tol=*/1e-12);
  // Descending-bandwidth order: peers with data are served in rank order.
  auto sends = lbs::testing::root_sends(log, root);
  for (std::size_t i = 1; i < sends.size(); ++i) {
    EXPECT_LT(sends[i - 1].peer, sends[i].peer);
  }
}

}  // namespace
}  // namespace lbs
