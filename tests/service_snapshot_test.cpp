// Persistence tests: snapshot codec round-trips bit-exactly, every kind
// of file damage is rejected with a typed error, and a warm-started
// server replays the previous run's cache — same bits, zero re-solves.
#include "service/snapshot.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/planner.hpp"
#include "core/sharded_plan_cache.hpp"
#include "model/testbed.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "support/error.hpp"

namespace lbs::service {
namespace {

std::string test_path(const char* stem) {
  static int counter = 0;
  return "/tmp/lbs_snapshot_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(++counter) + "_" + stem;
}

model::Platform paper_platform() {
  auto grid = model::paper_testbed();
  return model::make_platform(grid, model::paper_root(grid));
}

// A platform whose worker slope varies with `seed`: distinct PlanKeys.
model::Platform seeded_platform(int seed) {
  model::Platform platform;
  model::Processor worker;
  worker.label = "worker";
  worker.comm = model::Cost::linear(0.5);
  worker.comp = model::Cost::tabulated(
      {{10, 1.0 + 0.01 * seed}, {100, 9.0 + 0.01 * seed}});
  platform.processors.push_back(worker);
  model::Processor root;
  root.label = "root";
  root.comm = model::Cost::zero();
  root.comp = model::Cost::linear(0.2);
  platform.processors.push_back(root);
  return platform;
}

SnapshotEntry solved_entry(const model::Platform& platform, long long items,
                           core::Algorithm algorithm = core::Algorithm::Auto) {
  core::PlannerOptions options;
  options.algorithm = algorithm;
  return {core::make_plan_key(platform, items, algorithm),
          core::plan_scatter(platform, items, options)};
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void dump(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void expect_entries_bit_identical(const SnapshotEntry& a, const SnapshotEntry& b) {
  EXPECT_EQ(a.first.costs, b.first.costs);
  EXPECT_EQ(a.first.items, b.first.items);
  EXPECT_EQ(a.first.algorithm, b.first.algorithm);
  EXPECT_EQ(a.second.distribution.counts, b.second.distribution.counts);
  EXPECT_EQ(a.second.displacements, b.second.displacements);
  EXPECT_EQ(a.second.algorithm_used, b.second.algorithm_used);
  EXPECT_EQ(a.second.dp_cells_evaluated, b.second.dp_cells_evaluated);
  EXPECT_EQ(a.second.dp_threads, b.second.dp_threads);
  // Bit patterns, not EXPECT_DOUBLE_EQ: the contract is bit-exact replay.
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.second.predicted_makespan),
            std::bit_cast<std::uint64_t>(b.second.predicted_makespan));
  ASSERT_EQ(a.second.predicted_finish.size(), b.second.predicted_finish.size());
  for (std::size_t i = 0; i < a.second.predicted_finish.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.second.predicted_finish[i]),
              std::bit_cast<std::uint64_t>(b.second.predicted_finish[i]));
  }
}

TEST(SnapshotCodec, RoundTripsBitExactly) {
  std::vector<SnapshotEntry> entries;
  entries.push_back(solved_entry(paper_platform(), 817101));
  entries.push_back(solved_entry(seeded_platform(1), 5000, core::Algorithm::ExactDp));
  entries.push_back(solved_entry(seeded_platform(2), 12345));

  std::string path = test_path("roundtrip.snap");
  SnapshotStats stats = write_snapshot(path, entries);
  EXPECT_EQ(stats.entries, entries.size());
  EXPECT_GT(stats.bytes, 24u);

  std::vector<SnapshotEntry> restored = read_snapshot(path);
  ASSERT_EQ(restored.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    expect_entries_bit_identical(entries[i], restored[i]);
  }
  ::unlink(path.c_str());
}

TEST(SnapshotCodec, EmptySnapshotRoundTrips) {
  std::string path = test_path("empty.snap");
  SnapshotStats stats = write_snapshot(path, {});
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_TRUE(read_snapshot(path).empty());
  ::unlink(path.c_str());
}

TEST(SnapshotCodec, MissingFileThrows) {
  EXPECT_THROW((void)read_snapshot(test_path("never_written.snap")), lbs::Error);
}

TEST(SnapshotCodec, RejectsForeignMagic) {
  std::string path = test_path("magic.snap");
  write_snapshot(path, {solved_entry(seeded_platform(3), 400)});
  auto bytes = slurp(path);
  bytes[0] ^= 0xFF;
  dump(path, bytes);
  EXPECT_THROW((void)read_snapshot(path), lbs::Error);
  ::unlink(path.c_str());
}

TEST(SnapshotCodec, RejectsStaleVersion) {
  std::string path = test_path("version.snap");
  write_snapshot(path, {solved_entry(seeded_platform(4), 400)});
  auto bytes = slurp(path);
  bytes[8] += 1;  // format_version lives right after the u64 magic
  dump(path, bytes);
  EXPECT_THROW((void)read_snapshot(path), lbs::Error);
  ::unlink(path.c_str());
}

TEST(SnapshotCodec, RejectsTruncation) {
  std::string path = test_path("truncated.snap");
  write_snapshot(path, {solved_entry(seeded_platform(5), 400)});
  auto bytes = slurp(path);
  for (std::size_t keep : {bytes.size() - 1, bytes.size() / 2, std::size_t{10},
                           std::size_t{0}}) {
    dump(path, {bytes.begin(), bytes.begin() + static_cast<long>(keep)});
    EXPECT_THROW((void)read_snapshot(path), lbs::Error) << "kept " << keep;
  }
  ::unlink(path.c_str());
}

TEST(SnapshotCodec, RejectsTrailingGarbage) {
  std::string path = test_path("trailing.snap");
  write_snapshot(path, {solved_entry(seeded_platform(6), 400)});
  auto bytes = slurp(path);
  bytes.push_back(0x5A);
  dump(path, bytes);
  EXPECT_THROW((void)read_snapshot(path), lbs::Error);
  ::unlink(path.c_str());
}

TEST(SnapshotCodec, RejectsEveryPayloadBitFlip) {
  std::string path = test_path("bitflip.snap");
  write_snapshot(path, {solved_entry(seeded_platform(7), 400)});
  const auto pristine = slurp(path);
  // Flip one byte at a spread of payload offsets: the CRC catches all of
  // them regardless of which field the byte lands in.
  for (std::size_t offset = 24; offset < pristine.size(); offset += 7) {
    auto bytes = pristine;
    bytes[offset] ^= 0x01;
    dump(path, bytes);
    EXPECT_THROW((void)read_snapshot(path), lbs::Error) << "offset " << offset;
  }
  ::unlink(path.c_str());
}

TEST(SnapshotCodec, AtomicallyReplacesExistingSnapshot) {
  std::string path = test_path("replace.snap");
  write_snapshot(path, {solved_entry(seeded_platform(8), 400)});
  std::vector<SnapshotEntry> second = {solved_entry(seeded_platform(9), 500),
                                       solved_entry(seeded_platform(10), 600)};
  write_snapshot(path, second);
  EXPECT_EQ(read_snapshot(path).size(), 2u);
  // No .tmp.<pid> stragglers once the rename landed.
  std::string tmp = path + ".tmp." + std::to_string(::getpid());
  EXPECT_NE(::access(tmp.c_str(), F_OK), 0);
  ::unlink(path.c_str());
}

TEST(ShardedCacheExport, RestorePreservesRecencyOrder) {
  core::ShardedPlanCache cache(/*shards=*/1, /*capacity_per_shard=*/2);
  SnapshotEntry a = solved_entry(seeded_platform(11), 700);
  SnapshotEntry b = solved_entry(seeded_platform(12), 800);
  cache.insert(a.first, a.second);
  cache.insert(b.first, b.second);
  (void)cache.lookup(a.first);  // a is now most recent, b least

  core::ShardedPlanCache replica(1, 2);
  replica.restore_entries(cache.export_entries());
  EXPECT_EQ(replica.size(), 2u);

  // A third insert must evict b (least recent), not a.
  SnapshotEntry c = solved_entry(seeded_platform(13), 900);
  replica.insert(c.first, c.second);
  EXPECT_TRUE(replica.lookup(a.first).has_value());
  EXPECT_FALSE(replica.lookup(b.first).has_value());
  EXPECT_TRUE(replica.lookup(c.first).has_value());
}

TEST(ServerWarmStart, ReplaysPreviousRunBitIdentically) {
  std::string socket_a = test_path("warm_a.sock");
  std::string socket_b = test_path("warm_b.sock");
  std::string snapshot = test_path("warm.snap");

  auto platform = paper_platform();
  std::vector<long long> sizes = {817101, 5000, 12345};
  std::vector<PlanResponse> first_run;

  {
    ServerOptions options;
    options.socket_path = socket_a;
    options.snapshot_path = snapshot;
    Server server(options);
    server.start();
    Client client(socket_a);
    for (long long items : sizes) {
      first_run.push_back(client.plan(platform, items));
      ASSERT_EQ(first_run.back().status, PlanStatus::Ok);
    }
    client.close();
    server.stop();  // writes the on-drain snapshot
  }
  ASSERT_EQ(::access(snapshot.c_str(), F_OK), 0);

  obs::Metrics metrics;
  ServerOptions options;
  options.socket_path = socket_b;
  options.warm_start_path = snapshot;
  options.metrics = &metrics;
  Server server(options);
  server.start();
  EXPECT_EQ(server.cache().size(), sizes.size());

  Client client(socket_b);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    PlanResponse replayed = client.plan(platform, sizes[i]);
    ASSERT_EQ(replayed.status, PlanStatus::Ok);
    EXPECT_TRUE(replayed.cache_hit) << "items=" << sizes[i];
    EXPECT_EQ(replayed.counts, first_run[i].counts);
    EXPECT_EQ(replayed.algorithm_used, first_run[i].algorithm_used);
    EXPECT_EQ(replayed.dp_cells_evaluated, first_run[i].dp_cells_evaluated);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(replayed.predicted_makespan),
              std::bit_cast<std::uint64_t>(first_run[i].predicted_makespan));
  }
  // Nothing was re-solved: the warm cache answered everything.
  EXPECT_EQ(server.counters().solved, 0u);
  EXPECT_EQ(server.counters().cache_hits, sizes.size());
  EXPECT_EQ(metrics.counter("service.snapshot.restores").value(), 1u);
  EXPECT_EQ(metrics.counter("service.snapshot.restored_entries").value(),
            sizes.size());
  client.close();
  server.stop();
  ::unlink(snapshot.c_str());
}

TEST(ServerWarmStart, CorruptSnapshotColdStartsWithoutCrashing) {
  std::string snapshot = test_path("corrupt.snap");
  write_snapshot(snapshot, {solved_entry(seeded_platform(14), 1000)});
  auto bytes = slurp(snapshot);
  bytes[bytes.size() / 2] ^= 0x40;
  dump(snapshot, bytes);

  obs::Metrics metrics;
  ServerOptions options;
  options.socket_path = test_path("corrupt.sock");
  options.warm_start_path = snapshot;
  options.metrics = &metrics;
  Server server(options);
  server.start();  // must not throw

  EXPECT_EQ(server.cache().size(), 0u);  // nothing poisoned the cache
  EXPECT_EQ(metrics.counter("service.snapshot.rejected").value(), 1u);
  EXPECT_EQ(metrics.counter("service.snapshot.restores").value(), 0u);

  // And the cold server still serves correct plans.
  Client client(options.socket_path);
  auto platform = paper_platform();
  PlanResponse response = client.plan(platform, 4321);
  ASSERT_EQ(response.status, PlanStatus::Ok);
  auto direct = core::plan_scatter(platform, 4321);
  EXPECT_EQ(response.counts, direct.distribution.counts);
  client.close();
  server.stop();
  ::unlink(snapshot.c_str());
}

TEST(ServerWarmStart, MissingSnapshotColdStarts) {
  obs::Metrics metrics;
  ServerOptions options;
  options.socket_path = test_path("missing.sock");
  options.warm_start_path = test_path("not_there.snap");
  options.metrics = &metrics;
  Server server(options);
  server.start();
  EXPECT_EQ(metrics.counter("service.snapshot.rejected").value(), 1u);
  server.stop();
}

TEST(ServerSnapshot, PeriodicWriterPersistsWhileServing) {
  obs::Metrics metrics;
  obs::Tracer tracer;
  ServerOptions options;
  options.socket_path = test_path("periodic.sock");
  options.snapshot_path = test_path("periodic.snap");
  options.snapshot_interval_ms = 20;
  options.metrics = &metrics;
  options.tracer = &tracer;
  Server server(options);
  server.start();

  Client client(options.socket_path);
  ASSERT_EQ(client.plan(seeded_platform(15), 2000).status, PlanStatus::Ok);

  // Within a few intervals the periodic writer must have landed a
  // readable snapshot containing the solved plan.
  bool persisted = false;
  for (int i = 0; i < 200 && !persisted; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    try {
      persisted = read_snapshot(options.snapshot_path).size() == 1;
    } catch (const lbs::Error&) {
      // not written yet
    }
  }
  EXPECT_TRUE(persisted);
  client.close();
  server.stop();

  EXPECT_GE(metrics.counter("service.snapshot.writes").value(), 2u);  // ticks + drain
  obs::TraceLog log = tracer.collect();
  EXPECT_FALSE(log.of_type(obs::EventType::ServiceSnapshot).empty());
  ::unlink(options.snapshot_path.c_str());
}

// Satellite: server shutdown with in-flight requests must drain — every
// accepted solve is answered over its still-open connection, no reply is
// lost to an eagerly closed fd.
TEST(ServerShutdown, DrainsInFlightSolvesBeforeClosingConnections) {
  constexpr int kInFlight = 4;
  ServerOptions options;
  options.socket_path = test_path("drain.sock");
  options.solve_delay_ms = 200;  // keep the batch in flight during stop()
  Server server(options);
  server.start();

  Client client(options.socket_path);
  std::vector<std::future<PlanResponse>> futures;
  std::vector<model::Platform> platforms;
  for (int i = 0; i < kInFlight; ++i) {
    platforms.push_back(seeded_platform(20 + i));
    futures.push_back(client.plan_async(platforms.back(), 3000 + i));
  }
  // Wait until every request is accepted (queued or solving), then pull
  // the rug: stop() must answer all of them, not strand them.
  for (int i = 0; i < 500 && server.counters().requests < kInFlight; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server.counters().requests, static_cast<std::uint64_t>(kInFlight));

  std::thread stopper([&] { server.stop(); });
  for (int i = 0; i < kInFlight; ++i) {
    PlanResponse response = futures[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(response.status, PlanStatus::Ok) << response.message;
    auto direct = core::plan_scatter(platforms[static_cast<std::size_t>(i)],
                                     3000 + i);
    EXPECT_EQ(response.counts, direct.distribution.counts);
  }
  stopper.join();
  client.close();
}

}  // namespace
}  // namespace lbs::service
