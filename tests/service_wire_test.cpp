#include "service/protocol.hpp"

#include <gtest/gtest.h>

#include "core/plan_cache.hpp"
#include "model/testbed.hpp"
#include "support/error.hpp"

namespace lbs::service {
namespace {

model::Platform sample_platform() {
  model::Platform platform;
  model::Processor worker;
  worker.label = "worker";
  worker.comm = model::Cost::affine(0.5, 0.01);
  worker.comp = model::Cost::tabulated({{10, 1.0}, {100, 8.0}, {1000, 70.0}});
  platform.processors.push_back(worker);
  model::Processor chunky;
  chunky.label = "chunky";
  chunky.comm = model::Cost::chunked(0.1, 64, 0.5);
  chunky.comp = model::Cost::scaled(model::Cost::linear(0.25), 1.5);
  platform.processors.push_back(chunky);
  model::Processor root;
  root.label = "root";
  root.comm = model::Cost::zero();
  root.comp = model::Cost::linear(0.2);
  platform.processors.push_back(root);
  return platform;
}

TEST(Wire, CostRoundTripsFingerprintExactly) {
  // Every cost kind, including nested scaled(tabulated): the decoded cost
  // must fingerprint identically — that is what makes client-side and
  // server-side cache keys agree.
  std::vector<model::Cost> costs = {
      model::Cost::zero(),
      model::Cost::linear(0.123456789),
      model::Cost::affine(3.5, 0.001),
      model::Cost::tabulated({{1, 0.5}, {10, 4.25}, {100, 39.0}}),
      model::Cost::chunked(0.25, 128, 2.0),
      model::Cost::scaled(model::Cost::tabulated({{5, 1.0}, {50, 9.5}}), 0.75),
      model::Cost::scaled(model::Cost::scaled(model::Cost::affine(1.0, 0.1), 2.0), 0.5),
  };
  for (const auto& cost : costs) {
    WireWriter out;
    encode_cost(out, cost);
    auto bytes = out.take();
    WireReader in(bytes.data(), bytes.size());
    model::Cost decoded = decode_cost(in);
    in.expect_end();
    EXPECT_EQ(decoded.fingerprint(), cost.fingerprint());
    EXPECT_DOUBLE_EQ(decoded.at(1000), cost.at(1000));
  }
}

TEST(Wire, PlatformRoundTripPreservesPlanKey) {
  auto platform = sample_platform();
  WireWriter out;
  encode_platform(out, platform);
  auto bytes = out.take();
  WireReader in(bytes.data(), bytes.size());
  model::Platform decoded = decode_platform(in);
  in.expect_end();

  ASSERT_EQ(decoded.size(), platform.size());
  EXPECT_EQ(core::make_plan_key(decoded, 1000, core::Algorithm::Auto),
            core::make_plan_key(platform, 1000, core::Algorithm::Auto));
}

TEST(Wire, PlanRequestRoundTrip) {
  PlanRequest request;
  request.id = 0xdeadbeefcafe;
  request.algorithm = core::Algorithm::ExactDp;
  request.items = 817101;
  request.platform = sample_platform();

  Message message = decode_message(encode_plan_request(request));
  ASSERT_EQ(message.type, MessageType::PlanRequest);
  ASSERT_TRUE(message.plan_request.has_value());
  EXPECT_EQ(message.plan_request->id, request.id);
  EXPECT_EQ(message.plan_request->algorithm, core::Algorithm::ExactDp);
  EXPECT_EQ(message.plan_request->items, 817101);
  EXPECT_EQ(core::make_plan_key(message.plan_request->platform, request.items,
                                request.algorithm),
            core::make_plan_key(request.platform, request.items, request.algorithm));
}

TEST(Wire, PlanResponseRoundTripOk) {
  PlanResponse response;
  response.id = 42;
  response.status = PlanStatus::Ok;
  response.counts = {100, 250, 650};
  response.predicted_makespan = 12.5;
  response.algorithm_used = core::Algorithm::LinearClosedForm;
  response.dp_cells_evaluated = 12345;
  response.cache_hit = true;
  response.coalesced = false;

  Message message = decode_message(encode_plan_response(response));
  ASSERT_EQ(message.type, MessageType::PlanResponse);
  ASSERT_TRUE(message.plan_response.has_value());
  const PlanResponse& decoded = *message.plan_response;
  EXPECT_EQ(decoded.id, 42u);
  EXPECT_EQ(decoded.status, PlanStatus::Ok);
  EXPECT_EQ(decoded.counts, response.counts);
  EXPECT_DOUBLE_EQ(decoded.predicted_makespan, 12.5);
  EXPECT_EQ(decoded.algorithm_used, core::Algorithm::LinearClosedForm);
  EXPECT_EQ(decoded.dp_cells_evaluated, 12345);
  EXPECT_TRUE(decoded.cache_hit);
  EXPECT_FALSE(decoded.coalesced);
  EXPECT_EQ(decoded.displacements(), (std::vector<long long>{0, 100, 350}));
}

TEST(Wire, PlanResponseRoundTripRejected) {
  PlanResponse response;
  response.id = 7;
  response.status = PlanStatus::Rejected;
  response.retry_after_ms = 50;

  Message message = decode_message(encode_plan_response(response));
  ASSERT_TRUE(message.plan_response.has_value());
  EXPECT_EQ(message.plan_response->status, PlanStatus::Rejected);
  EXPECT_EQ(message.plan_response->retry_after_ms, 50u);
}

TEST(Wire, PlanResponseRoundTripError) {
  PlanResponse response;
  response.id = 9;
  response.status = PlanStatus::Error;
  response.message = "lp-heuristic requires affine costs";

  Message message = decode_message(encode_plan_response(response));
  ASSERT_TRUE(message.plan_response.has_value());
  EXPECT_EQ(message.plan_response->status, PlanStatus::Error);
  EXPECT_EQ(message.plan_response->message, "lp-heuristic requires affine costs");
}

TEST(Wire, PlanResponseRoundTripClientSideStatuses) {
  // Timeout/BreakerOpen are minted client-side, but they still encode —
  // a proxy or a test harness may relay them — and carry their cause.
  for (PlanStatus status : {PlanStatus::Timeout, PlanStatus::BreakerOpen}) {
    PlanResponse response;
    response.id = 11;
    response.status = status;
    response.message = "typed transport failure";

    Message message = decode_message(encode_plan_response(response));
    ASSERT_TRUE(message.plan_response.has_value());
    EXPECT_EQ(message.plan_response->status, status);
    EXPECT_EQ(message.plan_response->message, "typed transport failure");
  }
}

TEST(Wire, ControlMessagesRoundTrip) {
  for (MessageType type : {MessageType::Ping, MessageType::Pong,
                           MessageType::StatsRequest, MessageType::Shutdown,
                           MessageType::ShutdownAck}) {
    Message message = decode_message(encode_control(type, 1234));
    EXPECT_EQ(message.type, type);
    EXPECT_EQ(message.id, 1234u);
  }
  Message stats = decode_message(encode_stats_response(5, "{\"x\": 1}"));
  EXPECT_EQ(stats.type, MessageType::StatsResponse);
  EXPECT_EQ(stats.text, "{\"x\": 1}");
}

TEST(Wire, RejectsTruncatedPayload) {
  auto bytes = encode_plan_request(
      PlanRequest{1, core::Algorithm::Auto, 100, 0, sample_platform()});
  for (std::size_t cut : {bytes.size() - 1, bytes.size() / 2, std::size_t{3}}) {
    EXPECT_THROW(static_cast<void>(decode_message(bytes.data(), cut)), lbs::Error)
        << "cut at " << cut;
  }
}

TEST(Wire, RejectsTrailingBytes) {
  auto bytes = encode_control(MessageType::Ping, 1);
  bytes.push_back(0);
  EXPECT_THROW(static_cast<void>(decode_message(bytes)), lbs::Error);
}

TEST(Wire, RejectsUnknownTypeAndBadVersion) {
  auto bytes = encode_control(MessageType::Ping, 1);
  auto bad_type = bytes;
  bad_type[1] = 0xee;
  EXPECT_THROW(static_cast<void>(decode_message(bad_type)), lbs::Error);

  auto bad_version = bytes;
  bad_version[0] = kProtocolVersion + 1;
  EXPECT_THROW(static_cast<void>(decode_message(bad_version)), lbs::Error);
}

TEST(Wire, RejectsRunawayScaledNesting) {
  // Hand-craft a hostile frame: Scaled wrapping Scaled past the depth
  // bound (the encoder refuses to produce one, so build the bytes raw).
  WireWriter out;
  for (int i = 0; i < kMaxCostSpecDepth + 2; ++i) {
    out.put_u8(static_cast<std::uint8_t>(model::CostSpec::Kind::Scaled));
    out.put_f64(1.0);
  }
  out.put_u8(static_cast<std::uint8_t>(model::CostSpec::Kind::Zero));
  auto bytes = out.take();
  WireReader in(bytes.data(), bytes.size());
  EXPECT_THROW(static_cast<void>(decode_cost(in)), lbs::Error);

  // And the encoder itself refuses runaway nesting. (Factor != 1: scaled
  // with factor 1.0 collapses to the inner cost and never nests.)
  model::Cost cost = model::Cost::linear(1.0);
  for (int i = 0; i < kMaxCostSpecDepth + 2; ++i) {
    cost = model::Cost::scaled(cost, 2.0);
  }
  WireWriter reject;
  EXPECT_THROW(encode_cost(reject, cost), lbs::Error);
}

TEST(Wire, RejectsImplausibleCounts) {
  // A hostile frame claiming 2^31 processors must die at decode, not
  // allocate.
  WireWriter out;
  out.put_u8(kProtocolVersion);
  out.put_u8(static_cast<std::uint8_t>(MessageType::PlanRequest));
  out.put_u64(1);
  out.put_u8(static_cast<std::uint8_t>(core::Algorithm::Auto));
  out.put_i64(100);
  out.put_u32(0x80000000u);  // processor count
  auto bytes = out.take();
  EXPECT_THROW(static_cast<void>(decode_message(bytes)), lbs::Error);
}

}  // namespace
}  // namespace lbs::service
