// Fault injection and the degradation-aware scatter path: tag contracts,
// drops/retries, deterministic perturbations, rank crashes, and the
// recovery protocol of Comm::scatterv_ft.

#include "mq/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <mutex>
#include <numeric>
#include <string>
#include <vector>

#include "core/planner.hpp"
#include "core/recovery.hpp"
#include "model/platform.hpp"
#include "mq/platform_link.hpp"
#include "mq/runtime.hpp"
#include "support/error.hpp"

namespace lbs::mq {
namespace {

// Runs the runtime under a hard wall-clock bound so a hung recovery path
// fails the suite instead of wedging it.
void run_bounded(const RuntimeOptions& options,
                 const std::function<void(Comm&)>& fn,
                 std::chrono::seconds limit = std::chrono::seconds(120)) {
  auto future = std::async(std::launch::async, [&] { Runtime::run(options, fn); });
  if (future.wait_for(limit) == std::future_status::timeout) {
    std::fprintf(stderr, "watchdog: mq runtime exceeded its time bound\n");
    std::abort();
  }
  future.get();  // propagates the runtime's exception, if any
}

// Workers with Tcomm = beta_i * x, Tcomp = alpha * x; zero-cost root last.
model::Platform linear_platform(const std::vector<double>& betas, double alpha) {
  model::Platform platform;
  for (std::size_t i = 0; i < betas.size(); ++i) {
    model::Processor worker;
    worker.label = "w" + std::to_string(i);
    worker.comm = model::Cost::linear(betas[i]);
    worker.comp = model::Cost::linear(alpha);
    platform.processors.push_back(worker);
  }
  model::Processor root;
  root.label = "root";
  root.comm = model::Cost::zero();
  root.comp = model::Cost::linear(alpha);
  platform.processors.push_back(root);
  return platform;
}

std::vector<double> sequential_items(long long n) {
  std::vector<double> items(static_cast<std::size_t>(n));
  std::iota(items.begin(), items.end(), 0.0);
  return items;
}

TEST(FaultInjector, ValidatesPlans) {
  FaultPlan bad_rank;
  bad_rank.crashes.push_back({7, 0.0});
  EXPECT_THROW(FaultInjector(bad_rank, 4), Error);

  FaultPlan bad_drop;
  bad_drop.link_faults.push_back({0, 1, 1.0, 0.0, 1.5, 0.0, 0.0, 1.0});
  EXPECT_THROW(FaultInjector(bad_drop, 4), Error);

  FaultPlan bad_factor;
  bad_factor.link_faults.push_back({0, 1, 0.0});
  EXPECT_THROW(FaultInjector(bad_factor, 4), Error);
}

TEST(FaultInjector, SameSeedSameDecisions) {
  FaultPlan plan;
  plan.seed = 2024;
  FaultPlan::LinkFault fault;
  fault.jitter = 0.3;
  fault.drop_probability = 0.4;
  plan.link_faults.push_back(fault);

  FaultInjector a(plan, 4);
  FaultInjector b(plan, 4);
  for (int i = 0; i < 200; ++i) {
    auto pa = a.perturb_send(3, 1, 0.0, true);
    auto pb = b.perturb_send(3, 1, 0.0, true);
    EXPECT_DOUBLE_EQ(pa.delay_factor, pb.delay_factor);
    EXPECT_EQ(pa.dropped, pb.dropped);
    EXPECT_GE(pa.delay_factor, 0.7);
    EXPECT_LE(pa.delay_factor, 1.3);
  }
}

TEST(FaultInjector, DegradationGrowsOverTime) {
  FaultPlan plan;
  FaultPlan::LinkFault fault;
  fault.from = 2;
  fault.to = 0;
  fault.delay_factor = 2.0;
  fault.degradation_rate = 0.1;
  plan.link_faults.push_back(fault);
  FaultInjector injector(plan, 3);

  EXPECT_DOUBLE_EQ(injector.delay_factor(2, 0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(injector.delay_factor(2, 0, 10.0), 2.0 * 2.0);
  EXPECT_DOUBLE_EQ(injector.delay_factor(2, 1, 10.0), 1.0);  // other link
  EXPECT_DOUBLE_EQ(injector.delay_factor(0, 2, 10.0), 1.0);  // other direction
}

TEST(DegradedPlatform, ScalesOnlyAffectedLinks) {
  auto platform = linear_platform({1.0, 2.0}, 0.5);
  FaultPlan plan;
  FaultPlan::LinkFault fault;
  fault.from = 2;  // the root position
  fault.to = 0;
  fault.delay_factor = 3.0;
  fault.degradation_rate = 0.5;
  plan.link_faults.push_back(fault);

  auto degraded = degraded_platform(platform, plan, 0.0);
  EXPECT_DOUBLE_EQ(degraded[0].comm(10), 30.0);
  EXPECT_DOUBLE_EQ(degraded[1].comm(10), 20.0);
  EXPECT_DOUBLE_EQ(degraded[0].comp(10), 5.0);

  auto later = degraded_platform(platform, plan, 4.0);
  EXPECT_DOUBLE_EQ(later[0].comm(10), 10.0 * 3.0 * (1.0 + 0.5 * 4.0));
  EXPECT_TRUE(later[0].comm.is_increasing());
}

TEST(TagContract, NegativeUserTagsThrowEverywhere) {
  RuntimeOptions options;
  options.ranks = 2;
  run_bounded(options, [](Comm& comm) {
    const std::byte token{1};
    std::span<const std::byte> payload(&token, 1);
    int peer = 1 - comm.rank();
    EXPECT_THROW(comm.send_bytes(peer, -1, payload), Error);
    EXPECT_THROW(comm.send_bytes(peer, -5, payload), Error);
    EXPECT_THROW(comm.isend_bytes(peer, -2, {std::byte{1}}), Error);
    EXPECT_THROW(comm.send_bytes_with_retry(peer, -9, payload), Error);
    EXPECT_THROW(comm.recv_message(peer, -5), Error);
    EXPECT_THROW(comm.recv_message(peer, -5, 0.01), Error);
    // The wildcard stays legal.
    EXPECT_FALSE(comm.recv_message(peer, kAnyTag, 0.0).has_value());
  });
}

TEST(ReduceContract, LengthMismatchReportsAccurately) {
  RuntimeOptions options;
  options.ranks = 2;
  try {
    run_bounded(options, [](Comm& comm) {
      std::vector<int> contribution(comm.rank() == 0 ? 2 : 3, 1);
      comm.reduce<int>(0, contribution, [](int a, int b) { return a + b; });
    });
    FAIL() << "mismatched reduce lengths must throw";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("same length"), std::string::npos)
        << error.what();
  }
}

TEST(Drops, RetryDeliversThroughLossyLink) {
  RuntimeOptions options;
  options.ranks = 2;
  options.faults.seed = 7;
  FaultPlan::LinkFault lossy;
  lossy.from = 0;
  lossy.to = 1;
  lossy.drop_probability = 0.5;
  options.faults.link_faults.push_back(lossy);

  run_bounded(options, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> data{1.0, 2.0, 3.0};
      RetryPolicy policy;
      policy.max_attempts = 64;
      auto bytes = std::as_bytes(std::span<const double>(data));
      EXPECT_TRUE(comm.send_bytes_with_retry(1, 4, bytes, policy));
    } else {
      auto message = comm.recv_message(0, 4);
      EXPECT_EQ(Comm::decode<double>(message.payload),
                (std::vector<double>{1.0, 2.0, 3.0}));
    }
  });
}

TEST(Drops, PlainSendVanishesAndTimeoutRecvObservesIt) {
  RuntimeOptions options;
  options.ranks = 2;
  FaultPlan::LinkFault black_hole;
  black_hole.from = 0;
  black_hole.to = 1;
  black_hole.drop_probability = 1.0;
  options.faults.link_faults.push_back(black_hole);

  run_bounded(options, [](Comm& comm) {
    if (comm.rank() == 0) {
      const std::byte token{9};
      comm.send_bytes(1, 3, std::span<const std::byte>(&token, 1));  // lost
      RetryPolicy policy;
      policy.max_attempts = 5;
      EXPECT_FALSE(
          comm.send_bytes_with_retry(1, 3, std::span<const std::byte>(&token, 1),
                                     policy));
    } else {
      EXPECT_FALSE(comm.recv_message(0, 3, 0.05).has_value());
    }
  });
}

TEST(Crashes, DeadFromBirthIsVisibleToSurvivors) {
  RuntimeOptions options;
  options.ranks = 3;
  options.faults.crashes.push_back({1, 0.0});

  std::atomic<int> survivors{0};
  run_bounded(options, [&](Comm& comm) {
    if (comm.rank() == 1) {
      // First runtime call of the victim dies with RankCrashed, which the
      // runtime absorbs as an injected death.
      comm.recv_value<int>(0, 11);
      FAIL() << "crashed rank must not receive";
    } else {
      EXPECT_TRUE(comm.rank_dead(1));
      EXPECT_FALSE(comm.rank_dead(comm.rank()));
      if (comm.rank() == 0) {
        comm.send_value<int>(2, 12, 42);
      } else {
        EXPECT_EQ(comm.recv_value<int>(0, 12), 42);
      }
      ++survivors;
    }
  });
  EXPECT_EQ(survivors.load(), 2);
}

TEST(Crashes, TimedCrashRequiresPacing) {
  RuntimeOptions options;
  options.ranks = 2;
  options.time_scale = 0.0;
  options.faults.crashes.push_back({1, 5.0});
  EXPECT_THROW(Runtime::run(options, [](Comm&) {}), Error);
}

struct FtRun {
  std::vector<std::vector<double>> results;
  FaultReport report;
};

// Runs scatterv_ft over `platform` (rank i = position i, root last) and
// collects every rank's returned share plus the root's report.
FtRun run_ft_scatter(const model::Platform& platform,
                     const std::vector<long long>& counts,
                     const std::vector<double>& items, RuntimeOptions options,
                     const ScattervFtOptions& ft) {
  const int ranks = platform.size();
  const int root = ranks - 1;
  options.ranks = ranks;
  options.link_cost = make_link_cost(platform, sizeof(double));

  FtRun run;
  run.results.resize(static_cast<std::size_t>(ranks));
  std::mutex mutex;
  run_bounded(options, [&](Comm& comm) {
    FaultReport report;
    auto share = comm.scatterv_ft<double>(root, items, counts, ft,
                                          comm.rank() == root ? &report : nullptr);
    std::lock_guard lock(mutex);
    run.results[static_cast<std::size_t>(comm.rank())] = std::move(share);
    if (comm.rank() == root) run.report = std::move(report);
  });
  return run;
}

// Every input item lands exactly once across the returned shares.
void expect_exactly_once(const FtRun& run, const std::vector<double>& items) {
  std::vector<double> received;
  for (const auto& share : run.results) {
    received.insert(received.end(), share.begin(), share.end());
  }
  ASSERT_EQ(received.size(), items.size());
  std::sort(received.begin(), received.end());
  std::vector<double> expected = items;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(received, expected);
}

TEST(ScattervFt, NoFaultsMatchesScatterv) {
  auto platform = linear_platform({1.0, 1.0, 1.0}, 0.1);
  auto items = sequential_items(12);
  std::vector<long long> counts{3, 4, 2, 3};
  auto run = run_ft_scatter(platform, counts, items, RuntimeOptions{}, {});
  EXPECT_TRUE(run.report.deaths.empty());
  EXPECT_EQ(run.report.rerouted_items, 0);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(run.results[static_cast<std::size_t>(r)].size(),
              static_cast<std::size_t>(counts[static_cast<std::size_t>(r)]));
    EXPECT_EQ(run.report.delivered[static_cast<std::size_t>(r)],
              counts[static_cast<std::size_t>(r)]);
  }
  expect_exactly_once(run, items);
  // Contiguity: rank 1's share is items [3, 7).
  EXPECT_EQ(run.results[1], (std::vector<double>{3.0, 4.0, 5.0, 6.0}));
}

TEST(ScattervFt, CrashedRankShareIsReroutedExactlyOnce) {
  auto platform = linear_platform({1.0, 1.0, 1.0}, 0.1);
  auto items = sequential_items(12);
  std::vector<long long> counts{3, 4, 2, 3};
  RuntimeOptions options;
  options.faults.crashes.push_back({1, 0.0});

  auto run = run_ft_scatter(platform, counts, items, options, {});
  ASSERT_EQ(run.report.deaths.size(), 1u);
  EXPECT_EQ(run.report.deaths[0].rank, 1);
  EXPECT_EQ(run.report.deaths[0].undelivered, 4);
  EXPECT_EQ(run.report.rerouted_items, 4);
  EXPECT_EQ(run.report.replan_rounds, 1);
  EXPECT_EQ(run.report.delivered[1], 0);
  EXPECT_EQ(run.report.total_delivered(), 12);
  EXPECT_TRUE(run.results[1].empty());
  expect_exactly_once(run, items);
}

TEST(ScattervFt, CoreReplannerReroutesOverReducedPlatform) {
  auto platform = linear_platform({1.0, 2.0, 4.0}, 0.5);
  auto items = sequential_items(40);
  auto plan = core::plan_scatter(platform, 40);
  RuntimeOptions options;
  options.faults.crashes.push_back({0, 0.0});

  ScattervFtOptions ft;
  ft.replan = core::make_ft_replanner(platform);
  auto run = run_ft_scatter(platform, plan.distribution.counts, items, options, ft);
  ASSERT_EQ(run.report.deaths.size(), 1u);
  EXPECT_EQ(run.report.deaths[0].rank, 0);
  EXPECT_EQ(run.report.total_delivered(), 40);
  expect_exactly_once(run, items);
}

TEST(ScattervFt, SameSeedIsBitForBitReproducible) {
  auto platform = linear_platform({1.0, 1.0, 1.0}, 0.1);
  auto items = sequential_items(24);
  std::vector<long long> counts{8, 6, 4, 6};
  RuntimeOptions options;
  options.faults.seed = 99;
  options.faults.crashes.push_back({2, 0.0});
  FaultPlan::LinkFault lossy;
  lossy.from = 3;
  lossy.to = 0;
  lossy.drop_probability = 0.5;
  options.faults.link_faults.push_back(lossy);

  ScattervFtOptions ft;
  ft.retry.max_attempts = 64;
  auto first = run_ft_scatter(platform, counts, items, options, ft);
  auto second = run_ft_scatter(platform, counts, items, options, ft);

  ASSERT_EQ(first.report.deaths.size(), second.report.deaths.size());
  for (std::size_t i = 0; i < first.report.deaths.size(); ++i) {
    EXPECT_EQ(first.report.deaths[i].rank, second.report.deaths[i].rank);
    EXPECT_EQ(first.report.deaths[i].undelivered,
              second.report.deaths[i].undelivered);
  }
  EXPECT_EQ(first.report.delivered, second.report.delivered);
  EXPECT_EQ(first.report.rerouted_items, second.report.rerouted_items);
  EXPECT_EQ(first.report.replan_rounds, second.report.replan_rounds);
  EXPECT_EQ(first.results, second.results);
  expect_exactly_once(first, items);
}

TEST(ScattervFt, MidScatterCrashUnderPacingDeliversExactlyOnce) {
  // Nominal timeline (1 s per item to each worker): rank 0 receives over
  // [0, 4), rank 1 over [4, 10), rank 2 over [10, 12). Rank 1 crashes at
  // nominal time 6 — mid-transfer — so its ack never arrives, the root
  // times out and re-plans rank 1's six items over the survivors.
  auto platform = linear_platform({1.0, 1.0, 1.0}, 0.05);
  auto items = sequential_items(16);
  std::vector<long long> counts{4, 6, 2, 4};
  RuntimeOptions options;
  options.time_scale = 0.01;  // 1 nominal second = 10 ms
  options.faults.crashes.push_back({1, 6.0});

  ScattervFtOptions ft;
  ft.ack_timeout = 0.5;
  auto run = run_ft_scatter(platform, counts, items, options, ft);
  ASSERT_EQ(run.report.deaths.size(), 1u);
  EXPECT_EQ(run.report.deaths[0].rank, 1);
  EXPECT_EQ(run.report.deaths[0].undelivered, 6);
  EXPECT_EQ(run.report.rerouted_items, 6);
  EXPECT_EQ(run.report.delivered[1], 0);
  EXPECT_EQ(run.report.total_delivered(), 16);
  EXPECT_TRUE(run.results[1].empty());
  expect_exactly_once(run, items);
}

TEST(ScattervFt, SlowAckGetsEvictedNotDuplicated) {
  // Rank 0's ack crawls (its link to the root is 100x degraded), so the
  // root evicts it; the eviction makes rank 0 discard its share, which the
  // survivors then receive — exactly once overall.
  auto platform = linear_platform({0.5, 0.5}, 0.0);
  auto items = sequential_items(6);
  std::vector<long long> counts{2, 2, 2};
  RuntimeOptions options;
  options.time_scale = 0.01;
  FaultPlan::LinkFault slow_ack;
  slow_ack.from = 0;
  slow_ack.to = 2;
  slow_ack.delay_factor = 100.0;
  options.faults.link_faults.push_back(slow_ack);

  ScattervFtOptions ft;
  ft.ack_timeout = 0.05;  // ack takes ~0.5 s real; root gives up first
  auto run = run_ft_scatter(platform, counts, items, options, ft);
  ASSERT_EQ(run.report.deaths.size(), 1u);
  EXPECT_EQ(run.report.deaths[0].rank, 0);
  EXPECT_TRUE(run.results[0].empty());
  EXPECT_EQ(run.report.total_delivered(), 6);
  expect_exactly_once(run, items);
}

TEST(ScattervFt, AllWorkersDeadFailsCleanly) {
  auto platform = linear_platform({1.0, 1.0}, 0.1);
  auto items = sequential_items(5);
  std::vector<long long> counts{2, 2, 1};
  RuntimeOptions options;
  options.faults.crashes.push_back({0, 0.0});
  options.faults.crashes.push_back({1, 0.0});

  EXPECT_THROW(run_ft_scatter(platform, counts, items, options, {}), Error);
}

}  // namespace
}  // namespace lbs::mq
