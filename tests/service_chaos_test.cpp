// Chaos harness: the service's robustness claim — every request ends in
// a correct plan or a typed error, never a hang, never a wrong plan —
// exercised against a hostile transport (service/chaos.hpp) and a daemon
// that keeps getting killed and restarted.
//
// The kill-restart soak scales with LBS_CHAOS_ITERS (nightly CI raises
// it; the default keeps the suite fast enough for every push).
#include "service/chaos.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/planner.hpp"
#include "model/testbed.hpp"
#include "obs/metrics.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "service/socket.hpp"
#include "support/checksum.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace lbs::service {
namespace {

std::string test_path(const char* stem) {
  static int counter = 0;
  return "/tmp/lbs_chaos_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(++counter) + "_" + stem;
}

// A platform whose worker slope varies with `seed`: distinct PlanKeys.
model::Platform seeded_platform(int seed) {
  model::Platform platform;
  model::Processor worker;
  worker.label = "worker";
  worker.comm = model::Cost::linear(0.5);
  worker.comp = model::Cost::tabulated(
      {{10, 1.0 + 0.01 * seed}, {100, 9.0 + 0.01 * seed}});
  platform.processors.push_back(worker);
  model::Processor root;
  root.label = "root";
  root.comm = model::Cost::zero();
  root.comp = model::Cost::linear(0.2);
  platform.processors.push_back(root);
  return platform;
}

// Installs the process-global injector for a scope; clears it on exit so
// the next test (and this injector's destructor) are safe.
struct InjectorScope {
  explicit InjectorScope(FaultInjector& injector) { set_fault_injector(&injector); }
  ~InjectorScope() { set_fault_injector(nullptr); }
  InjectorScope(const InjectorScope&) = delete;
  InjectorScope& operator=(const InjectorScope&) = delete;
};

// "Correct plan or typed error": Ok responses must match the in-process
// planner bit-for-bit; anything else must be a typed transport status.
void expect_correct_or_typed(const PlanResponse& response,
                             const model::Platform& platform, long long items) {
  if (response.status == PlanStatus::Ok) {
    auto direct = core::plan_scatter(platform, items);
    EXPECT_EQ(response.counts, direct.distribution.counts)
        << "items=" << items << " — a WRONG plan slipped through";
    EXPECT_DOUBLE_EQ(response.predicted_makespan, direct.predicted_makespan);
    return;
  }
  EXPECT_TRUE(response.status == PlanStatus::Disconnected ||
              response.status == PlanStatus::Timeout ||
              response.status == PlanStatus::BreakerOpen ||
              response.status == PlanStatus::Rejected)
      << "untyped failure, status=" << static_cast<int>(response.status)
      << " message=" << response.message;
}

int soak_iterations() {
  const char* env = std::getenv("LBS_CHAOS_ITERS");
  if (env == nullptr) return 3;
  int iters = std::atoi(env);
  return iters > 0 ? iters : 3;
}

TEST(BackoffJitter, StaysWithinJitterBandAndCap) {
  support::Rng rng(42);
  // attempt 0, hint 50: band is [25, 75].
  for (int i = 0; i < 200; ++i) {
    std::uint32_t wait = backoff_with_jitter(50, 0, 1, 2000, rng);
    EXPECT_GE(wait, 25u);
    EXPECT_LE(wait, 75u);
  }
  // Deep attempts saturate at the cap, never overflow to 0.
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::uint32_t wait = backoff_with_jitter(50, attempt, 1, 2000, rng);
    EXPECT_GE(wait, 1u);
    EXPECT_LE(wait, 2000u);
  }
}

TEST(BackoffJitter, GrowsExponentiallyFromTheHint) {
  support::Rng rng(7);
  // attempt 2 quadruples the hint: band [2*h, 6*h] before the cap.
  for (int i = 0; i < 200; ++i) {
    std::uint32_t wait = backoff_with_jitter(10, 2, 1, 100000, rng);
    EXPECT_GE(wait, 20u);
    EXPECT_LE(wait, 60u);
  }
}

TEST(BackoffJitter, ZeroHintFallsBackToBaseAndNeverReturnsZero) {
  support::Rng rng(9);
  for (int attempt = 0; attempt < 8; ++attempt) {
    EXPECT_GE(backoff_with_jitter(0, attempt, 1, 2000, rng), 1u);
  }
}

TEST(BackoffJitter, ActuallyJitters) {
  // The satellite bug this kills: every rejected client sleeping exactly
  // retry_after_ms and returning in lockstep. Distinct values must occur.
  support::Rng rng(1234);
  std::uint32_t first = backoff_with_jitter(1000, 0, 1, 5000, rng);
  bool varied = false;
  for (int i = 0; i < 64 && !varied; ++i) {
    varied = backoff_with_jitter(1000, 0, 1, 5000, rng) != first;
  }
  EXPECT_TRUE(varied);
}

TEST(BackoffJitter, DeterministicPerSeed) {
  support::Rng a(77);
  support::Rng b(77);
  for (int attempt = 0; attempt < 16; ++attempt) {
    EXPECT_EQ(backoff_with_jitter(50, attempt, 1, 2000, a),
              backoff_with_jitter(50, attempt, 1, 2000, b));
  }
}

TEST(FaultInjectorUnit, CertainFaultsFireAndAreCounted) {
  ChaosOptions options;
  options.seed = 5;
  options.short_read = 1.0;
  options.partial_write = 1.0;
  options.corrupt_byte = 1.0;
  FaultInjector injector(options);

  auto write = injector.on_write(1024);
  EXPECT_GE(write.max_bytes, 1u);
  EXPECT_LE(write.max_bytes, 3u);
  EXPECT_TRUE(write.corrupt);
  EXPECT_LT(write.corrupt_offset, write.max_bytes);
  EXPECT_NE(write.corrupt_mask, 0);

  auto read = injector.on_read(1024);
  EXPECT_GE(read.max_bytes, 1u);
  EXPECT_LE(read.max_bytes, 3u);

  auto counters = injector.counters();
  EXPECT_EQ(counters.partial_writes, 1u);
  EXPECT_EQ(counters.corruptions, 1u);
  EXPECT_EQ(counters.short_reads, 1u);
}

TEST(FaultInjectorUnit, DecisionsReplayFromTheSeed) {
  ChaosOptions options;
  options.seed = 99;
  options.short_read = 0.5;
  options.partial_write = 0.5;
  options.corrupt_byte = 0.25;
  options.disconnect = 0.1;
  FaultInjector a(options);
  FaultInjector b(options);
  for (int i = 0; i < 256; ++i) {
    auto wa = a.on_write(512);
    auto wb = b.on_write(512);
    EXPECT_EQ(wa.max_bytes, wb.max_bytes);
    EXPECT_EQ(wa.corrupt, wb.corrupt);
    EXPECT_EQ(wa.corrupt_mask, wb.corrupt_mask);
    EXPECT_EQ(wa.disconnect, wb.disconnect);
    auto ra = a.on_read(512);
    auto rb = b.on_read(512);
    EXPECT_EQ(ra.max_bytes, rb.max_bytes);
    EXPECT_EQ(ra.disconnect, rb.disconnect);
  }
}

TEST(FrameIntegrity, PayloadCorruptionFailsTheChecksumDeterministically) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

  // Hand-build a valid frame (u32 length | u32 crc | payload), then flip
  // one payload byte: the receiver must throw, never deliver the bytes.
  std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<std::uint8_t> frame;
  auto put_le32 = [&frame](std::uint32_t value) {
    for (int shift = 0; shift < 32; shift += 8) {
      frame.push_back(static_cast<std::uint8_t>(value >> shift));
    }
  };
  put_le32(static_cast<std::uint32_t>(payload.size()));
  put_le32(support::crc32(payload));
  frame.insert(frame.end(), payload.begin(), payload.end());
  frame[8 + 4] ^= 0x20;  // corrupt one payload byte in "transit"
  ASSERT_EQ(::write(fds[0], frame.data(), frame.size()),
            static_cast<ssize_t>(frame.size()));

  std::atomic<bool> stop{false};
  std::vector<std::uint8_t> received;
  EXPECT_THROW(
      (void)recv_frame_within(fds[1], received, stop, deadline_after_ms(2000)),
      lbs::Error);
  close_fd(fds[0]);
  close_fd(fds[1]);
}

TEST(FrameIntegrity, InjectedCorruptionNeverDeliversWrongBytes) {
  // The injector flips one byte per write chunk; where it lands decides
  // the symptom. Payload flip → CRC mismatch (throws). Length-word flip →
  // mis-framed stream (throws) or a longer frame that never completes
  // (typed TimedOut). All acceptable; delivering altered bytes is not.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    ChaosOptions options;
    options.seed = seed;
    options.corrupt_byte = 1.0;
    FaultInjector injector(options);
    std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5, 6, 7, 8, 9};
    {
      InjectorScope scope(injector);
      ASSERT_EQ(send_frame_within(fds[0], payload, no_deadline()), IoStatus::Ok);
    }
    EXPECT_GE(injector.counters().corruptions, 1u);

    std::atomic<bool> stop{false};
    std::vector<std::uint8_t> received;
    try {
      IoStatus status =
          recv_frame_within(fds[1], received, stop, deadline_after_ms(200));
      EXPECT_NE(status, IoStatus::Ok)
          << "seed " << seed << ": corrupted frame delivered as Ok";
    } catch (const lbs::Error&) {
      // CRC mismatch or mis-framed length: the typed rejection we want.
    }
    close_fd(fds[0]);
    close_fd(fds[1]);
  }
}

TEST(FrameIntegrity, ShortReadsAndPartialWritesAreLossless) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

  ChaosOptions options;
  options.seed = 11;
  options.short_read = 0.7;
  options.partial_write = 0.7;
  FaultInjector injector(options);
  InjectorScope scope(injector);

  support::Rng rng(21);
  std::atomic<bool> stop{false};
  for (int round = 0; round < 20; ++round) {
    std::vector<std::uint8_t> payload(
        static_cast<std::size_t>(rng.uniform_int(1, 600)));
    for (auto& byte : payload) {
      byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    std::thread sender([&] {
      EXPECT_EQ(send_frame_within(fds[0], payload, no_deadline()), IoStatus::Ok);
    });
    std::vector<std::uint8_t> received;
    EXPECT_EQ(recv_frame_within(fds[1], received, stop, deadline_after_ms(5000)),
              IoStatus::Ok);
    sender.join();
    EXPECT_EQ(received, payload);  // sliced, but byte-identical
  }
  auto counters = injector.counters();
  EXPECT_GT(counters.short_reads, 0u);
  EXPECT_GT(counters.partial_writes, 0u);
  close_fd(fds[0]);
  close_fd(fds[1]);
}

TEST(ChaosService, SlicedTransportStillServesBitExactPlans) {
  ServerOptions server_options;
  server_options.socket_path = test_path("sliced.sock");
  Server server(server_options);
  server.start();

  ChaosOptions chaos;
  chaos.seed = 17;
  chaos.short_read = 0.3;
  chaos.partial_write = 0.3;
  FaultInjector injector(chaos);
  {
    InjectorScope scope(injector);
    Client client(server_options.socket_path);
    for (int i = 0; i < 12; ++i) {
      auto platform = seeded_platform(i);
      PlanResponse response = client.plan(platform, 2000 + i);
      ASSERT_EQ(response.status, PlanStatus::Ok) << response.message;
      auto direct = core::plan_scatter(platform, 2000 + i);
      EXPECT_EQ(response.counts, direct.distribution.counts);
    }
    client.close();
    server.stop();
  }
  auto counters = injector.counters();
  EXPECT_GT(counters.short_reads + counters.partial_writes, 0u);
}

TEST(ChaosService, HostileTransportNeverHangsAndNeverLies) {
  ServerOptions server_options;
  server_options.socket_path = test_path("hostile.sock");
  server_options.reply_timeout_ms = 500;
  Server server(server_options);
  server.start();

  ChaosOptions chaos;
  chaos.seed = 29;
  chaos.short_read = 0.2;
  chaos.partial_write = 0.2;
  chaos.corrupt_byte = 0.04;
  chaos.disconnect = 0.02;
  chaos.stall = 0.05;
  chaos.stall_ms = 5;
  FaultInjector injector(chaos);
  InjectorScope scope(injector);

  ClientOptions client_options;
  client_options.socket_path = server_options.socket_path;
  client_options.request_timeout_ms = 3000;
  client_options.backoff_cap_ms = 20;
  client_options.breaker_threshold = 0;  // keep probing; breaker has its own test
  client_options.jitter_seed = 31;
  Client client(client_options);

  int ok = 0;
  int typed_failures = 0;
  for (int i = 0; i < 40; ++i) {
    auto platform = seeded_platform(i % 8);
    if (!client.connected()) (void)client.try_reconnect();
    PlanResponse response = client.plan(platform, 1500 + (i % 8));
    expect_correct_or_typed(response, platform, 1500 + (i % 8));
    if (response.status == PlanStatus::Ok) {
      ++ok;
    } else {
      ++typed_failures;
    }
  }
  // The run must have exercised both worlds: some requests survived the
  // chaos, and the injector demonstrably fired.
  EXPECT_GT(ok, 0);
  auto counters = injector.counters();
  EXPECT_GT(counters.corruptions + counters.disconnects, 0u)
      << "chaos run injected nothing — seed or probabilities are off";
  client.close();
  server.stop();
}

TEST(ClientDeadline, SlowSolveSurfacesTypedTimeout) {
  ServerOptions server_options;
  server_options.socket_path = test_path("deadline.sock");
  server_options.solve_delay_ms = 400;
  Server server(server_options);
  server.start();

  ClientOptions client_options;
  client_options.socket_path = server_options.socket_path;
  client_options.request_timeout_ms = 50;
  client_options.breaker_threshold = 0;
  Client client(client_options);

  auto platform = seeded_platform(50);
  PlanResponse response = client.plan(platform, 7000);
  EXPECT_EQ(response.status, PlanStatus::Timeout);
  EXPECT_FALSE(response.message.empty());

  // The late reply is dropped as an unmatched id; the connection stays
  // healthy and a patient request succeeds.
  PlanResponse patient = client.plan(platform, 7000, core::Algorithm::Auto,
                                     std::uint32_t{5000});
  EXPECT_EQ(patient.status, PlanStatus::Ok) << patient.message;
  client.close();
  server.stop();
}

TEST(CircuitBreaker, OpensAfterConsecutiveTransportFailures) {
  std::string socket = test_path("breaker.sock");
  ServerOptions server_options;
  server_options.socket_path = socket;
  Server server(server_options);
  server.start();

  ClientOptions client_options;
  client_options.socket_path = socket;
  client_options.breaker_threshold = 2;
  client_options.breaker_cooldown_ms = 60000;  // stays open for the test
  client_options.backoff_cap_ms = 5;
  Client client(client_options);
  server.stop();  // daemon gone; the socket file is unlinked

  auto platform = seeded_platform(60);
  EXPECT_FALSE(client.breaker_open());
  for (int i = 0; i < 2; ++i) {
    PlanResponse response = client.plan_with_retry(platform, 900, core::Algorithm::Auto,
                                                   /*max_retries=*/0);
    EXPECT_EQ(response.status, PlanStatus::Disconnected);
  }
  EXPECT_TRUE(client.breaker_open());

  // Open breaker: fail fast, typed.
  PlanResponse fast = client.plan_with_retry(platform, 900);
  EXPECT_EQ(fast.status, PlanStatus::BreakerOpen);
  client.close();
}

TEST(CircuitBreaker, OpenBreakerFallsBackToInProcessPlanner) {
  std::string socket = test_path("fallback.sock");
  ServerOptions server_options;
  server_options.socket_path = socket;
  Server server(server_options);
  server.start();

  obs::Metrics metrics;
  ClientOptions client_options;
  client_options.socket_path = socket;
  client_options.breaker_threshold = 2;
  client_options.breaker_cooldown_ms = 60000;
  client_options.backoff_cap_ms = 5;
  client_options.local_fallback = true;
  client_options.metrics = &metrics;
  Client client(client_options);
  server.stop();

  auto platform = seeded_platform(61);
  for (int i = 0; i < 2; ++i) {
    (void)client.plan_with_retry(platform, 1100, core::Algorithm::Auto, 0);
  }
  ASSERT_TRUE(client.breaker_open());

  // Differential check: the degraded answer IS the planner's answer.
  PlanResponse fallback = client.plan_with_retry(platform, 1100);
  ASSERT_EQ(fallback.status, PlanStatus::Ok);
  EXPECT_TRUE(fallback.local_fallback);
  auto direct = core::plan_scatter(platform, 1100);
  EXPECT_EQ(fallback.counts, direct.distribution.counts);
  EXPECT_DOUBLE_EQ(fallback.predicted_makespan, direct.predicted_makespan);
  EXPECT_GE(metrics.counter("service.client.fallbacks").value(), 1u);
  client.close();
}

TEST(CircuitBreaker, HalfOpenTrialRecoversWhenTheServerReturns) {
  std::string socket = test_path("halfopen.sock");
  auto platform = seeded_platform(62);

  ClientOptions client_options;
  client_options.socket_path = socket;
  client_options.breaker_threshold = 2;
  client_options.breaker_cooldown_ms = 50;
  client_options.backoff_cap_ms = 5;

  ServerOptions server_options;
  server_options.socket_path = socket;
  {
    Server first(server_options);
    first.start();
    Client client(client_options);
    first.stop();

    for (int i = 0; i < 2; ++i) {
      (void)client.plan_with_retry(platform, 1300, core::Algorithm::Auto, 0);
    }
    ASSERT_TRUE(client.breaker_open());

    // Daemon comes back under the same path; after the cooldown the
    // half-open trial reconnects and closes the breaker.
    Server second(server_options);
    second.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    PlanResponse recovered = client.plan_with_retry(platform, 1300);
    EXPECT_EQ(recovered.status, PlanStatus::Ok) << recovered.message;
    EXPECT_FALSE(recovered.local_fallback);
    EXPECT_FALSE(client.breaker_open());
    auto direct = core::plan_scatter(platform, 1300);
    EXPECT_EQ(recovered.counts, direct.distribution.counts);
    client.close();
    second.stop();
  }
}

// The kill-restart soak: a daemon that dies mid-traffic and restarts
// warm (snapshot + warm-start on the same file) while a client hammers
// it with plan_with_retry. Every response, across every kill, must be a
// correct plan or a typed error; the suite finishing at all is the
// no-hangs assertion. LBS_CHAOS_ITERS scales the kill count (nightly).
TEST(ChaosSoak, KillRestartLoopNeverHangsOrLies) {
  const int iterations = soak_iterations();
  std::string socket = test_path("soak.sock");
  std::string snapshot = test_path("soak.snap");

  for (int iter = 0; iter < iterations; ++iter) {
    ServerOptions server_options;
    server_options.socket_path = socket;
    server_options.snapshot_path = snapshot;
    if (iter > 0) server_options.warm_start_path = snapshot;
    server_options.solve_delay_ms = 2;  // keep some solves in flight at kill
    Server server(server_options);
    server.start();

    ClientOptions client_options;
    client_options.socket_path = socket;
    client_options.request_timeout_ms = 4000;
    client_options.backoff_cap_ms = 20;
    client_options.breaker_threshold = 3;
    client_options.breaker_cooldown_ms = 30;
    client_options.local_fallback = true;
    client_options.jitter_seed = static_cast<std::uint64_t>(iter) + 1;
    Client client(client_options);

    // Kill the daemon mid-traffic.
    std::thread killer([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
      server.stop();
    });

    int fallbacks = 0;
    for (int r = 0; r < 24; ++r) {
      auto platform = seeded_platform(r % 6);
      long long items = 1000 + (r % 6);
      PlanResponse response =
          client.plan_with_retry(platform, items, core::Algorithm::Auto, 2);
      expect_correct_or_typed(response, platform, items);
      if (response.local_fallback) ++fallbacks;
    }
    killer.join();
    client.close();
    server.stop();  // idempotent
    (void)fallbacks;

    // The kill wrote an on-drain snapshot; the next iteration warm-starts
    // from it. Verify it is readable (or absent only on iteration 0
    // failure paths, which write_snapshot would have thrown on).
    EXPECT_EQ(::access(snapshot.c_str(), F_OK), 0);
  }
  ::unlink(snapshot.c_str());
}

}  // namespace
}  // namespace lbs::service
