#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "support/error.hpp"
#include "support/stats.hpp"

namespace lbs::support {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    auto v = rng.uniform_int(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformIntCoversSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntHitsAllValuesOfSmallRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(3, 2), Error);
}

TEST(Rng, UniformDoubleInHalfOpenRange) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(17);
  std::vector<double> values;
  values.reserve(20000);
  for (int i = 0; i < 20000; ++i) values.push_back(rng.uniform());
  auto summary = summarize(values);
  EXPECT_NEAR(summary.mean, 0.5, 0.01);
  EXPECT_NEAR(summary.stddev, std::sqrt(1.0 / 12.0), 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(19);
  std::vector<double> values;
  values.reserve(20000);
  for (int i = 0; i < 20000; ++i) values.push_back(rng.normal(10.0, 2.0));
  auto summary = summarize(values);
  EXPECT_NEAR(summary.mean, 10.0, 0.1);
  EXPECT_NEAR(summary.stddev, 2.0, 0.1);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(23);
  std::vector<double> values;
  values.reserve(20000);
  for (int i = 0; i < 20000; ++i) values.push_back(rng.exponential(4.0));
  auto summary = summarize(values);
  EXPECT_NEAR(summary.mean, 0.25, 0.01);
  EXPECT_GE(summary.min, 0.0);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), Error);
  EXPECT_THROW(rng.exponential(-1.0), Error);
}

TEST(Rng, BernoulliFrequencyMatchesProbability) {
  Rng rng(29);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 20000.0, 0.3, 0.02);
}

TEST(Rng, BernoulliEdgesAreDeterministic) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(rng.bernoulli(0.0));
  // probability 1.0: uniform() < 1.0 is true except measure-zero draws.
  int hits = 0;
  for (int i = 0; i < 100; ++i) hits += rng.bernoulli(1.0) ? 1 : 0;
  EXPECT_EQ(hits, 100);
}

TEST(Rng, ForkGivesIndependentStream) {
  Rng parent(31);
  Rng child = parent.fork();
  // The child stream must differ from the parent continuation.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next() == child.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, WorksWithStdDistributions) {
  Rng rng(37);
  std::uniform_int_distribution<int> dist(1, 6);
  for (int i = 0; i < 100; ++i) {
    int v = dist(rng);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
  }
}

}  // namespace
}  // namespace lbs::support
