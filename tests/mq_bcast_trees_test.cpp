#include "mq/bcast_trees.hpp"

#include <gtest/gtest.h>

#include "mq/runtime.hpp"
#include "support/rng.hpp"

namespace lbs::mq {
namespace {

RuntimeOptions plain(int ranks) {
  RuntimeOptions options;
  options.ranks = ranks;
  return options;
}

std::vector<int> expected_payload(int root) {
  return {root * 7, root * 7 + 1, root * 7 + 2};
}

TEST(BcastBinomial, DeliversFromEveryRootAndSize) {
  for (int ranks : {1, 2, 3, 4, 5, 8, 13}) {
    for (int root = 0; root < ranks; root += (ranks > 4 ? 3 : 1)) {
      Runtime::run(plain(ranks), [root](Comm& comm) {
        std::vector<int> data;
        if (comm.rank() == root) data = expected_payload(root);
        bcast_binomial(comm, root, data);
        EXPECT_EQ(data, expected_payload(root))
            << "ranks=" << comm.size() << " root=" << root;
      });
    }
  }
}

TEST(BcastFlat, MatchesCommBcast) {
  Runtime::run(plain(6), [](Comm& comm) {
    std::vector<int> data;
    if (comm.rank() == 2) data = expected_payload(2);
    bcast_flat(comm, 2, data);
    EXPECT_EQ(data, expected_payload(2));
  });
}

TEST(BcastHierarchical, DeliversAcrossSites) {
  // Sites: {0,1,2} site 0, {3,4} site 1, {5} site 2; root = 1 (site 0).
  std::vector<int> sites{0, 0, 0, 1, 1, 2};
  Runtime::run(plain(6), [&](Comm& comm) {
    std::vector<int> data;
    if (comm.rank() == 1) data = expected_payload(1);
    bcast_hierarchical(comm, 1, data, sites);
    EXPECT_EQ(data, expected_payload(1));
  });
}

TEST(BcastHierarchical, SingleSiteDegeneratesToFlat) {
  std::vector<int> sites{0, 0, 0, 0};
  Runtime::run(plain(4), [&](Comm& comm) {
    std::vector<int> data;
    if (comm.rank() == 0) data = expected_payload(0);
    bcast_hierarchical(comm, 0, data, sites);
    EXPECT_EQ(data, expected_payload(0));
  });
}

TEST(BcastHierarchical, RootNotLowestRankOfItsSite) {
  // Root 3 lives in site 1 whose lowest rank is 2: the root must still
  // coordinate its own site.
  std::vector<int> sites{0, 0, 1, 1, 1};
  Runtime::run(plain(5), [&](Comm& comm) {
    std::vector<int> data;
    if (comm.rank() == 3) data = expected_payload(3);
    bcast_hierarchical(comm, 3, data, sites);
    EXPECT_EQ(data, expected_payload(3));
  });
}

TEST(BcastBinomial, PaysFewerSerializedSendsAtTheRoot) {
  // With per-send latency at every rank, the flat tree's root makes p-1
  // paced sends back-to-back while the binomial root makes only log2(p):
  // the binomial completes faster on a latency-light, parallel network.
  constexpr int kRanks = 8;
  constexpr double kPerSend = 0.02;
  auto measure = [&](bool binomial) {
    RuntimeOptions options = plain(kRanks);
    options.time_scale = 1.0;
    options.link_cost = [](int, int, std::size_t) { return kPerSend; };
    double completion = 0.0;
    std::mutex mutex;
    Runtime::run(options, [&](Comm& comm) {
      std::vector<int> data;
      if (comm.rank() == 0) data = expected_payload(0);
      if (binomial) {
        bcast_binomial(comm, 0, data);
      } else {
        bcast_flat(comm, 0, data);
      }
      std::lock_guard lock(mutex);
      completion = std::max(completion, comm.wtime());
    });
    return completion;
  };
  double flat = measure(false);
  double tree = measure(true);
  // Flat: 7 serialized sends ~ 140 ms; binomial: 3 levels ~ 60-80 ms.
  EXPECT_LT(tree, flat);
}

}  // namespace
}  // namespace lbs::mq
