#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "mq/runtime.hpp"
#include "support/error.hpp"

namespace lbs::mq {
namespace {

RuntimeOptions plain(int ranks) {
  RuntimeOptions options;
  options.ranks = ranks;
  return options;
}

TEST(Nonblocking, IsendIrecvRoundTrip) {
  Runtime::run(plain(2), [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> data{1.0, 2.0, 3.0};
      auto request = comm.isend<double>(1, 9, data);
      request.wait();
    } else {
      auto request = comm.irecv(0, 9);
      request.wait();
      auto data = Comm::decode<double>(request.take_payload());
      EXPECT_EQ(data, (std::vector<double>{1.0, 2.0, 3.0}));
    }
  });
}

TEST(Nonblocking, ManyOutstandingRequestsComplete) {
  Runtime::run(plain(2), [](Comm& comm) {
    constexpr int kMessages = 32;
    if (comm.rank() == 0) {
      std::vector<Request> requests;
      for (int i = 0; i < kMessages; ++i) {
        std::vector<int> payload{i};
        requests.push_back(comm.isend<int>(1, i, payload));
      }
      for (auto& request : requests) request.wait();
    } else {
      // Receive in reverse tag order to prove completion independence.
      for (int i = kMessages - 1; i >= 0; --i) {
        auto request = comm.irecv(0, i);
        request.wait();
        auto data = Comm::decode<int>(request.take_payload());
        ASSERT_EQ(data.size(), 1u);
        EXPECT_EQ(data[0], i);
      }
    }
  });
}

TEST(Nonblocking, TestPollsWithoutBlocking) {
  Runtime::run(plain(2), [](Comm& comm) {
    if (comm.rank() == 0) {
      auto request = comm.irecv(1, 4);
      // Nothing sent yet: test() must not hang (may be false).
      (void)request.test();
      comm.send_value<int>(1, 3, 1);  // release the peer
      request.wait();
      EXPECT_TRUE(request.test());
      auto data = Comm::decode<int>(request.take_payload());
      EXPECT_EQ(data[0], 77);
    } else {
      comm.recv_value<int>(0, 3);
      comm.send_value<int>(0, 4, 77);
    }
  });
}

TEST(Nonblocking, SenderOverlapsComputeWithTransfer) {
  // With pacing on, a blocking send costs the sender the transfer time;
  // an isend hands it to the worker so the sender's own "compute" overlaps.
  RuntimeOptions options = plain(2);
  options.time_scale = 1.0;
  options.link_cost = [](int from, int, std::size_t) {
    return from == 0 ? 0.05 : 0.0;
  };
  double isend_elapsed = 1e9;
  Runtime::run(options, [&](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<int> payload(64);
      double t0 = comm.wtime();
      auto request = comm.isend<int>(1, 0, payload);
      double issue_time = comm.wtime() - t0;
      request.wait();
      isend_elapsed = issue_time;
    } else {
      comm.recv_message(0, 0);
    }
  });
  // Issuing must return well before the 50 ms transfer completes.
  EXPECT_LT(isend_elapsed, 0.02);
}

TEST(Nonblocking, NicSerializesConcurrentIsends) {
  // Two isends from the same rank with 30 ms pacing each must take >= 60 ms
  // end-to-end: the per-rank NIC enforces the single-port model.
  RuntimeOptions options = plain(3);
  options.time_scale = 1.0;
  options.link_cost = [](int from, int, std::size_t) {
    return from == 0 ? 0.03 : 0.0;
  };
  double total = 0.0;
  Runtime::run(options, [&](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<int> payload(8);
      double t0 = comm.wtime();
      auto r1 = comm.isend<int>(1, 0, payload);
      auto r2 = comm.isend<int>(2, 0, payload);
      r1.wait();
      r2.wait();
      total = comm.wtime() - t0;
    } else {
      comm.recv_message(0, 0);
    }
  });
  EXPECT_GE(total, 0.055);
}

TEST(Nonblocking, EmptyRequestOperationsThrow) {
  Request request;
  EXPECT_FALSE(request.valid());
  EXPECT_THROW(request.wait(), lbs::Error);
  EXPECT_THROW(request.test(), lbs::Error);
  EXPECT_THROW((void)request.take_payload(), lbs::Error);
}

TEST(Nonblocking, TakePayloadBeforeCompletionThrows) {
  Runtime::run(plain(2), [](Comm& comm) {
    if (comm.rank() == 0) {
      auto request = comm.irecv(1, 0);
      EXPECT_THROW((void)request.take_payload(), lbs::Error);
      comm.send_value<int>(1, 1, 0);
      request.wait();
      (void)request.take_payload();
    } else {
      comm.recv_value<int>(0, 1);
      comm.send_value<int>(0, 0, 5);
    }
  });
}

TEST(Nonblocking, AbortUnblocksPendingIrecv) {
  // Rank 1 dies while rank 0 has a pending irecv from it: the request's
  // wait() must surface the shutdown instead of hanging.
  EXPECT_THROW(
      Runtime::run(plain(2),
                   [](Comm& comm) {
                     if (comm.rank() == 1) throw Error("peer died");
                     auto request = comm.irecv(1, 0);
                     request.wait();
                   }),
      lbs::Error);
}

TEST(Collectives, AllgatherConcatenatesInRankOrder) {
  Runtime::run(plain(4), [](Comm& comm) {
    std::vector<int> mine{comm.rank() * 10, comm.rank() * 10 + 1};
    auto all = comm.allgather<int>(mine);
    ASSERT_EQ(all.size(), 8u);
    for (int r = 0; r < 4; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r) * 2], r * 10);
      EXPECT_EQ(all[static_cast<std::size_t>(r) * 2 + 1], r * 10 + 1);
    }
  });
}

TEST(Collectives, AlltoallExchangesPersonalizedBlocks) {
  Runtime::run(plain(4), [](Comm& comm) {
    // Block for peer r: [rank*100 + r] repeated (r+1) times.
    std::vector<std::vector<long long>> send(4);
    for (int r = 0; r < 4; ++r) {
      send[static_cast<std::size_t>(r)].assign(static_cast<std::size_t>(r + 1),
                                               comm.rank() * 100 + r);
    }
    auto received = comm.alltoall<long long>(send);
    ASSERT_EQ(received.size(), 4u);
    for (int source = 0; source < 4; ++source) {
      const auto& block = received[static_cast<std::size_t>(source)];
      ASSERT_EQ(block.size(), static_cast<std::size_t>(comm.rank() + 1))
          << "from " << source;
      for (long long value : block) {
        EXPECT_EQ(value, source * 100 + comm.rank());
      }
    }
  });
}

TEST(Collectives, AlltoallEmptyBlocksAllowed) {
  Runtime::run(plain(3), [](Comm& comm) {
    std::vector<std::vector<int>> send(3);  // everything empty
    auto received = comm.alltoall<int>(send);
    for (const auto& block : received) EXPECT_TRUE(block.empty());
  });
}

TEST(Collectives, SendrecvRingExchangeDoesNotDeadlock) {
  Runtime::run(plain(5), [](Comm& comm) {
    int right = (comm.rank() + 1) % comm.size();
    int left = (comm.rank() + comm.size() - 1) % comm.size();
    std::vector<int> outgoing{comm.rank()};
    auto incoming = comm.sendrecv<int>(right, 7, outgoing, left, 7);
    ASSERT_EQ(incoming.size(), 1u);
    EXPECT_EQ(incoming[0], left);
  });
}

TEST(Nonblocking, IsendWithNegativeTagThrows) {
  Runtime::run(plain(2), [](Comm& comm) {
    if (comm.rank() == 0) {
      EXPECT_THROW(comm.isend_bytes(1, -5, {}), lbs::Error);
      comm.send_value<int>(1, 0, 1);
    } else {
      comm.recv_value<int>(0, 0);
    }
  });
}

}  // namespace
}  // namespace lbs::mq
