// Virtual-time replay of the fault-tolerant scatter protocol
// (gridsim::simulate_scatter_ft) and its agreement with both the analytic
// cost model (no faults) and the threaded mq runtime (same FaultPlan).

#include "gridsim/faultsim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <numeric>
#include <string>
#include <vector>

#include "core/distribution.hpp"
#include "core/planner.hpp"
#include "core/recovery.hpp"
#include "model/platform.hpp"
#include "mq/platform_link.hpp"
#include "mq/runtime.hpp"
#include "support/error.hpp"

namespace lbs::gridsim {
namespace {

model::Platform linear_platform(const std::vector<double>& betas, double alpha) {
  model::Platform platform;
  for (std::size_t i = 0; i < betas.size(); ++i) {
    model::Processor worker;
    worker.label = "w" + std::to_string(i);
    worker.comm = model::Cost::linear(betas[i]);
    worker.comp = model::Cost::linear(alpha);
    platform.processors.push_back(worker);
  }
  model::Processor root;
  root.label = "root";
  root.comm = model::Cost::zero();
  root.comp = model::Cost::linear(alpha);
  platform.processors.push_back(root);
  return platform;
}

TEST(FaultSim, NoFaultsMatchesAnalyticModel) {
  auto platform = linear_platform({1.0, 2.0, 0.5}, 0.25);
  auto plan = core::plan_scatter(platform, 100);
  auto result = simulate_scatter_ft(platform, plan.distribution, {});

  EXPECT_TRUE(result.report.deaths.empty());
  EXPECT_EQ(result.report.rerouted_items, 0);
  EXPECT_EQ(result.report.replan_rounds, 0);

  auto windows = core::comm_windows(platform, plan.distribution);
  auto finishes = core::finish_times(platform, plan.distribution);
  for (int i = 0; i < platform.size(); ++i) {
    auto index = static_cast<std::size_t>(i);
    const auto& trace = result.timeline.traces[index];
    EXPECT_EQ(trace.items, plan.distribution.counts[index]);
    if (i + 1 < platform.size() && plan.distribution.counts[index] > 0) {
      EXPECT_NEAR(trace.recv_start, windows.start[index], 1e-9) << "rank " << i;
      EXPECT_NEAR(trace.recv_end, windows.end[index], 1e-9) << "rank " << i;
    }
    EXPECT_NEAR(trace.compute_end, finishes[index], 1e-9) << "rank " << i;
  }
  EXPECT_NEAR(result.report.elapsed,
              core::makespan(platform, plan.distribution), 1e-9);
}

TEST(FaultSim, CrashRecoveryConservesItemsAndIsDeterministic) {
  auto platform = linear_platform({1.0, 1.0, 1.0, 1.0}, 0.5);
  core::Distribution distribution;
  distribution.counts = {10, 40, 10, 10, 10};  // rank 1 holds the largest share

  mq::FaultPlan plan;
  plan.seed = 5;
  // Rank 1 dies mid-transfer: its window is [10, 50) in virtual time.
  plan.crashes.push_back({1, 25.0});

  auto first = simulate_scatter_ft(platform, distribution, plan);
  ASSERT_EQ(first.report.deaths.size(), 1u);
  EXPECT_EQ(first.report.deaths[0].rank, 1);
  EXPECT_EQ(first.report.deaths[0].undelivered, 40);
  EXPECT_EQ(first.report.rerouted_items, 40);
  EXPECT_EQ(first.report.delivered[1], 0);
  EXPECT_EQ(first.report.total_delivered(), 80);

  auto second = simulate_scatter_ft(platform, distribution, plan);
  EXPECT_EQ(first.report.delivered, second.report.delivered);
  EXPECT_EQ(first.report.rerouted_items, second.report.rerouted_items);
  EXPECT_EQ(first.report.replan_rounds, second.report.replan_rounds);
  EXPECT_DOUBLE_EQ(first.report.elapsed, second.report.elapsed);
  ASSERT_EQ(first.report.deaths.size(), second.report.deaths.size());
  EXPECT_DOUBLE_EQ(first.report.deaths[0].detected_at,
                   second.report.deaths[0].detected_at);
}

TEST(FaultSim, DropsDelayButStillDeliverEverything) {
  auto platform = linear_platform({1.0, 1.0}, 0.0);
  core::Distribution distribution;
  distribution.counts = {20, 20, 10};

  mq::FaultPlan plan;
  plan.seed = 11;
  mq::FaultPlan::LinkFault lossy;
  lossy.from = 2;
  lossy.to = 0;
  lossy.drop_probability = 0.95;
  plan.link_faults.push_back(lossy);

  FtSimOptions options;
  options.retry.max_attempts = 256;
  auto faulty = simulate_scatter_ft(platform, distribution, plan, options);
  auto clean = simulate_scatter_ft(platform, distribution, {});

  EXPECT_TRUE(faulty.report.deaths.empty());
  EXPECT_EQ(faulty.report.total_delivered(), 50);
  EXPECT_EQ(faulty.report.delivered, (std::vector<long long>{20, 20, 10}));
  EXPECT_GT(faulty.report.elapsed, clean.report.elapsed);
}

TEST(FaultSim, CoreReplannerBalancesTheRemainder) {
  auto platform = linear_platform({1.0, 2.0, 4.0}, 1.0);
  auto plan = core::plan_scatter(platform, 200);

  mq::FaultPlan faults;
  faults.crashes.push_back({0, 0.0});

  FtSimOptions options;
  options.replan = core::make_ft_replanner(platform);
  auto result = simulate_scatter_ft(platform, plan.distribution, faults, options);
  ASSERT_EQ(result.report.deaths.size(), 1u);
  EXPECT_EQ(result.report.deaths[0].rank, 0);
  EXPECT_EQ(result.report.delivered[0], 0);
  EXPECT_EQ(result.report.total_delivered(), 200);

  // The replanner's shares on the reduced platform are load-balanced, so the
  // faulty makespan stays below "dump everything on one survivor".
  core::Distribution naive;
  naive.counts = {0, plan.distribution.counts[0] + plan.distribution.counts[1],
                  plan.distribution.counts[2], plan.distribution.counts[3]};
  EXPECT_LE(result.report.elapsed, core::makespan(platform, naive) + 1e-9);
}

TEST(FaultSim, AllWorkersDeadThrows) {
  auto platform = linear_platform({1.0, 1.0}, 0.0);
  core::Distribution distribution;
  distribution.counts = {5, 5, 2};
  mq::FaultPlan plan;
  plan.crashes.push_back({0, 0.0});
  plan.crashes.push_back({1, 0.0});
  EXPECT_THROW(simulate_scatter_ft(platform, distribution, plan), Error);
}

TEST(FaultSim, MirrorAgreesWithMqRuntimeOnTheSamePlan) {
  auto platform = linear_platform({1.0, 1.0, 1.0}, 0.1);
  core::Distribution distribution;
  distribution.counts = {6, 8, 4, 6};
  const long long total = distribution.total();

  mq::FaultPlan plan;
  plan.seed = 17;
  plan.crashes.push_back({2, 0.0});

  auto sim = simulate_scatter_ft(platform, distribution, plan);

  // Same plan through the threaded runtime (instantaneous clock: the only
  // fault is a crash-at-zero, so no pacing is needed).
  mq::RuntimeOptions options;
  options.ranks = platform.size();
  options.faults = plan;
  options.link_cost = mq::make_link_cost(platform, sizeof(double));

  std::vector<double> items(static_cast<std::size_t>(total));
  std::iota(items.begin(), items.end(), 0.0);
  mq::FaultReport mq_report;
  std::vector<std::size_t> share_sizes(4, 0);
  std::mutex mutex;
  const int root = platform.size() - 1;
  mq::Runtime::run(options, [&](mq::Comm& comm) {
    mq::FaultReport report;
    auto share = comm.scatterv_ft<double>(
        root, items, distribution.counts, {},
        comm.rank() == root ? &report : nullptr);
    std::lock_guard lock(mutex);
    share_sizes[static_cast<std::size_t>(comm.rank())] = share.size();
    if (comm.rank() == root) mq_report = std::move(report);
  });

  ASSERT_EQ(mq_report.deaths.size(), sim.report.deaths.size());
  EXPECT_EQ(mq_report.deaths[0].rank, sim.report.deaths[0].rank);
  EXPECT_EQ(mq_report.deaths[0].undelivered, sim.report.deaths[0].undelivered);
  EXPECT_EQ(mq_report.delivered, sim.report.delivered);
  EXPECT_EQ(mq_report.rerouted_items, sim.report.rerouted_items);
  EXPECT_EQ(mq_report.replan_rounds, sim.report.replan_rounds);
  for (int r = 0; r < platform.size(); ++r) {
    EXPECT_EQ(static_cast<long long>(share_sizes[static_cast<std::size_t>(r)]),
              sim.report.delivered[static_cast<std::size_t>(r)])
        << "rank " << r;
  }
}

}  // namespace
}  // namespace lbs::gridsim
