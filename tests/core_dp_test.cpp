#include "core/dp.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "model/testbed.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace lbs::core {
namespace {

model::Platform linear_platform(const std::vector<double>& beta,
                                const std::vector<double>& alpha) {
  model::Platform platform;
  for (std::size_t i = 0; i < beta.size(); ++i) {
    model::Processor p;
    p.label = "P" + std::to_string(i + 1);
    p.comm = model::Cost::linear(beta[i]);
    p.comp = model::Cost::linear(alpha[i]);
    platform.processors.push_back(p);
  }
  return platform;
}

// Brute force: minimal makespan over every distribution of `items` items.
double brute_force_optimum(const model::Platform& platform, long long items) {
  int p = platform.size();
  Distribution dist;
  dist.counts.assign(static_cast<std::size_t>(p), 0);
  double best = std::numeric_limits<double>::infinity();
  // Recursive enumeration of compositions of `items` into p parts.
  auto recurse = [&](auto&& self, int index, long long remaining) -> void {
    if (index == p - 1) {
      dist.counts[static_cast<std::size_t>(index)] = remaining;
      best = std::min(best, makespan(platform, dist));
      return;
    }
    for (long long share = 0; share <= remaining; ++share) {
      dist.counts[static_cast<std::size_t>(index)] = share;
      self(self, index + 1, remaining - share);
    }
  };
  recurse(recurse, 0, items);
  return best;
}

TEST(ExactDp, SingleProcessorTakesEverything) {
  auto platform = linear_platform({0.0}, {2.0});
  auto result = exact_dp(platform, 7);
  EXPECT_EQ(result.distribution.counts, (std::vector<long long>{7}));
  EXPECT_DOUBLE_EQ(result.cost, 14.0);
}

TEST(ExactDp, ZeroItems) {
  auto platform = linear_platform({1.0, 0.0}, {1.0, 1.0});
  auto result = exact_dp(platform, 0);
  EXPECT_EQ(result.distribution.total(), 0);
  EXPECT_DOUBLE_EQ(result.cost, 0.0);
}

TEST(ExactDp, TwoIdenticalProcessorsNoCommSplitEvenly) {
  auto platform = linear_platform({0.0, 0.0}, {1.0, 1.0});
  auto result = exact_dp(platform, 10);
  EXPECT_EQ(result.distribution.counts, (std::vector<long long>{5, 5}));
  EXPECT_DOUBLE_EQ(result.cost, 5.0);
}

TEST(ExactDp, MatchesBruteForceOnSmallInstances) {
  auto platform = linear_platform({0.5, 1.0, 0.0}, {3.0, 1.0, 2.0});
  for (long long n : {1, 3, 7, 12}) {
    auto result = exact_dp(platform, n);
    EXPECT_DOUBLE_EQ(result.cost, brute_force_optimum(platform, n)) << "n=" << n;
    EXPECT_EQ(result.distribution.total(), n);
    EXPECT_DOUBLE_EQ(makespan(platform, result.distribution), result.cost);
  }
}

TEST(ExactDp, SlowLinkProcessorGetsNothing) {
  // P1's link is so slow that using it at all is a loss.
  auto platform = linear_platform({100.0, 0.0}, {1.0, 1.0});
  auto result = exact_dp(platform, 10);
  EXPECT_EQ(result.distribution.counts[0], 0);
  EXPECT_EQ(result.distribution.counts[1], 10);
}

TEST(ExactDp, HandlesNonIncreasingCosts) {
  // A tabulated compute cost that *dips* (cache effect): only Algorithm 1
  // is allowed here.
  model::Platform platform;
  model::Processor p1;
  p1.label = "dip";
  p1.comm = model::Cost::linear(0.1);
  p1.comp = model::Cost::tabulated({{5, 10.0}, {10, 4.0}, {20, 8.0}});
  platform.processors.push_back(p1);
  model::Processor p2;
  p2.label = "root";
  p2.comm = model::Cost::zero();
  p2.comp = model::Cost::linear(1.0);
  platform.processors.push_back(p2);

  auto result = exact_dp(platform, 12);
  EXPECT_DOUBLE_EQ(result.cost, brute_force_optimum(platform, 12));
  EXPECT_THROW(optimized_dp(platform, 12), lbs::Error);
}

TEST(ExactDp, RequiresNullCostAtZero) {
  // A cost function violating the framework (non-null at 0) must be
  // rejected rather than silently producing nonsense.
  model::Platform platform;
  model::Processor p;
  p.label = "bad";
  p.comm = model::Cost::zero();
  p.comp = model::Cost::tabulated({{1, 5.0}});  // fine: 0 -> 0
  platform.processors.push_back(p);
  EXPECT_NO_THROW(exact_dp(platform, 1));
  EXPECT_THROW(exact_dp(platform, -1), lbs::Error);
}

TEST(OptimizedDp, MatchesExactOnPaperTestbedSample) {
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  for (long long n : {1, 16, 100, 500}) {
    auto exact = exact_dp(platform, n);
    auto optimized = optimized_dp(platform, n);
    EXPECT_DOUBLE_EQ(optimized.cost, exact.cost) << "n=" << n;
    EXPECT_EQ(optimized.distribution.total(), n);
    // The distributions may differ between equal-cost optima, but the cost
    // realized by each must equal the optimum.
    EXPECT_DOUBLE_EQ(makespan(platform, optimized.distribution), exact.cost);
  }
}

TEST(OptimizedDp, ChunkedCommCosts) {
  // Increasing but non-affine communication: the optimized DP applies.
  model::Platform platform;
  model::Processor p1;
  p1.label = "chunked";
  p1.comm = model::Cost::chunked(0.5, 4, 2.0);
  p1.comp = model::Cost::linear(1.0);
  platform.processors.push_back(p1);
  model::Processor p2;
  p2.label = "root";
  p2.comm = model::Cost::zero();
  p2.comp = model::Cost::linear(2.0);
  platform.processors.push_back(p2);

  for (long long n : {3, 8, 15}) {
    auto exact = exact_dp(platform, n);
    auto optimized = optimized_dp(platform, n);
    EXPECT_DOUBLE_EQ(optimized.cost, exact.cost) << "n=" << n;
  }
}

struct DpPropertyCase {
  std::uint64_t seed;
  int processors;
  long long items;
};

class DpEquivalenceTest : public ::testing::TestWithParam<DpPropertyCase> {};

TEST_P(DpEquivalenceTest, OptimizedMatchesExactOnRandomLinearPlatforms) {
  auto param = GetParam();
  support::Rng rng(param.seed);
  std::vector<double> beta, alpha;
  for (int i = 0; i < param.processors; ++i) {
    beta.push_back(i + 1 == param.processors ? 0.0 : rng.uniform(0.0, 2.0));
    alpha.push_back(rng.uniform(0.1, 5.0));
  }
  auto platform = linear_platform(beta, alpha);
  auto exact = exact_dp(platform, param.items);
  auto optimized = optimized_dp(platform, param.items);
  EXPECT_NEAR(optimized.cost, exact.cost, 1e-9);
  EXPECT_EQ(optimized.distribution.total(), param.items);
  EXPECT_EQ(exact.distribution.total(), param.items);
}

INSTANTIATE_TEST_SUITE_P(
    RandomPlatforms, DpEquivalenceTest,
    ::testing::Values(DpPropertyCase{1, 2, 50}, DpPropertyCase{2, 3, 40},
                      DpPropertyCase{3, 4, 30}, DpPropertyCase{4, 5, 60},
                      DpPropertyCase{5, 6, 25}, DpPropertyCase{6, 8, 80},
                      DpPropertyCase{7, 3, 1}, DpPropertyCase{8, 4, 2},
                      DpPropertyCase{9, 10, 100}, DpPropertyCase{10, 2, 200}));

class DpBruteForceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DpBruteForceTest, ExactDpIsTrulyOptimal) {
  support::Rng rng(GetParam());
  for (int trial = 0; trial < 5; ++trial) {
    int p = static_cast<int>(rng.uniform_int(2, 3));
    long long n = rng.uniform_int(1, 12);
    std::vector<double> beta, alpha;
    for (int i = 0; i < p; ++i) {
      beta.push_back(i + 1 == p ? 0.0 : rng.uniform(0.0, 2.0));
      alpha.push_back(rng.uniform(0.1, 5.0));
    }
    auto platform = linear_platform(beta, alpha);
    auto result = exact_dp(platform, n);
    EXPECT_NEAR(result.cost, brute_force_optimum(platform, n), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpBruteForceTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace lbs::core
