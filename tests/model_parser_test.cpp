#include "model/grid_parser.hpp"

#include <gtest/gtest.h>

#include "model/testbed.hpp"

namespace lbs::model {
namespace {

constexpr const char* kSample = R"(
# two-site example
machine dinadan cpus 1 alpha 0.009288 cpu PIII/933 site strasbourg
machine leda cpus 8 alpha 0.009677 site cines
link dinadan leda beta 3.53e-5
data_home dinadan
)";

TEST(GridParser, ParsesValidConfig) {
  auto result = parse_grid(kSample);
  ASSERT_TRUE(result.ok()) << result.error;
  const Grid& grid = *result.grid;
  ASSERT_EQ(grid.machines().size(), 2u);
  EXPECT_EQ(grid.machine(0).name, "dinadan");
  EXPECT_EQ(grid.machine(0).cpu_description, "PIII/933");
  EXPECT_EQ(grid.machine(1).cpu_count, 8);
  EXPECT_DOUBLE_EQ(grid.machine(1).comp.per_item_slope(), 0.009677);
  EXPECT_DOUBLE_EQ(grid.link(0, 1).per_item_slope(), 3.53e-5);
  EXPECT_EQ(grid.data_home(), 0);
}

TEST(GridParser, CommentsAndBlankLinesIgnored) {
  auto result = parse_grid("# just a comment\n\nmachine a alpha 1.0  # trailing\n");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.grid->machines().size(), 1u);
  EXPECT_EQ(result.grid->machine(0).cpu_count, 1);  // default
}

TEST(GridParser, AffineCosts) {
  auto result = parse_grid(
      "machine a alpha 0.01 fixed 0.5\n"
      "machine b alpha 0.02\n"
      "link a b beta 1e-5 fixed 0.02\n");
  ASSERT_TRUE(result.ok()) << result.error;
  auto comp = result.grid->machine(0).comp.affine();
  ASSERT_TRUE(comp.has_value());
  EXPECT_EQ(comp->fixed, 0.5);
  auto link = result.grid->link(0, 1).affine();
  ASSERT_TRUE(link.has_value());
  EXPECT_EQ(link->fixed, 0.02);
}

TEST(GridParser, ForwardLinkReferencesAllowed) {
  auto result = parse_grid(
      "link a b beta 1e-5\n"
      "machine a alpha 0.01\n"
      "machine b alpha 0.02\n");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_TRUE(result.grid->has_link(0, 1));
}

TEST(GridParser, ErrorsCarryLineNumbers) {
  auto result = parse_grid("machine a alpha 0.01\nbogus directive\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("line 2"), std::string::npos);
  EXPECT_NE(result.error.find("bogus"), std::string::npos);
}

TEST(GridParser, RejectsMachineWithoutAlpha) {
  auto result = parse_grid("machine a cpus 2\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("alpha"), std::string::npos);
}

TEST(GridParser, RejectsBadNumbers) {
  EXPECT_FALSE(parse_grid("machine a alpha xyz\n").ok());
  EXPECT_FALSE(parse_grid("machine a alpha -0.5\n").ok());
  EXPECT_FALSE(parse_grid("machine a cpus 0 alpha 1\n").ok());
  EXPECT_FALSE(parse_grid("machine a alpha 1\nmachine b alpha 1\nlink a b beta nope\n").ok());
}

TEST(GridParser, RejectsDuplicateMachine) {
  auto result = parse_grid("machine a alpha 1\nmachine a alpha 2\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("duplicate"), std::string::npos);
}

TEST(GridParser, RejectsUnknownLinkEndpoint) {
  auto result = parse_grid("machine a alpha 1\nlink a ghost beta 1e-5\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("ghost"), std::string::npos);
}

TEST(GridParser, RejectsSelfLink) {
  auto result = parse_grid("machine a alpha 1\nlink a a beta 1e-5\n");
  ASSERT_FALSE(result.ok());
}

TEST(GridParser, RejectsUnknownDataHome) {
  auto result = parse_grid("machine a alpha 1\ndata_home ghost\n");
  ASSERT_FALSE(result.ok());
}

TEST(GridParser, RejectsEmptyInput) {
  EXPECT_FALSE(parse_grid("").ok());
  EXPECT_FALSE(parse_grid("# only comments\n").ok());
}

TEST(GridParser, RejectsDanglingKey) {
  auto result = parse_grid("machine a alpha\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("pairs"), std::string::npos);
}

TEST(GridParser, RejectsDuplicateKey) {
  auto result = parse_grid("machine a alpha 1 alpha 2\n");
  ASSERT_FALSE(result.ok());
}

TEST(GridWriter, RoundTripsPaperTestbed) {
  Grid original = paper_testbed();
  std::string text = write_grid(original);
  auto reparsed = parse_grid(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error;
  const Grid& grid = *reparsed.grid;
  ASSERT_EQ(grid.machines().size(), original.machines().size());
  for (std::size_t m = 0; m < grid.machines().size(); ++m) {
    int idx = static_cast<int>(m);
    EXPECT_EQ(grid.machine(idx).name, original.machine(idx).name);
    EXPECT_EQ(grid.machine(idx).cpu_count, original.machine(idx).cpu_count);
    EXPECT_DOUBLE_EQ(grid.machine(idx).comp.per_item_slope(),
                     original.machine(idx).comp.per_item_slope());
  }
  int n = static_cast<int>(grid.machines().size());
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      ASSERT_EQ(grid.has_link(a, b), original.has_link(a, b));
      if (grid.has_link(a, b)) {
        EXPECT_DOUBLE_EQ(grid.link(a, b).per_item_slope(),
                         original.link(a, b).per_item_slope());
      }
    }
  }
  EXPECT_EQ(grid.data_home(), original.data_home());
}

}  // namespace
}  // namespace lbs::model
