// Direct unit tests of the mailbox matching/blocking semantics (the mq
// runtime's core), including concurrent producers and shutdown behavior.

#include "mq/mailbox.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "mq/fault.hpp"  // RankCrashed
#include "support/error.hpp"

namespace lbs::mq {
namespace {

Message make_message(int source, int tag, std::byte value = std::byte{0}) {
  Message message;
  message.source = source;
  message.tag = tag;
  message.payload = {value};
  return message;
}

TEST(Mailbox, RetrieveMatchesExactSourceAndTag) {
  Mailbox mailbox;
  mailbox.deposit(make_message(1, 10, std::byte{1}));
  mailbox.deposit(make_message(2, 10, std::byte{2}));
  mailbox.deposit(make_message(1, 20, std::byte{3}));
  auto message = mailbox.retrieve(1, 20);
  EXPECT_EQ(message.payload[0], std::byte{3});
  EXPECT_EQ(mailbox.pending(), 2u);
}

TEST(Mailbox, WildcardSourceTakesFirstMatch) {
  Mailbox mailbox;
  mailbox.deposit(make_message(5, 7, std::byte{5}));
  mailbox.deposit(make_message(6, 7, std::byte{6}));
  auto message = mailbox.retrieve(kAnySource, 7);
  EXPECT_EQ(message.source, 5);
}

TEST(Mailbox, WildcardTagTakesFirstFromSource) {
  Mailbox mailbox;
  mailbox.deposit(make_message(3, 1, std::byte{1}));
  mailbox.deposit(make_message(3, 2, std::byte{2}));
  auto message = mailbox.retrieve(3, kAnyTag);
  EXPECT_EQ(message.tag, 1);
}

TEST(Mailbox, NonOvertakingWithinSourceTagPair) {
  Mailbox mailbox;
  for (int i = 0; i < 10; ++i) {
    mailbox.deposit(make_message(1, 1, std::byte{static_cast<unsigned char>(i)}));
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(mailbox.retrieve(1, 1).payload[0],
              std::byte{static_cast<unsigned char>(i)});
  }
}

TEST(Mailbox, ProbeDoesNotConsume) {
  Mailbox mailbox;
  EXPECT_FALSE(mailbox.probe(1, 1));
  mailbox.deposit(make_message(1, 1));
  EXPECT_TRUE(mailbox.probe(1, 1));
  EXPECT_TRUE(mailbox.probe(kAnySource, kAnyTag));
  EXPECT_FALSE(mailbox.probe(2, 1));
  EXPECT_EQ(mailbox.pending(), 1u);
}

TEST(Mailbox, RetrieveBlocksUntilDeposit) {
  Mailbox mailbox;
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    auto message = mailbox.retrieve(9, 9);
    EXPECT_EQ(message.payload[0], std::byte{42});
    got = true;
  });
  // Give the consumer a moment to block, then satisfy it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  mailbox.deposit(make_message(9, 9, std::byte{42}));
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(Mailbox, ShutdownWakesBlockedReceivers) {
  Mailbox mailbox;
  std::atomic<int> threw{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 4; ++i) {
    consumers.emplace_back([&] {
      try {
        mailbox.retrieve(1, 1);
      } catch (const Error&) {
        ++threw;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  mailbox.shutdown();
  for (auto& consumer : consumers) consumer.join();
  EXPECT_EQ(threw.load(), 4);
}

TEST(Mailbox, RetrieveAfterShutdownThrowsImmediately) {
  Mailbox mailbox;
  mailbox.shutdown();
  EXPECT_THROW(mailbox.retrieve(1, 1), Error);
}

TEST(Mailbox, ConcurrentProducersAllDelivered) {
  Mailbox mailbox;
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 200;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        mailbox.deposit(make_message(p, i % 3));
      }
    });
  }
  std::atomic<int> received{0};
  std::thread consumer([&] {
    for (int i = 0; i < kProducers * kPerProducer; ++i) {
      mailbox.retrieve(kAnySource, kAnyTag);
      ++received;
    }
  });
  for (auto& producer : producers) producer.join();
  consumer.join();
  EXPECT_EQ(received.load(), kProducers * kPerProducer);
  EXPECT_EQ(mailbox.pending(), 0u);
}

TEST(Mailbox, InterleavedTagsUnderConcurrency) {
  Mailbox mailbox;
  constexpr int kMessages = 300;
  std::thread producer([&] {
    for (int i = 0; i < kMessages; ++i) {
      mailbox.deposit(make_message(0, i % 2, std::byte{static_cast<unsigned char>(i % 251)}));
    }
  });
  int even_seen = 0;
  int odd_seen = 0;
  std::thread even_consumer([&] {
    for (int i = 0; i < kMessages / 2; ++i) {
      auto message = mailbox.retrieve(0, 0);
      EXPECT_EQ(message.tag, 0);
      ++even_seen;
    }
  });
  std::thread odd_consumer([&] {
    for (int i = 0; i < kMessages / 2; ++i) {
      auto message = mailbox.retrieve(0, 1);
      EXPECT_EQ(message.tag, 1);
      ++odd_seen;
    }
  });
  producer.join();
  even_consumer.join();
  odd_consumer.join();
  EXPECT_EQ(even_seen, kMessages / 2);
  EXPECT_EQ(odd_seen, kMessages / 2);
}

TEST(MailboxRetrieveFor, ExpiresEmptyHanded) {
  Mailbox mailbox;
  auto before = std::chrono::steady_clock::now();
  EXPECT_FALSE(mailbox.retrieve_for(1, 1, 0.02).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - before,
            std::chrono::milliseconds(15));
}

TEST(MailboxRetrieveFor, ZeroTimeoutPollsWithoutBlocking) {
  Mailbox mailbox;
  EXPECT_FALSE(mailbox.retrieve_for(1, 1, 0.0).has_value());
  mailbox.deposit(make_message(1, 1, std::byte{7}));
  auto message = mailbox.retrieve_for(1, 1, 0.0);
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(message->payload[0], std::byte{7});
}

TEST(MailboxRetrieveFor, SatisfiedJustInTime) {
  Mailbox mailbox;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    mailbox.deposit(make_message(4, 4, std::byte{9}));
  });
  auto message = mailbox.retrieve_for(4, 4, 5.0);
  producer.join();
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(message->payload[0], std::byte{9});
}

TEST(MailboxRetrieveFor, NonMatchingTrafficDoesNotSatisfyIt) {
  Mailbox mailbox;
  mailbox.deposit(make_message(2, 2));
  EXPECT_FALSE(mailbox.retrieve_for(1, 1, 0.02).has_value());
  EXPECT_EQ(mailbox.pending(), 1u);  // the bystander message survives
}

TEST(MailboxRetrieveFor, ShutdownWhileWaitingThrows) {
  Mailbox mailbox;
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    mailbox.shutdown();
  });
  EXPECT_THROW(mailbox.retrieve_for(1, 1, 5.0), Error);
  closer.join();
}

TEST(MailboxRetrieveFor, CrashWhileWaitingThrowsRankCrashed) {
  Mailbox mailbox;
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    mailbox.crash();
  });
  EXPECT_THROW(mailbox.retrieve_for(1, 1, 5.0), RankCrashed);
  killer.join();
}

TEST(Mailbox, CrashOutranksShutdownForBlockedReceivers) {
  Mailbox mailbox;
  mailbox.crash();
  mailbox.shutdown();
  EXPECT_THROW(mailbox.retrieve(1, 1), RankCrashed);
}

TEST(Mailbox, DepositAfterShutdownIsDiscarded) {
  Mailbox mailbox;
  mailbox.shutdown();
  EXPECT_FALSE(mailbox.deposit(make_message(1, 1)));
  EXPECT_EQ(mailbox.pending(), 0u);
}

TEST(Mailbox, DepositAfterCrashIsDiscarded) {
  Mailbox mailbox;
  mailbox.crash();
  EXPECT_FALSE(mailbox.deposit(make_message(1, 1)));
  EXPECT_EQ(mailbox.pending(), 0u);
}

// Hammers retrieve/retrieve_for against concurrent deposits and a late
// shutdown: every blocked receiver must either get a message or see the
// shutdown error — never hang, never crash.
TEST(Mailbox, ConcurrentRetrieveAndShutdownRace) {
  constexpr int kRounds = 50;
  for (int round = 0; round < kRounds; ++round) {
    Mailbox mailbox;
    std::atomic<int> outcomes{0};
    std::vector<std::thread> receivers;
    for (int i = 0; i < 4; ++i) {
      receivers.emplace_back([&, i] {
        try {
          if (i % 2 == 0) {
            mailbox.retrieve(kAnySource, kAnyTag);
          } else {
            mailbox.retrieve_for(kAnySource, kAnyTag, 5.0);
          }
        } catch (const Error&) {
          // shutdown observed — fine
        }
        ++outcomes;
      });
    }
    std::thread producer([&] {
      for (int i = 0; i < 3; ++i) mailbox.deposit(make_message(0, 0));
    });
    std::thread closer([&] { mailbox.shutdown(); });
    producer.join();
    closer.join();
    for (auto& receiver : receivers) receiver.join();
    EXPECT_EQ(outcomes.load(), 4);
  }
}

}  // namespace
}  // namespace lbs::mq
