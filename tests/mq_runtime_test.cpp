#include "mq/runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "mq/platform_link.hpp"
#include "model/testbed.hpp"
#include "support/error.hpp"

namespace lbs::mq {
namespace {

RuntimeOptions plain(int ranks) {
  RuntimeOptions options;
  options.ranks = ranks;
  return options;
}

TEST(Runtime, RunsEveryRankExactlyOnce) {
  std::atomic<int> calls{0};
  std::vector<std::atomic<int>> per_rank(8);
  Runtime::run(plain(8), [&](Comm& comm) {
    ++calls;
    ++per_rank[static_cast<std::size_t>(comm.rank())];
    EXPECT_EQ(comm.size(), 8);
  });
  EXPECT_EQ(calls.load(), 8);
  for (auto& count : per_rank) EXPECT_EQ(count.load(), 1);
}

TEST(Runtime, SingleRankWorks) {
  int visited = 0;
  Runtime::run(plain(1), [&](Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    ++visited;
  });
  EXPECT_EQ(visited, 1);
}

TEST(Runtime, InvalidOptionsThrow) {
  EXPECT_THROW(Runtime::run(plain(0), [](Comm&) {}), lbs::Error);
  RuntimeOptions bad = plain(2);
  bad.time_scale = -1.0;
  EXPECT_THROW(Runtime::run(bad, [](Comm&) {}), lbs::Error);
  EXPECT_THROW(Runtime::run(plain(1), nullptr), lbs::Error);
}

TEST(PointToPoint, SendRecvRoundTrip) {
  Runtime::run(plain(2), [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> data{1.5, 2.5, 3.5};
      comm.send<double>(1, 7, data);
    } else {
      auto data = comm.recv<double>(0, 7);
      EXPECT_EQ(data, (std::vector<double>{1.5, 2.5, 3.5}));
    }
  });
}

TEST(PointToPoint, TagMatchingSelectsRightMessage) {
  Runtime::run(plain(2), [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 10, 100);
      comm.send_value<int>(1, 20, 200);
    } else {
      // Receive in reverse tag order: matching must skip the tag-10 message.
      EXPECT_EQ(comm.recv_value<int>(0, 20), 200);
      EXPECT_EQ(comm.recv_value<int>(0, 10), 100);
    }
  });
}

TEST(PointToPoint, WildcardsMatchAnything) {
  Runtime::run(plain(3), [](Comm& comm) {
    if (comm.rank() != 0) {
      comm.send_value<int>(0, comm.rank(), comm.rank() * 11);
    } else {
      int sum = 0;
      for (int i = 0; i < 2; ++i) {
        auto message = comm.recv_message(kAnySource, kAnyTag);
        sum += message.source;
        EXPECT_EQ(message.tag, message.source);
      }
      EXPECT_EQ(sum, 3);  // ranks 1 and 2
    }
  });
}

TEST(PointToPoint, NonOvertakingSameSourceSameTag) {
  Runtime::run(plain(2), [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 50; ++i) comm.send_value<int>(1, 5, i);
    } else {
      for (int i = 0; i < 50; ++i) EXPECT_EQ(comm.recv_value<int>(0, 5), i);
    }
  });
}

TEST(PointToPoint, SelfSendThrows) {
  EXPECT_THROW(Runtime::run(plain(2),
                            [](Comm& comm) {
                              if (comm.rank() == 0) comm.send_value<int>(0, 1, 42);
                              else comm.recv_value<int>(0, 1);
                            }),
               lbs::Error);
}

TEST(PointToPoint, NegativeUserTagThrows) {
  EXPECT_THROW(Runtime::run(plain(2),
                            [](Comm& comm) {
                              if (comm.rank() == 0) comm.send_value<int>(1, -2, 1);
                              else comm.recv_value<int>(0, 0);
                            }),
               lbs::Error);
}

TEST(Runtime, RankExceptionPropagatesWithoutDeadlock) {
  // Rank 1 dies; rank 0 is blocked receiving from it. The runtime must
  // unblock rank 0 and rethrow rank 1's error.
  EXPECT_THROW(Runtime::run(plain(2),
                            [](Comm& comm) {
                              if (comm.rank() == 1) {
                                throw Error("rank 1 exploded");
                              }
                              comm.recv_value<int>(1, 0);  // would block forever
                            }),
               lbs::Error);
}

TEST(Collectives, BarrierSynchronizes) {
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  Runtime::run(plain(6), [&](Comm& comm) {
    ++before;
    comm.barrier();
    if (before.load() != 6) violated = true;
  });
  EXPECT_FALSE(violated.load());
}

TEST(Collectives, BcastDistributesFromEveryRoot) {
  for (int root = 0; root < 3; ++root) {
    Runtime::run(plain(3), [root](Comm& comm) {
      std::vector<int> data;
      if (comm.rank() == root) data = {root, root + 1, root + 2};
      comm.bcast(root, data);
      EXPECT_EQ(data, (std::vector<int>{root, root + 1, root + 2}));
    });
  }
}

TEST(Collectives, ScatterEqualShares) {
  Runtime::run(plain(4), [](Comm& comm) {
    std::vector<long long> send;
    if (comm.rank() == 0) {
      send.resize(20);
      std::iota(send.begin(), send.end(), 0);
    }
    auto mine = comm.scatter<long long>(0, send, 5);
    ASSERT_EQ(mine.size(), 5u);
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(mine[static_cast<std::size_t>(i)], comm.rank() * 5 + i);
    }
  });
}

TEST(Collectives, ScattervUnequalShares) {
  // The paper's transformation: MPI_Scatterv with custom counts.
  Runtime::run(plain(4), [](Comm& comm) {
    std::vector<long long> counts{1, 0, 4, 5};
    std::vector<int> send;
    if (comm.rank() == 3) {  // root last, paper convention
      send.resize(10);
      std::iota(send.begin(), send.end(), 100);
    }
    auto mine = comm.scatterv<int>(3, send, counts);
    EXPECT_EQ(mine.size(),
              static_cast<std::size_t>(counts[static_cast<std::size_t>(comm.rank())]));
    // Rank 2's chunk starts at displacement 1: values 101..104.
    if (comm.rank() == 2) {
      EXPECT_EQ(mine.front(), 101);
      EXPECT_EQ(mine.back(), 104);
    }
    if (comm.rank() == 3) {
      EXPECT_EQ(mine.front(), 105);
      EXPECT_EQ(mine.back(), 109);
    }
  });
}

TEST(Collectives, ScattervBufferOverrunThrows) {
  EXPECT_THROW(
      Runtime::run(plain(2),
                   [](Comm& comm) {
                     std::vector<long long> counts{5, 5};
                     std::vector<int> send(8);  // too small
                     comm.scatterv<int>(0, send, counts);
                   }),
      lbs::Error);
}

TEST(Collectives, GathervCollectsInRankOrder) {
  Runtime::run(plain(4), [](Comm& comm) {
    std::vector<int> mine(static_cast<std::size_t>(comm.rank()), comm.rank());
    auto all = comm.gatherv<int>(0, mine);
    if (comm.rank() == 0) {
      EXPECT_EQ(all, (std::vector<int>{1, 2, 2, 3, 3, 3}));
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(Collectives, ReduceSums) {
  Runtime::run(plain(5), [](Comm& comm) {
    std::vector<long long> contribution{static_cast<long long>(comm.rank()), 10};
    auto result = comm.reduce<long long>(
        0, contribution, [](const long long& a, const long long& b) { return a + b; });
    if (comm.rank() == 0) {
      EXPECT_EQ(result, (std::vector<long long>{0 + 1 + 2 + 3 + 4, 50}));
    }
  });
}

TEST(Collectives, AllreduceGivesEveryoneTheResult) {
  Runtime::run(plain(4), [](Comm& comm) {
    std::vector<double> contribution{static_cast<double>(comm.rank() + 1)};
    auto result = comm.allreduce<double>(
        contribution, [](const double& a, const double& b) { return std::max(a, b); });
    ASSERT_EQ(result.size(), 1u);
    EXPECT_EQ(result[0], 4.0);
  });
}

TEST(Collectives, RepeatedCollectivesDoNotCrosstalk) {
  Runtime::run(plain(3), [](Comm& comm) {
    for (int round = 0; round < 20; ++round) {
      std::vector<int> data;
      if (comm.rank() == 0) data = {round};
      comm.bcast(0, data);
      ASSERT_EQ(data.size(), 1u);
      EXPECT_EQ(data[0], round);
      comm.barrier();
    }
  });
}

TEST(Pacing, LinkCostDelaysSends) {
  RuntimeOptions options = plain(2);
  options.time_scale = 1.0;
  options.link_cost = [](int, int, std::size_t bytes) {
    return static_cast<double>(bytes) * 1e-5;  // 10 us per byte nominal
  };
  double elapsed = 0.0;
  Runtime::run(options, [&](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::byte> payload(2000);  // 20 ms nominal
      double t0 = comm.wtime();
      comm.send_bytes(1, 0, payload);
      elapsed = comm.wtime() - t0;
    } else {
      comm.recv_message(0, 0);
    }
  });
  EXPECT_GE(elapsed, 0.018);
}

TEST(Pacing, TimeScaleShrinksDelays) {
  RuntimeOptions options = plain(2);
  options.time_scale = 1e-3;
  options.link_cost = [](int, int, std::size_t) { return 10.0; };  // 10 s nominal
  double elapsed = 0.0;
  Runtime::run(options, [&](Comm& comm) {
    if (comm.rank() == 0) {
      double t0 = comm.wtime();
      comm.send_value<int>(1, 0, 1);
      elapsed = comm.wtime() - t0;
    } else {
      comm.recv_value<int>(0, 0);
    }
  });
  EXPECT_GE(elapsed, 0.008);
  EXPECT_LT(elapsed, 1.0);
}

TEST(Pacing, StairEffectEmerges) {
  // A root scattering to 3 ranks with per-send delay: receive completion
  // times must be staggered in rank order (Figure 1's stair).
  RuntimeOptions options = plain(4);
  options.time_scale = 1.0;
  options.link_cost = [](int from, int, std::size_t) {
    return from == 3 ? 0.02 : 0.0;  // 20 ms per send from the root
  };
  std::array<double, 4> recv_time{};
  Runtime::run(options, [&](Comm& comm) {
    std::vector<long long> counts{1, 1, 1, 1};
    std::vector<int> send;
    if (comm.rank() == 3) send = {0, 1, 2, 3};
    comm.scatterv<int>(3, send, counts);
    recv_time[static_cast<std::size_t>(comm.rank())] = comm.wtime();
  });
  EXPECT_GE(recv_time[1], recv_time[0] + 0.015);
  EXPECT_GE(recv_time[2], recv_time[1] + 0.015);
}

TEST(PlatformLink, RootLinksUsePlatformCosts) {
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  int root = platform.size() - 1;
  auto cost = make_link_cost(platform, sizeof(double));
  // Sending 1000 items (8000 bytes) from root to processor 0 costs
  // Tcomm(0, 1000).
  EXPECT_DOUBLE_EQ(cost(root, 0, 8000), platform[0].comm(1000));
  // Symmetric for gathers.
  EXPECT_DOUBLE_EQ(cost(0, root, 8000), platform[0].comm(1000));
  // Partial items round up.
  EXPECT_DOUBLE_EQ(cost(root, 0, 8001), platform[0].comm(1001));
}

TEST(PlatformLink, RejectsZeroItemSize) {
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  EXPECT_THROW(make_link_cost(platform, 0), lbs::Error);
}

}  // namespace
}  // namespace lbs::mq
