#include "support/rational.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace lbs::support {
namespace {

TEST(Rational, DefaultIsZero) {
  Rational r;
  EXPECT_TRUE(r.is_zero());
  EXPECT_TRUE(r.is_integer());
  EXPECT_EQ(r.to_string(), "0");
}

TEST(Rational, ReducesOnConstruction) {
  Rational r(6, 4);
  EXPECT_EQ(r.to_string(), "3/2");
  Rational s(-6, 4);
  EXPECT_EQ(s.to_string(), "-3/2");
  Rational t(6, -4);
  EXPECT_EQ(t.to_string(), "-3/2");
  Rational u(-6, -4);
  EXPECT_EQ(u.to_string(), "3/2");
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), Error);
}

TEST(Rational, Arithmetic) {
  Rational a(1, 3);
  Rational b(1, 6);
  EXPECT_EQ(a + b, Rational(1, 2));
  EXPECT_EQ(a - b, Rational(1, 6));
  EXPECT_EQ(a * b, Rational(1, 18));
  EXPECT_EQ(a / b, Rational(2));
  EXPECT_EQ(-a, Rational(-1, 3));
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW(Rational(1) / Rational(0), Error);
  EXPECT_THROW(Rational(0).reciprocal(), Error);
}

TEST(Rational, Comparison) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_LE(Rational(5, 10), Rational(1, 2));
}

TEST(Rational, FloorCeilRound) {
  EXPECT_EQ(Rational(7, 2).floor(), Rational(3));
  EXPECT_EQ(Rational(7, 2).ceil(), Rational(4));
  EXPECT_EQ(Rational(7, 2).round(), Rational(4));  // half away from zero
  EXPECT_EQ(Rational(-7, 2).floor(), Rational(-4));
  EXPECT_EQ(Rational(-7, 2).ceil(), Rational(-3));
  EXPECT_EQ(Rational(-7, 2).round(), Rational(-4));
  EXPECT_EQ(Rational(10, 3).round(), Rational(3));
  EXPECT_EQ(Rational(11, 3).round(), Rational(4));
  EXPECT_EQ(Rational(5).floor(), Rational(5));
  EXPECT_EQ(Rational(5).ceil(), Rational(5));
}

TEST(Rational, FromDoubleExact) {
  EXPECT_EQ(Rational::from_double(0.5), Rational(1, 2));
  EXPECT_EQ(Rational::from_double(0.25), Rational(1, 4));
  EXPECT_EQ(Rational::from_double(3.0), Rational(3));
  EXPECT_EQ(Rational::from_double(-1.75), Rational(-7, 4));
  EXPECT_EQ(Rational::from_double(0.0), Rational(0));
}

TEST(Rational, FromDoubleRoundTripsThroughToDouble) {
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    double value = rng.uniform(-1e6, 1e6);
    EXPECT_EQ(Rational::from_double(value).to_double(), value);
  }
}

TEST(Rational, FromDoubleRejectsNonFinite) {
  EXPECT_THROW(Rational::from_double(std::numeric_limits<double>::infinity()), Error);
  EXPECT_THROW(Rational::from_double(std::numeric_limits<double>::quiet_NaN()), Error);
}

TEST(Rational, ToInt64) {
  EXPECT_EQ(Rational(42).to_int64(), 42);
  EXPECT_EQ(Rational(-7).to_int64(), -7);
  EXPECT_THROW(Rational(1, 2).to_int64(), Error);
}

TEST(Rational, Abs) {
  EXPECT_EQ(Rational(-3, 7).abs(), Rational(3, 7));
  EXPECT_EQ(Rational(3, 7).abs(), Rational(3, 7));
}

TEST(Rational, OverflowDetected) {
  Rational huge(static_cast<long long>(1) << 62);
  Rational result = huge;
  // Repeated squaring must eventually overflow 128 bits and throw, not wrap.
  EXPECT_THROW(
      {
        for (int i = 0; i < 4; ++i) result *= result;
      },
      Error);
}

TEST(Rational, SumOfHarmonicSeriesExact) {
  // An accumulation pattern close to the D(P1..Pp) computation.
  Rational sum;
  for (long long k = 1; k <= 30; ++k) sum += Rational(1, k);
  // H_30 = 9304682830147/2329089562800
  EXPECT_EQ(sum, Rational(9304682830147LL, 2329089562800LL));
}

// Property: field axioms hold on random small rationals.
class RationalPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RationalPropertyTest, FieldAxioms) {
  Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    Rational a(rng.uniform_int(-1000, 1000), rng.uniform_int(1, 1000));
    Rational b(rng.uniform_int(-1000, 1000), rng.uniform_int(1, 1000));
    Rational c(rng.uniform_int(-1000, 1000), rng.uniform_int(1, 1000));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a + Rational(0), a);
    EXPECT_EQ(a * Rational(1), a);
    EXPECT_EQ(a - a, Rational(0));
    if (!b.is_zero()) EXPECT_EQ((a / b) * b, a);
  }
}

TEST_P(RationalPropertyTest, FloorCeilBracketValue) {
  Rng rng(GetParam() ^ 0xabcdef);
  for (int i = 0; i < 100; ++i) {
    Rational a(rng.uniform_int(-10000, 10000), rng.uniform_int(1, 997));
    EXPECT_LE(a.floor(), a);
    EXPECT_GE(a.ceil(), a);
    EXPECT_LE(a.ceil() - a.floor(), Rational(1));
    EXPECT_LE((a - a.round()).abs(), Rational(1, 2));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RationalPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace lbs::support
