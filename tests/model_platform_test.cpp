#include "model/platform.hpp"

#include <gtest/gtest.h>

#include "model/testbed.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace lbs::model {
namespace {

Grid two_machine_grid() {
  Grid grid;
  Machine a;
  a.name = "root-box";
  a.cpu_count = 1;
  a.comp = Cost::linear(0.01);
  grid.add_machine(a);
  Machine b;
  b.name = "worker";
  b.cpu_count = 2;
  b.comp = Cost::linear(0.005);
  grid.add_machine(b);
  grid.set_link(0, 1, Cost::linear(1e-5));
  grid.set_data_home(0);
  return grid;
}

TEST(Grid, MachineLookup) {
  Grid grid = two_machine_grid();
  EXPECT_EQ(grid.machine_index("root-box"), 0);
  EXPECT_EQ(grid.machine_index("worker"), 1);
  EXPECT_EQ(grid.machine_index("missing"), -1);
  EXPECT_EQ(grid.machine(1).cpu_count, 2);
}

TEST(Grid, DuplicateMachineNameThrows) {
  Grid grid = two_machine_grid();
  Machine dup;
  dup.name = "worker";
  dup.comp = Cost::linear(1.0);
  EXPECT_THROW(grid.add_machine(dup), lbs::Error);
}

TEST(Grid, SelfLinkIsZero) {
  Grid grid = two_machine_grid();
  EXPECT_EQ(grid.link(0, 0)(1000), 0.0);
  EXPECT_THROW(grid.set_link(1, 1, Cost::linear(1.0)), lbs::Error);
}

TEST(Grid, LinkIsSymmetric) {
  Grid grid = two_machine_grid();
  EXPECT_DOUBLE_EQ(grid.link(0, 1)(100), grid.link(1, 0)(100));
}

TEST(Grid, UnsetLinkThrows) {
  Grid grid;
  Machine a;
  a.name = "a";
  a.comp = Cost::linear(1.0);
  grid.add_machine(a);
  Machine b;
  b.name = "b";
  b.comp = Cost::linear(1.0);
  grid.add_machine(b);
  EXPECT_FALSE(grid.has_link(0, 1));
  EXPECT_THROW(grid.link(0, 1), lbs::Error);
}

TEST(Grid, AllProcessorsEnumeratesCpus) {
  Grid grid = two_machine_grid();
  auto procs = grid.all_processors();
  ASSERT_EQ(procs.size(), 3u);
  EXPECT_EQ(grid.total_cpus(), 3);
  EXPECT_EQ(procs[0], (ProcessorRef{0, 0}));
  EXPECT_EQ(procs[1], (ProcessorRef{1, 0}));
  EXPECT_EQ(procs[2], (ProcessorRef{1, 1}));
}

TEST(Grid, ProcessorLabels) {
  Grid grid = two_machine_grid();
  EXPECT_EQ(grid.processor_label({0, 0}), "root-box");
  EXPECT_EQ(grid.processor_label({1, 1}), "worker#1");
}

TEST(MakePlatform, RootIsLastWithZeroComm) {
  Grid grid = two_machine_grid();
  Platform platform = make_platform(grid, ProcessorRef{0, 0});
  ASSERT_EQ(platform.size(), 3);
  EXPECT_EQ(platform[2].label, "root-box");
  EXPECT_EQ(platform[2].comm(100000), 0.0);
  EXPECT_GT(platform[0].comm(100000), 0.0);
}

TEST(MakePlatform, RespectsExplicitOrder) {
  Grid grid = two_machine_grid();
  std::vector<ProcessorRef> order{{1, 1}, {1, 0}};
  Platform platform = make_platform(grid, ProcessorRef{0, 0}, order);
  ASSERT_EQ(platform.size(), 3);
  EXPECT_EQ(platform[0].label, "worker#1");
  EXPECT_EQ(platform[1].label, "worker#0");
  EXPECT_EQ(platform[2].label, "root-box");
}

TEST(MakePlatform, DuplicateProcessorThrows) {
  Grid grid = two_machine_grid();
  std::vector<ProcessorRef> order{{1, 0}, {1, 0}};
  EXPECT_THROW(make_platform(grid, ProcessorRef{0, 0}, order), lbs::Error);
}

TEST(MakePlatform, BadCpuIndexThrows) {
  Grid grid = two_machine_grid();
  std::vector<ProcessorRef> order{{1, 5}};
  EXPECT_THROW(make_platform(grid, ProcessorRef{0, 0}, order), lbs::Error);
}

TEST(Platform, CostPropertyChecks) {
  Grid grid = two_machine_grid();
  Platform platform = make_platform(grid, ProcessorRef{0, 0});
  EXPECT_TRUE(platform.all_costs_increasing());
  EXPECT_TRUE(platform.all_costs_affine());
}

TEST(PaperTestbed, MatchesTable1) {
  Grid grid = paper_testbed();
  ASSERT_EQ(grid.machines().size(), 7u);
  EXPECT_EQ(grid.total_cpus(), 16);  // the paper's 16 processors

  int dinadan = grid.machine_index("dinadan");
  ASSERT_GE(dinadan, 0);
  EXPECT_EQ(grid.data_home(), dinadan);
  EXPECT_DOUBLE_EQ(grid.machine(dinadan).comp.per_item_slope(), 0.009288);

  int leda = grid.machine_index("leda");
  ASSERT_GE(leda, 0);
  EXPECT_EQ(grid.machine(leda).cpu_count, 8);
  EXPECT_DOUBLE_EQ(grid.machine(leda).comp.per_item_slope(), 0.009677);
  EXPECT_DOUBLE_EQ(grid.link(dinadan, leda).per_item_slope(), 3.53e-5);

  int merlin = grid.machine_index("merlin");
  ASSERT_GE(merlin, 0);
  // merlin is behind the 10 Mbit/s hub: worst bandwidth in Table 1.
  EXPECT_DOUBLE_EQ(grid.link(dinadan, merlin).per_item_slope(), 8.15e-5);
}

TEST(PaperTestbed, RootIsDinadan) {
  Grid grid = paper_testbed();
  auto root = paper_root(grid);
  EXPECT_EQ(grid.processor_label(root), "dinadan");
}

TEST(PaperTestbed, PlatformHas16ProcessorsRootLast) {
  Grid grid = paper_testbed();
  Platform platform = make_platform(grid, paper_root(grid));
  ASSERT_EQ(platform.size(), 16);
  EXPECT_EQ(platform[15].label, "dinadan");
  EXPECT_TRUE(platform.all_costs_affine());
}

TEST(RandomGrid, IsWellFormed) {
  support::Rng rng(1234);
  Grid grid = random_grid(rng, 6, /*affine=*/false);
  EXPECT_EQ(grid.machines().size(), 6u);
  EXPECT_GE(grid.data_home(), 0);
  for (int a = 0; a < 6; ++a) {
    for (int b = a + 1; b < 6; ++b) {
      EXPECT_TRUE(grid.has_link(a, b));
      EXPECT_GT(grid.link(a, b)(1), 0.0);
    }
  }
  Platform platform = make_platform(grid, ProcessorRef{grid.data_home(), 0});
  EXPECT_EQ(platform.size(), grid.total_cpus());
  EXPECT_TRUE(platform.all_costs_increasing());
}

TEST(RandomGrid, AffineVariantHasFixedTerms) {
  support::Rng rng(99);
  Grid grid = random_grid(rng, 8, /*affine=*/true);
  bool any_fixed = false;
  for (const auto& machine : grid.machines()) {
    auto coeffs = machine.comp.affine();
    ASSERT_TRUE(coeffs.has_value());
    if (coeffs->fixed > 0.0) any_fixed = true;
  }
  EXPECT_TRUE(any_fixed);
}

TEST(RandomGrid, DeterministicForSeed) {
  support::Rng rng1(7);
  support::Rng rng2(7);
  Grid a = random_grid(rng1, 5, false);
  Grid b = random_grid(rng2, 5, false);
  for (std::size_t m = 0; m < 5; ++m) {
    EXPECT_EQ(a.machine(static_cast<int>(m)).cpu_count,
              b.machine(static_cast<int>(m)).cpu_count);
    EXPECT_DOUBLE_EQ(a.machine(static_cast<int>(m)).comp.per_item_slope(),
                     b.machine(static_cast<int>(m)).comp.per_item_slope());
  }
}

}  // namespace
}  // namespace lbs::model
