#include "core/two_level.hpp"

#include <gtest/gtest.h>

#include <map>

#include "model/testbed.hpp"
#include "support/error.hpp"

namespace lbs::core {
namespace {

// A three-site grid where WAN links carry a per-message latency: the
// regime where routing through coordinators pays.
model::Grid multi_site_grid(double wan_fixed) {
  model::Grid grid;
  auto add = [&](const char* name, int cpus, double alpha, const char* site) {
    model::Machine machine;
    machine.name = name;
    machine.cpu_count = cpus;
    machine.comp = model::Cost::linear(alpha);
    machine.site = site;
    return grid.add_machine(machine);
  };
  add("home", 1, 0.010, "alpha-site");
  add("hA", 2, 0.004, "alpha-site");
  add("b0", 1, 0.006, "beta-site");
  add("b1", 4, 0.005, "beta-site");
  add("c0", 2, 0.008, "gamma-site");
  add("c1", 2, 0.007, "gamma-site");

  auto site_of = [&](int m) { return grid.machine(m).site; };
  for (int a = 0; a < 6; ++a) {
    for (int b = a + 1; b < 6; ++b) {
      if (site_of(a) == site_of(b)) {
        grid.set_link(a, b, model::Cost::linear(2e-6));  // LAN
      } else {
        grid.set_link(a, b, model::Cost::affine(wan_fixed, 4e-5));  // WAN
      }
    }
  }
  grid.set_data_home(0);
  return grid;
}

TEST(TwoLevel, CountsSumAndStayNonNegative) {
  auto grid = multi_site_grid(0.05);
  auto plan = plan_two_level(grid, {0, 0}, 100000);
  long long total = 0;
  for (const auto& [ref, count] : plan.counts) {
    EXPECT_GE(count, 0);
    total += count;
  }
  EXPECT_EQ(total, 100000);
  // Every processor of the grid appears exactly once.
  EXPECT_EQ(plan.counts.size(), static_cast<std::size_t>(grid.total_cpus()));
  std::map<std::pair<int, int>, int> seen;
  for (const auto& [ref, count] : plan.counts) ++seen[{ref.machine, ref.cpu}];
  for (const auto& [key, occurrences] : seen) EXPECT_EQ(occurrences, 1);
}

TEST(TwoLevel, SiteStructureIsRespected) {
  auto grid = multi_site_grid(0.05);
  auto plan = plan_two_level(grid, {0, 0}, 50000);
  ASSERT_EQ(plan.sites.size(), 3u);
  // Root site last, per the paper's convention lifted one level.
  EXPECT_EQ(plan.sites.back().site, "alpha-site");
  EXPECT_EQ(plan.sites.back().coordinator.machine, 0);
  // Remote coordinators belong to their own sites.
  for (const auto& site : plan.sites) {
    EXPECT_EQ(grid.machine(site.coordinator.machine).site, site.site);
    EXPECT_EQ(site.items, site.plan.distribution.total());
  }
}

TEST(TwoLevel, BeatsFlatWhenWanHandshakesAreExpensive) {
  // Two-level wins when per-message handshakes are large relative to the
  // per-item work (it trades 9 WAN handshakes for 2, at the cost of
  // store-and-forward aggregates): small batches, costly messages.
  auto grid = multi_site_grid(0.2);  // 200 ms per WAN message
  long long n = 5000;
  double flat = flat_plan_makespan(grid, {0, 0}, n);
  auto two_level = plan_two_level(grid, {0, 0}, n);
  EXPECT_LT(two_level.predicted_makespan, flat * 0.95);
}

TEST(TwoLevel, CrossoverMovesWithHandshakeCost) {
  long long n = 5000;
  double previous_advantage = -1e9;
  for (double handshake : {0.05, 0.5, 2.0}) {
    auto grid = multi_site_grid(handshake);
    double flat = flat_plan_makespan(grid, {0, 0}, n);
    auto two_level = plan_two_level(grid, {0, 0}, n);
    double advantage = flat - two_level.predicted_makespan;
    EXPECT_GT(advantage, previous_advantage);  // grows with handshake cost
    previous_advantage = advantage;
  }
  EXPECT_GT(previous_advantage, 1.0);  // at 2 s handshakes it is decisive
}

TEST(TwoLevel, CloseToFlatWhenLinksAreLinear) {
  // With no per-message cost, aggregates move the same bytes as flat
  // sends; the two plans should be within a few percent (two-level pays
  // the extra LAN hop, overlapped with WAN service of other sites).
  auto grid = multi_site_grid(0.0);
  long long n = 100000;
  double flat = flat_plan_makespan(grid, {0, 0}, n);
  auto two_level = plan_two_level(grid, {0, 0}, n);
  EXPECT_NEAR(two_level.predicted_makespan, flat, 0.10 * flat);
}

TEST(TwoLevel, CoordinatorHasFastestWanLink) {
  auto grid = multi_site_grid(0.05);
  // Make c1 clearly better connected than c0.
  grid.set_link(0, grid.machine_index("c1"), model::Cost::affine(0.05, 1e-5));
  auto plan = plan_two_level(grid, {0, 0}, 10000);
  for (const auto& site : plan.sites) {
    if (site.site == "gamma-site") {
      EXPECT_EQ(grid.machine(site.coordinator.machine).name, "c1");
    }
  }
}

TEST(TwoLevel, SingleSiteDegeneratesToFlat) {
  model::Grid grid;
  model::Machine a;
  a.name = "only";
  a.cpu_count = 4;
  a.comp = model::Cost::linear(0.01);
  a.site = "solo";
  grid.add_machine(a);
  grid.set_data_home(0);
  auto plan = plan_two_level(grid, {0, 0}, 1000);
  ASSERT_EQ(plan.sites.size(), 1u);
  EXPECT_EQ(plan.counts.size(), 4u);
  double flat = flat_plan_makespan(grid, {0, 0}, 1000);
  EXPECT_NEAR(plan.predicted_makespan, flat, 1e-9);
}

TEST(TwoLevel, RequiresSiteLabels) {
  model::Grid grid;
  model::Machine a;
  a.name = "unlabeled";
  a.comp = model::Cost::linear(0.01);
  grid.add_machine(a);
  grid.set_data_home(0);
  EXPECT_THROW(plan_two_level(grid, {0, 0}, 10), lbs::Error);
}

TEST(TwoLevel, PaperTestbedTwoSites) {
  // Strasbourg + CINES: with the measured (linear) betas the two plans
  // are near-identical — consistent with the paper not needing a
  // hierarchical scatter on its testbed.
  auto grid = model::paper_testbed();
  long long n = model::kPaperRayCount;
  double flat = flat_plan_makespan(grid, model::paper_root(grid), n);
  auto two_level = plan_two_level(grid, model::paper_root(grid), n);
  long long total = 0;
  for (const auto& [ref, count] : two_level.counts) total += count;
  EXPECT_EQ(total, n);
  EXPECT_NEAR(two_level.predicted_makespan, flat, 0.05 * flat);
}

}  // namespace
}  // namespace lbs::core
