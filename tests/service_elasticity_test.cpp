// THE elasticity drill (tsan + elasticity labels): three TCP replicas
// under continuous client load, a fourth replica joins via the two-phase
// protocol, then one original drains — all without restarting anything.
// The assertions are the PR's acceptance criteria:
//
//   - zero request failures beyond typed retries: every response the
//     load threads see is Ok (WrongEpoch redirects are followed inside
//     FleetClient and never surface);
//   - the joiner serves its partition with ZERO re-solves — its solve
//     counter stays 0 through the whole drill while its handoff counter
//     equals exactly the keys the new ring assigns it (the snapshot
//     handoff proof);
//   - fleet-wide, every key is solved exactly once, reshard
//     notwithstanding;
//   - every client converges to the final epoch with no restart, via
//     WrongEpoch redirects alone.
//
// LBS_ELASTICITY_ITERS repeats the drill (nightly soak: 8);
// LBS_ELASTICITY_STATS appends one JSONL line of convergence stats per
// iteration for the nightly artifact.
#include "service/admin.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/plan_cache.hpp"
#include "core/planner.hpp"
#include "obs/metrics.hpp"
#include "service/fleet.hpp"
#include "service/server.hpp"
#include "support/error.hpp"

namespace lbs::service {
namespace {

constexpr long long kItems = 5000;

int drill_iters() {
  const char* env = std::getenv("LBS_ELASTICITY_ITERS");
  if (env == nullptr) return 1;
  int iters = std::atoi(env);
  return iters > 0 ? iters : 1;
}

// One JSONL stats line per drill iteration, for the nightly artifact.
// No-op unless LBS_ELASTICITY_STATS names a file.
void export_stats(const std::string& scenario,
                  const std::vector<std::pair<std::string, double>>& fields) {
  const char* path = std::getenv("LBS_ELASTICITY_STATS");
  if (path == nullptr || *path == '\0') return;
  std::ostringstream line;
  line << "{\"scenario\":\"" << scenario << "\"";
  for (const auto& [key, value] : fields) {
    line << ",\"" << key << "\":" << value;
  }
  line << "}\n";
  std::ofstream out(path, std::ios::app);
  out << line.str();
}

// A platform whose worker slope varies with `seed`: distinct PlanKeys.
model::Platform seeded_platform(int seed) {
  model::Platform platform;
  model::Processor worker;
  worker.label = "worker";
  worker.comm = model::Cost::linear(0.5);
  worker.comp = model::Cost::tabulated(
      {{10, 1.0 + 0.01 * seed}, {100, 9.0 + 0.01 * seed}});
  platform.processors.push_back(worker);
  model::Processor root;
  root.label = "root";
  root.comm = model::Cost::zero();
  root.comp = model::Cost::linear(0.2);
  platform.processors.push_back(root);
  return platform;
}

std::uint64_t key_hash(int seed) {
  core::PlanKey key =
      core::make_plan_key(seeded_platform(seed), kItems, core::Algorithm::Auto);
  return static_cast<std::uint64_t>(core::PlanKeyHash{}(key));
}

std::string temp_path(const std::string& tag) {
  static int counter = 0;
  return "/tmp/lbs_elasticity_test_" + std::to_string(::getpid()) + "_" + tag +
         "_" + std::to_string(++counter);
}

std::unique_ptr<Server> start_replica() {
  ServerOptions options;
  options.endpoint = Endpoint::tcp("127.0.0.1", 0);
  auto server = std::make_unique<Server>(options);
  server->start();
  EXPECT_NE(server->endpoint().port, 0) << "kernel did not assign a port";
  return server;
}

TEST(ServiceElasticity, MembershipExchangeQueriesAndAdopts) {
  auto server = start_replica();

  // Epoch-0 exchange is a pure query: a fresh server holds the empty
  // unversioned view.
  auto before = admin::fetch_view(server->endpoint());
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ(before->epoch, 0u);
  EXPECT_TRUE(before->members.empty());

  MembershipView view;
  view.epoch = 5;
  view.members = {Member{server->endpoint(), ReplicaState::Serving}};
  admin::PushResult pushed = admin::push_view(view, {server->endpoint()});
  EXPECT_EQ(pushed.acked, 1);
  EXPECT_TRUE(pushed.errors.empty());
  EXPECT_EQ(server->membership_view(), view);
  EXPECT_EQ(server->counters().membership_updates, 1u);

  // Replaying an older (or equal) epoch is a no-op — the ack still
  // carries the newer view the server kept.
  MembershipView stale = view;
  stale.epoch = 3;
  admin::PushResult replay = admin::push_view(stale, {server->endpoint()});
  EXPECT_EQ(replay.acked, 1);
  EXPECT_EQ(server->membership_view().epoch, 5u);
  EXPECT_EQ(server->counters().membership_updates, 1u);

  server->stop();
}

TEST(ServiceElasticity, MembershipFileConvergesServerAndClientWithoutTraffic) {
  const std::string path = temp_path("view");
  auto server = start_replica();
  // No --membership on the server's own options (its endpoint was
  // port-0, unknowable before start), so hand it the file by adoption
  // and point a CLIENT watcher at the same file.
  MembershipView v1;
  v1.epoch = 1;
  v1.members = {Member{server->endpoint(), ReplicaState::Serving}};
  write_view_file(path, v1);

  FleetOptions options;
  options.replicas = {server->endpoint()};
  options.membership_path = path;
  options.membership_poll_ms = 10;
  FleetClient client(options);

  // A second server watching the file converges too — no frames, no
  // restarts, just the file.
  ServerOptions watcher_options;
  watcher_options.endpoint = Endpoint::tcp("127.0.0.1", 0);
  watcher_options.membership_path = path;
  watcher_options.membership_poll_ms = 10;
  Server watcher(watcher_options);
  watcher.start();

  MembershipView v2 = v1;
  v2.epoch = 2;
  v2.members.push_back(Member{watcher.endpoint(), ReplicaState::Joining});
  write_view_file(path, v2);

  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while ((client.epoch() != 2 || watcher.membership_view().epoch != 2) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(client.epoch(), 2u);
  EXPECT_EQ(watcher.membership_view().epoch, 2u);

  // Garbage never regresses a watcher: the view stays at epoch 2.
  {
    std::ofstream out(path, std::ios::trunc);
    out << "epoch banana\n";
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(client.epoch(), 2u);
  EXPECT_EQ(watcher.membership_view().epoch, 2u);

  watcher.stop();
  server->stop();
  client.close();
  std::remove(path.c_str());
}

// The full drill described in the file header.
TEST(ServiceElasticity, JoinAndDrainUnderLoadWithZeroResolves) {
  constexpr int kKeys = 32;
  constexpr int kLoadThreads = 4;

  for (int iter = 0; iter < drill_iters(); ++iter) {
    // Four replicas up; the fleet starts as the first three.
    std::vector<std::unique_ptr<Server>> servers;
    for (int i = 0; i < 4; ++i) servers.push_back(start_replica());
    const Endpoint joiner = servers[3]->endpoint();
    const Endpoint drained = servers[0]->endpoint();

    MembershipView v1;
    v1.epoch = 1;
    for (int i = 0; i < 3; ++i) {
      v1.members.push_back(Member{servers[i]->endpoint(), ReplicaState::Serving});
    }
    admin::PushResult seeded = admin::push_view(
        v1, {servers[0]->endpoint(), servers[1]->endpoint(),
             servers[2]->endpoint()});
    ASSERT_TRUE(seeded.errors.empty());

    obs::Metrics metrics;
    FleetOptions options;
    options.view = v1;
    options.metrics = &metrics;
    FleetClient client(options);

    // Warm every key on its home replica.
    for (int seed = 0; seed < kKeys; ++seed) {
      PlanResponse response = client.plan(seeded_platform(seed), kItems);
      ASSERT_EQ(response.status, PlanStatus::Ok) << response.message;
      ASSERT_FALSE(response.local_fallback);
    }
    std::uint64_t warm_solved = 0;
    for (const auto& server : servers) warm_solved += server->counters().solved;
    ASSERT_EQ(warm_solved, static_cast<std::uint64_t>(kKeys));
    ASSERT_EQ(servers[3]->counters().solved, 0u);

    // Continuous load over the warmed key pool while membership churns.
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> load_requests{0};
    std::atomic<std::uint64_t> load_failures{0};
    std::vector<std::thread> load;
    for (int t = 0; t < kLoadThreads; ++t) {
      load.emplace_back([&, t] {
        std::mt19937 rng(static_cast<unsigned>(1000 * iter + t));
        while (!stop.load(std::memory_order_acquire)) {
          int seed = static_cast<int>(rng() % kKeys);
          PlanResponse response = client.plan(seeded_platform(seed), kItems);
          load_requests.fetch_add(1, std::memory_order_relaxed);
          if (response.status != PlanStatus::Ok || response.local_fallback) {
            load_failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }

    // Join the fourth replica (epochs 2 and 3), then drain an original
    // (epoch 4), all mid-load.
    auto base = admin::fetch_view(servers[1]->endpoint());
    ASSERT_TRUE(base.has_value());
    admin::PushResult joined = admin::join_fleet(*base, joiner);
    EXPECT_TRUE(joined.errors.empty()) << joined.errors.front();
    EXPECT_EQ(joined.view.epoch, 3u);

    admin::PushResult drained_push = admin::drain_replica(joined.view, drained);
    EXPECT_TRUE(drained_push.errors.empty()) << drained_push.errors.front();
    EXPECT_EQ(drained_push.view.epoch, 4u);
    const std::uint64_t drained_solved_at_drain = servers[0]->counters().solved;

    // Let the load run against the final membership for a moment, then
    // replay every key once from this thread — the convergence sweep.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    stop.store(true, std::memory_order_release);
    for (auto& thread : load) thread.join();

    for (int seed = 0; seed < kKeys; ++seed) {
      PlanResponse response = client.plan(seeded_platform(seed), kItems);
      EXPECT_EQ(response.status, PlanStatus::Ok) << response.message;
      EXPECT_FALSE(response.local_fallback);
    }

    // Zero failures beyond typed retries: the load threads saw Ok, only Ok.
    EXPECT_EQ(load_failures.load(), 0u);
    EXPECT_GT(load_requests.load(), 0u);

    // THE zero-re-solve proof. The joiner answered its whole partition
    // from the snapshot handoff: solve counter still zero, handoff
    // counter exactly the keys the final ring assigns it (every one was
    // in a donor's cache). Fleet-wide, nothing was ever solved twice.
    support::HashRing final_ring = ring_of(drained_push.view);
    std::uint64_t joiner_owned = 0;
    for (int seed = 0; seed < kKeys; ++seed) {
      if (final_ring.node_for(key_hash(seed)) == joiner.to_string()) {
        ++joiner_owned;
      }
    }
    Server::Counters joiner_counters = servers[3]->counters();
    EXPECT_EQ(joiner_counters.solved, 0u) << "joiner re-solved handed-off keys";
    EXPECT_GE(joiner_counters.handoff_entries, joiner_owned);
    std::uint64_t total_solved = 0;
    for (const auto& server : servers) total_solved += server->counters().solved;
    EXPECT_EQ(total_solved, static_cast<std::uint64_t>(kKeys))
        << "a reshard caused re-solves";

    // The drained replica took no new unique work after the drain.
    EXPECT_EQ(servers[0]->counters().solved, drained_solved_at_drain);

    // Every client converged to the final epoch without restart.
    EXPECT_EQ(client.epoch(), 4u);
    FleetClient::Counters fleet_counters = client.counters();
    EXPECT_EQ(fleet_counters.rejected, 0u);
    EXPECT_EQ(fleet_counters.fallbacks, 0u);
    EXPECT_EQ(fleet_counters.exhausted, 0u);
    EXPECT_GE(fleet_counters.redirected, 1u) << "client never saw a redirect";

    // Direct contract check on the drained replica: cached keys still
    // serve (in-flight/old work completes), a NEW key is redirected with
    // the current view.
    {
      Client direct(drained.to_string());
      direct.set_epoch(drained_push.view.epoch);
      int drained_seed = -1;
      support::HashRing v1_ring = ring_of(v1);
      for (int seed = 0; seed < kKeys; ++seed) {
        if (v1_ring.node_for(key_hash(seed)) == drained.to_string()) {
          drained_seed = seed;
          break;
        }
      }
      if (drained_seed >= 0) {
        PlanResponse cached =
            direct.plan(seeded_platform(drained_seed), kItems);
        EXPECT_EQ(cached.status, PlanStatus::Ok);
        EXPECT_TRUE(cached.cache_hit);
      }
      PlanResponse fresh = direct.plan(seeded_platform(100000 + iter), kItems);
      ASSERT_EQ(fresh.status, PlanStatus::WrongEpoch);
      EXPECT_EQ(fresh.current_view, drained_push.view);
      direct.close();
    }

    export_stats("join_drain_drill",
                 {{"iter", static_cast<double>(iter)},
                  {"load_requests", static_cast<double>(load_requests.load())},
                  {"load_failures", static_cast<double>(load_failures.load())},
                  {"joiner_owned_keys", static_cast<double>(joiner_owned)},
                  {"joiner_handoff_entries",
                   static_cast<double>(joiner_counters.handoff_entries)},
                  {"joiner_solved", static_cast<double>(joiner_counters.solved)},
                  {"total_solved", static_cast<double>(total_solved)},
                  {"redirected", static_cast<double>(fleet_counters.redirected)},
                  {"rerouted", static_cast<double>(fleet_counters.rerouted)},
                  {"final_epoch", static_cast<double>(client.epoch())}});

    client.close();
    for (auto& server : servers) server->stop();
  }
}

}  // namespace
}  // namespace lbs::service
