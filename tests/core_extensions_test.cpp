// Tests for the planning extensions: round-trip optimization and
// multi-installment scatter.

#include <gtest/gtest.h>

#include "core/installments.hpp"
#include "core/ordering.hpp"
#include "core/planner.hpp"
#include "core/roundtrip.hpp"
#include "gridsim/gridsim.hpp"
#include "model/testbed.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace lbs::core {
namespace {

model::Platform paper_platform() {
  auto grid = model::paper_testbed();
  return ordered_platform(grid, model::paper_root(grid),
                          OrderingPolicy::DescendingBandwidth);
}

TEST(RoundTrip, ZeroGatherRatioReducesToMakespan) {
  auto platform = paper_platform();
  auto plan = plan_scatter(platform, 50000);
  EXPECT_DOUBLE_EQ(roundtrip_makespan(platform, plan.distribution, 0.0),
                   plan.predicted_makespan);
}

TEST(RoundTrip, MatchesGatherSimulation) {
  // The analytic ERD gather schedule is exactly what the FIFO root port
  // produces in the simulator.
  auto platform = paper_platform();
  auto plan = plan_scatter(platform, 60000);
  for (double ratio : {0.25, 1.0, 2.0}) {
    gridsim::SimOptions options;
    options.gather_ratio = ratio;
    auto sim = gridsim::simulate_scatter(platform, plan.distribution, options);
    EXPECT_NEAR(roundtrip_makespan(platform, plan.distribution, ratio),
                sim.timeline.makespan(), 1e-6)
        << "ratio " << ratio;
  }
}

TEST(RoundTrip, GatherOnlyLengthensTheRound) {
  auto platform = paper_platform();
  auto plan = plan_scatter(platform, 40000);
  double no_gather = roundtrip_makespan(platform, plan.distribution, 0.0);
  double small = roundtrip_makespan(platform, plan.distribution, 0.5);
  double large = roundtrip_makespan(platform, plan.distribution, 2.0);
  EXPECT_GE(small, no_gather);
  EXPECT_GE(large, small);
}

TEST(RoundTrip, RejectsNegativeRatio) {
  auto platform = paper_platform();
  auto dist = uniform_distribution(100, platform.size());
  EXPECT_THROW(roundtrip_makespan(platform, dist, -1.0), lbs::Error);
}

TEST(RoundTrip, OptimizerNeverWorseThanSeed) {
  auto platform = paper_platform();
  for (double ratio : {0.5, 1.0, 3.0}) {
    RoundTripOptions options;
    options.gather_ratio = ratio;
    auto plan = optimize_roundtrip(platform, 100000, options);
    EXPECT_LE(plan.makespan, plan.seed_makespan + 1e-9) << "ratio " << ratio;
    EXPECT_EQ(plan.distribution.total(), 100000);
  }
}

TEST(RoundTrip, OptimizerImprovesGatherHeavyCase) {
  // With results twice the input volume, the scatter-optimal distribution
  // overloads the slow-link processors on the way back; the optimizer
  // must find something strictly better.
  auto platform = paper_platform();
  RoundTripOptions options;
  options.gather_ratio = 3.0;
  auto plan = optimize_roundtrip(platform, 200000, options);
  EXPECT_LT(plan.makespan, plan.seed_makespan * 0.995);
}

TEST(RoundTrip, SingleProcessorTrivial) {
  model::Platform platform;
  model::Processor root;
  root.label = "solo";
  root.comm = model::Cost::zero();
  root.comp = model::Cost::linear(1.0);
  platform.processors.push_back(root);
  auto plan = optimize_roundtrip(platform, 100, {});
  EXPECT_EQ(plan.distribution.counts, (std::vector<long long>{100}));
  EXPECT_DOUBLE_EQ(plan.makespan, 100.0);
}

TEST(Installments, OneInstallmentEqualsEquationTwo) {
  auto platform = paper_platform();
  auto plan = plan_scatter(platform, 80000);
  EXPECT_NEAR(installment_makespan(platform, plan.distribution, 1),
              plan.predicted_makespan, 1e-9);
}

TEST(Installments, LinearCostsImproveWithMoreInstallments) {
  // Linear costs pay no per-message penalty: splitting can only reduce
  // the idle-before-first-byte, so the makespan is non-increasing in k
  // for the uniform distribution (which has a tall stair).
  auto platform = paper_platform();
  auto uniform = uniform_distribution(160000, platform.size());
  double previous = installment_makespan(platform, uniform, 1);
  for (int k : {2, 4, 8}) {
    double current = installment_makespan(platform, uniform, k);
    EXPECT_LE(current, previous + 1e-9) << "k=" << k;
    previous = current;
  }
}

TEST(Installments, AffineCostsHaveFiniteOptimum) {
  // With a chunky per-message latency, k too large must hurt.
  model::Platform platform;
  for (int i = 0; i < 3; ++i) {
    model::Processor p;
    p.label = "P" + std::to_string(i + 1);
    p.comm = model::Cost::affine(0.5, 0.001);  // heavy latency
    p.comp = model::Cost::linear(0.01);
    platform.processors.push_back(p);
  }
  model::Processor root;
  root.label = "root";
  root.comm = model::Cost::zero();
  root.comp = model::Cost::linear(0.01);
  platform.processors.push_back(root);

  auto dist = uniform_distribution(4000, platform.size());
  auto sweep = sweep_installments(platform, dist, 32);
  double k1 = sweep.makespans.front().second;
  double k32 = sweep.makespans.back().second;
  EXPECT_GT(k32, sweep.best_makespan);  // too many installments hurt
  EXPECT_LT(sweep.best_makespan, k1 + 1e-9);
  EXPECT_GT(k32, k1);  // 32 latency payments swamp the stair savings
}

TEST(Installments, SweepIdentifiesBestK) {
  auto platform = paper_platform();
  auto uniform = uniform_distribution(100000, platform.size());
  auto sweep = sweep_installments(platform, uniform, 16);
  ASSERT_EQ(sweep.makespans.size(), 16u);
  for (const auto& [k, makespan] : sweep.makespans) {
    EXPECT_GE(makespan, sweep.best_makespan - 1e-12);
  }
  EXPECT_EQ(sweep.makespans[static_cast<std::size_t>(sweep.best_installments - 1)].second,
            sweep.best_makespan);
}

TEST(Installments, ChunkSizesCoverAllItems) {
  // Indirect check: k > n still works (empty chunks skipped) and equals
  // the full-send result for a single processor.
  model::Platform platform;
  model::Processor solo;
  solo.label = "solo";
  solo.comm = model::Cost::zero();
  solo.comp = model::Cost::linear(2.0);
  platform.processors.push_back(solo);
  Distribution dist{{5}};
  EXPECT_DOUBLE_EQ(installment_makespan(platform, dist, 10), 10.0);
}

TEST(Installments, InvalidArgumentsThrow) {
  auto platform = paper_platform();
  auto dist = uniform_distribution(100, platform.size());
  EXPECT_THROW(installment_makespan(platform, dist, 0), lbs::Error);
  EXPECT_THROW(sweep_installments(platform, dist, 0), lbs::Error);
  Distribution wrong{{1, 2}};
  EXPECT_THROW(installment_makespan(platform, wrong, 2), lbs::Error);
}

class RoundTripPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTripPropertyTest, AnalyticAlwaysMatchesSimulator) {
  support::Rng rng(GetParam());
  for (int trial = 0; trial < 4; ++trial) {
    model::Grid grid = model::random_grid(rng, static_cast<int>(rng.uniform_int(2, 4)),
                                          /*affine=*/false);
    model::Platform platform =
        make_platform(grid, model::ProcessorRef{grid.data_home(), 0});
    long long n = rng.uniform_int(100, 5000);
    auto plan = plan_scatter(platform, n);
    double ratio = rng.uniform(0.1, 2.0);
    gridsim::SimOptions options;
    options.gather_ratio = ratio;
    auto sim = gridsim::simulate_scatter(platform, plan.distribution, options);
    EXPECT_NEAR(roundtrip_makespan(platform, plan.distribution, ratio),
                sim.timeline.makespan(), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripPropertyTest,
                         ::testing::Values(71u, 72u, 73u));

}  // namespace
}  // namespace lbs::core
