#include "core/ordering.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/closed_form.hpp"
#include "core/dp.hpp"
#include "model/testbed.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace lbs::core {
namespace {

TEST(Ordering, DescendingBandwidthOnPaperTestbed) {
  // Table 1 betas: caseb 1.00e-5 < pellinore 1.12e-5 < sekhmet 1.70e-5
  // < seven 2.10e-5 < leda 3.53e-5 < merlin 8.15e-5.
  auto grid = model::paper_testbed();
  auto platform = ordered_platform(grid, model::paper_root(grid),
                                   OrderingPolicy::DescendingBandwidth);
  ASSERT_EQ(platform.size(), 16);
  std::vector<std::string> expected_machines{
      "caseb", "pellinore", "sekhmet", "seven", "seven",
      "leda",  "leda",      "leda",    "leda",  "leda",
      "leda",  "leda",      "leda",    "merlin", "merlin", "dinadan"};
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(grid.machine(platform[i].ref.machine).name,
              expected_machines[static_cast<std::size_t>(i)])
        << "position " << i;
  }
}

TEST(Ordering, AscendingBandwidthIsReversedAmongWorkers) {
  auto grid = model::paper_testbed();
  auto root = model::paper_root(grid);
  auto descending = order_processors(grid, root, OrderingPolicy::DescendingBandwidth);
  auto ascending = order_processors(grid, root, OrderingPolicy::AscendingBandwidth);
  ASSERT_EQ(descending.size(), ascending.size());
  // Machine-level mirror: position i in ascending has the machine of
  // position (last - i) in descending (CPU order within ties is stable).
  for (std::size_t i = 0; i < ascending.size(); ++i) {
    EXPECT_EQ(ascending[i].machine, descending[descending.size() - 1 - i].machine);
  }
}

TEST(Ordering, GridOrderKeepsDeclarationOrder) {
  auto grid = model::paper_testbed();
  auto order = order_processors(grid, model::paper_root(grid), OrderingPolicy::GridOrder);
  ASSERT_FALSE(order.empty());
  // First declared non-root processor is pellinore (dinadan excluded).
  EXPECT_EQ(grid.machine(order.front().machine).name, "pellinore");
  EXPECT_EQ(grid.machine(order.back().machine).name, "leda");
}

TEST(Ordering, RandomPolicyNeedsRngAndPermutes) {
  auto grid = model::paper_testbed();
  auto root = model::paper_root(grid);
  EXPECT_THROW(order_processors(grid, root, OrderingPolicy::Random), lbs::Error);
  support::Rng rng(3);
  auto shuffled = order_processors(grid, root, OrderingPolicy::Random, &rng);
  auto baseline = order_processors(grid, root, OrderingPolicy::GridOrder);
  ASSERT_EQ(shuffled.size(), baseline.size());
  // Same multiset of processors.
  auto key = [](const model::ProcessorRef& r) { return r.machine * 100 + r.cpu; };
  std::vector<int> a, b;
  for (const auto& r : shuffled) a.push_back(key(r));
  for (const auto& r : baseline) b.push_back(key(r));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(Ordering, RootNeverInWorkerOrder) {
  auto grid = model::paper_testbed();
  auto root = model::paper_root(grid);
  for (auto policy : {OrderingPolicy::DescendingBandwidth,
                      OrderingPolicy::AscendingBandwidth, OrderingPolicy::GridOrder}) {
    auto order = order_processors(grid, root, policy);
    EXPECT_EQ(order.size(), 15u);
    for (const auto& ref : order) EXPECT_FALSE(ref == root);
  }
}

TEST(Theorem3, DescendingBandwidthOptimalInLinearCase) {
  // Exhaustive validation of the ordering policy on random linear grids
  // small enough to enumerate: no permutation beats descending bandwidth
  // (evaluated on the rational closed form, the theorem's setting).
  support::Rng rng(99);
  for (int trial = 0; trial < 4; ++trial) {
    model::Grid grid = model::random_grid(rng, 3, /*affine=*/false);
    if (grid.total_cpus() > 7) continue;  // keep the factorial small
    model::ProcessorRef root{grid.data_home(), 0};
    long long n = 5000;

    auto evaluate = [&](const model::Platform& platform) {
      return solve_linear(platform, n).duration;
    };
    auto best = exhaustive_best_ordering(grid, root, evaluate);
    auto policy_platform =
        ordered_platform(grid, root, OrderingPolicy::DescendingBandwidth);
    double policy_cost = evaluate(policy_platform);
    EXPECT_LE(policy_cost, best.cost * (1.0 + 1e-12)) << "trial " << trial;
  }
}

TEST(Theorem3, DescendingBeatsAscendingOnPaperTestbed) {
  auto grid = model::paper_testbed();
  auto root = model::paper_root(grid);
  long long n = model::kPaperRayCount;
  auto descending = ordered_platform(grid, root, OrderingPolicy::DescendingBandwidth);
  auto ascending = ordered_platform(grid, root, OrderingPolicy::AscendingBandwidth);
  double t_desc = solve_linear(descending, n).duration;
  double t_asc = solve_linear(ascending, n).duration;
  EXPECT_LT(t_desc, t_asc);
}

TEST(Ordering, EqualBandwidthTiesKeepGridOrder) {
  // Stable sort: leda's eight CPUs (identical beta) must appear in CPU
  // order, so runs are reproducible.
  auto grid = model::paper_testbed();
  auto order = order_processors(grid, model::paper_root(grid),
                                OrderingPolicy::DescendingBandwidth);
  int previous_cpu = -1;
  for (const auto& ref : order) {
    if (grid.machine(ref.machine).name != "leda") continue;
    EXPECT_EQ(ref.cpu, previous_cpu + 1);
    previous_cpu = ref.cpu;
  }
  EXPECT_EQ(previous_cpu, 7);
}

TEST(Ordering, PermutingEqualBandwidthGroupDoesNotChangeOptimum) {
  // Processors with identical (alpha, beta) are interchangeable: any
  // permutation within the tie group gives the same rational duration.
  auto grid = model::paper_testbed();
  auto root = model::paper_root(grid);
  auto order = order_processors(grid, root, OrderingPolicy::DescendingBandwidth);
  long long n = 100000;
  double baseline =
      solve_linear(make_platform(grid, root, order), n).duration;

  // Reverse the leda block (positions of machine "leda").
  auto swapped = order;
  std::vector<std::size_t> leda_positions;
  for (std::size_t i = 0; i < swapped.size(); ++i) {
    if (grid.machine(swapped[i].machine).name == "leda") leda_positions.push_back(i);
  }
  ASSERT_EQ(leda_positions.size(), 8u);
  for (std::size_t i = 0; i < 4; ++i) {
    std::swap(swapped[leda_positions[i]], swapped[leda_positions[7 - i]]);
  }
  double permuted = solve_linear(make_platform(grid, root, swapped), n).duration;
  EXPECT_NEAR(permuted, baseline, baseline * 1e-12);
}

TEST(ExhaustiveSearch, CountsPermutations) {
  model::Grid grid;
  for (int m = 0; m < 4; ++m) {
    model::Machine machine;
    machine.name = "m" + std::to_string(m);
    machine.comp = model::Cost::linear(1.0 + m);
    grid.add_machine(machine);
  }
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) grid.set_link(a, b, model::Cost::linear(0.1));
  }
  grid.set_data_home(0);
  auto result = exhaustive_best_ordering(
      grid, model::ProcessorRef{0, 0},
      [&](const model::Platform& platform) { return solve_linear(platform, 100).duration; });
  EXPECT_EQ(result.permutations_tried, 6);  // 3! orderings of the workers
  EXPECT_EQ(result.order.size(), 3u);
}

TEST(ExhaustiveSearch, RefusesLargePlatforms) {
  auto grid = model::paper_testbed();  // 15 workers
  EXPECT_THROW(exhaustive_best_ordering(grid, model::paper_root(grid),
                                        [](const model::Platform&) { return 0.0; }),
               lbs::Error);
}

}  // namespace
}  // namespace lbs::core
