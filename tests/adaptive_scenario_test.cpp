// Drift-scenario suite gating the adaptive runtime.
//
// Each scenario drives core::AdaptivePlanner round by round against a
// *truth* platform the planner cannot see: every round plans on the
// believed model, executes on the truth via gridsim::simulate_scatter
// (exact Eq. 1, deterministic), feeds the resulting Timeline back as
// observations, and advances a virtual clock by the round's makespan. The
// gates compare against a perfect-knowledge oracle (plan_scatter on the
// truth itself):
//
//   degrading node   — one worker's compute slows linearly then plateaus;
//                      must converge within a bounded number of rounds and
//                      land within 10% of the oracle post-convergence.
//   diurnal load     — sinusoidal background load; adaptation must beat
//                      the static plan on cumulative makespan.
//   mis-calibration  — the initial α/β are simply wrong; first replan must
//                      come as soon as the fits are ready and the steady
//                      state must be near-oracle.
//   no-drift control — accurate model, stable truth: zero refits, zero
//                      replans, version 0 forever.
//   differential     — adaptation disabled is bit-identical to the plain
//                      planner, round after round, drift notwithstanding.
//   noisy robustness — the mis-calibration scenario under multiplicative
//                      compute noise, swept over seeds (LBS_ADAPTIVE_ITERS
//                      scales the sweep; nightly runs it at 10).
//
// When LBS_ADAPTIVE_STATS names a file, each scenario appends one JSON
// line of convergence statistics — the nightly job uploads that file as a
// build artifact.

#include "core/adaptive.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "core/distribution.hpp"
#include "gridsim/gridsim.hpp"
#include "model/platform.hpp"

namespace lbs::core {
namespace {

constexpr long long kItems = 200000;
constexpr double kPi = 3.14159265358979323846;

int scenario_iters() {
  const char* env = std::getenv("LBS_ADAPTIVE_ITERS");
  if (env == nullptr) return 2;
  int iters = std::atoi(env);
  return iters > 0 ? iters : 2;
}

// One JSONL line of convergence stats per scenario, for the nightly
// artifact. No-op unless LBS_ADAPTIVE_STATS names a file.
void export_stats(const std::string& scenario,
                  const std::vector<std::pair<std::string, double>>& fields) {
  const char* path = std::getenv("LBS_ADAPTIVE_STATS");
  if (path == nullptr || *path == '\0') return;
  std::ostringstream line;
  line << "{\"scenario\":\"" << scenario << "\"";
  for (const auto& [key, value] : fields) {
    line << ",\"" << key << "\":" << value;
  }
  line << "}\n";
  std::ofstream out(path, std::ios::app);
  out << line.str();
}

// Heterogeneous linear platform, root last. comp_slopes are per-worker;
// the root computes at `root_slope`.
model::Platform linear_platform(const std::vector<double>& comp_slopes,
                                double comm_slope = 2e-6,
                                double root_slope = 4e-6) {
  model::Platform platform;
  for (std::size_t i = 0; i < comp_slopes.size(); ++i) {
    model::Processor p;
    p.label = "w" + std::to_string(i);
    p.comm = model::Cost::linear(comm_slope);
    p.comp = model::Cost::linear(comp_slopes[i]);
    platform.processors.push_back(p);
  }
  model::Processor root;
  root.label = "root";
  root.comm = model::Cost::zero();
  root.comp = model::Cost::linear(root_slope);
  platform.processors.push_back(root);
  return platform;
}

// Truth at round r: `base` with worker `position`'s compute scaled by
// factor(r).
model::Platform with_comp_factor(const model::Platform& base, int position,
                                 double factor) {
  model::Platform truth = base;
  auto& processor = truth.processors[static_cast<std::size_t>(position)];
  processor.comp = model::Cost::scaled(processor.comp, factor);
  return truth;
}

std::vector<RankObservation> from_timeline(const gridsim::Timeline& timeline) {
  std::vector<RankObservation> observations;
  for (std::size_t i = 0; i < timeline.traces.size(); ++i) {
    const auto& trace = timeline.traces[i];
    RankObservation obs;
    obs.rank = static_cast<int>(i);
    obs.items = trace.items;
    obs.comm_seconds = trace.comm_time();
    obs.comp_seconds = trace.compute_end - trace.recv_end;
    observations.push_back(obs);
  }
  return observations;
}

struct RoundRecord {
  double achieved = 0.0;  // simulated makespan on the truth
  double oracle = 0.0;    // perfect-knowledge plan's makespan on the truth
  AdaptiveOutcome outcome;
};

struct ScenarioRun {
  std::vector<RoundRecord> rounds;
  int first_replan = -1;
  int last_replan = -1;

  [[nodiscard]] double ratio(int round) const {
    return rounds[static_cast<std::size_t>(round)].achieved /
           rounds[static_cast<std::size_t>(round)].oracle;
  }
  // Mean achieved/oracle over the final `tail` rounds.
  [[nodiscard]] double tail_ratio(int tail) const {
    double sum = 0.0;
    int n = static_cast<int>(rounds.size());
    for (int r = n - tail; r < n; ++r) sum += ratio(r);
    return sum / tail;
  }
  [[nodiscard]] double total_achieved() const {
    double sum = 0.0;
    for (const auto& r : rounds) sum += r.achieved;
    return sum;
  }
  [[nodiscard]] std::uint64_t replans() const {
    std::uint64_t n = 0;
    for (const auto& r : rounds) n += r.outcome.replanned ? 1 : 0;
    return n;
  }
};

// Drives `planner` for `rounds` rounds against truth_at(r), feeding the
// simulated Timeline back after each round.
ScenarioRun run_scenario(AdaptivePlanner& planner,
                         const std::function<model::Platform(int)>& truth_at,
                         int rounds, const gridsim::SimOptions& sim = {}) {
  ScenarioRun run;
  double now = 0.0;
  for (int r = 0; r < rounds; ++r) {
    auto truth = truth_at(r);
    auto plan = planner.plan(kItems);
    auto result = gridsim::simulate_scatter(truth, plan.distribution, sim);
    now += result.timeline.makespan();

    RoundRecord record;
    record.achieved = result.timeline.makespan();
    record.oracle =
        makespan(truth, plan_scatter(truth, kItems).distribution);
    record.outcome =
        planner.observe_round(plan, from_timeline(result.timeline), now);
    if (record.outcome.replanned) {
      if (run.first_replan < 0) run.first_replan = r;
      run.last_replan = r;
    }
    run.rounds.push_back(record);
  }
  return run;
}

// --- Scenario 1: slowly degrading node -------------------------------

// Worker 0 picks up a competing job: its compute slows linearly over the
// first 12 rounds (final slowdown 2.8x), then plateaus. The planner must
// track the drift while it lasts, stop replanning once the truth settles,
// and end within 10% of the perfect-knowledge oracle.
TEST(AdaptiveScenario, DegradingNodeConvergesNearOracle) {
  auto base = linear_platform({1e-5, 1e-5, 2e-5, 2e-5});
  auto truth_at = [&base](int r) {
    double factor = 1.0 + 0.15 * std::min(r, 12);
    return with_comp_factor(base, 0, factor);
  };

  AdaptiveOptions options;
  options.forgetting = 0.7;
  AdaptivePlanner planner(base, options);

  const int rounds = 30;
  auto run = run_scenario(planner, truth_at, rounds);

  EXPECT_GE(run.replans(), 1u);
  // Converged: no replans once the plateau has been absorbed.
  EXPECT_LE(run.last_replan, 20);
  EXPECT_GE(run.first_replan, 0);
  // Post-convergence quality: within 10% of the oracle.
  EXPECT_LE(run.tail_ratio(5), 1.10);
  // Adaptation beat freezing the round-0 plan for the whole run.
  auto frozen = plan_scatter(base, kItems).distribution;
  double static_total = 0.0;
  for (int r = 0; r < rounds; ++r) {
    static_total += makespan(truth_at(r), frozen);
  }
  EXPECT_LT(run.total_achieved(), static_total);

  export_stats("degrading_node",
               {{"rounds", rounds},
                {"replans", static_cast<double>(run.replans())},
                {"first_replan", run.first_replan},
                {"last_replan", run.last_replan},
                {"tail_ratio", run.tail_ratio(5)},
                {"static_total", static_total},
                {"adaptive_total", run.total_achieved()}});
}

// --- Scenario 2: diurnal (sinusoidal) load ---------------------------

// Worker 1's compute oscillates with a 24-round period (amplitude 0.5) —
// background load rising and falling through a day. The model can only
// chase the sinusoid, so the gate is aggregate: adaptation must beat the
// static plan over two full periods, without degenerating into a replan
// every round.
TEST(AdaptiveScenario, DiurnalLoadBeatsStaticPlan) {
  auto base = linear_platform({1e-5, 1e-5, 2e-5, 2e-5});
  auto truth_at = [&base](int r) {
    double factor = 1.0 + 0.5 * std::sin(2.0 * kPi * r / 24.0);
    return with_comp_factor(base, 1, std::max(factor, 0.05));
  };

  AdaptiveOptions options;
  options.forgetting = 0.5;  // short memory: chase the oscillation
  AdaptivePlanner planner(base, options);

  const int rounds = 48;
  auto run = run_scenario(planner, truth_at, rounds);

  auto frozen = plan_scatter(base, kItems).distribution;
  double static_total = 0.0;
  for (int r = 0; r < rounds; ++r) {
    static_total += makespan(truth_at(r), frozen);
  }
  EXPECT_LT(run.total_achieved(), static_total);
  EXPECT_GE(run.replans(), 4u);
  // The tracking lag is bounded: on average within 20% of the oracle.
  double mean_ratio = 0.0;
  for (int r = 0; r < rounds; ++r) mean_ratio += run.ratio(r);
  mean_ratio /= rounds;
  EXPECT_LE(mean_ratio, 1.20);

  export_stats("diurnal",
               {{"rounds", rounds},
                {"replans", static_cast<double>(run.replans())},
                {"mean_ratio", mean_ratio},
                {"static_total", static_total},
                {"adaptive_total", run.total_achieved()}});
}

// --- Scenario 3: mis-calibrated initial model ------------------------

// The offline calibration got the workers backwards: the believed platform
// says w0/w1 are the slow pair when in truth w2/w3 are. The truth never
// changes — one correction suffices — so the gates are sharp: the first
// replan lands as soon as the fits are ready (min_samples rounds), the
// planner goes quiet shortly after, and the steady state is near-exact
// (linear costs: the proportional refit recovers the true slope).
TEST(AdaptiveScenario, MisCalibrationConvergesFast) {
  auto believed = linear_platform({1e-5, 1e-5, 2e-5, 2e-5});
  auto truth = linear_platform({2e-5, 2e-5, 1e-5, 1e-5});
  auto truth_at = [&truth](int) { return truth; };

  AdaptiveOptions options;
  options.min_samples = 3;
  AdaptivePlanner planner(believed, options);

  const int rounds = 15;
  auto run = run_scenario(planner, truth_at, rounds);

  // Rounds 0..1 accumulate samples; round 2 (= min_samples - 1) is the
  // earliest possible correction and drift is blatant, so it must happen.
  EXPECT_EQ(run.first_replan, options.min_samples - 1);
  EXPECT_LE(run.last_replan, 6);
  EXPECT_LE(run.tail_ratio(5), 1.02);
  EXPECT_EQ(planner.stats().replans, run.replans());

  export_stats("mis_calibration",
               {{"rounds", rounds},
                {"replans", static_cast<double>(run.replans())},
                {"first_replan", run.first_replan},
                {"last_replan", run.last_replan},
                {"tail_ratio", run.tail_ratio(5)}});
}

// --- Scenario 4: no-drift control ------------------------------------

// Accurate model, stable truth: the adaptive machinery must do nothing.
// Zero refits, zero replans, version 0 — adaptation is free when the
// calibration is right.
TEST(AdaptiveScenario, NoDriftControlNeverReplans) {
  auto base = linear_platform({1e-5, 1e-5, 2e-5, 2e-5});
  auto truth_at = [&base](int) { return base; };

  AdaptiveOptions options;
  options.min_samples = 1;  // fits ready immediately — still no trigger
  AdaptivePlanner planner(base, options);

  auto run = run_scenario(planner, truth_at, 20);

  EXPECT_EQ(run.replans(), 0u);
  EXPECT_EQ(run.first_replan, -1);
  EXPECT_EQ(planner.platform_version(), 0u);
  EXPECT_EQ(planner.stats().refits, 0u);
  EXPECT_EQ(planner.stats().drift_detected, 0u);
  for (const auto& record : run.rounds) {
    EXPECT_LT(record.outcome.drift, 1e-9);
  }

  export_stats("no_drift_control",
               {{"rounds", 20},
                {"replans", 0},
                {"max_drift", run.rounds.back().outcome.drift}});
}

// --- Scenario 5: differential (adaptation disabled) ------------------

// With enabled=false the planner is transparent: every round's plan is
// bit-identical to plain plan_scatter on the construction platform, even
// while heavy drift streams through observe_round.
TEST(AdaptiveScenario, DisabledIsBitIdenticalUnderDrift) {
  auto base = linear_platform({1e-5, 1e-5, 2e-5, 2e-5});
  auto truth_at = [&base](int r) {
    return with_comp_factor(base, 0, 1.0 + 0.3 * r);
  };

  AdaptiveOptions options;
  options.enabled = false;
  options.min_samples = 1;
  AdaptivePlanner planner(base, options);

  auto reference = plan_scatter(base, kItems);
  double now = 0.0;
  for (int r = 0; r < 10; ++r) {
    auto plan = planner.plan(kItems);
    ASSERT_EQ(plan.distribution.counts, reference.distribution.counts);
    ASSERT_EQ(plan.displacements, reference.displacements);
    ASSERT_EQ(plan.algorithm_used, reference.algorithm_used);
    ASSERT_DOUBLE_EQ(plan.predicted_makespan, reference.predicted_makespan);
    auto result = gridsim::simulate_scatter(truth_at(r), plan.distribution);
    now += result.timeline.makespan();
    auto outcome =
        planner.observe_round(plan, from_timeline(result.timeline), now);
    ASSERT_FALSE(outcome.drift_detected);
    ASSERT_FALSE(outcome.replanned);
  }
  EXPECT_EQ(planner.platform_version(), 0u);
}

// --- Scenario 6: noisy robustness sweep ------------------------------

// The mis-calibration scenario under 5% multiplicative compute noise,
// swept over noise seeds. Noise sits below the drift threshold, so the
// planner must still converge (no replan storm from noise alone) and land
// within 20% of the noise-free oracle. LBS_ADAPTIVE_ITERS widens the
// sweep (nightly: 10 seeds).
TEST(AdaptiveScenario, NoisySweepStaysRobust) {
  auto believed = linear_platform({1e-5, 1e-5, 2e-5, 2e-5});
  auto truth = linear_platform({2e-5, 2e-5, 1e-5, 1e-5});
  auto truth_at = [&truth](int) { return truth; };

  const int iters = scenario_iters();
  const int rounds = 25;
  for (int seed = 1; seed <= iters; ++seed) {
    AdaptiveOptions options;
    options.forgetting = 0.8;  // average the noise out
    AdaptivePlanner planner(believed, options);

    gridsim::SimOptions sim;
    sim.compute_noise = 0.05;
    sim.noise_seed = static_cast<std::uint64_t>(seed);
    auto run = run_scenario(planner, truth_at, rounds, sim);

    EXPECT_GE(run.replans(), 1u) << "seed " << seed;
    EXPECT_LE(run.replans(), static_cast<std::uint64_t>(rounds / 2))
        << "noise alone caused a replan storm, seed " << seed;
    EXPECT_LE(run.tail_ratio(5), 1.20) << "seed " << seed;

    export_stats("noisy_sweep_seed_" + std::to_string(seed),
                 {{"rounds", rounds},
                  {"replans", static_cast<double>(run.replans())},
                  {"last_replan", run.last_replan},
                  {"tail_ratio", run.tail_ratio(5)}});
  }
}

}  // namespace
}  // namespace lbs::core
