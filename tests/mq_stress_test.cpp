// Randomized stress tests for the mq runtime: long mixed sequences of
// collectives and point-to-point traffic across many ranks, where any
// matching bug, tag leak, or ordering race shows up as corrupted payloads
// or a deadlock (caught by the suite's timeout).

#include <gtest/gtest.h>

#include <numeric>

#include "mq/runtime.hpp"
#include "mq/subcomm.hpp"
#include "support/rng.hpp"

namespace lbs::mq {
namespace {

RuntimeOptions plain(int ranks) {
  RuntimeOptions options;
  options.ranks = ranks;
  return options;
}

TEST(Stress, MixedCollectiveSequenceStaysConsistent) {
  constexpr int kRanks = 12;
  constexpr int kIterations = 40;
  Runtime::run(plain(kRanks), [](Comm& comm) {
    // Every rank derives the same operation schedule from the iteration
    // number, so the collectives line up; payloads encode (iteration,
    // rank) so crosstalk is detectable.
    for (int it = 0; it < kIterations; ++it) {
      int op = it % 4;
      int root = it % comm.size();
      switch (op) {
        case 0: {
          std::vector<int> data;
          if (comm.rank() == root) data = {it, root};
          comm.bcast(root, data);
          ASSERT_EQ(data, (std::vector<int>{it, root})) << "it " << it;
          break;
        }
        case 1: {
          std::vector<long long> mine{static_cast<long long>(comm.rank()) + it};
          auto sum = comm.reduce<long long>(
              root, mine, [](const long long& a, const long long& b) { return a + b; });
          if (comm.rank() == root) {
            long long expected =
                static_cast<long long>(comm.size()) * it +
                static_cast<long long>(comm.size()) * (comm.size() - 1) / 2;
            ASSERT_EQ(sum[0], expected) << "it " << it;
          }
          break;
        }
        case 2: {
          std::vector<int> mine(static_cast<std::size_t>(comm.rank() % 3 + 1),
                                it * 100 + comm.rank());
          auto all = comm.gatherv<int>(root, mine);
          if (comm.rank() == root) {
            std::size_t expected_size = 0;
            for (int r = 0; r < comm.size(); ++r) {
              expected_size += static_cast<std::size_t>(r % 3 + 1);
            }
            ASSERT_EQ(all.size(), expected_size);
          }
          break;
        }
        default:
          comm.barrier();
      }
    }
  });
}

TEST(Stress, PointToPointStormWithRandomTags) {
  // Every rank sends a burst to every other rank with per-pair tags, then
  // receives everything addressed to it; non-overtaking per (source, tag)
  // keeps sequence numbers ordered.
  constexpr int kRanks = 8;
  constexpr int kPerPair = 25;
  Runtime::run(plain(kRanks), [](Comm& comm) {
    for (int dest = 0; dest < comm.size(); ++dest) {
      if (dest == comm.rank()) continue;
      for (int seq = 0; seq < kPerPair; ++seq) {
        comm.send_value<int>(dest, comm.rank() * 100 + dest, seq);
      }
    }
    for (int source = 0; source < comm.size(); ++source) {
      if (source == comm.rank()) continue;
      for (int seq = 0; seq < kPerPair; ++seq) {
        int value = comm.recv_value<int>(source, source * 100 + comm.rank());
        ASSERT_EQ(value, seq) << "from " << source;
      }
    }
  });
}

TEST(Stress, OutstandingIrecvsAcrossCollectives) {
  // Nonblocking receives posted before a barrier+bcast storm must still
  // complete with the right payloads afterwards.
  constexpr int kRanks = 6;
  Runtime::run(plain(kRanks), [](Comm& comm) {
    int peer = (comm.rank() + 1) % comm.size();
    int source = (comm.rank() + comm.size() - 1) % comm.size();
    auto pending = comm.irecv(source, 42);

    for (int it = 0; it < 10; ++it) {
      comm.barrier();
      std::vector<int> data;
      if (comm.rank() == 0) data = {it};
      comm.bcast(0, data);
    }

    comm.send_value<int>(peer, 42, comm.rank() * 11);
    pending.wait();
    auto payload = Comm::decode<int>(pending.take_payload());
    ASSERT_EQ(payload.size(), 1u);
    EXPECT_EQ(payload[0], source * 11);
  });
}

TEST(Stress, RepeatedSplitsWithRotatingColors) {
  constexpr int kRanks = 9;
  Runtime::run(plain(kRanks), [](Comm& comm) {
    for (int round = 1; round <= 4; ++round) {
      int groups = round;  // 1..4 groups
      auto sub = split(comm, comm.rank() % groups);
      std::vector<long long> one{1};
      auto count = sub.reduce<long long>(
          0, one, [](const long long& a, const long long& b) { return a + b; });
      if (sub.rank() == 0) {
        // Group sizes differ by at most 1.
        long long expected_min = comm.size() / groups;
        ASSERT_GE(count[0], expected_min) << "round " << round;
        ASSERT_LE(count[0], expected_min + 1) << "round " << round;
      }
      sub.barrier();
    }
  });
}

TEST(Stress, ManyRanksBarrierStorm) {
  constexpr int kRanks = 32;
  Runtime::run(plain(kRanks), [](Comm& comm) {
    for (int i = 0; i < 50; ++i) comm.barrier();
  });
  SUCCEED();
}

}  // namespace
}  // namespace lbs::mq
