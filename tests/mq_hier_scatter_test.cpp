#include "mq/hier_scatter.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "mq/runtime.hpp"
#include "support/error.hpp"

namespace lbs::mq {
namespace {

RuntimeOptions plain(int ranks) {
  RuntimeOptions options;
  options.ranks = ranks;
  return options;
}

// Reference: what flat scatterv would deliver to `rank`.
std::vector<int> expected_block(const std::vector<long long>& counts, int rank,
                                const std::vector<int>& data) {
  long long offset = 0;
  for (int r = 0; r < rank; ++r) offset += counts[static_cast<std::size_t>(r)];
  auto begin = data.begin() + static_cast<std::ptrdiff_t>(offset);
  return {begin, begin + static_cast<std::ptrdiff_t>(counts[static_cast<std::size_t>(rank)])};
}

void run_case(int ranks, int root, const std::vector<long long>& counts,
              const std::vector<int>& sites) {
  long long total = std::accumulate(counts.begin(), counts.end(), 0LL);
  std::vector<int> data(static_cast<std::size_t>(total));
  std::iota(data.begin(), data.end(), 1000);

  Runtime::run(plain(ranks), [&](Comm& comm) {
    std::span<const int> send;
    if (comm.rank() == root) send = data;
    auto mine = hierarchical_scatterv<int>(comm, root, send, counts, sites);
    EXPECT_EQ(mine, expected_block(counts, comm.rank(), data))
        << "rank " << comm.rank();
  });
}

TEST(HierScatter, MatchesFlatScattervTwoSites) {
  run_case(6, 0, {3, 1, 4, 1, 5, 9}, {0, 0, 0, 1, 1, 1});
}

TEST(HierScatter, InterleavedSites) {
  run_case(6, 0, {2, 7, 1, 8, 2, 8}, {0, 1, 0, 1, 0, 1});
}

TEST(HierScatter, RootNotRankZero) {
  run_case(5, 3, {1, 2, 3, 4, 5}, {0, 0, 1, 1, 1});
}

TEST(HierScatter, RootNotLowestOfItsSite) {
  // Root 2's site also contains rank 0; the root must coordinate anyway.
  run_case(4, 2, {4, 3, 2, 1}, {0, 1, 0, 1});
}

TEST(HierScatter, ZeroCountsAllowed) {
  run_case(5, 0, {0, 5, 0, 7, 0}, {0, 0, 1, 1, 1});
}

TEST(HierScatter, SingleSiteDegeneratesToFlat) {
  run_case(4, 1, {2, 2, 2, 2}, {0, 0, 0, 0});
}

TEST(HierScatter, EverySiteSingleton) {
  run_case(4, 0, {1, 2, 3, 4}, {0, 1, 2, 3});
}

TEST(HierScatter, WanMessagesCountPerSiteNotPerRank) {
  // With pacing, the flat scatterv pays WAN occupancy once per remote
  // rank; the hierarchical one pays it once per remote *site* plus cheap
  // LAN traffic, so under a slow WAN it finishes sooner.
  constexpr int kRanks = 8;
  std::vector<int> sites{0, 0, 0, 0, 1, 1, 1, 1};
  std::vector<long long> counts(kRanks, 64);
  std::vector<int> data(64 * kRanks, 7);

  auto measure = [&](bool hierarchical) {
    RuntimeOptions options = plain(kRanks);
    options.time_scale = 1.0;
    options.link_cost = [&](int from, int to, std::size_t bytes) {
      bool wan = sites[static_cast<std::size_t>(from)] !=
                 sites[static_cast<std::size_t>(to)];
      return static_cast<double>(bytes) * (wan ? 4e-5 : 1e-6);
    };
    double completion = 0.0;
    std::mutex mutex;
    Runtime::run(options, [&](Comm& comm) {
      std::span<const int> send;
      if (comm.rank() == 0) send = data;
      std::vector<int> mine;
      if (hierarchical) {
        mine = hierarchical_scatterv<int>(comm, 0, send, counts, sites);
      } else {
        mine = comm.scatterv<int>(0, send, counts);
      }
      EXPECT_EQ(mine.size(), 64u);
      std::lock_guard lock(mutex);
      completion = std::max(completion, comm.wtime());
    });
    return completion;
  };

  double flat = measure(false);
  double hierarchical = measure(true);
  // Under bytes-only pacing both variants move the same WAN byte volume
  // (4 blocks vs 1 aggregate of 4 blocks), so their times are comparable;
  // the hierarchical win is the single WAN *handshake*, which per-message
  // latency modeling shows (see bench_bcast_trees). Assert the honest
  // property here: same results (checked above) at comparable cost.
  EXPECT_LT(hierarchical, flat * 1.5);
  EXPECT_GT(hierarchical, flat * 0.5);
}

}  // namespace
}  // namespace lbs::mq
