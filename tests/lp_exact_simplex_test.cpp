#include "lp/exact_simplex.hpp"

#include <gtest/gtest.h>

#include "core/heuristic.hpp"
#include "model/testbed.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace lbs::lp {
namespace {

using support::BigRational;
using support::Rational;

TEST(ExactSimplex, SolvesTextbookProblemExactly) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18: optimum (2, 6), -36.
  ExactProblem problem;
  problem.minimize({Rational(-3), Rational(-5)});
  problem.add({Rational(1), Rational(0)}, Relation::LessEq, Rational(4));
  problem.add({Rational(0), Rational(2)}, Relation::LessEq, Rational(12));
  problem.add({Rational(3), Rational(2)}, Relation::LessEq, Rational(18));
  auto solution = solve_exact(problem);
  ASSERT_TRUE(solution.optimal());
  EXPECT_EQ(solution.x[0], BigRational(2));
  EXPECT_EQ(solution.x[1], BigRational(6));
  EXPECT_EQ(solution.objective, BigRational(-36));
}

TEST(ExactSimplex, FractionalOptimumIsExact) {
  // min -x - y s.t. 2x + y <= 3, x + 2y <= 3: optimum (1, 1); with
  // rhs (1, 1): optimum (1/3, 1/3), objective -2/3 — exactly.
  ExactProblem problem;
  problem.minimize({Rational(-1), Rational(-1)});
  problem.add({Rational(2), Rational(1)}, Relation::LessEq, Rational(1));
  problem.add({Rational(1), Rational(2)}, Relation::LessEq, Rational(1));
  auto solution = solve_exact(problem);
  ASSERT_TRUE(solution.optimal());
  EXPECT_EQ(solution.x[0], BigRational(support::BigInt(1), support::BigInt(3)));
  EXPECT_EQ(solution.x[1], BigRational(support::BigInt(1), support::BigInt(3)));
  EXPECT_EQ(solution.objective, BigRational(support::BigInt(-2), support::BigInt(3)));
}

TEST(ExactSimplex, InfeasibleDetectedExactly) {
  ExactProblem problem;
  problem.minimize({Rational(1)});
  problem.add({Rational(1)}, Relation::LessEq, Rational(1));
  problem.add({Rational(1)}, Relation::GreaterEq, Rational(2));
  EXPECT_EQ(solve_exact(problem).status, SolveStatus::Infeasible);
}

TEST(ExactSimplex, UnboundedDetected) {
  ExactProblem problem;
  problem.minimize({Rational(-1), Rational(0)});
  problem.add({Rational(0), Rational(1)}, Relation::LessEq, Rational(1));
  EXPECT_EQ(solve_exact(problem).status, SolveStatus::Unbounded);
}

TEST(ExactSimplex, EqualityAndNegativeRhs) {
  // min x s.t. -x <= -3 and x + y = 5.
  ExactProblem problem;
  problem.minimize({Rational(1), Rational(0)});
  problem.add({Rational(-1), Rational(0)}, Relation::LessEq, Rational(-3));
  problem.add({Rational(1), Rational(1)}, Relation::Equal, Rational(5));
  auto solution = solve_exact(problem);
  ASSERT_TRUE(solution.optimal());
  EXPECT_EQ(solution.x[0], BigRational(3));
  EXPECT_EQ(solution.x[1], BigRational(2));
}

TEST(ExactSimplex, AgreesWithDoubleSimplexOnRandomLps) {
  support::Rng rng(777);
  for (int trial = 0; trial < 15; ++trial) {
    int num_vars = static_cast<int>(rng.uniform_int(2, 4));
    int num_rows = static_cast<int>(rng.uniform_int(1, 4));

    Problem dbl;
    ExactProblem exact;
    std::vector<double> objective;
    std::vector<Rational> objective_exact;
    for (int j = 0; j < num_vars; ++j) {
      auto c = static_cast<double>(rng.uniform_int(-5, 5));
      objective.push_back(c);
      objective_exact.push_back(Rational(static_cast<long long>(c)));
    }
    dbl.minimize(objective);
    exact.minimize(objective_exact);

    for (int r = 0; r < num_rows + num_vars; ++r) {
      std::vector<double> coeffs;
      std::vector<Rational> coeffs_exact;
      for (int j = 0; j < num_vars; ++j) {
        long long c = r < num_rows ? rng.uniform_int(0, 4)
                                   : (j == r - num_rows ? 1 : 0);  // box rows
        coeffs.push_back(static_cast<double>(c));
        coeffs_exact.push_back(Rational(c));
      }
      long long rhs = rng.uniform_int(1, 9);
      dbl.add(coeffs, Relation::LessEq, static_cast<double>(rhs));
      exact.add(coeffs_exact, Relation::LessEq, Rational(rhs));
    }

    auto exact_solution = solve_exact(exact);
    auto dbl_solution = solve(dbl);
    ASSERT_EQ(exact_solution.optimal(), dbl_solution.optimal());
    if (exact_solution.optimal()) {
      EXPECT_NEAR(exact_solution.objective.to_double(), dbl_solution.objective, 1e-7)
          << "trial " << trial;
    }
  }
}

TEST(ExactSimplex, DegenerateCyclesTerminateViaBland) {
  // The classic Beale cycling example (cycles under Dantzig's rule).
  ExactProblem problem;
  problem.minimize({Rational(-3, 4), Rational(150), Rational(-1, 50), Rational(6)});
  problem.add({Rational(1, 4), Rational(-60), Rational(-1, 25), Rational(9)},
              Relation::LessEq, Rational(0));
  problem.add({Rational(1, 2), Rational(-90), Rational(-1, 50), Rational(3)},
              Relation::LessEq, Rational(0));
  problem.add({Rational(0), Rational(0), Rational(1), Rational(0)},
              Relation::LessEq, Rational(1));
  auto solution = solve_exact(problem);
  ASSERT_TRUE(solution.optimal());
  EXPECT_EQ(solution.objective, BigRational(support::BigInt(-1), support::BigInt(20)));
}

TEST(RationalApproximate, ConvergentsAreBest) {
  // pi ~ 355/113 is the classic best approximation under 1000.
  auto pi = Rational::approximate(3.14159265358979, 1000);
  EXPECT_EQ(pi, Rational(355, 113));
  // Exact small rationals come back exactly.
  EXPECT_EQ(Rational::approximate(0.5, 10), Rational(1, 2));
  EXPECT_EQ(Rational::approximate(-0.25, 100), Rational(-1, 4));
  EXPECT_EQ(Rational::approximate(7.0, 1), Rational(7));
}

TEST(RationalApproximate, RespectsDenominatorBound) {
  support::Rng rng(31337);
  for (int i = 0; i < 200; ++i) {
    double value = rng.uniform(-100.0, 100.0);
    long long max_den = rng.uniform_int(1, 100000);
    auto approx = Rational::approximate(value, max_den);
    EXPECT_LE(approx.den(), static_cast<Rational::Int>(max_den));
    // Quality: within 1/max_den of the value.
    EXPECT_NEAR(approx.to_double(), value, 1.0 / static_cast<double>(max_den));
  }
}

TEST(ExactHeuristic, MatchesDoubleHeuristicOnTestbed) {
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  for (long long n : {1000LL, 50000LL}) {
    auto exact = core::lp_heuristic_exact(platform, n);
    auto dbl = core::lp_heuristic(platform, n);
    EXPECT_EQ(exact.distribution.total(), n);
    EXPECT_NEAR(exact.rational_makespan.to_double(), dbl.rational_makespan,
                dbl.rational_makespan * 1e-4);
    // Realized makespans agree to rounding noise.
    EXPECT_NEAR(exact.makespan, dbl.makespan, dbl.makespan * 1e-4);
  }
}

TEST(ExactHeuristic, ExactRoundingInvariantsHold) {
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  long long n = 12345;
  auto result = core::lp_heuristic_exact(platform, n);
  ASSERT_EQ(result.rational_shares.size(), static_cast<std::size_t>(platform.size()));
  BigRational sum;
  for (std::size_t i = 0; i < result.rational_shares.size(); ++i) {
    sum += result.rational_shares[i];
    BigRational deviation =
        (BigRational(result.distribution.counts[i]) - result.rational_shares[i]).abs();
    EXPECT_LT(deviation, BigRational(1)) << "share " << i;
  }
  EXPECT_EQ(sum, BigRational(n));
}

}  // namespace
}  // namespace lbs::lp
