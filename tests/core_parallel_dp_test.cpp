// The planner performance layer: column-parallel DP, cost tables,
// divide-and-conquer reconstruction, and the plan cache. The contract
// under test everywhere: every engine variant produces *exactly* the
// serial reference distribution — scheduling and memory strategy must be
// unobservable.

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "core/dp.hpp"
#include "core/plan_cache.hpp"
#include "core/planner.hpp"
#include "core/recovery.hpp"
#include "model/cost_table.hpp"
#include "model/testbed.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace lbs::core {
namespace {

// Random increasing tabulated cost: cumulative positive increments.
model::Cost random_increasing_tabulated(support::Rng& rng, long long max_items) {
  std::vector<std::pair<long long, double>> samples;
  double y = 0.0;
  long long x = 0;
  int points = static_cast<int>(rng.uniform_int(2, 6));
  for (int i = 0; i < points; ++i) {
    x += rng.uniform_int(1, std::max<long long>(1, max_items / points));
    y += rng.uniform(0.01, 2.0);
    samples.emplace_back(x, y);
  }
  return model::Cost::tabulated(std::move(samples));
}

// A random platform with increasing (tabulated / linear / chunked) costs,
// root last with zero communication.
model::Platform random_increasing_platform(support::Rng& rng, int p, long long n) {
  model::Platform platform;
  for (int i = 0; i < p; ++i) {
    model::Processor proc;
    proc.label = "P" + std::to_string(i + 1);
    if (i + 1 == p) {
      proc.comm = model::Cost::zero();
    } else {
      switch (rng.uniform_int(0, 2)) {
        case 0: proc.comm = random_increasing_tabulated(rng, n); break;
        case 1: proc.comm = model::Cost::linear(rng.uniform(1e-5, 1e-3)); break;
        default:
          proc.comm = model::Cost::chunked(rng.uniform(1e-5, 1e-3),
                                           rng.uniform_int(3, 50),
                                           rng.uniform(1e-4, 1e-2));
      }
    }
    proc.comp = rng.bernoulli(0.5)
                    ? random_increasing_tabulated(rng, n)
                    : model::Cost::linear(rng.uniform(1e-4, 1e-2));
    platform.processors.push_back(proc);
  }
  return platform;
}

DpOptions serial_options() {
  DpOptions options;
  options.threads = 1;
  return options;
}

class DpVariantsTest : public ::testing::TestWithParam<std::uint64_t> {};

// The satellite property test: random increasing-cost platforms, all
// engine variants agree on the makespan and produce valid distributions,
// n up to 5,000.
TEST_P(DpVariantsTest, AllVariantsAgreeOnRandomIncreasingPlatforms) {
  support::Rng rng(GetParam());
  for (long long n : {37LL, 1'000LL, 5'000LL}) {
    int p = static_cast<int>(rng.uniform_int(2, 6));
    auto platform = random_increasing_platform(rng, p, n);
    ASSERT_TRUE(platform.all_costs_increasing());

    auto exact_serial = exact_dp(platform, n, serial_options());
    auto exact_parallel = exact_dp(platform, n);
    auto optimized_serial = optimized_dp(platform, n, serial_options());
    auto optimized_parallel = optimized_dp(platform, n);

    // Parallel scheduling must be unobservable: bit-identical results.
    EXPECT_EQ(exact_serial.distribution.counts, exact_parallel.distribution.counts);
    EXPECT_EQ(exact_serial.cost, exact_parallel.cost);
    EXPECT_EQ(optimized_serial.distribution.counts,
              optimized_parallel.distribution.counts);
    EXPECT_EQ(optimized_serial.cost, optimized_parallel.cost);

    // Algorithms 1 and 2 find the same optimum (distributions may differ
    // on ties, the makespan may not).
    EXPECT_NEAR(exact_serial.cost, optimized_serial.cost,
                1e-12 * std::max(1.0, exact_serial.cost))
        << "seed " << GetParam() << " n " << n;

    // Both distributions are valid (validate() ran inside) and evaluate
    // to their claimed makespans under the model.
    EXPECT_NEAR(makespan(platform, exact_serial.distribution), exact_serial.cost,
                1e-9 * std::max(1.0, exact_serial.cost));
    EXPECT_NEAR(makespan(platform, optimized_serial.distribution),
                optimized_serial.cost,
                1e-9 * std::max(1.0, optimized_serial.cost));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpVariantsTest,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u));

TEST(DivideConquer, MatchesChoiceTableBitwise) {
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  for (long long n : {0LL, 1LL, 17LL, 5'000LL, 20'000LL}) {
    DpOptions table_opts = serial_options();
    table_opts.memory = DpMemory::ChoiceTable;
    DpOptions dc_opts = serial_options();
    dc_opts.memory = DpMemory::DivideConquer;

    auto reference = optimized_dp(platform, n, table_opts);
    auto dc = optimized_dp(platform, n, dc_opts);
    EXPECT_EQ(reference.distribution.counts, dc.distribution.counts) << "n " << n;
    EXPECT_EQ(reference.cost, dc.cost) << "n " << n;

    auto dc_parallel_opts = dc_opts;
    dc_parallel_opts.threads = 0;
    auto dc_parallel = optimized_dp(platform, n, dc_parallel_opts);
    EXPECT_EQ(reference.distribution.counts, dc_parallel.distribution.counts);
  }
}

TEST(DivideConquer, ExactDpMatchesToo) {
  support::Rng rng(99);
  auto platform = random_increasing_platform(rng, 5, 500);
  DpOptions dc_opts;
  dc_opts.memory = DpMemory::DivideConquer;
  auto reference = exact_dp(platform, 500, serial_options());
  auto dc = exact_dp(platform, 500, dc_opts);
  EXPECT_EQ(reference.distribution.counts, dc.distribution.counts);
  EXPECT_EQ(reference.cost, dc.cost);
}

TEST(DivideConquer, SingleProcessorAndTinyPlatforms) {
  model::Platform one;
  model::Processor proc;
  proc.label = "P1";
  proc.comm = model::Cost::zero();
  proc.comp = model::Cost::linear(2.0);
  one.processors.push_back(proc);
  DpOptions dc_opts;
  dc_opts.memory = DpMemory::DivideConquer;
  auto result = optimized_dp(one, 9, dc_opts);
  EXPECT_EQ(result.distribution.counts, (std::vector<long long>{9}));
  EXPECT_DOUBLE_EQ(result.cost, 18.0);
}

TEST(CostTable, RowsMatchCostFunctionsAndDpAgrees) {
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  const long long n = 2'000;
  model::CostTable table(platform, n);
  ASSERT_EQ(table.processors(), platform.size());
  ASSERT_EQ(table.items(), n);
  for (int i = 0; i < platform.size(); ++i) {
    auto comm = table.comm_row(i);
    auto comp = table.comp_row(i);
    ASSERT_EQ(comm.size(), static_cast<std::size_t>(n) + 1);
    for (long long e : {0LL, 1LL, 997LL, n}) {
      EXPECT_EQ(comm[static_cast<std::size_t>(e)], platform[i].comm(e));
      EXPECT_EQ(comp[static_cast<std::size_t>(e)], platform[i].comp(e));
    }
  }

  DpOptions with_table;
  with_table.cost_table = &table;
  auto reference = optimized_dp(platform, n, serial_options());
  auto from_table = optimized_dp(platform, n, with_table);
  EXPECT_EQ(reference.distribution.counts, from_table.distribution.counts);
  EXPECT_EQ(reference.cost, from_table.cost);

  // A table covering more items than requested is usable as-is.
  auto smaller = optimized_dp(platform, n / 2, with_table);
  auto smaller_ref = optimized_dp(platform, n / 2, serial_options());
  EXPECT_EQ(smaller_ref.distribution.counts, smaller.distribution.counts);
}

TEST(CostTable, MismatchedPlatformIsRejected) {
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  model::CostTable table(platform, 100);
  DpOptions with_table;
  with_table.cost_table = &table;
  // More items than the table covers.
  EXPECT_THROW(optimized_dp(platform, 101, with_table), Error);
}

TEST(ChoiceTable, RejectsItemsBeyondInt32) {
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  DpOptions options;
  options.memory = DpMemory::ChoiceTable;
  long long too_many = static_cast<long long>(std::numeric_limits<std::int32_t>::max()) + 1;
  EXPECT_THROW(optimized_dp(platform, too_many, options), Error);
}

TEST(PlanCache, HitsRepeatPlansAndTracksStats) {
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  PlanCache cache(8);

  auto first = cache.plan(platform, 4321);
  auto second = cache.plan(platform, 4321);
  auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(first.distribution.counts, second.distribution.counts);
  EXPECT_EQ(first.displacements, second.displacements);
  EXPECT_EQ(first.predicted_makespan, second.predicted_makespan);

  // A cached plan is exactly what the uncached planner would produce.
  auto uncached = plan_scatter(platform, 4321);
  EXPECT_EQ(uncached.distribution.counts, second.distribution.counts);

  // Different item counts and different algorithms are distinct keys.
  cache.plan(platform, 1234);
  cache.plan(platform, 4321, Algorithm::OptimizedDp);
  stats = cache.stats();
  EXPECT_EQ(stats.misses, 3u);
}

TEST(PlanCache, DistinguishesPlatformsByCostStructure) {
  PlanCache cache(8);
  model::Platform a;
  model::Platform b;
  for (int i = 0; i < 3; ++i) {
    model::Processor proc;
    proc.label = "P" + std::to_string(i);
    proc.comm = i == 2 ? model::Cost::zero() : model::Cost::linear(1e-4);
    proc.comp = model::Cost::linear(1e-2);
    a.processors.push_back(proc);
    proc.comp = model::Cost::linear(2e-2);  // different compute speed
    b.processors.push_back(proc);
  }
  auto plan_a = cache.plan(a, 1000);
  auto plan_b = cache.plan(b, 1000);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 0u);
  // Same structure again: hit, regardless of labels.
  model::Platform a2 = a;
  for (auto& proc : a2.processors) proc.label += "-renamed";
  cache.plan(a2, 1000);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(PlanCache, EvictsLeastRecentlyUsed) {
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  PlanCache cache(2);
  cache.plan(platform, 100);  // miss -> [100]
  cache.plan(platform, 200);  // miss -> [200, 100]
  cache.plan(platform, 100);  // hit  -> [100, 200]
  cache.plan(platform, 300);  // miss, evicts 200 -> [300, 100]
  auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  cache.plan(platform, 100);  // hit: recently used, survived -> [100, 300]
  EXPECT_EQ(cache.stats().hits, 2u);
  cache.plan(platform, 200);  // miss again: it was evicted
  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_EQ(cache.size(), 2u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(PlanScatter, CacheOptionIsTransparent) {
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  PlanCache cache(4);
  PlannerOptions options;
  options.cache = &cache;
  auto cached1 = plan_scatter(platform, 7777, options);
  auto cached2 = plan_scatter(platform, 7777, options);
  auto plain = plan_scatter(platform, 7777);
  EXPECT_EQ(cached1.distribution.counts, plain.distribution.counts);
  EXPECT_EQ(cached2.distribution.counts, plain.distribution.counts);
  EXPECT_EQ(cached2.predicted_finish, plain.predicted_finish);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(Replanner, CachedReplansStayCorrect) {
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  auto replan = make_ft_replanner(platform);
  std::vector<int> alive{0, 2, 5, platform.size() - 1};
  auto counts_first = replan(alive, 10'000);
  auto counts_second = replan(alive, 10'000);  // cache hit path
  EXPECT_EQ(counts_first, counts_second);
  ASSERT_EQ(counts_first.size(), alive.size());
  long long total = 0;
  for (long long c : counts_first) {
    EXPECT_GE(c, 0);
    total += c;
  }
  EXPECT_EQ(total, 10'000);
}

}  // namespace
}  // namespace lbs::core
