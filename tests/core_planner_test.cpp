#include "core/planner.hpp"

#include <gtest/gtest.h>

#include "core/dp.hpp"
#include "core/root_selection.hpp"
#include "model/testbed.hpp"
#include "support/error.hpp"

namespace lbs::core {
namespace {

TEST(Planner, AutoPicksClosedFormForLinearCosts) {
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  auto plan = plan_scatter(platform, 100000);
  EXPECT_EQ(plan.algorithm_used, Algorithm::LinearClosedForm);
  EXPECT_EQ(plan.distribution.total(), 100000);
}

TEST(Planner, AutoPicksHeuristicForAffineCosts) {
  model::Platform platform;
  model::Processor p1;
  p1.label = "affine";
  p1.comm = model::Cost::affine(0.5, 0.01);
  p1.comp = model::Cost::linear(0.1);
  platform.processors.push_back(p1);
  model::Processor root;
  root.label = "root";
  root.comm = model::Cost::zero();
  root.comp = model::Cost::linear(0.2);
  platform.processors.push_back(root);
  auto plan = plan_scatter(platform, 100);
  EXPECT_EQ(plan.algorithm_used, Algorithm::LpHeuristic);
}

TEST(Planner, AutoPicksOptimizedDpForIncreasingCosts) {
  model::Platform platform;
  model::Processor p1;
  p1.label = "chunked";
  p1.comm = model::Cost::chunked(0.1, 5, 1.0);
  p1.comp = model::Cost::linear(0.5);
  platform.processors.push_back(p1);
  model::Processor root;
  root.label = "root";
  root.comm = model::Cost::zero();
  root.comp = model::Cost::linear(1.0);
  platform.processors.push_back(root);
  auto plan = plan_scatter(platform, 50);
  EXPECT_EQ(plan.algorithm_used, Algorithm::OptimizedDp);
}

TEST(Planner, AutoFallsBackToExactDp) {
  model::Platform platform;
  model::Processor p1;
  p1.label = "dip";
  p1.comm = model::Cost::linear(0.1);
  p1.comp = model::Cost::tabulated({{5, 10.0}, {10, 4.0}});
  platform.processors.push_back(p1);
  model::Processor root;
  root.label = "root";
  root.comm = model::Cost::zero();
  root.comp = model::Cost::linear(1.0);
  platform.processors.push_back(root);
  auto plan = plan_scatter(platform, 20);
  EXPECT_EQ(plan.algorithm_used, Algorithm::ExactDp);
}

TEST(Planner, ForcedAlgorithmHonored) {
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  auto plan = plan_scatter(platform, 500, Algorithm::OptimizedDp);
  EXPECT_EQ(plan.algorithm_used, Algorithm::OptimizedDp);
  auto dp = optimized_dp(platform, 500);
  EXPECT_DOUBLE_EQ(plan.predicted_makespan, dp.cost);
}

TEST(Planner, ForcedHeuristicOnNonAffineThrows) {
  model::Platform platform;
  model::Processor p;
  p.label = "tab";
  p.comm = model::Cost::zero();
  p.comp = model::Cost::tabulated({{10, 5.0}});
  platform.processors.push_back(p);
  EXPECT_THROW(plan_scatter(platform, 10, Algorithm::LpHeuristic), lbs::Error);
}

TEST(Planner, UniformBaselineMatchesOriginalProgram) {
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  auto plan = plan_scatter(platform, 817101, Algorithm::Uniform);
  EXPECT_EQ(plan.algorithm_used, Algorithm::Uniform);
  // 817101 = 16 * 51068 + 13: first 13 processors get 51069.
  EXPECT_EQ(plan.distribution.counts[0], 51069);
  EXPECT_EQ(plan.distribution.counts[15], 51068);
}

TEST(Planner, DisplacementsArePrefixSums) {
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  auto plan = plan_scatter(platform, 12345);
  long long offset = 0;
  for (int i = 0; i < platform.size(); ++i) {
    EXPECT_EQ(plan.displacements[static_cast<std::size_t>(i)], offset);
    offset += plan.distribution.counts[static_cast<std::size_t>(i)];
  }
  EXPECT_EQ(offset, 12345);
}

TEST(Planner, PredictedFinishMatchesEquationOne) {
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  auto plan = plan_scatter(platform, 5000);
  auto times = finish_times(platform, plan.distribution);
  ASSERT_EQ(plan.predicted_finish.size(), times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_DOUBLE_EQ(plan.predicted_finish[i], times[i]);
  }
}

TEST(Planner, BalancedPlanBeatsUniformOnPaperTestbed) {
  auto grid = model::paper_testbed();
  auto platform = ordered_platform(grid, model::paper_root(grid),
                                   OrderingPolicy::DescendingBandwidth);
  long long n = model::kPaperRayCount;
  auto balanced = plan_scatter(platform, n);
  auto uniform = plan_scatter(platform, n, Algorithm::Uniform);
  // The paper: "the total execution duration is approximately half the
  // duration of the first experiment".
  EXPECT_LT(balanced.predicted_makespan, 0.6 * uniform.predicted_makespan);
}

TEST(Planner, NarrowingToIntSucceedsAtSmallScale) {
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  auto plan = plan_scatter(platform, 12345);
  auto counts = plan.counts_as_int();
  auto displs = plan.displacements_as_int();
  ASSERT_EQ(counts.size(), plan.distribution.counts.size());
  ASSERT_EQ(displs.size(), plan.displacements.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(static_cast<long long>(counts[i]), plan.distribution.counts[i]);
    EXPECT_EQ(static_cast<long long>(displs[i]), plan.displacements[i]);
  }
}

TEST(Planner, NarrowingThrowsInsteadOfWrappingBeyondIntMax) {
  // Regression: at n = 5e9 the tail displacements exceed INT_MAX; feeding
  // the old silently-truncated values to MPI_Scatterv corrupted the
  // scatter. The narrowing accessors must throw instead.
  model::Platform platform;
  for (int i = 0; i < 4; ++i) {
    model::Processor p;
    p.label = "P" + std::to_string(i + 1);
    p.comm = i == 3 ? model::Cost::zero() : model::Cost::linear(1e-9);
    p.comp = model::Cost::linear(1e-9);
    platform.processors.push_back(p);
  }
  const long long n = 5'000'000'000LL;
  auto plan = plan_scatter(platform, n, Algorithm::Uniform);
  EXPECT_EQ(plan.distribution.total(), n);
  // Every individual count (1.25e9) fits in int, so counts narrow fine...
  EXPECT_NO_THROW(plan.counts_as_int());
  // ...but the later displacements (2.5e9, 3.75e9) cannot.
  EXPECT_THROW(plan.displacements_as_int(), lbs::Error);

  // And when a single count overflows, counts_as_int must throw too.
  auto big = plan_scatter(platform, 10'000'000'000LL, Algorithm::Uniform);
  EXPECT_THROW(big.counts_as_int(), lbs::Error);
}

TEST(Planner, AlgorithmNames) {
  EXPECT_NE(to_string(Algorithm::ExactDp).find("Algorithm 1"), std::string::npos);
  EXPECT_NE(to_string(Algorithm::OptimizedDp).find("Algorithm 2"), std::string::npos);
  EXPECT_NE(to_string(Algorithm::LpHeuristic).find("3.3"), std::string::npos);
}

TEST(RootSelection, DataHomeWinsWhenStagingIsExpensive) {
  auto grid = model::paper_testbed();
  auto result = select_root(grid, model::kPaperRayCount);
  ASSERT_EQ(result.candidates.size(), 16u);
  // Moving 817k items off dinadan costs at least n * 1.0e-5 ≈ 8 s before
  // anything else happens, and dinadan's own scatter plan is near-optimal,
  // so dinadan must win.
  EXPECT_EQ(result.best().label, "dinadan");
  EXPECT_DOUBLE_EQ(result.best().staging_time, 0.0);
}

TEST(RootSelection, StagingTimeMatchesLinkCost) {
  auto grid = model::paper_testbed();
  auto result = select_root(grid, 100000);
  int dinadan = grid.machine_index("dinadan");
  for (const auto& candidate : result.candidates) {
    if (candidate.root.machine == dinadan) {
      EXPECT_DOUBLE_EQ(candidate.staging_time, 0.0);
    } else {
      double expected = grid.link(dinadan, candidate.root.machine)(100000);
      EXPECT_DOUBLE_EQ(candidate.staging_time, expected);
      EXPECT_DOUBLE_EQ(candidate.total_time,
                       candidate.staging_time + candidate.scatter_makespan);
    }
  }
}

TEST(RootSelection, FasterRemoteRootCanWin) {
  // The data home (archive) has one fast pipe to a hub but only slow
  // direct links to the workers. Scattering from the archive serializes
  // everything over the slow links; staging once to the hub and
  // scattering from there wins despite the extra transfer.
  model::Grid grid;
  model::Machine archive;
  archive.name = "archive";
  archive.comp = model::Cost::linear(1.0);  // terrible at computing
  int archive_idx = grid.add_machine(archive);
  model::Machine hub;
  hub.name = "hub";
  hub.comp = model::Cost::linear(1e-4);
  int hub_idx = grid.add_machine(hub);
  for (int w = 0; w < 3; ++w) {
    model::Machine worker;
    worker.name = "worker" + std::to_string(w);
    worker.cpu_count = 2;
    worker.comp = model::Cost::linear(1e-4);
    int idx = grid.add_machine(worker);
    grid.set_link(archive_idx, idx, model::Cost::linear(1e-4));  // slow
    grid.set_link(hub_idx, idx, model::Cost::linear(1e-6));      // fast
  }
  grid.set_link(archive_idx, hub_idx, model::Cost::linear(1e-6));  // fast pipe
  for (int a = 2; a < 5; ++a) {
    for (int b = a + 1; b < 5; ++b) grid.set_link(a, b, model::Cost::linear(1e-6));
  }
  grid.set_data_home(archive_idx);

  auto result = select_root(grid, 1000000);
  EXPECT_EQ(grid.machine(result.best().root.machine).name, "hub");
  EXPECT_GT(result.best().staging_time, 0.0);
}

TEST(RootSelection, RequiresDataHome) {
  model::Grid grid;
  model::Machine m;
  m.name = "lonely";
  m.comp = model::Cost::linear(1.0);
  grid.add_machine(m);
  EXPECT_THROW(select_root(grid, 10), lbs::Error);
}

}  // namespace
}  // namespace lbs::core
