// Fleet tests: TCP endpoints and the consistent-hash cache partition.
//
// The partition proof is the heart of this file: k distinct PlanKeys
// driven through a FleetClient over three TCP replicas must be solved
// EXACTLY once fleet-wide, each on the replica route_of predicts, and a
// replay of every key must be all cache hits with zero new solves — the
// property that makes N replicas N-times the cache instead of N copies
// of it. Replicas listen on port 0 (kernel-assigned, reported back by
// Server::endpoint()) so parallel ctest runs cannot collide.
#include "service/fleet.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "core/planner.hpp"
#include "model/testbed.hpp"
#include "obs/metrics.hpp"
#include "service/server.hpp"
#include "support/error.hpp"

namespace lbs::service {
namespace {

std::string test_socket_path() {
  static int counter = 0;
  return "/tmp/lbs_fleet_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(++counter) + ".sock";
}

// A platform whose worker slope varies with `seed`: distinct PlanKeys.
model::Platform seeded_platform(int seed) {
  model::Platform platform;
  model::Processor worker;
  worker.label = "worker";
  worker.comm = model::Cost::linear(0.5);
  worker.comp = model::Cost::tabulated(
      {{10, 1.0 + 0.01 * seed}, {100, 9.0 + 0.01 * seed}});
  platform.processors.push_back(worker);
  model::Processor root;
  root.label = "root";
  root.comm = model::Cost::zero();
  root.comp = model::Cost::linear(0.2);
  platform.processors.push_back(root);
  return platform;
}

// N replicas on kernel-assigned TCP ports, plus the FleetOptions that
// address them.
struct Fleet {
  std::vector<std::unique_ptr<Server>> servers;
  FleetOptions options;
};

Fleet start_tcp_fleet(int replicas) {
  Fleet fleet;
  for (int i = 0; i < replicas; ++i) {
    ServerOptions options;
    options.endpoint = Endpoint::tcp("127.0.0.1", 0);
    auto server = std::make_unique<Server>(options);
    server->start();
    EXPECT_NE(server->endpoint().port, 0) << "kernel did not assign a port";
    fleet.options.replicas.push_back(server->endpoint());
    fleet.servers.push_back(std::move(server));
  }
  return fleet;
}

TEST(ServiceEndpoint, ParseCoversAllSpellings) {
  Endpoint unix_ep = Endpoint::parse("/tmp/lbsd.sock");
  EXPECT_EQ(unix_ep.kind, Endpoint::Kind::Unix);
  EXPECT_EQ(unix_ep.path, "/tmp/lbsd.sock");
  EXPECT_EQ(unix_ep.to_string(), "unix:/tmp/lbsd.sock");

  Endpoint prefixed = Endpoint::parse("unix:relative.sock");
  EXPECT_EQ(prefixed.kind, Endpoint::Kind::Unix);
  EXPECT_EQ(prefixed.path, "relative.sock");

  Endpoint tcp = Endpoint::parse("tcp:localhost:7411");
  EXPECT_EQ(tcp.kind, Endpoint::Kind::Tcp);
  EXPECT_EQ(tcp.host, "localhost");
  EXPECT_EQ(tcp.port, 7411);
  EXPECT_EQ(tcp.to_string(), "tcp:localhost:7411");

  // Bare host:port — the numeric port after the last colon wins the
  // ambiguity with unix paths…
  Endpoint bare = Endpoint::parse("127.0.0.1:80");
  EXPECT_EQ(bare.kind, Endpoint::Kind::Tcp);
  EXPECT_EQ(bare.host, "127.0.0.1");
  EXPECT_EQ(bare.port, 80);

  // …and a non-numeric suffix stays a unix path.
  EXPECT_EQ(Endpoint::parse("host:notaport").kind, Endpoint::Kind::Unix);

  EXPECT_THROW(Endpoint::parse(""), Error);
  EXPECT_THROW(Endpoint::parse("tcp:nohostport"), Error);
  EXPECT_THROW(Endpoint::parse("tcp:host:99999"), Error);

  auto list = parse_endpoint_list("a.sock,tcp:h:1,,unix:b.sock");
  ASSERT_EQ(list.size(), 3u);  // empty elements are skipped
  EXPECT_EQ(list[0].kind, Endpoint::Kind::Unix);
  EXPECT_EQ(list[1].kind, Endpoint::Kind::Tcp);
  EXPECT_EQ(list[2].path, "b.sock");
  EXPECT_THROW(parse_endpoint_list(",,"), Error);
}

// Satellite of the transport work: an over-long unix path used to abort
// the process inside make_address; now it is a typed service::Error the
// operator can read.
TEST(ServiceEndpoint, OverlongUnixPathIsATypedError) {
  ServerOptions options;
  options.socket_path = "/tmp/" + std::string(200, 'x') + ".sock";
  Server server(options);
  try {
    server.start();
    FAIL() << "start() accepted a path sockaddr_un cannot hold";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("too long"), std::string::npos);
  }
}

TEST(ServiceFleet, TcpRoundTripMatchesPlannerBitExactly) {
  ServerOptions options;
  options.endpoint = Endpoint::tcp("127.0.0.1", 0);
  Server server(options);
  server.start();

  Client client(server.endpoint().to_string());
  auto platform = model::paper_testbed();
  auto full = model::make_platform(platform, model::paper_root(platform));
  PlanResponse response = client.plan(full, 817101);

  ASSERT_EQ(response.status, PlanStatus::Ok);
  auto direct = core::plan_scatter(full, 817101);
  EXPECT_EQ(response.counts, direct.distribution.counts);
  EXPECT_DOUBLE_EQ(response.predicted_makespan, direct.predicted_makespan);
  server.stop();
}

// THE partition proof.
TEST(ServiceFleet, DistinctKeysPartitionAcrossReplicaCaches) {
  constexpr int kReplicas = 3;
  constexpr int kKeys = 24;
  Fleet fleet = start_tcp_fleet(kReplicas);
  obs::Metrics metrics;
  fleet.options.metrics = &metrics;
  FleetClient client(fleet.options);

  // Solve k distinct keys; record where each was predicted to land.
  std::vector<std::uint64_t> predicted(kReplicas, 0);
  for (int seed = 0; seed < kKeys; ++seed) {
    auto platform = seeded_platform(seed);
    std::size_t home = client.route_of(platform, 4000, core::Algorithm::ExactDp);
    ASSERT_LT(home, static_cast<std::size_t>(kReplicas));
    ++predicted[home];
    PlanResponse response = client.plan(platform, 4000, core::Algorithm::ExactDp);
    ASSERT_EQ(response.status, PlanStatus::Ok) << response.message;
    EXPECT_FALSE(response.cache_hit);
    core::PlannerOptions exact;
    exact.algorithm = core::Algorithm::ExactDp;
    auto direct = core::plan_scatter(platform, 4000, exact);
    EXPECT_EQ(response.counts, direct.distribution.counts);
  }

  // Each key was solved exactly once fleet-wide, on its home replica.
  std::uint64_t total_solved = 0;
  for (int r = 0; r < kReplicas; ++r) {
    Server::Counters counters = fleet.servers[static_cast<std::size_t>(r)]->counters();
    EXPECT_EQ(counters.solved, predicted[static_cast<std::size_t>(r)])
        << "replica " << r << " solved keys routed elsewhere";
    EXPECT_EQ(counters.cache_hits, 0u);
    total_solved += counters.solved;
  }
  EXPECT_EQ(total_solved, static_cast<std::uint64_t>(kKeys));

  // With healthy replicas nothing reroutes, and every response was served
  // by the replica the ring names.
  FleetClient::Counters fleet_counters = client.counters();
  EXPECT_EQ(fleet_counters.requests, static_cast<std::uint64_t>(kKeys));
  EXPECT_EQ(fleet_counters.rerouted, 0u);
  EXPECT_EQ(fleet_counters.fallbacks, 0u);
  for (int r = 0; r < kReplicas; ++r) {
    EXPECT_EQ(fleet_counters.per_replica[static_cast<std::size_t>(r)],
              predicted[static_cast<std::size_t>(r)]);
  }

  // Replay every key: all cache hits, ZERO new solves anywhere — the
  // fleet never duplicates a dp.solve across replicas.
  for (int seed = 0; seed < kKeys; ++seed) {
    auto platform = seeded_platform(seed);
    PlanResponse response = client.plan(platform, 4000, core::Algorithm::ExactDp);
    ASSERT_EQ(response.status, PlanStatus::Ok);
    EXPECT_TRUE(response.cache_hit) << "seed " << seed << " missed on replay";
  }
  std::uint64_t total_after = 0;
  std::uint64_t hits_after = 0;
  for (const auto& server : fleet.servers) {
    total_after += server->counters().solved;
    hits_after += server->counters().cache_hits;
  }
  EXPECT_EQ(total_after, static_cast<std::uint64_t>(kKeys));
  EXPECT_EQ(hits_after, static_cast<std::uint64_t>(kKeys));

  client.close();
  for (auto& server : fleet.servers) server->stop();
}

TEST(ServiceFleet, RouteOfIsStableAcrossClients) {
  Fleet fleet = start_tcp_fleet(3);
  FleetClient a(fleet.options);
  FleetClient b(fleet.options);
  for (int seed = 0; seed < 32; ++seed) {
    auto platform = seeded_platform(seed);
    EXPECT_EQ(a.route_of(platform, 4000), b.route_of(platform, 4000));
    EXPECT_EQ(a.route_of(platform, 4000), a.route_of(platform, 4000));
    // items is part of the key: different items may route elsewhere, and
    // must do so consistently.
    EXPECT_EQ(a.route_of(platform, 8000), b.route_of(platform, 8000));
  }
  for (auto& server : fleet.servers) server->stop();
}

TEST(ServiceFleet, ControlPlaneReachesEachReplica) {
  Fleet fleet = start_tcp_fleet(2);
  FleetClient client(fleet.options);
  EXPECT_TRUE(client.ping(0));
  EXPECT_TRUE(client.ping(1));
  EXPECT_NE(client.stats(0).find("\"service\""), std::string::npos);
  EXPECT_NE(client.stats(1).find("\"service\""), std::string::npos);
  client.close();
  for (auto& server : fleet.servers) server->stop();
}

TEST(ServiceFleet, AllReplicasDownFallsBackLocallyWhenAsked) {
  // Endpoints that never listened: with local_fallback the plan degrades
  // to the in-process planner and says so; without, a typed transport
  // failure comes back. Never an exception, never a hang.
  FleetOptions options;
  options.replicas = {Endpoint::unix_path(test_socket_path()),
                      Endpoint::unix_path(test_socket_path())};
  options.local_fallback = true;
  FleetClient with_fallback(options);

  auto platform = seeded_platform(1);
  PlanResponse response = with_fallback.plan(platform, 4000);
  ASSERT_EQ(response.status, PlanStatus::Ok);
  EXPECT_TRUE(response.local_fallback);
  auto direct = core::plan_scatter(platform, 4000);
  EXPECT_EQ(response.counts, direct.distribution.counts);
  EXPECT_EQ(with_fallback.counters().fallbacks, 1u);

  options.local_fallback = false;
  FleetClient without_fallback(options);
  PlanResponse failure = without_fallback.plan(platform, 4000);
  EXPECT_EQ(failure.status, PlanStatus::Disconnected);
  EXPECT_EQ(without_fallback.counters().exhausted, 1u);
}

TEST(ServiceFleet, RejectsDuplicateOrEmptyMembership) {
  FleetOptions empty;
  EXPECT_THROW(FleetClient{empty}, lbs::Error);

  FleetOptions duplicated;
  duplicated.replicas = {Endpoint::tcp("h", 1), Endpoint::tcp("h", 1)};
  EXPECT_THROW(FleetClient{duplicated}, lbs::Error);
}

}  // namespace
}  // namespace lbs::service
