// Cross-module integration tests: every solver against every other, the
// simulator against the analytic model, and the paper's headline numbers
// as regression guards.

#include <gtest/gtest.h>

#include <numeric>

#include "core/closed_form.hpp"
#include "core/dp.hpp"
#include "core/heuristic.hpp"
#include "core/ordering.hpp"
#include "core/planner.hpp"
#include "core/rounding.hpp"
#include "gridsim/gridsim.hpp"
#include "model/testbed.hpp"
#include "mq/platform_link.hpp"
#include "mq/runtime.hpp"
#include "support/rng.hpp"

namespace lbs {
namespace {

struct SolverSweepCase {
  std::uint64_t seed;
  int machines;
  long long items;
};

class SolverCrossValidation : public ::testing::TestWithParam<SolverSweepCase> {};

TEST_P(SolverCrossValidation, AllMethodsAgreeOnLinearPlatforms) {
  auto param = GetParam();
  support::Rng rng(param.seed);
  model::Grid grid = model::random_grid(rng, param.machines, /*affine=*/false);
  model::Platform platform = core::ordered_platform(
      grid, model::ProcessorRef{grid.data_home(), 0},
      core::OrderingPolicy::DescendingBandwidth);
  long long n = param.items;

  // Four independent solvers of the same problem.
  auto dp = core::optimized_dp(platform, n);
  auto heuristic = core::lp_heuristic(platform, n);
  auto exact_heuristic = core::lp_heuristic_exact(platform, n);
  auto closed = core::solve_linear(platform, n);
  auto closed_rounded = core::round_distribution(closed.share, n);

  double slack = core::rounding_guarantee_slack(platform);

  // The DP optimum is the reference. Every rounded rational method must
  // land within the Eq. 4 slack of it; the rational duration lower-bounds it.
  EXPECT_LE(closed.duration, dp.cost + 1e-9);
  EXPECT_GE(heuristic.makespan, dp.cost - 1e-9);
  EXPECT_LE(heuristic.makespan, dp.cost + slack + 1e-9);
  EXPECT_GE(exact_heuristic.makespan, dp.cost - 1e-9);
  EXPECT_LE(exact_heuristic.makespan, dp.cost + slack + 1e-9);
  double closed_makespan = core::makespan(platform, closed_rounded);
  EXPECT_GE(closed_makespan, dp.cost - 1e-9);
  EXPECT_LE(closed_makespan, dp.cost + slack + 1e-9);

  // The two LP paths agree on the rational optimum (double tolerance).
  EXPECT_NEAR(exact_heuristic.rational_makespan.to_double(),
              heuristic.rational_makespan,
              std::max(1e-9, heuristic.rational_makespan * 1e-5));

  // And the simulator realizes exactly what Eq. 2 predicts.
  auto sim = gridsim::simulate_scatter(platform, dp.distribution);
  EXPECT_NEAR(sim.timeline.makespan(), dp.cost, std::max(1e-9, dp.cost * 1e-12));
}

INSTANTIATE_TEST_SUITE_P(
    RandomGrids, SolverCrossValidation,
    ::testing::Values(SolverSweepCase{11, 2, 500}, SolverSweepCase{12, 3, 800},
                      SolverSweepCase{13, 4, 300}, SolverSweepCase{14, 5, 1000},
                      SolverSweepCase{15, 2, 37}, SolverSweepCase{16, 3, 999},
                      SolverSweepCase{17, 6, 400}, SolverSweepCase{18, 4, 64}));

class AffineSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AffineSweep, HeuristicWithinGuaranteeOnAffinePlatforms) {
  support::Rng rng(GetParam());
  for (int trial = 0; trial < 3; ++trial) {
    model::Grid grid = model::random_grid(rng, 3, /*affine=*/true);
    model::Platform platform =
        make_platform(grid, model::ProcessorRef{grid.data_home(), 0});
    long long n = rng.uniform_int(50, 400);

    auto dp = core::optimized_dp(platform, n);
    auto heuristic = core::lp_heuristic(platform, n);
    EXPECT_GE(heuristic.makespan, dp.cost - 1e-9);
    EXPECT_LE(heuristic.makespan, dp.cost + heuristic.guarantee_slack + 1e-9);

    auto exact = core::lp_heuristic_exact(platform, n);
    EXPECT_GE(exact.makespan, dp.cost - 1e-9);
    // The exact path approximates coefficients (bounded denominators), so
    // allow a small relative epsilon on top of the guarantee.
    EXPECT_LE(exact.makespan, dp.cost + heuristic.guarantee_slack + dp.cost * 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AffineSweep, ::testing::Values(21u, 22u, 23u, 24u));

TEST(PaperHeadlines, UniformRunShape) {
  // Figure 2 guards: earliest/latest finish bands and the 3x imbalance.
  auto grid = model::paper_testbed();
  auto platform = core::ordered_platform(grid, model::paper_root(grid),
                                         core::OrderingPolicy::DescendingBandwidth);
  auto uniform = core::plan_scatter(platform, model::kPaperRayCount,
                                    core::Algorithm::Uniform);
  auto finish = uniform.predicted_finish;
  double earliest = *std::min_element(finish.begin(), finish.end());
  double latest = *std::max_element(finish.begin(), finish.end());
  EXPECT_NEAR(earliest, 226.0, 5.0);
  EXPECT_NEAR(latest, 829.0, 5.0);
  EXPECT_GT(latest / earliest, 3.0);
}

TEST(PaperHeadlines, BalancedRunShape) {
  // Figure 3 guards: ~404 s makespan, ~2x speedup over uniform.
  auto grid = model::paper_testbed();
  auto platform = core::ordered_platform(grid, model::paper_root(grid),
                                         core::OrderingPolicy::DescendingBandwidth);
  auto balanced = core::plan_scatter(platform, model::kPaperRayCount);
  auto uniform = core::plan_scatter(platform, model::kPaperRayCount,
                                    core::Algorithm::Uniform);
  EXPECT_NEAR(balanced.predicted_makespan, 404.0, 3.0);
  EXPECT_NEAR(uniform.predicted_makespan / balanced.predicted_makespan, 2.05, 0.1);
}

TEST(PaperHeadlines, OrderingPenaltyShape) {
  // Figure 4 guard: ascending order costs ~10 s deterministically.
  auto grid = model::paper_testbed();
  auto root = model::paper_root(grid);
  auto descending = core::ordered_platform(grid, root,
                                           core::OrderingPolicy::DescendingBandwidth);
  auto ascending = core::ordered_platform(grid, root,
                                          core::OrderingPolicy::AscendingBandwidth);
  double t_desc = core::plan_scatter(descending, model::kPaperRayCount).predicted_makespan;
  double t_asc = core::plan_scatter(ascending, model::kPaperRayCount).predicted_makespan;
  EXPECT_NEAR(t_asc - t_desc, 10.4, 1.5);
}

TEST(EndToEnd, PlanExecutesOnMqRuntimeWithEmulatedTestbed) {
  // The full pipeline at small scale: plan on the Table 1 platform, run
  // over mq with pacing, check per-rank received counts and that the
  // balanced emulated run beats the uniform one.
  auto grid = model::paper_testbed();
  auto platform = core::ordered_platform(grid, model::paper_root(grid),
                                         core::OrderingPolicy::DescendingBandwidth);
  long long n = 4000;
  auto balanced = core::plan_scatter(platform, n);
  auto uniform = core::plan_scatter(platform, n, core::Algorithm::Uniform);

  auto run = [&](const std::vector<long long>& counts) {
    mq::RuntimeOptions options;
    options.ranks = platform.size();
    options.time_scale = 0.05;
    options.link_cost = mq::make_link_cost(platform, sizeof(double));
    double slowest = 0.0;
    std::mutex slowest_mutex;
    mq::Runtime::run(options, [&](mq::Comm& comm) {
      int root = comm.size() - 1;
      std::vector<double> data;
      if (comm.rank() == root) data.assign(static_cast<std::size_t>(n), 1.5);
      auto mine = comm.scatterv<double>(root, data, counts);
      EXPECT_EQ(mine.size(),
                static_cast<std::size_t>(counts[static_cast<std::size_t>(comm.rank())]));
      mq::emulate_compute(
          comm, platform[comm.rank()].comp.per_item_slope() *
                    static_cast<double>(mine.size()));
      double finish = comm.wtime();
      std::lock_guard lock(slowest_mutex);
      slowest = std::max(slowest, finish);
    });
    return slowest;
  };

  double balanced_time = run(balanced.distribution.counts);
  double uniform_time = run(uniform.distribution.counts);
  EXPECT_LT(balanced_time, uniform_time);
}

TEST(EndToEnd, RoundedDistributionsAlwaysValid) {
  // Fuzz the whole planning stack: random platforms, random n, every
  // algorithm — plans must always validate (sum, non-negativity).
  support::Rng rng(31u);
  for (int trial = 0; trial < 20; ++trial) {
    model::Grid grid = model::random_grid(rng, static_cast<int>(rng.uniform_int(1, 5)),
                                          rng.bernoulli(0.5));
    model::Platform platform =
        make_platform(grid, model::ProcessorRef{grid.data_home(), 0});
    long long n = rng.uniform_int(0, 2000);
    for (auto algorithm : {core::Algorithm::Auto, core::Algorithm::Uniform,
                           core::Algorithm::OptimizedDp}) {
      auto plan = core::plan_scatter(platform, n, algorithm);
      EXPECT_EQ(plan.distribution.total(), n);
      for (long long c : plan.distribution.counts) EXPECT_GE(c, 0);
      EXPECT_GE(plan.predicted_makespan, 0.0);
    }
  }
}

}  // namespace
}  // namespace lbs
