// Deeper property sweeps across the core algorithms: non-affine cost
// shapes, invariances, and model/simulator consistency under composition.

#include <gtest/gtest.h>

#include "core/closed_form.hpp"
#include "core/dp.hpp"
#include "core/installments.hpp"
#include "core/planner.hpp"
#include "core/rounding.hpp"
#include "gridsim/gridsim.hpp"
#include "model/testbed.hpp"
#include "support/rng.hpp"

namespace lbs::core {
namespace {

// Random increasing tabulated cost: cumulative positive increments.
model::Cost random_increasing_tabulated(support::Rng& rng, long long max_items) {
  std::vector<std::pair<long long, double>> samples;
  double y = 0.0;
  long long x = 0;
  int points = static_cast<int>(rng.uniform_int(2, 6));
  for (int i = 0; i < points; ++i) {
    x += rng.uniform_int(1, std::max<long long>(1, max_items / points));
    y += rng.uniform(0.01, 2.0);
    samples.emplace_back(x, y);
  }
  return model::Cost::tabulated(std::move(samples));
}

class TabulatedDpTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TabulatedDpTest, OptimizedMatchesExactOnIncreasingTabulatedCosts) {
  support::Rng rng(GetParam());
  for (int trial = 0; trial < 3; ++trial) {
    int p = static_cast<int>(rng.uniform_int(2, 4));
    long long n = rng.uniform_int(5, 40);
    model::Platform platform;
    for (int i = 0; i < p; ++i) {
      model::Processor proc;
      proc.label = "P" + std::to_string(i + 1);
      proc.comm = i + 1 == p ? model::Cost::zero() : random_increasing_tabulated(rng, n);
      proc.comp = random_increasing_tabulated(rng, n);
      platform.processors.push_back(proc);
    }
    ASSERT_TRUE(platform.all_costs_increasing());
    auto exact = exact_dp(platform, n);
    auto optimized = optimized_dp(platform, n);
    EXPECT_NEAR(optimized.cost, exact.cost, 1e-12)
        << "seed " << GetParam() << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TabulatedDpTest,
                         ::testing::Values(301u, 302u, 303u, 304u, 305u));

TEST(ScaleInvariance, DistributionUnchangedByUniformTimeScaling) {
  // Multiplying every cost by the same constant rescales time but must
  // not change the optimal distribution (only its makespan).
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  model::Platform scaled = platform;
  for (auto& proc : scaled.processors) {
    proc.comm = model::Cost::linear(3.0 * proc.comm.per_item_slope());
    proc.comp = model::Cost::linear(3.0 * proc.comp.per_item_slope());
  }
  long long n = 4321;
  auto base = optimized_dp(platform, n);
  auto stretched = optimized_dp(scaled, n);
  EXPECT_EQ(base.distribution.counts, stretched.distribution.counts);
  EXPECT_NEAR(stretched.cost, 3.0 * base.cost, 1e-9 * stretched.cost);
}

TEST(Monotonicity, MakespanNonDecreasingInN) {
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  double previous = -1.0;
  for (long long n : {0LL, 1LL, 10LL, 100LL, 1000LL, 2000LL}) {
    auto plan = plan_scatter(platform, n);
    EXPECT_GE(plan.predicted_makespan, previous);
    previous = plan.predicted_makespan;
  }
}

TEST(Monotonicity, AddingAProcessorNeverHurtsOptimal) {
  // With non-negative costs, the DP can always assign the newcomer zero
  // items, so the optimum cannot get worse.
  support::Rng rng(909);
  for (int trial = 0; trial < 10; ++trial) {
    int p = static_cast<int>(rng.uniform_int(2, 5));
    std::vector<double> beta, alpha;
    for (int i = 0; i < p; ++i) {
      beta.push_back(i + 1 == p ? 0.0 : rng.uniform(0.0, 1.0));
      alpha.push_back(rng.uniform(0.2, 3.0));
    }
    model::Platform small;
    for (int i = 0; i < p; ++i) {
      model::Processor proc;
      proc.label = "P" + std::to_string(i);
      proc.comm = model::Cost::linear(beta[static_cast<std::size_t>(i)]);
      proc.comp = model::Cost::linear(alpha[static_cast<std::size_t>(i)]);
      small.processors.push_back(proc);
    }
    model::Platform bigger = small;
    model::Processor extra;
    extra.label = "extra";
    extra.comm = model::Cost::linear(rng.uniform(0.0, 2.0));
    extra.comp = model::Cost::linear(rng.uniform(0.2, 3.0));
    // Insert before the root (root must stay last).
    bigger.processors.insert(bigger.processors.end() - 1, extra);

    long long n = rng.uniform_int(10, 80);
    EXPECT_LE(optimized_dp(bigger, n).cost, optimized_dp(small, n).cost + 1e-9)
        << "trial " << trial;
  }
}

TEST(Consistency, MultiRoundSimulationScalesLinearly) {
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  auto plan = plan_scatter(platform, 10000);
  auto rounds = gridsim::simulate_rounds(platform, plan.distribution, 5);
  double single = plan.predicted_makespan;
  for (int r = 0; r < 5; ++r) {
    EXPECT_NEAR(rounds[static_cast<std::size_t>(r)].timeline.latest_finish(),
                (r + 1) * single, 1e-6 * single * (r + 1));
  }
}

TEST(Consistency, InstallmentOneMatchesSimulatorEverywhere) {
  support::Rng rng(5150);
  for (int trial = 0; trial < 5; ++trial) {
    model::Grid grid = model::random_grid(rng, static_cast<int>(rng.uniform_int(2, 4)),
                                          rng.bernoulli(0.5));
    model::Platform platform = make_platform(grid, {grid.data_home(), 0});
    long long n = rng.uniform_int(10, 3000);
    auto dist = uniform_distribution(n, platform.size());
    auto sim = gridsim::simulate_scatter(platform, dist);
    EXPECT_NEAR(installment_makespan(platform, dist, 1), sim.timeline.makespan(),
                1e-9 + 1e-12 * sim.timeline.makespan());
  }
}

TEST(Degenerate, AllWorkOnRootWhenLinksAreHopeless) {
  // Every worker link is slower than just computing at the root.
  model::Platform platform;
  for (int i = 0; i < 3; ++i) {
    model::Processor proc;
    proc.label = "worker";
    proc.comm = model::Cost::linear(10.0);
    proc.comp = model::Cost::linear(0.1);
    platform.processors.push_back(proc);
  }
  model::Processor root;
  root.label = "root";
  root.comm = model::Cost::zero();
  root.comp = model::Cost::linear(1.0);
  platform.processors.push_back(root);
  auto plan = plan_scatter(platform, 100);
  EXPECT_EQ(plan.distribution.counts, (std::vector<long long>{0, 0, 0, 100}));
}

TEST(Degenerate, SingleItemGoesToTheCheapestFinisher) {
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  auto result = optimized_dp(platform, 1);
  EXPECT_EQ(result.distribution.total(), 1);
  // One item: the root (no comm) with alpha 0.009288 loses to caseb's
  // 1e-5 + 0.004629. The DP must find whoever minimizes comm+comp.
  double best = 1e18;
  for (int i = 0; i < platform.size(); ++i) {
    best = std::min(best, platform[i].comm(1) + platform[i].comp(1));
  }
  EXPECT_NEAR(result.cost, best, 1e-15);
}

}  // namespace
}  // namespace lbs::core
