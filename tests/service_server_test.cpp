#include "service/server.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/ordering.hpp"
#include "core/planner.hpp"
#include "model/testbed.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/client.hpp"

namespace lbs::service {
namespace {

std::string test_socket_path() {
  static int counter = 0;
  return "/tmp/lbs_service_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(++counter) + ".sock";
}

model::Platform paper_platform() {
  auto grid = model::paper_testbed();
  return model::make_platform(grid, model::paper_root(grid));
}

// A platform whose worker slope varies with `seed`: distinct PlanKeys.
model::Platform seeded_platform(int seed) {
  model::Platform platform;
  model::Processor worker;
  worker.label = "worker";
  worker.comm = model::Cost::linear(0.5);
  worker.comp = model::Cost::tabulated(
      {{10, 1.0 + 0.01 * seed}, {100, 9.0 + 0.01 * seed}});
  platform.processors.push_back(worker);
  model::Processor root;
  root.label = "root";
  root.comm = model::Cost::zero();
  root.comp = model::Cost::linear(0.2);
  platform.processors.push_back(root);
  return platform;
}

TEST(ServiceServer, PlanMatchesDirectPlannerBitExactly) {
  ServerOptions options;
  options.socket_path = test_socket_path();
  Server server(options);
  server.start();

  auto platform = paper_platform();
  Client client(options.socket_path);
  PlanResponse response = client.plan(platform, 817101);

  ASSERT_EQ(response.status, PlanStatus::Ok);
  auto direct = core::plan_scatter(platform, 817101);
  EXPECT_EQ(response.counts, direct.distribution.counts);
  EXPECT_EQ(response.algorithm_used, direct.algorithm_used);
  EXPECT_DOUBLE_EQ(response.predicted_makespan, direct.predicted_makespan);

  // And the displacements the client derives match the planner's.
  EXPECT_EQ(response.displacements(), direct.displacements);
  server.stop();
}

TEST(ServiceServer, RepeatRequestIsACacheHit) {
  ServerOptions options;
  options.socket_path = test_socket_path();
  Server server(options);
  server.start();

  auto platform = seeded_platform(1);
  Client client(options.socket_path);
  PlanResponse first = client.plan(platform, 5000, core::Algorithm::ExactDp);
  PlanResponse second = client.plan(platform, 5000, core::Algorithm::ExactDp);

  ASSERT_EQ(first.status, PlanStatus::Ok);
  ASSERT_EQ(second.status, PlanStatus::Ok);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(first.counts, second.counts);
  EXPECT_EQ(server.counters().cache_hits, 1u);
  EXPECT_EQ(server.counters().solved, 1u);
  server.stop();
}

// The coalescing guarantee: k identical concurrent requests cost exactly
// one dp.solve. solve_delay_ms holds the first solve open so the
// remaining k-1 requests provably arrive while it is in flight.
TEST(ServiceServer, ConcurrentIdenticalRequestsCoalesceToOneSolve) {
  constexpr int kRequests = 6;
  obs::Tracer tracer;
  ServerOptions options;
  options.socket_path = test_socket_path();
  options.solve_delay_ms = 300;
  options.tracer = &tracer;
  Server server(options);
  server.start();

  auto platform = seeded_platform(2);
  Client client(options.socket_path);
  std::vector<std::future<PlanResponse>> futures;
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(client.plan_async(platform, 4000, core::Algorithm::ExactDp));
  }

  int fresh = 0;
  int coalesced = 0;
  std::vector<long long> counts;
  for (auto& future : futures) {
    PlanResponse response = future.get();
    ASSERT_EQ(response.status, PlanStatus::Ok);
    if (counts.empty()) counts = response.counts;
    EXPECT_EQ(response.counts, counts);  // everyone gets the same plan
    if (response.coalesced) {
      ++coalesced;
    } else if (!response.cache_hit) {
      ++fresh;
    }
  }
  EXPECT_EQ(fresh, 1);
  EXPECT_EQ(coalesced, kRequests - 1);
  EXPECT_EQ(server.counters().solved, 1u);
  EXPECT_EQ(server.counters().coalesced,
            static_cast<std::uint64_t>(kRequests - 1));

  // The proof: exactly one dp.solve span in the whole trace. (stop()
  // joins every server thread first, so the collect is race-free.)
  server.stop();
  auto log = tracer.collect();
  EXPECT_EQ(log.of_type(obs::EventType::DpSolve).size(), 1u);
  // And one service.request span per request, k-1 marked coalesced.
  auto spans = log.of_type(obs::EventType::ServiceRequest);
  ASSERT_EQ(spans.size(), static_cast<std::size_t>(kRequests));
  int coalesced_spans = 0;
  for (const auto& span : spans) {
    if (span.arg2 == 2) ++coalesced_spans;  // kServedCoalesced
  }
  EXPECT_EQ(coalesced_spans, kRequests - 1);
}

TEST(ServiceServer, FullQueueRejectsWithRetryAfter) {
  ServerOptions options;
  options.socket_path = test_socket_path();
  options.max_queue = 1;
  options.solve_delay_ms = 300;
  options.retry_after_ms = 77;
  Server server(options);
  server.start();

  Client client(options.socket_path);
  // Distinct keys (no coalescing): the first occupies the solver, the
  // second sits in the depth-1 queue, so one of the rest must bounce.
  std::vector<std::future<PlanResponse>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(
        client.plan_async(seeded_platform(10 + i), 3000, core::Algorithm::ExactDp));
  }

  int rejected = 0;
  for (auto& future : futures) {
    PlanResponse response = future.get();
    if (response.status == PlanStatus::Rejected) {
      ++rejected;
      EXPECT_EQ(response.retry_after_ms, 77u);
    } else {
      EXPECT_EQ(response.status, PlanStatus::Ok);
    }
  }
  EXPECT_GE(rejected, 1);
  EXPECT_EQ(server.counters().rejected, static_cast<std::uint64_t>(rejected));
  server.stop();
}

TEST(ServiceServer, RetryLoopEventuallySucceeds) {
  ServerOptions options;
  options.socket_path = test_socket_path();
  options.max_queue = 1;
  options.solve_delay_ms = 50;
  options.retry_after_ms = 20;
  Server server(options);
  server.start();

  Client client(options.socket_path);
  // Saturate the queue, then plan_with_retry must ride out the Rejections.
  auto filler1 = client.plan_async(seeded_platform(20), 3000, core::Algorithm::ExactDp);
  auto filler2 = client.plan_async(seeded_platform(21), 3000, core::Algorithm::ExactDp);
  PlanResponse response =
      client.plan_with_retry(seeded_platform(22), 3000, core::Algorithm::ExactDp, 50);
  EXPECT_EQ(response.status, PlanStatus::Ok);
  (void)filler1.get();
  (void)filler2.get();
  server.stop();
}

TEST(ServiceServer, AdmissionControlAnswersError) {
  ServerOptions options;
  options.socket_path = test_socket_path();
  options.max_items = 10000;
  options.max_processors = 4;
  Server server(options);
  server.start();

  Client client(options.socket_path);
  PlanResponse too_many_items = client.plan(seeded_platform(0), 20000);
  EXPECT_EQ(too_many_items.status, PlanStatus::Error);
  EXPECT_NE(too_many_items.message.find("max_items"), std::string::npos);

  PlanResponse too_wide = client.plan(paper_platform(), 100);  // 16 > 4
  EXPECT_EQ(too_wide.status, PlanStatus::Error);
  EXPECT_NE(too_wide.message.find("max_processors"), std::string::npos);
  EXPECT_EQ(server.counters().errors, 2u);
  server.stop();
}

TEST(ServiceServer, PlannerPreconditionFailureAnswersError) {
  ServerOptions options;
  options.socket_path = test_socket_path();
  Server server(options);
  server.start();

  // Forcing the lp-heuristic on chunked (non-affine) costs violates the
  // planner's precondition: the server must answer Error, not die.
  model::Platform platform;
  model::Processor worker;
  worker.label = "chunked";
  worker.comm = model::Cost::chunked(0.1, 5, 1.0);
  worker.comp = model::Cost::linear(0.5);
  platform.processors.push_back(worker);
  model::Processor root;
  root.label = "root";
  root.comm = model::Cost::zero();
  root.comp = model::Cost::linear(1.0);
  platform.processors.push_back(root);

  Client client(options.socket_path);
  PlanResponse response = client.plan(platform, 100, core::Algorithm::LpHeuristic);
  EXPECT_EQ(response.status, PlanStatus::Error);
  EXPECT_FALSE(response.message.empty());

  // The connection survives the error: the next request still works.
  PlanResponse ok = client.plan(platform, 100, core::Algorithm::Auto);
  EXPECT_EQ(ok.status, PlanStatus::Ok);
  server.stop();
}

TEST(ServiceServer, PingStatsAndShutdown) {
  ServerOptions options;
  options.socket_path = test_socket_path();
  Server server(options);
  server.start();

  Client client(options.socket_path);
  EXPECT_TRUE(client.ping());

  (void)client.plan(seeded_platform(3), 1000);
  std::string stats = client.server_stats();
  EXPECT_NE(stats.find("\"service\""), std::string::npos);
  EXPECT_NE(stats.find("\"requests\": 1"), std::string::npos);
  EXPECT_NE(stats.find("\"cache\""), std::string::npos);
  EXPECT_NE(stats.find("\"metrics\""), std::string::npos);

  EXPECT_FALSE(server.stop_requested());
  EXPECT_TRUE(client.shutdown_server());
  EXPECT_TRUE(server.wait_until_stop_requested_for(2000));
  server.stop();
}

TEST(ServiceServer, ClientCloseFailsOutstandingFuturesAsDisconnected) {
  ServerOptions options;
  options.socket_path = test_socket_path();
  options.solve_delay_ms = 400;
  Server server(options);
  server.start();

  Client client(options.socket_path);
  auto future = client.plan_async(seeded_platform(4), 2000, core::Algorithm::ExactDp);
  client.close();
  PlanResponse response = future.get();  // must not hang
  // Either the reply squeaked in before the close, or it is Disconnected.
  EXPECT_TRUE(response.status == PlanStatus::Disconnected ||
              response.status == PlanStatus::Ok);
  EXPECT_FALSE(client.connected());
  server.stop();
}

TEST(ServiceServer, ManyClientsManyKeys) {
  ServerOptions options;
  options.socket_path = test_socket_path();
  options.cache_shards = 4;
  options.cache_capacity_per_shard = 8;
  Server server(options);
  server.start();

  constexpr int kClients = 4;
  constexpr int kPerClient = 12;
  std::vector<std::thread> threads;
  std::atomic<int> wrong{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client(options.socket_path);
      for (int i = 0; i < kPerClient; ++i) {
        int seed = (c * kPerClient + i) % 16;  // overlap across clients
        auto platform = seeded_platform(seed);
        PlanResponse response =
            client.plan_with_retry(platform, 2000 + seed, core::Algorithm::ExactDp);
        if (response.status != PlanStatus::Ok) {
          wrong.fetch_add(1);
          continue;
        }
        auto direct = core::plan_scatter(platform, 2000 + seed,
                                         core::Algorithm::ExactDp);
        if (response.counts != direct.distribution.counts) wrong.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(wrong.load(), 0);
  auto counters = server.counters();
  EXPECT_EQ(counters.requests,
            static_cast<std::uint64_t>(kClients * kPerClient) + counters.rejected);
  server.stop();
}

}  // namespace
}  // namespace lbs::service
