// Cross-module robustness: error paths, boundary values, and ordering
// corner cases that don't belong to any single module's happy path.

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <numeric>
#include <vector>

#include "core/dp.hpp"
#include "core/heuristic.hpp"
#include "core/installments.hpp"
#include "core/planner.hpp"
#include "core/rounding.hpp"
#include "core/roundtrip.hpp"
#include "core/recovery.hpp"
#include "des/simulator.hpp"
#include "model/testbed.hpp"
#include "mq/platform_link.hpp"
#include "mq/runtime.hpp"
#include "support/error.hpp"

namespace lbs {
namespace {

model::Platform solo_platform(double alpha) {
  model::Platform platform;
  model::Processor p;
  p.label = "solo";
  p.comm = model::Cost::zero();
  p.comp = model::Cost::linear(alpha);
  platform.processors.push_back(p);
  return platform;
}

TEST(Robustness, EmptyPlatformRejectedEverywhere) {
  model::Platform empty;
  EXPECT_THROW(core::plan_scatter(empty, 10), Error);
  EXPECT_THROW(core::exact_dp(empty, 10), Error);
  EXPECT_THROW(core::optimized_dp(empty, 10), Error);
  EXPECT_THROW(core::lp_heuristic(empty, 10), Error);
  EXPECT_THROW(core::optimize_roundtrip(empty, 10, {}), Error);
}

TEST(Robustness, NegativeItemsRejectedEverywhere) {
  auto platform = solo_platform(1.0);
  EXPECT_THROW(core::plan_scatter(platform, -1), Error);
  EXPECT_THROW(core::exact_dp(platform, -1), Error);
  EXPECT_THROW(core::lp_heuristic(platform, -1), Error);
  EXPECT_THROW(core::optimize_roundtrip(platform, -1, {}), Error);
  EXPECT_THROW(core::uniform_distribution(-1, 2), Error);
}

TEST(Robustness, ZeroItemsIsAlwaysAValidPlan) {
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  for (auto algorithm :
       {core::Algorithm::Auto, core::Algorithm::ExactDp, core::Algorithm::OptimizedDp,
        core::Algorithm::LpHeuristic, core::Algorithm::Uniform}) {
    auto plan = core::plan_scatter(platform, 0, algorithm);
    EXPECT_EQ(plan.distribution.total(), 0);
    EXPECT_EQ(plan.predicted_makespan, 0.0);
  }
}

TEST(Robustness, OneItemOneProcessor) {
  auto platform = solo_platform(2.5);
  auto plan = core::plan_scatter(platform, 1);
  EXPECT_EQ(plan.distribution.counts, (std::vector<long long>{1}));
  EXPECT_DOUBLE_EQ(plan.predicted_makespan, 2.5);
}

TEST(Robustness, FewerItemsThanProcessorsStillBalances) {
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  auto plan = core::plan_scatter(platform, 5);  // 5 items, 16 processors
  EXPECT_EQ(plan.distribution.total(), 5);
  for (long long c : plan.distribution.counts) {
    EXPECT_GE(c, 0);
    EXPECT_LE(c, 5);
  }
  // Must beat the uniform baseline's worst case (which puts an item on
  // the slow `seven` machine).
  auto uniform = core::plan_scatter(platform, 5, core::Algorithm::Uniform);
  EXPECT_LE(plan.predicted_makespan, uniform.predicted_makespan);
}

TEST(Robustness, RoundingAllZeroShares) {
  std::vector<double> shares{0.0, 0.0, 0.0};
  auto dist = core::round_distribution(shares, 0);
  EXPECT_EQ(dist.counts, (std::vector<long long>{0, 0, 0}));
}

TEST(Robustness, SimulatorCallbackSchedulingAtNow) {
  // A callback scheduling another event at the current instant must run
  // it in the same drain, after all earlier-queued same-time events.
  des::Simulator sim;
  std::vector<int> order;
  sim.schedule(1.0, [&] {
    order.push_back(1);
    sim.schedule(0.0, [&] { order.push_back(3); });
  });
  sim.schedule(1.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Robustness, SerialResourceReentrantRequests) {
  // A completion callback enqueuing a new request must not deadlock or
  // skip the FIFO order.
  des::Simulator sim;
  des::SerialResource port(sim);
  std::vector<double> completions;
  sim.schedule(0.0, [&] {
    port.request(1.0, [&] {
      completions.push_back(sim.now());
      port.request(1.0, [&] { completions.push_back(sim.now()); });
    });
    port.request(2.0, [&] { completions.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_DOUBLE_EQ(completions[0], 1.0);  // first request
  EXPECT_DOUBLE_EQ(completions[1], 3.0);  // second (queued before re-entrant)
  EXPECT_DOUBLE_EQ(completions[2], 4.0);  // re-entrant request
}

TEST(Robustness, InstallmentsExceedingItemsDegradeGracefully) {
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  core::Distribution tiny;
  tiny.counts.assign(static_cast<std::size_t>(platform.size()), 0);
  tiny.counts[0] = 3;
  // 100 installments of 3 items: 97 empty chunks skipped.
  double makespan_100 = core::installment_makespan(platform, tiny, 100);
  double makespan_3 = core::installment_makespan(platform, tiny, 3);
  EXPECT_DOUBLE_EQ(makespan_100, makespan_3);
}

TEST(Robustness, TabulatedFlatTailExtrapolation) {
  // A cost that plateaus: extrapolation continues the last (zero) slope.
  auto cost = model::Cost::tabulated({{10, 5.0}, {20, 5.0}});
  EXPECT_DOUBLE_EQ(cost(30), 5.0);
  EXPECT_TRUE(cost.is_increasing());
}

TEST(Robustness, PlannerOnChunkyCostsFindsChunkBoundaries) {
  // Chunked comm costs: the DP should exploit the free capacity below a
  // chunk boundary (sending 4 costs the same step as sending 1..4).
  model::Platform platform;
  model::Processor worker;
  worker.label = "chunky";
  worker.comm = model::Cost::chunked(0.0, 4, 1.0);  // 1 s per 4-item chunk
  worker.comp = model::Cost::linear(0.1);
  platform.processors.push_back(worker);
  model::Processor root;
  root.label = "root";
  root.comm = model::Cost::zero();
  root.comp = model::Cost::linear(0.1);
  platform.processors.push_back(root);

  auto result = core::optimized_dp(platform, 8);
  // Makespan should reflect an even-ish split; the worker's comm cost is
  // step-shaped so its share lands just under a chunk boundary.
  EXPECT_LE(result.cost, 1.0 + 0.45);
  EXPECT_EQ(result.distribution.total(), 8);
}

TEST(Robustness, UniformBaselineMatchesMpiScatterSemantics) {
  // MPI_Scatter gives exactly floor(n/p) to everyone (the paper's code
  // handled the remainder separately); our uniform baseline spreads the
  // remainder over the first ranks — both sum to n and differ by <= 1.
  auto dist = core::uniform_distribution(817101, 16);
  long long lo = *std::min_element(dist.counts.begin(), dist.counts.end());
  long long hi = *std::max_element(dist.counts.begin(), dist.counts.end());
  EXPECT_EQ(hi - lo, 1);
  EXPECT_EQ(dist.total(), 817101);
}

// --- Fault-recovery corner cases (mq::scatterv_ft + core::recovery) ------

model::Platform tiny_platform(int workers) {
  model::Platform platform;
  for (int i = 0; i < workers; ++i) {
    model::Processor p;
    p.label = "w" + std::to_string(i);
    p.comm = model::Cost::linear(1.0);
    p.comp = model::Cost::linear(0.5);
    platform.processors.push_back(p);
  }
  model::Processor root;
  root.label = "root";
  root.comm = model::Cost::zero();
  root.comp = model::Cost::linear(0.5);
  platform.processors.push_back(root);
  return platform;
}

struct FtOutcome {
  std::vector<std::vector<double>> shares;
  mq::FaultReport report;
};

FtOutcome run_ft(const model::Platform& platform,
                 const std::vector<long long>& counts,
                 const mq::FaultPlan& faults) {
  const int ranks = platform.size();
  const int root = ranks - 1;
  std::vector<double> items(static_cast<std::size_t>(
      std::accumulate(counts.begin(), counts.end(), 0LL)));
  std::iota(items.begin(), items.end(), 0.0);

  mq::RuntimeOptions options;
  options.ranks = ranks;
  options.faults = faults;
  options.link_cost = mq::make_link_cost(platform, sizeof(double));

  mq::ScattervFtOptions ft;
  ft.replan = core::make_ft_replanner(platform);

  FtOutcome outcome;
  outcome.shares.resize(static_cast<std::size_t>(ranks));
  std::mutex mutex;
  mq::Runtime::run(options, [&](mq::Comm& comm) {
    mq::FaultReport report;
    auto share = comm.scatterv_ft<double>(root, items, counts, ft,
                                          comm.rank() == root ? &report : nullptr);
    std::lock_guard lock(mutex);
    outcome.shares[static_cast<std::size_t>(comm.rank())] = std::move(share);
    if (comm.rank() == root) outcome.report = std::move(report);
  });
  return outcome;
}

TEST(Robustness, CrashOfZeroItemRankIsANoOpRecovery) {
  auto platform = tiny_platform(3);
  mq::FaultPlan faults;
  faults.crashes.push_back({1, 0.0});
  auto outcome = run_ft(platform, {4, 0, 4, 2}, faults);

  // The victim held nothing, so nothing is re-routed and nobody replans.
  ASSERT_EQ(outcome.report.deaths.size(), 1u);
  EXPECT_EQ(outcome.report.deaths[0].rank, 1);
  EXPECT_EQ(outcome.report.deaths[0].undelivered, 0);
  EXPECT_EQ(outcome.report.rerouted_items, 0);
  EXPECT_EQ(outcome.report.replan_rounds, 0);
  EXPECT_EQ(outcome.report.total_delivered(), 10);
  EXPECT_EQ(outcome.shares[0].size(), 4u);
  EXPECT_EQ(outcome.shares[2].size(), 4u);
}

TEST(Robustness, CrashOfLargestShareRankConservesTotals) {
  auto platform = tiny_platform(3);
  mq::FaultPlan faults;
  faults.crashes.push_back({0, 0.0});
  auto outcome = run_ft(platform, {20, 3, 3, 4}, faults);

  ASSERT_EQ(outcome.report.deaths.size(), 1u);
  EXPECT_EQ(outcome.report.deaths[0].rank, 0);
  EXPECT_EQ(outcome.report.deaths[0].undelivered, 20);
  EXPECT_EQ(outcome.report.rerouted_items, 20);
  EXPECT_EQ(outcome.report.total_delivered(), 30);
  EXPECT_TRUE(outcome.shares[0].empty());

  // Every item delivered exactly once across the survivors.
  std::vector<double> received;
  for (const auto& share : outcome.shares) {
    received.insert(received.end(), share.begin(), share.end());
  }
  std::sort(received.begin(), received.end());
  std::vector<double> expected(30);
  std::iota(expected.begin(), expected.end(), 0.0);
  EXPECT_EQ(received, expected);
}

TEST(Robustness, AllWorkersDeadFailsWithErrorNotHang) {
  auto platform = tiny_platform(2);
  mq::FaultPlan faults;
  faults.crashes.push_back({0, 0.0});
  faults.crashes.push_back({1, 0.0});
  EXPECT_THROW(run_ft(platform, {3, 3, 2}, faults), Error);
}

TEST(Robustness, ReducePlatformValidatesPositions) {
  auto platform = tiny_platform(3);
  EXPECT_THROW(core::reduce_platform(platform, {}), Error);
  EXPECT_THROW(core::reduce_platform(platform, {0, 4}), Error);
  EXPECT_THROW(core::reduce_platform(platform, {0, 0, 3}), Error);
  auto reduced = core::reduce_platform(platform, {0, 2, 3});
  ASSERT_EQ(reduced.size(), 3);
  EXPECT_EQ(reduced[0].label, "w0");
  EXPECT_EQ(reduced[2].label, "root");
}

TEST(Robustness, FtReplannerHandlesZeroRemainder) {
  auto platform = tiny_platform(3);
  auto replan = core::make_ft_replanner(platform);
  auto counts = replan({0, 2, 3}, 0);
  EXPECT_EQ(counts, (std::vector<long long>{0, 0, 0}));
}

}  // namespace
}  // namespace lbs
