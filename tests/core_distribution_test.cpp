#include "core/distribution.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace lbs::core {
namespace {

model::Platform tiny_platform() {
  // Three workers plus root: Tcomm slopes 1, 2, 3, 0; Tcomp slopes 10, 5, 2, 4.
  model::Platform platform;
  auto add = [&](double beta, double alpha, const std::string& label) {
    model::Processor p;
    p.label = label;
    p.comm = model::Cost::linear(beta);
    p.comp = model::Cost::linear(alpha);
    platform.processors.push_back(p);
  };
  add(1.0, 10.0, "P1");
  add(2.0, 5.0, "P2");
  add(3.0, 2.0, "P3");
  add(0.0, 4.0, "root");
  return platform;
}

TEST(Distribution, TotalAndDisplacements) {
  Distribution dist{{3, 0, 5, 2}};
  EXPECT_EQ(dist.total(), 10);
  auto displs = dist.displacements();
  ASSERT_EQ(displs.size(), 4u);
  EXPECT_EQ(displs[0], 0);
  EXPECT_EQ(displs[1], 3);
  EXPECT_EQ(displs[2], 3);
  EXPECT_EQ(displs[3], 8);
}

TEST(Uniform, EvenSplit) {
  auto dist = uniform_distribution(12, 4);
  EXPECT_EQ(dist.counts, (std::vector<long long>{3, 3, 3, 3}));
}

TEST(Uniform, RemainderGoesToFirstProcessors) {
  auto dist = uniform_distribution(14, 4);
  EXPECT_EQ(dist.counts, (std::vector<long long>{4, 4, 3, 3}));
  EXPECT_EQ(dist.total(), 14);
}

TEST(Uniform, FewerItemsThanProcessors) {
  auto dist = uniform_distribution(2, 5);
  EXPECT_EQ(dist.counts, (std::vector<long long>{1, 1, 0, 0, 0}));
}

TEST(Uniform, ZeroItems) {
  auto dist = uniform_distribution(0, 3);
  EXPECT_EQ(dist.total(), 0);
}

TEST(Uniform, InvalidArgumentsThrow) {
  EXPECT_THROW(uniform_distribution(-1, 3), lbs::Error);
  EXPECT_THROW(uniform_distribution(5, 0), lbs::Error);
}

TEST(FinishTimes, MatchesEquationOneByHand) {
  // Eq. 1: T_i = sum_{j<=i} Tcomm(j, n_j) + Tcomp(i, n_i).
  auto platform = tiny_platform();
  Distribution dist{{1, 2, 3, 4}};
  auto times = finish_times(platform, dist);
  ASSERT_EQ(times.size(), 4u);
  // T_1 = 1*1 + 10*1 = 11
  EXPECT_DOUBLE_EQ(times[0], 11.0);
  // T_2 = 1 + 2*2 + 5*2 = 15
  EXPECT_DOUBLE_EQ(times[1], 15.0);
  // T_3 = 1 + 4 + 3*3 + 2*3 = 20
  EXPECT_DOUBLE_EQ(times[2], 20.0);
  // T_root = 1 + 4 + 9 + 0 + 4*4 = 30
  EXPECT_DOUBLE_EQ(times[3], 30.0);
  EXPECT_DOUBLE_EQ(makespan(platform, dist), 30.0);
}

TEST(FinishTimes, ZeroShareCostsNothing) {
  auto platform = tiny_platform();
  Distribution dist{{0, 0, 0, 10}};
  auto times = finish_times(platform, dist);
  EXPECT_DOUBLE_EQ(times[0], 0.0);
  EXPECT_DOUBLE_EQ(times[1], 0.0);
  EXPECT_DOUBLE_EQ(times[2], 0.0);
  EXPECT_DOUBLE_EQ(times[3], 40.0);
}

TEST(FinishTimes, SizeMismatchThrows) {
  auto platform = tiny_platform();
  Distribution dist{{1, 2}};
  EXPECT_THROW(finish_times(platform, dist), lbs::Error);
}

TEST(FinishTimes, NegativeCountThrows) {
  auto platform = tiny_platform();
  Distribution dist{{1, -2, 3, 4}};
  EXPECT_THROW(finish_times(platform, dist), lbs::Error);
}

TEST(CommWindows, SerializedInTurn) {
  // The single-port root serves receivers in turn: windows are contiguous
  // and ordered — the paper's "stair effect".
  auto platform = tiny_platform();
  Distribution dist{{1, 2, 3, 4}};
  auto windows = comm_windows(platform, dist);
  EXPECT_DOUBLE_EQ(windows.start[0], 0.0);
  EXPECT_DOUBLE_EQ(windows.end[0], 1.0);
  EXPECT_DOUBLE_EQ(windows.start[1], 1.0);
  EXPECT_DOUBLE_EQ(windows.end[1], 5.0);
  EXPECT_DOUBLE_EQ(windows.start[2], 5.0);
  EXPECT_DOUBLE_EQ(windows.end[2], 14.0);
  // Root "receives" instantly (zero comm cost).
  EXPECT_DOUBLE_EQ(windows.start[3], 14.0);
  EXPECT_DOUBLE_EQ(windows.end[3], 14.0);
}

TEST(Validate, AcceptsExactSum) {
  auto platform = tiny_platform();
  Distribution dist{{1, 2, 3, 4}};
  EXPECT_NO_THROW(validate(platform, dist, 10));
}

TEST(Validate, RejectsWrongSum) {
  auto platform = tiny_platform();
  Distribution dist{{1, 2, 3, 4}};
  EXPECT_THROW(validate(platform, dist, 11), lbs::Error);
}

}  // namespace
}  // namespace lbs::core
