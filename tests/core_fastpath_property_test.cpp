// Fast-path routing and bit-identity properties at the planner API level.
//
// Two families of randomized sweeps:
//
// 1. Affine platforms never pay for a DP. Algorithm::Auto must route every
//    all-affine platform to an O(p) path — the closed form when costs are
//    linear, the LP heuristic otherwise — and the returned plan must carry
//    the Eq. 4 certificate: predicted_makespan is within optimality_gap of
//    the exact-DP optimum, verified here against a real exact_dp solve.
//
// 2. The DP engine is deterministic by construction: the chunk grid is
//    fixed and every chunk is a pure function of its inputs, so thread
//    count, the AVX2 kernel, the affine monotone-stack kernel, and the
//    divide&conquer memory mode (even forced into deep recursion) must all
//    reproduce the serial distribution AND makespan bit-for-bit — EXPECT_EQ
//    on the doubles, not a tolerance.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/dp.hpp"
#include "core/planner.hpp"
#include "model/testbed.hpp"
#include "support/rng.hpp"

namespace lbs::core {
namespace {

// Random affine platform; `linear` zeroes every fixed term so Auto takes
// the closed-form route instead of the LP heuristic.
model::Platform random_affine_platform(support::Rng& rng, int p, bool linear) {
  model::Platform platform;
  for (int i = 0; i < p; ++i) {
    model::Processor proc;
    proc.label = "P" + std::to_string(i);
    bool is_root = i + 1 == p;
    double comm_fixed = linear ? 0.0 : rng.uniform(1e-5, 5e-3);
    double comp_fixed = linear ? 0.0 : rng.uniform(1e-5, 5e-3);
    proc.comm = is_root ? model::Cost::zero()
              : linear  ? model::Cost::linear(rng.uniform(1e-4, 2e-2))
                        : model::Cost::affine(comm_fixed, rng.uniform(1e-4, 2e-2));
    proc.comp = linear ? model::Cost::linear(rng.uniform(1e-3, 5e-2))
                       : model::Cost::affine(comp_fixed, rng.uniform(1e-3, 5e-2));
    platform.processors.push_back(proc);
  }
  return platform;
}

// Random increasing-but-not-affine platform: chunked communication costs
// exercise the classic downward-scan kernel instead of the affine stack.
model::Platform random_chunked_platform(support::Rng& rng, int p, long long n) {
  model::Platform platform;
  for (int i = 0; i < p; ++i) {
    model::Processor proc;
    proc.label = "C" + std::to_string(i);
    bool is_root = i + 1 == p;
    long long chunk = rng.uniform_int(2, std::max<long long>(3, n / 4));
    proc.comm = is_root ? model::Cost::zero()
                        : model::Cost::chunked(rng.uniform(1e-4, 2e-2), chunk,
                                               rng.uniform(1e-4, 1e-2));
    proc.comp = model::Cost::affine(rng.uniform(0.0, 1e-3), rng.uniform(1e-3, 5e-2));
    platform.processors.push_back(proc);
  }
  return platform;
}

class AffineFastPathTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AffineFastPathTest, AutoRoutesAffineToFastPathWithinEq4Bound) {
  support::Rng rng(GetParam());
  for (int trial = 0; trial < 4; ++trial) {
    int p = static_cast<int>(rng.uniform_int(2, 8));
    long long n = rng.uniform_int(1, 1200);
    bool linear = trial % 2 == 0;
    auto platform = random_affine_platform(rng, p, linear);
    ASSERT_TRUE(platform.all_costs_affine());

    ScatterPlan plan = plan_scatter(platform, n);
    SCOPED_TRACE("seed " + std::to_string(GetParam()) + " trial " +
                 std::to_string(trial) + " p=" + std::to_string(p) +
                 " n=" + std::to_string(n));

    // Never a DP: affine costs always have an O(p) route.
    EXPECT_NE(plan.algorithm_used, Algorithm::ExactDp);
    EXPECT_NE(plan.algorithm_used, Algorithm::OptimizedDp);
    EXPECT_EQ(plan.algorithm_used,
              linear ? Algorithm::LinearClosedForm : Algorithm::LpHeuristic);

    // The Eq. 4 certificate rides on the plan and is honest: the plan's
    // makespan is within the claimed gap of the true integral optimum.
    ASSERT_TRUE(plan.has_optimality_bound);
    EXPECT_GE(plan.optimality_gap, 0.0);
    auto exact = exact_dp(platform, n);
    EXPECT_LE(plan.predicted_makespan,
              exact.cost + plan.optimality_gap + 1e-9 * (1.0 + exact.cost));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AffineFastPathTest,
                         ::testing::Values(701u, 702u, 703u, 704u, 705u));

// Runs optimized_dp under `options` and requires a bit-for-bit match with
// the serial reference: same counts, same makespan double.
void expect_bit_identical(const model::Platform& platform, long long n,
                          const DpResult& reference, DpOptions options,
                          const std::string& what) {
  auto variant = optimized_dp(platform, n, options);
  EXPECT_EQ(variant.distribution.counts, reference.distribution.counts) << what;
  EXPECT_EQ(variant.cost, reference.cost) << what;  // exact ==, not NEAR
}

class DpBitIdentityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DpBitIdentityTest, EveryVariantReproducesSerialBitForBit) {
  support::Rng rng(GetParam());
  for (int trial = 0; trial < 3; ++trial) {
    int p = static_cast<int>(rng.uniform_int(2, 6));
    long long n = rng.uniform_int(50, 3000);
    bool affine = trial % 2 == 0;
    auto platform = affine ? random_affine_platform(rng, p, /*linear=*/false)
                           : random_chunked_platform(rng, p, n);
    ASSERT_TRUE(platform.all_costs_increasing());
    SCOPED_TRACE("seed " + std::to_string(GetParam()) + " trial " +
                 std::to_string(trial) + (affine ? " affine" : " chunked") +
                 " p=" + std::to_string(p) + " n=" + std::to_string(n));

    DpOptions serial;
    serial.threads = 1;
    auto reference = optimized_dp(platform, n, serial);

    for (int threads : {2, 3, 8}) {
      DpOptions opts;
      opts.threads = threads;
      expect_bit_identical(platform, n, reference, opts,
                           "threads=" + std::to_string(threads));
    }
    DpOptions dc;
    dc.memory = DpMemory::DivideConquer;
    dc.dc_table_bytes = 1;  // force recursion all the way down
    expect_bit_identical(platform, n, reference, dc, "divide&conquer deep");
    dc.threads = 3;
    expect_bit_identical(platform, n, reference, dc, "divide&conquer deep, 3 threads");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpBitIdentityTest,
                         ::testing::Values(811u, 812u, 813u));

TEST(DpBitIdentity, ExactDpSimdAndThreadsMatchScalarSerial) {
  support::Rng rng(4242);
  for (int trial = 0; trial < 2; ++trial) {
    int p = static_cast<int>(rng.uniform_int(2, 6));
    long long n = rng.uniform_int(50, 800);
    auto platform = random_affine_platform(rng, p, /*linear=*/false);
    SCOPED_TRACE("trial " + std::to_string(trial) + " p=" + std::to_string(p) +
                 " n=" + std::to_string(n));

    DpOptions scalar_serial;
    scalar_serial.threads = 1;
    scalar_serial.allow_simd = false;
    auto reference = exact_dp(platform, n, scalar_serial);

    for (bool simd : {false, true}) {
      for (int threads : {1, 3}) {
        DpOptions opts;
        opts.threads = threads;
        opts.allow_simd = simd;
        auto variant = exact_dp(platform, n, opts);
        EXPECT_EQ(variant.distribution.counts, reference.distribution.counts)
            << "simd=" << simd << " threads=" << threads;
        EXPECT_EQ(variant.cost, reference.cost)
            << "simd=" << simd << " threads=" << threads;
      }
    }
  }
}

TEST(DpBitIdentity, AffineStackKernelMatchesAcrossChunkBoundaries) {
  // n beyond one scheduling chunk, so parallel runs rebuild the affine
  // kernel's monotone stack per chunk — the rebuilt prefix must select
  // exactly the cells the single serial stack selects.
  support::Rng rng(5151);
  auto platform = random_affine_platform(rng, 5, /*linear=*/false);
  const long long n = 100'001;

  DpOptions serial;
  serial.threads = 1;
  auto reference = optimized_dp(platform, n, serial);

  DpOptions parallel;
  parallel.threads = 3;
  expect_bit_identical(platform, n, reference, parallel, "3 threads");

  DpOptions dc;
  dc.memory = DpMemory::DivideConquer;
  dc.dc_table_bytes = 1 << 20;
  expect_bit_identical(platform, n, reference, dc, "divide&conquer 1 MiB budget");
}

}  // namespace
}  // namespace lbs::core
