#include "seismic/inversion.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace lbs::seismic {
namespace {

// Ground truth: PREM-like with the lower mantle 3% slower (the anomaly
// the inversion should recover).
EarthModel perturbed_truth() {
  auto shells = EarthModel::prem_like().shells();
  for (auto& shell : shells) {
    if (shell.name == "lower mantle") shell.velocity_km_s /= 1.03;
  }
  return EarthModel(std::move(shells));
}

std::vector<SeismicEvent> p_wave_catalog(int count, std::uint64_t seed) {
  support::Rng rng(seed);
  auto events = generate_catalog(rng, count);
  for (auto& event : events) event.wave = WaveType::P;  // single-phase inversion
  return events;
}

std::vector<double> observe(const EarthModel& truth,
                            const std::vector<SeismicEvent>& events) {
  std::vector<double> times;
  times.reserve(events.size());
  for (const auto& event : events) {
    times.push_back(trace_ray(truth, event).travel_time_s);
  }
  return times;
}

TEST(RayShellTimes, SumToTotalTravelTime) {
  auto model = EarthModel::prem_like();
  SeismicEvent event{};
  event.receiver_lon_deg = 60.0;
  event.wave = WaveType::P;
  auto path = trace_ray(model, event);
  double sum = 0.0;
  for (double t : path.time_per_shell) sum += t;
  EXPECT_NEAR(sum, path.travel_time_s, 1e-9 * path.travel_time_s);
  ASSERT_EQ(path.time_per_shell.size(), model.shells().size());
  // A 60-degree P ray turns in the lower mantle: no core time.
  EXPECT_EQ(path.time_per_shell[0], 0.0);  // inner core
  EXPECT_EQ(path.time_per_shell[1], 0.0);  // outer core
  EXPECT_GT(path.time_per_shell[2], 0.0);  // lower mantle
}

TEST(TomographicSystem, EmptySystemIsClean) {
  TomographicSystem system(8);
  EXPECT_EQ(system.ray_count(), 0);
  EXPECT_EQ(system.rms_misfit(), 0.0);
  auto scales = system.solve();
  for (double s : scales) EXPECT_DOUBLE_EQ(s, 1.0);
}

TEST(TomographicSystem, PerfectDataGivesUnitScales) {
  auto model = EarthModel::prem_like();
  auto events = p_wave_catalog(40, 1);
  TomographicSystem system(model.shells().size());
  for (const auto& event : events) {
    auto path = trace_ray(model, event);
    if (!path.converged) continue;
    system.add_ray(path.time_per_shell, path.travel_time_s);  // observed == predicted
  }
  EXPECT_NEAR(system.rms_misfit(), 0.0, 1e-9);
  for (double s : system.solve()) EXPECT_NEAR(s, 1.0, 1e-9);
}

TEST(TomographicSystem, SingleShellExactRecovery) {
  // One shell, rays spending t seconds in it, observed 1.1*t: with tiny
  // damping the scale must come out ~1.1.
  TomographicSystem system(1);
  for (int i = 1; i <= 10; ++i) {
    double t = static_cast<double>(i);
    system.add_ray({t}, 1.1 * t);
  }
  auto scales = system.solve(1e-9);
  EXPECT_NEAR(scales[0], 1.1, 1e-6);
}

TEST(TomographicSystem, MergeEqualsJointAccumulation) {
  auto model = EarthModel::prem_like();
  auto events = p_wave_catalog(30, 2);
  auto truth = perturbed_truth();
  auto observed = observe(truth, events);

  TomographicSystem joint(model.shells().size());
  TomographicSystem part1(model.shells().size());
  TomographicSystem part2(model.shells().size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    auto path = trace_ray(model, events[i]);
    if (!path.converged) continue;
    joint.add_ray(path.time_per_shell, observed[i]);
    (i % 2 == 0 ? part1 : part2).add_ray(path.time_per_shell, observed[i]);
  }
  part1.merge(part2);
  EXPECT_EQ(part1.ray_count(), joint.ray_count());
  EXPECT_NEAR(part1.rms_misfit(), joint.rms_misfit(), 1e-12);
  auto a = part1.solve();
  auto b = joint.solve();
  for (std::size_t s = 0; s < a.size(); ++s) EXPECT_NEAR(a[s], b[s], 1e-12);
}

TEST(TomographicSystem, SerializeRoundTrips) {
  auto model = EarthModel::prem_like();
  auto events = p_wave_catalog(20, 3);
  auto observed = observe(perturbed_truth(), events);
  TomographicSystem system(model.shells().size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    auto path = trace_ray(model, events[i]);
    if (!path.converged) continue;
    system.add_ray(path.time_per_shell, observed[i]);
  }
  auto restored =
      TomographicSystem::deserialize(model.shells().size(), system.serialize());
  EXPECT_EQ(restored.ray_count(), system.ray_count());
  EXPECT_NEAR(restored.rms_misfit(), system.rms_misfit(), 1e-12);
  auto a = restored.solve();
  auto b = system.solve();
  for (std::size_t s = 0; s < a.size(); ++s) EXPECT_NEAR(a[s], b[s], 1e-12);
}

TEST(TomographicSystem, DeserializeRejectsBadSize) {
  EXPECT_THROW(TomographicSystem::deserialize(8, std::vector<double>(5)), lbs::Error);
}

TEST(ApplyScales, DividesVelocities) {
  auto model = EarthModel::prem_like();
  std::vector<double> scales(model.shells().size(), 1.0);
  scales[2] = 1.05;  // lower mantle 5% slower
  auto updated = apply_scales(model, scales);
  EXPECT_NEAR(updated.shells()[2].velocity_km_s,
              model.shells()[2].velocity_km_s / 1.05, 1e-12);
  EXPECT_EQ(updated.shells()[0].velocity_km_s, model.shells()[0].velocity_km_s);
}

TEST(ApplyScales, RejectsBadInput) {
  auto model = EarthModel::prem_like();
  EXPECT_THROW(apply_scales(model, std::vector<double>(3, 1.0)), lbs::Error);
  std::vector<double> negative(model.shells().size(), 1.0);
  negative[0] = -1.0;
  EXPECT_THROW(apply_scales(model, negative), lbs::Error);
}

// Teleseismic mantle-P rays at controlled distances (25-95 degrees):
// clean single-branch geometry sampling the upper and lower mantle, the
// regime real tomography uses. Random catalogs include shadow-zone and
// triplication rays whose branch can differ between the two models,
// producing outliers that don't test the update step itself.
std::vector<SeismicEvent> teleseismic_fan() {
  std::vector<SeismicEvent> events;
  for (double distance = 25.0; distance <= 95.0; distance += 0.5) {
    SeismicEvent event{};
    event.receiver_lon_deg = distance;
    event.wave = WaveType::P;
    events.push_back(event);
  }
  return events;
}

TEST(InvertRound, ReducesMisfitAgainstPerturbedTruth) {
  auto start = EarthModel::prem_like();
  auto truth = perturbed_truth();
  auto events = teleseismic_fan();
  auto observed = observe(truth, events);

  auto round = invert_round(start, events.data(), events.size(), observed.data(),
                            /*damping=*/0.001);
  EXPECT_GT(round.rays_used, 100);
  EXPECT_GT(round.rms_before, 1.0);  // a 3% lower-mantle anomaly is seconds of misfit
  EXPECT_LT(round.rms_after, 0.5 * round.rms_before);

  // The lower-mantle scale moves toward the true 1.03 slowness factor.
  EXPECT_GT(round.scales[2], 1.01);
  EXPECT_LT(round.scales[2], 1.05);
  // The unsampled inner core stays put.
  EXPECT_NEAR(round.scales[0], 1.0, 0.02);
}

TEST(InvertRound, IterationStaysAtNoiseFloorAfterRecovery) {
  // Round 0 recovers the anomaly (rms drops by an order of magnitude);
  // later rounds cannot improve below the shooting method's re-trace
  // noise (the ray branch jitters slightly between models), so the test
  // asserts stability near that floor rather than monotone decrease.
  auto truth = perturbed_truth();
  auto events = teleseismic_fan();
  auto observed = observe(truth, events);

  EarthModel current = EarthModel::prem_like();
  auto first = invert_round(current, events.data(), events.size(), observed.data(),
                            /*damping=*/0.1);
  EXPECT_LT(first.rms_after, 0.2 * first.rms_before);
  current = first.updated;

  for (int iteration = 1; iteration < 3; ++iteration) {
    auto round = invert_round(current, events.data(), events.size(), observed.data(),
                              0.1);
    EXPECT_LT(round.rms_after, 2.5);  // stays at the noise floor, no divergence
    for (double scale : round.scales) {
      EXPECT_GT(scale, 0.95);
      EXPECT_LT(scale, 1.05);
    }
    current = round.updated;
  }
  // The net model still carries the recovered anomaly: lower mantle ~3%
  // slower than PREM-like.
  double recovered = EarthModel::prem_like().shells()[2].velocity_km_s /
                     current.shells()[2].velocity_km_s;
  EXPECT_NEAR(recovered, 1.03, 0.01);
}

}  // namespace
}  // namespace lbs::seismic
