#include "support/svg.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "support/error.hpp"

namespace lbs::support {
namespace {

std::vector<GanttRow> sample_rows() {
  return {
      {"P1", {{0.0, 1.0, PhaseKind::Receive}, {1.0, 4.0, PhaseKind::Compute}}},
      {"P2",
       {{1.0, 2.0, PhaseKind::Receive},
        {2.0, 5.0, PhaseKind::Compute},
        {5.0, 5.5, PhaseKind::Send}}},
  };
}

TEST(SvgGantt, ProducesWellFormedDocument) {
  auto svg = render_svg_gantt(sample_rows());
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("xmlns=\"http://www.w3.org/2000/svg\""), std::string::npos);
  // Tag discipline: every '<' has a matching '>', and rect/line elements
  // are self-closing.
  EXPECT_EQ(std::count(svg.begin(), svg.end(), '<'),
            std::count(svg.begin(), svg.end(), '>'));
  std::size_t rects = 0, pos = 0;
  while ((pos = svg.find("<rect", pos)) != std::string::npos) {
    std::size_t close = svg.find('>', pos);
    ASSERT_NE(close, std::string::npos);
    EXPECT_EQ(svg[close - 1], '/');
    pos = close;
    ++rects;
  }
  EXPECT_GT(rects, sample_rows().size());  // backgrounds + phase bars
}

TEST(SvgGantt, ContainsLabelsAndPhases) {
  auto svg = render_svg_gantt(sample_rows());
  EXPECT_NE(svg.find(">P1<"), std::string::npos);
  EXPECT_NE(svg.find(">P2<"), std::string::npos);
  EXPECT_NE(svg.find("#4878a8"), std::string::npos);  // receive
  EXPECT_NE(svg.find("#e08a3c"), std::string::npos);  // compute
  EXPECT_NE(svg.find("#5a9a68"), std::string::npos);  // send
  EXPECT_NE(svg.find("receiving"), std::string::npos);
  EXPECT_NE(svg.find("computing"), std::string::npos);
}

TEST(SvgGantt, TitleIsEscaped) {
  SvgOptions options;
  options.title = "scatter <n & \"m\">";
  auto svg = render_svg_gantt(sample_rows(), options);
  EXPECT_NE(svg.find("scatter &lt;n &amp; &quot;m&quot;&gt;"), std::string::npos);
  EXPECT_EQ(svg.find("<n &"), std::string::npos);
}

TEST(SvgGantt, EmptyRowsStillRender) {
  auto svg = render_svg_gantt({});
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(SvgGantt, TooNarrowThrows) {
  SvgOptions options;
  options.width_px = 100;
  options.label_width_px = 90;
  EXPECT_THROW(render_svg_gantt(sample_rows(), options), Error);
}

TEST(SvgGantt, WritesToFile) {
  std::string path = "/tmp/lbs_svg_test.svg";
  write_svg_gantt(path, sample_rows());
  std::ifstream file(path);
  ASSERT_TRUE(static_cast<bool>(file));
  std::string first_line;
  std::getline(file, first_line);
  EXPECT_EQ(first_line.rfind("<svg", 0), 0u);
  file.close();
  std::remove(path.c_str());
}

TEST(SvgGantt, BadPathThrows) {
  EXPECT_THROW(write_svg_gantt("/nonexistent-dir/x.svg", sample_rows()), Error);
}

}  // namespace
}  // namespace lbs::support
