// Unit tests for the obs tracing layer: per-thread rings, drop accounting,
// log normalization, and the Chrome trace_event export.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/chrome_trace.hpp"
#include "obs/trace.hpp"

namespace lbs::obs {
namespace {

TraceEvent make_span(EventType type, int rank, int peer, double start,
                     double duration, long long arg0 = 0) {
  TraceEvent event;
  event.type = type;
  event.rank = rank;
  event.peer = peer;
  event.start = start;
  event.duration = duration;
  event.arg0 = arg0;
  return event;
}

TEST(Tracer, GlobalTracerDefaultsToNull) {
  EXPECT_EQ(global_tracer(), nullptr);
}

TEST(Tracer, EventNamesAreStable) {
  EXPECT_STREQ(to_string(EventType::ScatterPlan), "scatter.plan");
  EXPECT_STREQ(to_string(EventType::DpSolve), "dp.solve");
  EXPECT_STREQ(to_string(EventType::CommSend), "comm.send");
  EXPECT_STREQ(to_string(EventType::CommRecv), "comm.recv");
  EXPECT_STREQ(to_string(EventType::Compute), "compute");
  EXPECT_STREQ(to_string(EventType::RecoveryReplan), "recovery.replan");
  EXPECT_STREQ(to_string(EventType::RankDeath), "rank.death");
  EXPECT_STREQ(to_string(EventType::CacheHit), "cache.hit");
  EXPECT_STREQ(to_string(EventType::CacheMiss), "cache.miss");
}

TEST(Tracer, CollectsEventsFromManyThreadsExactlyOnce) {
  Tracer tracer;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kPerThread; ++i) {
        tracer.record(make_span(EventType::CommSend, t, 0, tracer.now(), 0.0, i));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  auto log = tracer.collect();
  EXPECT_EQ(log.events.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(tracer.dropped(), 0u);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(log.of_rank(t).size(), static_cast<std::size_t>(kPerThread));
  }
  // Each event is returned exactly once: a second collect drains nothing.
  EXPECT_TRUE(tracer.collect().events.empty());

  // Recording continues after a collect; the new events show up next time.
  tracer.record(make_span(EventType::Compute, 7, -1, tracer.now(), 0.0));
  auto more = tracer.collect();
  ASSERT_EQ(more.events.size(), 1u);
  EXPECT_EQ(more.events.front().rank, 7);
}

TEST(Tracer, FullRingDropsAndCounts) {
  Tracer tracer(16);
  for (int i = 0; i < 40; ++i) {
    tracer.record(make_span(EventType::CommSend, 0, 1, 0.0, 0.0, i));
  }
  auto log = tracer.collect();
  EXPECT_EQ(log.events.size(), 16u);
  EXPECT_EQ(tracer.dropped(), 24u);
  // The surviving prefix is the oldest events, in order (drop-new policy).
  for (std::size_t i = 0; i < log.events.size(); ++i) {
    EXPECT_EQ(log.events[i].arg0, static_cast<long long>(i));
  }
}

TEST(Tracer, NowIsMonotonicAndStartsNearZero) {
  Tracer tracer;
  double a = tracer.now();
  double b = tracer.now();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  EXPECT_LT(a, 60.0);  // tracer-relative, not process-relative
  EXPECT_GT(wall_now(), 0.0);
}

TEST(TraceLog, SortOrdersByClockThenStart) {
  TraceLog log;
  auto virtual_event = make_span(EventType::Compute, 0, -1, 0.5, 1.0);
  virtual_event.clock = Clock::Virtual;
  log.events.push_back(virtual_event);
  log.events.push_back(make_span(EventType::CommSend, 1, 0, 2.0, 0.1));
  log.events.push_back(make_span(EventType::CommSend, 1, 2, 1.0, 0.1));
  log.sort();
  EXPECT_EQ(log.events[0].clock, Clock::Wall);
  EXPECT_EQ(log.events[0].start, 1.0);
  EXPECT_EQ(log.events[1].start, 2.0);
  EXPECT_EQ(log.events[2].clock, Clock::Virtual);
  EXPECT_EQ(log.of_clock(Clock::Virtual).size(), 1u);
  EXPECT_EQ(log.min_start(), 0.5);
}

TEST(TraceLog, NormalizedSummaryIgnoresTimestampsButPinsOrder) {
  auto build = [](double jitter) {
    TraceLog log;
    log.events.push_back(
        make_span(EventType::CommSend, 3, 0, 1.0 + jitter, 0.2 + jitter, 800));
    log.events.push_back(
        make_span(EventType::CommSend, 3, 1, 2.0 + jitter, 0.3, 400));
    log.events.push_back(
        make_span(EventType::Compute, 0, -1, 1.5 + jitter, 1.0, 100));
    log.sort();
    return log;
  };
  auto reference = build(0.0).normalized_summary();
  EXPECT_EQ(build(0.017).normalized_summary(), reference);
  EXPECT_EQ(reference,
            "compute rank=0 peer=-1 arg0=100 arg1=0\n"
            "comm.send rank=3 peer=0 arg0=800 arg1=0\n"
            "comm.send rank=3 peer=1 arg0=400 arg1=0\n");

  // Swapping the root's send order *is* a structural change and must show.
  TraceLog swapped;
  swapped.events.push_back(
      make_span(EventType::CommSend, 3, 1, 1.0, 0.3, 400));
  swapped.events.push_back(
      make_span(EventType::CommSend, 3, 0, 2.0, 0.2, 800));
  swapped.events.push_back(
      make_span(EventType::Compute, 0, -1, 1.5, 1.0, 100));
  EXPECT_NE(swapped.normalized_summary(), reference);
}

TEST(ChromeTrace, ExportsSpansInstantsAndBothClockDomains) {
  TraceLog log;
  log.events.push_back(make_span(EventType::CommSend, 1, 0, 10.0, 0.5, 64));
  auto instant = make_span(EventType::RankDeath, 2, -1, 10.2, 0.0, 5);
  instant.instant = true;
  log.events.push_back(instant);
  auto virtual_event = make_span(EventType::Compute, 0, -1, 3.0, 2.0, 9);
  virtual_event.clock = Clock::Virtual;
  log.events.push_back(virtual_event);
  log.sort();

  std::ostringstream out;
  write_chrome_trace(out, log);
  std::string json = out.str();

  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"comm.send\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rank.death\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);  // wall clock
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);  // virtual time
  // Each clock domain is re-anchored: the earliest wall event sits at 0 us.
  EXPECT_NE(json.find("\"ts\":0"), std::string::npos);
  // The wall span keeps its duration (0.5 s = 500000 us).
  EXPECT_NE(json.find("\"dur\":500000"), std::string::npos);
  // Balanced object: same number of { and }.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ChromeTrace, ExportGuardIsInertWithoutEnvVar) {
  ::unsetenv("LBS_TRACE");
  TraceExportGuard guard;
  EXPECT_FALSE(guard.active());
  EXPECT_EQ(global_tracer(), nullptr);
}

TEST(ChromeTrace, ExportGuardWritesFileNamedByEnvVar) {
  std::string path =
      ::testing::TempDir() + "/lbs_trace_guard_test.json";
  std::remove(path.c_str());
  ::setenv("LBS_TRACE", path.c_str(), 1);
  {
    TraceExportGuard guard;
    ASSERT_TRUE(guard.active());
    EXPECT_EQ(guard.path(), path);
    ASSERT_NE(global_tracer(), nullptr);
    global_tracer()->record(make_span(EventType::CommSend, 0, 1, 1.0, 0.5, 8));

    TraceLog extra;
    auto virtual_event = make_span(EventType::Compute, 0, -1, 0.0, 1.0, 3);
    virtual_event.clock = Clock::Virtual;
    extra.events.push_back(virtual_event);
    guard.add(extra);
  }
  ::unsetenv("LBS_TRACE");
  EXPECT_EQ(global_tracer(), nullptr);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "guard did not write " << path;
  std::stringstream content;
  content << in.rdbuf();
  std::string json = content.str();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"comm.send\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"compute\""), std::string::npos);  // merged extra
  std::remove(path.c_str());
}

TEST(Tracer, DestructorClearsGlobalRegistration) {
  {
    Tracer tracer;
    set_global_tracer(&tracer);
    EXPECT_EQ(global_tracer(), &tracer);
  }
  EXPECT_EQ(global_tracer(), nullptr);
}

}  // namespace
}  // namespace lbs::obs
