#include "core/closed_form.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/dp.hpp"
#include "core/rounding.hpp"
#include "model/testbed.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace lbs::core {
namespace {

using support::Rational;

model::Platform linear_platform(const std::vector<double>& beta,
                                const std::vector<double>& alpha) {
  model::Platform platform;
  for (std::size_t i = 0; i < beta.size(); ++i) {
    model::Processor p;
    p.label = "P" + std::to_string(i + 1);
    p.comm = model::Cost::linear(beta[i]);
    p.comp = model::Cost::linear(alpha[i]);
    platform.processors.push_back(p);
  }
  return platform;
}

TEST(DurationFactor, SingleProcessor) {
  // D(P1) = α1 + β1: t = n (α1 + β1).
  std::vector<double> alpha{2.0}, beta{0.5};
  EXPECT_DOUBLE_EQ(closed_form_duration_factor(alpha, beta), 2.5);
}

TEST(DurationFactor, TwoProcessorsByHand) {
  // α = {1, 1}, β = {1, 0}:
  // sum = 1/(1+1) + (1/(0+1)) * (1/(1+1)) = 1/2 + 1/2 = 1, D = 1.
  std::vector<double> alpha{1.0, 1.0}, beta{1.0, 0.0};
  EXPECT_DOUBLE_EQ(closed_form_duration_factor(alpha, beta), 1.0);
}

TEST(SolveLinear, TwoProcessorsByHand) {
  // Same platform, n = 10: t = 10, n1 = t/(α1+β1) = 5, n2 = t·(β1/(α1+β1))/1 = 5.
  std::vector<double> alpha{1.0, 1.0}, beta{1.0, 0.0};
  auto solution = solve_linear(alpha, beta, 10.0);
  EXPECT_DOUBLE_EQ(solution.duration, 10.0);
  EXPECT_DOUBLE_EQ(solution.share[0], 5.0);
  EXPECT_DOUBLE_EQ(solution.share[1], 5.0);
  EXPECT_TRUE(solution.active[0]);
  EXPECT_TRUE(solution.active[1]);
}

TEST(SolveLinear, SharesSumToN) {
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  auto solution = solve_linear(platform, model::kPaperRayCount);
  double sum = std::accumulate(solution.share.begin(), solution.share.end(), 0.0);
  EXPECT_NEAR(sum, static_cast<double>(model::kPaperRayCount), 1e-6);
  for (double share : solution.share) EXPECT_GE(share, 0.0);
}

TEST(SolveLinear, AllFinishSimultaneously) {
  // Finish time of each active processor equals `duration` (Theorem 1).
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  auto coeffs = linear_coefficients(platform);
  auto solution = solve_linear(platform, model::kPaperRayCount);
  double comm_elapsed = 0.0;
  for (std::size_t i = 0; i < solution.share.size(); ++i) {
    comm_elapsed += coeffs.beta[i] * solution.share[i];
    if (!solution.active[i]) continue;
    double finish = comm_elapsed + coeffs.alpha[i] * solution.share[i];
    EXPECT_NEAR(finish, solution.duration, solution.duration * 1e-12);
  }
}

TEST(SolveLinear, EliminatesProcessorWithHopelessLink) {
  // β1 enormous: sending it anything delays everyone (Theorem 2 violated).
  std::vector<double> alpha{1.0, 1.0, 1.0}, beta{1000.0, 0.1, 0.0};
  auto solution = solve_linear(alpha, beta, 100.0);
  EXPECT_FALSE(solution.active[0]);
  EXPECT_DOUBLE_EQ(solution.share[0], 0.0);
  EXPECT_TRUE(solution.active[1]);
  EXPECT_TRUE(solution.active[2]);
  double sum = std::accumulate(solution.share.begin(), solution.share.end(), 0.0);
  EXPECT_NEAR(sum, 100.0, 1e-9);
}

TEST(SolveLinear, RequiresLinearCosts) {
  model::Platform platform;
  model::Processor p;
  p.label = "affine";
  p.comm = model::Cost::affine(1.0, 0.5);
  p.comp = model::Cost::linear(1.0);
  platform.processors.push_back(p);
  EXPECT_THROW(solve_linear(platform, 10), lbs::Error);
}

TEST(SolveLinear, RejectsZeroComputeCost) {
  std::vector<double> alpha{0.0}, beta{0.0};
  EXPECT_THROW(solve_linear(alpha, beta, 10.0), lbs::Error);
}

TEST(SolveLinearExact, SimultaneousEndingIsExact) {
  // With exact rationals, Theorem 1's "all end at date t" is an equality.
  std::vector<Rational> alpha{{1, 2}, {1, 3}, {2, 1}};
  std::vector<Rational> beta{{1, 10}, {1, 5}, {0, 1}};
  Rational n(60);
  auto solution = solve_linear_exact(alpha, beta, n);

  Rational total;
  for (const auto& share : solution.share) total += share;
  EXPECT_EQ(total, n);

  Rational comm_elapsed;
  for (std::size_t i = 0; i < solution.share.size(); ++i) {
    comm_elapsed += beta[i] * solution.share[i];
    if (!solution.active[i]) continue;
    Rational finish = comm_elapsed + alpha[i] * solution.share[i];
    EXPECT_EQ(finish, solution.duration) << "processor " << i;
  }
}

TEST(SolveLinearExact, MatchesEquation7ByHand) {
  // α = {1, 1}, β = {1, 0}, n = 10 (the by-hand double case, exactly).
  std::vector<Rational> alpha{{1, 1}, {1, 1}};
  std::vector<Rational> beta{{1, 1}, {0, 1}};
  auto solution = solve_linear_exact(alpha, beta, Rational(10));
  EXPECT_EQ(solution.duration, Rational(10));
  EXPECT_EQ(solution.share[0], Rational(5));
  EXPECT_EQ(solution.share[1], Rational(5));
}

TEST(SolveLinearExact, Theorem2ConditionDecidesParticipation) {
  // Two processors: P2 is the root (β2=0, α2=1). D(P2) = 1.
  // Theorem 2: P1 works iff β1 <= D(P2) = 1.
  for (long long b : {0LL, 1LL, 2LL}) {
    std::vector<Rational> alpha{{1, 1}, {1, 1}};
    std::vector<Rational> beta{{b, 1}, {0, 1}};
    auto solution = solve_linear_exact(alpha, beta, Rational(100));
    EXPECT_EQ(solution.active[0], b <= 1) << "beta1=" << b;
  }
}

TEST(SolveLinear, RoundedSolutionNearDpOptimum) {
  // The rounded closed form must be within the Eq. 4 slack of the true
  // integer optimum computed by Algorithm 1.
  support::Rng rng(2024);
  for (int trial = 0; trial < 8; ++trial) {
    int p = static_cast<int>(rng.uniform_int(2, 5));
    long long n = rng.uniform_int(10, 60);
    std::vector<double> beta, alpha;
    for (int i = 0; i < p; ++i) {
      beta.push_back(i + 1 == p ? 0.0 : rng.uniform(0.0, 1.0));
      alpha.push_back(rng.uniform(0.2, 4.0));
    }
    auto platform = linear_platform(beta, alpha);
    auto rational = solve_linear(platform, n);
    auto rounded = round_distribution(rational.share, n);
    double rounded_makespan = makespan(platform, rounded);
    auto optimal = exact_dp(platform, n);
    double slack = rounding_guarantee_slack(platform);
    EXPECT_GE(rounded_makespan, optimal.cost - 1e-9);
    EXPECT_LE(rounded_makespan, optimal.cost + slack + 1e-9)
        << "trial " << trial << " p=" << p << " n=" << n;
  }
}

TEST(LowerBound, NeverExceedsTheOptimum) {
  // Independent certificate: every lower bound must sit at or below the
  // DP optimum and the rational optimum, on the testbed and random grids.
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  for (long long n : {0LL, 1LL, 100LL, 5000LL}) {
    double lb = makespan_lower_bound(platform, n);
    if (n > 0) {
      // The bound certifies *integer* distributions (the DP optimum); the
      // fractional optimum can dip below the single-item term at tiny n.
      EXPECT_LE(lb, optimized_dp(platform, n).cost + 1e-12) << "n=" << n;
      EXPECT_GT(lb, 0.0);
    } else {
      EXPECT_EQ(lb, 0.0);
    }
  }

  support::Rng rng(808);
  for (int trial = 0; trial < 10; ++trial) {
    model::Grid random = model::random_grid(rng, 3, /*affine=*/false);
    model::Platform rp = make_platform(random, {random.data_home(), 0});
    long long n = rng.uniform_int(1, 500);
    EXPECT_LE(makespan_lower_bound(rp, n), optimized_dp(rp, n).cost + 1e-12);
  }
}

TEST(LowerBound, IsReasonablyTightOnTheTestbed) {
  // The bound should carry real information: within ~2x of the optimum
  // at the paper's scale (work conservation dominates there).
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  long long n = model::kPaperRayCount;
  double lb = makespan_lower_bound(platform, n);
  double opt = solve_linear(platform, n).duration;
  EXPECT_GT(lb, 0.5 * opt);
}

TEST(SolveLinear, RationalDurationLowerBoundsIntegerOptimum) {
  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  long long n = 2000;
  auto rational = solve_linear(platform, n);
  auto optimal = optimized_dp(platform, n);
  EXPECT_LE(rational.duration, optimal.cost + 1e-9);
}

}  // namespace
}  // namespace lbs::core
