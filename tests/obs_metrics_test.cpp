// Metrics-layer tests: counter/histogram semantics, snapshot formats, and
// the PlanCache's hit/miss/eviction accounting — exact under LRU churn,
// consistent under concurrent plan_scatter callers (the TSan CI job runs
// this suite), and mirrored one-to-one by cache.hit/cache.miss trace
// instants. Also covers the planner/DP counters and the mq runtime's
// per-link byte and port-occupancy metrics.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <list>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/plan_cache.hpp"
#include "core/planner.hpp"
#include "model/platform.hpp"
#include "mq/platform_link.hpp"
#include "mq/runtime.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace lbs {
namespace {

model::Platform tiny_platform(int workers = 3) {
  model::Platform platform;
  for (int i = 0; i < workers; ++i) {
    model::Processor proc;
    proc.label = "w" + std::to_string(i);
    proc.comm = model::Cost::linear(1e-4 * (i + 1));
    proc.comp = model::Cost::linear(2e-3 + 1e-3 * i);
    platform.processors.push_back(proc);
  }
  model::Processor root;
  root.label = "root";
  root.comm = model::Cost::zero();
  root.comp = model::Cost::linear(3e-3);
  platform.processors.push_back(root);
  return platform;
}

TEST(Metrics, CounterAccumulates) {
  obs::Metrics metrics;
  auto& counter = metrics.counter("test.counter");
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
  // Same name resolves to the same counter.
  EXPECT_EQ(metrics.counter("test.counter").value(), 42u);
}

TEST(Metrics, HistogramTracksExactStatsAndBoundedQuantiles) {
  obs::Metrics metrics;
  auto& histogram = metrics.histogram("test.hist");
  for (double sample : {1.0, 2.0, 4.0, 8.0}) histogram.observe(sample);

  auto stats = histogram.snapshot();
  EXPECT_EQ(stats.count, 4u);
  EXPECT_DOUBLE_EQ(stats.sum, 15.0);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 8.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.75);

  // Quantiles are upper bounds from bucket boundaries, pinned to exact
  // min/max at the ends.
  EXPECT_DOUBLE_EQ(histogram.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(1.0), 8.0);
  double p50 = histogram.quantile(0.5);
  EXPECT_GE(p50, 2.0);
  EXPECT_LE(p50, 8.0);
}

TEST(Metrics, HistogramHandlesZeros) {
  obs::Metrics metrics;
  auto& histogram = metrics.histogram("zeros");
  histogram.observe(0.0);
  histogram.observe(0.0);
  auto stats = histogram.snapshot();
  EXPECT_EQ(stats.count, 2u);
  EXPECT_DOUBLE_EQ(stats.min, 0.0);
  EXPECT_DOUBLE_EQ(stats.max, 0.0);
}

TEST(Metrics, SnapshotsListEveryMetricByName) {
  obs::Metrics metrics;
  metrics.counter("alpha.count").add(3);
  metrics.histogram("beta.seconds").observe(0.5);

  std::string text = metrics.text_snapshot();
  EXPECT_NE(text.find("alpha.count 3"), std::string::npos);
  EXPECT_NE(text.find("beta.seconds count=1"), std::string::npos);

  std::string json = metrics.json_snapshot();
  EXPECT_NE(json.find("\"alpha.count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"beta.seconds\":{\"count\":1"), std::string::npos);
}

TEST(PlanCacheMetrics, HitsMissesAndEvictionsAreExact) {
  auto platform = tiny_platform();
  core::PlanCache cache(2);
  obs::Metrics metrics;
  obs::Tracer tracer;
  cache.set_metrics(&metrics);
  cache.set_tracer(&tracer);

  // miss(10), hit(10), miss(20), miss(30)+evict(10), hit(20), miss(10)+evict(30)
  cache.plan(platform, 10);
  cache.plan(platform, 10);
  cache.plan(platform, 20);
  cache.plan(platform, 30);
  cache.plan(platform, 20);
  cache.plan(platform, 10);

  auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(metrics.counter("plan_cache.hits").value(), stats.hits);
  EXPECT_EQ(metrics.counter("plan_cache.misses").value(), stats.misses);
  EXPECT_EQ(metrics.counter("plan_cache.evictions").value(), stats.evictions);

  // The trace mirrors every probe as an instant carrying the item count.
  auto log = tracer.collect();
  auto hits = log.of_type(obs::EventType::CacheHit);
  auto misses = log.of_type(obs::EventType::CacheMiss);
  ASSERT_EQ(hits.size(), 2u);
  ASSERT_EQ(misses.size(), 4u);
  EXPECT_EQ(hits[0].arg0, 10);
  EXPECT_EQ(hits[1].arg0, 20);
  EXPECT_EQ(misses.back().arg0, 10);
  for (const auto& event : hits) EXPECT_TRUE(event.instant);
}

TEST(PlanCacheMetrics, ChurnMatchesAReferenceLruExactly) {
  auto platform = tiny_platform();
  constexpr std::size_t kCapacity = 4;
  core::PlanCache cache(kCapacity);
  obs::Metrics metrics;
  cache.set_metrics(&metrics);

  // Reference LRU over the same probe sequence (keys are item counts:
  // one platform, one algorithm).
  std::list<long long> reference;  // front = most recent
  std::uint64_t hits = 0, misses = 0, evictions = 0;
  std::uint64_t seed = 12345;
  for (int i = 0; i < 200; ++i) {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    long long items = static_cast<long long>(seed >> 33) % 10 + 1;
    auto it = std::find(reference.begin(), reference.end(), items);
    if (it != reference.end()) {
      ++hits;
      reference.erase(it);
    } else {
      ++misses;
      if (reference.size() == kCapacity) {
        reference.pop_back();
        ++evictions;
      }
    }
    reference.push_front(items);

    auto plan = cache.plan(platform, items);
    EXPECT_EQ(plan.distribution.total(), items);
  }

  auto stats = cache.stats();
  EXPECT_EQ(stats.hits, hits);
  EXPECT_EQ(stats.misses, misses);
  EXPECT_EQ(stats.evictions, evictions);
  EXPECT_EQ(metrics.counter("plan_cache.hits").value(), hits);
  EXPECT_EQ(metrics.counter("plan_cache.misses").value(), misses);
  EXPECT_EQ(metrics.counter("plan_cache.evictions").value(), evictions);
  EXPECT_EQ(cache.size(), kCapacity);
}

TEST(PlanCacheMetrics, ConcurrentPlanScatterCallersStayConsistent) {
  auto platform = tiny_platform();
  core::PlanCache cache(64);
  obs::Metrics metrics;
  obs::Tracer tracer;
  cache.set_metrics(&metrics);
  cache.set_tracer(&tracer);

  constexpr int kThreads = 4;
  constexpr int kProbes = 50;
  std::atomic<int> bad_totals{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kProbes; ++i) {
        long long items = (t * 7 + i * 13) % 10 + 1;
        auto plan = cache.plan(platform, items);
        if (plan.distribution.total() != items) bad_totals.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(bad_totals.load(), 0);
  auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads * kProbes));
  EXPECT_GE(stats.misses, 10u);  // at least one per distinct key
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_LE(cache.size(), 10u);
  EXPECT_EQ(metrics.counter("plan_cache.hits").value(), stats.hits);
  EXPECT_EQ(metrics.counter("plan_cache.misses").value(), stats.misses);

  auto log = tracer.collect();
  EXPECT_EQ(log.of_type(obs::EventType::CacheHit).size() +
                log.of_type(obs::EventType::CacheMiss).size(),
            static_cast<std::size_t>(kThreads * kProbes));
}

TEST(PlannerMetrics, PlanScatterPublishesDpAndPlannerCounters) {
  auto platform = tiny_platform();
  obs::Metrics metrics;
  obs::Tracer tracer;
  core::PlannerOptions options;
  options.algorithm = core::Algorithm::OptimizedDp;
  options.metrics = &metrics;
  options.tracer = &tracer;

  auto plan = core::plan_scatter(platform, 500, options);
  EXPECT_EQ(plan.distribution.total(), 500);
  EXPECT_GT(plan.dp_cells_evaluated, 0);
  EXPECT_GE(plan.dp_threads, 1);

  EXPECT_EQ(metrics.counter("planner.plans").value(), 1u);
  EXPECT_EQ(metrics.counter("dp.solves").value(), 1u);
  EXPECT_EQ(metrics.counter("dp.cells_evaluated").value(),
            static_cast<std::uint64_t>(plan.dp_cells_evaluated));
  EXPECT_EQ(metrics.histogram("planner.plan_seconds").snapshot().count, 1u);

  auto log = tracer.collect();
  auto plans = log.of_type(obs::EventType::ScatterPlan);
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans.front().arg0, 500);
  EXPECT_EQ(plans.front().arg1,
            static_cast<long long>(core::Algorithm::OptimizedDp));
  EXPECT_EQ(plans.front().peer, platform.size());
  auto solves = log.of_type(obs::EventType::DpSolve);
  ASSERT_EQ(solves.size(), 1u);
  EXPECT_EQ(solves.front().arg1, plan.dp_cells_evaluated);
}

TEST(MqMetrics, RuntimePublishesLinkBytesAndPortOccupancy) {
  auto platform = tiny_platform();
  const int p = platform.size();
  auto plan = core::plan_scatter(platform, 2000);
  for (long long count : plan.distribution.counts) ASSERT_GT(count, 0);
  std::vector<double> data(2000, 1.0);

  obs::Metrics metrics;
  mq::RuntimeOptions options;
  options.ranks = p;
  options.time_scale = 0.01;
  options.link_cost = mq::make_link_cost(platform, sizeof(double));
  options.metrics = &metrics;
  mq::Runtime::run(options, [&](mq::Comm& comm) {
    int root = comm.size() - 1;
    auto mine = comm.scatterv<double>(root, data, plan.distribution.counts);
    mq::emulate_compute(comm, platform[comm.rank()].comp.per_item_slope() *
                                  static_cast<double>(mine.size()));
  });

  const int root = p - 1;
  for (int r = 0; r < root; ++r) {
    std::string name = "mq.link.bytes[" + std::to_string(root) + "->" +
                       std::to_string(r) + "]";
    EXPECT_EQ(metrics.counter(name).value(),
              static_cast<std::uint64_t>(
                  plan.distribution.counts[static_cast<std::size_t>(r)]) *
                  sizeof(double))
        << name;
  }
  // The root's NIC was busy pacing its serialized sends (port occupancy);
  // workers blocked in recv while earlier peers were served (the stair).
  EXPECT_GT(metrics.counter("mq.rank.nic_busy_ns[" + std::to_string(root) + "]")
                .value(),
            0u);
  EXPECT_GT(metrics.counter("mq.rank.recv_wait_ns[1]").value(), 0u);
}

}  // namespace
}  // namespace lbs
