#include "support/bigint.hpp"

#include <gtest/gtest.h>

#include "support/bigrational.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace lbs::support {
namespace {

TEST(BigInt, DefaultIsZero) {
  BigInt zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_FALSE(zero.is_negative());
  EXPECT_EQ(zero.signum(), 0);
  EXPECT_EQ(zero.to_string(), "0");
  EXPECT_EQ(zero.bit_length(), 0u);
}

TEST(BigInt, SmallValuesRoundTrip) {
  for (long long v : {0LL, 1LL, -1LL, 42LL, -42LL, 1000000007LL, -987654321LL}) {
    BigInt big(v);
    EXPECT_EQ(big.to_int64(), v);
    EXPECT_EQ(big.to_string(), std::to_string(v));
    EXPECT_EQ(BigInt::from_string(std::to_string(v)), big);
  }
}

TEST(BigInt, Int64Extremes) {
  long long max = std::numeric_limits<long long>::max();
  long long min = std::numeric_limits<long long>::min();
  EXPECT_EQ(BigInt(max).to_int64(), max);
  EXPECT_EQ(BigInt(min).to_int64(), min);
  EXPECT_EQ(BigInt(min).to_string(), std::to_string(min));
}

TEST(BigInt, FromStringValidation) {
  EXPECT_EQ(BigInt::from_string("+123"), BigInt(123));
  EXPECT_EQ(BigInt::from_string("-0"), BigInt(0));
  EXPECT_EQ(BigInt::from_string("00042"), BigInt(42));
  EXPECT_THROW(BigInt::from_string(""), Error);
  EXPECT_THROW(BigInt::from_string("-"), Error);
  EXPECT_THROW(BigInt::from_string("12a3"), Error);
}

TEST(BigInt, LargeValueArithmetic) {
  // 2^128 = 340282366920938463463374607431768211456 — beyond __int128 max.
  BigInt two_127 = BigInt::from_string("170141183460469231731687303715884105728");
  BigInt two_128 = two_127 + two_127;
  EXPECT_EQ(two_128.to_string(), "340282366920938463463374607431768211456");
  EXPECT_EQ(two_128 / BigInt(2), two_127);
  EXPECT_EQ(two_128 % two_127, BigInt(0));
  EXPECT_EQ(two_128.bit_length(), 129u);
}

TEST(BigInt, KnownBigProduct) {
  // 99999999999999999999 * 99999999999999999999
  BigInt a = BigInt::from_string("99999999999999999999");
  BigInt product = a * a;
  EXPECT_EQ(product.to_string(), "9999999999999999999800000000000000000001");
}

TEST(BigInt, SignRulesForDivision) {
  // C++ semantics: quotient truncates toward zero, remainder follows
  // the dividend.
  EXPECT_EQ((BigInt(7) / BigInt(2)).to_int64(), 3);
  EXPECT_EQ((BigInt(-7) / BigInt(2)).to_int64(), -3);
  EXPECT_EQ((BigInt(7) / BigInt(-2)).to_int64(), -3);
  EXPECT_EQ((BigInt(-7) / BigInt(-2)).to_int64(), 3);
  EXPECT_EQ((BigInt(7) % BigInt(2)).to_int64(), 1);
  EXPECT_EQ((BigInt(-7) % BigInt(2)).to_int64(), -1);
  EXPECT_EQ((BigInt(7) % BigInt(-2)).to_int64(), 1);
  EXPECT_EQ((BigInt(-7) % BigInt(-2)).to_int64(), -1);
}

TEST(BigInt, DivisionByZeroThrows) {
  EXPECT_THROW(BigInt(1) / BigInt(0), Error);
  EXPECT_THROW(BigInt(1) % BigInt(0), Error);
}

TEST(BigInt, Comparisons) {
  EXPECT_LT(BigInt(-5), BigInt(3));
  EXPECT_LT(BigInt(-5), BigInt(-3));
  EXPECT_GT(BigInt::from_string("10000000000000000000000"), BigInt(1));
  EXPECT_LT(-BigInt::from_string("10000000000000000000000"), BigInt(-1));
  EXPECT_EQ(BigInt(7), BigInt::from_string("7"));
}

TEST(BigInt, Gcd) {
  EXPECT_EQ(BigInt::gcd(BigInt(12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::gcd(BigInt(-12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)), BigInt(5));
  EXPECT_EQ(BigInt::gcd(BigInt(17), BigInt(13)), BigInt(1));
  // gcd(2^100, 2^60) = 2^60
  BigInt two_100 = BigInt::from_string("1267650600228229401496703205376");
  BigInt two_60 = BigInt::from_string("1152921504606846976");
  EXPECT_EQ(BigInt::gcd(two_100, two_60), two_60);
}

TEST(BigInt, FromInt128) {
  __int128 value = static_cast<__int128>(1) << 100;
  EXPECT_EQ(BigInt::from_int128(value).to_string(), "1267650600228229401496703205376");
  EXPECT_EQ(BigInt::from_int128(-value).to_string(), "-1267650600228229401496703205376");
  EXPECT_EQ(BigInt::from_int128(0), BigInt(0));
}

TEST(BigInt, ToDoubleApproximates) {
  EXPECT_DOUBLE_EQ(BigInt(1000000).to_double(), 1e6);
  EXPECT_DOUBLE_EQ(BigInt(-12345).to_double(), -12345.0);
  BigInt huge = BigInt::from_string("1000000000000000000000000000000");
  EXPECT_NEAR(huge.to_double(), 1e30, 1e15);
}

TEST(BigInt, ToInt64OverflowThrows) {
  BigInt too_big = BigInt::from_string("9223372036854775808");  // 2^63
  EXPECT_THROW(too_big.to_int64(), Error);
  BigInt min_ok = BigInt::from_string("-9223372036854775808");  // -2^63 fits
  EXPECT_EQ(min_ok.to_int64(), std::numeric_limits<long long>::min());
  EXPECT_THROW(BigInt::from_string("-9223372036854775809").to_int64(), Error);
}

class BigIntPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BigIntPropertyTest, AgreesWithInt128OnRandomValues) {
  Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    long long a = rng.uniform_int(-1000000000LL, 1000000000LL);
    long long b = rng.uniform_int(-1000000000LL, 1000000000LL);
    BigInt ba(a), bb(b);
    EXPECT_EQ((ba + bb).to_int64(), a + b);
    EXPECT_EQ((ba - bb).to_int64(), a - b);
    EXPECT_EQ((ba * bb).to_string(),
              BigInt::from_int128(static_cast<__int128>(a) * b).to_string());
    if (b != 0) {
      EXPECT_EQ((ba / bb).to_int64(), a / b);
      EXPECT_EQ((ba % bb).to_int64(), a % b);
    }
    EXPECT_EQ(ba < bb, a < b);
  }
}

TEST_P(BigIntPropertyTest, DivModIdentityOnHugeValues) {
  Rng rng(GetParam() ^ 0x1234);
  for (int i = 0; i < 60; ++i) {
    // Build ~40-digit dividends and ~15-digit divisors.
    std::string digits_a, digits_b;
    for (int d = 0; d < 40; ++d) {
      digits_a.push_back(static_cast<char>('0' + rng.uniform_int(d == 0 ? 1 : 0, 9)));
    }
    for (int d = 0; d < 15; ++d) {
      digits_b.push_back(static_cast<char>('0' + rng.uniform_int(d == 0 ? 1 : 0, 9)));
    }
    BigInt a = BigInt::from_string(digits_a);
    BigInt b = BigInt::from_string(digits_b);
    if (rng.bernoulli(0.5)) a = -a;
    if (rng.bernoulli(0.5)) b = -b;

    auto division = a.divmod(b);
    // a == q*b + r, |r| < |b|, sign(r) == sign(a) (or r == 0).
    EXPECT_EQ(division.quotient * b + division.remainder, a);
    EXPECT_LT(division.remainder.abs(), b.abs());
    if (!division.remainder.is_zero()) {
      EXPECT_EQ(division.remainder.is_negative(), a.is_negative());
    }
  }
}

TEST_P(BigIntPropertyTest, StringRoundTripOnHugeValues) {
  Rng rng(GetParam() ^ 0x9999);
  for (int i = 0; i < 50; ++i) {
    std::string digits;
    int length = static_cast<int>(rng.uniform_int(1, 80));
    for (int d = 0; d < length; ++d) {
      digits.push_back(static_cast<char>('0' + rng.uniform_int(d == 0 ? 1 : 0, 9)));
    }
    if (rng.bernoulli(0.5)) digits.insert(digits.begin(), '-');
    EXPECT_EQ(BigInt::from_string(digits).to_string(), digits);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntPropertyTest, ::testing::Values(1u, 2u, 3u));

TEST(BigRational, BasicArithmetic) {
  BigRational a(BigInt(1), BigInt(3));
  BigRational b(BigInt(1), BigInt(6));
  EXPECT_EQ(a + b, BigRational(BigInt(1), BigInt(2)));
  EXPECT_EQ(a - b, BigRational(BigInt(1), BigInt(6)));
  EXPECT_EQ(a * b, BigRational(BigInt(1), BigInt(18)));
  EXPECT_EQ(a / b, BigRational(2));
}

TEST(BigRational, ReducesAndNormalizesSign) {
  EXPECT_EQ(BigRational(BigInt(6), BigInt(4)).to_string(), "3/2");
  EXPECT_EQ(BigRational(BigInt(6), BigInt(-4)).to_string(), "-3/2");
  EXPECT_EQ(BigRational(BigInt(0), BigInt(-7)).to_string(), "0");
  EXPECT_THROW(BigRational(BigInt(1), BigInt(0)), Error);
}

TEST(BigRational, FloorCeilRound) {
  BigRational seven_halves(BigInt(7), BigInt(2));
  EXPECT_EQ(seven_halves.floor(), BigRational(3));
  EXPECT_EQ(seven_halves.ceil(), BigRational(4));
  EXPECT_EQ(seven_halves.round(), BigRational(4));
  BigRational negative(BigInt(-7), BigInt(2));
  EXPECT_EQ(negative.floor(), BigRational(-4));
  EXPECT_EQ(negative.ceil(), BigRational(-3));
  EXPECT_EQ(negative.round(), BigRational(-4));
}

TEST(BigRational, FromRationalAgrees) {
  Rational r(22, 7);
  BigRational b = BigRational::from_rational(r);
  EXPECT_EQ(b.to_string(), "22/7");
  EXPECT_DOUBLE_EQ(b.to_double(), r.to_double());
}

TEST(BigRational, HandlesDenominatorsBeyond128Bits) {
  // (1/2^100) + (1/3^50): denominators far beyond __int128.
  BigRational tiny1(BigInt(1), BigInt::from_string("1267650600228229401496703205376"));
  BigRational tiny2(BigInt(1), BigInt::from_string("717897987691852588770249"));
  BigRational sum = tiny1 + tiny2;
  EXPECT_GT(sum, BigRational(0));
  EXPECT_EQ(sum - tiny2, tiny1);
  EXPECT_EQ((tiny1 * tiny2) / tiny2, tiny1);
}

TEST(BigRational, ComparisonsAndOrdering) {
  EXPECT_LT(BigRational(BigInt(1), BigInt(3)), BigRational(BigInt(1), BigInt(2)));
  EXPECT_GT(BigRational(BigInt(-1), BigInt(3)), BigRational(BigInt(-1), BigInt(2)));
  EXPECT_EQ(BigRational(BigInt(2), BigInt(4)), BigRational(BigInt(1), BigInt(2)));
}

TEST(BigRational, FieldPropertySweep) {
  Rng rng(4242);
  for (int i = 0; i < 100; ++i) {
    BigRational a(BigInt(rng.uniform_int(-500, 500)), BigInt(rng.uniform_int(1, 500)));
    BigRational b(BigInt(rng.uniform_int(-500, 500)), BigInt(rng.uniform_int(1, 500)));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a - a, BigRational(0));
    if (!b.is_zero()) EXPECT_EQ((a / b) * b, a);
    EXPECT_EQ(a.floor() <= a && a <= a.ceil(), true);
  }
}

}  // namespace
}  // namespace lbs::support
