// Fleet chaos drill: kill one replica mid-load and prove the fleet's
// three survival properties at once —
//
//   1. Correct-or-typed: while the victim is down, every request either
//      returns a plan that matches the in-process planner bit-for-bit
//      (rerouted via the ring's failover sequence to the next distinct
//      node) or a typed transport status. Never a hang, never a wrong
//      plan, never an exception out of plan().
//   2. Rerouting actually happens: the victim's keys are served by
//      surviving replicas while it is down (counters().rerouted > 0).
//   3. Warm restart of the PARTITION: each replica snapshots its OWN
//      cache on stop; the restarted victim warm-starts from its own file
//      and serves its keys as cache hits without re-solving anything.
//
// The kill-restart cycle count scales with LBS_CHAOS_ITERS (nightly CI
// raises it; the default keeps the suite fast on every push). Unix
// sockets on purpose: the restarted replica rebinds the same path with
// no TIME_WAIT/port-reuse races.
#include "service/fleet.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/planner.hpp"
#include "service/server.hpp"

namespace lbs::service {
namespace {

std::string test_path(const char* stem) {
  static int counter = 0;
  return "/tmp/lbs_fleet_chaos_" + std::to_string(::getpid()) + "_" +
         std::to_string(++counter) + "_" + stem;
}

// A platform whose worker slope varies with `seed`: distinct PlanKeys.
model::Platform seeded_platform(int seed) {
  model::Platform platform;
  model::Processor worker;
  worker.label = "worker";
  worker.comm = model::Cost::linear(0.5);
  worker.comp = model::Cost::tabulated(
      {{10, 1.0 + 0.01 * seed}, {100, 9.0 + 0.01 * seed}});
  platform.processors.push_back(worker);
  model::Processor root;
  root.label = "root";
  root.comp = model::Cost::linear(0.2);
  root.comm = model::Cost::zero();
  platform.processors.push_back(root);
  return platform;
}

void expect_correct_or_typed(const PlanResponse& response,
                             const model::Platform& platform, long long items) {
  if (response.status == PlanStatus::Ok) {
    core::PlannerOptions exact;
    exact.algorithm = core::Algorithm::ExactDp;
    auto direct = core::plan_scatter(platform, items, exact);
    EXPECT_EQ(response.counts, direct.distribution.counts)
        << "a WRONG plan slipped through";
    EXPECT_DOUBLE_EQ(response.predicted_makespan, direct.predicted_makespan);
    return;
  }
  EXPECT_TRUE(response.status == PlanStatus::Disconnected ||
              response.status == PlanStatus::Timeout ||
              response.status == PlanStatus::BreakerOpen ||
              response.status == PlanStatus::Rejected)
      << "untyped failure, status=" << static_cast<int>(response.status)
      << " message=" << response.message;
}

int soak_iterations() {
  const char* env = std::getenv("LBS_CHAOS_ITERS");
  if (env == nullptr) return 2;
  int iters = std::atoi(env);
  return iters > 0 ? iters : 2;
}

ServerOptions replica_options(const std::string& socket, const std::string& snapshot) {
  ServerOptions options;
  options.socket_path = socket;
  options.snapshot_path = snapshot;
  options.warm_start_path = snapshot;  // crash-safe restart idiom
  return options;
}

TEST(ServiceFleetChaos, KillMidLoadReroutesThenWarmRestartsItsPartition) {
  constexpr std::size_t kReplicas = 3;
  constexpr int kKeys = 12;
  constexpr long long kItems = 4000;

  std::vector<std::string> sockets;
  std::vector<std::string> snapshots;
  std::vector<std::unique_ptr<Server>> servers;
  FleetOptions fleet_options;
  for (std::size_t r = 0; r < kReplicas; ++r) {
    sockets.push_back(test_path("replica.sock"));
    snapshots.push_back(test_path("snapshot.bin"));
    servers.push_back(
        std::make_unique<Server>(replica_options(sockets.back(), snapshots.back())));
    servers.back()->start();
    fleet_options.replicas.push_back(Endpoint::unix_path(sockets.back()));
  }
  // Fast failure detection: short deadlines and cooldowns keep the drill
  // quick; correctness must not depend on their exact values.
  fleet_options.retries_per_replica = 1;
  fleet_options.down_retry_ms = 50;
  fleet_options.client.request_timeout_ms = 5000;
  fleet_options.client.breaker_threshold = 2;
  fleet_options.client.breaker_cooldown_ms = 100;
  FleetClient fleet(fleet_options);

  // Establish the partition and remember every key's home.
  std::vector<std::size_t> home(kKeys);
  for (int seed = 0; seed < kKeys; ++seed) {
    auto platform = seeded_platform(seed);
    home[static_cast<std::size_t>(seed)] =
        fleet.route_of(platform, kItems, core::Algorithm::ExactDp);
    PlanResponse response = fleet.plan(platform, kItems, core::Algorithm::ExactDp);
    ASSERT_EQ(response.status, PlanStatus::Ok) << response.message;
  }

  // Pick the replica that owns the most keys — killing it must visibly
  // reroute.
  std::vector<int> owned(kReplicas, 0);
  for (int seed = 0; seed < kKeys; ++seed) {
    ++owned[home[static_cast<std::size_t>(seed)]];
  }
  std::size_t victim = 0;
  for (std::size_t r = 1; r < kReplicas; ++r) {
    if (owned[r] > owned[victim]) victim = r;
  }
  ASSERT_GT(owned[victim], 0);

  const int iterations = soak_iterations();
  for (int cycle = 0; cycle < iterations; ++cycle) {
    // Load threads hammer all keys while the victim goes down mid-load.
    std::atomic<bool> load_stop{false};
    std::vector<std::thread> load;
    for (int t = 0; t < 3; ++t) {
      load.emplace_back([&, t] {
        int seed = t;
        while (!load_stop.load()) {
          auto platform = seeded_platform(seed % kKeys);
          PlanResponse response =
              fleet.plan(platform, kItems, core::Algorithm::ExactDp);
          expect_correct_or_typed(response, platform, kItems);
          seed += 1;
        }
      });
    }

    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    servers[victim]->stop();  // writes the victim's own snapshot on drain
    std::this_thread::sleep_for(std::chrono::milliseconds(150));

    // With the victim down, its keys must still resolve correct-or-typed;
    // after the breaker/cooldown settles they reroute to the failover
    // node and come back Ok.
    for (int seed = 0; seed < kKeys; ++seed) {
      auto platform = seeded_platform(seed);
      PlanResponse response =
          fleet.plan(platform, kItems, core::Algorithm::ExactDp);
      expect_correct_or_typed(response, platform, kItems);
    }

    load_stop.store(true);
    for (auto& thread : load) thread.join();

    // Restart the victim from its own snapshot.
    servers[victim] = std::make_unique<Server>(
        replica_options(sockets[victim], snapshots[victim]));
    servers[victim]->start();

    // Give the fleet's breaker a beat to half-open, then prove the warm
    // start: every victim-homed key is a cache HIT on the restarted
    // replica — its partition survived the kill, nothing re-solves.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    for (int seed = 0; seed < kKeys; ++seed) {
      if (home[static_cast<std::size_t>(seed)] != victim) continue;
      auto platform = seeded_platform(seed);
      PlanResponse response;
      // The first attempt may still land in the cooldown window; the
      // retry loop below is bounded, not open-ended.
      for (int attempt = 0; attempt < 50; ++attempt) {
        response = fleet.plan(platform, kItems, core::Algorithm::ExactDp);
        if (response.status == PlanStatus::Ok && !response.local_fallback) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      ASSERT_EQ(response.status, PlanStatus::Ok)
          << "victim-homed key never recovered: " << response.message;
      EXPECT_TRUE(response.cache_hit)
          << "seed " << seed << " re-solved after warm restart";
    }
    EXPECT_EQ(servers[victim]->counters().solved, 0u)
        << "warm-started replica re-solved its partition";
    EXPECT_GT(servers[victim]->counters().cache_hits, 0u);
  }

  // The kill cycles must have exercised rerouting.
  EXPECT_GT(fleet.counters().rerouted, 0u);

  fleet.close();
  for (auto& server : servers) server->stop();
  for (const auto& snapshot : snapshots) ::unlink(snapshot.c_str());
}

}  // namespace
}  // namespace lbs::service
