#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace lbs::lp {
namespace {

TEST(Simplex, SolvesTextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (min of negation).
  Problem problem;
  problem.minimize({-3.0, -5.0});
  problem.add({1.0, 0.0}, Relation::LessEq, 4.0);
  problem.add({0.0, 2.0}, Relation::LessEq, 12.0);
  problem.add({3.0, 2.0}, Relation::LessEq, 18.0);
  auto solution = solve(problem);
  ASSERT_TRUE(solution.optimal());
  EXPECT_NEAR(solution.x[0], 2.0, 1e-9);
  EXPECT_NEAR(solution.x[1], 6.0, 1e-9);
  EXPECT_NEAR(solution.objective, -36.0, 1e-9);
}

TEST(Simplex, HandlesEqualityConstraints) {
  // min x + 2y s.t. x + y = 10, x <= 4.
  Problem problem;
  problem.minimize({1.0, 2.0});
  problem.add({1.0, 1.0}, Relation::Equal, 10.0);
  problem.add({1.0, 0.0}, Relation::LessEq, 4.0);
  auto solution = solve(problem);
  ASSERT_TRUE(solution.optimal());
  EXPECT_NEAR(solution.x[0], 4.0, 1e-9);
  EXPECT_NEAR(solution.x[1], 6.0, 1e-9);
  EXPECT_NEAR(solution.objective, 16.0, 1e-9);
}

TEST(Simplex, HandlesGreaterEqual) {
  // min 2x + 3y s.t. x + y >= 4, x - y >= -2 (i.e. y - x <= 2).
  Problem problem;
  problem.minimize({2.0, 3.0});
  problem.add({1.0, 1.0}, Relation::GreaterEq, 4.0);
  problem.add({-1.0, 1.0}, Relation::LessEq, 2.0);
  auto solution = solve(problem);
  ASSERT_TRUE(solution.optimal());
  // Optimum: all weight on the cheaper variable x: x = 4, y = 0.
  EXPECT_NEAR(solution.objective, 8.0, 1e-9);
  EXPECT_NEAR(solution.x[0], 4.0, 1e-9);
}

TEST(Simplex, DetectsInfeasibility) {
  Problem problem;
  problem.minimize({1.0});
  problem.add({1.0}, Relation::LessEq, 1.0);
  problem.add({1.0}, Relation::GreaterEq, 2.0);
  auto solution = solve(problem);
  EXPECT_EQ(solution.status, SolveStatus::Infeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  // min -x with only x >= 0 and a vacuous constraint.
  Problem problem;
  problem.minimize({-1.0, 0.0});
  problem.add({0.0, 1.0}, Relation::LessEq, 1.0);
  auto solution = solve(problem);
  EXPECT_EQ(solution.status, SolveStatus::Unbounded);
}

TEST(Simplex, NegativeRhsNormalized) {
  // min x s.t. -x <= -3  (i.e. x >= 3).
  Problem problem;
  problem.minimize({1.0});
  problem.add({-1.0}, Relation::LessEq, -3.0);
  auto solution = solve(problem);
  ASSERT_TRUE(solution.optimal());
  EXPECT_NEAR(solution.x[0], 3.0, 1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Klee-Minty-flavoured degeneracy: redundant constraints at the optimum.
  Problem problem;
  problem.minimize({-1.0, -1.0});
  problem.add({1.0, 0.0}, Relation::LessEq, 1.0);
  problem.add({1.0, 0.0}, Relation::LessEq, 1.0);  // duplicate
  problem.add({0.0, 1.0}, Relation::LessEq, 1.0);
  problem.add({1.0, 1.0}, Relation::LessEq, 2.0);  // tight at optimum
  auto solution = solve(problem);
  ASSERT_TRUE(solution.optimal());
  EXPECT_NEAR(solution.objective, -2.0, 1e-9);
}

TEST(Simplex, RedundantEqualityRowsHandled) {
  Problem problem;
  problem.minimize({1.0, 1.0});
  problem.add({1.0, 1.0}, Relation::Equal, 4.0);
  problem.add({2.0, 2.0}, Relation::Equal, 8.0);  // same hyperplane
  auto solution = solve(problem);
  ASSERT_TRUE(solution.optimal());
  EXPECT_NEAR(solution.objective, 4.0, 1e-9);
}

TEST(Simplex, ZeroVariableProblemThrows) {
  Problem problem;
  EXPECT_THROW(solve(problem), lbs::Error);
}

TEST(Simplex, ConstraintWidthMismatchThrows) {
  Problem problem;
  problem.minimize({1.0, 2.0});
  EXPECT_THROW(problem.add({1.0}, Relation::LessEq, 1.0), lbs::Error);
}

TEST(Simplex, EqualityOnlyFeasiblePoint) {
  // x + y = 2, x - y = 0 -> unique point (1, 1).
  Problem problem;
  problem.minimize({5.0, 7.0});
  problem.add({1.0, 1.0}, Relation::Equal, 2.0);
  problem.add({1.0, -1.0}, Relation::Equal, 0.0);
  auto solution = solve(problem);
  ASSERT_TRUE(solution.optimal());
  EXPECT_NEAR(solution.x[0], 1.0, 1e-9);
  EXPECT_NEAR(solution.x[1], 1.0, 1e-9);
}

// Property: on random feasible LPs, the simplex optimum is (a) feasible and
// (b) no worse than a cloud of random feasible points.
class SimplexPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexPropertyTest, OptimumBeatsRandomFeasiblePoints) {
  support::Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    int num_vars = static_cast<int>(rng.uniform_int(2, 5));
    int num_rows = static_cast<int>(rng.uniform_int(1, 5));

    Problem problem;
    std::vector<double> objective;
    for (int j = 0; j < num_vars; ++j) objective.push_back(rng.uniform(-2.0, 2.0));
    problem.minimize(objective);

    // Constraints a.x <= b with a >= 0 and b > 0: x = 0 is feasible and the
    // region is bounded in every direction with positive objective; add a
    // box to bound the rest.
    for (int r = 0; r < num_rows; ++r) {
      std::vector<double> coeffs;
      for (int j = 0; j < num_vars; ++j) coeffs.push_back(rng.uniform(0.0, 1.0));
      problem.add(std::move(coeffs), Relation::LessEq, rng.uniform(1.0, 5.0));
    }
    for (int j = 0; j < num_vars; ++j) {
      std::vector<double> box(static_cast<std::size_t>(num_vars), 0.0);
      box[static_cast<std::size_t>(j)] = 1.0;
      problem.add(std::move(box), Relation::LessEq, 10.0);
    }

    auto solution = solve(problem);
    ASSERT_TRUE(solution.optimal());

    // (a) feasibility
    for (const auto& constraint : problem.constraints) {
      double lhs = 0.0;
      for (int j = 0; j < num_vars; ++j) {
        lhs += constraint.coeffs[static_cast<std::size_t>(j)] *
               solution.x[static_cast<std::size_t>(j)];
      }
      EXPECT_LE(lhs, constraint.rhs + 1e-7);
    }
    for (double v : solution.x) EXPECT_GE(v, -1e-9);

    // (b) optimality against random feasible points (rejection sampling).
    for (int sample = 0; sample < 200; ++sample) {
      std::vector<double> x;
      for (int j = 0; j < num_vars; ++j) x.push_back(rng.uniform(0.0, 10.0));
      bool feasible = true;
      for (const auto& constraint : problem.constraints) {
        double lhs = 0.0;
        for (int j = 0; j < num_vars; ++j) {
          lhs += constraint.coeffs[static_cast<std::size_t>(j)] * x[static_cast<std::size_t>(j)];
        }
        if (lhs > constraint.rhs) {
          feasible = false;
          break;
        }
      }
      if (!feasible) continue;
      double value = 0.0;
      for (int j = 0; j < num_vars; ++j) {
        value += problem.objective[static_cast<std::size_t>(j)] * x[static_cast<std::size_t>(j)];
      }
      EXPECT_GE(value, solution.objective - 1e-7);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexPropertyTest,
                         ::testing::Values(101u, 202u, 303u, 404u));

}  // namespace
}  // namespace lbs::lp
