#include "des/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/error.hpp"

namespace lbs::des {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.processed_events(), 3u);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(1.0, [&, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, CallbacksCanScheduleMoreEvents) {
  Simulator sim;
  std::vector<double> times;
  std::function<void()> tick = [&] {
    times.push_back(sim.now());
    if (times.size() < 4) sim.schedule(0.5, tick);
  };
  sim.schedule(0.0, tick);
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{0.0, 0.5, 1.0, 1.5}));
}

TEST(Simulator, RunUntilStopsEarly) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1.0, [&] { ++fired; });
  sim.schedule(5.0, [&] { ++fired; });
  double t = sim.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(t, 2.0);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator sim;
  sim.schedule(1.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(0.5, [] {}), lbs::Error);
  EXPECT_THROW(sim.schedule(-1.0, [] {}), lbs::Error);
}

TEST(Simulator, RejectsNullCallback) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(1.0, nullptr), lbs::Error);
}

TEST(SerialResource, ServesFifoOneAtATime) {
  Simulator sim;
  SerialResource port(sim);
  std::vector<std::pair<int, double>> completions;
  std::vector<double> starts;
  sim.schedule(0.0, [&] {
    for (int i = 0; i < 3; ++i) {
      port.request(
          2.0, [&, i] { completions.emplace_back(i, sim.now()); },
          [&] { starts.push_back(sim.now()); });
    }
  });
  sim.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], (std::pair<int, double>{0, 2.0}));
  EXPECT_EQ(completions[1], (std::pair<int, double>{1, 4.0}));
  EXPECT_EQ(completions[2], (std::pair<int, double>{2, 6.0}));
  EXPECT_EQ(starts, (std::vector<double>{0.0, 2.0, 4.0}));
}

TEST(SerialResource, ZeroDurationRequestsComplete) {
  Simulator sim;
  SerialResource port(sim);
  int done = 0;
  sim.schedule(0.0, [&] {
    port.request(0.0, [&] { ++done; });
    port.request(0.0, [&] { ++done; });
  });
  sim.run();
  EXPECT_EQ(done, 2);
}

TEST(SerialResource, LaterArrivalsQueueBehindBusyPort) {
  Simulator sim;
  SerialResource port(sim);
  std::vector<double> completions;
  sim.schedule(0.0, [&] { port.request(5.0, [&] { completions.push_back(sim.now()); }); });
  sim.schedule(1.0, [&] { port.request(1.0, [&] { completions.push_back(sim.now()); }); });
  sim.run();
  EXPECT_EQ(completions, (std::vector<double>{5.0, 6.0}));
}

TEST(SerialResource, RejectsNegativeDuration) {
  Simulator sim;
  SerialResource port(sim);
  EXPECT_THROW(port.request(-1.0, [] {}), lbs::Error);
}

TEST(SpeedProfile, NominalSpeedIsOne) {
  SpeedProfile profile;
  EXPECT_EQ(profile.speed_at(0.0), 1.0);
  EXPECT_EQ(profile.finish_time(3.0, 10.0), 13.0);
}

TEST(SpeedProfile, SlowSegmentStretchesWork) {
  SpeedProfile profile;
  profile.add_segment(0.0, 10.0, 0.5);
  // 10 s of nominal work at half speed: 5 s done by t=10, rest at full speed.
  EXPECT_DOUBLE_EQ(profile.finish_time(0.0, 10.0), 15.0);
}

TEST(SpeedProfile, WorkFinishingInsideSegment) {
  SpeedProfile profile;
  profile.add_segment(0.0, 100.0, 0.5);
  EXPECT_DOUBLE_EQ(profile.finish_time(0.0, 10.0), 20.0);
}

TEST(SpeedProfile, StartInsideSegment) {
  SpeedProfile profile;
  profile.add_segment(0.0, 10.0, 0.25);
  // Start at t=6: 4 s at quarter speed does 1 s of work; 5 s remain.
  EXPECT_DOUBLE_EQ(profile.finish_time(6.0, 6.0), 15.0);
}

TEST(SpeedProfile, OverlappingSegmentsCompose) {
  SpeedProfile profile;
  profile.add_segment(0.0, 10.0, 0.5);
  profile.add_segment(5.0, 10.0, 0.5);
  EXPECT_EQ(profile.speed_at(7.0), 0.25);
  EXPECT_EQ(profile.speed_at(2.0), 0.5);
  EXPECT_EQ(profile.speed_at(12.0), 1.0);
}

TEST(SpeedProfile, SpeedupSegment) {
  SpeedProfile profile;
  profile.add_segment(0.0, 4.0, 2.0);
  // 10 s nominal: 8 s done by t=4 at double speed, 2 s remain.
  EXPECT_DOUBLE_EQ(profile.finish_time(0.0, 10.0), 6.0);
}

TEST(SpeedProfile, ZeroWorkFinishesImmediately) {
  SpeedProfile profile;
  profile.add_segment(0.0, 1.0, 0.5);
  EXPECT_EQ(profile.finish_time(0.5, 0.0), 0.5);
}

TEST(SpeedProfile, RejectsBadSegments) {
  SpeedProfile profile;
  EXPECT_THROW(profile.add_segment(5.0, 5.0, 0.5), lbs::Error);
  EXPECT_THROW(profile.add_segment(0.0, 1.0, 0.0), lbs::Error);
  EXPECT_THROW(profile.add_segment(0.0, 1.0, -2.0), lbs::Error);
}

}  // namespace
}  // namespace lbs::des
