// Property tests for the offline calibration path (model::calibrate) and
// its online counterpart (model::OnlineAffineFit).
//
// calibrate() is the seam the paper's Table 1 came through ("values come
// from a series of benchmarks we performed") and the seam the adaptive
// runtime refits through, so its behaviour is pinned here property-style:
// known coefficients must be recovered from noisy synthetic samples, the
// intercept-drop boundary must sit exactly at intercept_tolerance, and
// the degenerate inputs (all-equal item counts, negative-trend clamps)
// must do the documented thing rather than whatever falls out.

#include "model/calibration.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "model/online_fit.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace lbs::model {
namespace {

std::vector<std::pair<long long, double>> affine_samples(
    double fixed, double per_item, const std::vector<long long>& items,
    support::Rng* noise = nullptr, double noise_fraction = 0.0) {
  std::vector<std::pair<long long, double>> samples;
  samples.reserve(items.size());
  for (long long x : items) {
    double y = fixed + per_item * static_cast<double>(x);
    if (noise != nullptr) {
      y *= 1.0 + noise_fraction * noise->normal();
    }
    samples.emplace_back(x, y);
  }
  return samples;
}

TEST(Calibrate, RecoversRandomAffineCoefficientsFromNoisySamples) {
  support::Rng rng(20260808);
  for (int trial = 0; trial < 50; ++trial) {
    double per_item = rng.uniform(1e-5, 1e-2);
    // Keep the intercept clearly above the drop boundary so the affine
    // model is retained: tolerance is 1% of the full transfer.
    double max_items = 20000.0;
    double fixed = rng.uniform(0.05, 0.5) * per_item * max_items;
    std::vector<long long> items;
    for (int i = 1; i <= 20; ++i) items.push_back(i * 1000);
    auto samples = affine_samples(fixed, per_item, items, &rng, 0.01);

    auto result = calibrate(samples);
    EXPECT_FALSE(result.linear_model);
    EXPECT_NEAR(result.alpha, per_item, 0.05 * per_item);
    EXPECT_NEAR(result.intercept, fixed, 0.25 * fixed);
    EXPECT_GT(result.r_squared, 0.99);
    // The returned Cost evaluates as the fitted coefficients say.
    EXPECT_NEAR(result.cost(10000), result.intercept + result.alpha * 10000.0,
                1e-9);
  }
}

TEST(Calibrate, RecoversLinearCoefficientFromNoisySamples) {
  support::Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    double per_item = rng.uniform(1e-5, 1e-2);
    std::vector<long long> items;
    for (int i = 1; i <= 25; ++i) items.push_back(i * 400);
    auto samples = affine_samples(0.0, per_item, items, &rng, 0.02);

    auto result = calibrate(samples);
    EXPECT_TRUE(result.linear_model);
    EXPECT_EQ(result.intercept, 0.0);
    EXPECT_NEAR(result.alpha, per_item, 0.05 * per_item);
  }
}

// The intercept is dropped exactly when it is <= intercept_tolerance *
// (slope * max_items). Exact affine samples are recovered to roundoff by
// OLS, so placing the true intercept just below / just above the boundary
// pins the branch.
TEST(Calibrate, InterceptDropBoundarySitsAtTolerance) {
  const double per_item = 2e-4;
  const std::vector<long long> items = {1000, 2000, 4000, 8000, 16000};
  const double full_transfer = per_item * 16000.0;
  const double tolerance = 0.01;  // calibrate's default

  auto below = calibrate(
      affine_samples(0.999 * tolerance * full_transfer, per_item, items));
  EXPECT_TRUE(below.linear_model);
  EXPECT_EQ(below.intercept, 0.0);

  auto above = calibrate(
      affine_samples(1.001 * tolerance * full_transfer, per_item, items));
  EXPECT_FALSE(above.linear_model);
  EXPECT_GT(above.intercept, 0.0);

  // The same samples flip branch when the tolerance moves past them.
  auto samples = affine_samples(0.05 * full_transfer, per_item, items);
  EXPECT_FALSE(calibrate(samples, 0.04).linear_model);
  EXPECT_TRUE(calibrate(samples, 0.06).linear_model);
}

TEST(Calibrate, AllEqualItemCountsThrow) {
  std::vector<std::pair<long long, double>> samples = {
      {5000, 1.0}, {5000, 1.1}, {5000, 0.9}};
  EXPECT_THROW(calibrate(samples), lbs::Error);
}

TEST(Calibrate, FewerThanTwoSamplesThrow) {
  std::vector<std::pair<long long, double>> samples = {{1000, 1.0}};
  EXPECT_THROW(calibrate(samples), lbs::Error);
  samples.clear();
  EXPECT_THROW(calibrate(samples), lbs::Error);
}

TEST(Calibrate, NonPositiveItemCountsThrow) {
  std::vector<std::pair<long long, double>> samples = {{0, 0.0}, {1000, 1.0}};
  EXPECT_THROW(calibrate(samples), lbs::Error);
  samples = {{-5, 0.1}, {1000, 1.0}};
  EXPECT_THROW(calibrate(samples), lbs::Error);
}

// Decreasing times over increasing counts fit a negative slope; the clamp
// must produce a valid (non-negative) cost, not a negative one.
TEST(Calibrate, NegativeSlopeClampsToZero) {
  std::vector<std::pair<long long, double>> samples = {
      {1000, 3.0}, {2000, 2.0}, {3000, 1.0}};
  auto result = calibrate(samples);
  EXPECT_GE(result.alpha, 0.0);
  EXPECT_GE(result.intercept, 0.0);
  // slope clamps to 0, so full_transfer is 0 and the fitted intercept
  // (positive here) survives as a pure fixed cost.
  EXPECT_FALSE(result.linear_model);
  EXPECT_EQ(result.alpha, 0.0);
  EXPECT_GT(result.intercept, 0.0);
  EXPECT_GE(result.cost(100), 0.0);
}

// Both coefficients negative (times shrinking through a negative
// intercept): everything clamps to the zero-cost linear model.
TEST(Calibrate, FullyNegativeFitClampsToZeroCost) {
  std::vector<std::pair<long long, double>> samples = {
      {1000, 0.0}, {2000, 0.0}, {3000, 0.0}};
  auto result = calibrate(samples);
  EXPECT_TRUE(result.linear_model);
  EXPECT_EQ(result.alpha, 0.0);
  EXPECT_EQ(result.cost(5000), 0.0);
}

TEST(Calibrate, RatingMatchesTableOneConvention) {
  EXPECT_DOUBLE_EQ(rating(0.5, 1.0), 2.0);   // half the per-item cost: 2x
  EXPECT_DOUBLE_EQ(rating(2.0, 1.0), 0.5);
  EXPECT_THROW(rating(0.0, 1.0), lbs::Error);
  EXPECT_THROW(rating(1.0, -1.0), lbs::Error);
}

// ---------------------------------------------------------------------------
// OnlineAffineFit: the streaming counterpart the adaptive runtime uses.

TEST(OnlineFit, RecoversAffineCoefficientsFromNoisyStream) {
  support::Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    double per_item = rng.uniform(1e-5, 1e-3);
    double fixed = rng.uniform(0.2, 0.8) * per_item * 20000.0;
    OnlineFitOptions options;
    options.forgetting = 1.0;  // offline limit: plain least squares
    OnlineAffineFit fit(options);
    for (int i = 0; i < 200; ++i) {
      long long x = rng.uniform_int(1000, 20000);
      double y = (fixed + per_item * static_cast<double>(x)) *
                 (1.0 + 0.01 * rng.normal());
      fit.observe(x, y);
    }
    EXPECT_TRUE(fit.ready());
    EXPECT_NEAR(fit.slope(), per_item, 0.05 * per_item);
    EXPECT_NEAR(fit.intercept(), fixed, 0.25 * fixed);
  }
}

TEST(OnlineFit, ForgettingTracksAChangedCoefficient) {
  OnlineFitOptions options;
  options.forgetting = 0.8;
  OnlineAffineFit fit(options);
  // 50 rounds at alpha = 1e-4, then the "node degrades" to 3e-4.
  for (int i = 0; i < 50; ++i) {
    long long x = 1000 + 100 * (i % 7);
    fit.observe(x, 1e-4 * static_cast<double>(x));
  }
  EXPECT_NEAR(fit.slope(), 1e-4, 1e-6);
  for (int i = 0; i < 50; ++i) {
    long long x = 1000 + 100 * (i % 7);
    fit.observe(x, 3e-4 * static_cast<double>(x));
  }
  EXPECT_NEAR(fit.slope(), 3e-4, 3e-6);

  // Without forgetting, the same stream stays stuck between the regimes.
  OnlineFitOptions sticky;
  sticky.forgetting = 1.0;
  OnlineAffineFit no_forget(sticky);
  for (int i = 0; i < 50; ++i) {
    long long x = 1000 + 100 * (i % 7);
    no_forget.observe(x, 1e-4 * static_cast<double>(x));
  }
  for (int i = 0; i < 50; ++i) {
    long long x = 1000 + 100 * (i % 7);
    no_forget.observe(x, 3e-4 * static_cast<double>(x));
  }
  EXPECT_GT(no_forget.slope(), 1.5e-4);
  EXPECT_LT(no_forget.slope(), 2.5e-4);
}

TEST(OnlineFit, PriorAnchorsUntilDataOutweighsIt) {
  auto prior = Cost::linear(1e-4);
  OnlineAffineFit fit(prior, /*prior_weight=*/5.0);
  // No data: the fit reproduces the prior.
  EXPECT_NEAR(fit.slope(), 1e-4, 1e-12);
  EXPECT_NEAR(fit.predict(10000), prior(10000), 1e-9);
  EXPECT_FALSE(fit.ready());

  // Samples from a 2x slower reality pull the estimate over.
  for (int i = 0; i < 100; ++i) {
    long long x = 5000 + 13 * i;
    fit.observe(x, 2e-4 * static_cast<double>(x));
  }
  EXPECT_TRUE(fit.ready());
  EXPECT_NEAR(fit.slope(), 2e-4, 2e-6);
}

// The converged-plan regime: every sample at one item count. The fit must
// stay well-defined and match the observed cost at that operating point.
TEST(OnlineFit, SingleItemCountStaysWellDefined) {
  auto prior = Cost::linear(1e-4);
  OnlineAffineFit anchored(prior, 1.0);
  for (int i = 0; i < 20; ++i) anchored.observe(10000, 3.0);
  EXPECT_NEAR(anchored.predict(10000), 3.0, 0.05);

  // Unanchored (cold) fit at a single x: proportional fallback.
  OnlineAffineFit cold;
  for (int i = 0; i < 20; ++i) cold.observe(10000, 3.0);
  EXPECT_NEAR(cold.predict(10000), 3.0, 1e-9);
  EXPECT_NEAR(cold.slope(), 3.0 / 10000.0, 1e-12);
}

TEST(OnlineFit, InterceptDropMirrorsCalibrate) {
  const double per_item = 2e-4;
  const double full_transfer = per_item * 16000.0;
  const std::vector<long long> items = {1000, 2000, 4000, 8000, 16000};

  OnlineAffineFit below;  // true intercept below 1% of full transfer
  for (long long x : items) {
    below.observe(x, 0.005 * full_transfer + per_item * static_cast<double>(x));
  }
  auto below_cost = below.cost();
  ASSERT_TRUE(below_cost.affine().has_value());
  EXPECT_EQ(below_cost.affine()->fixed, 0.0);

  OnlineAffineFit above;
  for (long long x : items) {
    above.observe(x, 0.05 * full_transfer + per_item * static_cast<double>(x));
  }
  auto above_cost = above.cost();
  ASSERT_TRUE(above_cost.affine().has_value());
  EXPECT_GT(above_cost.affine()->fixed, 0.0);
}

TEST(OnlineFit, RejectsInvalidInputs) {
  OnlineAffineFit fit;
  EXPECT_THROW(fit.observe(0, 1.0), lbs::Error);
  EXPECT_THROW(fit.observe(-3, 1.0), lbs::Error);
  EXPECT_THROW(fit.observe(10, -0.5), lbs::Error);
  OnlineFitOptions bad;
  bad.forgetting = 0.0;
  EXPECT_THROW(OnlineAffineFit{bad}, lbs::Error);
  bad.forgetting = 1.5;
  EXPECT_THROW(OnlineAffineFit{bad}, lbs::Error);
  EXPECT_THROW(OnlineAffineFit(Cost::linear(1e-4), 0.0), lbs::Error);
  // Non-affine priors have no coefficients to anchor at.
  EXPECT_THROW(OnlineAffineFit(Cost::chunked(0.1, 5, 1.0), 1.0), lbs::Error);
}

}  // namespace
}  // namespace lbs::model
