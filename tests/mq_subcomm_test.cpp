#include "mq/subcomm.hpp"

#include <gtest/gtest.h>

#include "mq/runtime.hpp"
#include "support/error.hpp"

namespace lbs::mq {
namespace {

RuntimeOptions plain(int ranks) {
  RuntimeOptions options;
  options.ranks = ranks;
  return options;
}

TEST(Split, GroupsByColorOrderedByParentRank) {
  Runtime::run(plain(6), [](Comm& comm) {
    int color = comm.rank() % 2;  // evens and odds
    auto sub = split(comm, color);
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.parent_rank(), comm.rank());
    // Sub-ranks follow parent order: parent 0,2,4 -> sub 0,1,2 (evens).
    EXPECT_EQ(sub.rank(), comm.rank() / 2);
    for (int r = 0; r < sub.size(); ++r) {
      EXPECT_EQ(sub.parent_rank(r), 2 * r + color);
    }
  });
}

TEST(Split, KeyOverridesParentOrder) {
  Runtime::run(plain(4), [](Comm& comm) {
    // All one group, keys reversed: parent 3 becomes sub-rank 0.
    auto sub = split(comm, 0, comm.size() - comm.rank());
    EXPECT_EQ(sub.size(), 4);
    EXPECT_EQ(sub.rank(), comm.size() - 1 - comm.rank());
  });
}

TEST(Split, NoColorRanksOptOut) {
  Runtime::run(plain(5), [](Comm& comm) {
    int color = comm.rank() < 2 ? 0 : kNoColor;
    auto sub = split_optional(comm, color);
    if (comm.rank() < 2) {
      ASSERT_TRUE(sub.has_value());
      EXPECT_EQ(sub->size(), 2);
    } else {
      EXPECT_FALSE(sub.has_value());
    }
  });
}

TEST(SubComm, BcastWithinGroupOnly) {
  Runtime::run(plain(6), [](Comm& comm) {
    int site = comm.rank() / 3;  // {0,1,2} and {3,4,5}
    auto sub = split(comm, site);
    std::vector<int> data;
    if (sub.rank() == 0) data = {site * 1000};
    sub.bcast(0, data);
    ASSERT_EQ(data.size(), 1u);
    EXPECT_EQ(data[0], site * 1000);  // each site sees its own payload
  });
}

TEST(SubComm, GathervCollectsInSubRankOrder) {
  Runtime::run(plain(6), [](Comm& comm) {
    int site = comm.rank() % 2;
    auto sub = split(comm, site);
    std::vector<int> mine{comm.rank()};
    auto all = sub.gatherv<int>(0, mine);
    if (sub.rank() == 0) {
      // Evens gather {0,2,4}; odds gather {1,3,5}.
      ASSERT_EQ(all.size(), 3u);
      for (int i = 0; i < 3; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], 2 * i + site);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(SubComm, ReduceSumsWithinGroup) {
  Runtime::run(plain(6), [](Comm& comm) {
    int site = comm.rank() % 3;
    auto sub = split(comm, site);
    std::vector<long long> contribution{static_cast<long long>(comm.rank())};
    auto result = sub.reduce<long long>(
        0, contribution, [](const long long& a, const long long& b) { return a + b; });
    if (sub.rank() == 0) {
      // Group {site, site + 3}: sum = 2 * site + 3.
      ASSERT_EQ(result.size(), 1u);
      EXPECT_EQ(result[0], 2 * site + 3);
    }
  });
}

TEST(SubComm, BarrierSynchronizesGroup) {
  Runtime::run(plain(4), [](Comm& comm) {
    auto sub = split(comm, comm.rank() % 2);
    sub.barrier();  // simply must not deadlock across the two groups
    sub.barrier();
    SUCCEED();
  });
}

TEST(SubComm, TwoConcurrentSplitsDoNotCrosstalk) {
  Runtime::run(plain(4), [](Comm& comm) {
    auto rows = split(comm, comm.rank() / 2);   // {0,1} {2,3}
    auto cols = split(comm, comm.rank() % 2);   // {0,2} {1,3}
    // Interleave collectives on both: payloads must not mix.
    std::vector<int> row_data;
    if (rows.rank() == 0) row_data = {100 + comm.rank() / 2};
    std::vector<int> col_data;
    if (cols.rank() == 0) col_data = {200 + comm.rank() % 2};
    rows.bcast(0, row_data);
    cols.bcast(0, col_data);
    EXPECT_EQ(row_data[0], 100 + comm.rank() / 2);
    EXPECT_EQ(col_data[0], 200 + comm.rank() % 2);
  });
}

TEST(SubComm, HierarchicalReduceThenRootCombine) {
  // The MagPIe pattern: reduce within each site (one WAN-free phase),
  // then the site leaders report to the global root.
  Runtime::run(plain(8), [](Comm& comm) {
    int site = comm.rank() / 4;  // leaders: parent ranks 0 and 4
    auto sub = split(comm, site);
    std::vector<long long> contribution{1LL};
    auto site_sum = sub.reduce<long long>(
        0, contribution, [](const long long& a, const long long& b) { return a + b; });
    if (sub.rank() == 0 && comm.rank() != 0) {
      comm.send<long long>(0, 3, site_sum);
    }
    if (comm.rank() == 0) {
      long long total = site_sum[0] + comm.recv<long long>(4, 3)[0];
      EXPECT_EQ(total, 8);  // every rank contributed 1
    }
  });
}

}  // namespace
}  // namespace lbs::mq
