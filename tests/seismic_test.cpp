#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>

#include "seismic/catalog.hpp"
#include "seismic/earth_model.hpp"
#include "seismic/ray.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace lbs::seismic {
namespace {

TEST(EarthModel, PremLikeIsWellFormed) {
  auto model = EarthModel::prem_like();
  EXPECT_EQ(model.surface_radius_km(), kEarthRadiusKm);
  EXPECT_EQ(model.shells().front().inner_radius_km, 0.0);
  EXPECT_EQ(model.shells().front().name, "inner core");
  EXPECT_EQ(model.shells().back().name, "crust");
}

TEST(EarthModel, VelocityLookup) {
  auto model = EarthModel::prem_like();
  EXPECT_DOUBLE_EQ(model.velocity_at(6371.0), 5.8);    // crust
  EXPECT_DOUBLE_EQ(model.velocity_at(100.0), 11.1);    // inner core
  EXPECT_DOUBLE_EQ(model.velocity_at(4000.0), 12.3);   // lower mantle
  EXPECT_DOUBLE_EQ(model.velocity_at(2000.0), 9.0);    // outer core
}

TEST(EarthModel, OuterCoreIsSlowerThanLowerMantle) {
  // The P-wave velocity drop at the core-mantle boundary (the feature that
  // creates the shadow zone and makes distance(p) non-monotonic).
  auto model = EarthModel::prem_like();
  EXPECT_LT(model.velocity_at(3000.0), model.velocity_at(3500.0));
}

TEST(EarthModel, RejectsMalformedShells) {
  EXPECT_THROW(EarthModel({}), lbs::Error);
  EXPECT_THROW(EarthModel({{100.0, 200.0, 5.0, "floating"}}), lbs::Error);
  EXPECT_THROW(EarthModel({{0.0, 100.0, 5.0, "a"}, {150.0, 200.0, 5.0, "gap"}}),
               lbs::Error);
  EXPECT_THROW(EarthModel({{0.0, 100.0, -5.0, "negative-v"}}), lbs::Error);
}

TEST(EarthModel, SlownessRadiusIncreasesWithinShell) {
  auto model = EarthModel::prem_like();
  EXPECT_LT(model.slowness_radius(6000.0), model.slowness_radius(6100.0));
}

TEST(EarthModel, VelocityOutsideModelThrows) {
  auto model = EarthModel::prem_like();
  EXPECT_THROW(model.velocity_at(7000.0), lbs::Error);
  EXPECT_THROW(model.velocity_at(0.0), lbs::Error);
}

TEST(Catalog, EpicentralDistanceKnownValues) {
  // Same point: 0. Antipodes: 180. Pole to equator: 90.
  // acos loses precision near +-1, so allow ~1e-5 degrees there.
  EXPECT_NEAR(epicentral_distance_deg(10.0, 20.0, 10.0, 20.0), 0.0, 1e-5);
  EXPECT_NEAR(epicentral_distance_deg(0.0, 0.0, 0.0, 180.0), 180.0, 1e-5);
  EXPECT_NEAR(epicentral_distance_deg(90.0, 0.0, 0.0, 50.0), 90.0, 1e-9);
  // Symmetry.
  EXPECT_NEAR(epicentral_distance_deg(48.5, 7.5, 35.7, 139.7),
              epicentral_distance_deg(35.7, 139.7, 48.5, 7.5), 1e-12);
}

TEST(Catalog, GeneratesRequestedCount) {
  support::Rng rng(1);
  auto events = generate_catalog(rng, 1000);
  EXPECT_EQ(events.size(), 1000u);
}

TEST(Catalog, DeterministicPerSeed) {
  support::Rng rng1(7), rng2(7);
  auto a = generate_catalog(rng1, 50);
  auto b = generate_catalog(rng2, 50);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].source_lat_deg, b[i].source_lat_deg);
    EXPECT_EQ(a[i].receiver_lon_deg, b[i].receiver_lon_deg);
  }
}

TEST(Catalog, EventsHaveValidCoordinates) {
  support::Rng rng(3);
  auto events = generate_catalog(rng, 2000);
  for (const auto& event : events) {
    EXPECT_GE(event.source_lat_deg, -90.0);
    EXPECT_LE(event.source_lat_deg, 90.0);
    EXPECT_GE(event.source_lon_deg, -180.0);
    EXPECT_LE(event.source_lon_deg, 180.0);
    EXPECT_GE(event.source_depth_km, 0.0);
    EXPECT_LE(event.source_depth_km, 650.0);
  }
}

TEST(Catalog, StatisticsMatchRealCatalogShape) {
  // The claim DESIGN.md makes for the substitution: the synthetic catalog
  // has the statistical shape of a real one — mostly-shallow depths with
  // a deep tail, P-dominated phases, broad distance coverage with a large
  // teleseismic fraction.
  support::Rng rng(1999);
  auto events = generate_catalog(rng, 20000);
  auto stats = catalog_statistics(events);
  EXPECT_EQ(stats.events, 20000);
  EXPECT_NEAR(stats.p_wave_fraction, 0.7, 0.02);
  EXPECT_GT(stats.shallow_fraction, 0.5);   // exponential depth, mean 80 km
  EXPECT_GT(stats.deep_fraction, 0.005);    // but a real deep tail
  EXPECT_LT(stats.deep_fraction, 0.10);
  EXPECT_NEAR(stats.mean_depth_km, 80.0, 15.0);
  EXPECT_GT(stats.teleseismic_fraction, 0.25);
  EXPECT_LT(stats.min_distance_deg, 15.0);   // local recordings exist
  EXPECT_GT(stats.max_distance_deg, 140.0);  // and antipodal-ish ones
}

TEST(Catalog, StatisticsOfEmptyCatalog) {
  auto stats = catalog_statistics({});
  EXPECT_EQ(stats.events, 0);
  EXPECT_EQ(stats.p_wave_fraction, 0.0);
}

TEST(Catalog, MixesWaveTypes) {
  support::Rng rng(5);
  auto events = generate_catalog(rng, 1000);
  int p_count = 0;
  for (const auto& event : events) p_count += event.wave == WaveType::P ? 1 : 0;
  EXPECT_GT(p_count, 500);
  EXPECT_LT(p_count, 900);
}

TEST(SweepRay, NearVerticalRayGoesDeep) {
  auto model = EarthModel::prem_like();
  auto sweep = sweep_ray(model, 1.0);
  EXPECT_LT(sweep.turning_radius_km, 1300.0);  // reaches the inner core
  EXPECT_GT(sweep.time_s, 1000.0);             // PKIKP-ish: ~20 minutes
  EXPECT_LT(sweep.time_s, 2000.0);
}

TEST(SweepRay, GrazingRayStaysShallow) {
  auto model = EarthModel::prem_like();
  double u_surface = model.slowness_radius(kEarthRadiusKm);
  auto sweep = sweep_ray(model, u_surface * 0.999);
  EXPECT_GT(sweep.turning_radius_km, 6000.0);
  EXPECT_LT(sweep.distance_deg, 30.0);
}

TEST(SweepRay, DistanceIncreasesWithDecreasingPInMantle) {
  auto model = EarthModel::prem_like();
  // Within the lower-mantle branch, smaller p -> deeper -> farther.
  // (Near shell boundaries distance(p) is non-monotonic — the grazing-ray
  // artifact of constant-velocity shells — so stay inside one branch.)
  auto shallow = sweep_ray(model, 450.0);
  auto deep = sweep_ray(model, 400.0);
  EXPECT_GT(deep.distance_deg, shallow.distance_deg);
  EXPECT_GT(deep.time_s, shallow.time_s);
}

TEST(TraceRay, ConvergesForTeleseismicDistance) {
  auto model = EarthModel::prem_like();
  SeismicEvent event{};
  event.source_lat_deg = 0.0;
  event.source_lon_deg = 0.0;
  event.receiver_lat_deg = 0.0;
  event.receiver_lon_deg = 60.0;  // 60 degrees: clean mantle P
  event.wave = WaveType::P;
  auto path = trace_ray(model, event);
  EXPECT_TRUE(path.converged);
  EXPECT_NEAR(path.achieved_deg, 60.0, 0.05);
  // IASP91 P at 60 deg is ~600 s; our coarse model should be within ~15%.
  EXPECT_GT(path.travel_time_s, 500.0);
  EXPECT_LT(path.travel_time_s, 720.0);
}

TEST(TraceRay, TravelTimeIncreasesWithDistance) {
  auto model = EarthModel::prem_like();
  double previous_time = 0.0;
  for (double distance : {20.0, 40.0, 60.0, 80.0}) {
    SeismicEvent event{};
    event.receiver_lon_deg = distance;
    event.wave = WaveType::P;
    auto path = trace_ray(model, event);
    EXPECT_TRUE(path.converged) << "distance " << distance;
    EXPECT_GT(path.travel_time_s, previous_time);
    previous_time = path.travel_time_s;
  }
}

TEST(TraceRay, DeeperSourceArrivesEarlier) {
  // Source depth skips part of the down-going leg: the deeper the source,
  // the shorter the travel time, monotonically.
  auto model = EarthModel::prem_like();
  double previous = std::numeric_limits<double>::infinity();
  for (double depth : {0.0, 100.0, 300.0, 600.0}) {
    SeismicEvent event{};
    event.receiver_lon_deg = 60.0;
    event.source_depth_km = depth;
    event.wave = WaveType::P;
    auto path = trace_ray(model, event);
    EXPECT_LT(path.travel_time_s, previous) << "depth " << depth;
    previous = path.travel_time_s;
  }
}

TEST(TraceRay, DepthCorrectionKeepsShellTimesConsistent) {
  auto model = EarthModel::prem_like();
  SeismicEvent event{};
  event.receiver_lon_deg = 45.0;
  event.source_depth_km = 250.0;
  event.wave = WaveType::P;
  auto path = trace_ray(model, event);
  double sum = 0.0;
  for (double t : path.time_per_shell) {
    EXPECT_GE(t, 0.0);
    sum += t;
  }
  EXPECT_NEAR(sum, path.travel_time_s, 1e-9 * path.travel_time_s);
}

TEST(TraceRay, DepthCorrectionMagnitudeIsPlausible) {
  // A 300 km deep source under a ~8-9 km/s mantle saves very roughly
  // 300 km / 8.5 km/s / cos(i) of one leg: tens of seconds.
  auto model = EarthModel::prem_like();
  SeismicEvent surface{};
  surface.receiver_lon_deg = 60.0;
  surface.wave = WaveType::P;
  SeismicEvent deep = surface;
  deep.source_depth_km = 300.0;
  double saving = trace_ray(model, surface).travel_time_s -
                  trace_ray(model, deep).travel_time_s;
  EXPECT_GT(saving, 20.0);
  EXPECT_LT(saving, 90.0);
}

TEST(TraceRay, SWaveSlowerThanP) {
  auto model = EarthModel::prem_like();
  SeismicEvent p_event{};
  p_event.receiver_lon_deg = 50.0;
  p_event.wave = WaveType::P;
  SeismicEvent s_event = p_event;
  s_event.wave = WaveType::S;
  auto p_path = trace_ray(model, p_event);
  auto s_path = trace_ray(model, s_event);
  EXPECT_NEAR(s_path.travel_time_s / p_path.travel_time_s, std::sqrt(3.0), 1e-6);
}

TEST(ComputeWork, SumsTravelTimesAndFillsPaths) {
  auto model = EarthModel::prem_like();
  support::Rng rng(11);
  auto events = generate_catalog(rng, 20);
  std::vector<RayPath> paths;
  double total = compute_work(model, events.data(), events.size(), &paths);
  ASSERT_EQ(paths.size(), 20u);
  double manual = 0.0;
  for (const auto& path : paths) manual += path.travel_time_s;
  EXPECT_DOUBLE_EQ(total, manual);
  EXPECT_GT(total, 0.0);
}

TEST(ComputeWork, MostCatalogRaysConverge) {
  auto model = EarthModel::prem_like();
  support::Rng rng(13);
  auto events = generate_catalog(rng, 300);
  std::vector<RayPath> paths;
  compute_work(model, events.data(), events.size(), &paths);
  int converged = 0;
  for (const auto& path : paths) converged += path.converged ? 1 : 0;
  // The core shadow zone makes a few distances genuinely unreachable with
  // direct rays; the overwhelming majority must converge.
  EXPECT_GT(converged, 270);
}

TEST(ComputeWork, PerRayCostIsRoughlyConstant) {
  // The property the whole paper rests on: Tcomp linear in the ray count.
  // Compare per-ray times of two batch sizes; they must be within 3x
  // (loose bound — CI machines are noisy).
  auto model = EarthModel::prem_like();
  support::Rng rng(17);
  auto events = generate_catalog(rng, 600);
  auto time_batch = [&](std::size_t count) {
    auto start = std::chrono::steady_clock::now();
    compute_work(model, events.data(), count);
    auto elapsed = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double>(elapsed).count() / static_cast<double>(count);
  };
  time_batch(100);  // warm up
  double small = time_batch(150);
  double large = time_batch(600);
  EXPECT_LT(large / small, 3.0);
  EXPECT_GT(large / small, 1.0 / 3.0);
}

}  // namespace
}  // namespace lbs::seismic
