#include "gridsim/gridsim.hpp"

#include <gtest/gtest.h>

#include "core/ordering.hpp"
#include "core/planner.hpp"
#include "model/testbed.hpp"
#include "support/error.hpp"

namespace lbs::gridsim {
namespace {

model::Platform paper_platform() {
  auto grid = model::paper_testbed();
  return core::ordered_platform(grid, model::paper_root(grid),
                                core::OrderingPolicy::DescendingBandwidth);
}

TEST(GridSim, MatchesAnalyticModelExactly) {
  // With no perturbation/noise/gather, simulated finish times must equal
  // Eq. 1 — the simulator implements the same hardware model.
  auto platform = paper_platform();
  auto plan = core::plan_scatter(platform, 100000);
  auto result = simulate_scatter(platform, plan.distribution);
  ASSERT_EQ(result.timeline.traces.size(), plan.predicted_finish.size());
  for (std::size_t i = 0; i < plan.predicted_finish.size(); ++i) {
    EXPECT_NEAR(result.timeline.traces[i].finish(), plan.predicted_finish[i],
                1e-9 * plan.predicted_makespan)
        << "processor " << i;
  }
  EXPECT_NEAR(result.timeline.makespan(), plan.predicted_makespan, 1e-6);
}

TEST(GridSim, CommWindowsMatchAnalyticStair) {
  auto platform = paper_platform();
  auto dist = core::uniform_distribution(16000, platform.size());
  auto windows = core::comm_windows(platform, dist);
  auto result = simulate_scatter(platform, dist);
  for (std::size_t i = 0; i < windows.start.size(); ++i) {
    EXPECT_NEAR(result.timeline.traces[i].recv_start, windows.start[i], 1e-9);
    EXPECT_NEAR(result.timeline.traces[i].recv_end, windows.end[i], 1e-9);
  }
}

TEST(GridSim, StairEffectMonotoneRecvStarts) {
  auto platform = paper_platform();
  auto dist = core::uniform_distribution(32000, platform.size());
  auto result = simulate_scatter(platform, dist);
  double previous = -1.0;
  for (const auto& trace : result.timeline.traces) {
    EXPECT_GE(trace.recv_start, previous);
    previous = trace.recv_start;
  }
  EXPECT_GT(result.timeline.total_stair_idle(), 0.0);
}

TEST(GridSim, PerturbationDelaysOnlyTheLoadedProcessor) {
  auto platform = paper_platform();
  auto plan = core::plan_scatter(platform, 100000);
  SimOptions options;
  // Halve processor 2's speed over the bulk of the run (Figure 4's
  // "peak load on sekhmet" scenario).
  options.perturbations.push_back({2, 0.0, 1000.0, 0.5});
  auto perturbed = simulate_scatter(platform, plan.distribution, options);
  auto baseline = simulate_scatter(platform, plan.distribution);
  EXPECT_GT(perturbed.timeline.traces[2].compute_end,
            baseline.timeline.traces[2].compute_end * 1.5);
  // Others unaffected (no contention on compute).
  for (std::size_t i = 0; i < baseline.timeline.traces.size(); ++i) {
    if (i == 2) continue;
    EXPECT_NEAR(perturbed.timeline.traces[i].compute_end,
                baseline.timeline.traces[i].compute_end, 1e-9);
  }
}

TEST(GridSim, NoiseIsDeterministicPerSeed) {
  auto platform = paper_platform();
  auto dist = core::uniform_distribution(50000, platform.size());
  SimOptions options;
  options.compute_noise = 0.05;
  options.noise_seed = 42;
  auto a = simulate_scatter(platform, dist, options);
  auto b = simulate_scatter(platform, dist, options);
  for (std::size_t i = 0; i < a.timeline.traces.size(); ++i) {
    EXPECT_EQ(a.timeline.traces[i].compute_end, b.timeline.traces[i].compute_end);
  }
  options.noise_seed = 43;
  auto c = simulate_scatter(platform, dist, options);
  EXPECT_NE(a.timeline.makespan(), c.timeline.makespan());
}

TEST(GridSim, NoisePerturbsAroundDeterministicRun) {
  auto platform = paper_platform();
  auto plan = core::plan_scatter(platform, 200000);
  SimOptions options;
  options.compute_noise = 0.02;
  auto noisy = simulate_scatter(platform, plan.distribution, options);
  // Within a loose band of the deterministic makespan.
  EXPECT_NEAR(noisy.timeline.makespan(), plan.predicted_makespan,
              0.2 * plan.predicted_makespan);
  EXPECT_GT(noisy.timeline.finish_spread(), 0.0);
}

TEST(GridSim, GatherAddsReturnTraffic) {
  auto platform = paper_platform();
  auto plan = core::plan_scatter(platform, 50000);
  SimOptions options;
  options.gather_ratio = 0.5;
  auto with_gather = simulate_scatter(platform, plan.distribution, options);
  auto without = simulate_scatter(platform, plan.distribution);
  EXPECT_GT(with_gather.timeline.makespan(), without.timeline.makespan());
  for (const auto& trace : with_gather.timeline.traces) {
    if (trace.items == 0) continue;
    EXPECT_GE(trace.gather_end, trace.compute_end);
  }
}

TEST(GridSim, RoundsAreSequentialWithBarrier) {
  auto platform = paper_platform();
  auto plan = core::plan_scatter(platform, 20000);
  auto rounds = simulate_rounds(platform, plan.distribution, 3);
  ASSERT_EQ(rounds.size(), 3u);
  double single = rounds[0].timeline.makespan();
  // Each round starts at the previous round's barrier.
  EXPECT_NEAR(rounds[1].timeline.makespan(), 2.0 * single, 1e-6);
  EXPECT_NEAR(rounds[2].timeline.makespan(), 3.0 * single, 1e-6);
  // recv_start of round 2's first processor is after round 1's makespan.
  EXPECT_GE(rounds[1].timeline.traces[0].recv_start, single - 1e-9);
}

TEST(GridSim, OverlappedRoundsNeverSlowerThanBarriered) {
  auto platform = paper_platform();
  auto plan = core::plan_scatter(platform, 50000);
  for (int rounds : {1, 2, 5}) {
    auto barriered = simulate_rounds(platform, plan.distribution, rounds);
    auto overlapped = simulate_rounds_overlapped(platform, plan.distribution, rounds);
    ASSERT_EQ(overlapped.size(), static_cast<std::size_t>(rounds));
    double barriered_end = barriered.back().timeline.latest_finish();
    double overlapped_end = 0.0;
    for (const auto& round : overlapped) {
      overlapped_end = std::max(overlapped_end, round.timeline.latest_finish());
    }
    EXPECT_LE(overlapped_end, barriered_end + 1e-9) << "rounds=" << rounds;
  }
}

TEST(GridSim, OverlappedSingleRoundMatchesPlainSimulation) {
  auto platform = paper_platform();
  auto plan = core::plan_scatter(platform, 30000);
  auto single = simulate_scatter(platform, plan.distribution);
  auto overlapped = simulate_rounds_overlapped(platform, plan.distribution, 1);
  ASSERT_EQ(overlapped.size(), 1u);
  for (std::size_t i = 0; i < single.timeline.traces.size(); ++i) {
    EXPECT_NEAR(overlapped[0].timeline.traces[i].finish(),
                single.timeline.traces[i].finish(), 1e-9);
  }
}

TEST(GridSim, OverlappedRoundsRespectComputeDependencies) {
  // A worker's round r+1 compute cannot start before its round r compute
  // ended, even if the data arrived early: so per-round finish times are
  // spaced by at least the compute duration.
  auto platform = paper_platform();
  auto plan = core::plan_scatter(platform, 50000);
  auto overlapped = simulate_rounds_overlapped(platform, plan.distribution, 3);
  for (int i = 0; i < platform.size(); ++i) {
    auto idx = static_cast<std::size_t>(i);
    long long items = plan.distribution.counts[idx];
    if (items == 0) continue;
    double comp = platform[i].comp(items);
    for (int r = 1; r < 3; ++r) {
      double gap = overlapped[static_cast<std::size_t>(r)].timeline.traces[idx].compute_end -
                   overlapped[static_cast<std::size_t>(r - 1)].timeline.traces[idx].compute_end;
      EXPECT_GE(gap, comp - 1e-9) << "proc " << i << " round " << r;
    }
  }
}

TEST(GridSim, OverlappedInvalidRoundsThrow) {
  auto platform = paper_platform();
  auto dist = core::uniform_distribution(100, platform.size());
  EXPECT_THROW(simulate_rounds_overlapped(platform, dist, 0), lbs::Error);
}

TEST(GridSim, BalancedBeatsUniformInSimulationToo) {
  auto platform = paper_platform();
  long long n = model::kPaperRayCount;
  auto balanced = core::plan_scatter(platform, n);
  auto uniform = core::plan_scatter(platform, n, core::Algorithm::Uniform);
  auto balanced_sim = simulate_scatter(platform, balanced.distribution);
  auto uniform_sim = simulate_scatter(platform, uniform.distribution);
  EXPECT_LT(balanced_sim.timeline.makespan(), 0.6 * uniform_sim.timeline.makespan());
  // Figure 3: balanced spread is a few percent; Figure 2: uniform is huge.
  EXPECT_LT(balanced_sim.timeline.finish_spread(), 0.02);
  EXPECT_GT(uniform_sim.timeline.finish_spread(), 0.5);
}

TEST(GridSim, TimelineMetricsConsistent) {
  auto platform = paper_platform();
  auto dist = core::uniform_distribution(10000, platform.size());
  auto result = simulate_scatter(platform, dist);
  const auto& timeline = result.timeline;
  EXPECT_LE(timeline.earliest_finish(), timeline.latest_finish());
  EXPECT_EQ(timeline.makespan(), timeline.latest_finish());
  EXPECT_GE(timeline.finish_spread(), 0.0);
  EXPECT_LE(timeline.finish_spread(), 1.0);
  auto rows = timeline.gantt_rows();
  EXPECT_EQ(rows.size(), timeline.traces.size());
}

TEST(GridSim, RejectsBadOptions) {
  auto platform = paper_platform();
  auto dist = core::uniform_distribution(100, platform.size());
  SimOptions bad_gather;
  bad_gather.gather_ratio = -1.0;
  EXPECT_THROW(simulate_scatter(platform, dist, bad_gather), lbs::Error);
  SimOptions bad_perturbation;
  bad_perturbation.perturbations.push_back({99, 0.0, 1.0, 0.5});
  EXPECT_THROW(simulate_scatter(platform, dist, bad_perturbation), lbs::Error);
  EXPECT_THROW(simulate_rounds(platform, dist, 0), lbs::Error);
}

TEST(GridSim, ZeroShareProcessorNeverBusy) {
  auto platform = paper_platform();
  core::Distribution dist;
  dist.counts.assign(static_cast<std::size_t>(platform.size()), 0);
  dist.counts.back() = 1000;  // root does everything
  auto result = simulate_scatter(platform, dist);
  for (int i = 0; i + 1 < platform.size(); ++i) {
    const auto& trace = result.timeline.traces[static_cast<std::size_t>(i)];
    EXPECT_EQ(trace.comm_time(), 0.0);
    EXPECT_EQ(trace.compute_end, trace.recv_end);
  }
}

}  // namespace
}  // namespace lbs::gridsim
