#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "support/error.hpp"

namespace lbs::support {
namespace {

TEST(ThreadPool, CoversRangeExactlyOnce) {
  ThreadPool pool(3);
  constexpr long long kN = 100'000;
  std::vector<std::atomic<int>> visits(kN);
  pool.for_range(0, kN, 128, [&](long long begin, long long end) {
    for (long long i = begin; i < end; ++i) {
      visits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (long long i = 0; i < kN; ++i) {
    ASSERT_EQ(visits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, WorksWithZeroWorkers) {
  ThreadPool pool(0);
  long long sum = 0;
  pool.for_range(0, 1000, 64, [&](long long begin, long long end) {
    for (long long i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum, 999 * 1000 / 2);
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.for_range(5, 5, 1, [&](long long, long long) { ++calls; });
  pool.for_range(7, 3, 1, [&](long long, long long) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, RespectsGrainBounds) {
  ThreadPool pool(2);
  std::mutex mu;
  std::vector<long long> lengths;
  pool.for_range(0, 1000, 37, [&](long long begin, long long end) {
    std::lock_guard lock(mu);
    lengths.push_back(end - begin);
  });
  long long total = std::accumulate(lengths.begin(), lengths.end(), 0LL);
  EXPECT_EQ(total, 1000);
  for (long long len : lengths) {
    EXPECT_GE(len, 1);
    EXPECT_LE(len, 37);
  }
}

TEST(ThreadPool, PropagatesFirstExceptionAndSurvives) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.for_range(0, 10'000, 8,
                              [&](long long begin, long long) {
                                if (begin >= 5000) throw Error("boom");
                              }),
               Error);
  // The pool must stay usable after a failed job.
  std::atomic<long long> count{0};
  pool.for_range(0, 1000, 16, [&](long long begin, long long end) {
    count.fetch_add(end - begin);
  });
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, ManySequentialJobs) {
  ThreadPool pool(2);
  for (int round = 0; round < 200; ++round) {
    std::atomic<long long> count{0};
    pool.for_range(0, 500, 16, [&](long long begin, long long end) {
      count.fetch_add(end - begin);
    });
    ASSERT_EQ(count.load(), 500) << "round " << round;
  }
}

TEST(ThreadPool, ConcurrentSubmittersSerialize) {
  ThreadPool pool(2);
  std::atomic<long long> total{0};
  auto submit = [&] {
    for (int round = 0; round < 50; ++round) {
      pool.for_range(0, 200, 8, [&](long long begin, long long end) {
        total.fetch_add(end - begin);
      });
    }
  };
  std::thread a(submit);
  std::thread b(submit);
  a.join();
  b.join();
  EXPECT_EQ(total.load(), 2 * 50 * 200);
}

TEST(ThreadPool, ReentrantForRangeRunsInline) {
  ThreadPool pool(2);
  std::atomic<long long> inner_total{0};
  pool.for_range(0, 8, 1, [&](long long begin, long long end) {
    for (long long i = begin; i < end; ++i) {
      // A nested submission from a worker must not deadlock.
      pool.for_range(0, 100, 10, [&](long long b, long long e) {
        inner_total.fetch_add(e - b);
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 8 * 100);
}

TEST(ThreadPool, DefaultParallelismIsPositive) {
  EXPECT_GE(default_parallelism(), 1);
  EXPECT_GE(shared_pool().parallelism(), 1);
}

}  // namespace
}  // namespace lbs::support
