#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace lbs::support {
namespace {

TEST(Summarize, SingleValue) {
  std::vector<double> values{3.5};
  auto s = summarize(values);
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 3.5);
  EXPECT_EQ(s.max, 3.5);
  EXPECT_EQ(s.mean, 3.5);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Summarize, KnownValues) {
  std::vector<double> values{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  auto s = summarize(values);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);
  EXPECT_EQ(s.min, 2.0);
  EXPECT_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.sum, 40.0);
}

TEST(Summarize, EmptyThrows) {
  std::vector<double> values;
  EXPECT_THROW(summarize(values), Error);
}

TEST(Summary, RelativeSpreadMatchesPaperUsage) {
  // Paper, Fig. 3: earliest 405 s, latest 430 s -> ~6% of total duration.
  std::vector<double> finish{405.0, 430.0};
  auto s = summarize(finish);
  EXPECT_NEAR(s.relative_spread(), 0.058, 0.001);
}

TEST(FitLine, RecoversExactLine) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  std::vector<double> ys{5.0, 7.0, 9.0, 11.0};  // y = 3 + 2x
  auto fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLine, NoisyDataApproximatesLine) {
  Rng rng(99);
  std::vector<double> xs, ys;
  for (int i = 1; i <= 200; ++i) {
    xs.push_back(static_cast<double>(i));
    ys.push_back(0.5 + 0.25 * i + rng.normal(0.0, 0.1));
  }
  auto fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.intercept, 0.5, 0.1);
  EXPECT_NEAR(fit.slope, 0.25, 0.01);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(FitLine, DegenerateXThrows) {
  std::vector<double> xs{2.0, 2.0};
  std::vector<double> ys{1.0, 3.0};
  EXPECT_THROW(fit_line(xs, ys), Error);
}

TEST(FitLine, TooFewSamplesThrows) {
  std::vector<double> xs{1.0};
  std::vector<double> ys{1.0};
  EXPECT_THROW(fit_line(xs, ys), Error);
}

TEST(FitProportional, RecoversSlopeThroughOrigin) {
  std::vector<double> xs{10.0, 20.0, 40.0};
  std::vector<double> ys{1.0, 2.0, 4.0};
  EXPECT_NEAR(fit_proportional(xs, ys), 0.1, 1e-12);
}

TEST(FitProportional, MinimizesSquaredError) {
  // For y = {1, 3} at x = {1, 2}, least squares slope = (1+6)/(1+4) = 1.4.
  std::vector<double> xs{1.0, 2.0};
  std::vector<double> ys{1.0, 3.0};
  EXPECT_NEAR(fit_proportional(xs, ys), 1.4, 1e-12);
}

TEST(Quantile, Endpoints) {
  std::vector<double> values{3.0, 1.0, 2.0};
  EXPECT_EQ(quantile(values, 0.0), 1.0);
  EXPECT_EQ(quantile(values, 1.0), 3.0);
  EXPECT_EQ(quantile(values, 0.5), 2.0);
}

TEST(Quantile, Interpolates) {
  std::vector<double> values{0.0, 10.0};
  EXPECT_NEAR(quantile(values, 0.25), 2.5, 1e-12);
  EXPECT_NEAR(quantile(values, 0.75), 7.5, 1e-12);
}

TEST(Quantile, OutOfRangeThrows) {
  std::vector<double> values{1.0};
  EXPECT_THROW(quantile(values, -0.1), Error);
  EXPECT_THROW(quantile(values, 1.1), Error);
}

class FitPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FitPropertyTest, FitLineResidualsSumToZero) {
  Rng rng(GetParam());
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(rng.uniform(0.0, 100.0));
    ys.push_back(rng.uniform(-10.0, 10.0));
  }
  auto fit = fit_line(xs, ys);
  double residual_sum = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) residual_sum += ys[i] - fit.at(xs[i]);
  EXPECT_NEAR(residual_sum, 0.0, 1e-8);
}

TEST_P(FitPropertyTest, QuantileIsMonotoneInQ) {
  Rng rng(GetParam() ^ 0x5555);
  std::vector<double> values;
  for (int i = 0; i < 31; ++i) values.push_back(rng.uniform(-5.0, 5.0));
  double prev = quantile(values, 0.0);
  for (int step = 1; step <= 20; ++step) {
    double q = static_cast<double>(step) / 20.0;
    double current = quantile(values, q);
    EXPECT_GE(current, prev - 1e-12);
    prev = current;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FitPropertyTest, ::testing::Values(10u, 20u, 30u));

}  // namespace
}  // namespace lbs::support
