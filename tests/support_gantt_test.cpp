// Half-open interval contract of the Gantt renderer and the gridsim
// timeline (observability satellite): both sides agree on [start, end)
// phases, so a zero-length activity — e.g. a zero-byte send — is no
// interval at all, in the chart, in the timeline rows, and in the trace.

#include <gtest/gtest.h>

#include <string>

#include "core/distribution.hpp"
#include "gridsim/gridsim.hpp"
#include "gridsim/timeline.hpp"
#include "model/platform.hpp"
#include "support/error.hpp"
#include "support/gantt.hpp"

namespace lbs {
namespace {

// Just the row lines of the rendered chart — the scale line ("3.0 s") and
// the legend both contain phase characters and would defeat a "char
// absent" assertion.
std::string chart_body(const support::GanttChart& chart) {
  std::string rendered = chart.to_string();
  auto scale = rendered.find("+--");
  return scale == std::string::npos ? rendered : rendered.substr(0, scale);
}

TEST(Gantt, NegativeSpanThrows) {
  support::GanttChart chart;
  support::GanttRow row;
  row.label = "bad";
  row.spans.push_back({2.0, 1.0, support::PhaseKind::Send});
  EXPECT_THROW(chart.add_row(std::move(row)), Error);
}

TEST(Gantt, ZeroLengthSpanEmitsNoInterval) {
  support::GanttChart chart(40);
  support::GanttRow row;
  row.label = "p0";
  // A zero-byte send: end == start means no activity under [start, end).
  row.spans.push_back({1.0, 1.0, support::PhaseKind::Send});
  row.spans.push_back({1.0, 3.0, support::PhaseKind::Compute});
  chart.add_row(std::move(row));
  std::string body = chart_body(chart);
  EXPECT_EQ(body.find(support::phase_char(support::PhaseKind::Send)),
            std::string::npos)
      << body;
  EXPECT_NE(body.find(support::phase_char(support::PhaseKind::Compute)),
            std::string::npos)
      << body;
}

TEST(Gantt, AdjacentHalfOpenSpansShareABoundary) {
  // [0, 1) receive followed by [1, 2) compute is a legal, gap-free row —
  // the boundary instant belongs to the later span only.
  support::GanttChart chart(40);
  support::GanttRow row;
  row.label = "p0";
  row.spans.push_back({0.0, 1.0, support::PhaseKind::Receive});
  row.spans.push_back({1.0, 2.0, support::PhaseKind::Compute});
  EXPECT_NO_THROW(chart.add_row(std::move(row)));
  std::string body = chart_body(chart);
  EXPECT_NE(body.find(support::phase_char(support::PhaseKind::Receive)),
            std::string::npos);
  EXPECT_NE(body.find(support::phase_char(support::PhaseKind::Compute)),
            std::string::npos);
}

TEST(Gantt, TimelineRowsDropZeroLengthPhases) {
  gridsim::Timeline timeline;
  gridsim::ProcessorTrace normal;
  normal.label = "worker";
  normal.items = 5;
  normal.recv_start = 0.0;
  normal.recv_end = 1.0;
  normal.compute_end = 2.0;
  gridsim::ProcessorTrace idle;  // zero items: recv window collapsed
  idle.label = "idle";
  idle.recv_start = 1.0;
  idle.recv_end = 1.0;
  idle.compute_end = 1.0;
  timeline.traces = {normal, idle};

  auto rows = timeline.gantt_rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].spans.size(), 2u);
  EXPECT_TRUE(rows[1].spans.empty());

  // The chart accepts both without inventing degenerate intervals.
  support::GanttChart chart(40);
  for (auto& row : rows) chart.add_row(std::move(row));
  EXPECT_FALSE(chart.to_string().empty());
}

TEST(Gantt, SimulatedZeroItemProcessorEmitsNoIntervalAnywhere) {
  // Regression for the Timeline-vs-gantt disagreement: a processor with a
  // zero-byte send must produce no receive interval in the gantt rows and
  // no events in the trace log — on both sides of the former off-by-one.
  model::Platform platform;
  for (int i = 0; i < 2; ++i) {
    model::Processor proc;
    proc.label = "w" + std::to_string(i);
    proc.comm = model::Cost::linear(1e-3);
    proc.comp = model::Cost::linear(1e-2);
    platform.processors.push_back(proc);
  }
  model::Processor root;
  root.label = "root";
  root.comm = model::Cost::zero();
  root.comp = model::Cost::linear(1e-2);
  platform.processors.push_back(root);

  core::Distribution distribution;
  distribution.counts = {0, 7, 3};  // worker 0 gets the zero-byte send
  auto sim = gridsim::simulate_scatter(platform, distribution);

  const auto& starved = sim.timeline.traces[0];
  EXPECT_EQ(starved.items, 0);
  EXPECT_EQ(starved.comm_time(), 0.0);
  auto rows = sim.timeline.gantt_rows();
  EXPECT_TRUE(rows[0].spans.empty());

  auto log = gridsim::to_trace_log(sim.timeline);
  for (const auto& event : log.events) {
    EXPECT_NE(event.rank, 0) << obs::to_string(event.type);
    EXPECT_NE(event.peer, 0) << obs::to_string(event.type);
  }
  EXPECT_FALSE(log.events.empty());
}

}  // namespace
}  // namespace lbs
