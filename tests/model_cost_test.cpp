#include "model/cost.hpp"

#include <gtest/gtest.h>

#include "model/calibration.hpp"
#include "support/error.hpp"

namespace lbs::model {
namespace {

TEST(Cost, ZeroIsAlwaysZero) {
  Cost c = Cost::zero();
  EXPECT_EQ(c(0), 0.0);
  EXPECT_EQ(c(1000000), 0.0);
  EXPECT_TRUE(c.is_increasing());
  ASSERT_TRUE(c.affine().has_value());
  EXPECT_EQ(c.affine()->per_item, 0.0);
}

TEST(Cost, LinearScales) {
  Cost c = Cost::linear(0.009288);
  EXPECT_EQ(c(0), 0.0);
  EXPECT_DOUBLE_EQ(c(1), 0.009288);
  EXPECT_DOUBLE_EQ(c(1000), 9.288);
  EXPECT_DOUBLE_EQ(c.per_item_slope(), 0.009288);
}

TEST(Cost, LinearRejectsNegativeSlope) {
  EXPECT_THROW(Cost::linear(-1.0), lbs::Error);
}

TEST(Cost, AffineIsNullAtZero) {
  // The paper's framework requires Tcomm(i, 0) = Tcomp(i, 0) = 0 even when
  // a per-message latency exists.
  Cost c = Cost::affine(0.5, 0.01);
  EXPECT_EQ(c(0), 0.0);
  EXPECT_DOUBLE_EQ(c(1), 0.51);
  EXPECT_DOUBLE_EQ(c(100), 1.5);
  ASSERT_TRUE(c.affine().has_value());
  EXPECT_EQ(c.affine()->fixed, 0.5);
}

TEST(Cost, AffineWithZeroFixedCollapsesToLinear) {
  Cost c = Cost::affine(0.0, 0.2);
  EXPECT_DOUBLE_EQ(c(5), 1.0);
  EXPECT_EQ(c.affine()->fixed, 0.0);
}

TEST(Cost, NegativeItemsThrow) {
  EXPECT_THROW(Cost::linear(1.0)(-1), lbs::Error);
  EXPECT_THROW(Cost::affine(1.0, 1.0)(-5), lbs::Error);
}

TEST(Cost, TabulatedInterpolates) {
  Cost c = Cost::tabulated({{10, 1.0}, {20, 3.0}});
  EXPECT_EQ(c(0), 0.0);
  EXPECT_DOUBLE_EQ(c(5), 0.5);    // interpolating from implicit (0,0)
  EXPECT_DOUBLE_EQ(c(10), 1.0);
  EXPECT_DOUBLE_EQ(c(15), 2.0);
  EXPECT_DOUBLE_EQ(c(20), 3.0);
}

TEST(Cost, TabulatedExtrapolatesLastSlope) {
  Cost c = Cost::tabulated({{10, 1.0}, {20, 3.0}});
  EXPECT_DOUBLE_EQ(c(30), 5.0);  // slope 0.2 past the last sample
}

TEST(Cost, TabulatedSingleSampleExtrapolatesProportionally) {
  Cost c = Cost::tabulated({{10, 2.0}});
  EXPECT_DOUBLE_EQ(c(20), 4.0);
}

TEST(Cost, TabulatedIsNotAffine) {
  Cost c = Cost::tabulated({{10, 1.0}, {20, 3.0}});
  EXPECT_FALSE(c.affine().has_value());
  EXPECT_THROW(c.per_item_slope(), lbs::Error);
}

TEST(Cost, TabulatedDetectsNonIncreasing) {
  Cost increasing = Cost::tabulated({{10, 1.0}, {20, 3.0}});
  EXPECT_TRUE(increasing.is_increasing());
  Cost dipping = Cost::tabulated({{10, 3.0}, {20, 1.0}});
  EXPECT_FALSE(dipping.is_increasing());
}

TEST(Cost, TabulatedRejectsUnsortedSamples) {
  EXPECT_THROW(Cost::tabulated({{20, 1.0}, {10, 2.0}}), lbs::Error);
  EXPECT_THROW(Cost::tabulated({{10, 1.0}, {10, 2.0}}), lbs::Error);
  EXPECT_THROW(Cost::tabulated({}), lbs::Error);
}

TEST(Cost, ChunkedAddsStepPerChunk) {
  Cost c = Cost::chunked(0.1, 10, 1.0);
  EXPECT_EQ(c(0), 0.0);
  EXPECT_DOUBLE_EQ(c(9), 0.9);
  EXPECT_DOUBLE_EQ(c(10), 2.0);   // 1.0 + one step
  EXPECT_DOUBLE_EQ(c(25), 4.5);   // 2.5 + two steps
  EXPECT_TRUE(c.is_increasing());
  EXPECT_FALSE(c.affine().has_value());
}

TEST(Cost, ChunkedWithZeroStepIsAffine) {
  Cost c = Cost::chunked(0.1, 10, 0.0);
  EXPECT_TRUE(c.affine().has_value());
}

TEST(Cost, DefaultConstructedIsZero) {
  Cost c;
  EXPECT_EQ(c(123), 0.0);
}

TEST(Cost, FromBandwidthMatchesHandComputation) {
  // 100 Mbit/s moving 48-byte events: 48*8 / 100e6 = 3.84 us/item.
  auto cost = Cost::from_bandwidth(100.0, 48);
  EXPECT_NEAR(cost.per_item_slope(), 3.84e-6, 1e-12);
  EXPECT_EQ(cost(0), 0.0);
  // merlin's 10 Mbit/s hub with ~1 KB rays would give ~8.2e-4 s/ray.
  auto hub = Cost::from_bandwidth(10.0, 1024, 0.001);
  ASSERT_TRUE(hub.affine().has_value());
  EXPECT_NEAR(hub.affine()->per_item, 8.192e-4, 1e-9);
  EXPECT_EQ(hub.affine()->fixed, 0.001);
}

TEST(Cost, FromBandwidthRejectsBadInput) {
  EXPECT_THROW(Cost::from_bandwidth(0.0, 48), lbs::Error);
  EXPECT_THROW(Cost::from_bandwidth(-10.0, 48), lbs::Error);
  EXPECT_THROW(Cost::from_bandwidth(100.0, 0), lbs::Error);
}

// spec()/from_spec round-trips every kind exactly: same fingerprint, same
// evaluations. This is what the planning service's wire protocol leans on
// — a platform decoded from a frame must produce the same cache key the
// sender computed.
TEST(CostSpec, RoundTripsEveryKindExactly) {
  std::vector<Cost> costs = {
      Cost::zero(),
      Cost::linear(0.009288),
      Cost::affine(0.1, 8.192e-4),
      Cost::tabulated({{10, 1.0}, {100, 8.5}, {1000, 77.25}}),
      Cost::chunked(0.1, 5, 1.0),
      Cost::scaled(Cost::linear(0.5), 1.75),
      Cost::scaled(Cost::tabulated({{5, 1.0}, {50, 9.5}}), 0.25),
  };
  for (const auto& cost : costs) {
    Cost round = Cost::from_spec(cost.spec());
    EXPECT_EQ(round.fingerprint(), cost.fingerprint());
    for (long long n : {0LL, 1LL, 7LL, 100LL, 12345LL}) {
      EXPECT_DOUBLE_EQ(round(n), cost(n)) << "n=" << n;
    }
    EXPECT_EQ(round.is_increasing(), cost.is_increasing());
  }
}

TEST(CostSpec, SpecFieldsCarryTheCoefficients) {
  auto affine = Cost::affine(3.5, 0.01).spec();
  EXPECT_EQ(affine.kind, CostSpec::Kind::Affine);
  EXPECT_DOUBLE_EQ(affine.a, 0.01);  // per-item
  EXPECT_DOUBLE_EQ(affine.b, 3.5);   // fixed

  auto chunked = Cost::chunked(0.1, 5, 1.0).spec();
  EXPECT_EQ(chunked.kind, CostSpec::Kind::Chunked);
  EXPECT_EQ(chunked.chunk, 5);

  auto scaled = Cost::scaled(Cost::linear(0.5), 2.0).spec();
  EXPECT_EQ(scaled.kind, CostSpec::Kind::Scaled);
  ASSERT_NE(scaled.inner, nullptr);
  EXPECT_EQ(scaled.inner->kind, CostSpec::Kind::Linear);
  EXPECT_DOUBLE_EQ(scaled.inner->a, 0.5);
}

TEST(CostSpec, FromSpecRejectsScaledWithoutInner) {
  CostSpec spec;
  spec.kind = CostSpec::Kind::Scaled;
  spec.a = 2.0;
  EXPECT_THROW(static_cast<void>(Cost::from_spec(spec)), lbs::Error);
}

TEST(Calibrate, RecoversLinearModel) {
  std::vector<std::pair<long long, double>> samples;
  for (long long x = 1000; x <= 10000; x += 1000) {
    samples.emplace_back(x, 0.009288 * static_cast<double>(x));
  }
  auto result = calibrate(samples);
  EXPECT_TRUE(result.linear_model);
  EXPECT_NEAR(result.alpha, 0.009288, 1e-9);
  EXPECT_NEAR(result.cost(817101), 0.009288 * 817101, 1e-3);
}

TEST(Calibrate, KeepsSignificantIntercept) {
  std::vector<std::pair<long long, double>> samples;
  for (long long x = 10; x <= 100; x += 10) {
    samples.emplace_back(x, 5.0 + 0.01 * static_cast<double>(x));
  }
  auto result = calibrate(samples);
  EXPECT_FALSE(result.linear_model);
  EXPECT_NEAR(result.intercept, 5.0, 1e-9);
  EXPECT_NEAR(result.alpha, 0.01, 1e-9);
}

TEST(Calibrate, DropsNegligibleIntercept) {
  std::vector<std::pair<long long, double>> samples;
  for (long long x = 100000; x <= 1000000; x += 100000) {
    samples.emplace_back(x, 0.001 + 1e-5 * static_cast<double>(x));
  }
  auto result = calibrate(samples);
  EXPECT_TRUE(result.linear_model);
  // The proportional refit absorbs the tiny intercept into the slope, so
  // allow a proportional-fit bias well under 0.1% of the slope.
  EXPECT_NEAR(result.alpha, 1e-5, 1e-8);
}

TEST(Calibrate, RequiresTwoSamples) {
  std::vector<std::pair<long long, double>> samples{{10, 1.0}};
  EXPECT_THROW(calibrate(samples), lbs::Error);
}

TEST(Rating, MatchesTable1Convention) {
  // Table 1: caseb (α = 0.004629) rates 2.00 relative to dinadan (0.009288).
  EXPECT_NEAR(rating(0.004629, 0.009288), 2.0, 0.01);
  EXPECT_NEAR(rating(0.016156, 0.009288), 0.57, 0.005);
  EXPECT_DOUBLE_EQ(rating(0.009288, 0.009288), 1.0);
}

}  // namespace
}  // namespace lbs::model
