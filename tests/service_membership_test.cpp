// Membership unit + property tests: the view file format, the v4
// membership/handoff wire frames, the serving-only ring, and THE
// convergence property — replaying any sequence of MembershipUpdates in
// any delivery order, to any subset of holders, converges every holder
// to the max-epoch view, monotonically, with no flapping. That property
// is the whole correctness argument for gossiping views over three
// independent channels (file watcher, control frame, WrongEpoch
// redirect) without any ordering guarantees between them.
#include "service/membership.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "core/planner.hpp"
#include "model/testbed.hpp"
#include "service/protocol.hpp"
#include "support/error.hpp"

namespace lbs::service {
namespace {

std::string temp_path(const std::string& tag) {
  static int counter = 0;
  return "/tmp/lbs_membership_test_" + std::to_string(::getpid()) + "_" + tag +
         "_" + std::to_string(++counter);
}

MembershipView sample_view() {
  MembershipView view;
  view.epoch = 7;
  view.members = {
      Member{Endpoint::tcp("10.0.0.1", 4077), ReplicaState::Serving},
      Member{Endpoint::tcp("10.0.0.2", 4077), ReplicaState::Serving},
      Member{Endpoint::parse("unix:/tmp/old.sock"), ReplicaState::Draining},
      Member{Endpoint::tcp("10.0.0.4", 4077), ReplicaState::Joining},
  };
  return view;
}

TEST(Membership, FileFormatRoundTripsAllStates) {
  MembershipView view = sample_view();
  std::string text = serialize_view(view);
  EXPECT_EQ(parse_view(text), view);

  const std::string path = temp_path("roundtrip");
  write_view_file(path, view);
  EXPECT_EQ(read_view_file(path), view);

  // Overwrite is atomic (tmp + rename): re-writing leaves no .tmp debris
  // and the reader sees the new view.
  view.epoch = 8;
  view.members[3].state = ReplicaState::Serving;
  write_view_file(path, view);
  EXPECT_EQ(read_view_file(path), view);
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good()) << "temp file left behind";
  std::remove(path.c_str());
}

TEST(Membership, ParseToleratesCommentsAndWhitespace) {
  MembershipView view = parse_view(
      "# fleet view\n"
      "\n"
      "  epoch 3\n"
      "\tserving tcp:a:1\n"
      "  draining unix:/tmp/b.sock  \n"
      "# trailing comment\n");
  EXPECT_EQ(view.epoch, 3u);
  ASSERT_EQ(view.members.size(), 2u);
  EXPECT_EQ(view.members[0].state, ReplicaState::Serving);
  EXPECT_EQ(view.members[1].state, ReplicaState::Draining);
}

TEST(Membership, ParseRejectsGarbage) {
  EXPECT_THROW(static_cast<void>(parse_view("")), lbs::Error);
  EXPECT_THROW(static_cast<void>(parse_view("serving tcp:a:1\n")), lbs::Error);
  EXPECT_THROW(static_cast<void>(parse_view("epoch banana\n")), lbs::Error);
  EXPECT_THROW(static_cast<void>(parse_view("epoch 1\nflying tcp:a:1\n")), lbs::Error);
  EXPECT_THROW(static_cast<void>(parse_view("epoch 1\nserving\n")), lbs::Error);
  EXPECT_THROW(
      static_cast<void>(parse_view("epoch 1\nserving tcp:a:1\nserving tcp:a:1\n")),
      lbs::Error);
  EXPECT_THROW(static_cast<void>(read_view_file("/nonexistent/view")), lbs::Error);
}

TEST(Membership, RingUsesServingMembersOnly) {
  MembershipView view = sample_view();
  support::HashRing ring = ring_of(view);
  EXPECT_EQ(ring.node_count(), 2);  // draining + joining are invisible
  std::vector<std::string> nodes = ring.nodes();
  std::sort(nodes.begin(), nodes.end());
  EXPECT_EQ(nodes[0], "tcp:10.0.0.1:4077");
  EXPECT_EQ(nodes[1], "tcp:10.0.0.2:4077");

  EXPECT_EQ(view.serving_endpoints().size(), 2u);
  EXPECT_NE(view.find(Endpoint::tcp("10.0.0.4", 4077)), nullptr);
  EXPECT_EQ(view.find(Endpoint::tcp("10.0.0.9", 4077)), nullptr);
}

// Bounded remap, stated on views: promoting one joiner in a p-replica
// fleet moves roughly 1/(p+1) of the keys and NEVER moves a key between
// two replicas that are in both rings — the property the reshard bench
// gates on (a key either stays home or moves to the new replica).
TEST(Membership, PromotingAJoinerRemapsBoundedly) {
  MembershipView before;
  before.epoch = 1;
  for (int i = 0; i < 3; ++i) {
    before.members.push_back(
        Member{Endpoint::tcp("replica" + std::to_string(i), 4077),
               ReplicaState::Serving});
  }
  MembershipView after = before;
  after.epoch = 2;
  after.members.push_back(
      Member{Endpoint::tcp("replica3", 4077), ReplicaState::Serving});

  support::HashRing old_ring = ring_of(before);
  support::HashRing new_ring = ring_of(after);
  constexpr int kKeys = 4000;
  int moved = 0;
  for (int key = 0; key < kKeys; ++key) {
    auto hash = support::HashRing::mix(static_cast<std::uint64_t>(key) * 761 + 13);
    const std::string& old_home = old_ring.node_for(hash);
    const std::string& new_home = new_ring.node_for(hash);
    if (old_home != new_home) {
      ++moved;
      EXPECT_EQ(new_home, "tcp:replica3:4077")
          << "key moved between two surviving replicas";
    }
  }
  // Expect ≈ kKeys/4; allow generous slack for hash variance, but a
  // naive mod-N rehash would move ~3/4 of the keys and trip this bound.
  EXPECT_GT(moved, kKeys / 10);
  EXPECT_LT(moved, kKeys / 2);
}

TEST(MembershipWire, ViewFramesRoundTrip) {
  MembershipView view = sample_view();

  Message update = decode_message(encode_membership_update(42, view));
  EXPECT_EQ(update.type, MessageType::MembershipUpdate);
  EXPECT_EQ(update.id, 42u);
  ASSERT_TRUE(update.view.has_value());
  EXPECT_EQ(*update.view, view);

  Message ack = decode_message(encode_membership_ack(43, view));
  EXPECT_EQ(ack.type, MessageType::MembershipAck);
  ASSERT_TRUE(ack.view.has_value());
  EXPECT_EQ(*ack.view, view);

  Message range = decode_message(encode_snapshot_range(44, view, "tcp:me:1"));
  EXPECT_EQ(range.type, MessageType::SnapshotRange);
  ASSERT_TRUE(range.view.has_value());
  EXPECT_EQ(*range.view, view);
  EXPECT_EQ(range.text, "tcp:me:1");
}

TEST(MembershipWire, WrongEpochResponseCarriesTheCurrentView) {
  PlanResponse response;
  response.id = 9;
  response.status = PlanStatus::WrongEpoch;
  response.current_view = sample_view();
  Message decoded = decode_message(encode_plan_response(response));
  ASSERT_TRUE(decoded.plan_response.has_value());
  EXPECT_EQ(decoded.plan_response->status, PlanStatus::WrongEpoch);
  EXPECT_EQ(decoded.plan_response->current_view, response.current_view);
}

TEST(MembershipWire, PlanRequestCarriesTheEpoch) {
  auto grid = model::paper_testbed();
  auto platform = model::make_platform(grid, model::paper_root(grid));
  PlanRequest request;
  request.id = 5;
  request.items = 1000;
  request.epoch = 31;
  request.platform = platform;
  Message decoded = decode_message(encode_plan_request(request));
  ASSERT_TRUE(decoded.plan_request.has_value());
  EXPECT_EQ(decoded.plan_request->epoch, 31u);
}

TEST(MembershipWire, SnapshotRangeDataRoundTripsEntries) {
  auto grid = model::paper_testbed();
  auto platform = model::make_platform(grid, model::paper_root(grid));
  std::vector<SnapshotEntry> entries;
  for (long long items : {1000LL, 2000LL}) {
    core::ScatterPlan plan = core::plan_scatter(platform, items);
    entries.emplace_back(core::make_plan_key(platform, items, core::Algorithm::Auto),
                         plan);
  }
  Message decoded = decode_message(encode_snapshot_range_data(77, entries));
  EXPECT_EQ(decoded.type, MessageType::SnapshotRangeData);
  ASSERT_EQ(decoded.entries.size(), 2u);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(decoded.entries[i].first, entries[i].first);
    EXPECT_EQ(decoded.entries[i].second.distribution.counts,
              entries[i].second.distribution.counts);
  }
}

TEST(MembershipWire, RejectsHostileMemberCount) {
  // A frame claiming kMaxViewMembers+1 members must die in the decoder
  // before any allocation trusts the count.
  WireWriter out;
  out.put_u8(kProtocolVersion);
  out.put_u8(static_cast<std::uint8_t>(MessageType::MembershipUpdate));
  out.put_u64(1);
  out.put_u64(99);                    // epoch
  out.put_u32(kMaxViewMembers + 1);   // hostile count
  EXPECT_THROW(static_cast<void>(decode_message(out.bytes())), lbs::Error);
}

// THE convergence property. Random lifecycle: a pool of endpoints churns
// through join/promote/drain/remove transitions, minting one view per
// epoch. Each of several "clients" receives a random SUBSET of those
// updates in its own shuffled order (gossip with loss and reordering).
// Every client that saw the max-epoch update must hold exactly the
// max-epoch view; epochs must never decrease at any holder (no
// flapping); and replaying everything a second time must change nothing
// (idempotence).
TEST(MembershipProperty, ShuffledLossyDeliveryConvergesToMaxEpoch) {
  for (unsigned trial = 0; trial < 20; ++trial) {
    std::mt19937 rng(0xE1A5 + trial);
    std::vector<Endpoint> pool;
    for (int i = 0; i < 6; ++i) {
      pool.push_back(Endpoint::tcp("replica" + std::to_string(i), 4077));
    }

    // Mint the history: every epoch applies one random legal transition.
    MembershipView current;
    current.epoch = 1;
    current.members = {Member{pool[0], ReplicaState::Serving},
                       Member{pool[1], ReplicaState::Serving}};
    std::vector<MembershipView> history{current};
    for (int step = 0; step < 30; ++step) {
      MembershipView next = current;
      next.epoch = current.epoch + 1;
      const Endpoint& endpoint = pool[rng() % pool.size()];
      Member* member = next.find(endpoint);
      if (member == nullptr) {
        next.members.push_back(Member{endpoint, ReplicaState::Joining});
      } else {
        switch (rng() % 3) {
          case 0: member->state = ReplicaState::Serving; break;
          case 1: member->state = ReplicaState::Draining; break;
          default:
            next.members.erase(next.members.begin() +
                               (member - next.members.data()));
            break;
        }
      }
      if (next.members.empty()) continue;  // keep the fleet non-empty
      validate_view(next);
      current = next;
      history.push_back(current);
    }
    const MembershipView& final_view = history.back();

    for (int client = 0; client < 8; ++client) {
      // A random subset that always includes the final update, shuffled.
      std::vector<MembershipView> delivery;
      for (const MembershipView& view : history) {
        if (view.epoch == final_view.epoch || rng() % 3 != 0) {
          delivery.push_back(view);
        }
      }
      std::shuffle(delivery.begin(), delivery.end(), rng);

      MembershipView held;  // epoch 0: unversioned start
      std::uint64_t watermark = 0;
      for (const MembershipView& update : delivery) {
        bool adopted = adopt(held, update);
        EXPECT_GE(held.epoch, watermark) << "epoch flapped backwards";
        EXPECT_EQ(adopted, held.epoch > watermark);
        watermark = held.epoch;
      }
      EXPECT_EQ(held, final_view) << "client did not converge";

      // Idempotence: replaying the whole delivery changes nothing.
      for (const MembershipView& update : delivery) {
        EXPECT_FALSE(adopt(held, update));
      }
      EXPECT_EQ(held, final_view);
    }
  }
}

}  // namespace
}  // namespace lbs::service
