// Unit and edge-case tests for the adaptive runtime (core::AdaptivePlanner)
// and the make_ft_replanner cost-provider hook.
//
// The drift-scenario suite (tests/adaptive_scenario_test.cpp) gates the
// end-to-end behaviour; this file pins the machinery: replan-storm
// suppression under continuous drift (cooldown), warm plan-cache
// invalidation on refit (stale fingerprints never served), the provider
// hook picking up refreshed costs on the next recovery replan, the
// disabled-mode bit-identity, and TSan-clean concurrent
// refit-while-planning.

#include "core/adaptive.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <thread>
#include <vector>

#include "core/recovery.hpp"
#include "gridsim/faultsim.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace lbs::core {
namespace {

// A small heterogeneous linear platform, root last (paper convention).
model::Platform test_platform(int workers = 3) {
  model::Platform platform;
  for (int i = 0; i < workers; ++i) {
    model::Processor p;
    p.label = "w" + std::to_string(i);
    p.comm = model::Cost::linear(1e-5 * static_cast<double>(i + 1));
    p.comp = model::Cost::linear(1e-4 * static_cast<double>(i + 1));
    platform.processors.push_back(p);
  }
  model::Processor root;
  root.label = "root";
  root.comm = model::Cost::zero();
  root.comp = model::Cost::linear(2e-4);
  platform.processors.push_back(root);
  return platform;
}

// Observations as if `truth` executed the plan: exact Eq. 1 components.
std::vector<RankObservation> observe_on(const model::Platform& truth,
                                        const ScatterPlan& plan) {
  std::vector<RankObservation> observations;
  for (int i = 0; i < truth.size(); ++i) {
    RankObservation obs;
    obs.rank = i;
    obs.items = plan.distribution.counts[static_cast<std::size_t>(i)];
    obs.comm_seconds = truth[i].comm(obs.items);
    obs.comp_seconds = truth[i].comp(obs.items);
    observations.push_back(obs);
  }
  return observations;
}

// `truth` = the base platform with one worker's compute slowed by
// `factor` (a competing job on that node).
model::Platform degraded(const model::Platform& base, int position,
                         double slowdown) {
  model::Platform truth = base;
  auto& processor = truth.processors[static_cast<std::size_t>(position)];
  processor.comp = model::Cost::scaled(processor.comp, slowdown);
  return truth;
}

constexpr long long kItems = 120000;

TEST(AdaptivePlanner, NoDriftMeansNoRefitAndCacheHits) {
  auto base = test_platform();
  AdaptiveOptions options;
  options.min_samples = 1;
  AdaptivePlanner planner(base, options);

  auto first = planner.plan(kItems);
  for (int round = 0; round < 5; ++round) {
    auto plan = planner.plan(kItems);
    EXPECT_EQ(plan.distribution.counts, first.distribution.counts);
    auto outcome =
        planner.observe_round(plan, observe_on(base, plan), round * 100.0);
    EXPECT_LT(outcome.drift, 1e-9);
    EXPECT_FALSE(outcome.drift_detected);
    EXPECT_FALSE(outcome.refit);
    EXPECT_FALSE(outcome.replanned);
  }
  EXPECT_EQ(planner.platform_version(), 0u);
  EXPECT_EQ(planner.stats().replans, 0u);
  EXPECT_EQ(planner.stats().rounds, 5u);
}

TEST(AdaptivePlanner, DriftTriggersRefitAndReplan) {
  auto base = test_platform();
  auto truth = degraded(base, 0, 4.0);

  AdaptiveOptions options;
  options.min_samples = 2;
  obs::Metrics metrics;
  options.metrics = &metrics;
  AdaptivePlanner planner(base, options);

  auto plan = planner.plan(kItems);
  // Round 0: large drift but only one sample — no refit yet.
  auto outcome0 = planner.observe_round(plan, observe_on(truth, plan), 0.0);
  EXPECT_TRUE(outcome0.drift_detected);
  EXPECT_FALSE(outcome0.refit);

  auto outcome1 = planner.observe_round(plan, observe_on(truth, plan), 1.0);
  EXPECT_TRUE(outcome1.refit);
  EXPECT_TRUE(outcome1.replanned);
  EXPECT_EQ(planner.platform_version(), 1u);

  // The refitted model prices w0's compute near the degraded truth.
  auto refitted = planner.platform();
  long long w0_items = plan.distribution.counts[0];
  double priced = refitted[0].comp(w0_items);
  double actual = truth[0].comp(w0_items);
  EXPECT_NEAR(priced, actual, 0.10 * actual);

  // The post-refit plan shifts items away from the degraded worker and
  // beats the stale plan on the true platform.
  auto adapted = planner.plan(kItems);
  EXPECT_LT(adapted.distribution.counts[0], plan.distribution.counts[0]);
  EXPECT_LT(makespan(truth, adapted.distribution),
            makespan(truth, plan.distribution));

  EXPECT_EQ(metrics.counter("adaptive.refits").value(), 1u);
  EXPECT_EQ(metrics.counter("adaptive.replans").value(), 1u);
  EXPECT_GE(metrics.counter("adaptive.drift_detected").value(), 2u);
}

// Replan storm suppression: continuous drift with a long cooldown must
// yield exactly one replan, with the rest counted as suppressed.
TEST(AdaptivePlanner, CooldownSuppressesReplanStorm) {
  auto base = test_platform();
  auto truth = degraded(base, 1, 3.0);

  AdaptiveOptions options;
  options.min_samples = 1;
  options.cooldown = 100.0;
  options.forgetting = 0.5;  // adapt fast so the storm is all drift
  obs::Metrics metrics;
  options.metrics = &metrics;
  AdaptivePlanner planner(base, options);

  int replans = 0;
  double now = 0.0;
  for (int round = 0; round < 12; ++round) {
    auto plan = planner.plan(kItems);
    // Keep the truth moving so drift never settles inside the cooldown.
    auto moving = degraded(base, 1, 3.0 + 0.5 * round);
    auto outcome = planner.observe_round(plan, observe_on(moving, plan),
                                         now);
    if (outcome.replanned) ++replans;
    now += 5.0;  // 12 rounds x 5s << 100s cooldown
  }
  EXPECT_EQ(replans, 1);
  EXPECT_EQ(planner.stats().replans, 1u);
  EXPECT_GE(planner.stats().suppressed, 10u);
  EXPECT_EQ(metrics.counter("adaptive.suppressed").value(),
            planner.stats().suppressed);

  // Once the cooldown elapses, the next drifting round replans again.
  auto plan = planner.plan(kItems);
  auto outcome = planner.observe_round(
      plan, observe_on(degraded(base, 1, 9.0), plan), now + 200.0);
  EXPECT_TRUE(outcome.replanned);
  EXPECT_EQ(planner.stats().replans, 2u);
}

// Warm-cache invalidation: after a refit, plan() must re-solve on the new
// fingerprints — never serve the pre-refit distribution.
TEST(AdaptivePlanner, RefitInvalidatesWarmPlanCache) {
  auto base = test_platform();
  auto truth = degraded(base, 0, 5.0);

  AdaptiveOptions options;
  options.min_samples = 1;
  options.forgetting = 0.5;
  AdaptivePlanner planner(base, options);

  // Warm the cache thoroughly on the construction-time model.
  auto stale = planner.plan(kItems);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(planner.plan(kItems).distribution.counts,
              stale.distribution.counts);
  }

  auto outcome =
      planner.observe_round(stale, observe_on(truth, stale), 0.0);
  ASSERT_TRUE(outcome.refit);

  // Same request, new model: the distribution must match a fresh solve on
  // the refitted platform, not the warm stale entry.
  auto fresh = plan_scatter(planner.platform(), kItems);
  auto adapted = planner.plan(kItems);
  EXPECT_EQ(adapted.distribution.counts, fresh.distribution.counts);
  EXPECT_NE(adapted.distribution.counts, stale.distribution.counts);
}

// The satellite fix: a replanner built from a provider re-plans on the
// *current* costs, not the construction-time ones.
TEST(FtReplanner, ProviderHookPicksUpRefreshedCosts) {
  auto base = test_platform();

  // Mutable cost source standing in for a live monitor / adaptive model.
  model::Platform live = base;
  auto replan = make_ft_replanner([&live] { return live; });

  std::vector<int> alive = {0, 1, 2, 3};
  auto before = replan(alive, kItems);

  // Degrade w0's compute 6x; the same request must now shift items away.
  live = degraded(base, 0, 6.0);
  auto after = replan(alive, kItems);
  EXPECT_LT(after[0], before[0]);
  EXPECT_EQ(std::accumulate(after.begin(), after.end(), 0LL), kItems);

  // Regression guard for the old behaviour: the platform-value overload
  // is frozen at construction time by design, so the same mutation must
  // NOT leak into it.
  model::Platform snapshot = base;
  auto frozen = make_ft_replanner(snapshot);
  auto frozen_before = frozen(alive, kItems);
  snapshot = degraded(base, 0, 6.0);  // mutating the local has no effect
  EXPECT_EQ(frozen(alive, kItems), frozen_before);
}

// End to end through the fault-recovery machinery: a gridsim FT scatter
// whose replanner comes from an AdaptivePlanner that refit between
// scatters re-routes a victim's items using the refreshed costs.
TEST(FtReplanner, AdaptiveReplannerDrivesFaultRecovery) {
  auto base = test_platform();
  auto truth = degraded(base, 0, 5.0);

  AdaptiveOptions options;
  options.min_samples = 1;
  options.forgetting = 0.5;
  AdaptivePlanner planner(base, options);

  // One observed round refits the model toward the degraded truth.
  auto plan = planner.plan(kItems);
  ASSERT_TRUE(
      planner.observe_round(plan, observe_on(truth, plan), 0.0).refit);
  auto adapted = planner.plan(kItems);

  // Now crash worker 1 mid-scatter; recovery replans over the survivors
  // with the planner's live model.
  mq::FaultPlan fault;
  fault.crashes.push_back({/*rank=*/1, /*at_nominal_time=*/0.0});
  gridsim::FtSimOptions ft;
  ft.replan = planner.replanner();
  auto result = gridsim::simulate_scatter_ft(truth, adapted.distribution,
                                             fault, ft);
  EXPECT_EQ(result.report.deaths.size(), 1u);

  long long delivered = 0;
  for (const auto& trace : result.timeline.traces) delivered += trace.items;
  EXPECT_EQ(delivered, kItems);
  // The dead rank's share went somewhere else.
  EXPECT_EQ(result.timeline.traces[1].items, 0);
}

// Differential: with adaptation disabled, output is bit-identical to the
// plain planner no matter what observations stream in.
TEST(AdaptivePlanner, DisabledIsBitIdenticalToPlanScatter) {
  auto base = test_platform();
  auto truth = degraded(base, 0, 8.0);

  AdaptiveOptions options;
  options.enabled = false;
  options.min_samples = 1;
  AdaptivePlanner planner(base, options);

  auto reference = plan_scatter(base, kItems);
  for (int round = 0; round < 5; ++round) {
    auto plan = planner.plan(kItems);
    EXPECT_EQ(plan.distribution.counts, reference.distribution.counts);
    EXPECT_EQ(plan.displacements, reference.displacements);
    EXPECT_EQ(plan.algorithm_used, reference.algorithm_used);
    EXPECT_EQ(plan.predicted_makespan, reference.predicted_makespan);
    auto outcome = planner.observe_round(plan, observe_on(truth, plan),
                                         round * 10.0);
    EXPECT_FALSE(outcome.drift_detected);
    EXPECT_FALSE(outcome.replanned);
  }
  EXPECT_EQ(planner.platform_version(), 0u);
  EXPECT_EQ(planner.stats().rounds, 0u);
}

TEST(AdaptivePlanner, EmitsDriftRefitAndReplanEvents) {
  auto base = test_platform();
  auto truth = degraded(base, 0, 4.0);

  obs::Tracer tracer;
  AdaptiveOptions options;
  options.min_samples = 1;
  options.tracer = &tracer;
  options.clock = obs::Clock::Virtual;
  AdaptivePlanner planner(base, options);

  auto plan = planner.plan(kItems);
  planner.observe_round(plan, observe_on(truth, plan), 17.0);

  auto log = tracer.collect();
  auto drifts = log.of_type(obs::EventType::AdaptiveDrift);
  ASSERT_EQ(drifts.size(), 1u);
  EXPECT_TRUE(drifts[0].instant);
  EXPECT_EQ(drifts[0].clock, obs::Clock::Virtual);
  EXPECT_DOUBLE_EQ(drifts[0].start, 17.0);
  EXPECT_GT(drifts[0].arg0, 0);  // drift in ppm
  EXPECT_EQ(drifts[0].arg1, 1);  // threshold crossed

  auto refits = log.of_type(obs::EventType::AdaptiveRefit);
  ASSERT_EQ(refits.size(), 1u);
  EXPECT_GT(refits[0].arg0, 0);
  EXPECT_EQ(refits[0].arg1, 1);  // platform version

  auto replans = log.of_type(obs::EventType::RecoveryReplan);
  ASSERT_EQ(replans.size(), 1u);
  EXPECT_EQ(replans[0].arg0, kItems);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(AdaptivePlanner, RejectsMalformedObservations) {
  auto base = test_platform();
  AdaptiveOptions options;
  AdaptivePlanner planner(base, options);
  auto plan = planner.plan(kItems);

  std::vector<RankObservation> wrong_arity(3);
  EXPECT_THROW(planner.observe_round(plan, wrong_arity, 0.0), lbs::Error);

  auto duplicated = observe_on(base, plan);
  duplicated[1].rank = 0;
  EXPECT_THROW(planner.observe_round(plan, duplicated, 0.0), lbs::Error);

  auto out_of_range = observe_on(base, plan);
  out_of_range[1].rank = 99;
  EXPECT_THROW(planner.observe_round(plan, out_of_range, 0.0), lbs::Error);
}

// Wall-clock usability (the mq substrate): same machinery, Clock::Wall
// spans, cooldown in wall seconds.
TEST(AdaptivePlanner, WallClockSubstrate) {
  auto base = test_platform();
  auto truth = degraded(base, 2, 2.0);

  obs::Tracer tracer;
  AdaptiveOptions options;
  options.min_samples = 1;
  options.clock = obs::Clock::Wall;
  options.tracer = &tracer;
  AdaptivePlanner planner(base, options);

  auto plan = planner.plan(kItems);
  auto outcome =
      planner.observe_round(plan, observe_on(truth, plan), obs::wall_now());
  EXPECT_TRUE(outcome.replanned);
  auto log = tracer.collect();
  for (const auto& event : log.of_type(obs::EventType::AdaptiveDrift)) {
    EXPECT_EQ(event.clock, obs::Clock::Wall);
  }
}

// Concurrent refit-while-planning (TSan-labelled): planners race
// observe_round against plan() and replanner() calls; every plan must be
// internally consistent (counts sum to the request) on whichever model
// version it saw.
TEST(AdaptivePlanner, ConcurrentRefitWhilePlanningIsSafe) {
  auto base = test_platform(5);

  AdaptiveOptions options;
  options.min_samples = 1;
  options.forgetting = 0.7;
  AdaptivePlanner planner(base, options);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::thread observer([&] {
    double now = 0.0;
    for (int round = 0; round < 60; ++round) {
      auto plan = planner.plan(kItems);
      auto truth = degraded(base, round % 5, 1.5 + 0.25 * (round % 8));
      planner.observe_round(plan, observe_on(truth, plan), now);
      now += 1.0;
    }
    stop.store(true);
  });

  std::vector<std::thread> planners;
  for (int t = 0; t < 3; ++t) {
    planners.emplace_back([&, t] {
      auto replan = planner.replanner();
      std::vector<int> alive = {0, 1, 2, 3, 4, 5};
      while (!stop.load()) {
        auto plan = planner.plan(kItems + t);
        long long total = 0;
        for (long long c : plan.distribution.counts) total += c;
        if (total != kItems + t) failures.fetch_add(1);
        auto counts = replan(alive, kItems);
        long long replanned = 0;
        for (long long c : counts) replanned += c;
        if (replanned != kItems) failures.fetch_add(1);
      }
    });
  }

  observer.join();
  for (auto& thread : planners) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(planner.stats().refits, 1u);
}

}  // namespace
}  // namespace lbs::core
