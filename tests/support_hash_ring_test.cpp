// Property tests for the consistent-hash ring: the two contracts the
// planner fleet's cache partition stands on.
//
//   Uniform spread — chi-square bound. With vnodes points per node the
//   relative stddev of a node's share is ~1/sqrt(vnodes) (~9% at 128),
//   so for M keys the expected chi-square statistic sum((obs-exp)^2/exp)
//   is about M/(N*vnodes) — well under 0.01*M. We bound at 0.03*M: an
//   order of magnitude of headroom, yet a single node at twice its fair
//   share alone contributes ~M/N = 0.125*M for N=8 and fails.
//
//   Bounded remap — removing one node moves ONLY that node's keys
//   (~1/N of them); adding one moves only keys onto the newcomer. A
//   modulo table would remap (N-1)/N and cold every replica's cache.
#include "support/hash_ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace lbs::support {
namespace {

constexpr int kNodes = 8;
constexpr std::uint64_t kKeys = 100000;

HashRing ring_of(int nodes, int virtual_nodes = 128) {
  HashRing ring(virtual_nodes);
  for (int i = 0; i < nodes; ++i) ring.add_node("replica-" + std::to_string(i));
  return ring;
}

// Sequential ids stand in for PlanKey hashes: node_for mixes internally,
// so structure in the input must not survive onto the circle.
std::vector<std::string> assignments(const HashRing& ring, std::uint64_t keys) {
  std::vector<std::string> out;
  out.reserve(keys);
  for (std::uint64_t k = 0; k < keys; ++k) out.push_back(ring.node_for(k));
  return out;
}

TEST(HashRing, SpreadIsUniformByChiSquare) {
  HashRing ring = ring_of(kNodes);
  std::map<std::string, std::uint64_t> counts;
  for (const std::string& node : assignments(ring, kKeys)) ++counts[node];

  ASSERT_EQ(counts.size(), static_cast<std::size_t>(kNodes))
      << "some node owns no keys at all";
  const double expected = static_cast<double>(kKeys) / kNodes;
  double chi_square = 0.0;
  for (const auto& [node, observed] : counts) {
    const double diff = static_cast<double>(observed) - expected;
    chi_square += diff * diff / expected;
    // No node above twice or below half its fair share.
    EXPECT_GT(static_cast<double>(observed), 0.5 * expected) << node;
    EXPECT_LT(static_cast<double>(observed), 2.0 * expected) << node;
  }
  EXPECT_LT(chi_square, 0.03 * static_cast<double>(kKeys))
      << "spread is grossly skewed";
}

TEST(HashRing, MoreVirtualNodesFlattenTheSpread) {
  // The imbalance (max share / fair share) must not grow when vnodes
  // quadruple; statistically it shrinks ~2x. A loose monotonicity check
  // that catches a vnode loop wired to the wrong seed.
  auto max_share = [](int vnodes) {
    HashRing ring = ring_of(kNodes, vnodes);
    std::map<std::string, std::uint64_t> counts;
    for (std::uint64_t k = 0; k < kKeys; ++k) ++counts[ring.node_for(k)];
    std::uint64_t max_count = 0;
    for (const auto& entry : counts) max_count = std::max(max_count, entry.second);
    return static_cast<double>(max_count) * kNodes / kKeys;
  };
  EXPECT_LT(max_share(256), max_share(16) + 0.05);
}

TEST(HashRing, RemovingOneNodeMovesOnlyItsKeys) {
  HashRing ring = ring_of(kNodes);
  const std::vector<std::string> before = assignments(ring, kKeys);
  const std::string victim = "replica-3";

  ring.remove_node(victim);
  const std::vector<std::string> after = assignments(ring, kKeys);

  std::uint64_t moved = 0;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    if (before[k] == victim) {
      ++moved;
      EXPECT_NE(after[k], victim);
    } else {
      // THE bounded-remap property: a surviving node's keys never move.
      ASSERT_EQ(after[k], before[k]) << "key " << k << " moved between survivors";
    }
  }
  // The victim owned ~1/N of the keys; remap fraction <= 1/N + epsilon.
  const double fraction = static_cast<double>(moved) / kKeys;
  EXPECT_LT(fraction, 1.0 / kNodes + 0.05);
  EXPECT_GT(fraction, 0.0);

  // Membership is the only input: adding the node back restores every
  // assignment exactly.
  ring.add_node(victim);
  EXPECT_EQ(assignments(ring, kKeys), before);
}

TEST(HashRing, AddingOneNodeMovesOnlyKeysOntoIt) {
  HashRing ring = ring_of(kNodes);
  const std::vector<std::string> before = assignments(ring, kKeys);

  ring.add_node("replica-new");
  const std::vector<std::string> after = assignments(ring, kKeys);

  std::uint64_t moved = 0;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    if (after[k] != before[k]) {
      ++moved;
      ASSERT_EQ(after[k], "replica-new") << "key " << k << " moved between old nodes";
    }
  }
  const double fraction = static_cast<double>(moved) / kKeys;
  EXPECT_LT(fraction, 1.0 / (kNodes + 1) + 0.05);
  EXPECT_GT(fraction, 0.0);
}

TEST(HashRing, AssignmentIsIndependentOfInsertionOrder) {
  HashRing forward(128);
  HashRing backward(128);
  for (int i = 0; i < kNodes; ++i) {
    forward.add_node("replica-" + std::to_string(i));
    backward.add_node("replica-" + std::to_string(kNodes - 1 - i));
  }
  for (std::uint64_t k = 0; k < 2000; ++k) {
    EXPECT_EQ(forward.node_for(k), backward.node_for(k));
  }
}

TEST(HashRing, NodesForIsTheDistinctFailoverSequence) {
  HashRing ring = ring_of(4);
  for (std::uint64_t k = 0; k < 500; ++k) {
    auto sequence = ring.nodes_for(k, 16);  // count clamps to node_count
    ASSERT_EQ(sequence.size(), 4u);
    EXPECT_EQ(*sequence[0], ring.node_for(k));
    for (std::size_t i = 0; i < sequence.size(); ++i) {
      for (std::size_t j = i + 1; j < sequence.size(); ++j) {
        EXPECT_NE(*sequence[i], *sequence[j]);
      }
    }
  }
}

TEST(HashRing, FailoverTargetIsDeterministic) {
  // The second node in the sequence is where a key lands while its home
  // is down — it must equal node_for on the ring without the home.
  HashRing ring = ring_of(kNodes);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    auto sequence = ring.nodes_for(k, 2);
    ASSERT_EQ(sequence.size(), 2u);
    HashRing without = ring_of(kNodes);
    without.remove_node(*sequence[0]);
    EXPECT_EQ(without.node_for(k), *sequence[1]);
  }
}

TEST(HashRing, MembershipErrorsAreTyped) {
  HashRing ring(8);
  ring.add_node("a");
  EXPECT_THROW(ring.add_node("a"), lbs::Error);
  EXPECT_THROW(ring.remove_node("missing"), lbs::Error);
  EXPECT_THROW(ring.add_node(""), lbs::Error);
  EXPECT_THROW(HashRing(0), lbs::Error);

  HashRing empty(8);
  EXPECT_THROW((void)empty.node_for(7), lbs::Error);
  EXPECT_THROW((void)empty.nodes_for(7, 1), lbs::Error);
}

}  // namespace
}  // namespace lbs::support
