// Iterative tomographic inversion distributed over the mq runtime.
//
//   ./build/examples/tomography_inversion [rays-per-round]   (default 1200)
//
// The full loop the paper's application belongs to, run for real across
// threads: each round the root scatters the event batch with a
// load-balanced scatterv, every rank traces its share through the current
// velocity model (genuine numerical work, so more ranks = real speedup),
// the per-rank tomographic normal equations come back through an
// element-wise reduce, the root solves the damped least-squares update,
// and the refreshed model is broadcast for the next round. Ground truth
// is a PREM-like Earth with a 3% slow lower mantle; watch the rms misfit
// collapse and the anomaly being recovered.

#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/ordering.hpp"
#include "core/planner.hpp"
#include "model/testbed.hpp"
#include "mq/runtime.hpp"
#include "seismic/catalog.hpp"
#include "seismic/inversion.hpp"
#include "support/table.hpp"

namespace {

constexpr int kRanks = 8;
constexpr int kRounds = 3;
constexpr double kDamping = 0.1;

using namespace lbs;

seismic::EarthModel model_from_velocities(const std::vector<double>& velocities) {
  auto shells = seismic::EarthModel::prem_like().shells();
  for (std::size_t s = 0; s < shells.size(); ++s) {
    shells[s].velocity_km_s = velocities[s];
  }
  return seismic::EarthModel(std::move(shells));
}

std::vector<double> velocities_of(const seismic::EarthModel& model) {
  std::vector<double> velocities;
  for (const auto& shell : model.shells()) velocities.push_back(shell.velocity_km_s);
  return velocities;
}

}  // namespace

int main(int argc, char** argv) {
  long long rays = 1200;
  if (argc > 1) rays = std::atoll(argv[1]);
  if (rays <= 0) {
    std::cerr << "usage: tomography_inversion [rays>0]\n";
    return 1;
  }

  // Ground truth: lower mantle 3% slower. Observed times = tracing the
  // (teleseismic part of a) synthetic catalog through the truth.
  auto truth_shells = seismic::EarthModel::prem_like().shells();
  for (auto& shell : truth_shells) {
    if (shell.name == "lower mantle") shell.velocity_km_s /= 1.03;
  }
  seismic::EarthModel truth(std::move(truth_shells));

  support::Rng rng(1999);
  auto raw_catalog = seismic::generate_catalog(rng, rays);
  std::vector<seismic::SeismicEvent> events;
  std::vector<double> observed;
  for (auto& event : raw_catalog) {
    event.wave = seismic::WaveType::P;
    double distance = seismic::epicentral_distance_deg(
        event.source_lat_deg, event.source_lon_deg, event.receiver_lat_deg,
        event.receiver_lon_deg);
    if (distance < 25.0 || distance > 95.0) continue;  // clean mantle branch
    auto path = seismic::trace_ray(truth, event);
    if (!path.converged) continue;
    events.push_back(event);
    observed.push_back(path.travel_time_s);
  }
  std::cout << "catalog: " << events.size() << " teleseismic P rays ("
            << rays << " generated)\n";

  // The scatter plan: rank compute speeds are homogeneous here (threads on
  // one host), so the balanced plan is near-uniform; we keep plan_scatter
  // in the loop to show the full transformation. (Run the
  // seismic_tomography example for the heterogeneity-emulated version.)
  model::Platform platform;
  for (int r = 0; r < kRanks; ++r) {
    model::Processor p;
    p.label = "rank" + std::to_string(r);
    p.comm = r + 1 == kRanks ? model::Cost::zero() : model::Cost::linear(1e-7);
    p.comp = model::Cost::linear(1e-4);
    platform.processors.push_back(p);
  }
  auto plan = core::plan_scatter(platform, static_cast<long long>(events.size()));

  std::size_t shell_count = seismic::EarthModel::prem_like().shells().size();
  support::Table table({"round", "rays used", "rms before (s)", "rms after (s)",
                        "lower-mantle scale"});

  std::vector<double> current = velocities_of(seismic::EarthModel::prem_like());

  mq::RuntimeOptions options;
  options.ranks = kRanks;
  const int root = kRanks - 1;

  mq::Runtime::run(options, [&](mq::Comm& comm) {
    // Observed times travel with the events once, up front.
    std::span<const seismic::SeismicEvent> send_events;
    std::span<const double> send_observed;
    if (comm.rank() == root) {
      send_events = events;
      send_observed = observed;
    }
    auto my_events =
        comm.scatterv<seismic::SeismicEvent>(root, send_events, plan.distribution.counts);
    auto my_observed =
        comm.scatterv<double>(root, send_observed, plan.distribution.counts);

    std::vector<double> velocities = current;
    comm.bcast(root, velocities);

    for (int round = 0; round < kRounds; ++round) {
      auto model_earth = model_from_velocities(velocities);

      // compute_work: trace my share, build my part of the normal equations.
      seismic::TomographicSystem local(shell_count);
      for (std::size_t i = 0; i < my_events.size(); ++i) {
        auto path = seismic::trace_ray(model_earth, my_events[i]);
        if (!path.converged) continue;
        local.add_ray(path.time_per_shell, my_observed[i]);
      }

      // Element-wise reduce of the flattened normal equations.
      auto flat = local.serialize();
      auto merged_flat = comm.reduce<double>(
          root, flat, [](const double& a, const double& b) { return a + b; });

      if (comm.rank() == root) {
        auto merged = seismic::TomographicSystem::deserialize(shell_count, merged_flat);
        auto scales = merged.solve(kDamping);
        auto updated = seismic::apply_scales(model_earth, scales);

        // Remeasure misfit under the updated model (root-side, cheap).
        seismic::TomographicSystem check(shell_count);
        for (std::size_t i = 0; i < events.size(); ++i) {
          auto path = seismic::trace_ray(updated, events[i]);
          if (!path.converged) continue;
          check.add_ray(path.time_per_shell, observed[i]);
        }
        table.add_row({std::to_string(round + 1), std::to_string(merged.ray_count()),
                       support::format_double(merged.rms_misfit(), 3),
                       support::format_double(check.rms_misfit(), 3),
                       support::format_double(scales[2], 4)});
        velocities = velocities_of(updated);
      }
      comm.bcast(root, velocities);
      if (comm.rank() == root) current = velocities;
    }
  });

  table.print(std::cout);

  double recovered =
      seismic::EarthModel::prem_like().shells()[2].velocity_km_s / current[2];
  std::cout << "\nrecovered lower-mantle slowness factor: "
            << support::format_double(recovered, 4) << " (truth: 1.0300)\n";
  return 0;
}
