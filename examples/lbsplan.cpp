// lbsplan — command-line scatter planner.
//
//   ./build/examples/lbsplan <grid-config> <items> [options]
//
// Options:
//   --algorithm auto|exact-dp|optimized-dp|lp-heuristic|closed-form|uniform
//   --ordering  descending|ascending|grid
//   --root      <machine-name>     (default: pick the best, Section 3.4)
//   --csv                          (machine-readable output)
//
// The tool a user points at their own grid description to get the counts
// and displacements for an MPI_Scatterv call — the paper's transformation
// as a utility. Run without arguments for a demo on the paper's testbed.

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/ordering.hpp"
#include "core/planner.hpp"
#include "core/root_selection.hpp"
#include "model/grid_parser.hpp"
#include "model/testbed.hpp"
#include "support/table.hpp"

namespace {

using namespace lbs;

int usage() {
  std::cerr
      << "usage: lbsplan <grid-config> <items> [--algorithm A] [--ordering O]"
         " [--root MACHINE] [--csv]\n"
         "  algorithms: auto exact-dp optimized-dp lp-heuristic closed-form uniform\n"
         "  orderings:  descending ascending grid\n"
         "run without arguments for a demo on the paper's Table 1 testbed\n";
  return 2;
}

bool parse_algorithm(const std::string& name, core::Algorithm& algorithm) {
  if (name == "auto") algorithm = core::Algorithm::Auto;
  else if (name == "exact-dp") algorithm = core::Algorithm::ExactDp;
  else if (name == "optimized-dp") algorithm = core::Algorithm::OptimizedDp;
  else if (name == "lp-heuristic") algorithm = core::Algorithm::LpHeuristic;
  else if (name == "closed-form") algorithm = core::Algorithm::LinearClosedForm;
  else if (name == "uniform") algorithm = core::Algorithm::Uniform;
  else return false;
  return true;
}

bool parse_ordering(const std::string& name, core::OrderingPolicy& policy) {
  if (name == "descending") policy = core::OrderingPolicy::DescendingBandwidth;
  else if (name == "ascending") policy = core::OrderingPolicy::AscendingBandwidth;
  else if (name == "grid") policy = core::OrderingPolicy::GridOrder;
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  model::Grid grid = model::paper_testbed();
  long long items = model::kPaperRayCount;
  core::Algorithm algorithm = core::Algorithm::Auto;
  core::OrderingPolicy ordering = core::OrderingPolicy::DescendingBandwidth;
  std::string root_name;
  bool csv = false;

  if (argc >= 3) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::cerr << "cannot open " << argv[1] << '\n';
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    auto parsed = model::parse_grid(buffer.str());
    if (!parsed.ok()) {
      std::cerr << "config error: " << parsed.error << '\n';
      return 1;
    }
    grid = std::move(*parsed.grid);
    items = std::atoll(argv[2]);
    if (items < 0) return usage();
    for (int i = 3; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--csv") {
        csv = true;
      } else if (arg == "--algorithm" && i + 1 < argc) {
        if (!parse_algorithm(argv[++i], algorithm)) return usage();
      } else if (arg == "--ordering" && i + 1 < argc) {
        if (!parse_ordering(argv[++i], ordering)) return usage();
      } else if (arg == "--root" && i + 1 < argc) {
        root_name = argv[++i];
      } else {
        return usage();
      }
    }
  } else if (argc != 1) {
    return usage();
  } else {
    std::cout << "(demo mode: paper testbed, n = 817,101 — see --help via bad args)\n";
  }

  // Root: explicit, or the Section 3.4 minimization.
  model::ProcessorRef root{};
  if (!root_name.empty()) {
    int machine = grid.machine_index(root_name);
    if (machine < 0) {
      std::cerr << "unknown root machine '" << root_name << "'\n";
      return 1;
    }
    root = model::ProcessorRef{machine, 0};
  } else if (grid.data_home() >= 0) {
    auto selection = core::select_root(grid, items, ordering, algorithm);
    root = selection.best().root;
    if (!csv) {
      std::cout << "selected root: " << selection.best().label
                << " (staging " << support::format_seconds(selection.best().staging_time)
                << ", total " << support::format_seconds(selection.best().total_time)
                << ")\n";
    }
  } else {
    std::cerr << "config has no data_home and no --root was given\n";
    return 1;
  }

  auto platform = core::ordered_platform(grid, root, ordering);
  auto plan = core::plan_scatter(platform, items, algorithm);

  if (csv) {
    std::cout << "processor,count,displacement,predicted_finish_s\n";
    for (int i = 0; i < platform.size(); ++i) {
      auto idx = static_cast<std::size_t>(i);
      std::cout << platform[i].label << ',' << plan.distribution.counts[idx] << ','
                << plan.displacements[idx] << ',' << plan.predicted_finish[idx]
                << '\n';
    }
    return 0;
  }

  std::cout << "algorithm: " << core::to_string(plan.algorithm_used)
            << "\npredicted makespan: "
            << support::format_seconds(plan.predicted_makespan) << "\n\n";
  support::Table table({"rank", "processor", "count", "displacement",
                        "predicted finish (s)"});
  for (int i = 0; i < platform.size(); ++i) {
    auto idx = static_cast<std::size_t>(i);
    table.add_row({std::to_string(i), platform[i].label,
                   support::format_count(plan.distribution.counts[idx]),
                   support::format_count(plan.displacements[idx]),
                   support::format_double(plan.predicted_finish[idx], 2)});
  }
  table.print(std::cout);
  std::cout << "\npass counts[] and displs[] straight to MPI_Scatterv (root last).\n";
  return 0;
}
