// Heterogeneous matrix multiplication: the library on a second workload.
//
//   ./build/examples/heterogeneous_matmul [N]       (default 384)
//
// C = A x B with row blocks of A scattered across the emulated Table 1
// grid (B broadcast once), mirroring the related work the paper cites on
// linear algebra over heterogeneous PC clusters. The data items are
// *rows*; Tcomp per row is linear (2 N^2 flops) and Tcomm per row is one
// row of doubles over the Table 1 links — so plan_scatter applies
// unchanged. The result is gathered with gatherv (rank order = row
// order, so C reassembles directly) and verified against a serial
// multiply.

#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/ordering.hpp"
#include "core/planner.hpp"
#include "linalg/matrix.hpp"
#include "model/testbed.hpp"
#include "mq/platform_link.hpp"
#include "mq/runtime.hpp"
#include "support/table.hpp"

namespace {

constexpr int kRanks = 16;
constexpr double kTimeScale = 0.3;

using namespace lbs;

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 384;
  if (argc > 1) n = static_cast<std::size_t>(std::atoll(argv[1]));
  if (n < kRanks) {
    std::cerr << "usage: heterogeneous_matmul [N >= 16]\n";
    return 1;
  }

  support::Rng rng(7);
  auto a = linalg::Matrix::random(rng, n, n);
  auto b = linalg::Matrix::random(rng, n, n);
  std::cout << "C = A x B, N = " << n << ", items = rows of A\n";

  // Platform: Table 1 machines; Tcomm per row converted from the per-ray
  // betas by row size (a ray record is 48 B, a row is 8N B).
  auto grid = model::paper_testbed();
  auto platform = core::ordered_platform(grid, model::paper_root(grid),
                                         core::OrderingPolicy::DescendingBandwidth);
  // Per-row compute cost: alpha rescaled so one "item" = one row's 2N^2
  // flops instead of one ray trace. The divisor sets how many "flops" one
  // ray was worth; it is chosen so per-row compute dominates per-row
  // transfer (otherwise Theorem 2 correctly parks the remote machines —
  // shipping a row would cost more than the root computing it).
  model::Platform row_platform = platform;
  double flops_scale = 2.0 * static_cast<double>(n) * static_cast<double>(n) / 1.0e5;
  double bytes_per_row = 8.0 * static_cast<double>(n);
  double bytes_per_ray = 48.0;
  for (auto& proc : row_platform.processors) {
    proc.comp = model::Cost::linear(proc.comp.per_item_slope() * flops_scale);
    proc.comm = model::Cost::linear(proc.comm.per_item_slope() * bytes_per_row /
                                    bytes_per_ray);
  }

  auto items = static_cast<long long>(n);
  auto balanced = core::plan_scatter(row_platform, items);
  auto uniform = core::plan_scatter(row_platform, items, core::Algorithm::Uniform);

  auto run = [&](const std::vector<long long>& counts, const char* label) {
    mq::RuntimeOptions options;
    options.ranks = kRanks;
    options.time_scale = kTimeScale;
    options.link_cost = mq::make_link_cost(row_platform, sizeof(double) * n);

    linalg::Matrix c(n, n);
    double slowest = 0.0;
    const int root = kRanks - 1;
    mq::Runtime::run(options, [&](mq::Comm& comm) {
      // Broadcast B once — in the iterative codes this example stands for,
      // B is resident across repetitions, so it is excluded from the
      // measured region (it costs the same under either distribution and
      // would otherwise mask the scatter comparison).
      std::vector<double> b_data;
      if (comm.rank() == root) b_data.assign(b.data(), b.data() + n * n);
      comm.bcast(root, b_data);
      comm.barrier();
      double t0 = comm.wtime();

      // Measured region: scatter row blocks of A (each item = one row of
      // N doubles), compute, gather C.
      std::span<const double> a_data;
      if (comm.rank() == root) a_data = {a.data(), n * n};
      std::vector<long long> element_counts(counts.begin(), counts.end());
      for (auto& count : element_counts) count *= static_cast<long long>(n);
      auto my_rows = comm.scatterv<double>(root, a_data, element_counts);

      // Real compute: my block of C (plus emulated heterogeneity pacing).
      std::size_t my_row_count = my_rows.size() / n;
      std::vector<double> c_block(my_row_count * n, 0.0);
      for (std::size_t i = 0; i < my_row_count; ++i) {
        for (std::size_t k = 0; k < n; ++k) {
          double a_ik = my_rows[i * n + k];
          for (std::size_t j = 0; j < n; ++j) {
            c_block[i * n + j] += a_ik * b_data[k * n + j];
          }
        }
      }
      mq::emulate_compute(comm, row_platform[comm.rank()].comp.per_item_slope() *
                                    static_cast<double>(my_row_count));

      // Gather C in rank order == row order.
      auto all = comm.gatherv<double>(root, c_block);
      if (comm.rank() == root) {
        std::copy(all.begin(), all.end(), c.data());
        slowest = comm.wtime() - t0;
      }
    });

    // Verify against the serial product.
    auto reference = linalg::multiply(a, b);
    double error = linalg::difference_norm(c, reference);
    std::cout << label << ": " << support::format_double(slowest, 2)
              << " s emulated, residual |C - C_ref| = "
              << support::format_double(error, 12) << (error < 1e-6 ? "  (ok)" : "  (WRONG)")
              << '\n';
    return slowest;
  };

  double uniform_time = run(uniform.distribution.counts, "uniform rows ");
  double balanced_time = run(balanced.distribution.counts, "balanced rows");
  std::cout << "measured speedup: "
            << support::format_double(uniform_time / balanced_time, 2)
            << "x  (predicted on the model: "
            << support::format_double(
                   uniform.predicted_makespan / balanced.predicted_makespan, 2)
            << "x — the measured ratio is diluted by the *real* multiply,\n"
               "   which runs at this host's uniform speed on every rank)\n";
  std::cout << "\nbalanced row counts:";
  for (long long c : balanced.distribution.counts) std::cout << ' ' << c;
  std::cout << '\n';
  return 0;
}
