// The paper's application, end to end: seismic ray tracing over the mq
// message-passing runtime, original (MPI_Scatter-style) vs load-balanced
// (MPI_Scatterv-style) distribution.
//
//   ./build/examples/seismic_tomography [rays]        (default 20000)
//
// 16 ranks emulate the paper's testbed (Table 1): link pacing follows the
// measured betas and per-rank compute pace follows the measured alphas,
// all shrunk by a time_scale so the run takes seconds, not minutes. Each
// rank additionally *really traces* a sample of its rays through the
// PREM-like Earth model, so the pipeline moves and processes real data:
// the scattered buffers are genuine SeismicEvent records and the gathered
// result is the summed travel time of the traced sample.

#include <array>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/ordering.hpp"
#include "core/planner.hpp"
#include "model/testbed.hpp"
#include "mq/platform_link.hpp"
#include "mq/runtime.hpp"
#include "seismic/catalog.hpp"
#include "seismic/earth_model.hpp"
#include "seismic/ray.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace {

constexpr int kRanks = 16;
// Real seconds per nominal second: the paper's balanced run is ~404 s
// nominal at n = 817,101; at 20k rays everything scales by ~1/40, and this
// factor brings one experiment to roughly two seconds of wall clock.
constexpr double kTimeScale = 0.2;
constexpr std::size_t kTraceSamplePerRank = 40;  // really-traced rays per rank

struct RunOutcome {
  std::array<double, kRanks> finish{};
  double traced_time_sum = 0.0;
  long long traced_rays = 0;
};

RunOutcome run_experiment(const lbs::model::Platform& platform,
                          const std::vector<lbs::seismic::SeismicEvent>& catalog,
                          const std::vector<long long>& counts) {
  using namespace lbs;

  mq::RuntimeOptions options;
  options.ranks = kRanks;
  options.time_scale = kTimeScale;
  options.link_cost = mq::make_link_cost(platform, sizeof(seismic::SeismicEvent));

  RunOutcome outcome;
  const int root = kRanks - 1;  // paper convention: root ordered last

  mq::Runtime::run(options, [&](mq::Comm& comm) {
    // The pseudo-code from the paper's Section 2.2, transformed: the root
    // reads the catalog and scatters custom shares instead of equal ones.
    std::span<const seismic::SeismicEvent> send_data;
    if (comm.rank() == root) send_data = catalog;
    auto my_rays = comm.scatterv<seismic::SeismicEvent>(root, send_data, counts);

    // compute_work(rbuff): trace a fixed sample for real (the science),
    // and pace the full share at this processor's Table-1 alpha (the
    // heterogeneity emulation — all 16 threads run on one real CPU here).
    auto model_earth = seismic::EarthModel::prem_like();
    std::size_t sample = std::min(my_rays.size(), kTraceSamplePerRank);
    double traced = seismic::compute_work(model_earth, my_rays.data(), sample);

    double alpha = platform[comm.rank()].comp.per_item_slope();
    mq::emulate_compute(comm, alpha * static_cast<double>(my_rays.size()));
    double finish = comm.wtime();

    // Report back: finish time and traced-travel-time checksum.
    std::array<double, 3> report{finish, traced, static_cast<double>(sample)};
    auto all = comm.gatherv<double>(root, report);
    if (comm.rank() == root) {
      for (int r = 0; r < kRanks; ++r) {
        outcome.finish[static_cast<std::size_t>(r)] = all[static_cast<std::size_t>(r) * 3];
        outcome.traced_time_sum += all[static_cast<std::size_t>(r) * 3 + 1];
        outcome.traced_rays +=
            static_cast<long long>(all[static_cast<std::size_t>(r) * 3 + 2]);
      }
    }
  });
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lbs;

  long long rays = 20000;
  if (argc > 1) rays = std::atoll(argv[1]);
  if (rays <= 0) {
    std::cerr << "usage: seismic_tomography [rays>0]\n";
    return 1;
  }

  std::cout << "generating synthetic 1999-like catalog: "
            << support::format_count(rays) << " rays\n";
  support::Rng rng(1999);
  auto catalog = seismic::generate_catalog(rng, rays);

  auto grid = model::paper_testbed();
  auto platform = core::ordered_platform(grid, model::paper_root(grid),
                                         core::OrderingPolicy::DescendingBandwidth);

  auto balanced = core::plan_scatter(platform, rays);
  auto uniform = core::plan_scatter(platform, rays, core::Algorithm::Uniform);

  std::cout << "running uniform (original program) ...\n";
  auto uniform_run = run_experiment(platform, catalog, uniform.distribution.counts);
  std::cout << "running balanced (" << core::to_string(balanced.algorithm_used)
            << ") ...\n\n";
  auto balanced_run = run_experiment(platform, catalog, balanced.distribution.counts);

  support::Table table({"rank", "processor", "uniform items", "uniform finish",
                        "balanced items", "balanced finish"});
  for (int r = 0; r < kRanks; ++r) {
    auto idx = static_cast<std::size_t>(r);
    table.add_row({std::to_string(r), platform[r].label,
                   support::format_count(uniform.distribution.counts[idx]),
                   support::format_double(uniform_run.finish[idx], 2) + " s",
                   support::format_count(balanced.distribution.counts[idx]),
                   support::format_double(balanced_run.finish[idx], 2) + " s"});
  }
  table.print(std::cout);

  auto summarize_finish = [](const std::array<double, kRanks>& finish) {
    return support::summarize(std::span<const double>(finish.data(), finish.size()));
  };
  auto uni = summarize_finish(uniform_run.finish);
  auto bal = summarize_finish(balanced_run.finish);
  std::cout << "\nuniform : finish " << support::format_double(uni.min, 2) << " - "
            << support::format_double(uni.max, 2) << " s (spread "
            << support::format_percent(uni.relative_spread()) << ")\n";
  std::cout << "balanced: finish " << support::format_double(bal.min, 2) << " - "
            << support::format_double(bal.max, 2) << " s (spread "
            << support::format_percent(bal.relative_spread()) << ")\n";
  std::cout << "speedup: " << support::format_double(uni.max / bal.max, 2) << "x\n";
  std::cout << "\ntraced " << balanced_run.traced_rays
            << " sample rays for real; mean travel time "
            << support::format_double(
                   balanced_run.traced_time_sum /
                       static_cast<double>(balanced_run.traced_rays), 1)
            << " s\n";
  return 0;
}
