// lbsd — the load-balancing scatter planning daemon.
//
//   ./build/examples/lbsd /tmp/lbsd.sock [options]      # unix socket
//   ./build/examples/lbsd --tcp 0.0.0.0:7411 [options]  # TCP
//
// The positional endpoint accepts any Endpoint::parse spec (a bare path,
// "unix:PATH", "tcp:HOST:PORT", or "HOST:PORT"); --tcp is the explicit
// spelling. A fleet is N of these, one per replica, each with its OWN
// --snapshot file — FleetClient partitions the key space across them, so
// each snapshot holds that replica's partition and nothing else.
//
// Options:
//   --tcp HOST:PORT     listen on TCP instead of a unix socket
//                       (port 0 = kernel-assigned, printed on startup)
//   --shards N          cache shards (default 8)
//   --capacity N        cached plans per shard (default 128)
//   --workers N         DP worker threads, 0 = hardware (default 0)
//   --queue N           bounded solve queue depth (default 256)
//   --batch N           max solves claimed per dispatch pass (default 16)
//   --retry-after MS    backpressure retry hint (default 50)
//   --max-processors N  admission bound (default 4096)
//   --trace FILE        write a Chrome trace JSON on shutdown
//   --snapshot FILE     persist the plan cache to FILE (atomic rename);
//                       written on shutdown, and periodically with
//                       --snapshot-interval-ms
//   --snapshot-interval-ms MS
//                       periodic snapshot cadence (requires --snapshot)
//   --warm-start FILE   replay a snapshot into the cache before serving;
//                       a corrupt/missing file logs and cold-starts
//   --membership FILE   adopt the fleet membership view from FILE at
//                       startup and watch it for changes (newer epoch
//                       wins; see docs/service.md#elasticity)
//   --membership-poll-ms MS
//                       membership file poll cadence (default 200)
//
// `--snapshot S --warm-start S` is the crash-safe restart idiom: every
// run resumes from the previous run's cache.
//
// Runs until SIGINT/SIGTERM or a client sends Shutdown (lbsctl shutdown).
// On exit it prints the service counters and cache stats, so a drill run
// doubles as a report.

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/server.hpp"

namespace {

std::atomic<bool> g_signal{false};

void on_signal(int) { g_signal.store(true); }

int usage() {
  std::cerr << "usage: lbsd <endpoint> [--tcp HOST:PORT] [--shards N] [--capacity N]"
               " [--workers N] [--queue N] [--batch N] [--retry-after MS]"
               " [--max-processors N] [--trace FILE] [--snapshot FILE]"
               " [--snapshot-interval-ms MS] [--warm-start FILE]"
               " [--membership FILE] [--membership-poll-ms MS]\n"
               "  <endpoint>: unix path, unix:PATH, tcp:HOST:PORT, or HOST:PORT"
               " (omit it when --tcp is given)\n";
  return 2;
}

bool parse_int(const char* text, int& out) {
  out = std::atoi(text);
  return out > 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();

  lbs::service::ServerOptions options;
  std::string endpoint_spec;
  std::string trace_path;

  int first_flag = 1;
  if (argv[1][0] != '-') {
    endpoint_spec = argv[1];
    first_flag = 2;
  }
  for (int i = first_flag; i < argc; ++i) {
    std::string arg = argv[i];
    int value = 0;
    if (arg == "--tcp" && i + 1 < argc) {
      endpoint_spec = std::string("tcp:") + argv[++i];
    } else if (arg == "--shards" && i + 1 < argc && parse_int(argv[++i], value)) {
      options.cache_shards = value;
    } else if (arg == "--capacity" && i + 1 < argc && parse_int(argv[++i], value)) {
      options.cache_capacity_per_shard = static_cast<std::size_t>(value);
    } else if (arg == "--workers" && i + 1 < argc) {
      options.dp_workers = std::atoi(argv[++i]);
      if (options.dp_workers < 0) return usage();
    } else if (arg == "--queue" && i + 1 < argc && parse_int(argv[++i], value)) {
      options.max_queue = static_cast<std::size_t>(value);
    } else if (arg == "--batch" && i + 1 < argc && parse_int(argv[++i], value)) {
      options.max_batch = value;
    } else if (arg == "--retry-after" && i + 1 < argc && parse_int(argv[++i], value)) {
      options.retry_after_ms = static_cast<std::uint32_t>(value);
    } else if (arg == "--max-processors" && i + 1 < argc && parse_int(argv[++i], value)) {
      options.max_processors = value;
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--snapshot" && i + 1 < argc) {
      options.snapshot_path = argv[++i];
    } else if (arg == "--snapshot-interval-ms" && i + 1 < argc &&
               parse_int(argv[++i], value)) {
      options.snapshot_interval_ms = static_cast<std::uint32_t>(value);
    } else if (arg == "--warm-start" && i + 1 < argc) {
      options.warm_start_path = argv[++i];
    } else if (arg == "--membership" && i + 1 < argc) {
      options.membership_path = argv[++i];
    } else if (arg == "--membership-poll-ms" && i + 1 < argc &&
               parse_int(argv[++i], value)) {
      options.membership_poll_ms = static_cast<std::uint32_t>(value);
    } else {
      return usage();
    }
  }

  if (endpoint_spec.empty()) return usage();
  try {
    options.endpoint = lbs::service::Endpoint::parse(endpoint_spec);
  } catch (const std::exception& error) {
    std::cerr << "lbsd: " << error.what() << '\n';
    return usage();
  }

  if (options.snapshot_interval_ms > 0 && options.snapshot_path.empty()) {
    std::cerr << "lbsd: --snapshot-interval-ms requires --snapshot\n";
    return usage();
  }

  lbs::obs::Tracer tracer;
  lbs::obs::Metrics metrics;
  options.tracer = &tracer;
  options.metrics = &metrics;

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  lbs::service::Server server(std::move(options));
  try {
    server.start();
  } catch (const std::exception& error) {
    std::cerr << "lbsd: " << error.what() << '\n';
    return 1;
  }
  // endpoint() post-start reports the real TCP port even when 0 was asked.
  std::cout << "lbsd listening on " << server.endpoint().to_string() << " ("
            << server.options().cache_shards << " cache shards, queue depth "
            << server.options().max_queue << ")\n";

  // Wake twice a second: once for process signals, once for a client
  // Shutdown message (which sets the server's own stop-requested flag).
  while (!g_signal.load() && !server.wait_until_stop_requested_for(500)) {
  }
  std::cout << "lbsd: shutting down ("
            << (g_signal.load() ? "signal" : "client request") << ")\n";
  server.stop();

  std::cout << server.stats_json() << '\n';

  if (!trace_path.empty()) {
    lbs::obs::export_chrome_trace(trace_path, tracer.collect());
    std::cout << "trace written to " << trace_path << '\n';
  }
  return 0;
}
