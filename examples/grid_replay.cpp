// Full-scale replay of the paper's experiment on the grid simulator.
//
//   ./build/examples/grid_replay [grid-config-file] [rays]
//
// Without arguments, replays the paper's testbed (Table 1) at the paper's
// scale (817,101 rays) in milliseconds of wall clock: uniform vs balanced
// distribution, descending vs ascending bandwidth order, with per-
// processor timelines and a Figure-1-style Gantt chart. With a config
// file, replays the same study on *your* grid — the tool a user would run
// before porting their MPI_Scatter code.

#include <fstream>
#include <iostream>
#include <sstream>

#include "core/ordering.hpp"
#include "core/planner.hpp"
#include "gridsim/gridsim.hpp"
#include "model/grid_parser.hpp"
#include "model/testbed.hpp"
#include "support/gantt.hpp"
#include "support/svg.hpp"
#include "support/table.hpp"

namespace {

void report(const std::string& title, const lbs::model::Platform& platform,
            const lbs::core::Distribution& distribution,
            const lbs::gridsim::Timeline& timeline) {
  using namespace lbs;
  std::cout << "== " << title << " ==\n";
  support::Table table({"processor", "items", "comm (s)", "finish (s)"});
  for (std::size_t i = 0; i < timeline.traces.size(); ++i) {
    const auto& trace = timeline.traces[i];
    table.add_row({trace.label, support::format_count(trace.items),
                   support::format_double(trace.comm_time(), 2),
                   support::format_double(trace.finish(), 1)});
  }
  table.print(std::cout);
  std::cout << "earliest " << support::format_double(timeline.earliest_finish(), 1)
            << " s, latest " << support::format_double(timeline.latest_finish(), 1)
            << " s, spread " << support::format_percent(timeline.finish_spread())
            << ", stair idle " << support::format_double(timeline.total_stair_idle(), 1)
            << " s\n\n";
  (void)platform;
  (void)distribution;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lbs;

  model::Grid grid = model::paper_testbed();
  long long rays = model::kPaperRayCount;

  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::cerr << "cannot open " << argv[1] << '\n';
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    auto parsed = model::parse_grid(buffer.str());
    if (!parsed.ok()) {
      std::cerr << "config error: " << parsed.error << '\n';
      return 1;
    }
    grid = std::move(*parsed.grid);
    if (grid.data_home() < 0) {
      std::cerr << "config needs a data_home\n";
      return 1;
    }
  }
  if (argc > 2) rays = std::atoll(argv[2]);

  model::ProcessorRef root{grid.data_home(), 0};
  auto descending =
      core::ordered_platform(grid, root, core::OrderingPolicy::DescendingBandwidth);
  auto ascending =
      core::ordered_platform(grid, root, core::OrderingPolicy::AscendingBandwidth);

  std::cout << "grid: " << grid.machines().size() << " machines, "
            << grid.total_cpus() << " processors, n = "
            << support::format_count(rays) << " items\n\n";

  // Figure 2: the original program (uniform shares).
  auto uniform = core::plan_scatter(descending, rays, core::Algorithm::Uniform);
  auto uniform_sim = gridsim::simulate_scatter(descending, uniform.distribution);
  report("original program (uniform shares, descending bandwidth)", descending,
         uniform.distribution, uniform_sim.timeline);

  // Figure 3: balanced, descending bandwidth.
  auto balanced = core::plan_scatter(descending, rays);
  auto balanced_sim = gridsim::simulate_scatter(descending, balanced.distribution);
  report("load-balanced (" + core::to_string(balanced.algorithm_used) +
             ", descending bandwidth)",
         descending, balanced.distribution, balanced_sim.timeline);

  // Figure 4: balanced, ascending bandwidth (the inverted policy).
  auto balanced_asc = core::plan_scatter(ascending, rays);
  auto ascending_sim = gridsim::simulate_scatter(ascending, balanced_asc.distribution);
  report("load-balanced (ascending bandwidth — inverted policy)", ascending,
         balanced_asc.distribution, ascending_sim.timeline);

  std::cout << "speedup balanced vs uniform: "
            << support::format_double(uniform_sim.timeline.makespan() /
                                          balanced_sim.timeline.makespan(), 2)
            << "x;  ordering penalty (ascending vs descending): +"
            << support::format_double(ascending_sim.timeline.makespan() -
                                          balanced_sim.timeline.makespan(), 1)
            << " s\n\n";

  // Figure 1: the stair effect, on a small slice so the Gantt is readable.
  auto sample = core::plan_scatter(descending, std::min(rays, 50000LL),
                                   core::Algorithm::Uniform);
  auto sample_sim = gridsim::simulate_scatter(descending, sample.distribution);
  support::GanttChart chart(64);
  for (auto& row : sample_sim.timeline.gantt_rows()) chart.add_row(std::move(row));
  std::cout << "stair effect (uniform scatter of "
            << support::format_count(sample.distribution.total()) << " items):\n"
            << chart.to_string();

  // Publication-style SVG timelines next to the text output.
  struct FigureDump {
    const char* path;
    const char* title;
    const gridsim::Timeline* timeline;
  };
  const FigureDump figures[] = {
      {"replay_fig2_uniform.svg", "Uniform distribution (original program)",
       &uniform_sim.timeline},
      {"replay_fig3_balanced.svg", "Load-balanced, descending bandwidth",
       &balanced_sim.timeline},
      {"replay_fig4_ascending.svg", "Load-balanced, ascending bandwidth",
       &ascending_sim.timeline},
      {"replay_fig1_stair.svg", "Stair effect (uniform scatter)",
       &sample_sim.timeline},
  };
  std::cout << "\nwrote:";
  for (const auto& figure : figures) {
    support::SvgOptions svg_options;
    svg_options.title = figure.title;
    support::write_svg_gantt(figure.path, figure.timeline->gantt_rows(), svg_options);
    std::cout << ' ' << figure.path;
  }
  std::cout << '\n';
  return 0;
}
