// lbsctl — control client for running lbsd daemons.
//
//   ./build/examples/lbsctl <endpoints> ping
//   ./build/examples/lbsctl <endpoints> stats
//   ./build/examples/lbsctl <endpoints> shutdown
//   ./build/examples/lbsctl <endpoints> plan <grid-config> <items>
//        [--algorithm A] [--ordering O] [--root MACHINE] [--no-retry]
//
// <endpoints> is a comma-separated list of Endpoint::parse specs (a unix
// path, "unix:PATH", "tcp:HOST:PORT", or "HOST:PORT"). With one endpoint
// lbsctl behaves as before; with several it addresses the FLEET:
// ping/stats/shutdown fan out to every replica, and plan routes through
// FleetClient's consistent-hash ring — the same key lands on the same
// replica that every other fleet client would pick, so a warm cache stays
// warm.
//
// `plan` is lbsplan's remote twin: same grid config, same output columns,
// but the counts come from the shared daemon — warmed caches and
// coalesced solves included. Rejected (backpressure) responses are
// retried with the server's retry_after_ms hint unless --no-retry.
//
// The membership verbs drive fleet elasticity (docs/service.md#elasticity):
//
//   membership            print the fleet's current view
//   join <endpoint>       two-phase join: announce (Joining), then promote
//                         (Serving) — the joiner pulls its partition before
//                         it goes route-eligible, so it starts warm
//   drain <endpoint>      survivors pull the target's partition, then the
//                         target stops admitting new keys
//   remove <endpoint>     drop the target from the view entirely
//
// With --membership FILE the resulting view is also written to FILE
// (atomic rename), which converges every daemon/client watching it.

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/ordering.hpp"
#include "core/root_selection.hpp"
#include "model/grid_parser.hpp"
#include "service/admin.hpp"
#include "service/fleet.hpp"
#include "service/membership.hpp"
#include "support/table.hpp"

namespace {

using namespace lbs;

int usage() {
  std::cerr << "usage: lbsctl <endpoint[,endpoint...]> <command>\n"
               "  ping                        liveness check (every replica)\n"
               "  stats                       dump server counters + cache stats JSON\n"
               "  shutdown                    ask the daemon(s) to exit\n"
               "  plan <grid-config> <items>  plan via the daemon (fleet: ring-routed)\n"
               "       [--algorithm auto|exact-dp|optimized-dp|lp-heuristic|closed-form|uniform]\n"
               "       [--ordering descending|ascending|grid] [--root MACHINE] [--no-retry]\n"
               "  membership                  print the fleet's current view\n"
               "  join <endpoint>             add a replica (two-phase, warm handoff)\n"
               "  drain <endpoint>            drain a replica (survivors pull first)\n"
               "  remove <endpoint>           drop a replica from the view\n"
               "       join/drain/remove accept [--membership FILE] to also write\n"
               "       the resulting view to FILE (atomic rename)\n";
  return 2;
}

bool parse_algorithm(const std::string& name, core::Algorithm& algorithm) {
  if (name == "auto") algorithm = core::Algorithm::Auto;
  else if (name == "exact-dp") algorithm = core::Algorithm::ExactDp;
  else if (name == "optimized-dp") algorithm = core::Algorithm::OptimizedDp;
  else if (name == "lp-heuristic") algorithm = core::Algorithm::LpHeuristic;
  else if (name == "closed-form") algorithm = core::Algorithm::LinearClosedForm;
  else if (name == "uniform") algorithm = core::Algorithm::Uniform;
  else return false;
  return true;
}

bool parse_ordering(const std::string& name, core::OrderingPolicy& policy) {
  if (name == "descending") policy = core::OrderingPolicy::DescendingBandwidth;
  else if (name == "ascending") policy = core::OrderingPolicy::AscendingBandwidth;
  else if (name == "grid") policy = core::OrderingPolicy::GridOrder;
  else return false;
  return true;
}

int run_plan(std::vector<service::Endpoint> replicas, int argc, char** argv) {
  if (argc < 5) return usage();
  std::ifstream file(argv[3]);
  if (!file) {
    std::cerr << "cannot open " << argv[3] << '\n';
    return 1;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  auto parsed = model::parse_grid(buffer.str());
  if (!parsed.ok()) {
    std::cerr << "config error: " << parsed.error << '\n';
    return 1;
  }
  model::Grid grid = std::move(*parsed.grid);
  long long items = std::atoll(argv[4]);
  if (items < 0) return usage();

  core::Algorithm algorithm = core::Algorithm::Auto;
  core::OrderingPolicy ordering = core::OrderingPolicy::DescendingBandwidth;
  std::string root_name;
  bool retry = true;
  for (int i = 5; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--algorithm" && i + 1 < argc) {
      if (!parse_algorithm(argv[++i], algorithm)) return usage();
    } else if (arg == "--ordering" && i + 1 < argc) {
      if (!parse_ordering(argv[++i], ordering)) return usage();
    } else if (arg == "--root" && i + 1 < argc) {
      root_name = argv[++i];
    } else if (arg == "--no-retry") {
      retry = false;
    } else {
      return usage();
    }
  }

  model::ProcessorRef root{};
  if (!root_name.empty()) {
    int machine = grid.machine_index(root_name);
    if (machine < 0) {
      std::cerr << "unknown root machine '" << root_name << "'\n";
      return 1;
    }
    root = model::ProcessorRef{machine, 0};
  } else if (grid.data_home() >= 0) {
    root = core::select_root(grid, items, ordering, algorithm).best().root;
  } else {
    std::cerr << "config has no data_home and no --root was given\n";
    return 1;
  }

  auto platform = core::ordered_platform(grid, root, ordering);

  service::FleetOptions fleet_options;
  fleet_options.replicas = std::move(replicas);
  fleet_options.retries_per_replica = retry ? 8 : 0;
  service::FleetClient fleet(std::move(fleet_options));
  service::PlanResponse response = fleet.plan(platform, items, algorithm);

  switch (response.status) {
    case service::PlanStatus::Ok:
      break;
    case service::PlanStatus::Rejected:
      std::cerr << "rejected: server busy, retry after "
                << response.retry_after_ms << " ms\n";
      return 3;
    case service::PlanStatus::Error:
      std::cerr << "server error: " << response.message << '\n';
      return 1;
    case service::PlanStatus::Disconnected:
      std::cerr << "connection lost: " << response.message << '\n';
      return 1;
    case service::PlanStatus::Timeout:
      std::cerr << "timed out: " << response.message << '\n';
      return 1;
    case service::PlanStatus::BreakerOpen:
      std::cerr << "circuit breaker open: " << response.message << '\n';
      return 1;
    case service::PlanStatus::WrongEpoch:
      // FleetClient follows redirects itself; seeing this means the fleet
      // membership churned faster than max_redirects could chase.
      std::cerr << "membership epoch churn: " << response.message << '\n';
      return 1;
  }

  std::cout << "algorithm: " << core::to_string(response.algorithm_used)
            << (response.cache_hit ? "  [cache hit]" : "")
            << (response.coalesced ? "  [coalesced]" : "")
            << "\npredicted makespan: " << response.predicted_makespan
            << " s\n";
  if (response.has_optimality_bound) {
    std::cout << "optimality: within " << response.optimality_gap
              << " s of the integral optimum (Eq. 4)\n";
  }
  std::cout << "\n";
  auto displacements = response.displacements();
  support::Table table({"rank", "processor", "count", "displacement"});
  for (int i = 0; i < platform.size(); ++i) {
    auto idx = static_cast<std::size_t>(i);
    table.add_row({std::to_string(i), platform[i].label,
                   support::format_count(response.counts[idx]),
                   support::format_count(displacements[idx])});
  }
  table.print(std::cout);
  return 0;
}

// The fleet's current view: asked of the first member that answers with
// a non-empty one; an unversioned fleet (epoch 0, no --membership on the
// daemons yet) synthesizes it from the CLI endpoint list.
service::MembershipView fleet_base_view(
    const std::vector<service::Endpoint>& replicas) {
  for (const auto& endpoint : replicas) {
    auto view = service::admin::fetch_view(endpoint);
    if (view.has_value() && !view->members.empty()) return *view;
  }
  service::MembershipView base;
  for (const auto& endpoint : replicas) {
    base.members.push_back(service::Member{endpoint, service::ReplicaState::Serving});
  }
  return base;
}

int report_push(const service::admin::PushResult& result,
                const std::string& membership_file) {
  std::cout << service::serialize_view(result.view);
  std::cout << "acked by " << result.acked << " replica(s)\n";
  for (const std::string& error : result.errors) {
    std::cerr << "lbsctl: " << error << '\n';
  }
  if (!membership_file.empty()) {
    service::write_view_file(membership_file, result.view);
    std::cout << "view written to " << membership_file << '\n';
  }
  return result.errors.empty() ? 0 : 1;
}

int run_membership_verb(const std::string& command,
                        std::vector<service::Endpoint> replicas, int argc,
                        char** argv) {
  if (command == "membership") {
    service::MembershipView view = fleet_base_view(replicas);
    std::cout << service::serialize_view(view);
    return 0;
  }
  if (argc < 4) return usage();
  service::Endpoint target = service::Endpoint::parse(argv[3]);
  std::string membership_file;
  for (int i = 4; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--membership" && i + 1 < argc) {
      membership_file = argv[++i];
    } else {
      return usage();
    }
  }

  service::MembershipView base = fleet_base_view(replicas);
  service::admin::PushResult result;
  if (command == "join") {
    result = service::admin::join_fleet(base, target);
  } else if (command == "drain") {
    result = service::admin::drain_replica(base, target);
  } else {
    result = service::admin::remove_replica(base, target);
  }
  return report_push(result, membership_file);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  std::string command = argv[2];

  try {
    std::vector<service::Endpoint> replicas = service::parse_endpoint_list(argv[1]);
    if (command == "plan") return run_plan(std::move(replicas), argc, argv);
    if (command == "membership" || command == "join" || command == "drain" ||
        command == "remove") {
      return run_membership_verb(command, std::move(replicas), argc, argv);
    }

    service::FleetOptions fleet_options;
    fleet_options.replicas = replicas;
    service::FleetClient fleet(std::move(fleet_options));
    const bool single = fleet.replica_count() == 1;

    if (command == "ping") {
      int failures = 0;
      for (std::size_t i = 0; i < fleet.replica_count(); ++i) {
        bool ok = fleet.ping(i);
        if (!ok) ++failures;
        if (single) {
          if (ok) std::cout << "pong\n";
          else std::cerr << "no reply\n";
        } else {
          std::cout << "replica " << i << " (" << replicas[i].to_string()
                    << "): " << (ok ? "pong" : "no reply") << '\n';
        }
      }
      return failures > 0 ? 1 : 0;
    }
    if (command == "stats") {
      int failures = 0;
      for (std::size_t i = 0; i < fleet.replica_count(); ++i) {
        std::string stats = fleet.stats(i);
        if (!single) {
          std::cout << "== replica " << i << " (" << replicas[i].to_string()
                    << ") ==\n";
        }
        if (stats.empty()) {
          std::cerr << "no reply\n";
          ++failures;
        } else {
          std::cout << stats << '\n';
        }
      }
      return failures > 0 ? 1 : 0;
    }
    if (command == "shutdown") {
      int failures = 0;
      for (std::size_t i = 0; i < fleet.replica_count(); ++i) {
        bool ok = fleet.shutdown_replica(i);
        if (!ok) ++failures;
        if (single) {
          if (ok) std::cout << "shutdown acknowledged\n";
          else std::cerr << "no ack\n";
        } else {
          std::cout << "replica " << i << " (" << replicas[i].to_string()
                    << "): " << (ok ? "shutdown acknowledged" : "no ack") << '\n';
        }
      }
      return failures > 0 ? 1 : 0;
    }
    return usage();
  } catch (const std::exception& error) {
    std::cerr << "lbsctl: " << error.what() << '\n';
    return 1;
  }
}
