// Quickstart: describe a grid, plan a load-balanced scatter, compare with
// the uniform baseline.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// This is the minimal end-to-end use of the library: a Grid (machines +
// links + data home), an ordered Platform (Theorem 3's descending-
// bandwidth policy), and plan_scatter() producing the counts/displs you
// would hand to MPI_Scatterv (or mq::Comm::scatterv).

#include <iostream>

#include "core/ordering.hpp"
#include "core/planner.hpp"
#include "model/grid_parser.hpp"
#include "obs/chrome_trace.hpp"
#include "support/table.hpp"

int main() {
  using namespace lbs;

  // Set LBS_TRACE=out.json to capture the planner's spans (scatter.plan,
  // dp.solve, ...) as a Chrome trace — load the file in Perfetto or
  // chrome://tracing. With the variable unset this guard does nothing.
  obs::TraceExportGuard trace_guard;

  // A small heterogeneous grid, described in the text format users would
  // put in a config file. alpha/beta are seconds per data item.
  constexpr const char* kGridConfig = R"(
    machine frontend  cpus 1  alpha 0.010  cpu PIII/933   site local
    machine bigbox    cpus 4  alpha 0.004  cpu XP1800     site local
    machine faraway   cpus 8  alpha 0.009  cpu R14K/500   site remote
    link frontend bigbox   beta 1.0e-5
    link frontend faraway  beta 3.5e-5
    link bigbox   faraway  beta 3.5e-5
    data_home frontend
  )";

  auto parsed = model::parse_grid(kGridConfig);
  if (!parsed.ok()) {
    std::cerr << "grid config error: " << parsed.error << '\n';
    return 1;
  }
  const model::Grid& grid = *parsed.grid;

  // The data lives on `frontend`, which we use as the root. Order the
  // other processors by descending bandwidth (the paper's Theorem 3
  // policy); the root is placed last automatically.
  model::ProcessorRef root{grid.data_home(), 0};
  model::Platform platform =
      core::ordered_platform(grid, root, core::OrderingPolicy::DescendingBandwidth);

  const long long items = 200000;

  // Plan: the planner picks the strongest applicable method (linear costs
  // here -> Section 4's closed form + the rounding scheme).
  core::ScatterPlan balanced = core::plan_scatter(platform, items);
  core::ScatterPlan uniform =
      core::plan_scatter(platform, items, core::Algorithm::Uniform);

  std::cout << "planned with: " << core::to_string(balanced.algorithm_used) << "\n\n";

  support::Table table({"processor", "items (balanced)", "finish (s)",
                        "items (uniform)", "finish (s) "});
  for (int i = 0; i < platform.size(); ++i) {
    auto idx = static_cast<std::size_t>(i);
    table.add_row({platform[i].label,
                   support::format_count(balanced.distribution.counts[idx]),
                   support::format_double(balanced.predicted_finish[idx], 2),
                   support::format_count(uniform.distribution.counts[idx]),
                   support::format_double(uniform.predicted_finish[idx], 2)});
  }
  table.print(std::cout);

  std::cout << "\nmakespan: balanced " << support::format_seconds(balanced.predicted_makespan)
            << "  vs uniform " << support::format_seconds(uniform.predicted_makespan)
            << "  (speedup "
            << support::format_double(uniform.predicted_makespan / balanced.predicted_makespan, 2)
            << "x)\n";

  std::cout << "\nscatterv parameters (counts / displacements):\n  counts: ";
  for (long long c : balanced.distribution.counts) std::cout << c << ' ';
  std::cout << "\n  displs: ";
  for (long long d : balanced.displacements) std::cout << d << ' ';
  std::cout << '\n';

  if (trace_guard.active()) {
    std::cout << "\nwriting planner trace to " << trace_guard.path() << '\n';
  }
  return 0;
}
