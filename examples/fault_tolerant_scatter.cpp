// Fault-tolerant scatter on the emulated mq runtime.
//
// Plans a balanced scatter over a small heterogeneous grid, then runs it
// through Comm::scatterv_ft while fault injection kills two workers at
// launch: the root detects the deaths, re-plans the undelivered remainder
// over the survivors with the paper's load-balancing planner, and reports
// what was re-routed. Every item still lands exactly once.
//
// Runs with time_scale = 0 (no pacing), so it finishes instantly — it is
// wired into ctest as a smoke test.

#include <iostream>
#include <mutex>
#include <numeric>
#include <vector>

#include "core/planner.hpp"
#include "core/recovery.hpp"
#include "model/platform.hpp"
#include "mq/platform_link.hpp"
#include "mq/runtime.hpp"
#include "support/table.hpp"

int main() {
  using namespace lbs;

  // Six workers with heterogeneous links/CPUs, root last (paper layout).
  model::Platform platform;
  const double betas[] = {0.4, 0.6, 1.0, 1.0, 2.0, 3.0};
  const double alphas[] = {1.0, 1.5, 2.0, 1.0, 3.0, 4.0};
  for (int i = 0; i < 6; ++i) {
    model::Processor worker;
    worker.label = "worker" + std::to_string(i);
    worker.comm = model::Cost::linear(betas[i] * 1e-3);
    worker.comp = model::Cost::linear(alphas[i] * 1e-3);
    platform.processors.push_back(worker);
  }
  model::Processor root;
  root.label = "root";
  root.comm = model::Cost::zero();
  root.comp = model::Cost::linear(1e-3);
  platform.processors.push_back(root);

  constexpr long long kItems = 20000;
  auto plan = core::plan_scatter(platform, kItems);
  const int ranks = platform.size();
  const int root_rank = ranks - 1;

  std::vector<double> items(kItems);
  std::iota(items.begin(), items.end(), 0.0);

  // Kill workers 1 and 4 before they receive anything.
  mq::RuntimeOptions options;
  options.ranks = ranks;
  options.link_cost = mq::make_link_cost(platform, sizeof(double));
  options.faults.seed = 2003;
  options.faults.crashes.push_back({1, 0.0});
  options.faults.crashes.push_back({4, 0.0});

  mq::ScattervFtOptions ft;
  ft.replan = core::make_ft_replanner(platform);

  mq::FaultReport report;
  std::vector<long long> received(static_cast<std::size_t>(ranks), 0);
  std::mutex mutex;
  mq::Runtime::run(options, [&](mq::Comm& comm) {
    mq::FaultReport local;
    auto share = comm.scatterv_ft<double>(
        root_rank, items, plan.distribution.counts, ft,
        comm.rank() == root_rank ? &local : nullptr);
    std::lock_guard lock(mutex);
    received[static_cast<std::size_t>(comm.rank())] =
        static_cast<long long>(share.size());
    if (comm.rank() == root_rank) report = std::move(local);
  });

  support::Table table({"rank", "planned items", "delivered items", "fate"});
  for (int r = 0; r < ranks; ++r) {
    auto index = static_cast<std::size_t>(r);
    bool dead = false;
    for (const auto& death : report.deaths) dead = dead || death.rank == r;
    table.add_row({platform[r].label,
                   support::format_count(plan.distribution.counts[index]),
                   support::format_count(received[index]),
                   dead ? "crashed" : "survived"});
  }
  table.print(std::cout);

  long long delivered = 0;
  for (long long count : received) delivered += count;
  std::cout << "\ndeaths detected : " << report.deaths.size()
            << "\nitems re-routed : " << support::format_count(report.rerouted_items)
            << "\nreplan rounds   : " << report.replan_rounds
            << "\ndelivered total : " << support::format_count(delivered) << " / "
            << support::format_count(kItems) << '\n';

  if (delivered != kItems || report.deaths.size() != 2) {
    std::cerr << "fault-tolerant scatter lost items!\n";
    return 1;
  }
  std::cout << "every item delivered exactly once despite 2 dead workers\n";
  return 0;
}
