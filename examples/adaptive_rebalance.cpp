// Monitor-driven re-balancing across scatter rounds.
//
//   ./build/examples/adaptive_rebalance
//
// Section 3 of the paper notes that the computed distribution "is not
// necessarily based on static parameters estimated for the whole
// execution: a monitor daemon process (like [NWS]) running aside the
// application could be queried just before a scatter operation to
// retrieve the instantaneous grid characteristics."
//
// This example plays that scenario: an iterative code (one scatter +
// compute per round, as a tomography solver iterating on its velocity
// model) on a grid whose machines pick up background load over time. A
// *static* plan keeps round 1's distribution forever; an *adaptive* plan
// re-queries the (perturbed) processor speeds before every round, like a
// monitor daemon would report them, and re-plans.

#include <iostream>
#include <vector>

#include "core/ordering.hpp"
#include "core/planner.hpp"
#include "gridsim/gridsim.hpp"
#include "model/testbed.hpp"
#include "support/table.hpp"

namespace {

constexpr int kRounds = 6;
constexpr long long kItemsPerRound = 100000;

// Background load per round: (processor position, slowdown factor).
// Rounds 2-4: leda's first four CPUs lose half their speed (a competing
// batch job on the shared Origin 3800); round 5-6: merlin recovers from
// its hub (bandwidth unchanged, but its CPUs get busy).
struct RoundLoad {
  int processor;
  double factor;
};
std::vector<RoundLoad> loads_for_round(int round) {
  std::vector<RoundLoad> loads;
  if (round >= 1 && round <= 3) {
    for (int p = 5; p <= 8; ++p) loads.push_back({p, 0.5});  // leda#0..3
  }
  if (round >= 4) {
    loads.push_back({13, 0.4});  // merlin#0
    loads.push_back({14, 0.4});  // merlin#1
  }
  return loads;
}

// What the monitor daemon reports: the platform with instantaneous alphas.
lbs::model::Platform monitored_platform(const lbs::model::Platform& nominal,
                                        const std::vector<RoundLoad>& loads) {
  lbs::model::Platform snapshot = nominal;
  for (const auto& load : loads) {
    auto& processor = snapshot.processors[static_cast<std::size_t>(load.processor)];
    double alpha = processor.comp.per_item_slope() / load.factor;  // slower CPU
    processor.comp = lbs::model::Cost::linear(alpha);
  }
  return snapshot;
}

double simulate_round(const lbs::model::Platform& nominal,
                      const lbs::core::Distribution& distribution,
                      const std::vector<RoundLoad>& loads) {
  lbs::gridsim::SimOptions options;
  for (const auto& load : loads) {
    options.perturbations.push_back({load.processor, 0.0, 1e9, load.factor});
  }
  return lbs::gridsim::simulate_scatter(nominal, distribution, options)
      .timeline.makespan();
}

}  // namespace

int main() {
  using namespace lbs;

  auto grid = model::paper_testbed();
  auto platform = core::ordered_platform(grid, model::paper_root(grid),
                                         core::OrderingPolicy::DescendingBandwidth);

  auto static_plan = core::plan_scatter(platform, kItemsPerRound);

  support::Table table({"round", "load condition", "static plan (s)",
                        "adaptive plan (s)", "gain"});
  double static_total = 0.0;
  double adaptive_total = 0.0;

  for (int round = 0; round < kRounds; ++round) {
    auto loads = loads_for_round(round);

    // Static: the round-0 distribution, whatever happens.
    double static_time = simulate_round(platform, static_plan.distribution, loads);

    // Adaptive: query the monitor, re-plan on the instantaneous alphas.
    auto snapshot = monitored_platform(platform, loads);
    auto adaptive_plan = core::plan_scatter(snapshot, kItemsPerRound);
    double adaptive_time = simulate_round(platform, adaptive_plan.distribution, loads);

    static_total += static_time;
    adaptive_total += adaptive_time;

    std::string condition = loads.empty() ? "nominal"
                            : (round <= 3 ? "leda half speed (batch job)"
                                          : "merlin CPUs busy");
    table.add_row({std::to_string(round + 1), condition,
                   support::format_double(static_time, 1),
                   support::format_double(adaptive_time, 1),
                   support::format_percent(1.0 - adaptive_time / static_time)});
  }
  table.print(std::cout);

  std::cout << "\ntotal: static " << support::format_seconds(static_total)
            << ", adaptive " << support::format_seconds(adaptive_total) << " ("
            << support::format_percent(1.0 - adaptive_total / static_total)
            << " saved by re-querying the monitor before each scatter)\n";
  return 0;
}
