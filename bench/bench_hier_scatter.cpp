// Ablation: flat vs two-level (topology-aware) scatterv.
//
// Companion to bench_bcast_trees for the scatter operation itself: on a
// multi-site grid with per-message WAN handshakes, the flat MPI_Scatterv
// pays one WAN message per remote rank; the MagPIe-style two-level
// scatter (mq/hier_scatter.hpp implements it for real) pays one WAN
// message per remote *site* — the aggregate is bigger, but handshakes
// collapse and the LAN re-scatters run in parallel across sites. The
// driver is the per-message WAN handshake (TCP connect / rendezvous
// round trip) that occupies the sender's port before any byte flows: it
// is paid per message, so collapsing messages collapses handshakes.

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/two_level.hpp"
#include "model/platform.hpp"
#include "support/table.hpp"

namespace {

using namespace lbs;

struct ScatterModel {
  int sites = 4;
  int ranks_per_site = 4;       // root's site has one fewer worker + the root
  double block_seconds_wan = 0.040;  // one rank's block over the WAN (bytes/bw)
  double block_seconds_lan = 0.004;
  double wan_handshake = 0.1;   // per message, occupies the sender port
  double lan_handshake = 1e-4;

  [[nodiscard]] int workers_per_remote_site() const { return ranks_per_site; }
};

// Flat: the root sends every remote rank's block over its single port,
// paying (handshake + block time) of port occupancy per message.
double flat_scatter_time(const ScatterModel& model) {
  double port = 0.0;
  for (int site = 1; site < model.sites; ++site) {
    for (int w = 0; w < model.workers_per_remote_site(); ++w) {
      port += model.wan_handshake + model.block_seconds_wan;
    }
  }
  for (int w = 0; w < model.ranks_per_site - 1; ++w) {  // root's own site
    port += model.lan_handshake + model.block_seconds_lan;
  }
  return port;
}

// Hierarchical: one aggregate per remote site (k blocks in one message),
// then each coordinator re-scatters locally, in parallel across sites.
double hierarchical_scatter_time(const ScatterModel& model) {
  double port = 0.0;
  double completion = 0.0;
  for (int site = 1; site < model.sites; ++site) {
    port += model.wan_handshake +
            model.block_seconds_wan * model.workers_per_remote_site();
    double coordinator_has_data = port;
    // Local re-scatter: coordinator keeps one block, forwards the rest,
    // in parallel with the root serving the remaining sites.
    double local_port = coordinator_has_data;
    for (int w = 0; w < model.workers_per_remote_site() - 1; ++w) {
      local_port += model.lan_handshake + model.block_seconds_lan;
    }
    completion = std::max(completion, local_port);
  }
  for (int w = 0; w < model.ranks_per_site - 1; ++w) {
    port += model.lan_handshake + model.block_seconds_lan;
    completion = std::max(completion, port);
  }
  return completion;
}

}  // namespace

int main() {
  bench::print_header("Ablation — flat vs two-level scatterv on a multi-site grid");

  ScatterModel model;
  support::Table table(
      {"WAN handshake", "flat scatterv (s)", "two-level scatterv (s)", "winner"});
  double low_flat = 0.0, low_hier = 0.0, high_flat = 0.0, high_hier = 0.0;
  for (double latency : {0.0, 0.001, 0.01, 0.05, 0.1, 0.5}) {
    model.wan_handshake = latency;
    double flat = flat_scatter_time(model);
    double hier = hierarchical_scatter_time(model);
    if (latency == 0.0) {
      low_flat = flat;
      low_hier = hier;
    }
    if (latency == 0.5) {
      high_flat = flat;
      high_hier = hier;
    }
    table.add_row({support::format_seconds(latency), support::format_double(flat, 3),
                   support::format_double(hier, 3), hier < flat ? "two-level" : "flat"});
  }
  table.print(std::cout);

  // Part two: the actual planner (core::plan_two_level composes the
  // paper's framework with itself — each site is a virtual processor with
  // Tcomp = n * D_site) against flat planning on a three-site grid.
  auto build_grid = [](double wan_fixed) {
    model::Grid grid;
    auto add = [&](const char* name, int cpus, double alpha, const char* site) {
      model::Machine machine;
      machine.name = name;
      machine.cpu_count = cpus;
      machine.comp = model::Cost::linear(alpha);
      machine.site = site;
      return grid.add_machine(machine);
    };
    add("home", 1, 0.010, "alpha");
    add("hA", 2, 0.004, "alpha");
    add("b0", 1, 0.006, "beta");
    add("b1", 4, 0.005, "beta");
    add("c0", 2, 0.008, "gamma");
    add("c1", 2, 0.007, "gamma");
    for (int a = 0; a < 6; ++a) {
      for (int b = a + 1; b < 6; ++b) {
        bool lan = grid.machine(a).site == grid.machine(b).site;
        grid.set_link(a, b, lan ? model::Cost::linear(2e-6)
                                : model::Cost::affine(wan_fixed, 4e-5));
      }
    }
    grid.set_data_home(0);
    return grid;
  };

  std::cout << "\nplanned distributions (core::plan_two_level vs flat), "
               "3 sites, 12 processors, n = 5,000:\n";
  support::Table planner_table({"WAN handshake", "flat plan (s)",
                                "two-level plan (s)", "winner "});
  double planner_low_gap = 0.0, planner_high_gap = 0.0;
  for (double handshake : {0.0, 0.05, 0.2, 0.5, 2.0}) {
    auto grid = build_grid(handshake);
    double flat = core::flat_plan_makespan(grid, {0, 0}, 5000);
    auto two_level = core::plan_two_level(grid, {0, 0}, 5000);
    double gap = flat - two_level.predicted_makespan;
    if (handshake == 0.0) planner_low_gap = gap;
    if (handshake == 2.0) planner_high_gap = gap;
    planner_table.add_row({support::format_seconds(handshake),
                           support::format_double(flat, 3),
                           support::format_double(two_level.predicted_makespan, 3),
                           gap > 0 ? "two-level" : "flat"});
  }
  planner_table.print(std::cout);

  std::vector<bench::Comparison> comparisons{
      {"zero handshake: routing is a wash", "same bytes over the same WAN",
       support::format_double(low_hier / low_flat, 2) + "x flat's time",
       low_hier < low_flat * 1.1 && low_hier > low_flat * 0.8},
      {"costly handshakes: two-level wins", "one handshake per site, not per rank",
       support::format_double(high_hier, 3) + " s vs flat " +
           support::format_double(high_flat, 3) + " s",
       high_hier < high_flat},
      {"planner: flat fine without handshakes", "store-and-forward costs a little",
       support::format_double(-planner_low_gap, 3) + " s behind flat",
       planner_low_gap < 0.0 && planner_low_gap > -0.5},
      {"planner: decisive under 2 s handshakes", "framework composed with itself",
       support::format_double(planner_high_gap, 2) + " s saved",
       planner_high_gap > 1.0},
  };
  return bench::print_comparisons(comparisons);
}
