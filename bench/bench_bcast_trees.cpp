// Section 1 reproduction: broadcast trees on a grid.
//
// "While MPICH always use a binomial tree to propagate data, MPICH-G2 is
// able to switch to a flat tree broadcast when network latency is high",
// and MagPIe restructures collectives around the site hierarchy. This
// bench measures the three shapes (implemented for real over mq in
// mq/bcast_trees.hpp; simulated here on the DES for determinism) on a
// four-site grid with ranks interleaved across sites, sweeping the WAN
// latency:
//
//  - sender NIC occupancy = bytes / bandwidth (serialized per sender),
//  - delivery = send completion + link latency (latency overlaps: it is
//    in flight, not on the NIC).
//
// Expected crossover: binomial wins when latency is negligible (log p
// serialized rounds beat p-1), flat wins when latency dominates (it pays
// the WAN latency once, not once per tree level), hierarchical pays one
// WAN hop and parallel LAN fan-outs.

#include <functional>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "des/simulator.hpp"
#include "support/error.hpp"
#include "support/table.hpp"

namespace {

using namespace lbs;

struct BcastModel {
  int ranks = 16;
  int sites = 4;  // ranks interleaved round-robin: rank r in site r % sites.
                  // This is the realistic "ranks not sorted by site" case
                  // where a topology-unaware binomial tree crosses the WAN
                  // at every level — exactly the situation MPICH-G2's
                  // topology awareness fixes.
  double lan_latency = 1e-4;
  double lan_seconds_per_msg = 0.010;  // payload / LAN bandwidth
  double wan_latency = 0.1;
  double wan_seconds_per_msg = 0.020;  // payload / WAN bandwidth

  [[nodiscard]] int site_of(int rank) const { return rank % sites; }
  [[nodiscard]] bool wan(int a, int b) const { return site_of(a) != site_of(b); }
  [[nodiscard]] double occupancy(int a, int b) const {
    return wan(a, b) ? wan_seconds_per_msg : lan_seconds_per_msg;
  }
  [[nodiscard]] double latency(int a, int b) const {
    return wan(a, b) ? wan_latency : lan_latency;
  }
};

// Generic tree simulation: children(rank) lists forward targets in send
// order; delivery triggers the recipient's own forwards. Returns the time
// the last rank holds the data.
double simulate_tree(const BcastModel& model, int root,
                     const std::function<std::vector<int>(int)>& children) {
  des::Simulator sim;
  std::vector<des::SerialResource> nic;
  nic.reserve(static_cast<std::size_t>(model.ranks));
  for (int r = 0; r < model.ranks; ++r) nic.emplace_back(sim);

  std::vector<double> has_data(static_cast<std::size_t>(model.ranks), -1.0);

  std::function<void(int)> deliver = [&](int rank) {
    has_data[static_cast<std::size_t>(rank)] = sim.now();
    for (int child : children(rank)) {
      nic[static_cast<std::size_t>(rank)].request(
          model.occupancy(rank, child), [&, rank, child] {
            // NIC released; the message is now in flight for `latency`.
            sim.schedule(model.latency(rank, child), [&, child] { deliver(child); });
          });
    }
  };
  sim.schedule_at(0.0, [&] { deliver(root); });
  sim.run();

  double completion = 0.0;
  for (double t : has_data) {
    LBS_CHECK_MSG(t >= 0.0, "a rank never received the broadcast");
    completion = std::max(completion, t);
  }
  return completion;
}

double flat_time(const BcastModel& model) {
  return simulate_tree(model, 0, [&](int rank) {
    std::vector<int> kids;
    if (rank == 0) {
      for (int r = 1; r < model.ranks; ++r) kids.push_back(r);
    }
    return kids;
  });
}

double binomial_time(const BcastModel& model) {
  return simulate_tree(model, 0, [&](int rank) {
    std::vector<int> kids;
    for (int bit = 1; ; bit <<= 1) {
      if (rank != 0 && bit >= (rank & -rank)) break;
      if (rank + bit >= model.ranks) break;
      kids.push_back(rank + bit);
    }
    return kids;
  });
}

double hierarchical_time(const BcastModel& model) {
  // Topology-aware: coordinator of site s is rank s (its lowest member
  // under the interleaved layout); the root feeds the coordinators over
  // the WAN once each, every site then fans out over its LAN in parallel.
  return simulate_tree(model, 0, [&](int rank) {
    std::vector<int> kids;
    if (rank == 0) {
      for (int site = 1; site < model.sites; ++site) kids.push_back(site);
      for (int r = model.sites; r < model.ranks; ++r) {
        if (model.site_of(r) == 0) kids.push_back(r);
      }
    } else if (rank < model.sites) {  // remote coordinator
      for (int r = model.sites; r < model.ranks; ++r) {
        if (model.site_of(r) == model.site_of(rank)) kids.push_back(r);
      }
    }
    return kids;
  });
}

}  // namespace

int main() {
  bench::print_header(
      "Section 1 — broadcast trees on a grid (MPICH vs MPICH-G2 vs MagPIe)");

  BcastModel model;
  support::Table table({"WAN latency", "binomial (MPICH) (s)",
                        "flat (MPICH-G2 hi-lat) (s)", "hierarchical (MagPIe) (s)",
                        "winner"});
  double low_binomial = 0.0, low_flat = 0.0;
  double high_binomial = 0.0, high_flat = 0.0, high_hier = 0.0;
  for (double wan_latency : {0.0001, 0.001, 0.01, 0.05, 0.1, 0.5, 1.0}) {
    model.wan_latency = wan_latency;
    double binomial = binomial_time(model);
    double flat = flat_time(model);
    double hier = hierarchical_time(model);
    const char* winner = binomial <= flat && binomial <= hier ? "binomial"
                         : flat <= hier ? "flat" : "hierarchical";
    if (wan_latency == 0.0001) {
      low_binomial = binomial;
      low_flat = flat;
    }
    if (wan_latency == 1.0) {
      high_binomial = binomial;
      high_flat = flat;
      high_hier = hier;
    }
    table.add_row({support::format_seconds(wan_latency),
                   support::format_double(binomial, 3),
                   support::format_double(flat, 3), support::format_double(hier, 3),
                   winner});
  }
  table.print(std::cout);

  std::vector<bench::Comparison> comparisons{
      {"low latency: binomial wins", "MPICH's default is right on a LAN",
       support::format_double(low_binomial, 3) + " s vs flat " +
           support::format_double(low_flat, 3) + " s",
       low_binomial < low_flat},
      {"high latency: flat beats binomial", "MPICH-G2's switch",
       support::format_double(high_flat, 3) + " s vs binomial " +
           support::format_double(high_binomial, 3) + " s",
       high_flat < high_binomial},
      {"topology-aware wins overall at high latency", "MagPIe's design",
       support::format_double(high_hier, 3) + " s",
       high_hier <= high_flat && high_hier < high_binomial},
  };
  return bench::print_comparisons(comparisons);
}
