// Figure 4 reproduction: load-balanced execution with nodes sorted by
// *ascending* bandwidth — the inverse of the paper's ordering policy —
// at n = 817,101 rays.
//
// Paper reports: finishes between 437 s and 486 s, "the total duration is
// longer (56 s) than with the processors in the reverse order", partly
// because of a peak load on sekhmet during their run, and "most of the
// difference comes from the idle time spent by processors waiting before
// the actual communication begins" — the stair area is visibly bigger.
// We regenerate three variants: deterministic, with the sekhmet peak
// load, and report the stair-idle areas for both orders.

#include <iostream>

#include "bench_common.hpp"
#include "core/ordering.hpp"
#include "core/planner.hpp"
#include "gridsim/gridsim.hpp"
#include "model/testbed.hpp"
#include "support/csv.hpp"

int main() {
  using namespace lbs;
  bench::print_header(
      "Figure 4 — load-balanced, ascending bandwidth (n = 817,101)");

  auto grid = model::paper_testbed();
  auto root = model::paper_root(grid);
  auto descending =
      core::ordered_platform(grid, root, core::OrderingPolicy::DescendingBandwidth);
  auto ascending =
      core::ordered_platform(grid, root, core::OrderingPolicy::AscendingBandwidth);

  long long n = model::kPaperRayCount;
  auto plan_desc = core::plan_scatter(descending, n);
  auto plan_asc = core::plan_scatter(ascending, n);

  auto sim_desc = gridsim::simulate_scatter(descending, plan_desc.distribution);
  auto sim_asc = gridsim::simulate_scatter(ascending, plan_asc.distribution);

  // The paper notes "a peak load on sekhmet during the experiment": halve
  // sekhmet's speed for a 300 s window. In the ascending order sekhmet is
  // at position 12.
  int sekhmet_position = -1;
  for (int i = 0; i < ascending.size(); ++i) {
    if (ascending[i].label == "sekhmet") sekhmet_position = i;
  }
  // A 25% slowdown over a 200 s window costs sekhmet ~50 s — the order of
  // the paper's unexplained share of the +56 s gap.
  gridsim::SimOptions peak_load;
  peak_load.perturbations.push_back({sekhmet_position, 100.0, 300.0, 0.75});
  auto sim_asc_peak = gridsim::simulate_scatter(ascending, plan_asc.distribution, peak_load);

  support::Table table({"processor", "amount of data", "comm. time (s)",
                        "total time (s)", "total w/ sekhmet peak (s)"});
  for (std::size_t i = 0; i < sim_asc.timeline.traces.size(); ++i) {
    const auto& trace = sim_asc.timeline.traces[i];
    table.add_row({trace.label, support::format_count(trace.items),
                   support::format_double(trace.comm_time(), 2),
                   support::format_double(trace.finish(), 1),
                   support::format_double(sim_asc_peak.timeline.traces[i].finish(), 1)});
  }
  table.print(std::cout);

  std::cout << "\ncsv,processor,items,comm_s,total_s,total_peak_s\n";
  for (std::size_t i = 0; i < sim_asc.timeline.traces.size(); ++i) {
    const auto& trace = sim_asc.timeline.traces[i];
    std::cout << "csv," << trace.label << ',' << trace.items << ','
              << support::CsvWriter::cell(trace.comm_time()) << ','
              << support::CsvWriter::cell(trace.finish()) << ','
              << support::CsvWriter::cell(sim_asc_peak.timeline.traces[i].finish())
              << '\n';
  }

  double t_desc = sim_desc.timeline.makespan();
  double t_asc = sim_asc.timeline.makespan();
  double t_asc_peak = sim_asc_peak.timeline.makespan();
  double idle_desc = sim_desc.timeline.total_stair_idle();
  double idle_asc = sim_asc.timeline.total_stair_idle();

  std::cout << "\nstair idle area: descending "
            << support::format_double(idle_desc, 1) << " s vs ascending "
            << support::format_double(idle_asc, 1) << " s\n";

  std::vector<bench::Comparison> comparisons{
      {"ascending slower than descending", "+56 s (incl. sekhmet peak)",
       "+" + support::format_double(t_asc - t_desc, 1) + " s (deterministic), +" +
           support::format_double(t_asc_peak - t_desc, 1) + " s (with peak load)",
       t_asc > t_desc},
      {"finish band (with peak load)", "437-486 s",
       support::format_double(sim_asc_peak.timeline.earliest_finish(), 1) + "-" +
           support::format_double(t_asc_peak, 1) + " s",
       t_asc_peak > t_asc && t_asc_peak < 520.0},
      {"stair idle bigger in ascending order", "bigger area under dashed line",
       support::format_double(idle_asc / idle_desc, 2) + "x descending's",
       idle_asc > 1.5 * idle_desc},
      {"load still acceptably balanced (no peak)", "~10% spread",
       support::format_percent(sim_asc.timeline.finish_spread()),
       sim_asc.timeline.finish_spread() < 0.10},
  };
  return bench::print_comparisons(comparisons);
}
