// Ablation: the rounding scheme and its Eq. 4 guarantee.
//
// The paper's Section 3.3 proves that rounding the rational LP optimum
// costs at most  sum_j Tcomm(j,1) + max_i Tcomp(i,1)  over the integer
// optimum. This ablation sweeps random affine platforms and measures the
// *actual* excess T' - T_rat against the guaranteed bound: the guarantee
// must always hold and the realized excess should use only a small
// fraction of it.

#include <iostream>

#include "bench_common.hpp"
#include "core/heuristic.hpp"
#include "core/rounding.hpp"
#include "model/testbed.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace lbs;
  bench::print_header("Ablation — rounding scheme guarantee (Eq. 4)");

  support::Rng rng(20030301);
  constexpr int kTrials = 200;

  std::vector<double> slack_fraction_used;
  int guarantee_violations = 0;
  int max_deviation_violations = 0;

  for (int trial = 0; trial < kTrials; ++trial) {
    int machines = static_cast<int>(rng.uniform_int(2, 6));
    model::Grid grid = model::random_grid(rng, machines, /*affine=*/true);
    model::Platform platform = make_platform(grid, {grid.data_home(), 0});
    long long n = rng.uniform_int(100, 100000);

    auto result = core::lp_heuristic(platform, n);

    // Guarantee: T' <= T_rat + slack (T_rat <= T_opt <= T').
    double excess = result.makespan - result.rational_makespan;
    if (excess < -1e-9 || excess > result.guarantee_slack + 1e-9) {
      ++guarantee_violations;
    }
    slack_fraction_used.push_back(excess / result.guarantee_slack);

    // Per-share deviation: |n'_i - n_i| < 1.
    for (std::size_t i = 0; i < result.rational_shares.size(); ++i) {
      double deviation = std::abs(
          static_cast<double>(result.distribution.counts[i]) - result.rational_shares[i]);
      if (deviation >= 1.0 + 1e-6) ++max_deviation_violations;
    }
  }

  auto usage = support::summarize(slack_fraction_used);
  support::Table table({"metric", "value"});
  table.add_row({"trials", std::to_string(kTrials)});
  table.add_row({"guarantee violations", std::to_string(guarantee_violations)});
  table.add_row({"per-share |n' - n| >= 1", std::to_string(max_deviation_violations)});
  table.add_row({"slack fraction used, mean", support::format_percent(usage.mean)});
  table.add_row({"slack fraction used, max", support::format_percent(usage.max)});
  table.add_row({"slack fraction used, p90",
                 support::format_percent(support::quantile(slack_fraction_used, 0.9))});
  table.print(std::cout);

  std::vector<bench::Comparison> comparisons{
      {"Eq. 4 guarantee", "always holds",
       guarantee_violations == 0 ? "0 violations" : "VIOLATED",
       guarantee_violations == 0},
      {"rounding moves each share", "< 1 item",
       max_deviation_violations == 0 ? "all within 1" : "VIOLATED",
       max_deviation_violations == 0},
      {"realized excess", "far below the bound",
       "mean " + support::format_percent(usage.mean) + " of slack",
       usage.mean < 0.5},
  };
  return bench::print_comparisons(comparisons);
}
