// Table 1 reproduction: processor and network characteristics.
//
// The paper's Table 1 "values come from a series of benchmarks we
// performed on our application". This bench reproduces the table and,
// more importantly, the *procedure*:
//   1. the encoded testbed's alpha/beta with ratings recomputed from the
//      alphas (paper: rating = inverse of alpha, normalized to the
//      PIII/933) — the printed ratings must match the paper's column;
//   2. a real calibration of the seismic ray tracer on THIS host: time
//      batches, least-squares fit, observe that the intercept is
//      negligible (the paper's justification for the linear model) —
//      producing this host's own "alpha (s/ray)" row;
//   3. a calibration of an emulated network link through the mq runtime:
//      time paced transfers of several sizes, fit beta, recover the
//      configured value.

#include <algorithm>
#include <chrono>
#include <iostream>
#include <limits>
#include <vector>

#include "bench_common.hpp"
#include "model/calibration.hpp"
#include "model/testbed.hpp"
#include "mq/runtime.hpp"
#include "seismic/catalog.hpp"
#include "seismic/earth_model.hpp"
#include "seismic/ray.hpp"
#include "support/rng.hpp"

namespace {

double expected_rating(const std::string& machine) {
  if (machine == "dinadan") return 1.0;
  if (machine == "pellinore") return 0.99;
  if (machine == "caseb") return 2.0;
  if (machine == "sekhmet") return 1.90;
  if (machine == "merlin") return 2.33;
  if (machine == "seven") return 0.57;
  if (machine == "leda") return 0.95;
  return -1.0;
}

}  // namespace

int main() {
  using namespace lbs;
  bench::print_header("Table 1 — processors and links of the testbed");

  auto grid = model::paper_testbed();
  int dinadan = grid.machine_index("dinadan");
  double reference_alpha = grid.machine(dinadan).comp.per_item_slope();

  bool ratings_match = true;
  support::Table table({"machine", "CPUs", "type", "alpha (s/ray)", "rating",
                        "beta (s/ray)"});
  for (std::size_t m = 0; m < grid.machines().size(); ++m) {
    const auto& machine = grid.machine(static_cast<int>(m));
    double alpha = machine.comp.per_item_slope();
    double rating = model::rating(alpha, reference_alpha);
    if (std::abs(rating - expected_rating(machine.name)) > 0.015) {
      ratings_match = false;
    }
    double beta = static_cast<int>(m) == dinadan
                      ? 0.0
                      : grid.link(dinadan, static_cast<int>(m)).per_item_slope();
    table.add_row({machine.name, std::to_string(machine.cpu_count),
                   machine.cpu_description, support::format_double(alpha, 6),
                   support::format_double(rating, 2),
                   beta == 0.0 ? "0" : support::format_double(beta * 1e5, 2) + "e-5"});
  }
  table.print(std::cout);

  // --- 2. real per-ray compute calibration on this host -------------------
  auto earth = seismic::EarthModel::prem_like();
  support::Rng rng(2026);
  auto events = seismic::generate_catalog(rng, 1600);
  seismic::compute_work(earth, events.data(), 200);  // warm-up

  // Min-of-3 per batch size: the minimum is the noise-robust estimator
  // for timing benchmarks (OS jitter only ever adds time).
  std::vector<std::pair<long long, double>> samples;
  for (long long batch : {200LL, 400LL, 800LL, 1600LL}) {
    double best = std::numeric_limits<double>::infinity();
    for (int repetition = 0; repetition < 3; ++repetition) {
      auto start = std::chrono::steady_clock::now();
      seismic::compute_work(earth, events.data(), static_cast<std::size_t>(batch));
      auto elapsed = std::chrono::steady_clock::now() - start;
      best = std::min(best, std::chrono::duration<double>(elapsed).count());
    }
    samples.emplace_back(batch, best);
  }
  auto host_fit = model::calibrate(samples, /*intercept_tolerance=*/0.05);
  std::cout << "\nthis host, real ray tracer: alpha = "
            << support::format_double(host_fit.alpha * 1e6, 2)
            << "e-6 s/ray, model = " << (host_fit.linear_model ? "linear" : "affine")
            << ", r^2 = " << support::format_double(host_fit.r_squared, 4)
            << "  (rating vs PIII/933: "
            << support::format_double(model::rating(host_fit.alpha, reference_alpha), 0)
            << ")\n";

  // --- 3. link calibration through the mq runtime --------------------------
  constexpr double kConfiguredBeta = 2.0e-7;  // nominal s/byte
  constexpr double kTimeScale = 1.0;
  mq::RuntimeOptions options;
  options.ranks = 2;
  options.time_scale = kTimeScale;
  options.link_cost = [](int, int, std::size_t bytes) {
    return kConfiguredBeta * static_cast<double>(bytes);
  };
  std::vector<std::pair<long long, double>> link_samples;
  mq::Runtime::run(options, [&](mq::Comm& comm) {
    for (long long bytes : {20000LL, 40000LL, 80000LL, 160000LL}) {
      if (comm.rank() == 0) {
        std::vector<std::byte> payload(static_cast<std::size_t>(bytes));
        double t0 = comm.wtime();
        comm.send_bytes(1, 0, payload);
        link_samples.emplace_back(bytes, comm.wtime() - t0);
      } else {
        comm.recv_message(0, 0);
      }
      comm.barrier();
    }
  });
  auto link_fit = model::calibrate(link_samples, /*intercept_tolerance=*/0.2);
  double recovered_beta = link_fit.alpha / kTimeScale;
  std::cout << "mq link calibration: configured beta = 2.00e-7 s/byte, "
            << "recovered = " << support::format_double(recovered_beta * 1e7, 2)
            << "e-7 s/byte\n";

  std::vector<bench::Comparison> comparisons{
      {"ratings recomputed from alphas", "0.99 / 2 / 1.90 / 2.33 / 0.57 / 0.95",
       ratings_match ? "all match" : "mismatch", ratings_match},
      {"per-ray cost model on this host", "linear (latency negligible)",
       host_fit.linear_model ? "linear, r^2 > 0.99" : "affine",
       host_fit.linear_model && host_fit.r_squared > 0.99},
      {"recovered link beta", "matches configured",
       support::format_double(recovered_beta / kConfiguredBeta, 2) + "x configured",
       recovered_beta > 0.8 * kConfiguredBeta && recovered_beta < 1.6 * kConfiguredBeta},
  };
  return bench::print_comparisons(comparisons);
}
