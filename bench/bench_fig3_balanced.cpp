// Figure 3 reproduction: load-balanced execution, nodes sorted by
// descending bandwidth, n = 817,101 rays.
//
// Paper reports: earliest/latest finish 405 s / 430 s (spread ~6% of the
// total duration; theirs includes real-world noise), and "the total
// execution duration is approximately half the duration of the first
// experiment". We regenerate the series both deterministically (spread
// ~0) and with the simulator's compute-noise model (paper-like spread).

#include <iostream>

#include "bench_common.hpp"
#include "core/ordering.hpp"
#include "core/planner.hpp"
#include "gridsim/gridsim.hpp"
#include "model/testbed.hpp"
#include "support/csv.hpp"

int main() {
  using namespace lbs;
  bench::print_header(
      "Figure 3 — load-balanced, descending bandwidth (n = 817,101)");

  auto grid = model::paper_testbed();
  auto platform = core::ordered_platform(grid, model::paper_root(grid),
                                         core::OrderingPolicy::DescendingBandwidth);
  auto balanced = core::plan_scatter(platform, model::kPaperRayCount);
  auto uniform = core::plan_scatter(platform, model::kPaperRayCount,
                                    core::Algorithm::Uniform);

  auto deterministic = gridsim::simulate_scatter(platform, balanced.distribution);
  gridsim::SimOptions noisy_options;
  noisy_options.compute_noise = 0.02;  // ~2% per-run compute jitter
  noisy_options.noise_seed = 1999;
  auto noisy = gridsim::simulate_scatter(platform, balanced.distribution, noisy_options);
  auto uniform_sim = gridsim::simulate_scatter(platform, uniform.distribution);

  support::Table table({"processor", "amount of data", "comm. time (s)",
                        "total time (s)", "total, 2% noise (s)"});
  for (std::size_t i = 0; i < deterministic.timeline.traces.size(); ++i) {
    const auto& trace = deterministic.timeline.traces[i];
    table.add_row({trace.label, support::format_count(trace.items),
                   support::format_double(trace.comm_time(), 2),
                   support::format_double(trace.finish(), 1),
                   support::format_double(noisy.timeline.traces[i].finish(), 1)});
  }
  table.print(std::cout);

  std::cout << "\ncsv,processor,items,comm_s,total_s,total_noisy_s\n";
  for (std::size_t i = 0; i < deterministic.timeline.traces.size(); ++i) {
    const auto& trace = deterministic.timeline.traces[i];
    std::cout << "csv," << trace.label << ',' << trace.items << ','
              << support::CsvWriter::cell(trace.comm_time()) << ','
              << support::CsvWriter::cell(trace.finish()) << ','
              << support::CsvWriter::cell(noisy.timeline.traces[i].finish()) << '\n';
  }

  double t_balanced = deterministic.timeline.makespan();
  double t_uniform = uniform_sim.timeline.makespan();
  std::vector<bench::Comparison> comparisons{
      {"earliest finish", "405 s",
       support::format_double(deterministic.timeline.earliest_finish(), 1) + " s",
       deterministic.timeline.earliest_finish() > 320.0 &&
           deterministic.timeline.earliest_finish() < 480.0},
      {"latest finish", "430 s", support::format_double(t_balanced, 1) + " s",
       t_balanced > 340.0 && t_balanced < 500.0},
      {"finish spread (deterministic)", "6% (incl. noise)",
       support::format_percent(deterministic.timeline.finish_spread()),
       deterministic.timeline.finish_spread() < 0.02},
      {"finish spread (2% noise run)", "6%",
       support::format_percent(noisy.timeline.finish_spread()),
       noisy.timeline.finish_spread() < 0.15},
      {"duration vs uniform run", "~half",
       support::format_double(t_balanced / t_uniform, 2) + "x",
       t_balanced / t_uniform > 0.35 && t_balanced / t_uniform < 0.65},
  };
  return bench::print_comparisons(comparisons);
}
