// Ablation: scatter-only planning vs full round-trip planning.
//
// The paper plans the scatter + compute makespan; result collection is
// left out of the optimization (the application gathers ray paths back).
// This ablation quantifies the gap: as the result volume grows relative
// to the inputs (gather_ratio), the scatter-optimal distribution keeps
// overloading processors behind slow links whose results then crawl back
// through the single root port; round-trip-aware local search rebalances.

#include <iostream>

#include "bench_common.hpp"
#include "core/ordering.hpp"
#include "core/planner.hpp"
#include "core/roundtrip.hpp"
#include "model/testbed.hpp"
#include "support/table.hpp"

int main() {
  using namespace lbs;
  bench::print_header("Ablation — round-trip-aware planning (Section 3.4 beyond)");

  auto grid = model::paper_testbed();
  auto platform = core::ordered_platform(grid, model::paper_root(grid),
                                         core::OrderingPolicy::DescendingBandwidth);
  long long n = 200000;

  support::Table table({"gather ratio", "scatter-optimal round trip (s)",
                        "round-trip-optimized (s)", "gain", "passes"});
  double max_gain = 0.0;
  double zero_ratio_gain = 1.0;
  for (double ratio : {0.0, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    core::RoundTripOptions options;
    options.gather_ratio = ratio;
    auto plan = core::optimize_roundtrip(platform, n, options);
    double gain = 1.0 - plan.makespan / plan.seed_makespan;
    if (ratio == 0.0) zero_ratio_gain = gain;
    max_gain = std::max(max_gain, gain);
    table.add_row({support::format_double(ratio, 2),
                   support::format_double(plan.seed_makespan, 2),
                   support::format_double(plan.makespan, 2),
                   support::format_percent(gain), std::to_string(plan.passes_used)});
  }
  table.print(std::cout);

  std::vector<bench::Comparison> comparisons{
      {"no gather: scatter plan already optimal", "gain ~ 0",
       support::format_percent(zero_ratio_gain), zero_ratio_gain < 0.001},
      {"gather-heavy: round-trip planning pays", "gain grows with ratio",
       "up to " + support::format_percent(max_gain), max_gain > 0.01},
  };
  return bench::print_comparisons(comparisons);
}
