// Ablation: the paper's no-overlap design choice (Section 6).
//
// "In our work, we chose to keep the same communication structure as the
// original program, in order to have feasible automatic code
// transformation rules. Hence we do not consider interlacing computation
// and communication phases."
//
// This ablation quantifies what that choice costs: an iterative code
// (multi-round scatter+compute, like a tomography solver) run (a) with
// the paper's barriered rounds and (b) with a pipelined schedule where
// the root streams the next round's data while processors compute. On the
// Table 1 testbed the communication fraction is small, so the paper's
// choice is cheap — the point of the measurement. A comm-heavy variant of
// the platform shows where overlap *would* matter.

#include <iostream>

#include "bench_common.hpp"
#include "core/ordering.hpp"
#include "core/planner.hpp"
#include "gridsim/gridsim.hpp"
#include "model/testbed.hpp"
#include "support/table.hpp"

namespace {

using namespace lbs;

struct OverlapResult {
  double sequential = 0.0;
  double overlapped = 0.0;
};

OverlapResult measure(const model::Platform& platform,
                      const core::Distribution& distribution, int rounds) {
  auto sequential = gridsim::simulate_rounds(platform, distribution, rounds);
  auto overlapped = gridsim::simulate_rounds_overlapped(platform, distribution, rounds);
  OverlapResult result;
  result.sequential = sequential.back().timeline.latest_finish();
  for (const auto& round : overlapped) {
    result.overlapped = std::max(result.overlapped, round.timeline.latest_finish());
  }
  return result;
}

model::Platform comm_heavy_testbed() {
  // The Table 1 testbed with 20x slower links: a grid where the WAN, not
  // the CPUs, dominates — the regime where overlap pays.
  auto grid = model::paper_testbed();
  model::Grid heavy;
  for (const auto& machine : grid.machines()) heavy.add_machine(machine);
  int n = static_cast<int>(grid.machines().size());
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (!grid.has_link(a, b)) continue;
      heavy.set_link(a, b,
                     model::Cost::linear(20.0 * grid.link(a, b).per_item_slope()));
    }
  }
  heavy.set_data_home(grid.data_home());
  return core::ordered_platform(heavy, model::paper_root(heavy),
                                core::OrderingPolicy::DescendingBandwidth);
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — no-overlap design choice (barriered vs pipelined rounds)");

  auto grid = model::paper_testbed();
  auto platform = core::ordered_platform(grid, model::paper_root(grid),
                                         core::OrderingPolicy::DescendingBandwidth);
  long long per_round = 100000;
  auto plan = core::plan_scatter(platform, per_round);

  auto heavy = comm_heavy_testbed();
  auto heavy_plan = core::plan_scatter(heavy, per_round);

  support::Table table({"rounds", "Table 1: barriered (s)", "pipelined (s)",
                        "saved", "comm-heavy: barriered (s)", "pipelined (s)",
                        "saved "});
  double testbed_saving = 0.0;
  double heavy_saving = 0.0;
  for (int rounds : {1, 2, 4, 8}) {
    auto normal = measure(platform, plan.distribution, rounds);
    auto comm_heavy = measure(heavy, heavy_plan.distribution, rounds);
    testbed_saving = 1.0 - normal.overlapped / normal.sequential;
    heavy_saving = 1.0 - comm_heavy.overlapped / comm_heavy.sequential;
    table.add_row({std::to_string(rounds),
                   support::format_double(normal.sequential, 1),
                   support::format_double(normal.overlapped, 1),
                   support::format_percent(testbed_saving),
                   support::format_double(comm_heavy.sequential, 1),
                   support::format_double(comm_heavy.overlapped, 1),
                   support::format_percent(heavy_saving)});
  }
  table.print(std::cout);

  std::vector<bench::Comparison> comparisons{
      {"pipelining never hurts", "overlap <= barriered", "holds at every round count",
       testbed_saving >= -1e-9 && heavy_saving >= -1e-9},
      {"paper's choice is cheap on its testbed", "comm << comp",
       support::format_percent(testbed_saving) + " saved at 8 rounds",
       testbed_saving < 0.15},
      {"overlap matters when comm dominates", "-",
       support::format_percent(heavy_saving) + " saved at 8 rounds",
       heavy_saving > testbed_saving},
  };
  return bench::print_comparisons(comparisons);
}
