// Figure 2 reproduction: the original program (uniform MPI_Scatter
// distribution) on the Table 1 testbed, n = 817,101 rays.
//
// Paper reports: "the earliest processor finishing after 259 s and the
// latest after 853 s" — a huge imbalance. We regenerate the per-processor
// series (total time, communication time, amount of data) from the grid
// simulator and check the shape: >3x imbalance, latest in the 700-950 s
// band (the absolute value depends on their measured alphas, which we use
// verbatim, so it lands close).

#include <iostream>

#include "bench_common.hpp"
#include "core/ordering.hpp"
#include "core/planner.hpp"
#include "gridsim/gridsim.hpp"
#include "model/testbed.hpp"
#include "support/csv.hpp"

int main() {
  using namespace lbs;
  bench::print_header(
      "Figure 2 — original program, uniform distribution (n = 817,101)");

  auto grid = model::paper_testbed();
  auto platform = core::ordered_platform(grid, model::paper_root(grid),
                                         core::OrderingPolicy::DescendingBandwidth);
  auto plan = core::plan_scatter(platform, model::kPaperRayCount,
                                 core::Algorithm::Uniform);
  auto sim = gridsim::simulate_scatter(platform, plan.distribution);
  const auto& timeline = sim.timeline;

  support::Table table({"processor", "amount of data", "comm. time (s)",
                        "total time (s)"});
  for (const auto& trace : timeline.traces) {
    table.add_row({trace.label, support::format_count(trace.items),
                   support::format_double(trace.comm_time(), 2),
                   support::format_double(trace.finish(), 1)});
  }
  table.print(std::cout);

  std::cout << "\ncsv,processor,items,comm_s,total_s\n";
  for (const auto& trace : timeline.traces) {
    std::cout << "csv," << trace.label << ',' << trace.items << ','
              << support::CsvWriter::cell(trace.comm_time()) << ','
              << support::CsvWriter::cell(trace.finish()) << '\n';
  }

  double earliest = timeline.earliest_finish();
  double latest = timeline.latest_finish();
  std::vector<bench::Comparison> comparisons{
      {"earliest finish", "259 s", support::format_double(earliest, 1) + " s",
       earliest > 150.0 && earliest < 350.0},
      {"latest finish", "853 s", support::format_double(latest, 1) + " s",
       latest > 700.0 && latest < 950.0},
      {"imbalance (latest/earliest)", "3.3x",
       support::format_double(latest / earliest, 2) + "x", latest / earliest > 3.0},
      {"slowest machine", "seven (R12K/300)",
       timeline.traces[3].finish() >= latest - 2.0 ? "seven" : "other",
       timeline.traces[3].finish() >= latest - 2.0},
  };
  return bench::print_comparisons(comparisons);
}
