// Ablation: the processor ordering policy (Theorem 3 / Section 4.4).
//
// The paper proves (linear case, rational shares) that serving processors
// in decreasing-bandwidth order is optimal, and measures the policy
// against its inverse (Figures 3 vs 4). This ablation measures all four
// implemented policies on the Table 1 testbed, and exhaustively verifies
// Theorem 3 on small random linear grids by enumerating every ordering.

#include <iostream>

#include "bench_common.hpp"
#include "core/closed_form.hpp"
#include "core/ordering.hpp"
#include "core/planner.hpp"
#include "model/testbed.hpp"
#include "support/table.hpp"

int main() {
  using namespace lbs;
  bench::print_header("Ablation — processor ordering policy (Theorem 3)");

  auto grid = model::paper_testbed();
  auto root = model::paper_root(grid);
  long long n = model::kPaperRayCount;

  struct PolicyRow {
    const char* name;
    core::OrderingPolicy policy;
  };
  const PolicyRow policies[] = {
      {"descending bandwidth (paper policy)", core::OrderingPolicy::DescendingBandwidth},
      {"ascending bandwidth (inverse)", core::OrderingPolicy::AscendingBandwidth},
      {"grid declaration order", core::OrderingPolicy::GridOrder},
      {"random shuffle (seed 1)", core::OrderingPolicy::Random},
  };

  support::Table table({"ordering policy", "makespan (s)", "vs policy"});
  double policy_makespan = 0.0;
  double worst = 0.0;
  support::Rng rng(1);
  for (const auto& row : policies) {
    auto platform = core::ordered_platform(grid, root, row.policy, &rng);
    auto plan = core::plan_scatter(platform, n);
    if (row.policy == core::OrderingPolicy::DescendingBandwidth) {
      policy_makespan = plan.predicted_makespan;
    }
    worst = std::max(worst, plan.predicted_makespan);
    table.add_row({row.name, support::format_double(plan.predicted_makespan, 2),
                   policy_makespan > 0.0
                       ? "+" + support::format_double(
                                   plan.predicted_makespan - policy_makespan, 2) + " s"
                       : "-"});
  }
  table.print(std::cout);

  // Exhaustive Theorem 3 verification on small random linear grids.
  std::cout << "\nexhaustive check on random linear grids (all orderings, "
               "rational shares):\n";
  support::Rng grid_rng(42);
  int verified = 0;
  int attempted = 0;
  long long total_permutations = 0;
  while (verified < 5 && attempted < 25) {
    ++attempted;
    model::Grid random = model::random_grid(grid_rng, 3, /*affine=*/false);
    if (random.total_cpus() > 8) continue;
    model::ProcessorRef random_root{random.data_home(), 0};
    auto evaluate = [&](const model::Platform& platform) {
      return core::solve_linear(platform, 10000).duration;
    };
    auto best = core::exhaustive_best_ordering(random, random_root, evaluate);
    auto policy_platform = core::ordered_platform(
        random, random_root, core::OrderingPolicy::DescendingBandwidth);
    double policy_cost = evaluate(policy_platform);
    total_permutations += best.permutations_tried;
    bool optimal = policy_cost <= best.cost * (1.0 + 1e-10);
    std::cout << "  grid " << attempted << ": " << best.permutations_tried
              << " orderings, policy " << support::format_double(policy_cost, 4)
              << " s vs best " << support::format_double(best.cost, 4) << " s -> "
              << (optimal ? "optimal" : "SUBOPTIMAL") << '\n';
    if (!optimal) break;
    ++verified;
  }

  std::vector<bench::Comparison> comparisons{
      {"descending beats ascending", "404->414+ s direction (Figs. 3-4)",
       "+" + support::format_double(worst - policy_makespan, 1) + " s worst policy",
       worst > policy_makespan},
      {"Theorem 3 (exhaustive, linear)", "policy ordering is optimal",
       std::to_string(verified) + "/5 grids verified over " +
           std::to_string(total_permutations) + " orderings",
       verified == 5},
  };
  return bench::print_comparisons(comparisons);
}
