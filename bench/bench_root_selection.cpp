// Ablation: choice of the root processor (Section 3.4).
//
// "The best root processor is then the processor minimizing this whole
// execution time, when picked as root. This is just the result of a
// minimization over the p candidates." We run that minimization on the
// Table 1 testbed (where dinadan, the data home, should win — the links
// out of it cost more than they save) and on an asymmetric hub topology
// where staging the data to a better-connected machine pays off.

#include <iostream>

#include "bench_common.hpp"
#include "core/root_selection.hpp"
#include "model/testbed.hpp"
#include "support/table.hpp"

namespace {

lbs::model::Grid hub_topology() {
  using namespace lbs;
  model::Grid grid;
  model::Machine archive;
  archive.name = "archive";
  archive.comp = model::Cost::linear(1.0);
  int archive_idx = grid.add_machine(archive);
  model::Machine hub;
  hub.name = "hub";
  hub.comp = model::Cost::linear(1e-4);
  int hub_idx = grid.add_machine(hub);
  for (int w = 0; w < 3; ++w) {
    model::Machine worker;
    worker.name = "worker" + std::to_string(w);
    worker.cpu_count = 2;
    worker.comp = model::Cost::linear(1e-4);
    int idx = grid.add_machine(worker);
    grid.set_link(archive_idx, idx, model::Cost::linear(1e-4));
    grid.set_link(hub_idx, idx, model::Cost::linear(1e-6));
  }
  grid.set_link(archive_idx, hub_idx, model::Cost::linear(1e-6));
  for (int a = 2; a < 5; ++a) {
    for (int b = a + 1; b < 5; ++b) grid.set_link(a, b, model::Cost::linear(1e-6));
  }
  grid.set_data_home(archive_idx);
  return grid;
}

void print_candidates(const lbs::core::RootSelectionResult& result) {
  using namespace lbs;
  support::Table table({"candidate root", "staging (s)", "scatter+compute (s)",
                        "total (s)", ""});
  for (std::size_t i = 0; i < result.candidates.size(); ++i) {
    const auto& candidate = result.candidates[i];
    table.add_row({candidate.label, support::format_double(candidate.staging_time, 2),
                   support::format_double(candidate.scatter_makespan, 2),
                   support::format_double(candidate.total_time, 2),
                   static_cast<int>(i) == result.best_index ? "<- best" : ""});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  using namespace lbs;
  bench::print_header("Ablation — root selection (Section 3.4)");

  std::cout << "\nTable 1 testbed, n = 817,101 (data home: dinadan):\n";
  auto testbed = model::paper_testbed();
  auto testbed_result = core::select_root(testbed, model::kPaperRayCount);
  print_candidates(testbed_result);

  std::cout << "\nhub topology, n = 1,000,000 (data home: archive; archive's\n"
               "direct links to workers are 100x slower than via the hub):\n";
  auto hub = hub_topology();
  auto hub_result = core::select_root(hub, 1000000);
  print_candidates(hub_result);

  // How much the minimization buys in the hub case: best vs data-home root.
  double home_total = 0.0;
  for (const auto& candidate : hub_result.candidates) {
    if (candidate.label == "archive") home_total = candidate.total_time;
  }

  std::vector<bench::Comparison> comparisons{
      {"testbed best root", "dinadan (the data home)", testbed_result.best().label,
       testbed_result.best().label == "dinadan"},
      {"hub-topology best root", "a remote, better-connected machine",
       hub_result.best().label, hub_result.best().label == "hub"},
      {"gain from selecting the root (hub case)", "staging pays for itself",
       support::format_double(home_total / hub_result.best().total_time, 2) + "x faster",
       hub_result.best().total_time < home_total},
  };
  return bench::print_comparisons(comparisons);
}
