// Ablation: single-installment scatter vs multi-installment pipelining.
//
// The paper sends every share in one message (the structure of the
// original MPI code). The divisible-load literature it cites splits
// shares into k installments to shrink the idle-before-first-byte. This
// ablation sweeps k on the Table 1 testbed (linear costs: installments
// only help, but by little — the balanced stair is already small) and on
// an affine variant with per-message latency (a finite optimal k emerges
// and over-splitting backfires).

#include <iostream>

#include "bench_common.hpp"
#include "core/installments.hpp"
#include "core/ordering.hpp"
#include "core/planner.hpp"
#include "model/testbed.hpp"
#include "support/table.hpp"

namespace {

using namespace lbs;

model::Platform affine_variant() {
  // A comm-bound variant: Table 1 machines behind 20x slower links with a
  // 300 ms per-message latency (WAN-class handshakes). On the original
  // testbed compute dominates
  // so the pipeline hides any extra latency; here the root port is the
  // bottleneck and the installment tradeoff becomes visible.
  auto grid = model::paper_testbed();
  model::Grid affine;
  for (const auto& machine : grid.machines()) affine.add_machine(machine);
  int n = static_cast<int>(grid.machines().size());
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (!grid.has_link(a, b)) continue;
      affine.set_link(
          a, b, model::Cost::affine(0.3, 20.0 * grid.link(a, b).per_item_slope()));
    }
  }
  affine.set_data_home(grid.data_home());
  return core::ordered_platform(affine, model::paper_root(affine),
                                core::OrderingPolicy::DescendingBandwidth);
}

}  // namespace

int main() {
  bench::print_header("Ablation — multi-installment scatter (vs the paper's k = 1)");

  auto grid = model::paper_testbed();
  auto platform = core::ordered_platform(grid, model::paper_root(grid),
                                         core::OrderingPolicy::DescendingBandwidth);
  long long n = model::kPaperRayCount;
  auto uniform = core::uniform_distribution(n, platform.size());
  auto balanced = core::plan_scatter(platform, n).distribution;

  auto affine_platform = affine_variant();
  auto affine_balanced = core::plan_scatter(affine_platform, n).distribution;

  support::Table table({"k", "uniform dist (s)", "balanced dist (s)",
                        "comm-bound affine variant (s)"});
  for (int k : {1, 2, 4, 8, 16, 32, 64}) {
    table.add_row({std::to_string(k),
                   support::format_double(core::installment_makespan(platform, uniform, k), 2),
                   support::format_double(core::installment_makespan(platform, balanced, k), 2),
                   support::format_double(
                       core::installment_makespan(affine_platform, affine_balanced, k), 2)});
  }
  table.print(std::cout);

  auto linear_sweep = core::sweep_installments(platform, balanced, 64);
  auto affine_sweep = core::sweep_installments(affine_platform, affine_balanced, 64);
  double linear_k1 = core::installment_makespan(platform, balanced, 1);
  double affine_k1 = core::installment_makespan(affine_platform, affine_balanced, 1);
  double affine_k64 = core::installment_makespan(affine_platform, affine_balanced, 64);

  std::cout << "\nbest k: linear testbed " << linear_sweep.best_installments << " ("
            << support::format_double(linear_sweep.best_makespan, 2)
            << " s), affine variant " << affine_sweep.best_installments << " ("
            << support::format_double(affine_sweep.best_makespan, 2) << " s)\n";

  std::vector<bench::Comparison> comparisons{
      {"k = 1 is near-optimal on the testbed", "paper's design choice",
       support::format_percent(1.0 - linear_sweep.best_makespan / linear_k1) +
           " left on the table",
       linear_sweep.best_makespan > 0.98 * linear_k1},
      {"a finite k wins under per-message latency", "divisible-load tradeoff",
       "best k = " + std::to_string(affine_sweep.best_installments),
       affine_sweep.best_installments < 64 && affine_k64 > affine_sweep.best_makespan},
      {"over-splitting backfires (affine, k = 64)", "latency x64",
       "+" + support::format_double(affine_k64 - affine_k1, 1) + " s vs k = 1",
       affine_k64 > affine_k1},
  };
  return bench::print_comparisons(comparisons);
}
