// Planner fleet throughput: a multi-process load generator driving 1->N
// lbsd replicas over TCP through FleetClient's consistent-hash routing.
//
//   ./build/bench/bench_fleet_throughput [--json <file>] [--slo <file>]
//       [--scale K] [--replicas N] [--workers-per-replica W] [--reshard]
//
// For each fleet size N in {1, 2, 4, ... --replicas}:
//
//   1. N Servers listen on kernel-assigned TCP ports (real sockets, real
//      wire protocol — the same frames a cross-host fleet would ship).
//   2. The parent warms a fixed key set through a FleetClient and checks
//      the partition invariant: every key solved exactly once fleet-wide.
//   3. W*N WORKER PROCESSES (fork+exec of this binary with --worker, not
//      threads — separate address spaces, separate FleetClients,
//      separate TCP stacks, like real tenants) replay the warmed keys
//      and stream every request's latency back over a pipe as raw f64
//      seconds. Raw samples, not per-child percentiles: percentiles do
//      not merge, so aggregation must happen on the pooled samples.
//
// The load grows WITH the fleet (weak scaling): N replicas get N times
// the workers. The self-gates:
//
//   - scaling: aggregate warm throughput at N=max vs N=1 must reach
//     min(0.7*N, max(0.5, 0.3*cores)) — the full 0.7*N on the many-core
//     runners the acceptance criterion names, derated below that so a
//     1-core container only has to prove routing does not collapse
//     under a 4x fleet + 4x load (single-core ratios are scheduler
//     noise, not fleet behavior).
//   - p99 SLO: pooled p99 latency at every fleet size must stay under
//     the checked-in bound (--slo bench/baselines/fleet_slo.json), so a
//     tail regression fails CI even when aggregate throughput looks fine.
//   - correctness: every worker request must return Ok (exit status of
//     every child), and the warm phase must partition (no duplicate
//     solves across replicas).
//
// --reshard runs the elasticity phase instead: 3 serving replicas under
// the same multi-process load, a 4th replica JOINS mid-run (two-phase
// join + snapshot handoff, the epoch bump rides WrongEpoch redirects to
// every worker process), and the run self-gates on
//
//   - zero worker failures across the epoch churn (redirects are typed
//     retries, not errors),
//   - bounded remap: the keys whose ring home changed all moved TO the
//     joiner, and they number at most kKeys/2 (a naive mod-N rehash
//     moves ~3/4 and trips this),
//   - zero re-solves: the joiner's solve counter stays 0 (its partition
//     arrived by snapshot handoff) and fleet-wide solves stay exactly
//     kKeys,
//
// and emits one `fleet_reshard` record whose p50/p95/p99 — measured
// ACROSS the churn window — check_regression.py holds against
// bench/baselines/fleet_reshard_smoke.json.
//
// --scale multiplies requests per worker (the nightly soak raises it).

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/plan_cache.hpp"
#include "core/planner.hpp"
#include "model/cost.hpp"
#include "model/platform.hpp"
#include "service/admin.hpp"
#include "service/fleet.hpp"
#include "service/membership.hpp"
#include "service/server.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace lbs;

constexpr int kProcessors = 8;
constexpr long long kItemsBase = 20000;
constexpr int kKeys = 32;                 // warmed keys, shared by all workers
// Long enough that steady-state serving dominates the fork+exec+dial
// cost (~10ms per worker) in every measurement; x --scale for soaks.
constexpr int kRequestsPerWorker = 2000;

// Same per-worker shape as bench_service_throughput so the solve cost is
// comparable; the seed varies the worker slope => distinct PlanKeys.
model::Platform keyed_platform(int seed) {
  model::Platform platform;
  for (int i = 0; i < kProcessors - 1; ++i) {
    model::Processor proc;
    proc.label = std::string("w").append(std::to_string(i));
    proc.comm = model::Cost::linear(1e-5 * (1 + i % 3));
    proc.comp = model::Cost::linear(1e-3 * (1 + i % 5) + 1e-6 * seed);
    platform.processors.push_back(proc);
  }
  model::Processor root;
  root.label = "root";
  root.comm = model::Cost::zero();
  root.comp = model::Cost::linear(2e-3);
  platform.processors.push_back(root);
  return platform;
}

double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---- worker process ------------------------------------------------------
// bench_fleet_throughput --worker <endpoints> <requests> <worker-id> [view]
// Replays the warmed key set through its own FleetClient and writes each
// request's latency to stdout as a raw little-endian f64 (seconds).
// Exit 0 iff every request returned Ok. The optional view file seeds the
// client with a VERSIONED membership (the reshard phase needs workers to
// carry a real epoch so WrongEpoch redirects can move them); no watcher
// runs — mid-run epochs arrive purely over the wire.
int run_worker(const std::string& endpoints, int requests, int worker_id,
               const std::string& view_path) {
  service::FleetOptions options;
  options.replicas = service::parse_endpoint_list(endpoints);
  options.client.request_timeout_ms = 30000;
  if (!view_path.empty()) {
    options.membership_path = view_path;
    options.membership_poll_ms = 0;  // one initial read, no polling
  }
  service::FleetClient fleet(options);

  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(requests));
  int failures = 0;
  for (int i = 0; i < requests; ++i) {
    auto platform = keyed_platform((worker_id + i) % kKeys);
    double sent = wall_seconds();
    auto response =
        fleet.plan(platform, kItemsBase, core::Algorithm::OptimizedDp);
    latencies.push_back(wall_seconds() - sent);
    if (response.status != service::PlanStatus::Ok) ++failures;
  }
  // One buffered write at the end: samples never interleave with another
  // worker's (each child owns its own pipe anyway) and the measurement
  // loop never blocks on a full pipe.
  size_t bytes = latencies.size() * sizeof(double);
  const char* data = reinterpret_cast<const char*>(latencies.data());
  while (bytes > 0) {
    ssize_t written = ::write(STDOUT_FILENO, data, bytes);
    if (written <= 0) return 2;
    data += written;
    bytes -= static_cast<size_t>(written);
  }
  return failures > 0 ? 1 : 0;
}

// ---- parent: spawn + merge ----------------------------------------------

struct WorkerHandle {
  pid_t pid = -1;
  int read_fd = -1;
};

// fork+exec (never bare fork: the parent runs FleetClient threads, and a
// forked child of a threaded process may hold a poisoned malloc lock —
// exec resets the world). /proc/self/exe re-enters this binary.
WorkerHandle spawn_worker(const std::string& endpoints, int requests,
                          int worker_id, const std::string& view_path = {}) {
  int fds[2];
  if (::pipe(fds) != 0) {
    std::cerr << "pipe: " << std::strerror(errno) << '\n';
    std::exit(1);
  }
  pid_t pid = ::fork();
  if (pid < 0) {
    std::cerr << "fork: " << std::strerror(errno) << '\n';
    std::exit(1);
  }
  if (pid == 0) {
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    std::string requests_arg = std::to_string(requests);
    std::string id_arg = std::to_string(worker_id);
    const char* argv[] = {"bench_fleet_throughput", "--worker",
                          endpoints.c_str(),        requests_arg.c_str(),
                          id_arg.c_str(),
                          view_path.empty() ? nullptr : view_path.c_str(),
                          nullptr};
    ::execv("/proc/self/exe", const_cast<char* const*>(argv));
    // Only reached when exec failed; stdio may be gone, so raw write.
    const char message[] = "execv /proc/self/exe failed\n";
    (void)!::write(STDERR_FILENO, message, sizeof(message) - 1);
    _exit(127);
  }
  ::close(fds[1]);
  return {pid, fds[0]};
}

// Drains one worker's pipe into `samples` (f64 seconds per request).
void read_samples(int fd, std::vector<double>& samples) {
  double buffer[512];
  for (;;) {
    ssize_t got = ::read(fd, buffer, sizeof(buffer));
    if (got <= 0) break;
    size_t count = static_cast<size_t>(got) / sizeof(double);
    samples.insert(samples.end(), buffer, buffer + count);
  }
  ::close(fd);
}

struct FleetMeasurement {
  int replicas = 0;
  int workers = 0;
  long long requests = 0;
  double elapsed_s = 0.0;
  double rps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  int worker_failures = 0;
  bool partitioned = true;
};

FleetMeasurement measure_fleet(int replicas, int workers_per_replica,
                               int scale) {
  FleetMeasurement result;
  result.replicas = replicas;

  std::vector<std::unique_ptr<service::Server>> servers;
  service::FleetOptions warm_options;
  std::string endpoints;
  for (int r = 0; r < replicas; ++r) {
    service::ServerOptions options;
    options.endpoint = service::Endpoint::tcp("127.0.0.1", 0);
    options.max_queue = 1024;
    servers.push_back(std::make_unique<service::Server>(options));
    servers.back()->start();
    warm_options.replicas.push_back(servers.back()->endpoint());
    if (!endpoints.empty()) endpoints += ',';
    endpoints += servers.back()->endpoint().to_string();
  }

  // Warm the key set and prove the partition before measuring.
  {
    service::FleetClient warm(warm_options);
    for (int key = 0; key < kKeys; ++key) {
      auto response = warm.plan(keyed_platform(key), kItemsBase,
                                core::Algorithm::OptimizedDp);
      if (response.status != service::PlanStatus::Ok) {
        std::cerr << "warm solve failed: " << response.message << '\n';
        result.partitioned = false;
      }
    }
    std::uint64_t total_solved = 0;
    for (const auto& server : servers) total_solved += server->counters().solved;
    if (total_solved != static_cast<std::uint64_t>(kKeys)) {
      std::cerr << "partition violated: " << total_solved << " solves for "
                << kKeys << " keys\n";
      result.partitioned = false;
    }
  }

  const int workers = workers_per_replica * replicas;
  const int requests = kRequestsPerWorker * scale;
  result.workers = workers;
  result.requests = static_cast<long long>(workers) * requests;

  double start = wall_seconds();
  std::vector<WorkerHandle> handles;
  handles.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    handles.push_back(spawn_worker(endpoints, requests, w));
  }
  // Sequential drain is deadlock-free: each child's pipe empties
  // independently, and a child blocked on a full pipe just waits its turn.
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(result.requests));
  for (auto& handle : handles) read_samples(handle.read_fd, samples);
  for (auto& handle : handles) {
    int status = 0;
    ::waitpid(handle.pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) ++result.worker_failures;
  }
  result.elapsed_s = wall_seconds() - start;

  result.rps = static_cast<double>(result.requests) / result.elapsed_s;
  if (samples.size() != static_cast<std::size_t>(result.requests)) {
    std::cerr << "sample loss: " << samples.size() << " of " << result.requests
              << " latencies arrived\n";
    ++result.worker_failures;
  }
  if (!samples.empty()) {
    result.p50_ms = 1e3 * support::quantile(samples, 0.50);
    result.p95_ms = 1e3 * support::quantile(samples, 0.95);
    result.p99_ms = 1e3 * support::quantile(samples, 0.99);
  }

  for (auto& server : servers) server->stop();
  return result;
}

// ---- reshard phase -------------------------------------------------------
// 3 serving replicas under worker load, a 4th joins mid-run. Latency is
// pooled ACROSS the churn window (the p99 includes every redirect), and
// the phase proves the elasticity invariants on real processes: bounded
// remap, zero failures, zero re-solves.
std::uint64_t bench_key_hash(int seed) {
  core::PlanKey key = core::make_plan_key(keyed_platform(seed), kItemsBase,
                                          core::Algorithm::OptimizedDp);
  return static_cast<std::uint64_t>(core::PlanKeyHash{}(key));
}

int run_reshard(int workers, int scale, const std::string& json_path) {
  bench::print_header("Planner fleet reshard: 3 -> 4 TCP replicas mid-load");
  std::cout << "workers: " << workers << " | keys: " << kKeys
            << " | requests/worker: " << kRequestsPerWorker * scale << '\n';

  std::vector<std::unique_ptr<service::Server>> servers;
  for (int r = 0; r < 4; ++r) {
    service::ServerOptions options;
    options.endpoint = service::Endpoint::tcp("127.0.0.1", 0);
    options.max_queue = 1024;
    servers.push_back(std::make_unique<service::Server>(options));
    servers.back()->start();
  }
  const service::Endpoint joiner = servers[3]->endpoint();

  service::MembershipView v1;
  v1.epoch = 1;
  std::vector<service::Endpoint> initial;
  std::string endpoints;
  for (int r = 0; r < 3; ++r) {
    v1.members.push_back(service::Member{servers[r]->endpoint(),
                                         service::ReplicaState::Serving});
    initial.push_back(servers[r]->endpoint());
    if (!endpoints.empty()) endpoints += ',';
    endpoints += servers[r]->endpoint().to_string();
  }
  service::admin::PushResult seeded = service::admin::push_view(v1, initial);
  if (!seeded.errors.empty()) {
    std::cerr << "seed push failed: " << seeded.errors.front() << '\n';
    return 1;
  }

  // Warm every key at its epoch-1 home and prove the partition.
  bool warm_ok = true;
  {
    service::FleetOptions warm_options;
    warm_options.view = v1;
    service::FleetClient warm(warm_options);
    for (int key = 0; key < kKeys; ++key) {
      auto response = warm.plan(keyed_platform(key), kItemsBase,
                                core::Algorithm::OptimizedDp);
      if (response.status != service::PlanStatus::Ok) {
        std::cerr << "warm solve failed: " << response.message << '\n';
        warm_ok = false;
      }
    }
  }
  std::uint64_t warm_solved = 0;
  for (const auto& server : servers) warm_solved += server->counters().solved;
  if (warm_solved != static_cast<std::uint64_t>(kKeys)) {
    std::cerr << "warm partition violated: " << warm_solved << " solves for "
              << kKeys << " keys\n";
    warm_ok = false;
  }

  // Workers need a VERSIONED starting view (an epoch-0 client never gets
  // redirected); hand them epoch 1 via a throwaway view file.
  std::string view_path =
      "/tmp/lbs_bench_reshard_" + std::to_string(::getpid()) + ".view";
  service::write_view_file(view_path, v1);

  const int requests = kRequestsPerWorker * scale;
  double start = wall_seconds();
  std::vector<WorkerHandle> handles;
  handles.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    handles.push_back(spawn_worker(endpoints, requests, w, view_path));
  }

  // Let the load reach steady state, then join the 4th replica mid-run.
  // The workers learn the new epochs purely via WrongEpoch redirects.
  ::usleep(100 * 1000);
  service::admin::PushResult joined;
  auto base = service::admin::fetch_view(servers[1]->endpoint());
  if (base.has_value()) joined = service::admin::join_fleet(*base, joiner);
  bool join_ok = base.has_value() && joined.errors.empty() &&
                 joined.view.epoch == v1.epoch + 2;
  if (!join_ok) {
    std::cerr << "join failed: "
              << (joined.errors.empty() ? "no base view"
                                        : joined.errors.front())
              << '\n';
  }

  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(workers) * requests);
  for (auto& handle : handles) read_samples(handle.read_fd, samples);
  int worker_failures = 0;
  for (auto& handle : handles) {
    int status = 0;
    ::waitpid(handle.pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) ++worker_failures;
  }
  double elapsed = wall_seconds() - start;
  std::remove(view_path.c_str());

  const long long total_requests = static_cast<long long>(workers) * requests;
  if (samples.size() != static_cast<std::size_t>(total_requests)) {
    std::cerr << "sample loss: " << samples.size() << " of " << total_requests
              << " latencies arrived\n";
    ++worker_failures;
  }
  double rps = static_cast<double>(total_requests) / elapsed;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  if (!samples.empty()) {
    p50 = 1e3 * support::quantile(samples, 0.50);
    p95 = 1e3 * support::quantile(samples, 0.95);
    p99 = 1e3 * support::quantile(samples, 0.99);
  }

  // Bounded remap, on the real rings: every moved key landed on the
  // joiner, and at most kKeys/2 moved (expected ~kKeys/4; a naive mod-N
  // rehash would move ~3/4 and fail).
  support::HashRing old_ring = service::ring_of(v1);
  support::HashRing new_ring = service::ring_of(joined.view);
  int moved = 0;
  bool moved_to_joiner_only = true;
  std::uint64_t joiner_owned = 0;
  for (int key = 0; key < kKeys; ++key) {
    std::uint64_t hash = bench_key_hash(key);
    const std::string& old_home = old_ring.node_for(hash);
    const std::string& new_home = new_ring.node_for(hash);
    if (new_home == joiner.to_string()) ++joiner_owned;
    if (old_home != new_home) {
      ++moved;
      if (new_home != joiner.to_string()) moved_to_joiner_only = false;
    }
  }
  const int remap_budget = kKeys / 2;

  // Zero re-solves: the joiner answered its partition from the snapshot
  // handoff, and nothing fleet-wide was solved twice.
  service::Server::Counters joiner_counters = servers[3]->counters();
  std::uint64_t total_solved = 0;
  for (const auto& server : servers) total_solved += server->counters().solved;
  for (auto& server : servers) server->stop();

  support::Table table({"phase", "epoch", "requests", "req/s", "p50 ms",
                        "p95 ms", "p99 ms"});
  table.add_row({"3->4 reshard", std::to_string(joined.view.epoch),
                 std::to_string(total_requests),
                 support::format_double(rps, 0),
                 support::format_double(p50, 3), support::format_double(p95, 3),
                 support::format_double(p99, 3)});
  std::cout << '\n';
  table.print(std::cout);

  std::vector<bench::Comparison> comparisons;
  comparisons.push_back({"warm partition before churn", "yes",
                         warm_ok ? "yes" : "NO", warm_ok});
  comparisons.push_back({"two-phase join completed (epoch 3)", "yes",
                         join_ok ? "yes" : "NO", join_ok});
  comparisons.push_back({"worker failures across the epoch churn", "0",
                         std::to_string(worker_failures),
                         worker_failures == 0});
  comparisons.push_back(
      {"keys moved by the reshard",
       "<= " + std::to_string(remap_budget) + " of " + std::to_string(kKeys),
       std::to_string(moved), moved <= remap_budget});
  comparisons.push_back({"every moved key landed on the joiner", "yes",
                         moved_to_joiner_only ? "yes" : "NO",
                         moved_to_joiner_only});
  comparisons.push_back(
      {"joiner re-solves (snapshot handoff proof)", "0",
       std::to_string(joiner_counters.solved), joiner_counters.solved == 0});
  comparisons.push_back({"fleet-wide solves (each key exactly once)",
                         std::to_string(kKeys), std::to_string(total_solved),
                         total_solved == static_cast<std::uint64_t>(kKeys)});

  bench::JsonReport report("fleet_reshard");
  bench::BenchRecord record;
  record.name = "fleet_reshard";
  record.n = 4;  // fleet size after the join
  record.p = workers;
  record.wall_s = elapsed;
  record.items_per_s = rps;
  record.threads = workers;
  record.extra = {{"p50_ms", p50},
                  {"p95_ms", p95},
                  {"p99_ms", p99},
                  {"moved_keys", static_cast<double>(moved)},
                  {"joiner_owned_keys", static_cast<double>(joiner_owned)},
                  {"joiner_handoff_entries",
                   static_cast<double>(joiner_counters.handoff_entries)}};
  report.add(record);

  int rc = bench::print_comparisons(comparisons);
  if (!report.write(json_path)) rc = 1;
  return rc;
}

// Minimal extractor for the SLO file — finds `"key": <number>` in a flat
// JSON object (the repo carries no JSON parser, and the SLO file is ours).
std::optional<double> json_number_field(const std::string& text,
                                        const std::string& key) {
  std::string needle = "\"" + key + "\"";
  std::size_t at = text.find(needle);
  if (at == std::string::npos) return std::nullopt;
  at = text.find(':', at + needle.size());
  if (at == std::string::npos) return std::nullopt;
  return std::strtod(text.c_str() + at + 1, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--worker") {
    if (argc != 5 && argc != 6) {
      std::cerr << "worker usage: --worker <endpoints> <requests> <id> [view]\n";
      return 2;
    }
    return run_worker(argv[2], std::atoi(argv[3]), std::atoi(argv[4]),
                      argc == 6 ? argv[5] : "");
  }

  std::string json_path = bench::take_json_flag(argc, argv);
  std::string slo_path;
  int scale = 1;
  int max_replicas = 4;
  int workers_per_replica = 2;
  bool reshard = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--slo" && i + 1 < argc) {
      slo_path = argv[++i];
    } else if (arg == "--scale" && i + 1 < argc) {
      scale = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--replicas" && i + 1 < argc) {
      max_replicas = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--workers-per-replica" && i + 1 < argc) {
      workers_per_replica = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--reshard") {
      reshard = true;
    } else {
      std::cerr << "unknown flag: " << arg << '\n';
      return 2;
    }
  }

  if (reshard) {
    return run_reshard(workers_per_replica * 3, scale, json_path);
  }

  const int cores = support::default_parallelism();
  bench::print_header("Planner fleet: TCP replicas, ring routing, process load");
  std::cout << "cores: " << cores << " | keys: " << kKeys
            << " | requests/worker: " << kRequestsPerWorker * scale
            << " | workers/replica: " << workers_per_replica << '\n';

  std::optional<double> slo_p99_ms;
  if (!slo_path.empty()) {
    std::ifstream in(slo_path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    slo_p99_ms = json_number_field(buffer.str(), "warm_p99_ms");
    if (!slo_p99_ms) {
      std::cerr << "no warm_p99_ms in " << slo_path << '\n';
      return 2;
    }
  }

  bench::JsonReport report("fleet_throughput");
  std::vector<FleetMeasurement> measurements;
  for (int n = 1; n <= max_replicas; n *= 2) {
    measurements.push_back(measure_fleet(n, workers_per_replica, scale));
  }

  support::Table table({"replicas", "workers", "requests", "req/s", "p50 ms",
                        "p95 ms", "p99 ms"});
  for (const auto& m : measurements) {
    table.add_row({std::to_string(m.replicas), std::to_string(m.workers),
                   std::to_string(m.requests),
                   support::format_double(m.rps, 0),
                   support::format_double(m.p50_ms, 3),
                   support::format_double(m.p95_ms, 3),
                   support::format_double(m.p99_ms, 3)});

    bench::BenchRecord record;
    record.name = "fleet_warm_serving";
    record.n = m.replicas;  // the record key IS the fleet size
    record.p = m.workers;
    record.wall_s = m.elapsed_s;
    record.items_per_s = m.rps;
    record.threads = m.workers;  // deterministic per fleet size, so the
                                 // baseline's thread-match never skips
    record.extra = {{"p50_ms", m.p50_ms},
                    {"p95_ms", m.p95_ms},
                    {"p99_ms", m.p99_ms}};
    report.add(record);
  }
  std::cout << '\n';
  table.print(std::cout);

  // ---- gates --------------------------------------------------------------
  const auto& first = measurements.front();
  const auto& last = measurements.back();
  double scaling = last.rps / first.rps;
  double required = std::min(0.7 * last.replicas,
                             std::max(0.5, 0.3 * static_cast<double>(cores)));

  std::vector<bench::Comparison> comparisons;
  if (measurements.size() > 1) {
    comparisons.push_back(
        {"warm throughput scaling 1->" + std::to_string(last.replicas) +
             " replicas (load x" + std::to_string(last.replicas) + ")",
         ">= " + support::format_double(required, 2) + "x (" +
             std::to_string(cores) + " cores)",
         support::format_double(scaling, 2) + "x", scaling >= required});
  }
  int total_failures = 0;
  bool partitioned = true;
  for (const auto& m : measurements) {
    total_failures += m.worker_failures;
    partitioned = partitioned && m.partitioned;
    if (slo_p99_ms) {
      comparisons.push_back(
          {"p99 @ " + std::to_string(m.replicas) + " replica(s)",
           "<= " + support::format_double(*slo_p99_ms, 1) + " ms (SLO)",
           support::format_double(m.p99_ms, 3) + " ms",
           m.p99_ms <= *slo_p99_ms});
    }
  }
  comparisons.push_back({"worker failures (non-Ok responses / lost samples)",
                         "0", std::to_string(total_failures),
                         total_failures == 0});
  comparisons.push_back({"warm keys solved exactly once fleet-wide",
                         "yes", partitioned ? "yes" : "NO", partitioned});

  int rc = bench::print_comparisons(comparisons);
  if (!report.write(json_path)) rc = 1;
  return rc;
}
