// Shared helpers for the figure/table reproduction benches.
//
// Every bench prints (1) the regenerated data as an aligned table, (2) a
// "paper vs measured" comparison for the quantities the paper reports,
// and (3) optionally a CSV block for external plotting. Values never need
// to match the paper's absolute numbers (their testbed, our model), but
// the *shape* checks below make regressions loud.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "support/table.hpp"

namespace lbs::bench {

struct Comparison {
  std::string quantity;
  std::string paper;
  std::string measured;
  bool shape_holds = true;
};

inline void print_header(const std::string& title) {
  std::cout << "\n==================================================================\n"
            << title << '\n'
            << "==================================================================\n";
}

inline int print_comparisons(const std::vector<Comparison>& comparisons) {
  support::Table table({"quantity", "paper", "this reproduction", "shape"});
  int failures = 0;
  for (const auto& row : comparisons) {
    table.add_row({row.quantity, row.paper, row.measured,
                   row.shape_holds ? "ok" : "MISMATCH"});
    if (!row.shape_holds) ++failures;
  }
  std::cout << '\n';
  table.print(std::cout);
  if (failures > 0) {
    std::cout << failures << " shape check(s) FAILED\n";
  }
  return failures;
}

}  // namespace lbs::bench
