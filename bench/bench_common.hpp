// Shared helpers for the figure/table reproduction benches.
//
// Every bench prints (1) the regenerated data as an aligned table, (2) a
// "paper vs measured" comparison for the quantities the paper reports,
// and (3) optionally a CSV block for external plotting. Values never need
// to match the paper's absolute numbers (their testbed, our model), but
// the *shape* checks below make regressions loud.
//
// Machine-readable output: benches that track a performance trajectory
// accept `--json <file>` (see take_json_flag) and emit their measurements
// through JsonReport — one record per (name, n, p) with wall time and
// throughput — which CI compares against checked-in baselines.
#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace lbs::bench {

struct Comparison {
  std::string quantity;
  std::string paper;
  std::string measured;
  bool shape_holds = true;
};

inline void print_header(const std::string& title) {
  std::cout << "\n==================================================================\n"
            << title << '\n'
            << "==================================================================\n";
}

// One measurement: a named configuration, its scale, and its speed.
// `threads` is the thread count the measurement actually ran with (1 for a
// serial variant, the pool size for a parallel one) — recorded per record
// so regression checks never gate a 1-thread run against a 16-thread
// baseline number. 0 means "not thread-sensitive" (e.g. cache-hit latency).
struct BenchRecord {
  std::string name;
  long long n = 0;
  int p = 0;
  double wall_s = 0.0;
  double items_per_s = 0.0;
  int threads = 0;
  std::vector<std::pair<std::string, double>> extra;  // e.g. {"speedup", 3.4}
};

// Extracts `--json <path>` (or `--json=<path>`) from argv, compacting the
// array so downstream flag parsers (google-benchmark) never see it.
// Returns the empty string when the flag is absent.
inline std::string take_json_flag(int& argc, char** argv) {
  std::string path;
  int out = 1;
  for (int in = 1; in < argc; ++in) {
    std::string arg = argv[in];
    if (arg == "--json" && in + 1 < argc) {
      path = argv[++in];
    } else if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(7);
    } else {
      argv[out++] = argv[in];
    }
  }
  argc = out;
  return path;
}

// Collects BenchRecords and serializes them as
//   {"bench": ..., "host_parallelism": ..., "records": [...]}
// with full-precision doubles, so trajectories diff cleanly across runs.
// The header records what the host *offers*; each record carries the
// thread count it actually *used*, keeping the JSON self-consistent.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name) : bench_(std::move(bench_name)) {}

  void add(BenchRecord record) { records_.push_back(std::move(record)); }

  // No-op (returning true) when `path` is empty; prints to stderr and
  // returns false when the file cannot be written.
  bool write(const std::string& path) const {
    if (path.empty()) return true;
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write JSON report to " << path << '\n';
      return false;
    }
    out << "{\n  \"bench\": \"" << bench_ << "\",\n"
        << "  \"host_parallelism\": " << support::default_parallelism() << ",\n"
        << "  \"records\": [";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const auto& r = records_[i];
      out << (i == 0 ? "\n" : ",\n")
          << "    {\"name\": \"" << r.name << "\", \"n\": " << r.n
          << ", \"p\": " << r.p << ", \"wall_s\": " << format_json_double(r.wall_s)
          << ", \"items_per_s\": " << format_json_double(r.items_per_s)
          << ", \"threads\": " << r.threads;
      for (const auto& [key, value] : r.extra) {
        out << ", \"" << key << "\": " << format_json_double(value);
      }
      out << "}";
    }
    out << "\n  ]\n}\n";
    return static_cast<bool>(out);
  }

  [[nodiscard]] const std::vector<BenchRecord>& records() const { return records_; }

 private:
  static std::string format_json_double(double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    std::string text = buffer;
    // JSON has no inf/nan literals; clamp to null (regression checks skip).
    if (text.find("inf") != std::string::npos || text.find("nan") != std::string::npos) {
      return "null";
    }
    return text;
  }

  std::string bench_;
  std::vector<BenchRecord> records_;
};

inline int print_comparisons(const std::vector<Comparison>& comparisons) {
  support::Table table({"quantity", "paper", "this reproduction", "shape"});
  int failures = 0;
  for (const auto& row : comparisons) {
    table.add_row({row.quantity, row.paper, row.measured,
                   row.shape_holds ? "ok" : "MISMATCH"});
    if (!row.shape_holds) ++failures;
  }
  std::cout << '\n';
  table.print(std::cout);
  if (failures > 0) {
    std::cout << failures << " shape check(s) FAILED\n";
  }
  return failures;
}

}  // namespace lbs::bench
