// Section 5.2's heuristic-quality claim.
//
// Paper: the heuristic "has an error relative to the optimal solution of
// less than 6e-6" at n = 817,101. Reproduction: across a sweep of n we
// compare the heuristic's realized makespan T' against (a) the true
// integer optimum from Algorithm 2 where affordable, and (b) the rational
// LP lower bound everywhere; we also verify the Eq. 4 guarantee
//   T_opt <= T' <= T_opt + sum_j Tcomm(j,1) + max_i Tcomp(i,1)
// holds with a wide margin.

#include <iostream>

#include "bench_common.hpp"
#include "core/dp.hpp"
#include "core/heuristic.hpp"
#include "core/rounding.hpp"
#include "model/testbed.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

int main() {
  using namespace lbs;
  bench::print_header("Section 5.2 — heuristic error vs optimal");

  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));

  support::Table table({"n", "T_opt (Alg. 2)", "T' (heuristic)", "rel. error",
                        "Eq. 4 slack", "slack used"});
  std::cout << "csv,n,t_opt,t_heuristic,rel_error,slack\n";

  bool guarantee_holds = true;
  double first_error = -1.0;
  double full_scale_error = 0.0;

  for (long long n : {1000LL, 10000LL, 100000LL, model::kPaperRayCount}) {
    auto heuristic = core::lp_heuristic(platform, n);
    auto optimal = core::optimized_dp(platform, n);
    double error = (heuristic.makespan - optimal.cost) / optimal.cost;
    double slack_used = (heuristic.makespan - optimal.cost) / heuristic.guarantee_slack;
    if (heuristic.makespan < optimal.cost - 1e-9 ||
        heuristic.makespan > optimal.cost + heuristic.guarantee_slack + 1e-9) {
      guarantee_holds = false;
    }
    if (first_error < 0.0) first_error = error;
    if (n == model::kPaperRayCount) full_scale_error = error;

    table.add_row({support::format_count(n), support::format_double(optimal.cost, 4),
                   support::format_double(heuristic.makespan, 4),
                   support::format_double(error * 1e6, 2) + "e-6",
                   support::format_double(heuristic.guarantee_slack, 4),
                   support::format_percent(slack_used)});
    std::cout << "csv," << n << ',' << support::CsvWriter::cell(optimal.cost) << ','
              << support::CsvWriter::cell(heuristic.makespan) << ','
              << support::CsvWriter::cell(error) << ','
              << support::CsvWriter::cell(heuristic.guarantee_slack) << '\n';
  }
  table.print(std::cout);

  std::vector<bench::Comparison> comparisons{
      {"relative error at n = 817,101", "< 6e-6",
       support::format_double(full_scale_error * 1e6, 2) + "e-6",
       full_scale_error < 2e-5},
      {"Eq. 4 guarantee", "T_opt <= T' <= T_opt + slack",
       guarantee_holds ? "holds at every n" : "VIOLATED", guarantee_holds},
      {"error shrinks with n", "rounding noise amortizes",
       support::format_double(first_error * 1e6, 1) + "e-6 at n=1000 -> " +
           support::format_double(full_scale_error * 1e6, 2) + "e-6 at full scale",
       full_scale_error < first_error},
  };
  return bench::print_comparisons(comparisons);
}
