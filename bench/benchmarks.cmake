# Included from the top-level CMakeLists (not add_subdirectory) so that
# build/bench/ contains only the bench binaries and
# `for b in build/bench/*; do $b; done` runs the whole harness.
function(lbs_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR}/bench)
  target_link_libraries(${name} PRIVATE ${ARGN} lbs_warnings)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

lbs_add_bench(bench_table1_calibration lbs_core lbs_mq lbs_seismic)
lbs_add_bench(bench_fig1_stair lbs_gridsim)
lbs_add_bench(bench_fig2_uniform lbs_gridsim)
lbs_add_bench(bench_fig3_balanced lbs_gridsim)
lbs_add_bench(bench_fig4_ascending lbs_gridsim)
lbs_add_bench(bench_algorithms lbs_core benchmark::benchmark)
lbs_add_bench(bench_heuristic_quality lbs_core)
lbs_add_bench(bench_ordering lbs_core)
lbs_add_bench(bench_rounding_bound lbs_core)
lbs_add_bench(bench_root_selection lbs_core)
lbs_add_bench(bench_overlap lbs_gridsim)
lbs_add_bench(bench_installments lbs_core)
lbs_add_bench(bench_roundtrip lbs_core)
lbs_add_bench(bench_heterogeneity lbs_core)
lbs_add_bench(bench_bcast_trees lbs_des)
lbs_add_bench(bench_hier_scatter lbs_core)
lbs_add_bench(bench_degradation lbs_gridsim)
lbs_add_bench(bench_planner_scaling lbs_core)
