// Planner engine throughput: serial vs column-parallel DP, cost-table
// reuse, divide-and-conquer memory mode, and plan-cache hit latency.
//
// The paper's own experiment (n = 817,101 rays over 16 processors) is the
// scale this engine is built for. This bench sweeps n from 10^4 to 10^6
// on the Table 1 testbed and measures, for each n:
//   - optimized_dp, serial (threads = 1): the pre-PR baseline shape,
//   - optimized_dp, parallel (shared pool): the column decomposition,
//   - optimized_dp, divide-and-conquer memory mode (parallel),
//   - exact_dp serial vs parallel at the smallest n (O(p n^2) pins it),
//   - cost-table build + reuse, and plan-cache miss/hit latency (the miss
//     forces OptimizedDp so it really times a DP solve, not the Auto
//     closed-form probe),
//   - the affine fast path: an Algorithm::Auto plan on a genuinely affine
//     platform must route to the O(p) LP heuristic, carry the Eq. 4
//     optimality certificate, and finish in far under a second at n = 10^6.
// Every variant must reproduce the serial distribution *bit-identically* —
// that is a hard shape check, not a tolerance. Speedup is asserted (>= 3x
// at the largest n) only when the host actually offers >= 4 threads; the
// DP wall-time gate (< 5 s at n = 10^6) and the affine fast-path gate
// (< 1 s) apply whenever the sweep reaches 10^6.
//
// Output: the usual table plus `--json <file>` (bench_common.hpp) records
// for the BENCH_*.json trajectory and the CI perf-smoke gate. Each record
// carries the thread count it ran with so check_regression.py compares
// like with like across hosts.
//
// Flags: --json <file>, --max-n <N> (default 1,000,000; CI smoke uses
// 100,000 to stay inside the runner budget).

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/dp.hpp"
#include "core/plan_cache.hpp"
#include "core/planner.hpp"
#include "model/cost_table.hpp"
#include "model/testbed.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace lbs;

double time_once(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double>(elapsed).count();
}

long long parse_max_n(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--max-n") return std::atoll(argv[i + 1]);
  }
  return 1'000'000;
}

struct Measurement {
  double seconds = 0.0;
  core::DpResult result;
};

Measurement run_dp(bool optimized, const model::Platform& platform, long long n,
                   const core::DpOptions& options) {
  Measurement m;
  m.seconds = time_once([&] {
    m.result = optimized ? core::optimized_dp(platform, n, options)
                         : core::exact_dp(platform, n, options);
  });
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = bench::take_json_flag(argc, argv);
  const long long max_n = parse_max_n(argc, argv);
  const int threads = support::default_parallelism();

  bench::print_header("Planner engine scaling — parallel DP, cost tables, plan cache");
  std::cout << "host parallelism: " << threads << " thread(s), max n: " << max_n
            << "\n";

  auto grid = model::paper_testbed();
  auto platform = make_platform(grid, model::paper_root(grid));
  const int p = platform.size();

  bench::JsonReport report("planner_scaling");
  std::vector<bench::Comparison> comparisons;
  support::Table table({"case", "n", "serial", "parallel", "speedup", "identical"});

  core::DpOptions serial_opts;
  serial_opts.threads = 1;
  core::DpOptions parallel_opts;  // defaults: shared pool, Auto memory

  double largest_speedup = 0.0;
  double largest_parallel_s = 0.0;
  long long largest_n = 0;
  for (long long n : {10'000LL, 100'000LL, 1'000'000LL}) {
    if (n > max_n) break;
    auto serial = run_dp(true, platform, n, serial_opts);
    auto parallel = run_dp(true, platform, n, parallel_opts);
    bool identical = serial.result.distribution.counts == parallel.result.distribution.counts;
    double speedup = serial.seconds / parallel.seconds;
    if (n >= largest_n) {
      largest_n = n;
      largest_speedup = speedup;
      largest_parallel_s = parallel.seconds;
    }
    table.add_row({"optimized_dp", std::to_string(n),
                   support::format_seconds(serial.seconds),
                   support::format_seconds(parallel.seconds),
                   support::format_double(speedup, 2) + "x", identical ? "yes" : "NO"});
    report.add({"optimized_dp_serial", n, p, serial.seconds,
                static_cast<double>(n) / serial.seconds, serial.result.threads_used, {}});
    report.add({"optimized_dp_parallel", n, p, parallel.seconds,
                static_cast<double>(n) / parallel.seconds, parallel.result.threads_used,
                {{"speedup", speedup}}});
    comparisons.push_back({"parallel == serial distribution (n=" + std::to_string(n) + ")",
                           "bit-identical", identical ? "bit-identical" : "DIVERGED",
                           identical});

    // Divide-and-conquer memory mode: same distribution, rolling columns.
    core::DpOptions dc_opts = parallel_opts;
    dc_opts.memory = core::DpMemory::DivideConquer;
    auto dc = run_dp(true, platform, n, dc_opts);
    bool dc_identical = dc.result.distribution.counts == serial.result.distribution.counts;
    table.add_row({"optimized_dp (divide&conquer)", std::to_string(n), "-",
                   support::format_seconds(dc.seconds),
                   support::format_double(serial.seconds / dc.seconds, 2) + "x",
                   dc_identical ? "yes" : "NO"});
    report.add({"optimized_dp_dc", n, p, dc.seconds,
                static_cast<double>(n) / dc.seconds, dc.result.threads_used, {}});
    comparisons.push_back({"divide&conquer distribution (n=" + std::to_string(n) + ")",
                           "bit-identical", dc_identical ? "bit-identical" : "DIVERGED",
                           dc_identical});
  }

  // Algorithm 1 is O(p n^2): compare serial vs parallel at a small n only.
  {
    long long n = std::min<long long>(10'000, max_n);
    auto serial = run_dp(false, platform, n, serial_opts);
    auto parallel = run_dp(false, platform, n, parallel_opts);
    bool identical = serial.result.distribution.counts == parallel.result.distribution.counts;
    table.add_row({"exact_dp", std::to_string(n),
                   support::format_seconds(serial.seconds),
                   support::format_seconds(parallel.seconds),
                   support::format_double(serial.seconds / parallel.seconds, 2) + "x",
                   identical ? "yes" : "NO"});
    report.add({"exact_dp_serial", n, p, serial.seconds,
                static_cast<double>(n) / serial.seconds, serial.result.threads_used, {}});
    report.add({"exact_dp_parallel", n, p, parallel.seconds,
                static_cast<double>(n) / parallel.seconds, parallel.result.threads_used,
                {{"speedup", serial.seconds / parallel.seconds}}});
    comparisons.push_back({"exact_dp parallel == serial (n=" + std::to_string(n) + ")",
                           "bit-identical", identical ? "bit-identical" : "DIVERGED",
                           identical});
  }

  // Cost-table reuse: amortize the Tcomm/Tcomp evaluation across plans.
  {
    long long n = std::min<long long>(100'000, max_n);
    std::optional<model::CostTable> cost_table;
    double build_s = time_once([&] { cost_table.emplace(platform, n); });
    core::DpOptions table_opts = parallel_opts;
    table_opts.cost_table = &*cost_table;
    auto with_table = run_dp(true, platform, n, table_opts);
    auto without_table = run_dp(true, platform, n, parallel_opts);
    bool identical =
        with_table.result.distribution.counts == without_table.result.distribution.counts;
    table.add_row({"optimized_dp (cost table)", std::to_string(n),
                   support::format_seconds(without_table.seconds),
                   support::format_seconds(with_table.seconds),
                   support::format_double(without_table.seconds / with_table.seconds, 2) + "x",
                   identical ? "yes" : "NO"});
    report.add({"cost_table_build", n, p, build_s,
                static_cast<double>(n) / build_s, 1, {}});
    report.add({"optimized_dp_cost_table", n, p, with_table.seconds,
                static_cast<double>(n) / with_table.seconds,
                with_table.result.threads_used, {}});
    comparisons.push_back({"cost-table distribution (n=" + std::to_string(n) + ")",
                           "bit-identical", identical ? "bit-identical" : "DIVERGED",
                           identical});
  }

  // Plan cache: cold miss vs steady-state hit. The miss explicitly
  // requests OptimizedDp — with Algorithm::Auto the paper testbed's affine
  // costs resolve to the O(p) fast path, and "cold" would time a
  // closed-form probe (~microseconds) instead of the DP solve the cache
  // exists to amortize.
  {
    long long n = std::min<long long>(100'000, max_n);
    core::PlanCache cache(16);
    core::ScatterPlan cold_plan;
    double cold_s = time_once(
        [&] { cold_plan = cache.plan(platform, n, core::Algorithm::OptimizedDp); });
    constexpr int kHits = 1000;
    double hit_total = time_once([&] {
      for (int i = 0; i < kHits; ++i) cache.plan(platform, n, core::Algorithm::OptimizedDp);
    });
    double hit_s = hit_total / kHits;
    auto stats = cache.stats();
    bool all_hits = stats.hits == kHits && stats.misses == 1;
    bool cold_was_dp = cold_plan.algorithm_used == core::Algorithm::OptimizedDp &&
                       cold_plan.dp_cells_evaluated > 0;
    table.add_row({"plan_cache (cold vs hit)", std::to_string(n),
                   support::format_seconds(cold_s), support::format_seconds(hit_s),
                   support::format_double(cold_s / hit_s, 0) + "x",
                   all_hits ? "yes" : "NO"});
    report.add({"plan_cache_cold", n, p, cold_s, static_cast<double>(n) / cold_s,
                cold_plan.dp_threads, {}});
    report.add({"plan_cache_hit", n, p, hit_s, static_cast<double>(n) / hit_s, 0, {}});
    comparisons.push_back({"plan cache cold miss", "runs the DP it claims to time",
                           cold_was_dp ? "optimized_dp solved" : "NOT A DP SOLVE",
                           cold_was_dp});
    comparisons.push_back({"plan cache steady state", "every repeat plan hits",
                           all_hits ? "1000/1000 hits" : "MISSES", all_hits});
    comparisons.push_back({"plan cache hit latency", "O(1), far below one DP",
                           support::format_seconds(hit_s),
                           hit_s * 50.0 < cold_s || cold_s < 1e-4});
  }

  // Tracing overhead: the same DP solve with and without a live tracer +
  // metrics sink. Per solve the obs layer adds a handful of ring-buffer
  // writes against ~10^5 DP cells, so the pair must stay within 5% — the
  // CI gate (check_regression.py --pair) enforces exactly that on these
  // two records. Best-of-k timing keeps scheduler noise out of the ratio.
  {
    long long n = std::min<long long>(100'000, max_n);
    constexpr int kReps = 7;
    core::PlannerOptions off_opts;
    off_opts.algorithm = core::Algorithm::OptimizedDp;
    off_opts.dp = parallel_opts;
    obs::Tracer tracer;
    obs::Metrics metrics;
    core::PlannerOptions on_opts = off_opts;
    on_opts.tracer = &tracer;
    on_opts.metrics = &metrics;

    double off_s = std::numeric_limits<double>::infinity();
    double on_s = std::numeric_limits<double>::infinity();
    core::ScatterPlan off_plan, on_plan;
    for (int rep = 0; rep < kReps; ++rep) {
      off_s = std::min(off_s, time_once([&] {
        off_plan = core::plan_scatter(platform, n, off_opts);
      }));
      on_s = std::min(on_s, time_once([&] {
        on_plan = core::plan_scatter(platform, n, on_opts);
      }));
    }
    bool identical = off_plan.distribution.counts == on_plan.distribution.counts;
    bool traced = tracer.collect().events.size() >= static_cast<std::size_t>(kReps);
    double overhead = on_s / off_s - 1.0;
    table.add_row({"optimized_dp (tracer on)", std::to_string(n),
                   support::format_seconds(off_s), support::format_seconds(on_s),
                   support::format_double(overhead * 100.0, 2) + "%",
                   identical && traced ? "yes" : "NO"});
    report.add({"plan_tracer_off", n, p, off_s, static_cast<double>(n) / off_s,
                off_plan.dp_threads, {}});
    report.add({"plan_tracer_on", n, p, on_s, static_cast<double>(n) / on_s,
                on_plan.dp_threads, {{"overhead", overhead}}});
    comparisons.push_back({"traced distribution (n=" + std::to_string(n) + ")",
                           "bit-identical", identical ? "bit-identical" : "DIVERGED",
                           identical});
    comparisons.push_back({"tracer actually recorded", ">= 1 event per solve",
                           traced ? "yes" : "NO", traced});
  }

  // Affine fast path: with nonzero per-message latencies no closed form
  // applies, but Algorithm::Auto must still route to the O(p) LP heuristic
  // — never a DP — and attach the Eq. 4 optimality certificate. At the
  // paper's scale this is the "million items in (milli)seconds" claim.
  {
    long long n = std::min<long long>(1'000'000, max_n);
    model::Platform affine;
    for (int i = 0; i < p; ++i) {
      model::Processor proc;
      proc.label = "A" + std::to_string(i);
      bool is_root = i == p - 1;
      proc.comm = is_root ? model::Cost::zero()
                          : model::Cost::affine(1e-4 + 1e-6 * i, 2e-8 * (i + 1));
      proc.comp = model::Cost::affine(5e-4, 1e-7 * (1.0 + 0.1 * i));
      affine.processors.push_back(proc);
    }
    core::PlannerOptions auto_opts;  // Algorithm::Auto
    core::ScatterPlan plan;
    double fast_s = time_once([&] { plan = core::plan_scatter(affine, n, auto_opts); });
    bool routed_fast = plan.algorithm_used == core::Algorithm::LpHeuristic;
    bool bounded = plan.has_optimality_bound && plan.optimality_gap >= 0.0;
    table.add_row({"affine fast path (Auto)", std::to_string(n), "-",
                   support::format_seconds(fast_s), "-",
                   routed_fast && bounded ? "yes" : "NO"});
    report.add({"affine_fastpath", n, p, fast_s, static_cast<double>(n) / fast_s, 1,
                {{"optimality_gap", plan.optimality_gap}}});
    comparisons.push_back({"Auto on affine costs", "LP heuristic, never DP",
                           core::to_string(plan.algorithm_used), routed_fast});
    comparisons.push_back({"Eq. 4 certificate attached",
                           "bound present, gap >= 0",
                           bounded ? "gap = " + support::format_seconds(plan.optimality_gap)
                                   : "MISSING",
                           bounded});
    if (n >= 1'000'000) {
      comparisons.push_back({"affine fast path at n=" + std::to_string(n),
                             "< 1 s", support::format_seconds(fast_s),
                             fast_s < 1.0});
    }
  }

  std::cout << '\n';
  table.print(std::cout);

  // The headline acceptance shapes at the paper's scale: the optimized DP
  // finishes a 10^6-item plan in under 5 s, and parallel speedup reaches
  // >= 3x — the latter only meaningful when the host offers >= 4 threads.
  if (largest_n >= 1'000'000) {
    comparisons.push_back({"optimized_dp wall time at n=" + std::to_string(largest_n),
                           "< 5 s", support::format_seconds(largest_parallel_s),
                           largest_parallel_s < 5.0});
  }
  if (threads >= 4 && largest_n >= 1'000'000) {
    comparisons.push_back({"parallel speedup at n=" + std::to_string(largest_n),
                           ">= 3x on >= 4 threads",
                           support::format_double(largest_speedup, 2) + "x",
                           largest_speedup >= 3.0});
  } else {
    std::cout << "(speedup gate skipped: " << threads
              << " thread(s) available, largest n = " << largest_n << ")\n";
  }

  int failures = bench::print_comparisons(comparisons);
  if (!report.write(json_path)) ++failures;
  return failures;
}
