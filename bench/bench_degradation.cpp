// Degradation-aware scatter: what faults cost, and what planning around
// them buys back.
//
// Three regimes on a 64-worker synthetic grid (virtual-time replay of the
// fault-tolerant scatter protocol, so the scale is free):
//   1. clean      — balanced plan, perfect network (baseline);
//   2. degraded   — a quarter of the links slow down 3x and keep degrading;
//      we compare the *stale* balanced plan against one re-planned on the
//      degradation-aware platform (mq::degraded_platform);
//   3. crash      — the largest-share worker dies mid-transfer and its
//      items are re-routed; uniform re-planning vs the load-balanced
//      re-planner (core::make_ft_replanner).
//
// Shape checks: degradation-aware planning beats the stale plan on the
// degraded network; every crash recovery still delivers all items; the
// balanced re-planner is no worse than the uniform one.

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/distribution.hpp"
#include "core/planner.hpp"
#include "core/recovery.hpp"
#include "gridsim/faultsim.hpp"
#include "model/platform.hpp"
#include "mq/platform_link.hpp"
#include "support/table.hpp"

namespace {

lbs::model::Platform synthetic_grid(int workers) {
  using lbs::model::Cost;
  lbs::model::Platform platform;
  const double betas[] = {0.5, 1.0, 2.0, 4.0};  // heterogeneous link speeds
  const double alphas[] = {2.0, 3.0, 5.0, 8.0};
  for (int i = 0; i < workers; ++i) {
    lbs::model::Processor worker;
    worker.label = "w" + std::to_string(i);
    worker.comm = Cost::linear(betas[i % 4] * 1e-3);
    worker.comp = Cost::linear(alphas[(i / 4) % 4] * 1e-3);
    platform.processors.push_back(worker);
  }
  lbs::model::Processor root;
  root.label = "root";
  root.comm = Cost::zero();
  root.comp = Cost::linear(2e-3);
  platform.processors.push_back(root);
  return platform;
}

int largest_share(const lbs::core::Distribution& distribution, int root) {
  int argmax = 0;
  for (int i = 0; i < root; ++i) {
    if (distribution.counts[static_cast<std::size_t>(i)] >
        distribution.counts[static_cast<std::size_t>(argmax)]) {
      argmax = i;
    }
  }
  return argmax;
}

}  // namespace

int main() {
  using namespace lbs;
  bench::print_header(
      "Fault degradation — clean vs degraded vs crash+recovery (p = 65)");

  constexpr int kWorkers = 64;
  constexpr long long kItems = 200000;
  auto platform = synthetic_grid(kWorkers);
  const int root = platform.size() - 1;

  auto balanced = core::plan_scatter(platform, kItems);
  auto clean = gridsim::simulate_scatter_ft(platform, balanced.distribution, {});

  // Regime 2: every fourth link to the root slows 3x and keeps degrading.
  mq::FaultPlan degradation;
  degradation.seed = 31;
  for (int i = 0; i < kWorkers; i += 4) {
    mq::FaultPlan::LinkFault slow;
    slow.from = root;
    slow.to = i;
    slow.delay_factor = 3.0;
    slow.degradation_rate = 0.002;  // +0.2% of the base factor per second
    degradation.link_faults.push_back(slow);
  }
  auto stale =
      gridsim::simulate_scatter_ft(platform, balanced.distribution, degradation);
  auto aware_platform = mq::degraded_platform(platform, degradation, 0.0);
  auto aware_plan = core::plan_scatter(aware_platform, kItems);
  auto aware =
      gridsim::simulate_scatter_ft(platform, aware_plan.distribution, degradation);

  // Regime 3: the largest-share worker crashes halfway through its window.
  int victim = largest_share(balanced.distribution, root);
  auto windows = core::comm_windows(platform, balanced.distribution);
  mq::FaultPlan crash;
  crash.seed = 31;
  crash.crashes.push_back(
      {victim, 0.5 * (windows.start[static_cast<std::size_t>(victim)] +
                      windows.end[static_cast<std::size_t>(victim)])});
  auto crashed_uniform =
      gridsim::simulate_scatter_ft(platform, balanced.distribution, crash);
  gridsim::FtSimOptions balanced_recovery;
  balanced_recovery.replan = core::make_ft_replanner(platform);
  auto crashed_balanced = gridsim::simulate_scatter_ft(
      platform, balanced.distribution, crash, balanced_recovery);

  support::Table table({"scenario", "makespan (s)", "vs clean", "delivered",
                        "re-routed", "deaths"});
  auto row = [&](const std::string& name, const gridsim::FtSimResult& result) {
    table.add_row({name, support::format_double(result.report.elapsed, 1),
                   support::format_percent(
                       result.report.elapsed / clean.report.elapsed - 1.0),
                   support::format_count(result.report.total_delivered()),
                   support::format_count(result.report.rerouted_items),
                   std::to_string(result.report.deaths.size())});
  };
  row("clean, balanced plan", clean);
  row("degraded links, stale plan", stale);
  row("degraded links, aware plan", aware);
  row("crash, uniform re-plan", crashed_uniform);
  row("crash, balanced re-plan", crashed_balanced);
  table.print(std::cout);

  std::cout << "\ncsv,scenario,makespan_s,delivered,rerouted,deaths\n";
  auto csv = [&](const std::string& name, const gridsim::FtSimResult& result) {
    std::cout << "csv," << name << ',' << result.report.elapsed << ','
              << result.report.total_delivered() << ','
              << result.report.rerouted_items << ','
              << result.report.deaths.size() << '\n';
  };
  csv("clean_balanced", clean);
  csv("degraded_stale", stale);
  csv("degraded_aware", aware);
  csv("crash_uniform", crashed_uniform);
  csv("crash_balanced", crashed_balanced);

  std::vector<bench::Comparison> comparisons{
      {"aware plan beats stale plan on degraded links",
       "re-planning pays off",
       support::format_double(aware.report.elapsed, 1) + " s vs " +
           support::format_double(stale.report.elapsed, 1) + " s",
       aware.report.elapsed < stale.report.elapsed},
      {"crash recovery conserves items", "all items delivered",
       support::format_count(crashed_uniform.report.total_delivered()) + " + " +
           support::format_count(crashed_balanced.report.total_delivered()),
       crashed_uniform.report.total_delivered() == kItems &&
           crashed_balanced.report.total_delivered() == kItems},
      // Note: neither re-planner dominates — plan_scatter optimizes the
      // remainder as a *fresh* scatter, not the incremental residual
      // problem — so the robust claim is only that recovery costs time.
      {"crash recovery overhead vs clean", "> 0 (re-routing costs time)",
       support::format_double(crashed_uniform.report.elapsed, 1) + " s / " +
           support::format_double(crashed_balanced.report.elapsed, 1) +
           " s vs " + support::format_double(clean.report.elapsed, 1) + " s",
       crashed_uniform.report.elapsed > clean.report.elapsed &&
           crashed_balanced.report.elapsed > clean.report.elapsed},
      {"degradation-aware overhead vs clean", "> 0 (slow links cost time)",
       support::format_percent(aware.report.elapsed / clean.report.elapsed - 1.0),
       aware.report.elapsed >= clean.report.elapsed},
  };
  return bench::print_comparisons(comparisons);
}
