#!/usr/bin/env python3
"""Compare a bench JSON report against a checked-in baseline.

Usage: check_regression.py CURRENT BASELINE [--factor 3.0]
                           [--pair OFF:ON [--pair-delta 0.05]]

Records are matched by (name, n). A record regresses when its throughput,
multiplied by the allowed factor, still falls short of the baseline:

    current.items_per_s * factor < baseline.items_per_s

A missing record is also a failure (a silently dropped measurement would
otherwise read as a pass). Extra records in CURRENT are reported but
allowed, so new measurements can land before their baseline does. The
factor is deliberately loose (3x by default): the gate exists to catch
accidental algorithmic regressions -- an O(n^2) slip, a lost
parallel path -- not scheduler noise on shared CI runners.

Like with like: each record carries the thread count it actually ran
with (`threads`; 0 = not thread-sensitive). When current and baseline
disagree on a record's nonzero thread count -- a 1-core runner replaying
a 16-thread baseline -- the throughput gate is skipped for that record
(reported as "skip"), because the comparison would measure the runner,
not the code. Presence is still enforced: the record must exist.

Latency percentiles: when BOTH records carry a percentile field (p50_ms /
p95_ms / p99_ms), it is gated the other way around -- lower is better:

    current.p99_ms <= baseline.p99_ms * latency-factor

with --latency-factor defaulting to --factor. Percentile fields only in
the baseline are a failure (the measurement was silently dropped);
fields only in CURRENT are allowed (a baseline refresh picks them up).
The thread-mismatch skip applies to percentiles too.

--pair OFF:ON compares two record names measured in the SAME run (so
runner speed cancels out) and fails when the ON variant's throughput
falls more than --pair-delta (default 5%) below OFF at any matching n.
This is the tracing-overhead gate: plan_tracer_on must stay within 5%
of plan_tracer_off. A pair with no matching n is a failure.

Exit status: 0 when every baseline record is present and within the
factor and every pair holds, 1 otherwise.
"""

import argparse
import json
import sys

PERCENTILE_FIELDS = ("p50_ms", "p95_ms", "p99_ms")


def load_records(path):
    with open(path) as fh:
        report = json.load(fh)
    records = {}
    for record in report.get("records", []):
        records[(record["name"], record["n"])] = record
    return records


def check_percentiles(name, n, base_record, cur_record, factor, width):
    """Latency tails gate (lower is better). Returns the failure count."""
    failures = 0
    for field in PERCENTILE_FIELDS:
        base_value = base_record.get(field)
        if base_value is None:
            continue  # baseline predates percentiles for this record
        label = f"{name}.{field}"
        cur_value = cur_record.get(field)
        if cur_value is None:
            print(f"{label:<{width}} {n:>10} {base_value:>14.3g} "
                  f"{'MISSING':>14} {'-':>7}  FAIL")
            failures += 1
            continue
        ratio = cur_value / base_value if base_value > 0 else float("inf")
        ok = cur_value <= base_value * factor
        print(f"{label:<{width}} {n:>10} {base_value:>14.3g} "
              f"{cur_value:>14.3g} {ratio:>6.2f}x  "
              f"{'ok' if ok else 'FAIL'} (ms, lower is better)")
        if not ok:
            failures += 1
    return failures


def check_pairs(current, pairs, delta):
    """Same-run A/B guard: ON throughput within `delta` of OFF per n."""
    failures = 0
    for spec in pairs:
        try:
            off_name, on_name = spec.split(":")
        except ValueError:
            print(f"bad --pair spec {spec!r} (want OFF:ON)", file=sys.stderr)
            failures += 1
            continue
        matched = False
        for (name, n), record in sorted(current.items()):
            if name != off_name or (on_name, n) not in current:
                continue
            matched = True
            off_rate = record["items_per_s"]
            on_rate = current[(on_name, n)]["items_per_s"]
            overhead = off_rate / on_rate - 1.0 if on_rate > 0 else float("inf")
            ok = on_rate >= off_rate * (1.0 - delta)
            print(f"pair {off_name} vs {on_name} (n={n}): "
                  f"overhead {overhead * 100.0:+.2f}% "
                  f"(allowed {delta * 100.0:.0f}%)  {'ok' if ok else 'FAIL'}")
            if not ok:
                failures += 1
        if not matched:
            print(f"pair {off_name}:{on_name}: no matching records",
                  file=sys.stderr)
            failures += 1
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly measured bench JSON")
    parser.add_argument("baseline", help="checked-in baseline JSON")
    parser.add_argument("--factor", type=float, default=3.0,
                        help="allowed slowdown factor (default: 3.0)")
    parser.add_argument("--latency-factor", type=float, default=None,
                        help="allowed growth factor for p50/p95/p99 "
                             "latency fields (default: --factor)")
    parser.add_argument("--pair", action="append", default=[],
                        metavar="OFF:ON",
                        help="record-name pair measured in the same run; "
                             "ON must stay within --pair-delta of OFF")
    parser.add_argument("--pair-delta", type=float, default=0.05,
                        help="allowed relative slowdown within a --pair "
                             "(default: 0.05)")
    args = parser.parse_args()

    current = load_records(args.current)
    baseline = load_records(args.baseline)
    latency_factor = (args.latency_factor if args.latency_factor is not None
                      else args.factor)

    failures = 0
    width = max((len(name) for name, _ in baseline), default=4) + 9
    print(f"{'record':<{width}} {'n':>10} {'baseline/s':>14} "
          f"{'current/s':>14} {'ratio':>7}  verdict")
    for key in sorted(baseline):
        name, n = key
        base_rate = baseline[key]["items_per_s"]
        if key not in current:
            print(f"{name:<{width}} {n:>10} {base_rate:>14.3g} "
                  f"{'MISSING':>14} {'-':>7}  FAIL")
            failures += 1
            continue
        cur_rate = current[key]["items_per_s"]
        ratio = cur_rate / base_rate if base_rate > 0 else float("inf")
        base_threads = baseline[key].get("threads", 0)
        cur_threads = current[key].get("threads", 0)
        if base_threads and cur_threads and base_threads != cur_threads:
            print(f"{name:<{width}} {n:>10} {base_rate:>14.3g} "
                  f"{cur_rate:>14.3g} {ratio:>6.2f}x  "
                  f"skip (threads {cur_threads} vs baseline {base_threads})")
            continue
        ok = cur_rate * args.factor >= base_rate
        print(f"{name:<{width}} {n:>10} {base_rate:>14.3g} "
              f"{cur_rate:>14.3g} {ratio:>6.2f}x  "
              f"{'ok' if ok else 'FAIL'}")
        if not ok:
            failures += 1
        failures += check_percentiles(name, n, baseline[key], current[key],
                                      latency_factor, width)

    for key in sorted(set(current) - set(baseline)):
        print(f"{key[0]:<{width}} {key[1]:>10} {'(no baseline)':>14} "
              f"{current[key]['items_per_s']:>14.3g} {'-':>7}  new")

    if args.pair:
        print()
        failures += check_pairs(current, args.pair, args.pair_delta)

    if failures:
        print(f"\n{failures} record(s) regressed beyond "
              f"{args.factor}x or went missing", file=sys.stderr)
        return 1
    print(f"\nall {len(baseline)} baseline record(s) within "
          f"{args.factor}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
