#!/usr/bin/env python3
"""Compare a bench JSON report against a checked-in baseline.

Usage: check_regression.py CURRENT BASELINE [--factor 3.0]

Records are matched by (name, n). A record regresses when its throughput,
multiplied by the allowed factor, still falls short of the baseline:

    current.items_per_s * factor < baseline.items_per_s

A missing record is also a failure (a silently dropped measurement would
otherwise read as a pass). Extra records in CURRENT are reported but
allowed, so new measurements can land before their baseline does. The
factor is deliberately loose (3x by default): the gate exists to catch
accidental algorithmic regressions -- an O(n^2) slip, a lost
parallel path -- not scheduler noise on shared CI runners.

Exit status: 0 when every baseline record is present and within the
factor, 1 otherwise.
"""

import argparse
import json
import sys


def load_records(path):
    with open(path) as fh:
        report = json.load(fh)
    records = {}
    for record in report.get("records", []):
        records[(record["name"], record["n"])] = record
    return records


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly measured bench JSON")
    parser.add_argument("baseline", help="checked-in baseline JSON")
    parser.add_argument("--factor", type=float, default=3.0,
                        help="allowed slowdown factor (default: 3.0)")
    args = parser.parse_args()

    current = load_records(args.current)
    baseline = load_records(args.baseline)

    failures = 0
    width = max((len(name) for name, _ in baseline), default=4) + 2
    print(f"{'record':<{width}} {'n':>10} {'baseline/s':>14} "
          f"{'current/s':>14} {'ratio':>7}  verdict")
    for key in sorted(baseline):
        name, n = key
        base_rate = baseline[key]["items_per_s"]
        if key not in current:
            print(f"{name:<{width}} {n:>10} {base_rate:>14.3g} "
                  f"{'MISSING':>14} {'-':>7}  FAIL")
            failures += 1
            continue
        cur_rate = current[key]["items_per_s"]
        ratio = cur_rate / base_rate if base_rate > 0 else float("inf")
        ok = cur_rate * args.factor >= base_rate
        print(f"{name:<{width}} {n:>10} {base_rate:>14.3g} "
              f"{cur_rate:>14.3g} {ratio:>6.2f}x  "
              f"{'ok' if ok else 'FAIL'}")
        if not ok:
            failures += 1

    for key in sorted(set(current) - set(baseline)):
        print(f"{key[0]:<{width}} {key[1]:>10} {'(no baseline)':>14} "
              f"{current[key]['items_per_s']:>14.3g} {'-':>7}  new")

    if failures:
        print(f"\n{failures} record(s) regressed beyond "
              f"{args.factor}x or went missing", file=sys.stderr)
        return 1
    print(f"\nall {len(baseline)} baseline record(s) within "
          f"{args.factor}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
