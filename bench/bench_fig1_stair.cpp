// Figure 1 reproduction: "A scatter communication followed by a
// computation phase" — the stair effect of the single-port root.
//
// The paper's Figure 1 is a schematic over 4 processors (P4 = root):
// receives serialize at the root, so each processor idles until every
// previous one has been served, then computes. We regenerate it both on
// the 4-processor didactic platform and on the real Table 1 testbed, as
// ASCII Gantt charts, and verify the defining properties: receive windows
// are contiguous/ordered and idle time strictly grows with position.

#include <iostream>

#include "bench_common.hpp"
#include "core/ordering.hpp"
#include "core/planner.hpp"
#include "gridsim/gridsim.hpp"
#include "model/testbed.hpp"
#include "support/gantt.hpp"

int main() {
  using namespace lbs;
  bench::print_header("Figure 1 — the stair effect of a scatter + compute phase");

  // The didactic 4-processor platform: equal shares, visible stair.
  model::Platform didactic;
  for (int i = 0; i < 3; ++i) {
    model::Processor p;
    p.label = "P" + std::to_string(i + 1);
    p.comm = model::Cost::linear(1.0);
    p.comp = model::Cost::linear(4.0 - i);  // heterogeneous compute
    didactic.processors.push_back(p);
  }
  model::Processor root;
  root.label = "P4 (root)";
  root.comm = model::Cost::zero();
  root.comp = model::Cost::linear(2.5);
  didactic.processors.push_back(root);

  auto uniform = core::uniform_distribution(40, didactic.size());
  auto sim = gridsim::simulate_scatter(didactic, uniform);

  support::GanttChart chart(64);
  for (auto& row : sim.timeline.gantt_rows()) chart.add_row(std::move(row));
  std::cout << "\n4-processor schematic (uniform scatter of 40 items):\n"
            << chart.to_string();

  // The real testbed, uniform scatter, zoomed to a readable item count.
  auto grid = model::paper_testbed();
  auto platform = core::ordered_platform(grid, model::paper_root(grid),
                                         core::OrderingPolicy::DescendingBandwidth);
  auto testbed_uniform = core::uniform_distribution(50000, platform.size());
  auto testbed_sim = gridsim::simulate_scatter(platform, testbed_uniform);
  support::GanttChart testbed_chart(64);
  for (auto& row : testbed_sim.timeline.gantt_rows()) {
    testbed_chart.add_row(std::move(row));
  }
  std::cout << "\nTable 1 testbed (uniform scatter of 50,000 items):\n"
            << testbed_chart.to_string();

  // Shape checks: the stair.
  bool windows_contiguous = true;
  bool idle_grows = true;
  double previous_end = 0.0;
  double previous_idle = -1.0;
  for (const auto& trace : sim.timeline.traces) {
    if (trace.recv_start != previous_end) windows_contiguous = false;
    if (trace.items > 0 && trace.comm_time() > 0.0) {
      if (trace.stair_idle() <= previous_idle) idle_grows = false;
      previous_idle = trace.stair_idle();
    }
    previous_end = trace.recv_end;
  }

  std::vector<bench::Comparison> comparisons{
      {"receive windows serialize at the root", "black boxes stack (stair)",
       windows_contiguous ? "contiguous, in turn" : "overlapping",
       windows_contiguous},
      {"idle before receive grows with position", "stair outline",
       idle_grows ? "strictly growing" : "not monotone", idle_grows},
      {"root computes only (no self-send)", "P4 has no receive box",
       sim.timeline.traces.back().comm_time() == 0.0
           ? "zero comm time"
           : "unexpected comm", sim.timeline.traces.back().comm_time() == 0.0},
  };
  return bench::print_comparisons(comparisons);
}
