// Section 5.2's algorithm-runtime comparison.
//
// Paper (n = 817,101, on a PIII/933): "Algorithm 1 takes more than two
// days of work (we interrupted it before its completion) and Algorithm 2
// takes 6 minutes to run [...] whereas the heuristic execution, using
// pipMP, is instantaneous".
//
// Reproduction: google-benchmark timings of Algorithm 1 / Algorithm 2 /
// LP heuristic / closed form across n, plus a direct measurement of
// Algorithm 2 and the heuristic at the full n and an O(p n^2)
// extrapolation of Algorithm 1 (running it to completion would defeat the
// point, exactly as it did for the authors). The absolute numbers shrink
// on modern hardware; the *ratios* — orders of magnitude between each
// method — are the shape under test.

#include <benchmark/benchmark.h>

#include <chrono>
#include <functional>
#include <iostream>

#include "bench_common.hpp"
#include "core/closed_form.hpp"
#include "core/dp.hpp"
#include "core/heuristic.hpp"
#include "model/testbed.hpp"
#include "support/table.hpp"

namespace {

using namespace lbs;

model::Platform testbed_platform() {
  auto grid = model::paper_testbed();
  return make_platform(grid, model::paper_root(grid));
}

void BM_ExactDp(benchmark::State& state) {
  auto platform = testbed_platform();
  auto n = static_cast<long long>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::exact_dp(platform, n));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ExactDp)->Arg(250)->Arg(500)->Arg(1000)->Arg(2000)->Complexity();

void BM_OptimizedDp(benchmark::State& state) {
  auto platform = testbed_platform();
  auto n = static_cast<long long>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::optimized_dp(platform, n));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_OptimizedDp)->Arg(1000)->Arg(4000)->Arg(16000)->Arg(64000)->Complexity();

void BM_LpHeuristic(benchmark::State& state) {
  auto platform = testbed_platform();
  auto n = static_cast<long long>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::lp_heuristic(platform, n));
  }
}
BENCHMARK(BM_LpHeuristic)->Arg(1000)->Arg(100000)->Arg(model::kPaperRayCount);

void BM_LinearClosedForm(benchmark::State& state) {
  auto platform = testbed_platform();
  auto n = static_cast<long long>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_linear(platform, n));
  }
}
BENCHMARK(BM_LinearClosedForm)->Arg(1000)->Arg(model::kPaperRayCount);

double time_once(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double>(elapsed).count();
}

int full_scale_report(bench::JsonReport& report) {
  bench::print_header(
      "Section 5.2 — planning time at the paper's scale (n = 817,101)");
  auto platform = testbed_platform();
  long long n = model::kPaperRayCount;

  // Algorithm 1: measure at two sizes, extrapolate the n^2 law.
  double t1k = time_once([&] { core::exact_dp(platform, 1000); });
  double t2k = time_once([&] { core::exact_dp(platform, 2000); });
  double quad_coeff = t2k / (2000.0 * 2000.0);
  double alg1_extrapolated = quad_coeff * static_cast<double>(n) * static_cast<double>(n);

  double alg2 = time_once([&] { core::optimized_dp(platform, n); });
  double heuristic = time_once([&] { core::lp_heuristic(platform, n); });
  double closed = time_once([&] { core::solve_linear(platform, n); });

  support::Table table({"method", "paper (PIII/933)", "this host"});
  table.add_row({"Algorithm 1 (exact DP)", "> 2 days (interrupted)",
                 support::format_seconds(alg1_extrapolated) + " (extrapolated)"});
  table.add_row({"Algorithm 2 (optimized DP)", "6 min", support::format_seconds(alg2)});
  table.add_row({"LP heuristic (Sec. 3.3)", "instantaneous",
                 support::format_seconds(heuristic)});
  table.add_row({"closed form (Sec. 4)", "-", support::format_seconds(closed)});
  table.print(std::cout);
  std::cout << "(Algorithm 1 measured at n = 1000: " << support::format_seconds(t1k)
            << ", n = 2000: " << support::format_seconds(t2k)
            << "; quadratic scaling ratio " << support::format_double(t2k / t1k, 2)
            << "x, expected ~4x)\n";

  const int p = platform.size();
  auto throughput = [n](double seconds) {
    return seconds > 0.0 ? static_cast<double>(n) / seconds : 0.0;
  };
  const int dp_threads = support::default_parallelism();  // default DpOptions
  report.add({"exact_dp_extrapolated", n, p, alg1_extrapolated,
              throughput(alg1_extrapolated), dp_threads, {}});
  report.add({"optimized_dp", n, p, alg2, throughput(alg2), dp_threads, {}});
  report.add({"lp_heuristic", n, p, heuristic, throughput(heuristic), 1, {}});
  report.add({"linear_closed_form", n, p, closed, throughput(closed), 1, {}});

  std::vector<bench::Comparison> comparisons{
      {"Alg. 1 vs Alg. 2", "> 2 days vs 6 min (~500x)",
       support::format_double(alg1_extrapolated / alg2, 0) + "x",
       alg1_extrapolated > 50.0 * alg2},
      {"Alg. 2 vs heuristic", "6 min vs instantaneous",
       support::format_double(alg2 / heuristic, 0) + "x", alg2 > 20.0 * heuristic},
      {"Alg. 1 scaling", "O(p n^2)",
       support::format_double(t2k / t1k, 2) + "x per 2x n",
       t2k / t1k > 3.0 && t2k / t1k < 5.5},
  };
  return bench::print_comparisons(comparisons);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = lbs::bench::take_json_flag(argc, argv);
  lbs::bench::JsonReport report("algorithms");
  int failures = full_scale_report(report);
  if (!report.write(json_path)) ++failures;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return failures;
}
