// Planning-service throughput: the lbsd daemon under concurrent load.
//
//   ./build/bench/bench_service_throughput [--json <file>]
//
// Three phases against an in-process Server (real sockets, real wire
// protocol, real worker pool):
//
//   1. cache-miss scaling — every request is a unique key, so every
//      request costs a full DP solve. Aggregate throughput with 16
//      concurrent clients vs 1 client measures how well the batched
//      dispatch + sharded cache spread independent solves across cores.
//   2. coalescing proof — 16 clients all request the SAME fresh key, for
//      several rounds, against a dedicated server whose solve_delay_ms
//      holds each solve open until every client has attached (the same
//      idiom as the server unit test). The tracer counts dp.solve spans:
//      exactly one per round regardless of the client count, or the
//      coalescing map is broken. The delay matters: without it, a client
//      arriving in the window between a solve finishing (inflight entry
//      erased) and its result landing in the cache legitimately enqueues
//      a second solve — a benign race, but one that would flake the
//      exact-count gate under load.
//   3. cache-hit serving — 16 clients replay phase 1's warmed keys;
//      requests never touch the queue, throughput is pure sharded-cache
//      reads.
//
// Shape gates are hardware-aware: the 16-vs-1 scaling target is
// min(4, max(0.75, 0.45 * cores)) — ~4x on the 8+-core CI runners the
// acceptance criterion names, while a 1-core container only has to prove
// concurrency does not collapse (no parallel speedup exists to measure).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_common.hpp"
#include "core/planner.hpp"
#include "model/cost.hpp"
#include "model/platform.hpp"
#include "obs/trace.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace lbs;

constexpr int kProcessors = 8;
constexpr long long kItemsBase = 20000;  // ~160k DP cells, ~15ms per solve
constexpr int kClientsWide = 16;
constexpr int kSolvesPerPhase = 96;  // unique keys per cache-miss phase
constexpr int kCoalesceRounds = 5;
constexpr int kHitRequestsPerClient = 200;

model::Platform bench_platform() {
  model::Platform platform;
  for (int i = 0; i < kProcessors - 1; ++i) {
    model::Processor proc;
    proc.label = std::string("w").append(std::to_string(i));
    proc.comm = model::Cost::linear(1e-5 * (1 + i % 3));
    proc.comp = model::Cost::linear(1e-3 * (1 + i % 5));
    platform.processors.push_back(proc);
  }
  model::Processor root;
  root.label = "root";
  root.comm = model::Cost::zero();
  root.comp = model::Cost::linear(2e-3);
  platform.processors.push_back(root);
  return platform;
}

std::string bench_socket_path() {
  static int counter = 0;
  return "/tmp/lbs_bench_service_" + std::to_string(::getpid()) + "_" +
         std::to_string(++counter) + ".sock";
}

double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Per-request latency percentiles in milliseconds, appended to a
// record's extras so the regression gate can watch tails, not just
// aggregate throughput (a lost parallel path shows up in p99 first).
void append_percentiles(bench::BenchRecord& record,
                        const std::vector<double>& latencies_s) {
  if (latencies_s.empty()) return;
  record.extra.emplace_back("p50_ms", 1e3 * support::quantile(latencies_s, 0.50));
  record.extra.emplace_back("p95_ms", 1e3 * support::quantile(latencies_s, 0.95));
  record.extra.emplace_back("p99_ms", 1e3 * support::quantile(latencies_s, 0.99));
}

// Runs `total_requests` unique-key plan requests spread over `clients`
// concurrent connections; returns aggregate requests/second and appends
// each request's latency (seconds) to `latencies_s`. `key_epoch` offsets
// the item counts so each phase sees fresh keys (cache misses); keep it
// small — items scale the DP, so a large offset would change the
// per-solve workload between phases and corrupt the comparison.
double run_miss_phase(const std::string& socket_path, int clients,
                      int total_requests, long long key_epoch,
                      std::atomic<int>& failures,
                      std::vector<double>& latencies_s) {
  auto platform = bench_platform();
  std::atomic<int> next{0};
  std::mutex latency_mu;
  double start = wall_seconds();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      service::Client client(socket_path);
      std::vector<double> mine;
      for (int i = next.fetch_add(1); i < total_requests;
           i = next.fetch_add(1)) {
        // Unique items per request => unique PlanKey => guaranteed miss.
        long long items = kItemsBase + key_epoch + i;
        double sent = wall_seconds();
        auto response = client.plan_with_retry(platform, items,
                                               core::Algorithm::OptimizedDp, 50);
        mine.push_back(wall_seconds() - sent);
        if (response.status != service::PlanStatus::Ok) failures.fetch_add(1);
      }
      std::lock_guard<std::mutex> lock(latency_mu);
      latencies_s.insert(latencies_s.end(), mine.begin(), mine.end());
    });
  }
  for (auto& thread : threads) thread.join();
  double elapsed = wall_seconds() - start;
  return static_cast<double>(total_requests) / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = bench::take_json_flag(argc, argv);
  bench::JsonReport report("service_throughput");
  const int cores = support::default_parallelism();

  bench::print_header(
      "Planning service (lbsd): throughput, coalescing, cache serving");
  std::cout << "DP workers: " << cores << " | platform: p=" << kProcessors
            << " linear | " << kSolvesPerPhase << " unique solves per phase\n";

  // ---- Phase 1: cache-miss scaling, 1 vs 16 clients -------------------
  obs::Tracer tracer;
  service::ServerOptions options;
  options.socket_path = bench_socket_path();
  options.tracer = &tracer;
  options.max_queue = 1024;  // scaling phase measures solve throughput,
                             // not admission policy
  service::Server server(options);
  server.start();

  std::atomic<int> failures{0};
  std::vector<double> latencies_1;
  std::vector<double> latencies_16;
  double rps_1 = run_miss_phase(options.socket_path, 1, kSolvesPerPhase,
                                /*key_epoch=*/0, failures, latencies_1);
  double rps_16 = run_miss_phase(options.socket_path, kClientsWide,
                                 kSolvesPerPhase, /*key_epoch=*/kSolvesPerPhase,
                                 failures, latencies_16);
  double scaling = rps_16 / rps_1;

  support::Table scale_table(
      {"clients", "unique solves", "throughput (req/s)", "speedup"});
  scale_table.add_row({"1", std::to_string(kSolvesPerPhase),
                       support::format_double(rps_1, 1), "1.00"});
  scale_table.add_row({"16", std::to_string(kSolvesPerPhase),
                       support::format_double(rps_16, 1),
                       support::format_double(scaling, 2)});
  std::cout << '\n';
  scale_table.print(std::cout);

  {
    bench::BenchRecord record;
    record.name = "miss_1_client";
    record.n = kItemsBase;
    record.p = 1;
    record.wall_s = kSolvesPerPhase / rps_1;
    record.items_per_s = rps_1;
    append_percentiles(record, latencies_1);
    report.add(record);
    record.extra.clear();
    record.name = "miss_16_clients";
    record.p = kClientsWide;
    record.wall_s = kSolvesPerPhase / rps_16;
    record.items_per_s = rps_16;
    record.extra = {{"scaling_x", scaling}};
    append_percentiles(record, latencies_16);
    report.add(record);
  }

  // ---- Phase 2: coalescing proof --------------------------------------
  // A dedicated server with solve_delay_ms keeps each round's solve open
  // until all 16 clients have attached, making "exactly one dp.solve per
  // round" deterministic instead of a race against client arrival.
  auto platform = bench_platform();
  std::atomic<int> coalesce_failures{0};
  long long solves = 0;
  {
    obs::Tracer coalesce_tracer;
    service::ServerOptions coalesce_options;
    coalesce_options.socket_path = bench_socket_path();
    coalesce_options.tracer = &coalesce_tracer;
    coalesce_options.max_queue = 1024;
    coalesce_options.solve_delay_ms = 200;
    service::Server coalesce_server(coalesce_options);
    coalesce_server.start();
    for (int round = 0; round < kCoalesceRounds; ++round) {
      long long items = kItemsBase + 2 * kSolvesPerPhase + round;  // fresh key
      std::vector<std::thread> threads;
      for (int c = 0; c < kClientsWide; ++c) {
        threads.emplace_back([&, items] {
          service::Client client(coalesce_options.socket_path);
          auto response = client.plan_with_retry(
              platform, items, core::Algorithm::OptimizedDp, 50);
          if (response.status != service::PlanStatus::Ok) {
            coalesce_failures.fetch_add(1);
          }
        });
      }
      for (auto& thread : threads) thread.join();
    }
    coalesce_server.stop();
    auto log = coalesce_tracer.collect();
    solves = static_cast<long long>(log.of_type(obs::EventType::DpSolve).size());
  }
  long long coalesce_requests = static_cast<long long>(kCoalesceRounds) * kClientsWide;
  std::cout << "\ncoalescing: " << coalesce_requests << " identical requests ("
            << kClientsWide << " clients x " << kCoalesceRounds
            << " rounds) -> " << solves << " dp.solve spans\n";

  {
    bench::BenchRecord record;
    record.name = "coalesce_proof";
    record.n = coalesce_requests;
    record.p = kClientsWide;
    record.wall_s = 0.0;
    record.items_per_s = 0.0;
    record.extra = {{"dp_solves", static_cast<double>(solves)},
                    {"rounds", static_cast<double>(kCoalesceRounds)}};
    report.add(record);
  }

  // ---- Phase 3: warm-cache serving ------------------------------------
  {
    std::vector<double> hit_latencies;
    std::mutex latency_mu;
    double start = wall_seconds();
    std::vector<std::thread> threads;
    for (int c = 0; c < kClientsWide; ++c) {
      threads.emplace_back([&] {
        service::Client client(options.socket_path);
        std::vector<double> mine;
        for (int i = 0; i < kHitRequestsPerClient; ++i) {
          // Replay phase 1's warmed keys: all hits.
          long long items = kItemsBase + (i % kSolvesPerPhase);
          double sent = wall_seconds();
          auto response = client.plan_with_retry(platform, items,
                                                 core::Algorithm::OptimizedDp, 50);
          mine.push_back(wall_seconds() - sent);
          if (response.status != service::PlanStatus::Ok) failures.fetch_add(1);
        }
        std::lock_guard<std::mutex> lock(latency_mu);
        hit_latencies.insert(hit_latencies.end(), mine.begin(), mine.end());
      });
    }
    for (auto& thread : threads) thread.join();
    double elapsed = wall_seconds() - start;
    double rps_hit =
        static_cast<double>(kClientsWide) * kHitRequestsPerClient / elapsed;
    std::cout << "warm-cache serving: "
              << support::format_double(rps_hit, 0) << " req/s ("
              << kClientsWide << " clients, "
              << kClientsWide * kHitRequestsPerClient << " requests)\n";

    bench::BenchRecord record;
    record.name = "cache_hit_serving";
    record.n = kClientsWide * kHitRequestsPerClient;
    record.p = kClientsWide;
    record.wall_s = elapsed;
    record.items_per_s = rps_hit;
    record.extra = {{"hit_ratio_vs_miss", rps_hit / rps_16}};
    append_percentiles(record, hit_latencies);
    report.add(record);
  }

  auto counters = server.counters();
  std::cout << "server counters: requests=" << counters.requests
            << " solved=" << counters.solved
            << " coalesced=" << counters.coalesced
            << " cache_hits=" << counters.cache_hits
            << " rejected=" << counters.rejected << "\n";
  server.stop();

  // ---- Shape gates ----------------------------------------------------
  // The acceptance scaling target assumes a multi-core runner; scale it
  // to the hardware so the gate measures the service, not the container.
  double required_scaling =
      std::min(4.0, std::max(0.75, 0.45 * static_cast<double>(cores)));
  std::vector<bench::Comparison> comparisons;
  comparisons.push_back(
      {"16-vs-1 client throughput (cache miss)",
       ">= " + support::format_double(required_scaling, 2) + "x (" +
           std::to_string(cores) + " cores)",
       support::format_double(scaling, 2) + "x", scaling >= required_scaling});
  comparisons.push_back({"dp.solve per coalesced round (16 identical reqs)",
                         "1", std::to_string(solves) + "/" +
                             std::to_string(kCoalesceRounds) + " rounds",
                         solves == kCoalesceRounds});
  comparisons.push_back({"failed requests", "0",
                         std::to_string(failures.load() + coalesce_failures.load()),
                         failures.load() + coalesce_failures.load() == 0});
  int rc = bench::print_comparisons(comparisons);
  if (!report.write(json_path)) rc = 1;
  return rc;
}
