// Ablation: how the balancing gain scales with platform heterogeneity.
//
// Not a figure from the paper, but the question its introduction raises:
// uniform shares are fine on "an homogeneous set of processors" and fall
// apart on grids. This bench makes that quantitative. Synthetic platforms
// sweep (a) the CPU-speed spread (max alpha / min alpha) at fixed links
// and (b) the link spread at fixed CPUs; for each, the uniform-vs-balanced
// speedup is reported. Expected shapes: speedup -> 1 as the platform
// becomes homogeneous (the paper's baseline assumption), and it grows
// roughly like the CPU spread (the slowest processor dominates uniform
// runs). The paper's testbed sits at spread ~4.1x / speedup ~2.05x.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/planner.hpp"
#include "model/platform.hpp"
#include "support/table.hpp"

namespace {

using namespace lbs;

// p processors with alphas log-spaced across `spread`, betas log-spaced
// across `link_spread`; root (last) has the median alpha and zero beta.
model::Platform synthetic_platform(int p, double spread, double link_spread) {
  model::Platform platform;
  double base_alpha = 0.01;
  double base_beta = 2e-5;
  for (int i = 0; i < p - 1; ++i) {
    double t = p > 2 ? static_cast<double>(i) / (p - 2) : 0.0;
    model::Processor proc;
    proc.label = "P" + std::to_string(i + 1);
    proc.comp = model::Cost::linear(base_alpha * std::pow(spread, t));
    proc.comm = model::Cost::linear(base_beta * std::pow(link_spread, t));
    platform.processors.push_back(proc);
  }
  model::Processor root;
  root.label = "root";
  root.comp = model::Cost::linear(base_alpha * std::sqrt(spread));
  root.comm = model::Cost::zero();
  platform.processors.push_back(root);
  return platform;
}

double speedup(const model::Platform& platform, long long n) {
  auto balanced = core::plan_scatter(platform, n);
  auto uniform = core::plan_scatter(platform, n, core::Algorithm::Uniform);
  return uniform.predicted_makespan / balanced.predicted_makespan;
}

}  // namespace

int main() {
  bench::print_header("Ablation — balancing gain vs platform heterogeneity");

  constexpr int kProcessors = 16;
  constexpr long long kItems = 500000;

  support::Table cpu_table({"CPU spread (max/min alpha)", "links", "speedup"});
  double homogeneous_speedup = 0.0;
  double wide_speedup = 0.0;
  for (double spread : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    double s = speedup(synthetic_platform(kProcessors, spread, 3.0), kItems);
    if (spread == 1.0) homogeneous_speedup = s;
    if (spread == 16.0) wide_speedup = s;
    cpu_table.add_row({support::format_double(spread, 1) + "x", "3x spread",
                       support::format_double(s, 2) + "x"});
  }
  cpu_table.print(std::cout);

  support::Table link_table({"link spread (max/min beta)", "CPUs", "speedup"});
  double link_speedup_low = 0.0;
  double link_speedup_high = 0.0;
  for (double link_spread : {1.0, 10.0, 100.0}) {
    double s = speedup(synthetic_platform(kProcessors, 1.0, link_spread), kItems);
    if (link_spread == 1.0) link_speedup_low = s;
    if (link_spread == 100.0) link_speedup_high = s;
    link_table.add_row({support::format_double(link_spread, 0) + "x", "homogeneous",
                        support::format_double(s, 2) + "x"});
  }
  std::cout << '\n';
  link_table.print(std::cout);

  std::vector<bench::Comparison> comparisons{
      {"homogeneous platform: nothing to gain", "MPI_Scatter was fine there",
       support::format_double(homogeneous_speedup, 3) + "x",
       homogeneous_speedup < 1.05},
      {"gain grows with CPU spread", "slowest CPU dominates uniform runs",
       support::format_double(wide_speedup, 2) + "x at 16x spread",
       wide_speedup > 3.0},
      {"link spread alone matters less", "comm is the smaller term here",
       support::format_double(link_speedup_high, 2) + "x at 100x link spread",
       link_speedup_high >= link_speedup_low - 1e-9 && link_speedup_high < wide_speedup},
  };
  return bench::print_comparisons(comparisons);
}
