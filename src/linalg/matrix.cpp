#include "linalg/matrix.hpp"

#include <cmath>

#include "support/error.hpp"

namespace lbs::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), values_(rows * cols, 0.0) {
  LBS_CHECK_MSG(rows > 0 && cols > 0, "empty matrix dimensions");
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::random(support::Rng& rng, std::size_t rows, std::size_t cols,
                      double lo, double hi) {
  Matrix m(rows, cols);
  for (double& value : m.values_) value = rng.uniform(lo, hi);
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  LBS_CHECK(r < rows_ && c < cols_);
  return values_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  LBS_CHECK(r < rows_ && c < cols_);
  return values_[r * cols_ + c];
}

const double* Matrix::row(std::size_t r) const {
  LBS_CHECK(r < rows_);
  return values_.data() + r * cols_;
}

bool Matrix::allclose(const Matrix& other, double tolerance) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (std::abs(values_[i] - other.values_[i]) > tolerance) return false;
  }
  return true;
}

Matrix multiply(const Matrix& a, const Matrix& b) {
  return multiply_rows(a, b, 0, a.rows());
}

Matrix multiply_rows(const Matrix& a, const Matrix& b, std::size_t first,
                     std::size_t count) {
  LBS_CHECK_MSG(a.cols() == b.rows(), "dimension mismatch");
  LBS_CHECK_MSG(first + count <= a.rows(), "row range out of bounds");
  LBS_CHECK_MSG(count > 0, "empty row range");
  Matrix c(count, b.cols());
  // i-k-j loop order: streams B rows, vectorizes the inner j loop.
  for (std::size_t i = 0; i < count; ++i) {
    const double* a_row = a.row(first + i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      double a_ik = a_row[k];
      if (a_ik == 0.0) continue;
      const double* b_row = b.row(k);
      double* c_row = c.data() + i * c.cols();
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c_row[j] += a_ik * b_row[j];
      }
    }
  }
  return c;
}

double difference_norm(const Matrix& a, const Matrix& b) {
  LBS_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  double sum = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      double d = a.at(r, c) - b.at(r, c);
      sum += d * d;
    }
  }
  return std::sqrt(sum);
}

}  // namespace lbs::linalg
