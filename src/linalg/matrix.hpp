// Dense row-major matrices and block operations.
//
// A second application substrate: the paper's related work ([3], linear
// algebra on heterogeneous clusters of PCs) distributes *row blocks* of a
// matrix product the same way the seismic code distributes rays — one
// scatter of independent items (rows), per-row compute cost linear in the
// inner dimension. heterogeneous_matmul builds on this to demonstrate the
// library on a second real workload with verifiable output.
#pragma once

#include <cstddef>
#include <vector>

#include "support/rng.hpp"

namespace lbs::linalg {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols);

  static Matrix identity(std::size_t n);
  static Matrix random(support::Rng& rng, std::size_t rows, std::size_t cols,
                       double lo = -1.0, double hi = 1.0);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  // Contiguous row-major storage; row r starts at data()[r * cols()].
  [[nodiscard]] double* data() { return values_.data(); }
  [[nodiscard]] const double* data() const { return values_.data(); }
  [[nodiscard]] const double* row(std::size_t r) const;

  [[nodiscard]] bool allclose(const Matrix& other, double tolerance = 1e-9) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> values_;
};

// C = A * B (dimension-checked).
Matrix multiply(const Matrix& a, const Matrix& b);

// Rows [first, first + count) of A times B — the per-processor work item
// of a row-block distribution. Returns a count x b.cols() block.
Matrix multiply_rows(const Matrix& a, const Matrix& b, std::size_t first,
                     std::size_t count);

// Frobenius norm of (a - b); the verification metric.
double difference_norm(const Matrix& a, const Matrix& b);

}  // namespace lbs::linalg
