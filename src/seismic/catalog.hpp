// Synthetic seismic event catalogs.
//
// The paper processed "the full set of seismic events of year 1999":
// 817,101 rays, each described by source coordinates, receiver
// coordinates, and a wave type. We cannot ship that catalog, so this
// module synthesizes one with the same statistical shape: epicentres
// clustered along synthetic subduction arcs, receivers drawn from a fixed
// global station network, deterministic from a seed.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace lbs::seismic {

enum class WaveType : std::uint8_t { P = 0, S = 1 };

// One seismic wave characteristic pair = one ray to trace (the paper's
// raydata items). Plain trivially-copyable struct so it can travel through
// mq scatterv buffers unchanged.
struct SeismicEvent {
  double source_lat_deg;
  double source_lon_deg;
  double source_depth_km;
  double receiver_lat_deg;
  double receiver_lon_deg;
  WaveType wave;
};
static_assert(sizeof(SeismicEvent) == 48, "events must pack predictably");

// Generates `count` events, deterministic for a given rng state.
std::vector<SeismicEvent> generate_catalog(support::Rng& rng, long long count);

// Great-circle angular distance between two (lat, lon) points, degrees.
double epicentral_distance_deg(double lat1_deg, double lon1_deg,
                               double lat2_deg, double lon2_deg);

// Summary statistics of a catalog — used to validate that the synthetic
// generator has the statistical shape of a real teleseismic-era catalog
// (mostly shallow events, a deep tail, wide distance coverage with a
// substantial teleseismic fraction, P-dominated phases).
struct CatalogStatistics {
  long long events = 0;
  double p_wave_fraction = 0.0;
  double shallow_fraction = 0.0;       // depth < 70 km
  double deep_fraction = 0.0;          // depth > 300 km
  double mean_depth_km = 0.0;
  double mean_distance_deg = 0.0;
  double teleseismic_fraction = 0.0;   // 30 deg <= distance <= 95 deg
  double min_distance_deg = 0.0;
  double max_distance_deg = 0.0;
};
CatalogStatistics catalog_statistics(const std::vector<SeismicEvent>& events);

}  // namespace lbs::seismic
