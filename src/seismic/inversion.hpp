// Linearized travel-time tomography: the velocity-model update step.
//
// The paper's application is one building block of a tomography pipeline:
// "in a final step, a new velocity model that minimizes those differences
// is computed". This module implements that final step for the layered
// model: per-shell slowness scale factors x_s are fit by damped least
// squares so that predicted times Σ_s t_s·x_s match the observed times
// (t_s = time the ray spends in shell s under the current model), then
// shell velocities update as v_s → v_s / x_s. Iterating
// trace → fit → update is the multi-round workload that the scatter
// load-balancing serves.
#pragma once

#include <vector>

#include "seismic/earth_model.hpp"
#include "seismic/ray.hpp"

namespace lbs::seismic {

// Accumulates the normal equations of the damped least-squares system.
// Rows can be accumulated anywhere (each MPI/mq rank builds its own) and
// merged, so the fit distributes exactly like the ray tracing does.
class TomographicSystem {
 public:
  explicit TomographicSystem(std::size_t shell_count);

  // Adds one ray: `shell_times` is RayPath::time_per_shell under the
  // current model, `observed_time` the measured travel time.
  void add_ray(const std::vector<double>& shell_times, double observed_time);

  // Merges another system over the same shells (for distributed builds).
  void merge(const TomographicSystem& other);

  // Flattened state for transport through a message-passing reduce:
  // [ata (k*k), atr (k), rays, misfit_sq]. merge() == element-wise sum.
  [[nodiscard]] std::vector<double> serialize() const;
  static TomographicSystem deserialize(std::size_t shell_count,
                                       const std::vector<double>& data);

  [[nodiscard]] long long ray_count() const { return rays_; }
  // Root-mean-square misfit of the accumulated rays under the current
  // model (x = 1).
  [[nodiscard]] double rms_misfit() const;

  // Solves (AᵀA + λI)·dx = Aᵀr for the slowness-scale perturbation
  // (x = 1 + dx), with Tikhonov damping λ = damping · trace(AᵀA)/k so
  // unsampled shells stay at x = 1. Returns x per shell.
  [[nodiscard]] std::vector<double> solve(double damping = 0.01) const;

 private:
  std::size_t shells_;
  std::vector<double> ata_;       // AᵀA, row-major k x k
  std::vector<double> atr_;       // Aᵀ·(observed - predicted)
  long long rays_ = 0;
  double misfit_sq_ = 0.0;
};

// Applies slowness scales: v_s → v_s / x_s (x must be positive).
EarthModel apply_scales(const EarthModel& model, const std::vector<double>& scales);

// One full inversion round over a batch of rays.
struct InversionRound {
  EarthModel updated;
  std::vector<double> scales;
  double rms_before = 0.0;
  double rms_after = 0.0;
  long long rays_used = 0;  // converged rays only
};
InversionRound invert_round(const EarthModel& current,
                            const SeismicEvent* events, std::size_t count,
                            const double* observed_times, double damping = 0.01,
                            const TraceOptions& options = {});

}  // namespace lbs::seismic
