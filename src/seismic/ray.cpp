#include "seismic/ray.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "support/error.hpp"

namespace lbs::seismic {

namespace {

constexpr double kRadToDeg = 180.0 / std::numbers::pi;
constexpr double kVpVsRatio = 1.7320508075688772;  // sqrt(3), Poisson solid

// Integrates dDelta and dT across [r_lo, r_hi] within one shell (constant
// velocity v), for ray parameter p, using the midpoint rule.
void integrate_segment(double r_lo, double r_hi, double v, double p, int steps,
                       double& delta_rad, double& time_s) {
  double h = (r_hi - r_lo) / steps;
  for (int s = 0; s < steps; ++s) {
    double r = r_lo + (s + 0.5) * h;
    double u = r / v;
    double det = u * u - p * p;
    if (det <= 0.0) continue;  // below the turning point: no propagation
    double root = std::sqrt(det);
    delta_rad += h * p / (r * root);
    time_s += h * u * u / (r * root);
  }
}

}  // namespace

Sweep sweep_ray(const EarthModel& model, double p, int steps_per_shell) {
  LBS_CHECK_MSG(p >= 0.0, "negative ray parameter");
  LBS_CHECK_MSG(steps_per_shell >= 1, "need at least one integration step");

  Sweep sweep;
  const auto& shells = model.shells();
  sweep.time_per_shell.assign(shells.size(), 0.0);
  double delta_rad = 0.0;
  double time_s = 0.0;
  double turning = 0.0;

  // Walk shells from the surface down; the ray penetrates a shell while
  // u(r) > p somewhere inside it. Within a constant-velocity shell,
  // u(r) = r/v is increasing in r, so the turning radius inside the shell
  // is r_turn = p*v.
  for (std::size_t index = shells.size(); index-- > 0;) {
    const Shell& shell = shells[index];
    double u_outer = shell.outer_radius_km / shell.velocity_km_s;
    if (u_outer <= p) {
      // The ray cannot enter this shell: it turned above.
      turning = std::max(turning, shell.outer_radius_km);
      break;
    }
    double r_turn = p * shell.velocity_km_s;  // u(r_turn) = p
    double r_lo = std::max(shell.inner_radius_km, r_turn);
    double shell_time = 0.0;
    integrate_segment(r_lo, shell.outer_radius_km, shell.velocity_km_s, p,
                      steps_per_shell, delta_rad, shell_time);
    time_s += shell_time;
    sweep.time_per_shell[index] = 2.0 * shell_time;  // down and back up
    if (r_turn > shell.inner_radius_km) {
      turning = r_turn;
      break;
    }
    if (shell.inner_radius_km == 0.0) {
      // Through the centre (p ~ 0).
      turning = 0.0;
    }
  }

  // Down and back up: symmetric.
  sweep.distance_deg = 2.0 * delta_rad * kRadToDeg;
  sweep.time_s = 2.0 * time_s;
  sweep.turning_radius_km = turning;
  return sweep;
}

namespace {

// One-leg travel time between radius (surface - depth) and the surface for
// ray parameter p: the standard first-order source-depth correction — a
// source at depth skips that much of the down-going leg. Subtracted per
// shell so time_per_shell stays consistent with travel_time_s.
void apply_depth_correction(const EarthModel& model, double p, double depth_km,
                            RayPath& path, int steps_per_shell) {
  if (depth_km <= 0.0) return;
  double surface = model.surface_radius_km();
  double source_radius = std::max(surface - depth_km, path.turning_radius_km);
  if (source_radius >= surface) return;

  const auto& shells = model.shells();
  for (std::size_t index = shells.size(); index-- > 0;) {
    const Shell& shell = shells[index];
    if (shell.outer_radius_km <= source_radius) break;
    double r_lo = std::max(shell.inner_radius_km, source_radius);
    double r_hi = shell.outer_radius_km;
    if (r_hi <= r_lo) continue;
    double unused_delta = 0.0;
    double leg_time = 0.0;
    integrate_segment(r_lo, r_hi, shell.velocity_km_s, p, steps_per_shell,
                      unused_delta, leg_time);
    // One leg only; never remove more than the shell actually holds.
    double correction = std::min(leg_time, path.time_per_shell[index]);
    path.time_per_shell[index] -= correction;
    path.travel_time_s -= correction;
  }
}

}  // namespace

RayPath trace_ray(const EarthModel& model, const SeismicEvent& event,
                  const TraceOptions& options) {
  RayPath path;
  path.epicentral_deg =
      epicentral_distance_deg(event.source_lat_deg, event.source_lon_deg,
                              event.receiver_lat_deg, event.receiver_lon_deg);
  double target = std::max(path.epicentral_deg, 0.2);  // avoid the p=0 corner

  double u_surface = model.slowness_radius(model.surface_radius_km());
  double p_max = u_surface * 0.9999;

  // Coarse scan: distance(p) is not monotonic through the core shadow, so
  // find the sample bracketing the target with the smallest residual.
  double best_p_lo = 0.0, best_p_hi = p_max;
  double best_gap = std::numeric_limits<double>::infinity();
  double prev_p = 0.0;
  Sweep prev = sweep_ray(model, prev_p, options.integration_steps_per_shell);
  for (int s = 1; s <= options.scan_samples; ++s) {
    double p = p_max * s / options.scan_samples;
    Sweep current = sweep_ray(model, p, options.integration_steps_per_shell);
    double lo_d = prev.distance_deg, hi_d = current.distance_deg;
    if ((lo_d - target) * (hi_d - target) <= 0.0) {
      double gap = std::abs(lo_d - target) + std::abs(hi_d - target);
      if (gap < best_gap) {
        best_gap = gap;
        best_p_lo = prev_p;
        best_p_hi = p;
      }
    }
    prev_p = p;
    prev = current;
  }

  // Bisection within the best bracket.
  double p_lo = best_p_lo, p_hi = best_p_hi;
  double lo_distance =
      sweep_ray(model, p_lo, options.integration_steps_per_shell).distance_deg;
  Sweep result{};
  double p_mid = 0.5 * (p_lo + p_hi);
  for (int i = 0; i < options.bisection_iterations; ++i) {
    p_mid = 0.5 * (p_lo + p_hi);
    result = sweep_ray(model, p_mid, options.integration_steps_per_shell);
    if ((lo_distance - target) * (result.distance_deg - target) <= 0.0) {
      p_hi = p_mid;
    } else {
      p_lo = p_mid;
      lo_distance = result.distance_deg;
    }
  }

  path.ray_parameter = p_mid;
  path.achieved_deg = result.distance_deg;
  path.turning_radius_km = result.turning_radius_km;
  path.travel_time_s = result.time_s;
  path.time_per_shell = std::move(result.time_per_shell);
  apply_depth_correction(model, p_mid, event.source_depth_km, path,
                         options.integration_steps_per_shell);
  if (event.wave == WaveType::S) {
    path.travel_time_s *= kVpVsRatio;  // same geometry, slower propagation
    for (double& t : path.time_per_shell) t *= kVpVsRatio;
  }
  path.converged = std::abs(path.achieved_deg - target) <= options.tolerance_deg;
  return path;
}

double compute_work(const EarthModel& model, const SeismicEvent* events,
                    std::size_t count, std::vector<RayPath>* paths,
                    const TraceOptions& options) {
  double total_time = 0.0;
  if (paths != nullptr) {
    paths->clear();
    paths->reserve(count);
  }
  for (std::size_t i = 0; i < count; ++i) {
    RayPath path = trace_ray(model, events[i], options);
    total_time += path.travel_time_s;
    if (paths != nullptr) paths->push_back(path);
  }
  return total_time;
}

}  // namespace lbs::seismic
