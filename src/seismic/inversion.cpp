#include "seismic/inversion.hpp"

#include <cmath>

#include "support/error.hpp"

namespace lbs::seismic {

TomographicSystem::TomographicSystem(std::size_t shell_count)
    : shells_(shell_count),
      ata_(shell_count * shell_count, 0.0),
      atr_(shell_count, 0.0) {
  LBS_CHECK_MSG(shell_count >= 1, "system needs at least one shell");
}

void TomographicSystem::add_ray(const std::vector<double>& shell_times,
                                double observed_time) {
  LBS_CHECK_MSG(shell_times.size() == shells_, "shell count mismatch");
  double predicted = 0.0;
  for (double t : shell_times) predicted += t;
  double residual = observed_time - predicted;
  for (std::size_t i = 0; i < shells_; ++i) {
    if (shell_times[i] == 0.0) continue;
    atr_[i] += shell_times[i] * residual;
    for (std::size_t j = 0; j < shells_; ++j) {
      ata_[i * shells_ + j] += shell_times[i] * shell_times[j];
    }
  }
  ++rays_;
  misfit_sq_ += residual * residual;
}

void TomographicSystem::merge(const TomographicSystem& other) {
  LBS_CHECK_MSG(other.shells_ == shells_, "shell count mismatch");
  for (std::size_t i = 0; i < ata_.size(); ++i) ata_[i] += other.ata_[i];
  for (std::size_t i = 0; i < atr_.size(); ++i) atr_[i] += other.atr_[i];
  rays_ += other.rays_;
  misfit_sq_ += other.misfit_sq_;
}

std::vector<double> TomographicSystem::serialize() const {
  std::vector<double> data;
  data.reserve(ata_.size() + atr_.size() + 2);
  data.insert(data.end(), ata_.begin(), ata_.end());
  data.insert(data.end(), atr_.begin(), atr_.end());
  data.push_back(static_cast<double>(rays_));
  data.push_back(misfit_sq_);
  return data;
}

TomographicSystem TomographicSystem::deserialize(std::size_t shell_count,
                                                 const std::vector<double>& data) {
  TomographicSystem system(shell_count);
  LBS_CHECK_MSG(data.size() == shell_count * shell_count + shell_count + 2,
                "serialized system size mismatch");
  std::size_t pos = 0;
  for (std::size_t i = 0; i < system.ata_.size(); ++i) system.ata_[i] = data[pos++];
  for (std::size_t i = 0; i < system.atr_.size(); ++i) system.atr_[i] = data[pos++];
  system.rays_ = static_cast<long long>(data[pos++]);
  system.misfit_sq_ = data[pos];
  return system;
}

double TomographicSystem::rms_misfit() const {
  if (rays_ == 0) return 0.0;
  return std::sqrt(misfit_sq_ / static_cast<double>(rays_));
}

std::vector<double> TomographicSystem::solve(double damping) const {
  LBS_CHECK_MSG(damping >= 0.0, "negative damping");
  std::size_t k = shells_;

  // (AᵀA + λI) dx = Aᵀr, λ scaled to the system's magnitude.
  double trace = 0.0;
  for (std::size_t i = 0; i < k; ++i) trace += ata_[i * k + i];
  double lambda = damping * (trace > 0.0 ? trace / static_cast<double>(k) : 1.0);
  // A floor keeps completely unsampled shells solvable (dx = 0 there).
  lambda = std::max(lambda, 1e-12);

  std::vector<double> matrix = ata_;
  for (std::size_t i = 0; i < k; ++i) matrix[i * k + i] += lambda;
  std::vector<double> rhs = atr_;

  // Gaussian elimination with partial pivoting (k is the shell count,
  // single digits — no need for anything fancier).
  std::vector<std::size_t> perm(k);
  for (std::size_t i = 0; i < k; ++i) perm[i] = i;
  for (std::size_t col = 0; col < k; ++col) {
    std::size_t pivot = col;
    double best = std::abs(matrix[perm[col] * k + col]);
    for (std::size_t row = col + 1; row < k; ++row) {
      double candidate = std::abs(matrix[perm[row] * k + col]);
      if (candidate > best) {
        best = candidate;
        pivot = row;
      }
    }
    LBS_CHECK_MSG(best > 0.0, "singular tomographic system despite damping");
    std::swap(perm[col], perm[pivot]);
    double diagonal = matrix[perm[col] * k + col];
    for (std::size_t row = col + 1; row < k; ++row) {
      double factor = matrix[perm[row] * k + col] / diagonal;
      if (factor == 0.0) continue;
      for (std::size_t j = col; j < k; ++j) {
        matrix[perm[row] * k + j] -= factor * matrix[perm[col] * k + j];
      }
      rhs[perm[row]] -= factor * rhs[perm[col]];
    }
  }
  std::vector<double> dx(k, 0.0);
  for (std::size_t col = k; col-- > 0;) {
    double value = rhs[perm[col]];
    for (std::size_t j = col + 1; j < k; ++j) {
      value -= matrix[perm[col] * k + j] * dx[j];
    }
    dx[col] = value / matrix[perm[col] * k + col];
  }

  std::vector<double> scales(k);
  for (std::size_t i = 0; i < k; ++i) scales[i] = 1.0 + dx[i];
  return scales;
}

EarthModel apply_scales(const EarthModel& model, const std::vector<double>& scales) {
  LBS_CHECK_MSG(scales.size() == model.shells().size(), "shell count mismatch");
  std::vector<Shell> shells = model.shells();
  for (std::size_t i = 0; i < shells.size(); ++i) {
    LBS_CHECK_MSG(scales[i] > 0.0, "non-positive slowness scale");
    shells[i].velocity_km_s /= scales[i];
  }
  return EarthModel(std::move(shells));
}

InversionRound invert_round(const EarthModel& current, const SeismicEvent* events,
                            std::size_t count, const double* observed_times,
                            double damping, const TraceOptions& options) {
  TomographicSystem system(current.shells().size());
  for (std::size_t i = 0; i < count; ++i) {
    RayPath path = trace_ray(current, events[i], options);
    if (!path.converged) continue;  // shadow-zone rays carry no usable signal
    system.add_ray(path.time_per_shell, observed_times[i]);
  }

  std::vector<double> scales = system.solve(damping);
  InversionRound round{apply_scales(current, scales), std::move(scales),
                       system.rms_misfit(), 0.0, system.ray_count()};

  // Re-trace under the updated model to report the achieved misfit.
  TomographicSystem check(current.shells().size());
  for (std::size_t i = 0; i < count; ++i) {
    RayPath path = trace_ray(round.updated, events[i], options);
    if (!path.converged) continue;
    check.add_ray(path.time_per_shell, observed_times[i]);
  }
  round.rms_after = check.rms_misfit();
  return round;
}

}  // namespace lbs::seismic
