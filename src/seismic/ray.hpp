// Spherical ray tracing through a layered Earth.
//
// Physics: along a ray in a radially-symmetric medium the ray parameter
// p = r sin(i) / v is conserved (Benndorf's relation). For a ray with
// parameter p, between radii the angular distance and travel time obey
//
//   dDelta/dr = p / (r sqrt(u(r)^2 - p^2)),
//   dT/dr     = u(r)^2 / (r sqrt(u(r)^2 - p^2)),     u(r) = r / v(r),
//
// down to the turning radius where u(r) = p, then symmetrically back up.
// We integrate these numerically per shell (midpoint rule with sub-steps)
// and shoot for the target epicentral distance by scanning + bisecting on
// p. This is the per-ray computation whose roughly constant cost makes
// the workload's Tcomp linear — the property the paper's Table 1 measures
// in seconds/ray.
#pragma once

#include "seismic/catalog.hpp"
#include "seismic/earth_model.hpp"

namespace lbs::seismic {

struct RayPath {
  double travel_time_s = 0.0;       // source -> receiver
  double epicentral_deg = 0.0;      // target angular distance
  double achieved_deg = 0.0;        // distance actually reached by the ray
  double ray_parameter = 0.0;       // s/rad
  double turning_radius_km = 0.0;
  bool converged = false;           // |achieved - target| small enough
  std::vector<double> time_per_shell;  // aligned with model.shells()
};

struct TraceOptions {
  int integration_steps_per_shell = 64;
  int scan_samples = 48;       // coarse scan over p
  int bisection_iterations = 32;
  double tolerance_deg = 0.05;
};

// Angular distance (deg) and travel time (s) of the ray with parameter
// `p`, from surface to surface (down and back up). p in [0, u(surface)).
// time_per_shell[s] is the travel time spent inside shell s (aligned with
// model.shells()); it sums to time_s and feeds the tomographic inversion.
struct Sweep {
  double distance_deg = 0.0;
  double time_s = 0.0;
  double turning_radius_km = 0.0;
  std::vector<double> time_per_shell;
};
Sweep sweep_ray(const EarthModel& model, double p,
                int integration_steps_per_shell = 64);

// Traces the ray connecting the event's source and receiver: finds p
// matching the epicentral distance, returns the path. S waves are modeled
// as P kinematics scaled by a vp/vs factor of sqrt(3) (Poisson solid).
RayPath trace_ray(const EarthModel& model, const SeismicEvent& event,
                  const TraceOptions& options = {});

// The application's compute_work: traces every event, returns the summed
// travel time (a cheap checksum benches can assert on) and fills `paths`
// if non-null.
double compute_work(const EarthModel& model, const SeismicEvent* events,
                    std::size_t count, std::vector<RayPath>* paths = nullptr,
                    const TraceOptions& options = {});

}  // namespace lbs::seismic
