#include "seismic/catalog.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "support/error.hpp"

namespace lbs::seismic {

namespace {

constexpr double kDegToRad = std::numbers::pi / 180.0;

// Synthetic subduction arcs (lat, lon, extent): rough stand-ins for the
// Pacific ring of fire and the Alpide belt where most real seismicity
// clusters.
struct Arc {
  double lat, lon, spread_lat, spread_lon;
};
constexpr Arc kArcs[] = {
    {-20.0, -175.0, 15.0, 10.0},  // Tonga
    {38.0, 142.0, 12.0, 8.0},     // Japan trench
    {-33.0, -71.0, 20.0, 5.0},    // Chile
    {36.0, 28.0, 8.0, 25.0},      // Alpide belt
    {51.0, -175.0, 6.0, 20.0},    // Aleutians
    {-5.0, 102.0, 8.0, 15.0},     // Sunda arc
};

// A fixed synthetic station network (the captors "located all around the
// globe").
struct Station {
  double lat, lon;
};
constexpr Station kStations[] = {
    {48.5, 7.5},    // Strasbourg
    {34.0, -118.0}, {35.7, 139.7},  {-33.9, 151.2}, {64.1, -21.9},
    {-15.8, -47.9}, {28.6, 77.2},   {55.8, 37.6},   {40.7, -74.0},
    {-33.9, 18.4},  {21.3, -157.9}, {69.7, 18.9},   {-77.8, 166.7},
    {19.4, -99.1},  {1.3, 103.8},   {-36.8, 174.8}, {37.0, -7.9},
    {52.2, 0.1},    {44.8, -68.8},  {-12.0, -77.0},
};

}  // namespace

std::vector<SeismicEvent> generate_catalog(support::Rng& rng, long long count) {
  LBS_CHECK(count >= 0);
  std::vector<SeismicEvent> events;
  events.reserve(static_cast<std::size_t>(count));
  for (long long i = 0; i < count; ++i) {
    const Arc& arc = kArcs[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<long long>(std::size(kArcs)) - 1))];
    SeismicEvent event;
    event.source_lat_deg = arc.lat + rng.normal(0.0, arc.spread_lat);
    event.source_lon_deg = arc.lon + rng.normal(0.0, arc.spread_lon);
    // Clamp to valid coordinates.
    event.source_lat_deg = std::clamp(event.source_lat_deg, -89.9, 89.9);
    if (event.source_lon_deg > 180.0) event.source_lon_deg -= 360.0;
    if (event.source_lon_deg < -180.0) event.source_lon_deg += 360.0;
    // Depth: mostly shallow, exponential tail to ~650 km.
    event.source_depth_km = std::min(650.0, rng.exponential(1.0 / 80.0));
    const Station& station = kStations[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<long long>(std::size(kStations)) - 1))];
    event.receiver_lat_deg = station.lat;
    event.receiver_lon_deg = station.lon;
    event.wave = rng.bernoulli(0.7) ? WaveType::P : WaveType::S;
    events.push_back(event);
  }
  return events;
}

CatalogStatistics catalog_statistics(const std::vector<SeismicEvent>& events) {
  CatalogStatistics stats;
  stats.events = static_cast<long long>(events.size());
  if (events.empty()) return stats;

  long long p_waves = 0, shallow = 0, deep = 0, teleseismic = 0;
  double depth_sum = 0.0, distance_sum = 0.0;
  stats.min_distance_deg = 360.0;
  for (const auto& event : events) {
    if (event.wave == WaveType::P) ++p_waves;
    if (event.source_depth_km < 70.0) ++shallow;
    if (event.source_depth_km > 300.0) ++deep;
    depth_sum += event.source_depth_km;
    double distance = epicentral_distance_deg(event.source_lat_deg, event.source_lon_deg,
                                              event.receiver_lat_deg,
                                              event.receiver_lon_deg);
    distance_sum += distance;
    if (distance >= 30.0 && distance <= 95.0) ++teleseismic;
    stats.min_distance_deg = std::min(stats.min_distance_deg, distance);
    stats.max_distance_deg = std::max(stats.max_distance_deg, distance);
  }
  auto n = static_cast<double>(events.size());
  stats.p_wave_fraction = static_cast<double>(p_waves) / n;
  stats.shallow_fraction = static_cast<double>(shallow) / n;
  stats.deep_fraction = static_cast<double>(deep) / n;
  stats.mean_depth_km = depth_sum / n;
  stats.mean_distance_deg = distance_sum / n;
  stats.teleseismic_fraction = static_cast<double>(teleseismic) / n;
  return stats;
}

double epicentral_distance_deg(double lat1_deg, double lon1_deg,
                               double lat2_deg, double lon2_deg) {
  double lat1 = lat1_deg * kDegToRad;
  double lat2 = lat2_deg * kDegToRad;
  double dlon = (lon2_deg - lon1_deg) * kDegToRad;
  double cos_delta = std::sin(lat1) * std::sin(lat2) +
                     std::cos(lat1) * std::cos(lat2) * std::cos(dlon);
  cos_delta = std::clamp(cos_delta, -1.0, 1.0);
  return std::acos(cos_delta) / kDegToRad;
}

}  // namespace lbs::seismic
