#include "seismic/earth_model.hpp"

#include "support/error.hpp"

namespace lbs::seismic {

EarthModel::EarthModel(std::vector<Shell> shells) : shells_(std::move(shells)) {
  LBS_CHECK_MSG(!shells_.empty(), "earth model needs at least one shell");
  double expected_inner = 0.0;
  for (const auto& shell : shells_) {
    LBS_CHECK_MSG(shell.inner_radius_km == expected_inner,
                  "shells must tile contiguously from the centre");
    LBS_CHECK_MSG(shell.outer_radius_km > shell.inner_radius_km,
                  "empty shell");
    LBS_CHECK_MSG(shell.velocity_km_s > 0.0, "non-positive velocity");
    expected_inner = shell.outer_radius_km;
  }
}

EarthModel EarthModel::prem_like() {
  // Coarse P-wave averages per region (km, km/s).
  return EarthModel({
      {0.0, 1221.5, 11.1, "inner core"},
      {1221.5, 3480.0, 9.0, "outer core"},
      {3480.0, 5701.0, 12.3, "lower mantle"},
      {5701.0, 5971.0, 10.2, "transition zone"},
      {5971.0, 6151.0, 8.8, "upper mantle"},
      {6151.0, 6291.0, 8.1, "asthenosphere"},
      {6291.0, 6346.6, 6.8, "lid"},
      {6346.6, 6371.0, 5.8, "crust"},
  });
}

double EarthModel::velocity_at(double radius_km) const {
  LBS_CHECK_MSG(radius_km > 0.0 && radius_km <= surface_radius_km() + 1e-9,
                "radius outside the model");
  for (const auto& shell : shells_) {
    if (radius_km <= shell.outer_radius_km) return shell.velocity_km_s;
  }
  return shells_.back().velocity_km_s;
}

double EarthModel::slowness_radius(double radius_km) const {
  return radius_km / velocity_at(radius_km);
}

}  // namespace lbs::seismic
