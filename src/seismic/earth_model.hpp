// Layered spherical Earth velocity model.
//
// The paper's application [14] traces seismic ray paths through a global
// Earth mesh to build a velocity model. Our stand-in is a classic
// radially-symmetric shell model (a coarse PREM-like P-wave profile):
// enough physics that per-ray work is real numerical integration with a
// roughly constant cost per ray — the property that makes the workload's
// Tcomp linear in the number of rays, as the paper measures.
#pragma once

#include <string>
#include <vector>

namespace lbs::seismic {

inline constexpr double kEarthRadiusKm = 6371.0;

struct Shell {
  double inner_radius_km = 0.0;
  double outer_radius_km = 0.0;
  double velocity_km_s = 0.0;  // constant within the shell
  std::string name;
};

class EarthModel {
 public:
  // Shells must tile (0, surface] contiguously from the centre outward.
  explicit EarthModel(std::vector<Shell> shells);

  // A coarse PREM-like P-wave model (crust to inner core, 8 shells).
  static EarthModel prem_like();

  [[nodiscard]] const std::vector<Shell>& shells() const { return shells_; }
  [[nodiscard]] double surface_radius_km() const { return shells_.back().outer_radius_km; }

  // P-wave velocity at a radius (km); radius must lie in (0, surface].
  [[nodiscard]] double velocity_at(double radius_km) const;

  // Slowness radius u(r) = r / v(r), the quantity conserved along a ray
  // (Benndorf/Snell in spherical media: p = r sin(i) / v).
  [[nodiscard]] double slowness_radius(double radius_km) const;

 private:
  std::vector<Shell> shells_;  // ordered centre -> surface
};

}  // namespace lbs::seismic
