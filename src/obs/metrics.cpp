#include "obs/metrics.hpp"

#include <cmath>
#include <sstream>

#include "support/error.hpp"

namespace lbs::obs {

namespace {

// Bucket index for a non-negative sample: 0 for zero, otherwise the frexp
// exponent shifted into [1, kBuckets - 1].
int bucket_index(double sample) {
  if (sample <= 0.0) return 0;
  int exponent = 0;
  (void)std::frexp(sample, &exponent);       // sample = m * 2^exponent, m in [0.5, 1)
  exponent = std::max(-63, std::min(64, exponent));
  return exponent + 64;                      // [1, 128]
}

// Upper edge of bucket b (inverse of bucket_index).
double bucket_upper(int bucket) {
  if (bucket <= 0) return 0.0;
  return std::ldexp(1.0, bucket - 64);
}

void atomic_add(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double sample) {
  double current = target.load(std::memory_order_relaxed);
  while (sample < current &&
         !target.compare_exchange_weak(current, sample,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double sample) {
  double current = target.load(std::memory_order_relaxed);
  while (sample > current &&
         !target.compare_exchange_weak(current, sample,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::observe(double sample) {
  LBS_CHECK_MSG(sample >= 0.0, "histogram samples must be non-negative");
  buckets_[bucket_index(sample)].fetch_add(1, std::memory_order_relaxed);
  std::uint64_t seen = count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, sample);
  if (seen == 0) {
    // First sample initializes min/max; concurrent first samples still
    // converge through the CAS loops below.
    double zero = 0.0;
    min_.compare_exchange_strong(zero, sample, std::memory_order_relaxed);
  }
  atomic_min(min_, sample);
  atomic_max(max_, sample);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = snap.count == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

double Histogram::quantile(double q) const {
  LBS_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  std::uint64_t total = count_.load(std::memory_order_relaxed);
  if (total == 0) return 0.0;
  if (q <= 0.0) return min_.load(std::memory_order_relaxed);
  if (q >= 1.0) return max_.load(std::memory_order_relaxed);
  auto target = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total)));
  std::uint64_t cumulative = 0;
  for (int b = 0; b < kBuckets; ++b) {
    cumulative += buckets_[b].load(std::memory_order_relaxed);
    if (cumulative >= target) {
      return std::min(bucket_upper(b), max_.load(std::memory_order_relaxed));
    }
  }
  return max_.load(std::memory_order_relaxed);
}

Counter& Metrics::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& Metrics::histogram(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<Metrics::CounterView> Metrics::counters() const {
  std::lock_guard lock(mu_);
  std::vector<CounterView> views;
  views.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    views.push_back({name, counter->value()});
  }
  return views;
}

std::vector<Metrics::HistogramView> Metrics::histograms() const {
  std::lock_guard lock(mu_);
  std::vector<HistogramView> views;
  views.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    views.push_back({name, histogram->snapshot(), histogram->quantile(0.5),
                     histogram->quantile(0.99)});
  }
  return views;
}

std::string Metrics::text_snapshot() const {
  std::ostringstream out;
  for (const auto& view : counters()) {
    out << view.name << " " << view.value << '\n';
  }
  for (const auto& view : histograms()) {
    out << view.name << " count=" << view.stats.count << " sum=" << view.stats.sum
        << " mean=" << view.stats.mean() << " min=" << view.stats.min
        << " max=" << view.stats.max << " p50<=" << view.p50
        << " p99<=" << view.p99 << '\n';
  }
  return out.str();
}

std::string Metrics::json_snapshot() const {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& view : counters()) {
    if (!first) out << ',';
    first = false;
    out << '"' << view.name << "\":" << view.value;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& view : histograms()) {
    if (!first) out << ',';
    first = false;
    out << '"' << view.name << "\":{\"count\":" << view.stats.count
        << ",\"sum\":" << view.stats.sum << ",\"mean\":" << view.stats.mean()
        << ",\"min\":" << view.stats.min << ",\"max\":" << view.stats.max
        << ",\"p50\":" << view.p50 << ",\"p99\":" << view.p99 << '}';
  }
  out << "}}";
  return out.str();
}

Metrics& global_metrics() {
  static Metrics metrics;
  return metrics;
}

}  // namespace lbs::obs
