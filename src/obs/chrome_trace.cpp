#include "obs/chrome_trace.hpp"

#include <cstdlib>
#include <fstream>
#include <ostream>

#include "support/error.hpp"

namespace lbs::obs {

namespace {

constexpr int pid_for(Clock clock) {
  return clock == Clock::Wall ? 1 : 2;
}

constexpr int tid_for(const TraceEvent& event) {
  return event.rank >= 0 ? event.rank + 1 : 0;
}

long long to_us(double seconds) {
  return static_cast<long long>(seconds * 1e6);
}

void write_event(std::ostream& out, const TraceEvent& event, double epoch,
                 bool& first) {
  if (!first) out << ",\n";
  first = false;
  out << "{\"name\":\"" << to_string(event.type) << "\",\"cat\":\"lbs\""
      << ",\"pid\":" << pid_for(event.clock) << ",\"tid\":" << tid_for(event)
      << ",\"ts\":" << to_us(event.start - epoch);
  if (event.instant) {
    out << ",\"ph\":\"i\",\"s\":\"t\"";
  } else {
    out << ",\"ph\":\"X\",\"dur\":" << to_us(event.duration);
  }
  out << ",\"args\":{\"rank\":" << event.rank << ",\"peer\":" << event.peer
      << ",\"arg0\":" << event.arg0 << ",\"arg1\":" << event.arg1
      << ",\"arg2\":" << event.arg2 << "}}";
}

void write_metadata(std::ostream& out, int pid, int tid, const char* kind,
                    const std::string& name, bool& first) {
  if (!first) out << ",\n";
  first = false;
  out << "{\"name\":\"" << kind << "\",\"ph\":\"M\",\"pid\":" << pid;
  if (tid >= 0) out << ",\"tid\":" << tid;
  out << ",\"args\":{\"name\":\"" << name << "\"}}";
}

}  // namespace

void write_chrome_trace(std::ostream& out, const TraceLog& log) {
  // Re-anchor each clock domain so its earliest event is at t = 0 (wall
  // events otherwise sit at "seconds since process start", which Perfetto
  // renders as a huge empty prefix).
  double wall_epoch = 0.0;
  double virtual_epoch = 0.0;
  bool has_wall = false;
  bool has_virtual = false;
  for (const auto& event : log.events) {
    if (event.clock == Clock::Wall) {
      if (!has_wall || event.start < wall_epoch) wall_epoch = event.start;
      has_wall = true;
    } else {
      if (!has_virtual || event.start < virtual_epoch) virtual_epoch = event.start;
      has_virtual = true;
    }
  }

  out << "{\"traceEvents\":[\n";
  bool first = true;
  if (has_wall) {
    write_metadata(out, pid_for(Clock::Wall), -1, "process_name",
                   "wall clock (mq runtime / planner)", first);
    write_metadata(out, pid_for(Clock::Wall), 0, "thread_name", "planner", first);
  }
  if (has_virtual) {
    write_metadata(out, pid_for(Clock::Virtual), -1, "process_name",
                   "virtual time (gridsim)", first);
  }
  for (const auto& event : log.events) {
    double epoch = event.clock == Clock::Wall ? wall_epoch : virtual_epoch;
    write_event(out, event, epoch, first);
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void export_chrome_trace(const std::string& path, const TraceLog& log) {
  std::ofstream out(path);
  LBS_CHECK_MSG(out.good(), "cannot open trace output file: " + path);
  write_chrome_trace(out, log);
  LBS_CHECK_MSG(out.good(), "failed writing trace output file: " + path);
}

TraceExportGuard::TraceExportGuard() {
  const char* path = std::getenv("LBS_TRACE");
  if (path == nullptr || *path == '\0') return;
  path_ = path;
  tracer_.emplace();
  set_global_tracer(&*tracer_);
}

TraceExportGuard::~TraceExportGuard() {
  if (!tracer_) return;
  set_global_tracer(nullptr);
  TraceLog log = std::move(extra_);
  log.append(tracer_->collect());
  try {
    export_chrome_trace(path_, log);
  } catch (const Error&) {
    // Destructors must not throw; a failed export is not worth a crash.
  }
}

void TraceExportGuard::add(const TraceLog& log) {
  if (tracer_) extra_.append(log);
}

}  // namespace lbs::obs
