// Structured tracing: typed span/instant events from all three execution
// layers (planner, gridsim virtual time, mq wall clock).
//
// The paper's timing law (Eqs. 1-2) is a statement about *how* a scatter
// unfolds — the root's serialized sends, each processor's compute — not
// just about final makespans. obs::Tracer captures that structure as a
// stream of typed events cheap enough to leave on in production paths:
// recording is a write into a lock-free per-thread ring buffer (one
// atomic release-store per event, no locks, no allocation after the first
// event of a thread). Collection normalizes everything into an
// obs::TraceLog, which tests replay as a differential oracle
// (tests/trace_check.hpp) and tools export as Chrome trace_event JSON
// (obs/chrome_trace.hpp, loadable in chrome://tracing or Perfetto).
//
// Event taxonomy (docs/observability.md has the full contract):
//   scatter.plan     span     planner call: items, algorithm, fingerprint
//   dp.solve         span     one DP run: items, cells evaluated, threads
//   comm.send        span     sender's NIC occupied by one transfer
//   comm.recv        span     receiver blocked waiting for a message
//   compute          span     emulated/simulated compute phase
//   recovery.replan  instant  FT scatter re-planned the undelivered pool
//   rank.death       instant  FT scatter detected a dead receiver
//   cache.hit/miss   instant  plan-cache probe outcome
//   adaptive.drift   instant  predicted-vs-observed drift evaluation
//   adaptive.refit   span     cost model refitted from online samples
//
// Clock domains: Wall events carry real seconds (mq runtime, planner),
// Virtual events carry nominal simulator seconds (gridsim). A TraceLog
// can hold both; consumers filter by clock.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lbs::obs {

enum class EventType : std::uint8_t {
  ScatterPlan,     // span: one plan_scatter call
  DpSolve,         // span: one exact_dp/optimized_dp run
  CommSend,        // span: sender's port busy transferring to `peer`
  CommRecv,        // span: receiver blocked on a message from `peer`
  Compute,         // span: compute phase
  RecoveryReplan,  // instant: fault-tolerant scatter re-planned the pool
  RankDeath,       // instant: fault-tolerant scatter evicted a dead rank
  CacheHit,        // instant: plan-cache probe hit
  CacheMiss,       // instant: plan-cache probe missed
  ServiceRequest,  // span: one planning-service request, receipt to reply
  ServiceQueue,    // span: a solve waiting in the service's bounded queue
  ServiceBatch,    // span: one batch of solves fanned over the DP pool
  ServiceSnapshot, // span: one plan-cache snapshot write (or warm-start read)
  AdaptiveDrift,   // instant: one drift evaluation of observed vs Eq. 1 times
  AdaptiveRefit,   // span: cost model refitted from online timing samples
  ServiceMembership,  // span: a replica adopting a membership view (incl. pulls)
};

// Stable event name ("comm.send", "cache.hit", ...): the Chrome export's
// event name and the normalized summary's first token.
const char* to_string(EventType type);

enum class Clock : std::uint8_t {
  Wall,     // real seconds (mq runtime, planner)
  Virtual,  // nominal simulator seconds (gridsim)
};

// One fixed-size event. Spans have duration > 0 (or == 0 for degenerate
// spans recorded without pacing); instants always have duration == 0 and
// instant == true. Field meaning per type (see docs/observability.md):
//   ScatterPlan:    peer = processor count, arg0 = items,
//                   arg1 = algorithm (core::Algorithm), arg2 = folded
//                   platform cost fingerprint
//   DpSolve:        arg0 = items, arg1 = DP cells evaluated, arg2 = threads
//   CommSend/Recv:  rank = local rank, peer = remote rank, arg0 = bytes
//                   (mq) or items (gridsim), arg1 = 1 when the fault layer
//                   dropped the message in flight
//   Compute:        arg0 = items (when known)
//   RecoveryReplan: arg0 = items re-routed, arg1 = replan round
//   RankDeath:      rank = victim, arg0 = undelivered items
//   CacheHit/Miss:  arg0 = item count probed
//   ServiceRequest: arg0 = items, arg1 = outcome (service::PlanStatus),
//                   arg2 = 1 cache hit / 2 coalesced / 0 solved fresh
//   ServiceQueue:   arg0 = queue depth at enqueue, arg1 = items
//   ServiceBatch:   arg0 = batch size (solves fanned over the DP pool)
//   ServiceSnapshot: arg0 = entries, arg1 = bytes, arg2 = 0 write / 1 restore
//   AdaptiveDrift:  arg0 = drift in parts-per-million of the predicted
//                   makespan, arg1 = 1 when it crossed the threshold
//   AdaptiveRefit:  arg0 = processors whose costs changed, arg1 = platform
//                   version after the refit (0 is the construction model)
//   ServiceMembership: arg0 = adopted epoch, arg1 = member count,
//                   arg2 = warm-start entries pulled during the reshard
struct TraceEvent {
  EventType type = EventType::ScatterPlan;
  Clock clock = Clock::Wall;
  bool instant = false;
  int rank = -1;  // -1: no rank context (planner-side events)
  int peer = -1;
  double start = 0.0;     // seconds in this event's clock domain
  double duration = 0.0;  // 0 for instants
  long long arg0 = 0;
  long long arg1 = 0;
  long long arg2 = 0;

  [[nodiscard]] double end() const { return start + duration; }
};

// A normalized, queryable batch of collected events.
struct TraceLog {
  std::vector<TraceEvent> events;

  // Stable sort by (clock, start, rank, peer): deterministic for virtual
  // traces, deterministic up to wall-clock jitter otherwise.
  void sort();

  [[nodiscard]] std::vector<TraceEvent> of_type(EventType type) const;
  [[nodiscard]] std::vector<TraceEvent> of_rank(int rank) const;
  [[nodiscard]] std::vector<TraceEvent> of_clock(Clock clock) const;

  // Earliest start among events (0.0 when empty). Useful to re-anchor
  // wall-clock traces at the scatter's origin.
  [[nodiscard]] double min_start() const;

  // Schema-aware normalization for golden comparisons: one line per event
  //   <name> rank=<r> peer=<p> arg0=<a> arg1=<b>
  // ordered by (clock, rank, per-rank emission order) with every
  // timestamp dropped, so wall-clock jitter cannot perturb it while event
  // order and counts stay pinned. arg2 is omitted (it carries host-
  // dependent provenance such as thread counts and fingerprints).
  [[nodiscard]] std::string normalized_summary() const;

  void append(const TraceLog& other);
};

// Collects events from any number of threads. Each recording thread gets
// its own fixed-capacity ring; record() is wait-free for the owner thread
// (one release-store). When a ring fills before the next collect(), new
// events are dropped and counted (never silently).
//
// Lifetime: the Tracer must outlive every thread that records into it, or
// at least every record() call (collect() may run concurrently with
// recording; it only reads the published prefix of each ring).
class Tracer {
 public:
  // The default ring (~8k events, ~0.5 MiB) is sized for per-rank threads
  // and short-lived isend/irecv workers, each of which gets its own ring.
  explicit Tracer(std::size_t ring_capacity = std::size_t{1} << 13);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Wait-free on the recording thread (after its first event, which
  // registers the ring under a mutex).
  void record(const TraceEvent& event);

  // Drains every ring's unread events into a TraceLog (sorted). Safe to
  // call repeatedly; each event is returned exactly once.
  [[nodiscard]] TraceLog collect();

  // Events lost to full rings since construction.
  [[nodiscard]] std::uint64_t dropped() const;

  // Wall seconds since this tracer was constructed — the default clock
  // for planner-side spans.
  [[nodiscard]] double now() const;

 private:
  struct Ring;
  Ring* ring_for_this_thread();

  const std::size_t ring_capacity_;
  const std::uint64_t id_;  // process-unique; validates thread-local caches
  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<Ring>> rings_;
  double epoch_offset_ = 0.0;  // wall_now() at construction
};

// Process-wide wall clock shared by every instrumentation site: seconds
// since the first call (a steady clock, so spans from different modules
// land on one consistent axis).
double wall_now();

// Optional process-global tracer. Instrumented code paths that are not
// handed an explicit Tracer* (plan_scatter without options.tracer, a
// Runtime without options.tracer) fall back to this; nullptr (the
// default) disables them. Not owned.
void set_global_tracer(Tracer* tracer);
Tracer* global_tracer();

}  // namespace lbs::obs
