#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <sstream>

#include "support/error.hpp"

namespace lbs::obs {

namespace {

std::atomic<std::uint64_t> next_tracer_id{1};
std::atomic<Tracer*> g_tracer{nullptr};

// Thread-local cache mapping tracer ids to this thread's ring. Entries for
// destroyed tracers go stale but are never looked up again (ids are
// process-unique), so the dangling pointers are never dereferenced.
struct LocalRingEntry {
  std::uint64_t tracer_id = 0;
  void* ring = nullptr;
};
thread_local std::vector<LocalRingEntry> tls_rings;

std::chrono::steady_clock::time_point process_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

const char* to_string(EventType type) {
  switch (type) {
    case EventType::ScatterPlan: return "scatter.plan";
    case EventType::DpSolve: return "dp.solve";
    case EventType::CommSend: return "comm.send";
    case EventType::CommRecv: return "comm.recv";
    case EventType::Compute: return "compute";
    case EventType::RecoveryReplan: return "recovery.replan";
    case EventType::RankDeath: return "rank.death";
    case EventType::CacheHit: return "cache.hit";
    case EventType::CacheMiss: return "cache.miss";
    case EventType::ServiceRequest: return "service.request";
    case EventType::ServiceQueue: return "service.queue";
    case EventType::ServiceBatch: return "service.batch";
    case EventType::ServiceSnapshot: return "service.snapshot";
    case EventType::AdaptiveDrift: return "adaptive.drift";
    case EventType::AdaptiveRefit: return "adaptive.refit";
    case EventType::ServiceMembership: return "service.membership";
  }
  return "?";
}

double wall_now() {
  auto elapsed = std::chrono::steady_clock::now() - process_epoch();
  return std::chrono::duration<double>(elapsed).count();
}

// Single-writer ring: the owner thread writes slots_[head] then publishes
// with a release store; collect() acquires head and reads the published
// prefix. Slots are never overwritten once published (full ring = drop),
// which keeps the collect()-while-recording race TSan-clean.
struct Tracer::Ring {
  explicit Ring(std::size_t capacity) : slots(capacity) {}

  std::vector<TraceEvent> slots;
  std::atomic<std::uint64_t> head{0};     // published event count
  std::atomic<std::uint64_t> dropped{0};  // events lost to a full ring
  std::uint64_t collected = 0;            // read cursor (under registry_mu_)
};

Tracer::Tracer(std::size_t ring_capacity)
    : ring_capacity_(ring_capacity),
      id_(next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_offset_(wall_now()) {
  LBS_CHECK_MSG(ring_capacity >= 16, "tracer ring too small to be useful");
}

Tracer::~Tracer() {
  if (g_tracer.load(std::memory_order_acquire) == this) {
    set_global_tracer(nullptr);
  }
}

Tracer::Ring* Tracer::ring_for_this_thread() {
  for (const auto& entry : tls_rings) {
    if (entry.tracer_id == id_) return static_cast<Ring*>(entry.ring);
  }
  auto ring = std::make_unique<Ring>(ring_capacity_);
  Ring* raw = ring.get();
  {
    std::lock_guard lock(registry_mu_);
    rings_.push_back(std::move(ring));
  }
  tls_rings.push_back({id_, raw});
  return raw;
}

void Tracer::record(const TraceEvent& event) {
  Ring* ring = ring_for_this_thread();
  std::uint64_t head = ring->head.load(std::memory_order_relaxed);
  if (head >= ring->slots.size()) {
    ring->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ring->slots[static_cast<std::size_t>(head)] = event;
  ring->head.store(head + 1, std::memory_order_release);
}

TraceLog Tracer::collect() {
  TraceLog log;
  std::lock_guard lock(registry_mu_);
  for (auto& ring : rings_) {
    std::uint64_t head = ring->head.load(std::memory_order_acquire);
    for (std::uint64_t i = ring->collected; i < head; ++i) {
      log.events.push_back(ring->slots[static_cast<std::size_t>(i)]);
    }
    ring->collected = head;
  }
  log.sort();
  return log;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t total = 0;
  std::lock_guard lock(registry_mu_);
  for (const auto& ring : rings_) {
    total += ring->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

double Tracer::now() const {
  return wall_now() - epoch_offset_;
}

void set_global_tracer(Tracer* tracer) {
  g_tracer.store(tracer, std::memory_order_release);
}

Tracer* global_tracer() {
  return g_tracer.load(std::memory_order_acquire);
}

void TraceLog::sort() {
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.clock != b.clock) return a.clock < b.clock;
                     if (a.start != b.start) return a.start < b.start;
                     if (a.rank != b.rank) return a.rank < b.rank;
                     return a.peer < b.peer;
                   });
}

std::vector<TraceEvent> TraceLog::of_type(EventType type) const {
  std::vector<TraceEvent> matched;
  for (const auto& event : events) {
    if (event.type == type) matched.push_back(event);
  }
  return matched;
}

std::vector<TraceEvent> TraceLog::of_rank(int rank) const {
  std::vector<TraceEvent> matched;
  for (const auto& event : events) {
    if (event.rank == rank) matched.push_back(event);
  }
  return matched;
}

std::vector<TraceEvent> TraceLog::of_clock(Clock clock) const {
  std::vector<TraceEvent> matched;
  for (const auto& event : events) {
    if (event.clock == clock) matched.push_back(event);
  }
  return matched;
}

double TraceLog::min_start() const {
  double earliest = 0.0;
  bool first = true;
  for (const auto& event : events) {
    if (first || event.start < earliest) earliest = event.start;
    first = false;
  }
  return earliest;
}

std::string TraceLog::normalized_summary() const {
  // Group by (clock, rank), keep per-group order by start time: the
  // per-rank event sequence is deterministic even when cross-rank wall
  // timing is not.
  std::vector<const TraceEvent*> ordered;
  ordered.reserve(events.size());
  for (const auto& event : events) ordered.push_back(&event);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     if (a->clock != b->clock) return a->clock < b->clock;
                     if (a->rank != b->rank) return a->rank < b->rank;
                     return a->start < b->start;
                   });
  std::ostringstream out;
  for (const TraceEvent* event : ordered) {
    out << to_string(event->type) << " rank=" << event->rank
        << " peer=" << event->peer << " arg0=" << event->arg0
        << " arg1=" << event->arg1 << '\n';
  }
  return out.str();
}

void TraceLog::append(const TraceLog& other) {
  events.insert(events.end(), other.events.begin(), other.events.end());
  sort();
}

}  // namespace lbs::obs
