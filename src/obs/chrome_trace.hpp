// Chrome trace_event JSON export for obs::TraceLog.
//
// The emitted file is the JSON-array-of-objects "traceEvents" format that
// chrome://tracing and Perfetto (ui.perfetto.dev) load directly. Spans
// become complete ("ph":"X") events, instants become thread-scoped
// ("ph":"i") events. Clock domains map to processes (pid 1 = wall clock,
// pid 2 = virtual time) and ranks to threads (tid = rank + 1; planner
// events with no rank land on tid 0), with metadata records naming both.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "obs/trace.hpp"

namespace lbs::obs {

// Writes the log as Chrome trace JSON. Timestamps are microseconds,
// re-anchored so the earliest event of each clock domain sits at t = 0.
void write_chrome_trace(std::ostream& out, const TraceLog& log);

// Convenience: write_chrome_trace to `path`. Throws lbs::Error when the
// file cannot be opened.
void export_chrome_trace(const std::string& path, const TraceLog& log);

// RAII hook for examples and applications: when the LBS_TRACE environment
// variable names a file, construction installs a process-global Tracer
// (obs::set_global_tracer) and destruction collects it and writes the
// Chrome trace there. With LBS_TRACE unset this is a no-op.
class TraceExportGuard {
 public:
  TraceExportGuard();
  ~TraceExportGuard();

  TraceExportGuard(const TraceExportGuard&) = delete;
  TraceExportGuard& operator=(const TraceExportGuard&) = delete;

  [[nodiscard]] bool active() const { return tracer_.has_value(); }
  [[nodiscard]] const std::string& path() const { return path_; }

  // Merged into the export in front of the tracer's own events (e.g. a
  // gridsim virtual-time trace to show next to the wall-clock one).
  void add(const TraceLog& log);

 private:
  std::string path_;
  std::optional<Tracer> tracer_;
  TraceLog extra_;
};

}  // namespace lbs::obs
