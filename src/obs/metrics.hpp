// Metrics: named counters and histograms with a text/JSON snapshot API.
//
// Counters are monotonically increasing 64-bit atomics (bytes per link,
// plan-cache hits, DP cells evaluated). Histograms record non-negative
// double samples (seconds, bytes) into base-2 exponent buckets plus exact
// count/sum/min/max — enough for occupancy and latency distributions
// without per-sample allocation.
//
// Hot paths cache the Counter&/Histogram& returned by the registry (name
// lookup takes a mutex; updates afterwards are lock-free atomics).
// Registered objects live as long as the Metrics instance.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lbs::obs {

class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Histogram {
 public:
  // Buckets by binary exponent: bucket b counts samples in [2^(b-63), ...)
  // relative to 1.0, i.e. frexp exponent clamped to [-63, 64]. Bucket 0
  // additionally holds exact zeros.
  static constexpr int kBuckets = 129;

  void observe(double sample);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  // 0 when count == 0
    double max = 0.0;
    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  };
  [[nodiscard]] Snapshot snapshot() const;

  // Upper-bound estimate of the q-quantile (q in [0, 1]) from the bucket
  // boundaries; exact min/max at the ends.
  [[nodiscard]] double quantile(double q) const;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  // sum/min/max via CAS loops: contention is per-histogram and updates are
  // rare next to the work being measured.
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

class Metrics {
 public:
  Metrics() = default;
  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  // Finds or creates; the reference stays valid for the Metrics' lifetime.
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);

  struct CounterView {
    std::string name;
    std::uint64_t value = 0;
  };
  struct HistogramView {
    std::string name;
    Histogram::Snapshot stats;
    double p50 = 0.0;
    double p99 = 0.0;
  };
  [[nodiscard]] std::vector<CounterView> counters() const;
  [[nodiscard]] std::vector<HistogramView> histograms() const;

  // Human-readable snapshot, one metric per line, sorted by name.
  [[nodiscard]] std::string text_snapshot() const;
  // JSON object {"counters": {...}, "histograms": {...}}.
  [[nodiscard]] std::string json_snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Process-global registry for code that is not handed an explicit
// Metrics*. Never null; lives for the process.
Metrics& global_metrics();

}  // namespace lbs::obs
