// LRU caching of scatter plans.
//
// plan_scatter is a pure function of (platform costs, n, algorithm), and
// production traffic repeats it: recovery replanning re-plans the same
// survivor sets on every scatter, root-selection sweeps re-plan the same
// platform rotated p ways, and hierarchical scatter re-plans each site.
// The caches here memoize those calls behind an exact structural key —
// the per-processor cost fingerprints (model::Cost::fingerprint) plus the
// item count and the requested algorithm — so a repeat plan is a mutex
// acquisition and a hash lookup instead of an O(p n) (or worse) DP.
//
// Processor labels and machine refs are deliberately *not* part of the
// key: two platforms with identical cost structure get identical plans.
// Entries are full ScatterPlans (O(p) memory each), evicted
// least-recently-used beyond capacity.
//
// Two implementations share the PlanCacheBase interface the planner
// consumes (PlannerOptions::cache):
//   - PlanCache: one LRU list under one mutex. Right for single-threaded
//     callers and per-owner caches (recovery replanners).
//   - ShardedPlanCache (sharded_plan_cache.hpp): N lock-striped LRU
//     shards for many concurrent callers — the planning service's hot
//     path. Identical results, the same keys, per-shard locking.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/planner.hpp"
#include "model/platform.hpp"

namespace lbs::obs {
class Counter;
class Metrics;
class Tracer;
}

namespace lbs::core {

// Structural identity of one plan request. Shared by every cache
// implementation and by the planning service's request-coalescing map, so
// "same key" means the same thing at every layer.
struct PlanKey {
  std::vector<std::uint64_t> costs;  // per-processor folded cost fingerprints
  long long items = 0;
  Algorithm algorithm = Algorithm::Auto;

  friend bool operator==(const PlanKey&, const PlanKey&) = default;
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& key) const;
};

// Builds the key for (platform, items, algorithm): one fingerprint per
// processor folding Tcomm and Tcomp, plus the scalars.
PlanKey make_plan_key(const model::Platform& platform, long long items,
                      Algorithm algorithm);

// What the planner needs from a cache: probe and fill. `algorithm` is the
// *requested* algorithm (Auto resolves deterministically from the costs,
// so it is a sound key component).
class PlanCacheBase {
 public:
  virtual ~PlanCacheBase() = default;

  [[nodiscard]] virtual std::optional<ScatterPlan> lookup(
      const model::Platform& platform, long long items, Algorithm algorithm) = 0;
  virtual void insert(const model::Platform& platform, long long items,
                      Algorithm algorithm, const ScatterPlan& plan) = 0;
};

class PlanCache : public PlanCacheBase {
 public:
  explicit PlanCache(std::size_t capacity = 128);

  // Structural identity of a platform as the planner sees it: one
  // fingerprint per processor folding Tcomm and Tcomp.
  static std::vector<std::uint64_t> fingerprint(const model::Platform& platform);

  [[nodiscard]] std::optional<ScatterPlan> lookup(const model::Platform& platform,
                                                  long long items,
                                                  Algorithm algorithm) override;
  void insert(const model::Platform& platform, long long items,
              Algorithm algorithm, const ScatterPlan& plan) override;

  // Lookup-or-plan convenience: plan_scatter with this cache attached.
  ScatterPlan plan(const model::Platform& platform, long long items,
                   Algorithm algorithm = Algorithm::Auto,
                   const DpOptions& dp = {});

  // Observability hooks; call during setup, before concurrent use. A null
  // tracer falls back to obs::global_tracer(): every probe then emits a
  // cache.hit / cache.miss instant (arg0 = items probed). set_metrics
  // binds the "plan_cache.hits" / "plan_cache.misses" /
  // "plan_cache.evictions" counters in `metrics` (resolved once here, so
  // probes stay a couple of atomic adds).
  void set_tracer(obs::Tracer* tracer);
  void set_metrics(obs::Metrics* metrics);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  void clear();

 private:
  struct Entry {
    PlanKey key;
    ScatterPlan plan;
  };

  void record_probe(bool hit, long long items);

  std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<PlanKey, std::list<Entry>::iterator, PlanKeyHash> index_;
  Stats stats_;
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* hits_counter_ = nullptr;
  obs::Counter* misses_counter_ = nullptr;
  obs::Counter* evictions_counter_ = nullptr;
};

}  // namespace lbs::core
