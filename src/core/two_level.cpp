#include "core/two_level.hpp"

#include <algorithm>
#include <map>

#include "core/closed_form.hpp"
#include "core/ordering.hpp"
#include "support/error.hpp"

namespace lbs::core {

namespace {

// Intra-site platform rooted at the coordinator: members ordered by
// descending bandwidth *from the coordinator*, coordinator's CPUs last
// (its first CPU is the local root).
model::Platform site_platform(const model::Grid& grid,
                              const std::vector<int>& machines, int coordinator) {
  std::vector<model::ProcessorRef> order;
  // Non-coordinator processors, sorted by link slope from the coordinator.
  std::vector<int> others;
  for (int m : machines) {
    if (m != coordinator) others.push_back(m);
  }
  std::stable_sort(others.begin(), others.end(), [&](int a, int b) {
    return grid.link(coordinator, a).per_item_slope() <
           grid.link(coordinator, b).per_item_slope();
  });
  for (int m : others) {
    for (int cpu = 0; cpu < grid.machine(m).cpu_count; ++cpu) {
      order.push_back({m, cpu});
    }
  }
  // Coordinator's extra CPUs (beyond cpu 0, the local root) join the
  // workers with zero comm cost — put them first (free bandwidth).
  std::vector<model::ProcessorRef> co_cpus;
  for (int cpu = 1; cpu < grid.machine(coordinator).cpu_count; ++cpu) {
    co_cpus.push_back({coordinator, cpu});
  }
  order.insert(order.begin(), co_cpus.begin(), co_cpus.end());
  return make_platform(grid, {coordinator, 0}, order);
}

}  // namespace

TwoLevelPlan plan_two_level(const model::Grid& grid, model::ProcessorRef root,
                            long long items) {
  LBS_CHECK_MSG(items >= 0, "negative item count");

  // Group machines by site label.
  std::map<std::string, std::vector<int>> machines_by_site;
  for (std::size_t m = 0; m < grid.machines().size(); ++m) {
    const auto& machine = grid.machine(static_cast<int>(m));
    LBS_CHECK_MSG(!machine.site.empty(),
                  "two-level planning needs a site label on every machine");
    machines_by_site[machine.site].push_back(static_cast<int>(m));
  }
  const std::string root_site = grid.machine(root.machine).site;

  // Build each site's inner platform and its virtual-processor costs.
  struct VirtualSite {
    std::string name;
    int coordinator = -1;
    model::Platform platform;
    double d_eff;       // inner makespan per item (linear: t = n * d_eff)
    model::Cost wan;    // root machine -> coordinator transfer cost
  };
  std::vector<VirtualSite> remote;
  VirtualSite root_virtual;
  for (auto& [site, machines] : machines_by_site) {
    int coordinator;
    if (site == root_site) {
      coordinator = root.machine;
    } else {
      // Fastest WAN link from the root's machine.
      coordinator = machines.front();
      for (int m : machines) {
        if (grid.link(root.machine, m).per_item_slope() <
            grid.link(root.machine, coordinator).per_item_slope()) {
          coordinator = m;
        }
      }
    }
    VirtualSite virtual_site;
    virtual_site.name = site;
    virtual_site.coordinator = coordinator;
    virtual_site.platform = site_platform(grid, machines, coordinator);
    // Inner per-item duration via the closed form (with Theorem 2's
    // elimination folded in): linear costs make it exactly n * d_eff.
    virtual_site.d_eff = solve_linear(virtual_site.platform, 1).duration;
    virtual_site.wan = site == root_site ? model::Cost::zero()
                                         : grid.link(root.machine, coordinator);
    if (site == root_site) {
      root_virtual = std::move(virtual_site);
    } else {
      remote.push_back(std::move(virtual_site));
    }
  }

  // Outer platform: remote sites by descending WAN bandwidth, root site
  // last (the paper's convention, one level up).
  std::stable_sort(remote.begin(), remote.end(),
                   [](const VirtualSite& a, const VirtualSite& b) {
                     return a.wan.per_item_slope() < b.wan.per_item_slope();
                   });
  model::Platform outer;
  for (const auto& site : remote) {
    model::Processor p;
    p.label = site.name;
    p.comm = site.wan;
    p.comp = model::Cost::linear(site.d_eff);
    outer.processors.push_back(p);
  }
  {
    model::Processor p;
    p.label = root_virtual.name;
    p.comm = model::Cost::zero();
    p.comp = model::Cost::linear(root_virtual.d_eff);
    outer.processors.push_back(p);
  }

  auto outer_plan = plan_scatter(outer, items);

  // Inner plans, and the exact composed makespan: site i's aggregate
  // finishes arriving at the outer comm-window end; its processors then
  // realize the inner plan's finish times.
  TwoLevelPlan result;
  auto windows = comm_windows(outer, outer_plan.distribution);
  std::vector<const VirtualSite*> in_order;
  for (const auto& site : remote) in_order.push_back(&site);
  in_order.push_back(&root_virtual);

  for (std::size_t i = 0; i < in_order.size(); ++i) {
    const VirtualSite& virtual_site = *in_order[i];
    SitePlan site_plan;
    site_plan.site = virtual_site.name;
    site_plan.coordinator = {virtual_site.coordinator, 0};
    site_plan.items = outer_plan.distribution.counts[i];
    site_plan.platform = virtual_site.platform;
    site_plan.plan = plan_scatter(virtual_site.platform, site_plan.items);

    double arrival = windows.end[i];
    double site_finish = arrival + site_plan.plan.predicted_makespan;
    result.predicted_makespan = std::max(result.predicted_makespan, site_finish);

    for (int p = 0; p < site_plan.platform.size(); ++p) {
      result.counts.emplace_back(
          site_plan.platform[p].ref,
          site_plan.plan.distribution.counts[static_cast<std::size_t>(p)]);
    }
    result.sites.push_back(std::move(site_plan));
  }
  return result;
}

double flat_plan_makespan(const model::Grid& grid, model::ProcessorRef root,
                          long long items) {
  auto platform = ordered_platform(grid, root, OrderingPolicy::DescendingBandwidth);
  return plan_scatter(platform, items).predicted_makespan;
}

}  // namespace lbs::core
