#include "core/recovery.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "core/plan_cache.hpp"
#include "support/error.hpp"

namespace lbs::core {

model::Platform reduce_platform(const model::Platform& platform,
                                const std::vector<int>& positions) {
  LBS_CHECK_MSG(!positions.empty(), "reduced platform needs processors");
  std::vector<char> seen(static_cast<std::size_t>(platform.size()), 0);
  model::Platform reduced;
  reduced.processors.reserve(positions.size());
  for (int position : positions) {
    LBS_CHECK_MSG(position >= 0 && position < platform.size(),
                  "reduced platform references unknown processor");
    auto& flag = seen[static_cast<std::size_t>(position)];
    LBS_CHECK_MSG(!flag, "reduced platform repeats a processor");
    flag = 1;
    reduced.processors.push_back(platform[position]);
  }
  return reduced;
}

std::function<std::vector<long long>(const std::vector<int>&, long long)>
make_ft_replanner(model::Platform platform, Algorithm algorithm) {
  LBS_CHECK_MSG(platform.size() >= 1, "empty platform");
  return make_ft_replanner(
      [platform = std::move(platform)] { return platform; }, algorithm);
}

std::function<std::vector<long long>(const std::vector<int>&, long long)>
make_ft_replanner(PlatformProvider provider, Algorithm algorithm,
                  std::shared_ptr<PlanCache> cache) {
  LBS_CHECK_MSG(provider != nullptr, "null platform provider");
  // Recovery traffic repeats itself: every scatter under the same fault
  // pattern re-plans the same survivor sets for the same remainders, so
  // each replanner carries a small plan cache keyed on the reduced
  // platform's cost structure. Because the key is the cost fingerprints,
  // a provider that hands back refreshed costs misses cleanly instead of
  // being served a plan for the old model.
  if (cache == nullptr) cache = std::make_shared<PlanCache>(64);
  return [provider = std::move(provider), algorithm, cache](
             const std::vector<int>& alive, long long items) {
    auto platform = provider();
    LBS_CHECK_MSG(platform.size() >= 1, "empty platform");
    auto reduced = reduce_platform(platform, alive);
    auto plan = cache->plan(reduced, items, algorithm);
    return plan.distribution.counts;
  };
}

}  // namespace lbs::core
