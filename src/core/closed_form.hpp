// Closed-form rational solutions for the linear case (paper Section 4).
//
// With Tcomm(i,n) = β_i·n and Tcomp(i,n) = α_i·n, Theorem 1 gives the
// execution duration t = n · D(P_1..P_p) where
//
//   D(P_1..P_p) = 1 / sum_i [ 1/(α_i+β_i) · prod_{j<i} α_j/(α_j+β_j) ]
//
// and shares n_i = t/(α_i+β_i) · prod_{j<i} α_j/(α_j+β_j) (Eq. 8), valid
// when every processor receives work and all finish simultaneously, which
// Theorem 2 characterizes: β_i <= D(P_{i+1}..P_p) for all i. Processors
// violating the condition "are not interesting for our problem": they
// receive nothing and are skipped.
//
// Two implementations: doubles for production, exact rationals for tests
// (so "all finish at the same date" is an equality, not an epsilon).
#pragma once

#include <span>
#include <vector>

#include "core/distribution.hpp"
#include "model/platform.hpp"
#include "support/rational.hpp"

namespace lbs::core {

// α_i/β_i extracted from a platform whose costs are all linear
// (affine with zero fixed term). Throws otherwise.
struct LinearCoefficients {
  std::vector<double> alpha;
  std::vector<double> beta;
};
LinearCoefficients linear_coefficients(const model::Platform& platform);

// D(P_1..P_p) over the given coefficient arrays (all processors used).
double closed_form_duration_factor(std::span<const double> alpha,
                                   std::span<const double> beta);

// The rational (fractional-share) optimum for the linear case, with
// Theorem 2's elimination applied right-to-left.
struct RationalSolution {
  std::vector<double> share;   // n_i, fractional; 0 for eliminated processors
  std::vector<bool> active;    // share > 0 possible (Theorem 2 condition held)
  double duration = 0.0;       // t: common finish time of active processors
};
RationalSolution solve_linear(std::span<const double> alpha,
                              std::span<const double> beta, double items);
RationalSolution solve_linear(const model::Platform& platform, long long items);

// Independent lower bounds on the makespan achievable by any *integer*
// distribution under *linear* costs, used as optimality certificates in
// tests and benches (any claimed integer optimum must lie at or above
// every bound; the single-item term can exceed the fractional optimum for
// tiny n, so this does not bound rational solutions):
//   - work conservation: even with free communication,
//     t >= n / sum_i (1/alpha_i);
//   - root egress: every item not computed at the root crosses its port,
//     and the root can absorb at most t/alpha_root items by itself, so
//     t >= (n - t/alpha_root) * beta_min  =>
//     t >= n * beta_min * alpha_root / (alpha_root + beta_min);
//   - single item: t >= min_i (Tcomm(i,1) + Tcomp(i,1)) when n >= 1.
double makespan_lower_bound(const model::Platform& platform, long long items);

// Exact counterpart on rationals, for tests and proofs-by-execution.
struct ExactRationalSolution {
  std::vector<support::Rational> share;
  std::vector<bool> active;
  support::Rational duration;
};
ExactRationalSolution solve_linear_exact(std::span<const support::Rational> alpha,
                                         std::span<const support::Rational> beta,
                                         const support::Rational& items);

}  // namespace lbs::core
