#include "core/installments.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace lbs::core {

double installment_makespan(const model::Platform& platform,
                            const Distribution& distribution, int installments) {
  LBS_CHECK_MSG(installments >= 1, "need at least one installment");
  LBS_CHECK_MSG(distribution.size() == platform.size(),
                "distribution/platform size mismatch");

  int p = platform.size();
  auto k = static_cast<long long>(installments);

  // Chunk sizes per processor: first (n_i mod k) chunks get one extra.
  auto chunk_size = [&](int proc, long long round) {
    long long n_i = distribution.counts[static_cast<std::size_t>(proc)];
    long long base = n_i / k;
    long long extra = n_i % k;
    return base + (round < extra ? 1 : 0);
  };

  double port_time = 0.0;  // the root's single port
  std::vector<double> compute_free(static_cast<std::size_t>(p), 0.0);
  for (long long round = 0; round < k; ++round) {
    for (int i = 0; i < p; ++i) {
      long long chunk = chunk_size(i, round);
      if (chunk == 0) continue;
      port_time += platform[i].comm(chunk);  // serialized, in turn
      double start = std::max(port_time, compute_free[static_cast<std::size_t>(i)]);
      compute_free[static_cast<std::size_t>(i)] = start + platform[i].comp(chunk);
    }
  }
  double makespan = 0.0;
  for (double t : compute_free) makespan = std::max(makespan, t);
  return makespan;
}

InstallmentSweep sweep_installments(const model::Platform& platform,
                                    const Distribution& distribution,
                                    int max_installments) {
  LBS_CHECK_MSG(max_installments >= 1, "need at least one installment");
  InstallmentSweep sweep;
  sweep.best_makespan = installment_makespan(platform, distribution, 1);
  sweep.best_installments = 1;
  sweep.makespans.emplace_back(1, sweep.best_makespan);
  for (int k = 2; k <= max_installments; ++k) {
    double makespan = installment_makespan(platform, distribution, k);
    sweep.makespans.emplace_back(k, makespan);
    if (makespan < sweep.best_makespan) {
      sweep.best_makespan = makespan;
      sweep.best_installments = k;
    }
  }
  return sweep;
}

}  // namespace lbs::core
