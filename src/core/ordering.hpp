// Processor ordering policies (paper Section 4.3 / 4.4).
//
// Under the single-port model the completion time is *not* symmetric in
// the processors. Theorem 3: in the linear case the optimal order serves
// processors by decreasing bandwidth to the root (increasing β), root
// last; and with the rounding scheme this policy is guaranteed in the
// linear case (Section 4.4). The ascending order is implemented too — the
// paper's Figure 4 measures exactly that policy inversion — plus the raw
// grid order (what a programmer gets by default from MPI ranks) and an
// exhaustive search for small p used to validate Theorem 3.
#pragma once

#include <functional>
#include <vector>

#include "model/platform.hpp"
#include "support/rng.hpp"

namespace lbs::core {

enum class OrderingPolicy {
  DescendingBandwidth,  // the paper's policy (Theorem 3)
  AscendingBandwidth,   // the adversarial inverse (Figure 4)
  GridOrder,            // machines as declared; no reordering
  Random,               // a uniformly random shuffle
};

// Non-root processors in scatter order (the root is appended last by
// make_platform). Bandwidth ties break by grid order, so results are
// deterministic. `rng` is only used by OrderingPolicy::Random.
std::vector<model::ProcessorRef> order_processors(const model::Grid& grid,
                                                  model::ProcessorRef root,
                                                  OrderingPolicy policy,
                                                  support::Rng* rng = nullptr);

// Convenience: ordered platform in one call.
model::Platform ordered_platform(const model::Grid& grid, model::ProcessorRef root,
                                 OrderingPolicy policy, support::Rng* rng = nullptr);

// Exhaustive validation helper: tries every permutation of the non-root
// processors (p - 1 <= 9 enforced), evaluating each ordered platform with
// `evaluate` (which returns the predicted makespan), and returns the best.
struct OrderingSearchResult {
  std::vector<model::ProcessorRef> order;  // best non-root order found
  double cost = 0.0;
  long long permutations_tried = 0;
};
OrderingSearchResult exhaustive_best_ordering(
    const model::Grid& grid, model::ProcessorRef root,
    const std::function<double(const model::Platform&)>& evaluate);

}  // namespace lbs::core
