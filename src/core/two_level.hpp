// Two-level (topology-aware) scatter planning.
//
// The paper's framework composes with itself: a whole *site* behaves like
// one virtual processor whose Tcomm is the WAN transfer of its aggregate
// and whose Tcomp is the site's own internal scatter+compute makespan —
// which, for linear intra-site costs, is itself linear in the items
// assigned (Theorem 1: t = n · D_site). So the outer problem (root + one
// virtual processor per remote site) is again an instance of the paper's
// problem, solvable by plan_scatter; each site's share is then planned
// internally the same way, rooted at the site coordinator. This is the
// planning companion of mq/hier_scatter.hpp, and the quantitative answer
// to "when should a grid code scatter through site coordinators?"
//
// Requirements: every machine carries a non-empty `site` label, intra-
// site cost functions are linear (the closed form prices the virtual
// processors), and WAN links (root machine <-> coordinator machines) may
// be affine — their fixed term (per-message latency) is precisely what
// makes two-level routing win.
#pragma once

#include <string>
#include <vector>

#include "core/planner.hpp"
#include "model/platform.hpp"

namespace lbs::core {

struct SitePlan {
  std::string site;
  model::ProcessorRef coordinator;     // receives the site aggregate
  long long items = 0;                 // site aggregate size
  model::Platform platform;            // intra-site, coordinator last
  ScatterPlan plan;                    // inner distribution of `items`
};

struct TwoLevelPlan {
  std::vector<SitePlan> sites;         // outer scatter order; root site last
  double predicted_makespan = 0.0;     // exact per Eqs. 1-2 composition
  // Per-processor counts flattened across sites (order: sites in outer
  // order, processors in each site's inner order).
  std::vector<std::pair<model::ProcessorRef, long long>> counts;
};

// Plans a two-level scatter of `items` rooted at `root` (which must be on
// the grid's data-home side of the WAN only in the sense that transfers
// are priced from its machine). Coordinators are chosen per site as the
// machine with the fastest link from the root's machine. Throws
// lbs::Error if a machine has an empty site label or intra-site costs are
// not linear.
TwoLevelPlan plan_two_level(const model::Grid& grid, model::ProcessorRef root,
                            long long items);

// The flat baseline's makespan on the same grid (descending-bandwidth
// ordering), for comparisons.
double flat_plan_makespan(const model::Grid& grid, model::ProcessorRef root,
                          long long items);

}  // namespace lbs::core
