#include "core/closed_form.hpp"

#include <algorithm>
#include <limits>

#include "support/error.hpp"

namespace lbs::core {

using support::Rational;

LinearCoefficients linear_coefficients(const model::Platform& platform) {
  LinearCoefficients coeffs;
  for (int i = 0; i < platform.size(); ++i) {
    auto comm = platform[i].comm.affine();
    auto comp = platform[i].comp.affine();
    LBS_CHECK_MSG(comm && comp && comm->fixed == 0.0 && comp->fixed == 0.0,
                  "linear closed form requires linear cost functions");
    coeffs.beta.push_back(comm->per_item);
    coeffs.alpha.push_back(comp->per_item);
  }
  return coeffs;
}

// Generic over double / Rational: the suffix accumulation
//   S_p = 1/(α_p+β_p),  S_i = (1 + α_i·S_{i+1}) / (α_i+β_i)
// yields D(P_i..P_p) = 1/S_i; Theorem 2's condition for P_i to receive
// work, β_i <= D(P_{i+1}..P_p), is β_i·S_{i+1} <= 1. Eliminated
// processors contribute nothing downstream (S unchanged).
//
// (Derivation from Eq. 1 with simultaneous endings: T_i = T_{i-1} gives
// n_i = α_{i-1}·n_{i-1} / (α_i+β_i), hence the α_j/(α_j+β_j) prefix
// products; sanity check: with β = 0 and equal α this yields t = n·α/p.)
namespace {

template <typename Number>
struct ChainResult {
  std::vector<Number> share;
  std::vector<bool> active;
  Number duration;
};

template <typename Number>
ChainResult<Number> solve_chain(std::span<const Number> alpha,
                                std::span<const Number> beta, const Number& items) {
  std::size_t p = alpha.size();
  LBS_CHECK(p == beta.size());
  LBS_CHECK_MSG(p >= 1, "empty platform");
  for (std::size_t i = 0; i < p; ++i) {
    LBS_CHECK_MSG(alpha[i] > Number(0), "closed form requires positive compute cost");
    LBS_CHECK_MSG(!(beta[i] < Number(0)), "negative communication cost");
  }

  ChainResult<Number> result;
  result.active.assign(p, false);
  result.share.assign(p, Number(0));

  // Right-to-left: S over the *active* suffix.
  std::vector<Number> suffix(p + 1, Number(0));  // suffix[i] = S over active P_i..P_p
  result.active[p - 1] = true;  // the root always works (β_p is typically 0)
  suffix[p - 1] = (Number(1)) / (alpha[p - 1] + beta[p - 1]);
  for (std::size_t idx = p - 1; idx-- > 0;) {
    if (beta[idx] * suffix[idx + 1] <= Number(1)) {
      result.active[idx] = true;
      suffix[idx] = (Number(1) + alpha[idx] * suffix[idx + 1]) / (alpha[idx] + beta[idx]);
    } else {
      result.active[idx] = false;
      suffix[idx] = suffix[idx + 1];
    }
  }

  // t = n / S_1; shares left-to-right per Eq. 8, restricted to active
  // processors (prefix factor only accumulates over active ones).
  result.duration = items / suffix[0];
  Number prefix = Number(1);
  for (std::size_t i = 0; i < p; ++i) {
    if (!result.active[i]) continue;
    result.share[i] = result.duration * prefix / (alpha[i] + beta[i]);
    prefix = prefix * (alpha[i] / (alpha[i] + beta[i]));
  }
  return result;
}

}  // namespace

double closed_form_duration_factor(std::span<const double> alpha,
                                   std::span<const double> beta) {
  std::size_t p = alpha.size();
  LBS_CHECK(p == beta.size() && p >= 1);
  // D = 1 / sum_i [ 1/(α_i+β_i) · prod_{j<i} α_j/(α_j+β_j) ].
  double sum = 0.0;
  double prefix = 1.0;
  for (std::size_t i = 0; i < p; ++i) {
    double denom = alpha[i] + beta[i];
    LBS_CHECK_MSG(denom > 0.0, "processor with zero total cost");
    sum += prefix / denom;
    prefix *= alpha[i] / denom;
  }
  return 1.0 / sum;
}

RationalSolution solve_linear(std::span<const double> alpha,
                              std::span<const double> beta, double items) {
  auto chain = solve_chain<double>(alpha, beta, items);
  RationalSolution solution;
  solution.share = std::move(chain.share);
  solution.active = std::move(chain.active);
  solution.duration = chain.duration;
  return solution;
}

RationalSolution solve_linear(const model::Platform& platform, long long items) {
  auto coeffs = linear_coefficients(platform);
  return solve_linear(coeffs.alpha, coeffs.beta, static_cast<double>(items));
}

double makespan_lower_bound(const model::Platform& platform, long long items) {
  auto coeffs = linear_coefficients(platform);
  std::size_t p = coeffs.alpha.size();
  if (items == 0) return 0.0;
  double n = static_cast<double>(items);

  // Work conservation.
  double throughput = 0.0;
  for (double alpha : coeffs.alpha) throughput += 1.0 / alpha;
  double bound = n / throughput;

  // Root egress: items the root does not compute must cross its port at
  // >= beta_min each, while the root absorbs at most t / alpha_root.
  double beta_min = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i + 1 < p; ++i) beta_min = std::min(beta_min, coeffs.beta[i]);
  if (p >= 2 && beta_min > 0.0) {
    double alpha_root = coeffs.alpha[p - 1];
    bound = std::max(bound, n * beta_min * alpha_root / (alpha_root + beta_min));
  }

  // Single item.
  double single = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < p; ++i) {
    single = std::min(single, coeffs.beta[i] + coeffs.alpha[i]);
  }
  return std::max(bound, single);
}

ExactRationalSolution solve_linear_exact(std::span<const Rational> alpha,
                                         std::span<const Rational> beta,
                                         const Rational& items) {
  auto chain = solve_chain<Rational>(alpha, beta, items);
  ExactRationalSolution solution;
  solution.share = std::move(chain.share);
  solution.active = std::move(chain.active);
  solution.duration = chain.duration;
  return solution;
}

}  // namespace lbs::core
