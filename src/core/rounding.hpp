// The paper's rounding scheme (Section 3.3).
//
// Given a rational distribution n_1..n_p summing to the integer n, produce
// an integer distribution n'_1..n'_p with sum n and |n'_i - n_i| < 1 for
// every i. That closeness is what powers the guarantee (Eq. 4):
//
//   T_opt <= T' <= T_opt + sum_j Tcomm(j,1) + max_i Tcomp(i,1)
//
// Scheme: round first the share nearest to an integer and track the
// accumulated error e; while e < 0 round the share nearest to its ceiling
// up, while e > 0 round the share nearest to its floor down; the last
// share absorbs the remaining error exactly.
#pragma once

#include <span>
#include <vector>

#include "core/distribution.hpp"
#include "model/platform.hpp"
#include "support/bigrational.hpp"
#include "support/rational.hpp"

namespace lbs::core {

// `shares` must be non-negative and sum to `items` (up to floating-point
// noise from the LP solver; a residual below 0.5 is absorbed).
Distribution round_distribution(std::span<const double> shares, long long items);

// Exact counterpart: the same scheme executed in rational arithmetic, as
// the paper states it. `shares` must be non-negative and sum to exactly
// `items`; every |n'_i - n_i| < 1 holds exactly. Overloads for the 128-bit
// Rational and the arbitrary-precision BigRational (the exact simplex's
// solutions can exceed 128 bits).
Distribution round_distribution_exact(std::span<const support::Rational> shares,
                                      long long items);
Distribution round_distribution_exact(std::span<const support::BigRational> shares,
                                      long long items);

// The additive slack of Eq. 4: sum_j Tcomm(j, 1) + max_i Tcomp(i, 1).
double rounding_guarantee_slack(const model::Platform& platform);

// Eq. 4 slack sound for *affine* costs with nonzero fixed terms. Three
// error sources stack on top of the LP optimum: the LP charges fixed
// terms even on zero shares (<= sum_j b_j + max_i c_i vs the true
// integral optimum), and rounding perturbs each share by under one item
// (<= sum_j beta_j + max_i alpha_i). The compute fixed term and slope can
// peak at *different* processors, so this keeps max_i c_i and
// max_i alpha_i separate — for linear costs (all fixed terms zero) it
// degenerates to rounding_guarantee_slack exactly. Requires
// all_costs_affine().
double affine_rounding_guarantee_slack(const model::Platform& platform);

}  // namespace lbs::core
