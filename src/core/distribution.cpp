#include "core/distribution.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace lbs::core {

long long Distribution::total() const {
  long long sum = 0;
  for (long long c : counts) sum += c;
  return sum;
}

std::vector<long long> Distribution::displacements() const {
  std::vector<long long> displs(counts.size(), 0);
  long long offset = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    displs[i] = offset;
    offset += counts[i];
  }
  return displs;
}

Distribution uniform_distribution(long long items, int processors) {
  LBS_CHECK(items >= 0);
  LBS_CHECK(processors >= 1);
  Distribution dist;
  long long base = items / processors;
  long long extra = items % processors;
  dist.counts.assign(static_cast<std::size_t>(processors), base);
  for (long long i = 0; i < extra; ++i) dist.counts[static_cast<std::size_t>(i)] += 1;
  return dist;
}

std::vector<double> finish_times(const model::Platform& platform,
                                 const Distribution& distribution) {
  LBS_CHECK_MSG(distribution.size() == platform.size(),
                "distribution/platform size mismatch");
  std::vector<double> times(distribution.counts.size(), 0.0);
  double comm_elapsed = 0.0;
  for (int i = 0; i < platform.size(); ++i) {
    long long n_i = distribution.counts[static_cast<std::size_t>(i)];
    LBS_CHECK_MSG(n_i >= 0, "negative item count");
    comm_elapsed += platform[i].comm(n_i);
    times[static_cast<std::size_t>(i)] = comm_elapsed + platform[i].comp(n_i);
  }
  return times;
}

double makespan(const model::Platform& platform, const Distribution& distribution) {
  auto times = finish_times(platform, distribution);
  return *std::max_element(times.begin(), times.end());
}

CommWindows comm_windows(const model::Platform& platform,
                         const Distribution& distribution) {
  LBS_CHECK(distribution.size() == platform.size());
  CommWindows windows;
  windows.start.resize(distribution.counts.size());
  windows.end.resize(distribution.counts.size());
  double elapsed = 0.0;
  for (int i = 0; i < platform.size(); ++i) {
    windows.start[static_cast<std::size_t>(i)] = elapsed;
    elapsed += platform[i].comm(distribution.counts[static_cast<std::size_t>(i)]);
    windows.end[static_cast<std::size_t>(i)] = elapsed;
  }
  return windows;
}

void validate(const model::Platform& platform, const Distribution& distribution,
              long long items) {
  LBS_CHECK_MSG(distribution.size() == platform.size(),
                "distribution/platform size mismatch");
  for (long long c : distribution.counts) LBS_CHECK_MSG(c >= 0, "negative item count");
  LBS_CHECK_MSG(distribution.total() == items, "distribution does not sum to n");
}

}  // namespace lbs::core
