// Round-trip planning: scatter + compute + gather.
//
// The paper optimizes the scatter+compute makespan and treats the result
// collection as out of scope. Real codes (the seismic application
// included) ship results back; under the same single-port model the root
// then *receives* transfers serialized in availability order. This module
// extends the planner to the full round trip:
//
//   - roundtrip_makespan(): analytic evaluation. Finish times come from
//     Eq. 1; the gather is a single-machine schedule with release dates
//     (T_i) and processing times Tcomm(i, gather_ratio * n_i), served
//     earliest-release-date first, which is makespan-optimal and exactly
//     what a FIFO root port does.
//   - optimize_roundtrip(): local search (pairwise item moves with a
//     shrinking step) starting from the scatter-optimal distribution.
//     The gather couples processors in ways the DP's independent suffix
//     structure cannot capture, so an exact algorithm is an open problem;
//     the hill climber is monotone and never returns something worse than
//     its seed.
#pragma once

#include "core/distribution.hpp"
#include "model/platform.hpp"

namespace lbs::core {

// Completion time of the full scatter -> compute -> gather round.
// gather_ratio scales item counts into result counts (0 = no gather, the
// plain Eq. 2 makespan). The root's own results need no transfer.
double roundtrip_makespan(const model::Platform& platform,
                          const Distribution& distribution, double gather_ratio);

struct RoundTripOptions {
  double gather_ratio = 1.0;
  int max_passes = 60;  // local-search sweeps over all processor pairs
};

struct RoundTripPlan {
  Distribution distribution;
  double makespan = 0.0;          // round-trip time of `distribution`
  double seed_makespan = 0.0;     // round-trip time of the scatter-optimal seed
  int passes_used = 0;
};

// Requires a platform with at least one processor and items >= 0.
RoundTripPlan optimize_roundtrip(const model::Platform& platform, long long items,
                                 const RoundTripOptions& options = {});

}  // namespace lbs::core
