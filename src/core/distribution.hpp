// Data distributions and their evaluation under the paper's cost model.
//
// A Distribution assigns n_i data items to each processor of a Platform
// (same ordering). Under the single-port model (Section 2.3), processor
// P_i starts receiving only after P_1..P_{i-1} have been served, so
// (Eq. 1)  T_i = sum_{j<=i} Tcomm(j, n_j) + Tcomp(i, n_i)
// (Eq. 2)  T   = max_i T_i
#pragma once

#include <vector>

#include "model/platform.hpp"

namespace lbs::core {

struct Distribution {
  std::vector<long long> counts;

  [[nodiscard]] long long total() const;
  [[nodiscard]] int size() const { return static_cast<int>(counts.size()); }

  // Scatterv-style displacements: displs[i] = sum of counts[0..i-1].
  [[nodiscard]] std::vector<long long> displacements() const;
};

// The original program's distribution: floor(n/p) items each, the first
// (n mod p) processors taking one extra (Section 2.2's MPI_Scatter).
Distribution uniform_distribution(long long items, int processors);

// Per-processor finish times, Eq. 1. The distribution must match the
// platform's size and have non-negative counts.
std::vector<double> finish_times(const model::Platform& platform,
                                 const Distribution& distribution);

// Overall execution time, Eq. 2.
double makespan(const model::Platform& platform, const Distribution& distribution);

// Time at which P_i's data starts/finishes arriving (root's in-turn sends).
// start[i] = sum_{j<i} Tcomm(j, n_j); end[i] = start[i] + Tcomm(i, n_i).
struct CommWindows {
  std::vector<double> start;
  std::vector<double> end;
};
CommWindows comm_windows(const model::Platform& platform,
                         const Distribution& distribution);

// Validates shape and non-negativity, and that counts sum to `items`.
void validate(const model::Platform& platform, const Distribution& distribution,
              long long items);

}  // namespace lbs::core
