// Degradation-aware recovery planning: re-running the paper's scatter
// planner on the platform that remains after failures.
//
// The mq runtime's fault-tolerant scatter (mq::Comm::scatterv_ft) detects
// dead receivers and asks a replanner to distribute the undelivered
// remainder over the survivors. This header supplies that replanner: it
// restricts the Platform to the surviving processors (scatter order
// preserved, root last) and lets plan_scatter pick the strongest
// applicable method, exactly as for the initial distribution. No mq types
// are involved — the replanner is a plain std::function, so core stays
// independent of the runtime substrate.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/plan_cache.hpp"
#include "core/planner.hpp"
#include "model/platform.hpp"

namespace lbs::core {

// Platform restricted to the processors at `positions`, in that order.
// Positions must be distinct and in range; the last position is the root
// of the reduced platform (callers keep the original root last).
model::Platform reduce_platform(const model::Platform& platform,
                                const std::vector<int>& positions);

// A replanner for mq::ScattervFtOptions::replan (and the gridsim mirror):
// given the surviving rank ids (platform positions, root last) and the
// undelivered item count, re-runs plan_scatter on the reduced platform and
// returns per-survivor counts, aligned with the alive list. Each replanner
// owns a core::PlanCache, so repeated recoveries of the same survivor set
// and remainder (the common case across scatters) hit in O(1).
std::function<std::vector<long long>(const std::vector<int>& alive,
                                     long long items)>
make_ft_replanner(model::Platform platform,
                  Algorithm algorithm = Algorithm::Auto);

// Supplies the platform a replanner re-plans over. Called once per replan,
// so a provider backed by a live cost model (core::AdaptivePlanner's
// refitted fits, a monitor daemon's instantaneous alphas) makes every
// recovery use the *current* costs instead of the construction-time ones.
// Must be callable from the replanner's thread; must always return a
// platform with the same processor positions as the original.
using PlatformProvider = std::function<model::Platform()>;

// Cost-refreshing variant: each replan fetches provider() first, so cost
// updates between scatters are picked up on the next recovery. The plan
// cache is keyed on the reduced platform's cost fingerprints, so a
// refreshed cost can never be served a stale plan — and unchanged costs
// still hit in O(1). Passing `cache` shares it with other planning paths
// (core::AdaptivePlanner routes its drift replans and its plan() calls
// through one cache this way); nullptr gets a private 64-entry cache.
std::function<std::vector<long long>(const std::vector<int>& alive,
                                     long long items)>
make_ft_replanner(PlatformProvider provider,
                  Algorithm algorithm = Algorithm::Auto,
                  std::shared_ptr<PlanCache> cache = nullptr);

}  // namespace lbs::core
