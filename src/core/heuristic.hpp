// The guaranteed LP heuristic (paper Section 3.3).
//
// For affine cost functions, Eq. (2) is coded as the linear program (3):
//
//   minimize T  s.t.  n_i >= 0,  sum_i n_i = n,
//   forall i:  T >= sum_{j<=i} Tcomm(j, n_j) + Tcomp(i, n_i)
//
// solved in rationals, then rounded with the Section 3.3 scheme, giving
// (Eq. 4):  T_opt <= T' <= T_opt + sum_j Tcomm(j,1) + max_i Tcomp(i,1).
//
// Note the LP treats an affine cost as affine *everywhere*, including at
// n_i = 0 where the true cost is 0 — one reason this is a heuristic, exact
// in the linear case modulo rounding.
#pragma once

#include <optional>
#include <vector>

#include "core/distribution.hpp"
#include "model/platform.hpp"
#include "support/bigrational.hpp"
#include "support/rational.hpp"

namespace lbs::core {

struct HeuristicResult {
  Distribution distribution;      // rounded, sums to n
  double makespan = 0.0;          // T': true cost (Eq. 2) of `distribution`
  std::vector<double> rational_shares;  // the LP optimum n_1..n_p
  double rational_makespan = 0.0;       // the LP objective T
  double guarantee_slack = 0.0;   // Eq. 4 additive slack
};

// Requires platform.all_costs_affine(). Throws lbs::Error if the LP solver
// fails (cannot happen for a well-formed platform: the LP is always
// feasible and bounded).
HeuristicResult lp_heuristic(const model::Platform& platform, long long items);

// Exact-rational variant, matching the paper's actual procedure (it used
// pipMP, an exact solver): the affine coefficients are approximated by
// rationals with denominator <= max_denominator (continued fractions),
// the LP is solved by the exact simplex, and the rounding scheme runs in
// exact arithmetic. `makespan` is still evaluated on the platform's true
// (double) cost model.
struct ExactHeuristicResult {
  Distribution distribution;
  double makespan = 0.0;
  std::vector<support::BigRational> rational_shares;
  support::BigRational rational_makespan;  // of the approximated LP
};
ExactHeuristicResult lp_heuristic_exact(const model::Platform& platform,
                                        long long items,
                                        long long max_denominator = 1000000);

// Independent cross-check used by tests: assuming *every* processor works
// and all finish simultaneously, the affine equal-finish chain
//   Tcomp(i, n_i) = Tcomm(i+1, n_{i+1}) + Tcomp(i+1, n_{i+1})
// is a linear system with one degree of freedom, closed by sum n_i = n.
// Returns nullopt when the assumption fails (some share comes out <= 0) —
// in that case the LP (which can zero processors out) is the answer.
std::optional<std::vector<double>> affine_equal_finish_shares(
    const model::Platform& platform, long long items);

}  // namespace lbs::core
