#include "core/root_selection.hpp"

#include "support/error.hpp"

namespace lbs::core {

const RootCandidate& RootSelectionResult::best() const {
  LBS_CHECK_MSG(best_index >= 0 && best_index < static_cast<int>(candidates.size()),
                "root selection has no best candidate");
  return candidates[static_cast<std::size_t>(best_index)];
}

RootSelectionResult select_root(const model::Grid& grid, long long items,
                                OrderingPolicy policy, Algorithm algorithm) {
  LBS_CHECK_MSG(grid.data_home() >= 0, "grid has no data_home");
  RootSelectionResult result;

  for (const auto& candidate : grid.all_processors()) {
    RootCandidate entry;
    entry.root = candidate;
    entry.label = grid.processor_label(candidate);
    entry.staging_time = candidate.machine == grid.data_home()
                             ? 0.0
                             : grid.link(grid.data_home(), candidate.machine)(items);
    model::Platform platform = ordered_platform(grid, candidate, policy);
    entry.scatter_makespan = plan_scatter(platform, items, algorithm).predicted_makespan;
    entry.total_time = entry.staging_time + entry.scatter_makespan;

    if (result.best_index < 0 ||
        entry.total_time < result.candidates[static_cast<std::size_t>(result.best_index)].total_time) {
      result.best_index = static_cast<int>(result.candidates.size());
    }
    result.candidates.push_back(std::move(entry));
  }
  return result;
}

}  // namespace lbs::core
