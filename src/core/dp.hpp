// The paper's dynamic-programming algorithms for optimal distributions.
//
// Both compute, for d = 0..n and i = p..1, the minimal time cost[d][i] to
// process d items on processors P_i..P_p, exploiting (Section 3.2):
//
//   cost[d][i] = min_{0<=e<=d} Tcomm(i,e) + max(Tcomp(i,e), cost[d-e][i+1])
//
// - Algorithm 1 (`exact_dp`) scans all e: O(p n^2) time, only requires the
//   cost functions to be non-negative and null at 0.
// - Algorithm 2 (`optimized_dp`) additionally requires increasing cost
//   functions; it binary-searches the crossover e_max where computation
//   overtakes the downstream cost, then scans downward with an early
//   break. Same worst case, O(p n) best case, far faster in practice
//   (the paper: > 2 days vs 6 minutes at n = 817,101).
//
// Performance engineering (see docs/algorithms.md, "Performance
// engineering"): every cell of column i depends only on column i+1, so
// both algorithms evaluate Tcomm/Tcomp through flat per-column arrays
// (optionally a precomputed model::CostTable) and partition each column's
// d-range across the shared thread pool. Scheduling never changes which
// inputs a cell reads, so parallel runs are bit-identical to serial ones.
#pragma once

#include "core/distribution.hpp"
#include "model/platform.hpp"

namespace lbs::model {
class CostTable;
}

namespace lbs::obs {
class Metrics;
class Tracer;
}

namespace lbs::core {

// How the reconstruction information is kept.
//
// - ChoiceTable: the classic p x (n+1) argmin table, stored as int32
//   (shares never exceed n; items > 2^31 - 1 are rejected up front).
//   Fastest; O(p n) memory.
// - DivideConquer: Hirschberg-style recursion on the processor axis —
//   only rolling cost columns plus the realized split points are kept,
//   O(n log p + p) working memory at an O(log p) factor more column
//   sweeps. The distribution produced is bit-identical to ChoiceTable's.
// - Auto: ChoiceTable while the table stays modest, DivideConquer beyond
//   (and always when items does not fit in int32).
enum class DpMemory { Auto, ChoiceTable, DivideConquer };

struct DpOptions {
  // 1 forces a serial run; any other value (0 = default) partitions each
  // column over the shared pool (support::shared_pool, sized by
  // LBS_PLANNER_THREADS / hardware concurrency). Results are identical
  // either way.
  int threads = 0;
  DpMemory memory = DpMemory::Auto;
  // Optional precomputed cost table for this platform covering at least
  // `items`; skips the per-column Tcomm/Tcomp evaluation. Worth building
  // once when planning repeatedly over the same (platform, n).
  const model::CostTable* cost_table = nullptr;
  // Observability hooks. A null tracer falls back to obs::global_tracer()
  // (still usually null); each solve then emits one dp.solve span carrying
  // items / cells evaluated / threads. Metrics are explicit-only: when
  // non-null, the "dp.solves" and "dp.cells_evaluated" counters are bumped.
  obs::Tracer* tracer = nullptr;
  obs::Metrics* metrics = nullptr;
};

struct DpResult {
  Distribution distribution;
  double cost = 0.0;  // predicted makespan of the optimal distribution
  // Provenance: DP cells evaluated (counted at column granularity, so the
  // figure is scheduling-independent) and the thread count used. The
  // divide-and-conquer mode reports its extra O(log p) re-sweeps, making
  // the two memory modes directly comparable.
  long long cells_evaluated = 0;
  int threads_used = 1;
};

// Algorithm 1. Requires items >= 0 and a non-empty platform.
DpResult exact_dp(const model::Platform& platform, long long items,
                  const DpOptions& options = {});

// Algorithm 2. Additionally requires platform.all_costs_increasing().
DpResult optimized_dp(const model::Platform& platform, long long items,
                      const DpOptions& options = {});

}  // namespace lbs::core
