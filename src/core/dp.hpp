// The paper's dynamic-programming algorithms for optimal distributions.
//
// Both compute, for d = 0..n and i = p..1, the minimal time cost[d][i] to
// process d items on processors P_i..P_p, exploiting (Section 3.2):
//
//   cost[d][i] = min_{0<=e<=d} Tcomm(i,e) + max(Tcomp(i,e), cost[d-e][i+1])
//
// - Algorithm 1 (`exact_dp`) scans all e: O(p n^2) time, only requires the
//   cost functions to be non-negative and null at 0.
// - Algorithm 2 (`optimized_dp`) additionally requires increasing cost
//   functions; it binary-searches the crossover e_max where computation
//   overtakes the downstream cost, then scans downward with an early
//   break. Same worst case, O(p n) best case, far faster in practice
//   (the paper: > 2 days vs 6 minutes at n = 817,101).
#pragma once

#include "core/distribution.hpp"
#include "model/platform.hpp"

namespace lbs::core {

struct DpResult {
  Distribution distribution;
  double cost = 0.0;  // predicted makespan of the optimal distribution
};

// Algorithm 1. Requires items >= 0 and a non-empty platform.
DpResult exact_dp(const model::Platform& platform, long long items);

// Algorithm 2. Additionally requires platform.all_costs_increasing().
DpResult optimized_dp(const model::Platform& platform, long long items);

}  // namespace lbs::core
