// The paper's dynamic-programming algorithms for optimal distributions.
//
// Both compute, for d = 0..n and i = p..1, the minimal time cost[d][i] to
// process d items on processors P_i..P_p, exploiting (Section 3.2):
//
//   cost[d][i] = min_{0<=e<=d} Tcomm(i,e) + max(Tcomp(i,e), cost[d-e][i+1])
//
// - Algorithm 1 (`exact_dp`) scans all e: O(p n^2) time, only requires the
//   cost functions to be non-negative and null at 0.
// - Algorithm 2 (`optimized_dp`) additionally requires increasing cost
//   functions; it binary-searches the crossover e_max where computation
//   overtakes the downstream cost, then scans downward with an early
//   break. Same worst case, O(p n) best case, far faster in practice
//   (the paper: > 2 days vs 6 minutes at n = 817,101).
//
// Performance engineering (see docs/algorithms.md, "Performance
// engineering"): every cell (i, d) depends only on the prefix [0..d] of
// column i+1, so the engine runs a *wavefront* pipeline — each column is
// cut into fixed chunks and a chunk starts as soon as the previous
// column's done-prefix covers it, overlapping columns instead of placing
// a pool barrier between them. Algorithm 2's crossover is monotone in d,
// so inside a chunk it advances by a two-pointer sweep (amortized O(1)
// per cell, sequential loads) instead of a per-cell bisection; when a
// column's communication cost is affine, the downward scan collapses
// further into a sliding-window minimum kept on a monotone stack —
// amortized O(1) per cell regardless of scan depth, which is what makes
// n = 10^6 a sub-second solve. Algorithm 1's min-reduction has an AVX2
// path with a bit-identical scalar fallback. The chunk grid is fixed and
// every chunk is a pure function of its inputs, so results are
// bit-identical across thread counts, memory modes, and kernels.
#pragma once

#include <cstddef>

#include "core/distribution.hpp"
#include "model/platform.hpp"

namespace lbs::model {
class CostTable;
}

namespace lbs::obs {
class Metrics;
class Tracer;
}

namespace lbs::core {

// How the reconstruction information is kept.
//
// - ChoiceTable: the classic p x (n+1) argmin table, stored as int32
//   (shares never exceed n; items > 2^31 - 1 are rejected up front).
//   Fastest; O(p n) memory.
// - DivideConquer: Hirschberg-style recursion on the processor axis —
//   only rolling cost columns plus the realized split points are kept,
//   O(n log p + p) working memory at an O(log p) factor more column
//   sweeps. The distribution produced is bit-identical to ChoiceTable's.
// - Auto: ChoiceTable while the table stays modest, DivideConquer beyond
//   (and always when items does not fit in int32).
enum class DpMemory { Auto, ChoiceTable, DivideConquer };

struct DpOptions {
  // 1 forces a serial run; any other value (0 = default) partitions each
  // column over the shared pool (support::shared_pool, sized by
  // LBS_PLANNER_THREADS / hardware concurrency). Results are identical
  // either way.
  int threads = 0;
  DpMemory memory = DpMemory::Auto;
  // Optional precomputed cost table for this platform covering at least
  // `items`; skips the per-column Tcomm/Tcomp evaluation. Worth building
  // once when planning repeatedly over the same (platform, n).
  const model::CostTable* cost_table = nullptr;
  // When true (default) Algorithm 1 uses the AVX2 cell kernel on hosts
  // that support it. The scalar fallback is bit-identical; this switch
  // exists so differential tests can force the comparison.
  bool allow_simd = true;
  // DivideConquer bottom-out budget: a recursion node whose int32 choice
  // table fits in this many bytes is solved by one table pass instead of
  // recursing (0 = the built-in 256 MiB default). Tests shrink it to
  // force deep recursion; results are identical either way.
  std::size_t dc_table_bytes = 0;
  // Observability hooks. A null tracer falls back to obs::global_tracer()
  // (still usually null); each solve then emits one dp.solve span carrying
  // items / cells evaluated / threads. Metrics are explicit-only: when
  // non-null, the "dp.solves" and "dp.cells_evaluated" counters are bumped.
  obs::Tracer* tracer = nullptr;
  obs::Metrics* metrics = nullptr;
};

struct DpResult {
  Distribution distribution;
  double cost = 0.0;  // predicted makespan of the optimal distribution
  // Provenance: DP cells evaluated (counted at column granularity, so the
  // figure is scheduling-independent) and the thread count used. The
  // divide-and-conquer mode reports its extra O(log p) re-sweeps, making
  // the two memory modes directly comparable.
  long long cells_evaluated = 0;
  int threads_used = 1;
};

// Algorithm 1. Requires items >= 0 and a non-empty platform.
DpResult exact_dp(const model::Platform& platform, long long items,
                  const DpOptions& options = {});

// Algorithm 2. Additionally requires platform.all_costs_increasing().
DpResult optimized_dp(const model::Platform& platform, long long items,
                      const DpOptions& options = {});

}  // namespace lbs::core
