// Multi-installment scatter (divisible load theory extension).
//
// The paper's scatter sends each processor its whole share in one message,
// so P_i idles until P_1..P_{i-1} are fully served (Figure 1's stair). The
// divisible-load literature the paper cites ([6]) splits shares into k
// installments: the root cycles through the processors k times with
// chunks, so everyone starts computing after only ~1/k of the stair.
// The catch: with affine costs every extra installment pays the
// per-message latency again — there is an optimal finite k.
//
// This module evaluates a distribution under k installments (analytic,
// same single-port model) and sweeps k; it is the quantitative companion
// to the paper's single-installment design choice.
#pragma once

#include <utility>
#include <vector>

#include "core/distribution.hpp"
#include "model/platform.hpp"

namespace lbs::core {

// Completion time when each share is split into `installments` chunks
// (first n_i mod k chunks one item larger) and the root sends chunk r of
// every processor, in platform order, before chunk r+1 of anyone.
// Cost functions apply per chunk: affine fixed terms are paid per
// installment, which is exactly the modeled overhead.
double installment_makespan(const model::Platform& platform,
                            const Distribution& distribution, int installments);

struct InstallmentSweep {
  std::vector<std::pair<int, double>> makespans;  // (k, makespan)
  int best_installments = 1;
  double best_makespan = 0.0;
};

// Evaluates k = 1..max_installments for the given distribution.
InstallmentSweep sweep_installments(const model::Platform& platform,
                                    const Distribution& distribution,
                                    int max_installments);

}  // namespace lbs::core
