#include "core/roundtrip.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "core/planner.hpp"
#include "support/error.hpp"

namespace lbs::core {

double roundtrip_makespan(const model::Platform& platform,
                          const Distribution& distribution, double gather_ratio) {
  LBS_CHECK_MSG(gather_ratio >= 0.0, "negative gather ratio");
  auto finish = finish_times(platform, distribution);
  if (gather_ratio == 0.0) {
    return *std::max_element(finish.begin(), finish.end());
  }

  int p = platform.size();
  int root = p - 1;

  // Gather jobs: (release = compute finish, duration = result transfer).
  struct Job {
    double release;
    double duration;
  };
  std::vector<Job> jobs;
  double makespan = finish[static_cast<std::size_t>(root)];  // root: no transfer
  for (int i = 0; i < p; ++i) {
    if (i == root) continue;
    long long items = distribution.counts[static_cast<std::size_t>(i)];
    if (items == 0) continue;
    auto result_items =
        static_cast<long long>(std::llround(gather_ratio * static_cast<double>(items)));
    jobs.push_back(Job{finish[static_cast<std::size_t>(i)],
                       platform[i].comm(result_items)});
  }

  // Earliest-release-date-first on the single root port (= FIFO arrival
  // order), makespan-optimal for 1 | r_j | Cmax.
  std::sort(jobs.begin(), jobs.end(),
            [](const Job& a, const Job& b) { return a.release < b.release; });
  double port_free = 0.0;
  for (const auto& job : jobs) {
    port_free = std::max(port_free, job.release) + job.duration;
  }
  return std::max(makespan, port_free);
}

RoundTripPlan optimize_roundtrip(const model::Platform& platform, long long items,
                                 const RoundTripOptions& options) {
  LBS_CHECK_MSG(platform.size() >= 1, "empty platform");
  LBS_CHECK_MSG(items >= 0, "negative item count");
  LBS_CHECK_MSG(options.max_passes >= 0, "negative pass budget");

  RoundTripPlan plan;
  plan.distribution = plan_scatter(platform, items).distribution;
  plan.seed_makespan =
      roundtrip_makespan(platform, plan.distribution, options.gather_ratio);
  plan.makespan = plan.seed_makespan;

  int p = platform.size();
  if (p == 1 || items == 0) return plan;

  // Pairwise item moves with a geometric step schedule: move `step` items
  // from i to j whenever it improves the round-trip makespan; halve the
  // step when a full pass finds nothing.
  long long step = std::max<long long>(1, items / (4 * p));
  for (int pass = 0; pass < options.max_passes && step >= 1; ++pass) {
    ++plan.passes_used;
    bool improved = false;
    for (int from = 0; from < p; ++from) {
      auto from_idx = static_cast<std::size_t>(from);
      if (plan.distribution.counts[from_idx] < step) continue;
      for (int to = 0; to < p; ++to) {
        if (to == from) continue;
        auto to_idx = static_cast<std::size_t>(to);
        plan.distribution.counts[from_idx] -= step;
        plan.distribution.counts[to_idx] += step;
        double candidate =
            roundtrip_makespan(platform, plan.distribution, options.gather_ratio);
        if (candidate < plan.makespan - 1e-12) {
          plan.makespan = candidate;
          improved = true;
        } else {
          plan.distribution.counts[from_idx] += step;
          plan.distribution.counts[to_idx] -= step;
        }
        if (plan.distribution.counts[from_idx] < step) break;
      }
    }
    if (!improved) step /= 2;
  }

  validate(platform, plan.distribution, items);
  return plan;
}

}  // namespace lbs::core
