#include "core/sharded_plan_cache.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace lbs::core {

ShardedPlanCache::ShardedPlanCache(int shards, std::size_t capacity_per_shard)
    : capacity_per_shard_(capacity_per_shard) {
  LBS_CHECK_MSG(shards >= 1, "sharded plan cache needs >= 1 shard");
  LBS_CHECK_MSG(shards <= 1024, "sharded plan cache: implausible shard count");
  LBS_CHECK_MSG(capacity_per_shard >= 1, "plan cache shard needs capacity >= 1");
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) shards_.push_back(std::make_unique<Shard>());
}

int ShardedPlanCache::shard_for(const PlanKey& key) const {
  // The low hash bits also pick the unordered_map bucket inside the shard;
  // fold the high half in so shard choice uses independent bits.
  std::uint64_t h = PlanKeyHash{}(key);
  h ^= h >> 32;
  h *= 0x9e3779b97f4a7c15ULL;
  h ^= h >> 32;
  return static_cast<int>(h % shards_.size());
}

void ShardedPlanCache::set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

void ShardedPlanCache::set_metrics(obs::Metrics* metrics) {
  if (metrics == nullptr) {
    hits_counter_ = nullptr;
    misses_counter_ = nullptr;
    evictions_counter_ = nullptr;
    for (auto& shard : shards_) {
      shard->hits_counter = nullptr;
      shard->misses_counter = nullptr;
    }
    return;
  }
  hits_counter_ = &metrics->counter("plan_cache.hits");
  misses_counter_ = &metrics->counter("plan_cache.misses");
  evictions_counter_ = &metrics->counter("plan_cache.evictions");
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::string prefix = "plan_cache.shard" + std::to_string(i);
    shards_[i]->hits_counter = &metrics->counter(prefix + ".hits");
    shards_[i]->misses_counter = &metrics->counter(prefix + ".misses");
  }
}

void ShardedPlanCache::record_probe(bool hit, long long items) {
  obs::Tracer* tracer = tracer_ != nullptr ? tracer_ : obs::global_tracer();
  if (tracer != nullptr) {
    obs::TraceEvent event;
    event.type = hit ? obs::EventType::CacheHit : obs::EventType::CacheMiss;
    event.instant = true;
    event.start = obs::wall_now();
    event.arg0 = items;
    tracer->record(event);
  }
  obs::Counter* counter = hit ? hits_counter_ : misses_counter_;
  if (counter != nullptr) counter->add();
}

std::optional<ScatterPlan> ShardedPlanCache::lookup(const PlanKey& key) {
  Shard& shard = *shards_[static_cast<std::size_t>(shard_for(key))];
  std::optional<ScatterPlan> found;
  {
    std::lock_guard lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      ++shard.stats.misses;
      if (shard.misses_counter != nullptr) shard.misses_counter->add();
    } else {
      ++shard.stats.hits;
      if (shard.hits_counter != nullptr) shard.hits_counter->add();
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      found = it->second->plan;
    }
  }
  record_probe(found.has_value(), key.items);
  return found;
}

void ShardedPlanCache::insert(const PlanKey& key, const ScatterPlan& plan) {
  Shard& shard = *shards_[static_cast<std::size_t>(shard_for(key))];
  std::lock_guard lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->plan = plan;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, plan});
  shard.index.emplace(shard.lru.front().key, shard.lru.begin());
  if (shard.lru.size() > capacity_per_shard_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.stats.evictions;
    if (evictions_counter_ != nullptr) evictions_counter_->add();
  }
}

std::optional<ScatterPlan> ShardedPlanCache::lookup(const model::Platform& platform,
                                                    long long items,
                                                    Algorithm algorithm) {
  return lookup(make_plan_key(platform, items, algorithm));
}

void ShardedPlanCache::insert(const model::Platform& platform, long long items,
                              Algorithm algorithm, const ScatterPlan& plan) {
  insert(make_plan_key(platform, items, algorithm), plan);
}

ScatterPlan ShardedPlanCache::plan(const model::Platform& platform, long long items,
                                   Algorithm algorithm, const DpOptions& dp) {
  PlannerOptions options;
  options.algorithm = algorithm;
  options.dp = dp;
  options.cache = this;
  return plan_scatter(platform, items, options);
}

ShardedPlanCache::Stats ShardedPlanCache::stats() const {
  Stats total;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.evictions += shard->stats.evictions;
  }
  return total;
}

std::vector<ShardedPlanCache::Stats> ShardedPlanCache::shard_stats() const {
  std::vector<Stats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    out.push_back(shard->stats);
  }
  return out;
}

std::size_t ShardedPlanCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

std::size_t ShardedPlanCache::capacity() const {
  return shards_.size() * capacity_per_shard_;
}

std::vector<std::pair<PlanKey, ScatterPlan>> ShardedPlanCache::export_entries() const {
  std::vector<std::pair<PlanKey, ScatterPlan>> out;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    // Least-recent first: replaying through insert() ends with the same
    // front-of-LRU ordering this shard has now.
    for (auto it = shard->lru.rbegin(); it != shard->lru.rend(); ++it) {
      out.emplace_back(it->key, it->plan);
    }
  }
  return out;
}

void ShardedPlanCache::restore_entries(
    const std::vector<std::pair<PlanKey, ScatterPlan>>& entries) {
  for (const auto& [key, plan] : entries) {
    insert(key, plan);
  }
}

void ShardedPlanCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
    shard->stats = {};
  }
}

}  // namespace lbs::core
