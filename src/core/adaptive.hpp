// Adaptive runtime: online cost refinement and mid-run replanning.
//
// The paper calibrates Table 1's α/β once, offline ("values come from a
// series of benchmarks we performed"), and plans from those constants
// forever. Real grids drift: a node picks up a competing batch job, a
// shared hub congests, the initial measurements were wrong to begin with.
// Section 3 already gestures at the fix — "a monitor daemon process ...
// could be queried just before a scatter operation" — but a separate
// monitor is redundant: the application's own scatter rounds *are* the
// benchmark series, continuously re-run.
//
// AdaptivePlanner closes that loop:
//
//   observe  — every round feeds per-rank (items, seconds) send/compute
//              timings (from a gridsim Timeline, an mq trace, or any other
//              substrate) into per-rank model::OnlineAffineFit instances —
//              recursive least squares with forgetting on top of the
//              model::calibrate seam.
//   detect   — the round's observed Eq. 1 finish times are compared with
//              the plan's predictions; the drift signal is the largest
//              relative error, checked against AdaptiveOptions::
//              drift_threshold (with a cooldown so sustained drift cannot
//              trigger a replan storm).
//   refit    — on confirmed drift, every rank whose fit is ready gets its
//              Tcomm/Tcomp replaced by the fitted cost; the platform
//              version bumps.
//   replan   — the refreshed platform flows through the same
//              make_ft_replanner path the fault-recovery machinery uses
//              (a PlatformProvider bound to this planner), so recovery
//              replans and drift replans share one engine and one cache.
//              The plan cache keys on cost fingerprints, so a refit can
//              never be served a stale plan.
//
// Timestamps are supplied by the caller, which is what makes the planner
// substrate-agnostic: gridsim passes virtual seconds, mq passes wall
// seconds, and cooldown arithmetic happens in whichever clock the caller
// lives in (AdaptiveOptions::clock labels the emitted spans accordingly).
//
// Instrumentation: adaptive.drift instants and adaptive.refit spans (plus
// a recovery.replan instant per adaptive replan) on the configured
// tracer, and adaptive.* counters/histograms on the configured Metrics.
// docs/adaptive.md covers the model, the drift signal, and the scenario
// suite that gates all of this.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/plan_cache.hpp"
#include "core/planner.hpp"
#include "core/recovery.hpp"
#include "model/online_fit.hpp"
#include "model/platform.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace lbs::core {

struct AdaptiveOptions {
  // Master switch. When false, plan() is exactly plan_scatter on the
  // construction platform (bit-identical, no cache interposed) and
  // observe_round never refits — the differential tests pin this.
  bool enabled = true;

  // Replan when the largest relative error between observed and predicted
  // Eq. 1 finish times exceeds this fraction of the predicted makespan.
  double drift_threshold = 0.10;

  // A rank's fit must have this many samples (with two distinct item
  // counts) before its fitted cost replaces the current one.
  int min_samples = 3;

  // Forgetting factor for the per-rank recursive fits (see
  // model::OnlineFitOptions::forgetting).
  double forgetting = 0.95;

  // Minimum caller-clock seconds between replans. Drift seen inside the
  // cooldown still updates the fits (and is counted as suppressed); only
  // the refit+replan is held back.
  double cooldown = 0.0;

  // Pseudo-sample weight anchoring each rank's fit at its construction
  // cost: higher values demand more evidence before the model moves.
  double prior_weight = 1.0;

  // Intercept-drop seam forwarded to the fits (model::calibrate's rule).
  double intercept_tolerance = 0.01;

  Algorithm algorithm = Algorithm::Auto;

  // Clock domain of the caller's `now` values; labels the emitted spans.
  obs::Clock clock = obs::Clock::Virtual;

  // Observability: a null tracer falls back to obs::global_tracer();
  // metrics are explicit-only (planner convention).
  obs::Tracer* tracer = nullptr;
  obs::Metrics* metrics = nullptr;

  // Capacity of the internal plan cache (shared by plan() and the
  // recovery replanner).
  std::size_t cache_capacity = 64;
};

// One rank's measured timings for one scatter round. `rank` is the
// platform position; `items` the share it actually received.
struct RankObservation {
  int rank = 0;
  long long items = 0;
  double comm_seconds = 0.0;  // root-send / receive time for the share
  double comp_seconds = 0.0;  // compute time for the share
};

// What one observe_round decided, for callers that want to react (log,
// re-fetch the plan, assert in tests).
struct AdaptiveOutcome {
  double drift = 0.0;           // max relative Eq. 1 error this round
  bool drift_detected = false;  // drift > threshold
  bool suppressed = false;      // drift detected but inside the cooldown
  bool refit = false;           // at least one rank's cost was replaced
  bool replanned = false;       // a fresh plan was solved on the new model
  std::uint64_t platform_version = 0;
};

// Thread-safe: plan() / observe_round() / platform() may race (the
// concurrent refit-while-planning test runs under TSan). A plan is always
// computed against one consistent platform snapshot.
class AdaptivePlanner {
 public:
  explicit AdaptivePlanner(model::Platform initial,
                           AdaptiveOptions options = {});

  // Plans `items` over the current believed platform. Repeat plans on an
  // unchanged model are O(1) cache hits; the first plan after a refit
  // misses (new fingerprints) and re-solves.
  [[nodiscard]] ScatterPlan plan(long long items);

  // Feeds one round's measurements and runs the detect→refit→replan
  // pipeline. `plan` must be the plan the round executed (its
  // predicted_finish is the drift baseline); `observations` must cover
  // every platform position exactly once, in any order; `now` is the
  // caller-clock timestamp of the round's end.
  AdaptiveOutcome observe_round(const ScatterPlan& plan,
                                std::span<const RankObservation> observations,
                                double now);

  // Snapshot of the current believed platform (construction costs until
  // the first refit).
  [[nodiscard]] model::Platform platform() const;

  // Monotonic model version: 0 at construction, +1 per refit.
  [[nodiscard]] std::uint64_t platform_version() const;

  // A live-model recovery replanner (the mq::ScattervFtOptions::replan /
  // gridsim::FtSimOptions::replan contract), built on make_ft_replanner's
  // PlatformProvider hook: recoveries after a refit re-plan on the
  // refreshed costs automatically.
  [[nodiscard]] std::function<std::vector<long long>(
      const std::vector<int>& alive, long long items)>
  replanner() const;

  struct Stats {
    std::uint64_t rounds = 0;
    std::uint64_t samples = 0;          // accepted (items > 0) rank samples
    std::uint64_t drift_detected = 0;
    std::uint64_t suppressed = 0;       // replans held back by the cooldown
    std::uint64_t refits = 0;
    std::uint64_t replans = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct RankFits {
    model::OnlineAffineFit comm;
    model::OnlineAffineFit comp;
  };

  [[nodiscard]] model::Platform snapshot_platform() const;
  void record_drift(double drift, bool detected, double now);

  const AdaptiveOptions options_;
  // shared_ptr so replanner() closures survive the planner if callers let
  // them (the mq runtime may outlive a scatter's planner object).
  struct State {
    mutable std::mutex mu;
    model::Platform platform;
    std::vector<RankFits> fits;
    std::uint64_t version = 0;
    double last_replan_time = 0.0;
    bool replanned_once = false;
    Stats stats;
  };
  std::shared_ptr<State> state_;
  std::shared_ptr<PlanCache> cache_;
  // The recovery replanner (make_ft_replanner over a live-platform
  // provider, sharing cache_): both the replanner() seam and the
  // drift-replan path go through it.
  std::function<std::vector<long long>(const std::vector<int>&, long long)>
      ft_replanner_;
};

}  // namespace lbs::core
