#include "core/ordering.hpp"

#include <algorithm>
#include <limits>

#include "support/error.hpp"

namespace lbs::core {

namespace {

// β used for ordering: the per-item slope of the root→machine link
// (1/bandwidth). Affine links order by slope, matching the paper's
// "decreasing order of their bandwidth".
double link_slope(const model::Grid& grid, int root_machine, int machine) {
  if (machine == root_machine) return 0.0;
  auto coeffs = grid.link(root_machine, machine).affine();
  LBS_CHECK_MSG(coeffs.has_value(),
                "ordering by bandwidth requires affine link costs");
  return coeffs->per_item;
}

}  // namespace

std::vector<model::ProcessorRef> order_processors(const model::Grid& grid,
                                                  model::ProcessorRef root,
                                                  OrderingPolicy policy,
                                                  support::Rng* rng) {
  auto refs = grid.all_processors();
  std::erase(refs, root);

  switch (policy) {
    case OrderingPolicy::GridOrder:
      break;
    case OrderingPolicy::DescendingBandwidth:
      std::stable_sort(refs.begin(), refs.end(),
                       [&](const model::ProcessorRef& a, const model::ProcessorRef& b) {
                         return link_slope(grid, root.machine, a.machine) <
                                link_slope(grid, root.machine, b.machine);
                       });
      break;
    case OrderingPolicy::AscendingBandwidth:
      std::stable_sort(refs.begin(), refs.end(),
                       [&](const model::ProcessorRef& a, const model::ProcessorRef& b) {
                         return link_slope(grid, root.machine, a.machine) >
                                link_slope(grid, root.machine, b.machine);
                       });
      break;
    case OrderingPolicy::Random: {
      LBS_CHECK_MSG(rng != nullptr, "random ordering needs an Rng");
      for (std::size_t i = refs.size(); i > 1; --i) {
        auto j = static_cast<std::size_t>(rng->uniform_int(0, static_cast<long long>(i) - 1));
        std::swap(refs[i - 1], refs[j]);
      }
      break;
    }
  }
  return refs;
}

model::Platform ordered_platform(const model::Grid& grid, model::ProcessorRef root,
                                 OrderingPolicy policy, support::Rng* rng) {
  auto order = order_processors(grid, root, policy, rng);
  return make_platform(grid, root, order);
}

OrderingSearchResult exhaustive_best_ordering(
    const model::Grid& grid, model::ProcessorRef root,
    const std::function<double(const model::Platform&)>& evaluate) {
  auto refs = grid.all_processors();
  std::erase(refs, root);
  LBS_CHECK_MSG(refs.size() <= 9, "exhaustive ordering search limited to 9 processors");

  // Iterate permutations in lexicographic order over grid order.
  std::sort(refs.begin(), refs.end(),
            [](const model::ProcessorRef& a, const model::ProcessorRef& b) {
              return a.machine != b.machine ? a.machine < b.machine : a.cpu < b.cpu;
            });

  OrderingSearchResult best;
  best.cost = std::numeric_limits<double>::infinity();
  do {
    model::Platform platform = make_platform(grid, root, refs);
    double cost = evaluate(platform);
    ++best.permutations_tried;
    if (cost < best.cost) {
      best.cost = cost;
      best.order = refs;
    }
  } while (std::next_permutation(
      refs.begin(), refs.end(),
      [](const model::ProcessorRef& a, const model::ProcessorRef& b) {
        return a.machine != b.machine ? a.machine < b.machine : a.cpu < b.cpu;
      }));
  return best;
}

}  // namespace lbs::core
