#include "core/rounding.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace lbs::core {

Distribution round_distribution(std::span<const double> shares, long long items) {
  LBS_CHECK_MSG(!shares.empty(), "rounding an empty distribution");
  LBS_CHECK(items >= 0);
  double total = 0.0;
  for (double share : shares) {
    LBS_CHECK_MSG(share >= -1e-9, "negative rational share");
    total += share;
  }
  LBS_CHECK_MSG(std::abs(total - static_cast<double>(items)) < 0.5,
                "rational shares do not sum to n");

  std::size_t p = shares.size();
  Distribution result;
  result.counts.assign(p, 0);
  std::vector<bool> done(p, false);

  // error = (assigned so far) - (rational so far); the paper's e.
  double error = 0.0;
  for (std::size_t step = 0; step + 1 < p; ++step) {
    // Pick the undone share nearest to its rounding target: nearest integer
    // on the first step / when e == 0, else nearest ceiling (e < 0) or
    // nearest floor (e > 0).
    std::size_t best = p;
    double best_distance = std::numeric_limits<double>::infinity();
    double best_value = 0.0;
    for (std::size_t i = 0; i < p; ++i) {
      if (done[i]) continue;
      double share = std::max(shares[i], 0.0);
      double target;
      if (error < 0.0) {
        target = std::ceil(share);
      } else if (error > 0.0) {
        target = std::floor(share);
      } else {
        target = std::round(share);
      }
      double distance = std::abs(target - share);
      if (distance < best_distance) {
        best_distance = distance;
        best = i;
        best_value = target;
      }
    }
    LBS_CHECK(best < p);
    done[best] = true;
    result.counts[best] = static_cast<long long>(best_value);
    error += best_value - shares[best];
  }

  // Last share absorbs the residual: n'_k = n_k - e (so the total is exact).
  std::size_t last = p;
  for (std::size_t i = 0; i < p; ++i) {
    if (!done[i]) last = i;
  }
  LBS_CHECK(last < p);
  long long assigned = 0;
  for (std::size_t i = 0; i < p; ++i) {
    if (i != last) assigned += result.counts[i];
  }
  long long remainder = items - assigned;
  LBS_CHECK_MSG(remainder >= 0, "rounding produced a negative share");
  LBS_CHECK_MSG(std::abs(static_cast<double>(remainder) - shares[last]) < 1.0 + 1e-6,
                "rounding drifted more than one item");
  result.counts[last] = remainder;
  return result;
}

namespace {

// The Section 3.3 scheme in exact arithmetic, generic over the rational
// type (128-bit Rational or arbitrary-precision BigRational).
template <typename Rat>
Distribution round_exact_impl(std::span<const Rat> shares, long long items) {
  using Rational = Rat;
  LBS_CHECK_MSG(!shares.empty(), "rounding an empty distribution");
  LBS_CHECK(items >= 0);
  Rational total;
  for (const auto& share : shares) {
    LBS_CHECK_MSG(!share.is_negative(), "negative rational share");
    total += share;
  }
  LBS_CHECK_MSG(total == Rational(items), "rational shares do not sum to n");

  std::size_t p = shares.size();
  Distribution result;
  result.counts.assign(p, 0);
  std::vector<bool> done(p, false);

  Rational error;  // (assigned so far) - (rational so far)
  for (std::size_t step = 0; step + 1 < p; ++step) {
    std::size_t best = p;
    Rational best_distance;
    Rational best_value;
    for (std::size_t i = 0; i < p; ++i) {
      if (done[i]) continue;
      Rational target;
      if (error.is_negative()) {
        target = shares[i].ceil();
      } else if (error > Rational(0)) {
        target = shares[i].floor();
      } else {
        target = shares[i].round();
      }
      Rational distance = (target - shares[i]).abs();
      if (best == p || distance < best_distance) {
        best_distance = distance;
        best = i;
        best_value = target;
      }
    }
    LBS_CHECK(best < p);
    done[best] = true;
    result.counts[best] = best_value.to_int64();
    error += best_value - shares[best];
  }

  std::size_t last = p;
  for (std::size_t i = 0; i < p; ++i) {
    if (!done[i]) last = i;
  }
  LBS_CHECK(last < p);
  // n'_last = n_last - e: exact, integer by construction.
  Rational final_share = shares[last] - error;
  LBS_CHECK_MSG(final_share.is_integer(), "exact rounding lost integrality");
  long long final_count = final_share.to_int64();
  LBS_CHECK_MSG(final_count >= 0, "exact rounding produced a negative share");
  LBS_CHECK_MSG((final_share - shares[last]).abs() < Rational(1),
                "exact rounding drifted a full item");
  result.counts[last] = final_count;
  return result;
}

}  // namespace

Distribution round_distribution_exact(std::span<const support::Rational> shares,
                                      long long items) {
  return round_exact_impl(shares, items);
}

Distribution round_distribution_exact(std::span<const support::BigRational> shares,
                                      long long items) {
  return round_exact_impl(shares, items);
}

double rounding_guarantee_slack(const model::Platform& platform) {
  double comm_sum = 0.0;
  double comp_max = 0.0;
  for (int i = 0; i < platform.size(); ++i) {
    comm_sum += platform[i].comm(1);
    comp_max = std::max(comp_max, platform[i].comp(1));
  }
  return comm_sum + comp_max;
}

double affine_rounding_guarantee_slack(const model::Platform& platform) {
  double comm_sum = 0.0;
  double comp_fixed_max = 0.0;
  double comp_slope_max = 0.0;
  for (int i = 0; i < platform.size(); ++i) {
    comm_sum += platform[i].comm(1);
    auto comp = platform[i].comp.affine();
    LBS_CHECK_MSG(comp.has_value(),
                  "affine_rounding_guarantee_slack requires affine costs");
    comp_fixed_max = std::max(comp_fixed_max, comp->fixed);
    comp_slope_max = std::max(comp_slope_max, comp->per_item);
  }
  return comm_sum + comp_fixed_max + comp_slope_max;
}

}  // namespace lbs::core
