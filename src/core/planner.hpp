// High-level planning API: the library's main entry point.
//
// plan_scatter() turns (platform, n) into the counts/displacements vector
// a parameterized scatter (MPI_Scatterv or mq::Comm::scatterv) needs,
// choosing the strongest applicable method:
//   - linear costs   -> closed form (Section 4) + rounding scheme,
//   - affine costs   -> guaranteed LP heuristic (Section 3.3),
//   - increasing     -> Algorithm 2,
//   - anything else  -> Algorithm 1.
// An explicit algorithm can be forced for studies.
#pragma once

#include <string>
#include <vector>

#include "core/distribution.hpp"
#include "core/dp.hpp"
#include "model/platform.hpp"

namespace lbs::core {

class PlanCacheBase;

enum class Algorithm {
  Auto,
  ExactDp,          // Algorithm 1
  OptimizedDp,      // Algorithm 2
  LpHeuristic,      // Section 3.3
  LinearClosedForm, // Section 4 (+ rounding)
  Uniform,          // the original program's equal shares (baseline)
};

std::string to_string(Algorithm algorithm);

struct ScatterPlan {
  Distribution distribution;
  std::vector<long long> displacements;
  double predicted_makespan = 0.0;          // Eq. 2 on the true cost model
  std::vector<double> predicted_finish;     // Eq. 1 per processor
  Algorithm algorithm_used = Algorithm::Auto;
  // Eq. 4 optimality certificate. When has_optimality_bound is set,
  //   predicted_makespan <= optimal integral makespan + optimality_gap.
  // DP plans are exactly optimal (gap 0); the closed-form and LP fast
  // paths carry the rounding slack (sum of Tcomm(j,1) plus the worst
  // fixed and per-item compute terms — Section 4 / Eq. 4). Uniform plans
  // carry no bound.
  bool has_optimality_bound = false;
  double optimality_gap = 0.0;
  // Planner provenance (zero unless a DP algorithm ran): survives the plan
  // cache, so a cached plan still reports the work its original solve did.
  long long dp_cells_evaluated = 0;
  int dp_threads = 0;

  // MPI_Scatterv takes int counts/displs; these narrow and throw
  // lbs::Error instead of silently wrapping when a count or a prefix sum
  // exceeds INT_MAX (at paper-scale n that is one multiplication by the
  // element count away). Use these at any 32-bit scatter boundary.
  [[nodiscard]] std::vector<int> counts_as_int() const;
  [[nodiscard]] std::vector<int> displacements_as_int() const;
};

struct PlannerOptions {
  Algorithm algorithm = Algorithm::Auto;
  // Forwarded to exact_dp / optimized_dp (threads, memory mode, cost table).
  DpOptions dp;
  // When non-null, consulted before planning and filled after: repeat
  // plans for the same (costs, items, algorithm) return in O(1). Either a
  // PlanCache (single mutex) or a ShardedPlanCache (lock-striped, for
  // concurrent planners) — see core/plan_cache.hpp.
  PlanCacheBase* cache = nullptr;
  // Observability hooks. A null tracer falls back to obs::global_tracer();
  // when one is live, every plan_scatter call emits a scatter.plan span
  // (items, resolved algorithm, folded platform fingerprint) and forwards
  // the tracer to the DP layer. Metrics are explicit-only and also
  // forwarded to the DP layer unless options.dp already carries its own.
  obs::Tracer* tracer = nullptr;
  obs::Metrics* metrics = nullptr;
};

// Throws lbs::Error when a forced algorithm's preconditions do not hold
// (e.g. LpHeuristic on non-affine costs).
ScatterPlan plan_scatter(const model::Platform& platform, long long items,
                         Algorithm algorithm = Algorithm::Auto);
ScatterPlan plan_scatter(const model::Platform& platform, long long items,
                         const PlannerOptions& options);

}  // namespace lbs::core
