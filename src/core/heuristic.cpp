#include "core/heuristic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/rounding.hpp"
#include "lp/exact_simplex.hpp"
#include "lp/simplex.hpp"
#include "support/error.hpp"

namespace lbs::core {

HeuristicResult lp_heuristic(const model::Platform& platform, long long items) {
  LBS_CHECK_MSG(platform.size() >= 1, "empty platform");
  LBS_CHECK_MSG(items >= 0, "negative item count");
  LBS_CHECK_MSG(platform.all_costs_affine(),
                "the LP heuristic requires affine cost functions");

  int p = platform.size();
  std::vector<model::AffineCoeffs> comm(static_cast<std::size_t>(p));
  std::vector<model::AffineCoeffs> comp(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) {
    comm[static_cast<std::size_t>(i)] = *platform[i].comm.affine();
    comp[static_cast<std::size_t>(i)] = *platform[i].comp.affine();
  }

  // Variables: x_0..x_{p-1} = n_i, x_p = T. Minimize T.
  lp::Problem problem;
  std::vector<double> objective(static_cast<std::size_t>(p) + 1, 0.0);
  objective.back() = 1.0;
  problem.minimize(std::move(objective));

  {
    std::vector<double> coeffs(static_cast<std::size_t>(p) + 1, 0.0);
    for (int i = 0; i < p; ++i) coeffs[static_cast<std::size_t>(i)] = 1.0;
    problem.add(std::move(coeffs), lp::Relation::Equal, static_cast<double>(items));
  }

  // For each i: sum_{j<=i} β_j n_j + α_i n_i - T <= -(sum_{j<=i} b_j + c_i),
  // where Tcomm(j,x) = b_j + β_j x and Tcomp(i,x) = c_i + α_i x.
  double fixed_comm_prefix = 0.0;
  for (int i = 0; i < p; ++i) {
    fixed_comm_prefix += comm[static_cast<std::size_t>(i)].fixed;
    std::vector<double> coeffs(static_cast<std::size_t>(p) + 1, 0.0);
    for (int j = 0; j <= i; ++j) {
      coeffs[static_cast<std::size_t>(j)] = comm[static_cast<std::size_t>(j)].per_item;
    }
    coeffs[static_cast<std::size_t>(i)] += comp[static_cast<std::size_t>(i)].per_item;
    coeffs.back() = -1.0;
    double rhs = -(fixed_comm_prefix + comp[static_cast<std::size_t>(i)].fixed);
    problem.add(std::move(coeffs), lp::Relation::LessEq, rhs);
  }

  auto solution = lp::solve(problem);
  LBS_CHECK_MSG(solution.optimal(),
                "scatter LP not optimal: " + lp::to_string(solution.status));

  HeuristicResult result;
  result.rational_shares.assign(solution.x.begin(), solution.x.end() - 1);
  result.rational_makespan = solution.objective;
  result.distribution = round_distribution(result.rational_shares, items);
  result.makespan = makespan(platform, result.distribution);
  result.guarantee_slack = affine_rounding_guarantee_slack(platform);
  return result;
}

ExactHeuristicResult lp_heuristic_exact(const model::Platform& platform,
                                        long long items, long long max_denominator) {
  using support::Rational;
  LBS_CHECK_MSG(platform.size() >= 1, "empty platform");
  LBS_CHECK_MSG(items >= 0, "negative item count");
  LBS_CHECK_MSG(platform.all_costs_affine(),
                "the LP heuristic requires affine cost functions");

  int p = platform.size();

  // Rescale the time unit so every nonzero coefficient is >= 1 before
  // approximating: with an absolute denominator bound, a raw beta of
  // ~1e-5 s/item would otherwise round to 0 (and huge bounds overflow the
  // 128-bit exact arithmetic during pivoting). The scale is an exact
  // power of ten, divided back out of T at the end; the shares n_i are
  // unit-free and unaffected.
  double min_positive = std::numeric_limits<double>::infinity();
  for (int i = 0; i < p; ++i) {
    for (double value : {platform[i].comm.affine()->fixed,
                         platform[i].comm.affine()->per_item,
                         platform[i].comp.affine()->fixed,
                         platform[i].comp.affine()->per_item}) {
      if (value > 0.0) min_positive = std::min(min_positive, value);
    }
  }
  Rational scale(1);
  if (std::isfinite(min_positive) && min_positive < 1.0) {
    double factor = 1.0;
    while (min_positive * factor < 1.0) {
      factor *= 10.0;
      scale *= Rational(10);
    }
  }
  double scale_dbl = scale.to_double();
  auto approx = [max_denominator, scale_dbl](double value) {
    return Rational::approximate(value * scale_dbl, max_denominator);
  };

  std::vector<Rational> comm_fixed(static_cast<std::size_t>(p));
  std::vector<Rational> comm_slope(static_cast<std::size_t>(p));
  std::vector<Rational> comp_fixed(static_cast<std::size_t>(p));
  std::vector<Rational> comp_slope(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) {
    auto comm = *platform[i].comm.affine();
    auto comp = *platform[i].comp.affine();
    comm_fixed[static_cast<std::size_t>(i)] = approx(comm.fixed);
    comm_slope[static_cast<std::size_t>(i)] = approx(comm.per_item);
    comp_fixed[static_cast<std::size_t>(i)] = approx(comp.fixed);
    comp_slope[static_cast<std::size_t>(i)] = approx(comp.per_item);
  }

  lp::ExactProblem problem;
  std::vector<Rational> objective(static_cast<std::size_t>(p) + 1);
  objective.back() = Rational(1);
  problem.minimize(std::move(objective));
  {
    std::vector<Rational> coeffs(static_cast<std::size_t>(p) + 1);
    for (int i = 0; i < p; ++i) coeffs[static_cast<std::size_t>(i)] = Rational(1);
    problem.add(std::move(coeffs), lp::Relation::Equal, Rational(items));
  }
  Rational fixed_comm_prefix;
  for (int i = 0; i < p; ++i) {
    fixed_comm_prefix += comm_fixed[static_cast<std::size_t>(i)];
    std::vector<Rational> coeffs(static_cast<std::size_t>(p) + 1);
    for (int j = 0; j <= i; ++j) {
      coeffs[static_cast<std::size_t>(j)] = comm_slope[static_cast<std::size_t>(j)];
    }
    coeffs[static_cast<std::size_t>(i)] += comp_slope[static_cast<std::size_t>(i)];
    coeffs.back() = Rational(-1);
    problem.add(std::move(coeffs), lp::Relation::LessEq,
                -(fixed_comm_prefix + comp_fixed[static_cast<std::size_t>(i)]));
  }

  auto solution = lp::solve_exact(problem);
  LBS_CHECK_MSG(solution.optimal(),
                "exact scatter LP not optimal: " + lp::to_string(solution.status));

  ExactHeuristicResult result;
  result.rational_shares.assign(solution.x.begin(), solution.x.end() - 1);
  result.rational_makespan =
      solution.objective / support::BigRational::from_rational(scale);
  result.distribution = round_distribution_exact(result.rational_shares, items);
  result.makespan = makespan(platform, result.distribution);
  return result;
}

std::optional<std::vector<double>> affine_equal_finish_shares(
    const model::Platform& platform, long long items) {
  LBS_CHECK(platform.all_costs_affine());
  int p = platform.size();
  LBS_CHECK(p >= 1);

  // n_i = u_i + v_i · n_p, backward from n_p (u_p = 0, v_p = 1):
  //   α_i n_i + c_i = (β_{i+1} + α_{i+1}) n_{i+1} + b_{i+1} + c_{i+1}.
  std::vector<double> u(static_cast<std::size_t>(p), 0.0);
  std::vector<double> v(static_cast<std::size_t>(p), 0.0);
  u[static_cast<std::size_t>(p - 1)] = 0.0;
  v[static_cast<std::size_t>(p - 1)] = 1.0;
  for (int i = p - 2; i >= 0; --i) {
    auto comm_next = *platform[i + 1].comm.affine();
    auto comp_next = *platform[i + 1].comp.affine();
    auto comp_here = *platform[i].comp.affine();
    if (comp_here.per_item <= 0.0) return std::nullopt;
    double slope = comm_next.per_item + comp_next.per_item;
    double constant = comm_next.fixed + comp_next.fixed - comp_here.fixed;
    u[static_cast<std::size_t>(i)] =
        (slope * u[static_cast<std::size_t>(i + 1)] + constant) / comp_here.per_item;
    v[static_cast<std::size_t>(i)] =
        slope * v[static_cast<std::size_t>(i + 1)] / comp_here.per_item;
  }

  double sum_u = 0.0;
  double sum_v = 0.0;
  for (int i = 0; i < p; ++i) {
    sum_u += u[static_cast<std::size_t>(i)];
    sum_v += v[static_cast<std::size_t>(i)];
  }
  if (sum_v <= 0.0) return std::nullopt;
  double last = (static_cast<double>(items) - sum_u) / sum_v;

  std::vector<double> shares(static_cast<std::size_t>(p), 0.0);
  for (int i = 0; i < p; ++i) {
    shares[static_cast<std::size_t>(i)] =
        u[static_cast<std::size_t>(i)] + v[static_cast<std::size_t>(i)] * last;
    if (!(shares[static_cast<std::size_t>(i)] > 0.0) ||
        !std::isfinite(shares[static_cast<std::size_t>(i)])) {
      return std::nullopt;
    }
  }
  return shares;
}

}  // namespace lbs::core
