// Lock-striped LRU plan cache for concurrent planners.
//
// The single-mutex PlanCache serializes every probe; under the planning
// service's load (dozens of client connections + a pool of DP workers all
// probing at once) that mutex becomes the hot path. ShardedPlanCache
// splits the key space over N independent LRU shards — shard choice is a
// pure function of PlanKeyHash, so a key always lands on the same shard
// and two probes contend only when they collide on a shard.
//
// Semantics are identical to PlanCache by construction: the same PlanKey,
// the same exact-match lookup, per-shard LRU eviction beyond
// capacity_per_shard. Replaying any request log through a PlanCache and a
// ShardedPlanCache yields bit-identical plans (the cached values are the
// planner's outputs either way; only eviction *timing* differs, and an
// evicted entry merely costs a re-plan of the same pure function).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/plan_cache.hpp"

namespace lbs::core {

class ShardedPlanCache : public PlanCacheBase {
 public:
  // `shards` lock stripes, each an LRU of `capacity_per_shard` plans.
  explicit ShardedPlanCache(int shards = 8, std::size_t capacity_per_shard = 128);

  [[nodiscard]] std::optional<ScatterPlan> lookup(const model::Platform& platform,
                                                  long long items,
                                                  Algorithm algorithm) override;
  void insert(const model::Platform& platform, long long items,
              Algorithm algorithm, const ScatterPlan& plan) override;

  // Keyed variants for callers that already built the key (the service
  // computes each request's PlanKey once and reuses it for the cache
  // probe, the coalescing map, and the final fill).
  [[nodiscard]] std::optional<ScatterPlan> lookup(const PlanKey& key);
  void insert(const PlanKey& key, const ScatterPlan& plan);

  // Lookup-or-plan convenience: plan_scatter with this cache attached.
  ScatterPlan plan(const model::Platform& platform, long long items,
                   Algorithm algorithm = Algorithm::Auto,
                   const DpOptions& dp = {});

  // Observability hooks; call during setup, before concurrent use. Same
  // contract and metric names as PlanCache ("plan_cache.hits" / ".misses"
  // / ".evictions"), plus per-shard counters "plan_cache.shard<K>.hits" /
  // ".misses" so cross-shard balance is visible.
  void set_tracer(obs::Tracer* tracer);
  void set_metrics(obs::Metrics* metrics);

  using Stats = PlanCache::Stats;
  [[nodiscard]] Stats stats() const;                   // summed over shards
  [[nodiscard]] std::vector<Stats> shard_stats() const;

  [[nodiscard]] int shards() const { return static_cast<int>(shards_.size()); }
  [[nodiscard]] std::size_t size() const;              // entries, all shards
  [[nodiscard]] std::size_t capacity() const;          // shards * per-shard
  [[nodiscard]] std::size_t capacity_per_shard() const { return capacity_per_shard_; }

  // The shard a key lands on (pure function of the key; exposed so tests
  // can craft per-shard workloads).
  [[nodiscard]] int shard_for(const PlanKey& key) const;

  void clear();

  // Persistence hooks (service/snapshot.hpp turns these into a
  // checksummed file). export_entries walks every shard least-recent
  // first, so replaying the returned sequence through restore_entries —
  // or plain insert — reproduces both the contents and the LRU recency
  // order. Each shard is locked only while it is being copied; a snapshot
  // taken under live traffic is a consistent-per-shard view, which is
  // sound because plans are pure functions of their key (a racing insert
  // merely is or isn't included).
  [[nodiscard]] std::vector<std::pair<PlanKey, ScatterPlan>> export_entries() const;
  // Inserts every entry in order (re-sharding by key, evicting beyond
  // capacity as usual). Counts neither hits nor misses.
  void restore_entries(const std::vector<std::pair<PlanKey, ScatterPlan>>& entries);

 private:
  struct Entry {
    PlanKey key;
    ScatterPlan plan;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<PlanKey, std::list<Entry>::iterator, PlanKeyHash> index;
    Stats stats;
    obs::Counter* hits_counter = nullptr;
    obs::Counter* misses_counter = nullptr;
  };

  void record_probe(bool hit, long long items);

  std::size_t capacity_per_shard_;
  std::vector<std::unique_ptr<Shard>> shards_;
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* hits_counter_ = nullptr;
  obs::Counter* misses_counter_ = nullptr;
  obs::Counter* evictions_counter_ = nullptr;
};

}  // namespace lbs::core
