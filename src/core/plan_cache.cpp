#include "core/plan_cache.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace lbs::core {

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {
  LBS_CHECK_MSG(capacity >= 1, "plan cache needs capacity >= 1");
}

std::vector<std::uint64_t> PlanCache::fingerprint(const model::Platform& platform) {
  std::vector<std::uint64_t> prints;
  prints.reserve(static_cast<std::size_t>(platform.size()));
  for (int i = 0; i < platform.size(); ++i) {
    // Rotate-and-xor keeps (comm, comp) ordered, unlike plain xor.
    std::uint64_t comm = platform[i].comm.fingerprint();
    std::uint64_t comp = platform[i].comp.fingerprint();
    prints.push_back(comm ^ (comp << 1 | comp >> 63));
  }
  return prints;
}

std::size_t PlanKeyHash::operator()(const PlanKey& key) const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  };
  for (std::uint64_t c : key.costs) mix(c);
  mix(static_cast<std::uint64_t>(key.items));
  mix(static_cast<std::uint64_t>(key.algorithm));
  return static_cast<std::size_t>(h);
}

PlanKey make_plan_key(const model::Platform& platform, long long items,
                      Algorithm algorithm) {
  return PlanKey{PlanCache::fingerprint(platform), items, algorithm};
}

void PlanCache::set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

void PlanCache::set_metrics(obs::Metrics* metrics) {
  if (metrics == nullptr) {
    hits_counter_ = nullptr;
    misses_counter_ = nullptr;
    evictions_counter_ = nullptr;
    return;
  }
  hits_counter_ = &metrics->counter("plan_cache.hits");
  misses_counter_ = &metrics->counter("plan_cache.misses");
  evictions_counter_ = &metrics->counter("plan_cache.evictions");
}

void PlanCache::record_probe(bool hit, long long items) {
  obs::Tracer* tracer = tracer_ != nullptr ? tracer_ : obs::global_tracer();
  if (tracer != nullptr) {
    obs::TraceEvent event;
    event.type = hit ? obs::EventType::CacheHit : obs::EventType::CacheMiss;
    event.instant = true;
    event.start = obs::wall_now();
    event.arg0 = items;
    tracer->record(event);
  }
  obs::Counter* counter = hit ? hits_counter_ : misses_counter_;
  if (counter != nullptr) counter->add();
}

std::optional<ScatterPlan> PlanCache::lookup(const model::Platform& platform,
                                             long long items, Algorithm algorithm) {
  PlanKey key{fingerprint(platform), items, algorithm};
  std::optional<ScatterPlan> found;
  {
    std::lock_guard lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
    } else {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second);
      found = it->second->plan;
    }
  }
  record_probe(found.has_value(), items);
  return found;
}

void PlanCache::insert(const model::Platform& platform, long long items,
                       Algorithm algorithm, const ScatterPlan& plan) {
  PlanKey key{fingerprint(platform), items, algorithm};
  std::lock_guard lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->plan = plan;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{std::move(key), plan});
  index_.emplace(lru_.front().key, lru_.begin());
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
    if (evictions_counter_ != nullptr) evictions_counter_->add();
  }
}

ScatterPlan PlanCache::plan(const model::Platform& platform, long long items,
                            Algorithm algorithm, const DpOptions& dp) {
  PlannerOptions options;
  options.algorithm = algorithm;
  options.dp = dp;
  options.cache = this;
  return plan_scatter(platform, items, options);
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

std::size_t PlanCache::size() const {
  std::lock_guard lock(mu_);
  return lru_.size();
}

void PlanCache::clear() {
  std::lock_guard lock(mu_);
  lru_.clear();
  index_.clear();
  stats_ = {};
}

}  // namespace lbs::core
