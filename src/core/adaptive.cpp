#include "core/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "support/error.hpp"

namespace lbs::core {

namespace {

model::OnlineFitOptions fit_options(const AdaptiveOptions& options) {
  model::OnlineFitOptions fit;
  fit.forgetting = options.forgetting;
  fit.intercept_tolerance = options.intercept_tolerance;
  fit.min_samples = options.min_samples;
  return fit;
}

// A fit anchored at the processor's construction-time cost when that cost
// is affine-representable; unanchored otherwise (tabulated/chunked costs
// have no two-coefficient prior to offer — the fit simply starts cold and
// replaces them once ready).
model::OnlineAffineFit make_fit(const model::Cost& prior,
                                const AdaptiveOptions& options) {
  if (prior.affine().has_value()) {
    return model::OnlineAffineFit(prior, options.prior_weight,
                                  fit_options(options));
  }
  return model::OnlineAffineFit(fit_options(options));
}

}  // namespace

AdaptivePlanner::AdaptivePlanner(model::Platform initial,
                                 AdaptiveOptions options)
    : options_(std::move(options)),
      state_(std::make_shared<State>()),
      cache_(std::make_shared<PlanCache>(options_.cache_capacity)) {
  LBS_CHECK_MSG(initial.size() >= 1, "adaptive planner needs a platform");
  LBS_CHECK_MSG(options_.drift_threshold > 0.0, "drift threshold must be > 0");
  LBS_CHECK_MSG(options_.cooldown >= 0.0, "negative cooldown");
  state_->platform = std::move(initial);
  state_->fits.reserve(static_cast<std::size_t>(state_->platform.size()));
  for (int i = 0; i < state_->platform.size(); ++i) {
    state_->fits.push_back(RankFits{
        make_fit(state_->platform[i].comm, options_),
        make_fit(state_->platform[i].comp, options_),
    });
  }
  if (options_.metrics != nullptr) {
    cache_->set_metrics(options_.metrics);
  }
  if (options_.tracer != nullptr) {
    cache_->set_tracer(options_.tracer);
  }
  // One engine for every replan: fault recoveries and drift replans both
  // run through make_ft_replanner over the live platform, sharing the
  // same cache plan() probes — so a drift replan's solve is the next
  // plan() call's hit, and a recovery after a refit uses the fresh costs.
  auto state = state_;
  ft_replanner_ = make_ft_replanner(
      [state] {
        std::lock_guard lock(state->mu);
        return state->platform;
      },
      options_.algorithm, cache_);
}

model::Platform AdaptivePlanner::snapshot_platform() const {
  std::lock_guard lock(state_->mu);
  return state_->platform;
}

ScatterPlan AdaptivePlanner::plan(long long items) {
  auto platform = snapshot_platform();
  if (!options_.enabled) {
    // Adaptation off: the exact main-line planner call, no cache in the
    // way — the differential suite asserts bit-identity with plan_scatter.
    PlannerOptions plain;
    plain.algorithm = options_.algorithm;
    plain.tracer = options_.tracer;
    plain.metrics = options_.metrics;
    return plan_scatter(platform, items, plain);
  }
  PlannerOptions opts;
  opts.algorithm = options_.algorithm;
  opts.cache = cache_.get();
  opts.tracer = options_.tracer;
  opts.metrics = options_.metrics;
  return plan_scatter(platform, items, opts);
}

void AdaptivePlanner::record_drift(double drift, bool detected, double now) {
  obs::Tracer* tracer =
      options_.tracer != nullptr ? options_.tracer : obs::global_tracer();
  if (tracer != nullptr) {
    obs::TraceEvent event;
    event.type = obs::EventType::AdaptiveDrift;
    event.clock = options_.clock;
    event.instant = true;
    event.start = now;
    event.arg0 = std::llround(drift * 1e6);  // parts-per-million
    event.arg1 = detected ? 1 : 0;
    tracer->record(event);
  }
  if (options_.metrics != nullptr) {
    options_.metrics->histogram("adaptive.drift").observe(drift);
    if (detected) {
      options_.metrics->counter("adaptive.drift_detected").add();
    }
  }
}

AdaptiveOutcome AdaptivePlanner::observe_round(
    const ScatterPlan& plan, std::span<const RankObservation> observations,
    double now) {
  AdaptiveOutcome outcome;
  if (!options_.enabled) {
    return outcome;
  }

  std::unique_lock lock(state_->mu);
  auto& state = *state_;
  const int p = state.platform.size();
  LBS_CHECK_MSG(static_cast<int>(observations.size()) == p,
                "observe_round needs one observation per platform position");
  LBS_CHECK_MSG(static_cast<int>(plan.predicted_finish.size()) == p,
                "plan does not match the platform");
  state.stats.rounds += 1;

  // Sort observations into platform position order and feed the fits.
  std::vector<const RankObservation*> by_rank(static_cast<std::size_t>(p),
                                              nullptr);
  for (const auto& obs : observations) {
    LBS_CHECK_MSG(obs.rank >= 0 && obs.rank < p,
                  "observation references unknown rank");
    LBS_CHECK_MSG(by_rank[static_cast<std::size_t>(obs.rank)] == nullptr,
                  "duplicate observation for a rank");
    by_rank[static_cast<std::size_t>(obs.rank)] = &obs;
  }
  for (int i = 0; i < p; ++i) {
    const auto& obs = *by_rank[static_cast<std::size_t>(i)];
    if (obs.items <= 0) continue;  // t(0) = 0 carries no signal
    auto& fits = state.fits[static_cast<std::size_t>(i)];
    // The root (last position) sends to itself for free — its comm cost
    // is structurally zero and is never refitted.
    if (i != p - 1) {
      fits.comm.observe(obs.items, std::max(obs.comm_seconds, 0.0));
      state.stats.samples += 1;
    }
    fits.comp.observe(obs.items, std::max(obs.comp_seconds, 0.0));
    state.stats.samples += 1;
  }

  // Drift signal: the observed Eq. 1 finish times (prefix comm sums plus
  // own compute) against the plan's predictions, as a fraction of the
  // predicted makespan.
  double predicted_makespan = 0.0;
  for (double t : plan.predicted_finish) {
    predicted_makespan = std::max(predicted_makespan, t);
  }
  const double scale = std::max(predicted_makespan, 1e-12);
  double comm_prefix = 0.0;
  double drift = 0.0;
  for (int i = 0; i < p; ++i) {
    const auto& obs = *by_rank[static_cast<std::size_t>(i)];
    comm_prefix += std::max(obs.comm_seconds, 0.0);
    double observed_finish = comm_prefix + std::max(obs.comp_seconds, 0.0);
    double error = std::abs(observed_finish -
                            plan.predicted_finish[static_cast<std::size_t>(i)]);
    drift = std::max(drift, error / scale);
  }
  outcome.drift = drift;
  outcome.drift_detected = drift > options_.drift_threshold;
  if (outcome.drift_detected) {
    state.stats.drift_detected += 1;
  }

  bool cooled_down = !state.replanned_once ||
                     now - state.last_replan_time >= options_.cooldown;
  if (outcome.drift_detected && !cooled_down) {
    outcome.suppressed = true;
    state.stats.suppressed += 1;
    if (options_.metrics != nullptr) {
      options_.metrics->counter("adaptive.suppressed").add();
    }
  }

  bool should_refit = outcome.drift_detected && cooled_down;
  int refitted_ranks = 0;
  if (should_refit) {
    for (int i = 0; i < p; ++i) {
      auto& fits = state.fits[static_cast<std::size_t>(i)];
      auto& processor = state.platform.processors[static_cast<std::size_t>(i)];
      bool changed = false;
      if (i != p - 1 && fits.comm.ready()) {
        auto fitted = fits.comm.cost();
        if (fitted.fingerprint() != processor.comm.fingerprint()) {
          processor.comm = fitted;
          changed = true;
        }
      }
      if (fits.comp.ready()) {
        auto fitted = fits.comp.cost();
        if (fitted.fingerprint() != processor.comp.fingerprint()) {
          processor.comp = fitted;
          changed = true;
        }
      }
      if (changed) ++refitted_ranks;
    }
  }

  if (refitted_ranks > 0) {
    state.version += 1;
    state.stats.refits += 1;
    outcome.refit = true;
  }
  outcome.platform_version = state.version;

  long long items = plan.distribution.total();
  if (outcome.refit) {
    state.last_replan_time = now;
    state.replanned_once = true;
    state.stats.replans += 1;
  }
  lock.unlock();

  record_drift(drift, outcome.drift_detected, now);

  if (!outcome.refit) {
    return outcome;
  }

  obs::Tracer* tracer =
      options_.tracer != nullptr ? options_.tracer : obs::global_tracer();
  if (tracer != nullptr) {
    obs::TraceEvent refit_event;
    refit_event.type = obs::EventType::AdaptiveRefit;
    refit_event.clock = options_.clock;
    refit_event.start = now;
    refit_event.duration = 0.0;  // zero caller-clock time (degenerate span)
    refit_event.arg0 = refitted_ranks;
    refit_event.arg1 = static_cast<long long>(outcome.platform_version);
    tracer->record(refit_event);
  }
  if (options_.metrics != nullptr) {
    options_.metrics->counter("adaptive.refits").add();
  }

  // Mid-run replan on the refreshed model, through the same
  // make_ft_replanner path fault recovery uses, with every position
  // alive. The refreshed fingerprints make this a clean cache miss; the
  // next plan() call then hits the entry this solve installs.
  std::vector<int> all_alive(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) all_alive[static_cast<std::size_t>(i)] = i;
  auto counts = ft_replanner_(all_alive, items);
  outcome.replanned = true;
  LBS_CHECK_MSG(static_cast<int>(counts.size()) == p,
                "replanner returned wrong arity");

  if (tracer != nullptr) {
    obs::TraceEvent replan_event;
    replan_event.type = obs::EventType::RecoveryReplan;
    replan_event.clock = options_.clock;
    replan_event.instant = true;
    replan_event.start = now;
    replan_event.arg0 = items;
    replan_event.arg1 = static_cast<long long>(outcome.platform_version);
    tracer->record(replan_event);
  }
  if (options_.metrics != nullptr) {
    options_.metrics->counter("adaptive.replans").add();
  }
  return outcome;
}

model::Platform AdaptivePlanner::platform() const { return snapshot_platform(); }

std::uint64_t AdaptivePlanner::platform_version() const {
  std::lock_guard lock(state_->mu);
  return state_->version;
}

std::function<std::vector<long long>(const std::vector<int>&, long long)>
AdaptivePlanner::replanner() const {
  return ft_replanner_;
}

AdaptivePlanner::Stats AdaptivePlanner::stats() const {
  std::lock_guard lock(state_->mu);
  return state_->stats;
}

}  // namespace lbs::core
