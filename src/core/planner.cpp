#include "core/planner.hpp"

#include <algorithm>
#include <limits>

#include "core/closed_form.hpp"
#include "core/dp.hpp"
#include "core/heuristic.hpp"
#include "core/plan_cache.hpp"
#include "core/rounding.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace lbs::core {

std::string to_string(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::Auto: return "auto";
    case Algorithm::ExactDp: return "exact-dp (Algorithm 1)";
    case Algorithm::OptimizedDp: return "optimized-dp (Algorithm 2)";
    case Algorithm::LpHeuristic: return "lp-heuristic (Section 3.3)";
    case Algorithm::LinearClosedForm: return "linear-closed-form (Section 4)";
    case Algorithm::Uniform: return "uniform (original program)";
  }
  return "?";
}

namespace {

bool all_costs_linear(const model::Platform& platform) {
  for (int i = 0; i < platform.size(); ++i) {
    auto comm = platform[i].comm.affine();
    auto comp = platform[i].comp.affine();
    if (!comm || !comp || comm->fixed != 0.0 || comp->fixed != 0.0) return false;
  }
  return true;
}

Algorithm resolve(const model::Platform& platform, Algorithm requested) {
  if (requested != Algorithm::Auto) return requested;
  if (all_costs_linear(platform)) return Algorithm::LinearClosedForm;
  if (platform.all_costs_affine()) return Algorithm::LpHeuristic;
  if (platform.all_costs_increasing()) return Algorithm::OptimizedDp;
  return Algorithm::ExactDp;
}

// One 64-bit digest of the platform's per-processor cost fingerprints,
// carried in scatter.plan spans so traces from different platforms are
// distinguishable without storing the full vector.
long long folded_fingerprint(const model::Platform& platform) {
  std::uint64_t folded = 0xcbf29ce484222325ULL;
  for (std::uint64_t print : PlanCache::fingerprint(platform)) {
    folded ^= print;
    folded *= 0x100000001b3ULL;
  }
  return static_cast<long long>(folded);
}

std::vector<int> narrow_to_int(const std::vector<long long>& values,
                               const char* what) {
  std::vector<int> narrowed;
  narrowed.reserve(values.size());
  for (long long value : values) {
    LBS_CHECK_MSG(value >= 0 && value <= std::numeric_limits<int>::max(),
                  std::string(what) + " overflows the 32-bit MPI boundary");
    narrowed.push_back(static_cast<int>(value));
  }
  return narrowed;
}

}  // namespace

std::vector<int> ScatterPlan::counts_as_int() const {
  return narrow_to_int(distribution.counts, "scatter count");
}

std::vector<int> ScatterPlan::displacements_as_int() const {
  return narrow_to_int(displacements, "scatter displacement");
}

ScatterPlan plan_scatter(const model::Platform& platform, long long items,
                         Algorithm algorithm) {
  PlannerOptions options;
  options.algorithm = algorithm;
  return plan_scatter(platform, items, options);
}

ScatterPlan plan_scatter(const model::Platform& platform, long long items,
                         const PlannerOptions& options) {
  LBS_CHECK_MSG(platform.size() >= 1, "empty platform");
  LBS_CHECK_MSG(items >= 0, "negative item count");

  obs::Tracer* tracer =
      options.tracer != nullptr ? options.tracer : obs::global_tracer();
  const double begin = tracer != nullptr ? obs::wall_now() : 0.0;
  auto trace_plan = [&](const ScatterPlan& plan) {
    if (tracer != nullptr) {
      obs::TraceEvent event;
      event.type = obs::EventType::ScatterPlan;
      event.clock = obs::Clock::Wall;
      event.peer = platform.size();
      event.start = begin;
      event.duration = obs::wall_now() - begin;
      event.arg0 = items;
      event.arg1 = static_cast<long long>(plan.algorithm_used);
      event.arg2 = folded_fingerprint(platform);
      tracer->record(event);
    }
    if (options.metrics != nullptr) {
      options.metrics->counter("planner.plans").add();
      options.metrics->histogram("planner.plan_seconds")
          .observe(obs::wall_now() - begin);
    }
  };

  const Algorithm algorithm = options.algorithm;
  if (options.cache != nullptr) {
    if (auto cached = options.cache->lookup(platform, items, algorithm)) {
      trace_plan(*cached);
      return *std::move(cached);
    }
  }

  // DP runs inherit the planner's hooks unless the caller already set
  // DP-specific ones.
  DpOptions dp_options = options.dp;
  if (dp_options.tracer == nullptr) dp_options.tracer = options.tracer;
  if (dp_options.metrics == nullptr) dp_options.metrics = options.metrics;

  ScatterPlan plan;
  plan.algorithm_used = resolve(platform, algorithm);

  switch (plan.algorithm_used) {
    case Algorithm::ExactDp: {
      DpResult dp = exact_dp(platform, items, dp_options);
      plan.distribution = std::move(dp.distribution);
      plan.dp_cells_evaluated = dp.cells_evaluated;
      plan.dp_threads = dp.threads_used;
      plan.has_optimality_bound = true;  // the DP is exactly optimal
      plan.optimality_gap = 0.0;
      break;
    }
    case Algorithm::OptimizedDp: {
      DpResult dp = optimized_dp(platform, items, dp_options);
      plan.distribution = std::move(dp.distribution);
      plan.dp_cells_evaluated = dp.cells_evaluated;
      plan.dp_threads = dp.threads_used;
      plan.has_optimality_bound = true;  // the DP is exactly optimal
      plan.optimality_gap = 0.0;
      break;
    }
    case Algorithm::LpHeuristic: {
      HeuristicResult heuristic = lp_heuristic(platform, items);
      plan.distribution = std::move(heuristic.distribution);
      plan.has_optimality_bound = true;
      plan.optimality_gap = heuristic.guarantee_slack;
      break;
    }
    case Algorithm::LinearClosedForm: {
      auto rational = solve_linear(platform, items);
      plan.distribution = round_distribution(rational.share, items);
      plan.has_optimality_bound = true;
      plan.optimality_gap = rounding_guarantee_slack(platform);
      break;
    }
    case Algorithm::Uniform:
      plan.distribution = uniform_distribution(items, platform.size());
      break;
    case Algorithm::Auto:
      LBS_CHECK_MSG(false, "unreachable: Auto resolved above");
  }

  validate(platform, plan.distribution, items);
  plan.displacements = plan.distribution.displacements();
  plan.predicted_finish = finish_times(platform, plan.distribution);
  plan.predicted_makespan =
      *std::max_element(plan.predicted_finish.begin(), plan.predicted_finish.end());
  if (options.cache != nullptr) {
    options.cache->insert(platform, items, algorithm, plan);
  }
  trace_plan(plan);
  return plan;
}

}  // namespace lbs::core
