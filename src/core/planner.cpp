#include "core/planner.hpp"

#include <algorithm>

#include "core/closed_form.hpp"
#include "core/dp.hpp"
#include "core/heuristic.hpp"
#include "core/rounding.hpp"
#include "support/error.hpp"

namespace lbs::core {

std::string to_string(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::Auto: return "auto";
    case Algorithm::ExactDp: return "exact-dp (Algorithm 1)";
    case Algorithm::OptimizedDp: return "optimized-dp (Algorithm 2)";
    case Algorithm::LpHeuristic: return "lp-heuristic (Section 3.3)";
    case Algorithm::LinearClosedForm: return "linear-closed-form (Section 4)";
    case Algorithm::Uniform: return "uniform (original program)";
  }
  return "?";
}

namespace {

bool all_costs_linear(const model::Platform& platform) {
  for (int i = 0; i < platform.size(); ++i) {
    auto comm = platform[i].comm.affine();
    auto comp = platform[i].comp.affine();
    if (!comm || !comp || comm->fixed != 0.0 || comp->fixed != 0.0) return false;
  }
  return true;
}

Algorithm resolve(const model::Platform& platform, Algorithm requested) {
  if (requested != Algorithm::Auto) return requested;
  if (all_costs_linear(platform)) return Algorithm::LinearClosedForm;
  if (platform.all_costs_affine()) return Algorithm::LpHeuristic;
  if (platform.all_costs_increasing()) return Algorithm::OptimizedDp;
  return Algorithm::ExactDp;
}

}  // namespace

ScatterPlan plan_scatter(const model::Platform& platform, long long items,
                         Algorithm algorithm) {
  LBS_CHECK_MSG(platform.size() >= 1, "empty platform");
  LBS_CHECK_MSG(items >= 0, "negative item count");

  ScatterPlan plan;
  plan.algorithm_used = resolve(platform, algorithm);

  switch (plan.algorithm_used) {
    case Algorithm::ExactDp:
      plan.distribution = exact_dp(platform, items).distribution;
      break;
    case Algorithm::OptimizedDp:
      plan.distribution = optimized_dp(platform, items).distribution;
      break;
    case Algorithm::LpHeuristic:
      plan.distribution = lp_heuristic(platform, items).distribution;
      break;
    case Algorithm::LinearClosedForm: {
      auto rational = solve_linear(platform, items);
      plan.distribution = round_distribution(rational.share, items);
      break;
    }
    case Algorithm::Uniform:
      plan.distribution = uniform_distribution(items, platform.size());
      break;
    case Algorithm::Auto:
      LBS_CHECK_MSG(false, "unreachable: Auto resolved above");
  }

  validate(platform, plan.distribution, items);
  plan.displacements = plan.distribution.displacements();
  plan.predicted_finish = finish_times(platform, plan.distribution);
  plan.predicted_makespan =
      *std::max_element(plan.predicted_finish.begin(), plan.predicted_finish.end());
  return plan;
}

}  // namespace lbs::core
