#include "core/dp.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace lbs::core {

namespace {

// Shared scaffolding: cost[d] holds the column for processors P_{i+1}..P_p
// while column i is computed in place of next[d]; choice[d][i] records the
// optimal share e of P_i when d items remain, for reconstruction.
struct DpTables {
  explicit DpTables(long long items, int processors)
      : n(items),
        p(processors),
        cost(static_cast<std::size_t>(items) + 1, 0.0),
        next(static_cast<std::size_t>(items) + 1, 0.0),
        choice(static_cast<std::size_t>(processors),
               std::vector<std::int64_t>(static_cast<std::size_t>(items) + 1, 0)) {}

  long long n;
  int p;
  std::vector<double> cost;
  std::vector<double> next;
  std::vector<std::vector<std::int64_t>> choice;  // [i][d]

  // Seeds the last column: P_p handles everything it is given.
  void seed_last(const model::Platform& platform) {
    const auto& proc = platform[p - 1];
    for (long long d = 0; d <= n; ++d) {
      cost[static_cast<std::size_t>(d)] = proc.comm(d) + proc.comp(d);
      choice[static_cast<std::size_t>(p - 1)][static_cast<std::size_t>(d)] = d;
    }
  }

  DpResult reconstruct(const model::Platform& platform) const {
    DpResult result;
    result.cost = cost[static_cast<std::size_t>(n)];
    result.distribution.counts.resize(static_cast<std::size_t>(p));
    long long remaining = n;
    for (int i = 0; i < p; ++i) {
      long long share = choice[static_cast<std::size_t>(i)][static_cast<std::size_t>(remaining)];
      result.distribution.counts[static_cast<std::size_t>(i)] = share;
      remaining -= share;
    }
    LBS_CHECK_MSG(remaining == 0, "dp reconstruction lost items");
    validate(platform, result.distribution, n);
    return result;
  }
};

void check_preconditions(const model::Platform& platform, long long items) {
  LBS_CHECK_MSG(platform.size() >= 1, "empty platform");
  LBS_CHECK_MSG(items >= 0, "negative item count");
  for (int i = 0; i < platform.size(); ++i) {
    LBS_CHECK_MSG(platform[i].comm(0) == 0.0 && platform[i].comp(0) == 0.0,
                  "cost functions must be null at 0 (paper framework)");
  }
}

}  // namespace

DpResult exact_dp(const model::Platform& platform, long long items) {
  check_preconditions(platform, items);
  DpTables tables(items, platform.size());
  tables.seed_last(platform);

  for (int i = tables.p - 2; i >= 0; --i) {
    const auto& proc = platform[i];
    auto& column_choice = tables.choice[static_cast<std::size_t>(i)];
    tables.next[0] = 0.0;
    column_choice[0] = 0;
    for (long long d = 1; d <= tables.n; ++d) {
      // e = 0: P_i takes nothing; downstream handles everything.
      long long sol = 0;
      double best = tables.cost[static_cast<std::size_t>(d)];
      for (long long e = 1; e <= d; ++e) {
        double m = proc.comm(e) +
                   std::max(proc.comp(e), tables.cost[static_cast<std::size_t>(d - e)]);
        if (m < best) {
          best = m;
          sol = e;
        }
      }
      tables.next[static_cast<std::size_t>(d)] = best;
      column_choice[static_cast<std::size_t>(d)] = sol;
    }
    std::swap(tables.cost, tables.next);
  }
  return tables.reconstruct(platform);
}

DpResult optimized_dp(const model::Platform& platform, long long items) {
  check_preconditions(platform, items);
  LBS_CHECK_MSG(platform.all_costs_increasing(),
                "Algorithm 2 requires increasing cost functions");
  DpTables tables(items, platform.size());
  tables.seed_last(platform);

  for (int i = tables.p - 2; i >= 0; --i) {
    const auto& proc = platform[i];
    auto& column_choice = tables.choice[static_cast<std::size_t>(i)];
    const auto& downstream = tables.cost;
    tables.next[0] = 0.0;
    column_choice[0] = 0;
    for (long long d = 1; d <= tables.n; ++d) {
      long long sol = 0;
      double min_cost = 0.0;
      if (proc.comp(0) >= downstream[static_cast<std::size_t>(d)]) {
        // Even taking nothing, P_i's (null) computation dominates: giving it
        // anything only adds communication. (Paper line 12.)
        sol = 0;
        min_cost = proc.comm(0) + proc.comp(0);
      } else if (proc.comp(d) < downstream[0]) {
        // Taking everything still finishes before the (empty) downstream:
        // degenerate, kept for faithfulness to the paper (line 13-14).
        sol = d;
        min_cost = proc.comm(d) + downstream[0];
      } else {
        // Binary search for e_max: the smallest e such that
        // Tcomp(i, e) >= cost[d-e][i+1]. Invariant: comp(e_min) < down,
        // comp(e_max) >= down. (Paper lines 16-26.)
        long long e_min = 0;
        long long e_max = d;
        long long e = d / 2;
        while (e != e_min) {
          if (proc.comp(e) < downstream[static_cast<std::size_t>(d - e)]) {
            e_min = e;
          } else {
            e_max = e;
          }
          e = (e_min + e_max) / 2;
        }
        sol = e_max;
        min_cost = proc.comm(e_max) + proc.comp(e_max);
      }

      // Downward scan over e < sol, where downstream cost dominates
      // computation; break once the (increasing, as e decreases) downstream
      // cost alone reaches the best total. (Paper lines 28-35.)
      for (long long e = sol - 1; e >= 0; --e) {
        double down = downstream[static_cast<std::size_t>(d - e)];
        double m = proc.comm(e) + down;
        if (m < min_cost) {
          min_cost = m;
          sol = e;
        } else if (down >= min_cost) {
          break;
        }
      }

      tables.next[static_cast<std::size_t>(d)] = min_cost;
      column_choice[static_cast<std::size_t>(d)] = sol;
    }
    std::swap(tables.cost, tables.next);
  }
  return tables.reconstruct(platform);
}

}  // namespace lbs::core
