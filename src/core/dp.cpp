#include "core/dp.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define LBS_DP_X86 1
#endif

#include "model/cost_table.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace lbs::core {

namespace {

// Wavefront chunk sizes (cells per task, same grid for row fills).
// Algorithm 1 cells cost O(d) each, so small chunks keep the pipeline
// balanced; Algorithm 2 cells are O(1) amortized (two-pointer sweep) and
// only pay off in chunks large enough to amortize the task claim.
constexpr long long kExactGrain = 512;
constexpr long long kOptimizedGrain = 32768;
constexpr long long kFillGrain = 8192;

// Auto memory policy: keep the classic choice table while it stays under
// this budget, switch to divide-and-conquer reconstruction beyond.
constexpr std::size_t kAutoChoiceTableByteLimit = std::size_t{1} << 30;  // 1 GiB

// Divide-and-conquer bottom-out: a recursion node whose int32 choice
// table fits this budget is solved by one wavefront table pass instead of
// recursing further. This is what fixes the mode's former 2.5x regression:
// the O(log p) re-sweeps only happen for slices too large to tabulate.
constexpr std::size_t kDcSubTableByteLimit = std::size_t{1} << 28;  // 256 MiB

constexpr long long kMaxChoiceTableItems = std::numeric_limits<std::int32_t>::max();

// Serial-or-pooled loop runner; `threads == 1` pins everything inline so
// benches can measure a true serial baseline.
struct Parallel {
  int threads = 1;

  void for_range(long long begin, long long end, long long grain,
                 const std::function<void(long long, long long)>& fn) const {
    if (begin >= end) return;
    if (threads == 1) {
      fn(begin, end);
    } else {
      support::shared_pool().for_range(begin, end, grain, fn);
    }
  }
};

int resolve_threads(const DpOptions& options) {
  if (options.threads == 1) return 1;
  if (options.threads <= 0) return support::default_parallelism();
  return options.threads;
}

// One DP cell: the optimal share and resulting cost for processor i when
// `d` items remain, against the flattened rows comm/comp (e = 0..d valid)
// and the downstream column `down` (cost of d' items on P_{i+1}..P_p).
struct Cell {
  double cost;
  long long sol;
};

// Algorithm 1, one cell: full scan over e. Costs null at 0, so e = 0
// yields down[d]. Ties keep the smallest e (strict-< update).
Cell exact_cell(const double* comm, const double* comp, const double* down,
                long long d) {
  long long sol = 0;
  double best = down[d];
  for (long long e = 1; e <= d; ++e) {
    double m = comm[e] + std::max(comp[e], down[d - e]);
    if (m < best) {
      best = m;
      sol = e;
    }
  }
  return {best, sol};
}

#ifdef LBS_DP_X86
// AVX2 exact cell: four e-lanes track lane-local (best, argmin) pairs; the
// final reduction picks the smallest value and, on ties, the smallest e —
// exactly the scalar scan's strict-< semantics, so results are bitwise
// identical. down[d - e] runs backwards, so each block loads four doubles
// ending at d - e and lane-reverses them.
__attribute__((target("avx2"))) Cell exact_cell_avx2(const double* comm,
                                                     const double* comp,
                                                     const double* down,
                                                     long long d) {
  long long sol = 0;
  double best = down[d];
  long long e = 1;
  if (d >= 8) {
    __m256d vbest = _mm256_set1_pd(best);
    __m256i vsol = _mm256_setzero_si256();
    __m256i ve = _mm256_set_epi64x(4, 3, 2, 1);
    const __m256i vstep = _mm256_set1_epi64x(4);
    for (; e + 3 <= d; e += 4) {
      __m256d vcomm = _mm256_loadu_pd(comm + e);
      __m256d vcomp = _mm256_loadu_pd(comp + e);
      __m256d vdown = _mm256_loadu_pd(down + (d - e - 3));
      vdown = _mm256_permute4x64_pd(vdown, _MM_SHUFFLE(0, 1, 2, 3));
      // max(down, comp) matches std::max(comp, down): returns comp unless
      // down compares greater.
      __m256d vm = _mm256_add_pd(vcomm, _mm256_max_pd(vdown, vcomp));
      __m256d lt = _mm256_cmp_pd(vm, vbest, _CMP_LT_OQ);
      vbest = _mm256_blendv_pd(vbest, vm, lt);
      vsol = _mm256_blendv_epi8(vsol, ve, _mm256_castpd_si256(lt));
      ve = _mm256_add_epi64(ve, vstep);
    }
    alignas(32) double lane_best[4];
    alignas(32) long long lane_sol[4];
    _mm256_store_pd(lane_best, vbest);
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane_sol), vsol);
    for (int lane = 0; lane < 4; ++lane) {
      if (lane_best[lane] < best ||
          (lane_best[lane] == best && lane_sol[lane] != 0 &&
           (sol == 0 || lane_sol[lane] < sol))) {
        // A lane whose minimum ties the running best only wins with a
        // smaller e; sol == 0 (the init candidate down[d]) is e = 0 and a
        // lane can never beat it on a tie.
        if (lane_best[lane] < best) {
          best = lane_best[lane];
          sol = lane_sol[lane];
        } else if (sol != 0 && lane_sol[lane] < sol) {
          sol = lane_sol[lane];
        }
      }
    }
  }
  for (; e <= d; ++e) {
    double m = comm[e] + std::max(comp[e], down[d - e]);
    if (m < best) {
      best = m;
      sol = e;
    }
  }
  return {best, sol};
}
#endif  // LBS_DP_X86

bool host_has_avx2() {
#ifdef LBS_DP_X86
  static const bool has = __builtin_cpu_supports("avx2") != 0;
  return has;
#else
  return false;
#endif
}

using CellFn = Cell (*)(const double*, const double*, const double*, long long);

CellFn select_exact_cell(bool allow_simd) {
#ifdef LBS_DP_X86
  if (allow_simd && host_has_avx2()) return &exact_cell_avx2;
#else
  (void)allow_simd;
#endif
  return &exact_cell;
}

// Algorithm 2 crossover: the smallest e in [0, d] with
// Tcomp(i, e) >= cost[d-e][i+1], or d + 1 when computation never catches
// up. f(e) = comp[e] - down[d-e] is non-decreasing (increasing costs make
// comp non-decreasing in e and down non-decreasing in its argument), so
// the bisection below finds exactly that smallest crossing — the same
// value the paper's lines 16-26 compute.
long long crossover(const double* comp, const double* down, long long d) {
  if (comp[0] >= down[d]) return 0;
  if (comp[d] < down[0]) return d + 1;
  long long e_min = 0;
  long long e_max = d;
  long long e = d / 2;
  while (e != e_min) {
    if (comp[e] < down[d - e]) {
      e_min = e;
    } else {
      e_max = e;
    }
    e = (e_min + e_max) / 2;
  }
  return e_max;
}

// Algorithm 2, one cell with a known crossover: candidate at the crossover
// (or the all-items degenerate when there is none), then the paper's
// downward scan with early break (lines 28-35).
inline Cell optimized_cell_at(const double* comm, const double* comp,
                              const double* down, long long d, long long estar) {
  long long sol;
  double min_cost;
  if (estar <= d) {
    sol = estar;
    min_cost = comm[estar] + comp[estar];
  } else {
    sol = d;
    min_cost = comm[d] + down[0];
  }
  for (long long e = sol - 1; e >= 0; --e) {
    double dn = down[d - e];
    double m = comm[e] + dn;
    if (m < min_cost) {
      min_cost = m;
      sol = e;
    } else if (dn >= min_cost) {
      break;
    }
  }
  return {min_cost, sol};
}

Cell optimized_cell(const double* comm, const double* comp, const double* down,
                    long long d) {
  return optimized_cell_at(comm, comp, down, d, crossover(comp, down, d));
}

// Algorithm 2 over a d-range [d0, d1), d0 >= 1. The crossover e*(d) is
// non-decreasing in d (f_d(e) above is non-increasing in d), so after one
// bisection at d0 it advances by a forward scan — amortized O(1) per cell
// with purely sequential memory access, where a per-cell bisection costs
// O(log n) *random* loads (the former 1M-item cache killer). e*(d) is a
// pure function of d, so chunk boundaries never change any result.
template <class Sink>
void optimized_range(const double* comm, const double* comp, const double* down,
                     long long d0, long long d1, Sink&& sink) {
  long long estar = crossover(comp, down, d0);
  for (long long d = d0; d < d1; ++d) {
    while (estar <= d && comp[estar] < down[d - estar]) ++estar;
    Cell c = optimized_cell_at(comm, comp, down, d, estar);
    sink(d, c);
  }
}

// ---------------------------------------------------------------------------
// Affine-comm Algorithm 2: the scan collapses to a sliding-window minimum.
//
// The downward scan's work grows with d — on the paper testbed it averages
// hundreds of candidates per cell at n = 100k and thousands at 1M, so the
// total scan work is O(n^2)-like and dominates the whole solve. But when
// Tcomm(e) = b + beta*e for e >= 1 (affine, the LP-relevant case and every
// linear platform), a B-candidate decomposes over k = d - e as
//
//   comm[e] + down[d-e]  ~  (b + beta*d) + (down[k] - beta*k)
//
// so up to rounding, minimizing over e is minimizing the *d-independent*
// array v[k] = down[k] - beta*k over the window k in [d - e_hi(d), d - 1]
// (e = 0, i.e. k = d, stays a separate candidate). Both window ends are
// served by a monotone stack of suffix minima of v: push k = d - 1 per
// cell (amortized O(1)), answer with the first stack entry with k >= k_lo
// via a bidirectional cursor walk (amortized O(1): k_lo moves with the
// two-pointer crossover). That turns the per-cell O(scan) into amortized
// O(1) — the difference between ~30 s and ~1 s at n = 1M.
//
// Numerics: v-space ordering can disagree with the scan's m-space ordering
// only on sub-ulp near-ties, and the selected cell *value* is recomputed
// with the scan's own expression comm[sol] + down[d - sol], so results
// match the classic scan bit-for-bit except on such crafted ties — and are
// a deterministic pure function of (d, rows, down) either way, identical
// across thread counts, chunk grids, and memory modes.
//
// Chunk safety: e_hi(d) = min(e*(d), d + 1) - 1 is non-decreasing in d, so
// for every cell of a chunk [d0, d1) the window floor k_lo(d) = d - e_hi(d)
// stays >= d0 - e_hi(d1 - 1). Seeding the stack from that bound makes each
// chunk self-contained (a stack entry's survival only ever depends on
// *later* k, so a suffix build equals the full-column build's suffix).
// ---------------------------------------------------------------------------

struct StackEntry {
  long long k;
  double v;
};

inline double affine_v(const double* down, double beta, long long k) {
  return down[k] - beta * static_cast<double>(k);
}

template <class Sink>
void optimized_affine_range(const double* comm, const double* comp,
                            const double* down, long long d0, long long d1,
                            model::AffineCoeffs a, Sink&& sink) {
  if (d0 >= d1) return;
  const long long last = d1 - 1;
  const long long ehi_last = std::min(crossover(comp, down, last), last + 1) - 1;
  const long long k_start =
      std::max<long long>(0, d0 - std::max<long long>(ehi_last, 0));
  std::vector<StackEntry> stack;
  stack.reserve(static_cast<std::size_t>(d1 - k_start));
  auto push = [&](long long k) {
    const double v = affine_v(down, a.per_item, k);
    while (!stack.empty() && stack.back().v > v) stack.pop_back();
    stack.push_back(StackEntry{k, v});
  };
  for (long long k = k_start; k < d0; ++k) push(k);
  std::size_t cursor = 0;
  long long estar = crossover(comp, down, d0);
  for (long long d = d0; d < d1; ++d) {
    if (d > d0) push(d - 1);
    while (estar <= d && comp[estar] < down[d - estar]) ++estar;
    long long sol = -1;
    double best = std::numeric_limits<double>::infinity();
    if (estar <= d) {
      sol = estar;
      best = comm[estar] + comp[estar];
    }
    const long long e_hi = std::min(estar, d + 1) - 1;  // B window: e in [1, e_hi]
    if (e_hi >= 1) {
      const long long k_lo = d - e_hi;
      if (cursor >= stack.size()) cursor = stack.size() - 1;
      while (cursor > 0 && stack[cursor - 1].k >= k_lo) --cursor;
      while (cursor < stack.size() && stack[cursor].k < k_lo) ++cursor;
      LBS_CHECK_MSG(cursor < stack.size(),
                    "affine window minimum escaped the stack");
      const long long bk = stack[cursor].k;
      const double bval = comm[d - bk] + down[bk];
      if (bval < best) {
        best = bval;
        sol = d - bk;
      }
    }
    if (estar >= 1 && down[d] < best) {
      best = down[d];
      sol = 0;
    }
    sink(d, Cell{best, sol});
  }
}

// Single-cell variant with identical selection semantics (window minimum of
// v with the smallest k on ties, value recomputed in m-space), so the
// divide-and-conquer leaves agree bitwise with the table passes.
Cell optimized_affine_cell(const double* comm, const double* comp,
                           const double* down, long long d,
                           model::AffineCoeffs a) {
  const long long estar = crossover(comp, down, d);
  long long sol = -1;
  double best = std::numeric_limits<double>::infinity();
  if (estar <= d) {
    sol = estar;
    best = comm[estar] + comp[estar];
  }
  const long long e_hi = std::min(estar, d + 1) - 1;
  if (e_hi >= 1) {
    long long bk = -1;
    double bv = std::numeric_limits<double>::infinity();
    for (long long k = d - e_hi; k <= d - 1; ++k) {
      const double v = affine_v(down, a.per_item, k);
      if (v < bv) {
        bv = v;
        bk = k;
      }
    }
    const double bval = comm[d - bk] + down[bk];
    if (bval < best) {
      best = bval;
      sol = d - bk;
    }
  }
  if (estar >= 1 && down[d] < best) {
    best = down[d];
    sol = 0;
  }
  LBS_CHECK_MSG(sol >= 0, "dp cell found no candidate");
  return {best, sol};
}

// Which cell kernel a solve runs. `exact` carries the (possibly AVX2)
// Algorithm 1 cell; when null the solve is Algorithm 2, which further
// dispatches per column: the monotone-stack kernel when that column's
// Tcomm is affine, the classic two-pointer scan otherwise.
struct KernelConfig {
  CellFn exact = nullptr;  // null -> optimized (Algorithm 2)
  const model::Platform* platform = nullptr;  // per-column affine dispatch

  [[nodiscard]] std::optional<model::AffineCoeffs> column_affine(int col) const {
    if (exact != nullptr || platform == nullptr) return std::nullopt;
    return (*platform)[col].comm.affine();
  }

  [[nodiscard]] Cell single(int col, const double* comm, const double* comp,
                            const double* down, long long d) const {
    if (exact != nullptr) return exact(comm, comp, down, d);
    if (const auto a = column_affine(col)) {
      return optimized_affine_cell(comm, comp, down, d, *a);
    }
    return optimized_cell(comm, comp, down, d);
  }

  template <class Sink>
  void range(int col, const double* comm, const double* comp, const double* down,
             long long d0, long long d1, Sink&& sink) const {
    if (exact != nullptr) {
      for (long long d = d0; d < d1; ++d) sink(d, exact(comm, comp, down, d));
    } else if (const auto a = column_affine(col)) {
      optimized_affine_range(comm, comp, down, d0, d1, *a, sink);
    } else {
      optimized_range(comm, comp, down, d0, d1, sink);
    }
  }
};

// Serves the flattened Tcomm/Tcomp rows for one processor at a time:
// views into a caller-provided CostTable when available, otherwise a pair
// of scratch rows re-filled per column. Returned pointers are valid until
// the next get() call.
class RowSource {
 public:
  RowSource(const model::Platform& platform, long long items,
            const model::CostTable* table, const Parallel& parallel)
      : platform_(platform), items_(items), table_(table), parallel_(parallel) {
    if (table_ != nullptr) {
      LBS_CHECK_MSG(table_->processors() == platform.size(),
                    "cost table built for a different platform size");
      LBS_CHECK_MSG(table_->items() >= items,
                    "cost table covers fewer items than requested");
    } else {
      comm_.resize(static_cast<std::size_t>(items) + 1);
      comp_.resize(static_cast<std::size_t>(items) + 1);
    }
  }

  [[nodiscard]] const model::CostTable* table() const { return table_; }
  [[nodiscard]] const model::Platform& platform() const { return platform_; }

  // Rows for processor i, valid for e = 0..dmax (dmax <= items).
  std::pair<const double*, const double*> get(int i, long long dmax) {
    if (table_ != nullptr) {
      return {table_->comm_row(i).data(), table_->comp_row(i).data()};
    }
    std::span<double> comm(comm_.data(), static_cast<std::size_t>(dmax) + 1);
    std::span<double> comp(comp_.data(), static_cast<std::size_t>(dmax) + 1);
    model::fill_cost_rows(platform_[i], dmax, comm, comp, parallel_.threads);
    return {comm_.data(), comp_.data()};
  }

 private:
  const model::Platform& platform_;
  long long items_;
  const model::CostTable* table_;
  const Parallel& parallel_;
  std::vector<double> comm_;
  std::vector<double> comp_;
};

// ---------------------------------------------------------------------------
// Wavefront table pass.
//
// One pass sweeps columns col_hi-1 .. col_lo (plus an optional seed column
// for P_{col_hi}) and records every argmin in an int32 choice table. The
// old engine ran a pool barrier per column; here each column ("level") is
// cut into fixed chunks and a chunk becomes runnable as soon as its own
// row-fill prefix and the previous level's cell prefix cover it — so
// column i's tail overlaps column i-1's head and the only full barrier is
// the end of the pass. The chunk grid is fixed (independent of thread
// count) and every chunk is a pure function of its inputs, so results are
// bit-identical across 1..N threads.
//
// Memory: three rotating cost columns (level l writes bufs[l % 3]; its
// reader is level l+1 and the claim window below keeps writers two levels
// behind readers) and two rotating scratch row pairs when no CostTable is
// supplied. Progress tracking is per-level: an atomic claim cursor plus a
// done-flag array folded into a contiguous done-prefix. All coordination
// is seq_cst atomics at chunk granularity (thousands of cells per claim),
// so the ordering cost is noise and the scheme is trivially TSan-clean.
// ---------------------------------------------------------------------------

struct WavefrontLevel {
  long long chunks = 0;
  long long fill_chunks = 0;  // 0 when rows come from a CostTable / seed given
  std::atomic<long long> fill_next{0};
  std::atomic<long long> fill_prefix{0};
  std::atomic<long long> cell_next{0};
  std::atomic<long long> cell_prefix{0};
  std::vector<std::atomic<std::uint8_t>> fill_done;
  std::vector<std::atomic<std::uint8_t>> cell_done;

  [[nodiscard]] bool complete() const {
    return cell_prefix.load() >= chunks && fill_prefix.load() >= fill_chunks;
  }
};

// Marks chunk c done and folds the contiguous prefix forward.
void mark_done(std::vector<std::atomic<std::uint8_t>>& done,
               std::atomic<long long>& prefix, long long chunks, long long c) {
  done[static_cast<std::size_t>(c)].store(1);
  long long pfx = prefix.load();
  while (pfx < chunks && done[static_cast<std::size_t>(pfx)].load() != 0) {
    if (prefix.compare_exchange_weak(pfx, pfx + 1)) ++pfx;
  }
}

struct WavefrontResult {
  double cost = 0.0;   // final column's value at d_in
  long long taken = 0; // sum of the reconstructed shares for [col_lo, col_hi)
};

// Runs the pass described above. Columns col_lo..col_hi-1 each get a
// choice row (stride d_in + 1, row r for column col_lo + r) and a
// reconstructed share in shares[0..col_hi-col_lo). The downstream seed is
// either the provided column `g` (size d_in + 1) or, when g is null,
// computed from column col_hi's own rows (the P_p "takes the rest" seed).
WavefrontResult wavefront_pass(RowSource& rows, int col_lo, int col_hi,
                               long long d_in, const double* g,
                               std::int32_t* choice, long long* shares,
                               const KernelConfig& kernel, const Parallel& parallel,
                               long long grain) {
  const int ncols = col_hi - col_lo;
  const std::size_t width = static_cast<std::size_t>(d_in) + 1;
  const bool seed_from_rows = g == nullptr;
  const int nlevels = ncols + 1;  // level 0 = seed, level l >= 1 = column col_hi - l
  const model::CostTable* table = rows.table();
  const model::Platform& platform = rows.platform();
  LBS_CHECK_MSG(ncols == 0 || choice != nullptr, "wavefront pass needs a choice table");
  LBS_CHECK_MSG(d_in <= kMaxChoiceTableItems,
                "choice table stores int32 shares; use DpMemory::DivideConquer "
                "beyond 2^31 - 1 items");

  const long long chunks = (d_in + grain) / grain;  // ceil((d_in + 1) / grain)
  std::vector<WavefrontLevel> levels(static_cast<std::size_t>(nlevels));
  long long total_tasks = 0;
  for (int l = 0; l < nlevels; ++l) {
    WavefrontLevel& lv = levels[static_cast<std::size_t>(l)];
    lv.chunks = (l == 0 && !seed_from_rows) ? 0 : chunks;
    lv.fill_chunks = (table != nullptr || lv.chunks == 0) ? 0 : chunks;
    lv.fill_done = std::vector<std::atomic<std::uint8_t>>(
        static_cast<std::size_t>(lv.fill_chunks));
    lv.cell_done = std::vector<std::atomic<std::uint8_t>>(
        static_cast<std::size_t>(lv.chunks));
    total_tasks += lv.chunks + lv.fill_chunks;
  }
  std::atomic<int> first_incomplete{levels[0].chunks == 0 ? 1 : 0};

  // Rotating buffers. Level l's cost column is bufs[l % 3]; when the seed
  // is provided, level 0 owns no buffer and level 1 reads `g` directly.
  std::vector<std::vector<double>> bufs(3);
  for (auto& b : bufs) b.resize(width);
  std::vector<std::vector<double>> row_bufs(table != nullptr ? 0 : 4);
  for (auto& b : row_bufs) b.resize(width);

  auto level_column = [&](int l) { return l == 0 ? col_hi : col_hi - l; };

  auto level_rows = [&](int l) -> std::pair<const double*, const double*> {
    const int col = level_column(l);
    if (table != nullptr) {
      return {table->comm_row(col).data(), table->comp_row(col).data()};
    }
    const auto& pair_comm = row_bufs[static_cast<std::size_t>(2 * (l % 2))];
    const auto& pair_comp = row_bufs[static_cast<std::size_t>(2 * (l % 2) + 1)];
    return {pair_comm.data(), pair_comp.data()};
  };

  auto run_fill = [&](int l, long long c) {
    const int col = level_column(l);
    const long long e0 = c * grain;
    const long long e1 = std::min(d_in + 1, e0 + grain);
    double* comm = row_bufs[static_cast<std::size_t>(2 * (l % 2))].data();
    double* comp = row_bufs[static_cast<std::size_t>(2 * (l % 2) + 1)].data();
    const auto& proc = platform[col];
    for (long long e = e0; e < e1; ++e) {
      comm[static_cast<std::size_t>(e)] = proc.comm(e);
      comp[static_cast<std::size_t>(e)] = proc.comp(e);
    }
  };

  auto run_cells = [&](int l, long long c) {
    const long long d0 = c * grain;
    const long long d1 = std::min(d_in + 1, d0 + grain);
    auto [comm, comp] = level_rows(l);
    if (l == 0) {
      double* seed = bufs[0].data();
      for (long long d = d0; d < d1; ++d) {
        seed[static_cast<std::size_t>(d)] = comm[d] + comp[d];
      }
      return;
    }
    const double* down =
        (l == 1 && !seed_from_rows) ? g : bufs[static_cast<std::size_t>((l - 1) % 3)].data();
    double* cost = bufs[static_cast<std::size_t>(l % 3)].data();
    std::int32_t* choice_row =
        choice + static_cast<std::size_t>(level_column(l) - col_lo) * width;
    long long begin = d0;
    if (begin == 0) {
      cost[0] = 0.0;
      choice_row[0] = 0;
      begin = 1;
    }
    kernel.range(level_column(l), comm, comp, down, begin, d1,
                 [&](long long d, Cell cell) {
                   cost[static_cast<std::size_t>(d)] = cell.cost;
                   choice_row[d] = static_cast<std::int32_t>(cell.sol);
                 });
  };

  // Claims and executes one runnable task; false when nothing is runnable
  // right now (the caller spins — runnable work appears as peers finish).
  auto try_run_one = [&]() -> bool {
    const int first = first_incomplete.load();
    for (int l = first; l < std::min(first + 2, nlevels); ++l) {
      WavefrontLevel& lv = levels[static_cast<std::size_t>(l)];
      long long c = lv.fill_next.load();
      while (c < lv.fill_chunks) {
        if (lv.fill_next.compare_exchange_weak(c, c + 1)) {
          run_fill(l, c);
          mark_done(lv.fill_done, lv.fill_prefix, lv.fill_chunks, c);
          return true;
        }
      }
      const WavefrontLevel* prev =
          l > 0 ? &levels[static_cast<std::size_t>(l - 1)] : nullptr;
      c = lv.cell_next.load();
      while (c < lv.chunks &&
             (lv.fill_chunks == 0 || lv.fill_prefix.load() > c) &&
             (prev == nullptr || prev->chunks == 0 || prev->cell_prefix.load() > c)) {
        if (lv.cell_next.compare_exchange_weak(c, c + 1)) {
          run_cells(l, c);
          mark_done(lv.cell_done, lv.cell_prefix, lv.chunks, c);
          if (lv.complete()) {
            int f = first_incomplete.load();
            while (f < nlevels && levels[static_cast<std::size_t>(f)].complete()) {
              if (first_incomplete.compare_exchange_weak(f, f + 1)) ++f;
            }
          }
          return true;
        }
      }
    }
    return false;
  };

  parallel.for_range(0, total_tasks, 1, [&](long long begin, long long end) {
    for (long long t = begin; t < end; ++t) {
      while (!try_run_one()) std::this_thread::yield();
    }
  });

  WavefrontResult result;
  const double* final_cost =
      ncols == 0 ? (seed_from_rows ? bufs[0].data() : g)
                 : bufs[static_cast<std::size_t>(ncols % 3)].data();
  result.cost = final_cost[static_cast<std::size_t>(d_in)];
  long long remaining = d_in;
  for (int i = col_lo; i < col_hi; ++i) {
    const std::int32_t* choice_row =
        choice + static_cast<std::size_t>(i - col_lo) * width;
    const long long share = choice_row[remaining];
    shares[i - col_lo] = share;
    remaining -= share;
    LBS_CHECK_MSG(remaining >= 0, "dp reconstruction lost items");
  }
  result.taken = d_in - remaining;
  return result;
}

void check_preconditions(const model::Platform& platform, long long items) {
  LBS_CHECK_MSG(platform.size() >= 1, "empty platform");
  LBS_CHECK_MSG(items >= 0, "negative item count");
  for (int i = 0; i < platform.size(); ++i) {
    LBS_CHECK_MSG(platform[i].comm(0) == 0.0 && platform[i].comp(0) == 0.0,
                  "cost functions must be null at 0 (paper framework)");
  }
}

DpMemory resolve_memory(const DpOptions& options, long long items, int processors) {
  if (options.memory != DpMemory::Auto) return options.memory;
  if (items > kMaxChoiceTableItems) return DpMemory::DivideConquer;
  std::size_t table_bytes = static_cast<std::size_t>(processors > 1 ? processors - 1 : 0) *
                            (static_cast<std::size_t>(items) + 1) * sizeof(std::int32_t);
  return table_bytes > kAutoChoiceTableByteLimit ? DpMemory::DivideConquer
                                                 : DpMemory::ChoiceTable;
}

std::size_t resolve_dc_table_bytes(const DpOptions& options) {
  return options.dc_table_bytes != 0 ? options.dc_table_bytes : kDcSubTableByteLimit;
}

// Classic mode: one wavefront pass over every column, argmins in a flat
// int32 table, walk the table back from (0, n).
DpResult run_choice_table(const model::Platform& platform, long long items,
                          const DpOptions& options, const KernelConfig& kernel,
                          long long grain) {
  LBS_CHECK_MSG(items <= kMaxChoiceTableItems,
                "choice table stores int32 shares; use DpMemory::DivideConquer "
                "beyond 2^31 - 1 items");
  const int p = platform.size();
  const long long n = items;
  Parallel parallel{resolve_threads(options)};
  RowSource rows(platform, n, options.cost_table, parallel);

  std::vector<std::int32_t> choice;  // rows for P_1..P_{p-1}; P_p takes the rest
  if (p > 1) {
    choice.resize(static_cast<std::size_t>(p - 1) * (static_cast<std::size_t>(n) + 1));
  }
  std::vector<long long> shares(static_cast<std::size_t>(p > 1 ? p - 1 : 0), 0);

  WavefrontResult pass = wavefront_pass(rows, 0, p - 1, n, nullptr, choice.data(),
                                        shares.data(), kernel, parallel, grain);

  DpResult result;
  result.cost = pass.cost;
  // Cell count is fully determined by the shape: the seed column evaluates
  // n + 1 entries, every other column n cells (d = 1..n). Counting here —
  // not in the parallel chunks — keeps the figure exact and free.
  result.cells_evaluated = (n + 1) + static_cast<long long>(p - 1) * n;
  result.threads_used = parallel.threads;
  result.distribution.counts.assign(static_cast<std::size_t>(p), 0);
  for (int i = 0; i < p - 1; ++i) {
    result.distribution.counts[static_cast<std::size_t>(i)] =
        shares[static_cast<std::size_t>(i)];
  }
  result.distribution.counts[static_cast<std::size_t>(p - 1)] = n - pass.taken;
  validate(platform, result.distribution, n);
  return result;
}

// Divide-and-conquer mode (Hirschberg on the processor axis): never store
// a full argmin table over all of [0, p). solve(lo, hi, d_in, g) fixes the
// shares of processors [lo, hi) given that d_in items enter P_lo and that
// `g` is the downstream cost column of P_hi..P_p over [0..d_in]. Hybrid
// bottom-out: a node whose own int32 choice table fits the byte budget is
// solved by one wavefront table pass (bit-identical by construction —
// same cells, same argmin walk); only nodes too large to tabulate pay the
// Hirschberg thru-column split, whose extra re-sweeps are the O(log p)
// factor. Above the budget each column sweep is a pool barrier, which is
// fine there: such columns have thousands of chunks, so the barrier is
// amortized to noise.
DpResult run_divide_conquer(const model::Platform& platform, long long items,
                            const DpOptions& options, const KernelConfig& kernel,
                            long long grain) {
  const int p = platform.size();
  const long long n = items;
  Parallel parallel{resolve_threads(options)};
  RowSource rows(platform, n, options.cost_table, parallel);
  const std::size_t table_budget = resolve_dc_table_bytes(options);

  DpResult result;
  result.threads_used = parallel.threads;
  result.distribution.counts.assign(static_cast<std::size_t>(p), 0);
  if (p == 1) {
    auto [comm, comp] = rows.get(0, n);
    result.distribution.counts[0] = n;
    result.cost = comm[n] + comp[n];
    result.cells_evaluated = 1;
    validate(platform, result.distribution, n);
    return result;
  }

  std::vector<long long> shares(static_cast<std::size_t>(p - 1), 0);

  // Accumulated at column granularity (one add per column sweep, never in
  // the parallel inner loops), so it exactly tallies the re-sweeps this
  // mode performs over run_choice_table.
  long long cells = 0;

  // Applies column i over [0..dmax]: next[d] = cell(i, d) against `down`.
  auto apply_column = [&](int i, long long dmax, const double* down,
                          std::vector<double>& next) {
    auto [comm, comp] = rows.get(i, dmax);
    cells += dmax;
    next[0] = 0.0;
    parallel.for_range(1, dmax + 1, grain, [&](long long begin, long long end) {
      kernel.range(i, comm, comp, down, begin, end, [&](long long d, Cell c) {
        next[static_cast<std::size_t>(d)] = c.cost;
      });
    });
  };

  auto solve = [&](auto&& self, int lo, int hi, long long d_in,
                   std::vector<double> g) -> double {
    if (hi - lo == 1) {
      auto [comm, comp] = rows.get(lo, d_in);
      cells += 1;
      Cell c = kernel.single(lo, comm, comp, g.data(), d_in);
      shares[static_cast<std::size_t>(lo)] = c.sol;
      return c.cost;
    }

    const std::size_t node_table_bytes =
        static_cast<std::size_t>(hi - lo) *
        (static_cast<std::size_t>(d_in) + 1) * sizeof(std::int32_t);
    if (node_table_bytes <= table_budget &&
        d_in <= kMaxChoiceTableItems) {
      std::vector<std::int32_t> node_choice(
          static_cast<std::size_t>(hi - lo) * (static_cast<std::size_t>(d_in) + 1));
      cells += static_cast<long long>(hi - lo) * d_in;
      WavefrontResult pass =
          wavefront_pass(rows, lo, hi, d_in, g.data(), node_choice.data(),
                         shares.data() + lo, kernel, parallel, grain);
      return pass.cost;
    }

    const int mid = (lo + hi) / 2;
    const std::size_t width = static_cast<std::size_t>(d_in) + 1;

    // g_mid = columns hi-1..mid applied to g (g itself is preserved for
    // the right half's recursion).
    std::vector<double> cur(width);
    std::vector<double> nxt(width);
    const double* down = g.data();
    for (int i = hi - 1; i >= mid; --i) {
      apply_column(i, d_in, down, nxt);
      std::swap(cur, nxt);
      down = cur.data();
    }
    std::vector<double> g_mid = std::move(cur);

    // Thru sweep: columns mid-1..lo on top of g_mid, each cell also
    // recording which midpoint state its optimal path goes through.
    std::vector<double> c_cur(g_mid);
    std::vector<double> c_nxt(width);
    std::vector<long long> t_cur(width);
    std::vector<long long> t_nxt(width);
    parallel.for_range(0, d_in + 1, kFillGrain, [&](long long begin, long long end) {
      for (long long d = begin; d < end; ++d) t_cur[static_cast<std::size_t>(d)] = d;
    });
    for (int i = mid - 1; i >= lo; --i) {
      auto [comm, comp] = rows.get(i, d_in);
      cells += d_in;
      c_nxt[0] = 0.0;
      t_nxt[0] = 0;
      parallel.for_range(1, d_in + 1, grain, [&](long long begin, long long end) {
        kernel.range(i, comm, comp, c_cur.data(), begin, end,
                     [&](long long d, Cell c) {
                       c_nxt[static_cast<std::size_t>(d)] = c.cost;
                       t_nxt[static_cast<std::size_t>(d)] =
                           t_cur[static_cast<std::size_t>(d - c.sol)];
                     });
      });
      std::swap(c_cur, c_nxt);
      std::swap(t_cur, t_nxt);
    }
    const long long d_mid = t_cur[static_cast<std::size_t>(d_in)];
    const double cost_lo = c_cur[static_cast<std::size_t>(d_in)];
    LBS_CHECK_MSG(d_mid >= 0 && d_mid <= d_in, "dp split lost items");

    // Free the sweep scratch before recursing, then right half first (it
    // consumes g), left half second (it consumes g_mid).
    c_cur = {};
    c_nxt = {};
    t_cur = {};
    t_nxt = {};
    nxt = {};
    g.resize(static_cast<std::size_t>(d_mid) + 1);
    self(self, mid, hi, d_mid, std::move(g));
    self(self, lo, mid, d_in, std::move(g_mid));
    return cost_lo;
  };

  // Seed column for P_p, then split over the p-1 choosing processors.
  std::vector<double> seed(static_cast<std::size_t>(n) + 1);
  {
    auto [comm, comp] = rows.get(p - 1, n);
    cells += n + 1;
    parallel.for_range(0, n + 1, kFillGrain, [&](long long begin, long long end) {
      for (long long d = begin; d < end; ++d) {
        seed[static_cast<std::size_t>(d)] = comm[d] + comp[d];
      }
    });
  }
  result.cost = solve(solve, 0, p - 1, n, std::move(seed));
  result.cells_evaluated = cells;

  long long remaining = n;
  for (int i = 0; i < p - 1; ++i) {
    result.distribution.counts[static_cast<std::size_t>(i)] =
        shares[static_cast<std::size_t>(i)];
    remaining -= shares[static_cast<std::size_t>(i)];
  }
  result.distribution.counts[static_cast<std::size_t>(p - 1)] = remaining;
  LBS_CHECK_MSG(remaining >= 0, "dp reconstruction lost items");
  validate(platform, result.distribution, n);
  return result;
}

DpResult run_mode(const model::Platform& platform, long long items,
                  const DpOptions& options, const KernelConfig& kernel,
                  long long grain) {
  switch (resolve_memory(options, items, platform.size())) {
    case DpMemory::ChoiceTable:
      return run_choice_table(platform, items, options, kernel, grain);
    case DpMemory::DivideConquer:
      return run_divide_conquer(platform, items, options, kernel, grain);
    case DpMemory::Auto:
      break;
  }
  LBS_CHECK_MSG(false, "unreachable: Auto resolved above");
  return {};
}

DpResult run(const model::Platform& platform, long long items,
             const DpOptions& options, const KernelConfig& kernel,
             long long grain) {
  obs::Tracer* tracer =
      options.tracer != nullptr ? options.tracer : obs::global_tracer();
  const double begin = tracer != nullptr ? obs::wall_now() : 0.0;
  DpResult result = run_mode(platform, items, options, kernel, grain);
  if (tracer != nullptr) {
    obs::TraceEvent event;
    event.type = obs::EventType::DpSolve;
    event.clock = obs::Clock::Wall;
    event.start = begin;
    event.duration = obs::wall_now() - begin;
    event.arg0 = items;
    event.arg1 = result.cells_evaluated;
    event.arg2 = result.threads_used;
    tracer->record(event);
  }
  if (options.metrics != nullptr) {
    options.metrics->counter("dp.solves").add();
    options.metrics->counter("dp.cells_evaluated")
        .add(static_cast<std::uint64_t>(result.cells_evaluated));
  }
  return result;
}

}  // namespace

DpResult exact_dp(const model::Platform& platform, long long items,
                  const DpOptions& options) {
  check_preconditions(platform, items);
  KernelConfig kernel;
  kernel.exact = select_exact_cell(options.allow_simd);
  kernel.platform = &platform;
  return run(platform, items, options, kernel, kExactGrain);
}

DpResult optimized_dp(const model::Platform& platform, long long items,
                      const DpOptions& options) {
  check_preconditions(platform, items);
  LBS_CHECK_MSG(platform.all_costs_increasing(),
                "Algorithm 2 requires increasing cost functions");
  KernelConfig kernel;
  kernel.platform = &platform;
  return run(platform, items, options, kernel, kOptimizedGrain);
}

}  // namespace lbs::core
