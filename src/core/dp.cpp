#include "core/dp.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "model/cost_table.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace lbs::core {

namespace {

// Chunk sizes for the column-parallel loops. Algorithm 1 cells cost O(d)
// each, so small chunks keep the dynamic schedule balanced; Algorithm 2
// cells are O(log n + scan) and amortize better over larger chunks.
constexpr long long kExactGrain = 64;
constexpr long long kOptimizedGrain = 1024;
constexpr long long kFillGrain = 8192;

// Auto memory policy: keep the classic choice table while it stays under
// this budget, switch to divide-and-conquer reconstruction beyond.
constexpr std::size_t kAutoChoiceTableByteLimit = std::size_t{1} << 30;  // 1 GiB

constexpr long long kMaxChoiceTableItems = std::numeric_limits<std::int32_t>::max();

// Serial-or-pooled loop runner; `threads == 1` pins everything inline so
// benches can measure a true serial baseline.
struct Parallel {
  int threads = 1;

  void for_range(long long begin, long long end, long long grain,
                 const std::function<void(long long, long long)>& fn) const {
    if (begin >= end) return;
    if (threads == 1) {
      fn(begin, end);
    } else {
      support::shared_pool().for_range(begin, end, grain, fn);
    }
  }
};

int resolve_threads(const DpOptions& options) {
  if (options.threads == 1) return 1;
  if (options.threads <= 0) return support::default_parallelism();
  return options.threads;
}

// One DP cell: the optimal share and resulting cost for processor i when
// `d` items remain, against the flattened rows comm/comp (e = 0..d valid)
// and the downstream column `down` (cost of d' items on P_{i+1}..P_p).
struct Cell {
  double cost;
  long long sol;
};

// Algorithm 1: full scan over e. Costs null at 0, so e = 0 yields down[d].
Cell exact_cell(const double* comm, const double* comp, const double* down,
                long long d) {
  long long sol = 0;
  double best = down[d];
  for (long long e = 1; e <= d; ++e) {
    double m = comm[e] + std::max(comp[e], down[d - e]);
    if (m < best) {
      best = m;
      sol = e;
    }
  }
  return {best, sol};
}

// Algorithm 2: binary search for the crossover e_max, then the downward
// scan with early break (paper lines 12-35). Requires increasing costs.
Cell optimized_cell(const double* comm, const double* comp, const double* down,
                    long long d) {
  long long sol = 0;
  double min_cost = 0.0;
  if (comp[0] >= down[d]) {
    // Even taking nothing, P_i's (null) computation dominates: giving it
    // anything only adds communication. (Paper line 12.)
    sol = 0;
    min_cost = comm[0] + comp[0];
  } else if (comp[d] < down[0]) {
    // Taking everything still finishes before the (empty) downstream:
    // degenerate, kept for faithfulness to the paper (line 13-14).
    sol = d;
    min_cost = comm[d] + down[0];
  } else {
    // Binary search for e_max: the smallest e such that
    // Tcomp(i, e) >= cost[d-e][i+1]. Invariant: comp(e_min) < down,
    // comp(e_max) >= down. (Paper lines 16-26.)
    long long e_min = 0;
    long long e_max = d;
    long long e = d / 2;
    while (e != e_min) {
      if (comp[e] < down[d - e]) {
        e_min = e;
      } else {
        e_max = e;
      }
      e = (e_min + e_max) / 2;
    }
    sol = e_max;
    min_cost = comm[e_max] + comp[e_max];
  }

  // Downward scan over e < sol, where downstream cost dominates
  // computation; break once the (increasing, as e decreases) downstream
  // cost alone reaches the best total. (Paper lines 28-35.)
  for (long long e = sol - 1; e >= 0; --e) {
    double dn = down[d - e];
    double m = comm[e] + dn;
    if (m < min_cost) {
      min_cost = m;
      sol = e;
    } else if (dn >= min_cost) {
      break;
    }
  }
  return {min_cost, sol};
}

using CellFn = Cell (*)(const double*, const double*, const double*, long long);

// Serves the flattened Tcomm/Tcomp rows for one processor at a time:
// views into a caller-provided CostTable when available, otherwise a pair
// of scratch rows re-filled per column. Returned pointers are valid until
// the next get() call.
class RowSource {
 public:
  RowSource(const model::Platform& platform, long long items,
            const model::CostTable* table, const Parallel& parallel)
      : platform_(platform), items_(items), table_(table), parallel_(parallel) {
    if (table_ != nullptr) {
      LBS_CHECK_MSG(table_->processors() == platform.size(),
                    "cost table built for a different platform size");
      LBS_CHECK_MSG(table_->items() >= items,
                    "cost table covers fewer items than requested");
    } else {
      comm_.resize(static_cast<std::size_t>(items) + 1);
      comp_.resize(static_cast<std::size_t>(items) + 1);
    }
  }

  // Rows for processor i, valid for e = 0..dmax (dmax <= items).
  std::pair<const double*, const double*> get(int i, long long dmax) {
    if (table_ != nullptr) {
      return {table_->comm_row(i).data(), table_->comp_row(i).data()};
    }
    std::span<double> comm(comm_.data(), static_cast<std::size_t>(dmax) + 1);
    std::span<double> comp(comp_.data(), static_cast<std::size_t>(dmax) + 1);
    model::fill_cost_rows(platform_[i], dmax, comm, comp, parallel_.threads);
    return {comm_.data(), comp_.data()};
  }

 private:
  const model::Platform& platform_;
  long long items_;
  const model::CostTable* table_;
  const Parallel& parallel_;
  std::vector<double> comm_;
  std::vector<double> comp_;
};

void check_preconditions(const model::Platform& platform, long long items) {
  LBS_CHECK_MSG(platform.size() >= 1, "empty platform");
  LBS_CHECK_MSG(items >= 0, "negative item count");
  for (int i = 0; i < platform.size(); ++i) {
    LBS_CHECK_MSG(platform[i].comm(0) == 0.0 && platform[i].comp(0) == 0.0,
                  "cost functions must be null at 0 (paper framework)");
  }
}

DpMemory resolve_memory(const DpOptions& options, long long items, int processors) {
  if (options.memory != DpMemory::Auto) return options.memory;
  if (items > kMaxChoiceTableItems) return DpMemory::DivideConquer;
  std::size_t table_bytes = static_cast<std::size_t>(processors > 1 ? processors - 1 : 0) *
                            (static_cast<std::size_t>(items) + 1) * sizeof(std::int32_t);
  return table_bytes > kAutoChoiceTableByteLimit ? DpMemory::DivideConquer
                                                 : DpMemory::ChoiceTable;
}

// Classic mode: roll the cost columns, store every argmin in a flat
// int32 table, walk the table back from (0, n).
DpResult run_choice_table(const model::Platform& platform, long long items,
                          const DpOptions& options, CellFn cell, long long grain) {
  LBS_CHECK_MSG(items <= kMaxChoiceTableItems,
                "choice table stores int32 shares; use DpMemory::DivideConquer "
                "beyond 2^31 - 1 items");
  const int p = platform.size();
  const long long n = items;
  const std::size_t stride = static_cast<std::size_t>(n) + 1;
  Parallel parallel{resolve_threads(options)};
  RowSource rows(platform, n, options.cost_table, parallel);

  std::vector<double> cost(stride);
  std::vector<double> next(stride);
  std::vector<std::int32_t> choice;  // rows for P_1..P_{p-1}; P_p takes the rest
  if (p > 1) choice.resize(static_cast<std::size_t>(p - 1) * stride);

  // Cell count is fully determined by the shape: the seed column evaluates
  // n + 1 entries, every other column n cells (d = 1..n). Counting here —
  // not in the parallel inner loops — keeps the figure exact and free.
  long long cells = (n + 1) + static_cast<long long>(p - 1) * n;

  // Seed the last column: P_p handles everything it is given.
  {
    auto [comm, comp] = rows.get(p - 1, n);
    parallel.for_range(0, n + 1, kFillGrain, [&](long long begin, long long end) {
      for (long long d = begin; d < end; ++d) {
        cost[static_cast<std::size_t>(d)] = comm[d] + comp[d];
      }
    });
  }

  for (int i = p - 2; i >= 0; --i) {
    auto [comm, comp] = rows.get(i, n);
    std::int32_t* choice_row = choice.data() + static_cast<std::size_t>(i) * stride;
    const double* down = cost.data();
    next[0] = 0.0;
    choice_row[0] = 0;
    parallel.for_range(1, n + 1, grain, [&](long long begin, long long end) {
      for (long long d = begin; d < end; ++d) {
        Cell c = cell(comm, comp, down, d);
        next[static_cast<std::size_t>(d)] = c.cost;
        choice_row[d] = static_cast<std::int32_t>(c.sol);
      }
    });
    std::swap(cost, next);
  }

  DpResult result;
  result.cost = cost[static_cast<std::size_t>(n)];
  result.cells_evaluated = cells;
  result.threads_used = parallel.threads;
  result.distribution.counts.assign(static_cast<std::size_t>(p), 0);
  long long remaining = n;
  for (int i = 0; i < p - 1; ++i) {
    long long share = choice[static_cast<std::size_t>(i) * stride +
                             static_cast<std::size_t>(remaining)];
    result.distribution.counts[static_cast<std::size_t>(i)] = share;
    remaining -= share;
  }
  result.distribution.counts[static_cast<std::size_t>(p - 1)] = remaining;
  LBS_CHECK_MSG(remaining >= 0, "dp reconstruction lost items");
  validate(platform, result.distribution, n);
  return result;
}

// Divide-and-conquer mode (Hirschberg on the processor axis): never store
// a full argmin table. solve(lo, hi, d_in, g) fixes the shares of
// processors [lo, hi) given that d_in items enter P_lo and that `g` is
// the downstream cost function of P_hi..P_p over [0..d_in]: it finds the
// item count crossing the midpoint via an extra "thru" column that tracks,
// for every cell, which midpoint state its optimal path uses, then
// recurses into both halves. Each level re-sweeps its column range, so
// runtime gains an O(log p) factor while memory drops to rolling columns.
DpResult run_divide_conquer(const model::Platform& platform, long long items,
                            const DpOptions& options, CellFn cell, long long grain) {
  const int p = platform.size();
  const long long n = items;
  Parallel parallel{resolve_threads(options)};
  RowSource rows(platform, n, options.cost_table, parallel);

  DpResult result;
  result.threads_used = parallel.threads;
  result.distribution.counts.assign(static_cast<std::size_t>(p), 0);
  if (p == 1) {
    auto [comm, comp] = rows.get(0, n);
    result.distribution.counts[0] = n;
    result.cost = comm[n] + comp[n];
    result.cells_evaluated = 1;
    validate(platform, result.distribution, n);
    return result;
  }

  std::vector<long long> shares(static_cast<std::size_t>(p - 1), 0);

  // Accumulated at column granularity (one add per column sweep, never in
  // the parallel inner loops), so it exactly tallies the O(log p) extra
  // re-sweeps this mode performs over run_choice_table.
  long long cells = 0;

  // Applies column i over [0..dmax]: next[d] = cell(i, d) against `down`.
  auto apply_column = [&](int i, long long dmax, const double* down,
                          std::vector<double>& next) {
    auto [comm, comp] = rows.get(i, dmax);
    cells += dmax;
    next[0] = 0.0;
    parallel.for_range(1, dmax + 1, grain, [&](long long begin, long long end) {
      for (long long d = begin; d < end; ++d) {
        next[static_cast<std::size_t>(d)] = cell(comm, comp, down, d).cost;
      }
    });
  };

  auto solve = [&](auto&& self, int lo, int hi, long long d_in,
                   std::vector<double> g) -> double {
    if (hi - lo == 1) {
      auto [comm, comp] = rows.get(lo, d_in);
      cells += 1;
      Cell c = cell(comm, comp, g.data(), d_in);
      shares[static_cast<std::size_t>(lo)] = c.sol;
      return c.cost;
    }
    const int mid = (lo + hi) / 2;
    const std::size_t width = static_cast<std::size_t>(d_in) + 1;

    // g_mid = columns hi-1..mid applied to g (g itself is preserved for
    // the right half's recursion).
    std::vector<double> cur(width);
    std::vector<double> nxt(width);
    const double* down = g.data();
    for (int i = hi - 1; i >= mid; --i) {
      apply_column(i, d_in, down, nxt);
      std::swap(cur, nxt);
      down = cur.data();
    }
    std::vector<double> g_mid = std::move(cur);

    // Thru sweep: columns mid-1..lo on top of g_mid, each cell also
    // recording which midpoint state its optimal path goes through.
    std::vector<double> c_cur(g_mid);
    std::vector<double> c_nxt(width);
    std::vector<long long> t_cur(width);
    std::vector<long long> t_nxt(width);
    parallel.for_range(0, d_in + 1, kFillGrain, [&](long long begin, long long end) {
      for (long long d = begin; d < end; ++d) t_cur[static_cast<std::size_t>(d)] = d;
    });
    for (int i = mid - 1; i >= lo; --i) {
      auto [comm, comp] = rows.get(i, d_in);
      cells += d_in;
      c_nxt[0] = 0.0;
      t_nxt[0] = 0;
      parallel.for_range(1, d_in + 1, grain, [&](long long begin, long long end) {
        for (long long d = begin; d < end; ++d) {
          Cell c = cell(comm, comp, c_cur.data(), d);
          c_nxt[static_cast<std::size_t>(d)] = c.cost;
          t_nxt[static_cast<std::size_t>(d)] = t_cur[static_cast<std::size_t>(d - c.sol)];
        }
      });
      std::swap(c_cur, c_nxt);
      std::swap(t_cur, t_nxt);
    }
    const long long d_mid = t_cur[static_cast<std::size_t>(d_in)];
    const double cost_lo = c_cur[static_cast<std::size_t>(d_in)];
    LBS_CHECK_MSG(d_mid >= 0 && d_mid <= d_in, "dp split lost items");

    // Free the sweep scratch before recursing, then right half first (it
    // consumes g), left half second (it consumes g_mid).
    c_cur = {};
    c_nxt = {};
    t_cur = {};
    t_nxt = {};
    nxt = {};
    g.resize(static_cast<std::size_t>(d_mid) + 1);
    self(self, mid, hi, d_mid, std::move(g));
    self(self, lo, mid, d_in, std::move(g_mid));
    return cost_lo;
  };

  // Seed column for P_p, then split over the p-1 choosing processors.
  std::vector<double> seed(static_cast<std::size_t>(n) + 1);
  {
    auto [comm, comp] = rows.get(p - 1, n);
    cells += n + 1;
    parallel.for_range(0, n + 1, kFillGrain, [&](long long begin, long long end) {
      for (long long d = begin; d < end; ++d) {
        seed[static_cast<std::size_t>(d)] = comm[d] + comp[d];
      }
    });
  }
  result.cost = solve(solve, 0, p - 1, n, std::move(seed));
  result.cells_evaluated = cells;

  long long remaining = n;
  for (int i = 0; i < p - 1; ++i) {
    result.distribution.counts[static_cast<std::size_t>(i)] =
        shares[static_cast<std::size_t>(i)];
    remaining -= shares[static_cast<std::size_t>(i)];
  }
  result.distribution.counts[static_cast<std::size_t>(p - 1)] = remaining;
  LBS_CHECK_MSG(remaining >= 0, "dp reconstruction lost items");
  validate(platform, result.distribution, n);
  return result;
}

DpResult run_mode(const model::Platform& platform, long long items,
                  const DpOptions& options, CellFn cell, long long grain) {
  switch (resolve_memory(options, items, platform.size())) {
    case DpMemory::ChoiceTable:
      return run_choice_table(platform, items, options, cell, grain);
    case DpMemory::DivideConquer:
      return run_divide_conquer(platform, items, options, cell, grain);
    case DpMemory::Auto:
      break;
  }
  LBS_CHECK_MSG(false, "unreachable: Auto resolved above");
  return {};
}

DpResult run(const model::Platform& platform, long long items,
             const DpOptions& options, CellFn cell, long long grain) {
  obs::Tracer* tracer =
      options.tracer != nullptr ? options.tracer : obs::global_tracer();
  const double begin = tracer != nullptr ? obs::wall_now() : 0.0;
  DpResult result = run_mode(platform, items, options, cell, grain);
  if (tracer != nullptr) {
    obs::TraceEvent event;
    event.type = obs::EventType::DpSolve;
    event.clock = obs::Clock::Wall;
    event.start = begin;
    event.duration = obs::wall_now() - begin;
    event.arg0 = items;
    event.arg1 = result.cells_evaluated;
    event.arg2 = result.threads_used;
    tracer->record(event);
  }
  if (options.metrics != nullptr) {
    options.metrics->counter("dp.solves").add();
    options.metrics->counter("dp.cells_evaluated")
        .add(static_cast<std::uint64_t>(result.cells_evaluated));
  }
  return result;
}

}  // namespace

DpResult exact_dp(const model::Platform& platform, long long items,
                  const DpOptions& options) {
  check_preconditions(platform, items);
  return run(platform, items, options, &exact_cell, kExactGrain);
}

DpResult optimized_dp(const model::Platform& platform, long long items,
                      const DpOptions& options) {
  check_preconditions(platform, items);
  LBS_CHECK_MSG(platform.all_costs_increasing(),
                "Algorithm 2 requires increasing cost functions");
  return run(platform, items, options, &optimized_cell, kOptimizedGrain);
}

}  // namespace lbs::core
