// Root-processor selection (paper Section 3.4).
//
// The n data items initially live on computer C (the grid's data_home).
// If the chosen root is not on C, the whole execution pays the C→root
// transfer of all n items *before* the scatter even starts. The best root
// minimizes (transfer from C) + (planned scatter+compute makespan); this
// is a plain minimization over the p candidates.
#pragma once

#include <vector>

#include "core/ordering.hpp"
#include "core/planner.hpp"
#include "model/platform.hpp"

namespace lbs::core {

struct RootCandidate {
  model::ProcessorRef root;
  std::string label;
  double staging_time = 0.0;    // C -> root transfer of all n items
  double scatter_makespan = 0.0;
  double total_time = 0.0;
};

struct RootSelectionResult {
  std::vector<RootCandidate> candidates;  // one per processor, grid order
  int best_index = -1;

  [[nodiscard]] const RootCandidate& best() const;
};

// Evaluates every processor as a candidate root. The platform for each
// candidate is ordered with `policy` (descending bandwidth by default,
// per Section 4.4), and distributions are planned with `algorithm`.
// Requires grid.data_home() >= 0.
RootSelectionResult select_root(const model::Grid& grid, long long items,
                                OrderingPolicy policy = OrderingPolicy::DescendingBandwidth,
                                Algorithm algorithm = Algorithm::Auto);

}  // namespace lbs::core
