#include "mq/request.hpp"

#include "support/error.hpp"

namespace lbs::mq {

Request::~Request() {
  if (state_ && state_->worker.joinable()) state_->worker.join();
}

bool Request::test() {
  LBS_CHECK_MSG(state_ != nullptr, "test() on an empty request");
  std::lock_guard lock(state_->mutex);
  return state_->done;
}

void Request::wait() {
  LBS_CHECK_MSG(state_ != nullptr, "wait() on an empty request");
  {
    std::unique_lock lock(state_->mutex);
    state_->done_cv.wait(lock, [&] { return state_->done; });
  }
  if (state_->worker.joinable()) state_->worker.join();
  if (state_->failure) std::rethrow_exception(state_->failure);
}

std::vector<std::byte> Request::take_payload() {
  LBS_CHECK_MSG(state_ != nullptr, "take_payload() on an empty request");
  std::lock_guard lock(state_->mutex);
  LBS_CHECK_MSG(state_->done, "take_payload() before completion");
  return std::move(state_->payload);
}

}  // namespace lbs::mq
