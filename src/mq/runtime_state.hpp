// Shared state behind a running mq::Runtime (internal header).
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <vector>

#include "mq/mailbox.hpp"
#include "mq/runtime.hpp"

namespace lbs::mq::detail {

struct RuntimeState {
  explicit RuntimeState(RuntimeOptions opts) : options(std::move(opts)) {
    for (int r = 0; r < options.ranks; ++r) {
      mailboxes.push_back(std::make_unique<Mailbox>());
      nic.push_back(std::make_unique<std::mutex>());
    }
    start = std::chrono::steady_clock::now();
  }

  RuntimeOptions options;
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
  // Per-rank network port: held for the duration of an (emulated) transfer
  // so a rank's outgoing transfers serialize — the single-port model —
  // even when issued through nonblocking isend workers.
  std::vector<std::unique_ptr<std::mutex>> nic;
  std::chrono::steady_clock::time_point start;
  std::atomic<bool> aborted{false};

  void abort_all() {
    aborted.store(true, std::memory_order_relaxed);
    for (auto& mailbox : mailboxes) mailbox->shutdown();
  }
};

}  // namespace lbs::mq::detail
