// Shared state behind a running mq::Runtime (internal header).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "mq/fault.hpp"
#include "mq/mailbox.hpp"
#include "mq/runtime.hpp"
#include "obs/trace.hpp"

namespace lbs::mq::detail {

struct RuntimeState {
  explicit RuntimeState(RuntimeOptions opts) : options(std::move(opts)) {
    tracer = options.tracer != nullptr ? options.tracer : obs::global_tracer();
    metrics = options.metrics;
    auto ranks = options.ranks > 0 ? static_cast<std::size_t>(options.ranks)
                                   : std::size_t{1};
    link_bytes = std::make_unique<std::atomic<std::uint64_t>[]>(ranks * ranks);
    nic_busy_ns = std::make_unique<std::atomic<std::uint64_t>[]>(ranks);
    recv_wait_ns = std::make_unique<std::atomic<std::uint64_t>[]>(ranks);
    for (int r = 0; r < options.ranks; ++r) {
      mailboxes.push_back(std::make_unique<Mailbox>());
      nic.push_back(std::make_unique<std::mutex>());
    }
    dead = std::make_unique<std::atomic<bool>[]>(ranks);
    for (int r = 0; r < options.ranks; ++r) {
      dead[static_cast<std::size_t>(r)].store(false, std::memory_order_relaxed);
    }
    if (!options.faults.empty()) {
      faults.emplace(options.faults, options.ranks);
    }
    start = std::chrono::steady_clock::now();
  }

  RuntimeOptions options;
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
  // Per-rank network port: held for the duration of an (emulated) transfer
  // so a rank's outgoing transfers serialize — the single-port model —
  // even when issued through nonblocking isend workers.
  std::vector<std::unique_ptr<std::mutex>> nic;
  std::chrono::steady_clock::time_point start;
  std::atomic<bool> aborted{false};

  // Observability (see RuntimeOptions): `tracer` is already resolved
  // against the global fallback; `metrics` stays null unless explicit.
  // The accumulators below are updated with relaxed atomic adds on the
  // hot paths and published as named counters after the ranks join.
  obs::Tracer* tracer = nullptr;
  obs::Metrics* metrics = nullptr;
  std::unique_ptr<std::atomic<std::uint64_t>[]> link_bytes;  // ranks x ranks
  std::unique_ptr<std::atomic<std::uint64_t>[]> nic_busy_ns;
  std::unique_ptr<std::atomic<std::uint64_t>[]> recv_wait_ns;

  void add_link_bytes(int from, int to, std::size_t bytes) {
    link_bytes[static_cast<std::size_t>(from) *
                   static_cast<std::size_t>(options.ranks) +
               static_cast<std::size_t>(to)]
        .fetch_add(bytes, std::memory_order_relaxed);
  }
  static std::uint64_t to_ns(double seconds) {
    return seconds <= 0.0 ? 0 : static_cast<std::uint64_t>(seconds * 1e9);
  }

  // Fault injection (engaged only when the plan is non-empty).
  std::optional<FaultInjector> faults;
  std::unique_ptr<std::atomic<bool>[]> dead;  // per rank: killed by injection

  // Nominal-clock reading: elapsed real seconds divided by time_scale.
  // With time_scale == 0 there is no nominal clock; reads as 0 so only
  // at_nominal_time <= 0 events can fire.
  [[nodiscard]] double nominal_now() const {
    if (options.time_scale <= 0.0) return 0.0;
    auto elapsed = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double>(elapsed).count() / options.time_scale;
  }

  [[nodiscard]] bool is_dead(int rank) const {
    return dead[static_cast<std::size_t>(rank)].load(std::memory_order_acquire);
  }

  // Marks a rank as crashed and poisons its mailbox so a blocked retrieve
  // throws RankCrashed. Idempotent.
  void kill_rank(int rank) {
    if (!dead[static_cast<std::size_t>(rank)].exchange(
            true, std::memory_order_acq_rel)) {
      mailboxes[static_cast<std::size_t>(rank)]->crash();
    }
  }

  void abort_all() {
    aborted.store(true, std::memory_order_relaxed);
    for (auto& mailbox : mailboxes) mailbox->shutdown();
  }
};

}  // namespace lbs::mq::detail
