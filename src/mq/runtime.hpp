// The mq runtime: spawns one thread per rank and wires up the emulated
// network.
//
// Link costs are configured per (from, to) machine-rank pair in *nominal*
// seconds as a function of byte count; `time_scale` shrinks real sleeps so
// a run modeled in hundreds of seconds finishes in tens of milliseconds
// while preserving ratios. time_scale = 0 disables pacing entirely
// (useful for pure correctness tests).
//
// Fault injection: a non-empty RuntimeOptions::faults plan perturbs link
// costs, drops droppable messages, and crashes ranks at nominal times (a
// watchdog thread enforces timed crashes; see mq/fault.hpp). A crashed
// rank's thread ends with RankCrashed, which the runtime records as an
// injected death rather than a program failure — survivors keep running.
#pragma once

#include <functional>
#include <memory>

#include "mq/comm.hpp"
#include "mq/fault.hpp"

namespace lbs::obs {
class Metrics;
class Tracer;
}

namespace lbs::mq {

struct RuntimeOptions {
  int ranks = 1;

  // Nominal seconds to move `bytes` from rank `from` to rank `to`.
  // Default: free network.
  std::function<double(int from, int to, std::size_t bytes)> link_cost;

  // Real-seconds = nominal-seconds * time_scale for every emulated delay.
  double time_scale = 0.0;

  // Deterministic fault plan; empty = perfect grid. Crashes with
  // at_nominal_time > 0 require time_scale > 0 (there is no nominal clock
  // without pacing) — Runtime::run throws otherwise.
  FaultPlan faults;

  // Observability hooks. A null tracer falls back to obs::global_tracer();
  // when one is live, every rank emits wall-clock comm.send spans (recorded
  // while the NIC lock is held, so root-side spans cannot overlap by
  // construction), comm.recv spans, compute spans (emulate_compute), and
  // the fault-tolerant scatter's rank.death / recovery.replan instants.
  // Metrics are explicit-only: when non-null, Runtime::run publishes
  // per-link byte counts and per-rank NIC-busy / receive-wait time after
  // the ranks join ("mq.link.bytes[f->t]", "mq.rank.nic_busy_ns[r]",
  // "mq.rank.recv_wait_ns[r]").
  obs::Tracer* tracer = nullptr;
  obs::Metrics* metrics = nullptr;
};

class Runtime {
 public:
  // Runs fn(comm) on options.ranks threads and joins them. If any rank
  // throws, the other ranks are unblocked (their mailboxes shut down) and
  // the first exception is rethrown here. RankCrashed exceptions from
  // injected crashes are absorbed: the dead rank's thread exits, the rest
  // of the runtime continues (fault-tolerant code paths are expected to
  // cope — see Comm::scatterv_ft).
  static void run(const RuntimeOptions& options,
                  const std::function<void(Comm&)>& fn);
};

// Helper for rank functions: burn `nominal_seconds * time_scale` of real
// time to emulate computation (spin-free sleep). Throws RankCrashed if the
// rank's injected crash time passed during the computation.
void emulate_compute(const Comm& comm, double nominal_seconds);

}  // namespace lbs::mq
