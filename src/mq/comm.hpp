// The mq communicator: an MPI-flavoured message-passing API over threads.
//
// This is the substrate standing in for MPICH-G2 in the paper's
// experiments. Each rank runs on its own thread inside one process; ranks
// exchange real byte buffers through mailboxes. Network heterogeneity is
// *emulated*: every send pays the configured link cost for its byte count
// (scaled by the runtime's time_scale), blocking the sender — which
// reproduces the single-port root behaviour of Section 2.3: a root
// executing scatterv sends to ranks in turn, so receiver i waits for
// receivers 1..i-1 to be served, the "stair effect" of Figure 1.
//
// The collective set mirrors what the paper's application needs:
// barrier, bcast, scatter, scatterv (the load-balancing vehicle),
// gather/gatherv, reduce, allreduce.
#pragma once

#include <cstring>
#include <functional>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "mq/mailbox.hpp"
#include "mq/request.hpp"

namespace lbs::mq {

namespace detail {
struct RuntimeState;
}  // namespace detail

class Comm {
 public:
  Comm(int rank, detail::RuntimeState& state);

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;

  // Wall-clock seconds since the runtime started (real time; emulated
  // delays are real sleeps, so this measures the emulated execution).
  [[nodiscard]] double wtime() const;

  // The runtime's real-seconds-per-nominal-second factor.
  [[nodiscard]] double time_scale() const;

  // -- point-to-point ------------------------------------------------------
  // Blocking send: pays the emulated link transfer time, then delivers.
  // Tags must be >= 0 (negative tags are reserved for collectives).
  void send_bytes(int dest, int tag, std::span<const std::byte> payload);
  Message recv_message(int source, int tag);

  template <typename T>
  void send(int dest, int tag, std::span<const T> items) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag, as_bytes(items));
  }
  template <typename T>
  void send_value(int dest, int tag, const T& value) {
    send(dest, tag, std::span<const T>(&value, 1));
  }
  template <typename T>
  std::vector<T> recv(int source, int tag) {
    return from_bytes<T>(recv_message(source, tag).payload);
  }
  template <typename T>
  T recv_value(int source, int tag) {
    auto items = recv<T>(source, tag);
    check_single(items.size());
    return items.front();
  }

  // -- nonblocking point-to-point -------------------------------------------
  // The transfer (including its emulated pacing, which holds this rank's
  // NIC) runs on a worker thread; the caller continues immediately. The
  // Comm must outlive the returned Request.
  Request isend_bytes(int dest, int tag, std::vector<std::byte> payload);
  template <typename T>
  Request isend(int dest, int tag, std::span<const T> items) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto bytes = as_bytes(items);
    return isend_bytes(dest, tag, std::vector<std::byte>(bytes.begin(), bytes.end()));
  }

  // Completes when a matching message arrives; fetch it with
  // request.take_payload() (+ decode<T>() for typed data) after wait().
  Request irecv(int source, int tag);

  // Decodes a payload previously produced by send/isend of T items.
  template <typename T>
  static std::vector<T> decode(const std::vector<std::byte>& payload) {
    return from_bytes<T>(payload);
  }

  // -- collectives (must be called by every rank) --------------------------
  void barrier();

  template <typename T>
  void bcast(int root, std::vector<T>& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (rank_ == root) {
      for (int r = 0; r < size(); ++r) {
        if (r != root) internal_send(r, kTagBcast, as_bytes(std::span<const T>(data)));
      }
    } else {
      data = from_bytes<T>(internal_recv(root, kTagBcast).payload);
    }
  }

  // Equal-share scatter (MPI_Scatter): root distributes size()*count items.
  template <typename T>
  std::vector<T> scatter(int root, std::span<const T> send_data, long long count) {
    std::vector<long long> counts(static_cast<std::size_t>(size()), count);
    return scatterv(root, send_data, counts);
  }

  // Parameterized scatter (MPI_Scatterv): counts[r] items to rank r,
  // contiguous, in rank order (root's sends serialize — the stair).
  template <typename T>
  std::vector<T> scatterv(int root, std::span<const T> send_data,
                          std::span<const long long> counts) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_counts(counts.size());
    if (rank_ == root) {
      long long offset = 0;
      std::vector<T> own;
      for (int r = 0; r < size(); ++r) {
        auto count = static_cast<std::size_t>(counts[static_cast<std::size_t>(r)]);
        check_range(offset, count, send_data.size());
        std::span<const T> chunk = send_data.subspan(static_cast<std::size_t>(offset), count);
        if (r == root) {
          own.assign(chunk.begin(), chunk.end());
        } else {
          internal_send(r, kTagScatter, as_bytes(chunk));
        }
        offset += counts[static_cast<std::size_t>(r)];
      }
      return own;
    }
    return from_bytes<T>(internal_recv(root, kTagScatter).payload);
  }

  // Gather with equal or per-rank counts; data lands in rank order at root.
  template <typename T>
  std::vector<T> gatherv(int root, std::span<const T> contribution) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (rank_ == root) {
      std::vector<T> all;
      for (int r = 0; r < size(); ++r) {
        if (r == root) {
          all.insert(all.end(), contribution.begin(), contribution.end());
        } else {
          auto chunk = from_bytes<T>(internal_recv(r, kTagGather).payload);
          all.insert(all.end(), chunk.begin(), chunk.end());
        }
      }
      return all;
    }
    internal_send(root, kTagGather, as_bytes(contribution));
    return {};
  }

  // Element-wise reduction at root; all contributions must be equal length.
  template <typename T>
  std::vector<T> reduce(int root, std::span<const T> contribution,
                        const std::function<T(const T&, const T&)>& op) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (rank_ == root) {
      std::vector<T> accumulator(contribution.begin(), contribution.end());
      for (int r = 0; r < size(); ++r) {
        if (r == root) continue;
        auto chunk = from_bytes<T>(internal_recv(r, kTagReduce).payload);
        check_single(chunk.size() == accumulator.size() ? 1 : 0);
        for (std::size_t i = 0; i < accumulator.size(); ++i) {
          accumulator[i] = op(accumulator[i], chunk[i]);
        }
      }
      return accumulator;
    }
    internal_send(root, kTagReduce, as_bytes(contribution));
    return {};
  }

  template <typename T>
  std::vector<T> allreduce(std::span<const T> contribution,
                           const std::function<T(const T&, const T&)>& op) {
    auto result = reduce<T>(0, contribution, op);
    bcast(0, result);
    return result;
  }

  // Everyone contributes, everyone gets the concatenation in rank order
  // (MPI_Allgatherv): gather to rank 0, then broadcast.
  template <typename T>
  std::vector<T> allgather(std::span<const T> contribution) {
    auto all = gatherv<T>(0, contribution);
    bcast(0, all);
    return all;
  }

  // Personalized all-to-all (MPI_Alltoallv): send_blocks[r] goes to rank
  // r; returns the blocks received, indexed by source rank (a rank's own
  // block passes through untouched).
  template <typename T>
  std::vector<std::vector<T>> alltoall(const std::vector<std::vector<T>>& send_blocks) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_counts(send_blocks.size());
    std::vector<std::vector<T>> received(static_cast<std::size_t>(size()));
    // Stagger the send order (start at rank+1) so no pair deadlocks and
    // the root-like rank 0 is not a hotspot.
    for (int offset = 1; offset < size(); ++offset) {
      int peer = (rank_ + offset) % size();
      internal_send(peer, kTagAlltoall,
                    as_bytes(std::span<const T>(send_blocks[static_cast<std::size_t>(peer)])));
    }
    received[static_cast<std::size_t>(rank_)] = send_blocks[static_cast<std::size_t>(rank_)];
    for (int offset = 1; offset < size(); ++offset) {
      int peer = (rank_ + size() - offset) % size();
      received[static_cast<std::size_t>(peer)] =
          from_bytes<T>(internal_recv(peer, kTagAlltoall).payload);
    }
    return received;
  }

  // Combined send+receive with distinct peers (MPI_Sendrecv): issues the
  // send nonblockingly so symmetric exchanges cannot deadlock.
  template <typename T>
  std::vector<T> sendrecv(int dest, int send_tag, std::span<const T> send_data,
                          int source, int recv_tag) {
    auto request = isend<T>(dest, send_tag, send_data);
    auto received = recv<T>(source, recv_tag);
    request.wait();
    return received;
  }

  // -- internal plumbing for SubComm (mq/subcomm.hpp) -----------------------
  // Sub-communicators route their collectives through the parent using a
  // reserved negative-tag block; these are not part of the user API.
  void internal_send_for_subcomm(int dest, int tag, std::span<const std::byte> payload);
  std::vector<std::byte> internal_recv_for_subcomm(int source, int tag);
  // Sequence number of the next split() on this communicator; identical on
  // every rank because split is collective and ordered.
  int next_split_id() { return split_count_++; }

 private:
  static constexpr int kTagBarrierArrive = -2;
  static constexpr int kTagBarrierRelease = -3;
  static constexpr int kTagBcast = -4;
  static constexpr int kTagScatter = -5;
  static constexpr int kTagGather = -6;
  static constexpr int kTagReduce = -7;
  static constexpr int kTagAlltoall = -8;

  template <typename T>
  static std::span<const std::byte> as_bytes(std::span<const T> items) {
    return {reinterpret_cast<const std::byte*>(items.data()), items.size_bytes()};
  }
  template <typename T>
  static std::vector<T> from_bytes(const std::vector<std::byte>& payload) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_alignment(payload.size(), sizeof(T));
    std::vector<T> items(payload.size() / sizeof(T));
    if (!items.empty()) std::memcpy(items.data(), payload.data(), payload.size());
    return items;
  }

  static void check_single(std::size_t count);
  static void check_alignment(std::size_t bytes, std::size_t item_size);
  void check_counts(std::size_t count_width) const;
  static void check_range(long long offset, std::size_t count, std::size_t total);

  // Like send_bytes but allows reserved (negative) tags.
  void internal_send(int dest, int tag, std::span<const std::byte> payload);
  Message internal_recv(int source, int tag);

  int rank_;
  detail::RuntimeState& state_;
  int split_count_ = 0;
};

}  // namespace lbs::mq
